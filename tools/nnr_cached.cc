// nnr_cached: the remote replicate-cache daemon.
//
// A thin main() around sched::CacheServer — a single-threaded epoll TCP
// server that owns a filesystem cache directory and serves it to any
// number of `nnr_run --cache-url tcp://host:port` clients (wire protocol:
// net/cache_protocol.h; architecture: ARCHITECTURE.md). One daemon in
// front of one directory turns N machines' studies into one shared,
// partitioned grid: every cell trains exactly once fleet-wide.
//
// Sharded deployments run several nnr_cached processes — each owning its
// OWN directory — and hand clients the whole map at once
// (--cache-url tcp://h1:p1,tcp://h2:p2,...): clients route each key to
// one shard by rendezvous hashing, and SHARD_INFO lets them verify the
// directories really are disjoint (sched/sharded_cache_backend.h).
//
// The printed "listening on HOST:PORT" line is the startup contract for
// scripts (with --port 0 the kernel picks the port; parse it from there).
// SIGINT/SIGTERM shut the daemon down cleanly; killing it hard only costs
// clients their cache — they degrade to local recompute and reconnect
// when the daemon returns.
//
// Usage:
//   nnr_cached --dir /var/cache/nnr --port 9776
//   nnr_cached --dir /tmp/cache --port 0 --budget 1073741824 --ttl-ms 10000
#include <signal.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "runtime/parse_int.h"
#include "sched/cache_server.h"

namespace {

constexpr const char* kUsage = R"(nnr_cached: remote replicate-cache daemon

  --dir DIR       cache directory to own and serve (required)
  --port N        TCP port; 0 = ephemeral, printed on the "listening" line
                  (default: 9776)
  --bind ADDR     bind address (default: 127.0.0.1; use 0.0.0.0 to serve
                  a fleet)
  --budget N      byte budget for the directory; stores beyond it evict
                  LRU entries, never a leased (in-flight) key (default:
                  0 = unlimited)
  --ttl-ms N      default/maximum-by-default claim lease TTL in ms; a dead
                  client's claim expires within this (default: 10000)
  --max-conns N   connection cap; excess accepts are answered with one
                  GO_AWAY(busy + retry hint) frame and closed (default:
                  256; 0 = unlimited)
  --idle-ms N     evict a connection that delivers no bytes for N ms — the
                  slow-loris defense; healthy clients reconnect
                  transparently (default: 60000; 0 = never)
  --max-rps N     per-connection token-bucket limit: sustained requests/s
                  above N are answered THROTTLED with a retry-after hint
                  (default: 0 = unlimited)
  --drain-ms N    graceful-shutdown bound on flushing queued responses at
                  SIGTERM/SIGINT (default: 2000)
  --help          this text

A sharded cache tier is N of these daemons, each with its own --dir (never
shared — clients verify disjointness via SHARD_INFO), listed together in
the clients' --cache-url as tcp://h1:p1,tcp://h2:p2,...

Protocol, claim-lease lifecycle, and deployment notes: ARCHITECTURE.md and
docs/nnr_run.md ("Remote cache").
)";

nnr::sched::CacheServer* g_server = nullptr;

void handle_signal(int) {
  // Async-signal-safe: stop() only write(2)s to the wakeup pipe.
  if (g_server != nullptr) g_server->stop();
}

[[noreturn]] void usage_error(const char* message) {
  std::fprintf(stderr, "nnr_cached: %s\n(run with --help for usage)\n",
               message);
  std::exit(2);
}

std::int64_t parse_int_flag(const char* flag, const char* text) {
  const auto parsed = nnr::runtime::parse_int_strict(text);
  if (!parsed.has_value()) {
    std::fprintf(stderr, "nnr_cached: %s needs an integer, got '%s'\n", flag,
                 text);
    std::exit(2);
  }
  return *parsed;
}

}  // namespace

int main(int argc, char** argv) {
  nnr::sched::CacheServerConfig config;
  config.port = 9776;
  // The deployed daemon defends itself by default; the library defaults
  // stay off so in-process test servers are unconstrained unless a test
  // opts in.
  config.max_conns = 256;
  config.idle_timeout_ms = 60'000;
  auto next_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) usage_error("flag needs a value");
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::printf("%s", kUsage);
      return 0;
    } else if (arg == "--dir") {
      config.dir = next_value(i);
    } else if (arg == "--port") {
      const std::int64_t port = parse_int_flag("--port", next_value(i));
      if (port < 0 || port > 65535) usage_error("--port is out of range");
      config.port = static_cast<std::uint16_t>(port);
    } else if (arg == "--bind") {
      config.bind_addr = next_value(i);
    } else if (arg == "--budget") {
      const std::int64_t budget = parse_int_flag("--budget", next_value(i));
      if (budget < 0) usage_error("--budget must be >= 0");
      config.budget = budget;
    } else if (arg == "--ttl-ms") {
      const std::int64_t ttl = parse_int_flag("--ttl-ms", next_value(i));
      if (ttl < 100 || ttl > 3'600'000) {
        usage_error("--ttl-ms must be in [100, 3600000]");
      }
      config.default_ttl_ms = static_cast<std::uint32_t>(ttl);
      config.max_ttl_ms =
          std::max(config.max_ttl_ms, config.default_ttl_ms);
    } else if (arg == "--max-conns") {
      const std::int64_t cap = parse_int_flag("--max-conns", next_value(i));
      if (cap < 0) usage_error("--max-conns must be >= 0");
      config.max_conns = static_cast<std::size_t>(cap);
    } else if (arg == "--idle-ms") {
      const std::int64_t idle = parse_int_flag("--idle-ms", next_value(i));
      if (idle < 0) usage_error("--idle-ms must be >= 0");
      config.idle_timeout_ms = idle;
    } else if (arg == "--max-rps") {
      const std::int64_t rps = parse_int_flag("--max-rps", next_value(i));
      if (rps < 0) usage_error("--max-rps must be >= 0");
      config.max_rps = static_cast<double>(rps);
    } else if (arg == "--drain-ms") {
      const std::int64_t drain = parse_int_flag("--drain-ms", next_value(i));
      if (drain < 0) usage_error("--drain-ms must be >= 0");
      config.drain_timeout_ms = drain;
    } else {
      usage_error("unknown flag");
    }
  }
  if (config.dir.empty()) usage_error("--dir is required");

  const std::string bind_addr = config.bind_addr;
  nnr::sched::CacheServer server(std::move(config));
  if (!server.start()) {
    std::fprintf(stderr, "nnr_cached: cannot bind/listen (port in use?)\n");
    return 1;
  }
  g_server = &server;
  struct sigaction action{};
  action.sa_handler = handle_signal;
  ::sigaction(SIGINT, &action, nullptr);
  ::sigaction(SIGTERM, &action, nullptr);

  // The startup contract: scripts wait for this exact line and parse the
  // port out of it (essential with --port 0).
  std::printf("nnr_cached listening on %s:%u\n", bind_addr.c_str(),
              static_cast<unsigned>(server.port()));
  std::fflush(stdout);
  server.run();
  std::fprintf(stderr, "nnr_cached: shut down\n");
  return 0;
}
