#!/usr/bin/env bash
# Tier-1 verify, matching ROADMAP.md exactly:
#   cmake -B build -S . && cmake --build build -j && cd build && ctest --output-on-failure -j
# Run from the repository root (or pass the repo root as $1).
set -euo pipefail

cd "${1:-$(dirname "$0")/..}"
cmake -B build -S . && cmake --build build -j && cd build && ctest --output-on-failure -j
