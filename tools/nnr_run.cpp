// nnr_run: command-line stability-study runner.
//
// The figure/table benches reproduce the paper's exact cells; this tool lets
// a downstream user compose their own cell — task x device x noise variant x
// replicate count — or run any named study from the registry, and get the
// paper's stability measures (accuracy mean/stddev, predictive churn,
// normalized L2 weight distance) as an aligned table or CSV. Every run goes
// through the study scheduler, so a cache directory (--cache-dir or
// NNR_CACHE_DIR) makes repeated runs near-free: replicates are served from
// disk bit-for-bit identical to a fresh training.
//
// Usage:
//   nnr_run --task smallcnn_bn --device V100 --variant impl --replicates 10
//   nnr_run --study table2 --cache-dir /tmp/nnr-cache
//   nnr_run --list
//   nnr_run --task resnet18_c100 --all-variants --csv
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/env.h"
#include "core/study.h"
#include "core/table.h"
#include "core/tasks.h"
#include "hw/device.h"
#include "opt/adam.h"
#include "opt/rmsprop.h"
#include "opt/sgd.h"
#include "report/exporter.h"
#include "runtime/parse_int.h"
#include "runtime/thread_pool.h"
#include "sched/registry.h"
#include "sched/replicate_cache.h"
#include "sched/scheduler.h"
#include "sched/study_plan.h"

namespace {

using namespace nnr;

constexpr const char* kUsage = R"(nnr_run: stability-study runner

Single-cell mode (default):
  --task NAME        a named task; see --list (default: smallcnn_bn)
  --device NAME      P100 | V100 | RTX5000 | "RTX5000 TC" | T4 | TPUv2
  --variant NAME     algo+impl | algo | impl | control
  --all-variants     run algo+impl, algo, and impl (overrides --variant)
  --optimizer NAME   sgd | sgd_momentum | adam | rmsprop
                     (default: the recipe's SGD setting)
  --replicates N     independent trainings per cell (default: task preset)
  --epochs N         override the task recipe's epoch count

Study mode:
  --study NAME       run a named study (a full figure/table grid); see --list

Cache maintenance mode:
  --cache-gc         garbage-collect the cache dir and exit: sweep orphaned
                     .tmp files (dead writers) and unheld lockfiles, evict
                     to the byte budget (LRU), compact the access journal

Shared:
  --cache-dir DIR    persistent replicate cache; replicates already on disk
                     are loaded (bitwise identical to retraining) instead of
                     trained. Defaults to NNR_CACHE_DIR when set. Concurrent
                     runs sharing one cache dir partition the grid via
                     per-key advisory locks (each cell trains exactly once).
  --cache-budget N   cache byte budget; a store that pushes the cache over N
                     bytes evicts least-recently-used entries (never one
                     that is mid-training). Defaults to NNR_CACHE_BUDGET;
                     0 = unlimited.
  --threads N        cap host-thread fan-out for this run. Precedence:
                     this flag > NNR_THREADS > hardware concurrency.
                     0 (default) = full shared-pool width; negative = serial.
  --csv              emit CSV instead of the aligned table
  --json             emit JSON instead of the aligned table
  --out DIR          also write the table as .txt/.csv/.json under DIR
  --list             print available tasks/devices/variants/studies and exit
  --help             this text

Integer flags are parsed strictly: trailing junk ("--threads 4x") is an
error, never a silent zero. Cache stats and progress go to stderr
([cache] hits=... / [study] 5/36 cells, ...), never into tables, so
warm-cache reruns emit byte-identical artifacts. A run killed mid-study is
resumable: rerun with the same cache dir and only the missing replicates
train, with bitwise-identical final tables.
)";

std::optional<core::NoiseVariant> parse_variant(const std::string& name) {
  if (name == "algo+impl") return core::NoiseVariant::kAlgoPlusImpl;
  if (name == "algo") return core::NoiseVariant::kAlgo;
  if (name == "impl") return core::NoiseVariant::kImpl;
  if (name == "control") return core::NoiseVariant::kControl;
  return std::nullopt;
}

std::optional<core::OptimizerFactory> parse_optimizer(
    const std::string& name) {
  if (name == "sgd") {
    return core::OptimizerFactory{[](std::vector<nn::Param*> p) {
      return std::make_unique<opt::Sgd>(std::move(p));
    }};
  }
  if (name == "sgd_momentum") {
    return core::OptimizerFactory{[](std::vector<nn::Param*> p) {
      return std::make_unique<opt::Sgd>(std::move(p), 0.9F);
    }};
  }
  if (name == "adam") {
    return core::OptimizerFactory{[](std::vector<nn::Param*> p) {
      return std::make_unique<opt::Adam>(std::move(p));
    }};
  }
  if (name == "rmsprop") {
    return core::OptimizerFactory{[](std::vector<nn::Param*> p) {
      return std::make_unique<opt::RmsProp>(std::move(p));
    }};
  }
  return std::nullopt;
}

void print_catalog() {
  std::printf("tasks:\n");
  for (const core::TaskInfo& info : core::task_registry()) {
    std::printf("  %-18s %s\n", info.id.c_str(), info.description.c_str());
  }
  std::printf("devices:\n");
  for (const hw::DeviceSpec& device : hw::all_devices()) {
    std::printf("  %s\n", device.name.c_str());
  }
  std::printf("variants: algo+impl, algo, impl, control\n");
  std::printf("optimizers: sgd, sgd_momentum, adam, rmsprop "
              "(default: the recipe's SGD)\n");
  std::printf("studies:\n");
  for (const sched::StudyDef& def : sched::study_registry()) {
    std::printf("  %-32s %s\n", def.id.c_str(), def.description.c_str());
  }
}

[[noreturn]] void usage_error(const char* message) {
  std::fprintf(stderr, "nnr_run: %s\n(run with --list for the catalog, "
               "--help for usage)\n", message);
  std::exit(2);
}

/// Strict integer flag parse: the whole value must be one decimal integer
/// ("--threads 4x" or "--threads abc" is an error, never a silent 0).
std::int64_t parse_int_flag(const char* flag, const char* text) {
  const auto parsed = runtime::parse_int_strict(text);
  if (!parsed.has_value()) {
    std::fprintf(stderr,
                 "nnr_run: %s needs an integer, got '%s' (trailing junk and "
                 "out-of-range values are rejected)\n",
                 flag, text);
    std::exit(2);
  }
  return *parsed;
}

/// Sanity cap for --threads (a pool cap, not a budget — far above any real
/// machine, far below int overflow).
constexpr std::int64_t kMaxThreadsFlag = 1 << 20;

struct Options {
  std::string task = "smallcnn_bn";
  std::string device = "V100";
  std::string study;  // non-empty selects study mode
  bool single_cell_flags_used = false;  // --study rejects these
  std::vector<core::NoiseVariant> variants = {
      core::NoiseVariant::kAlgoPlusImpl};
  core::OptimizerFactory optimizer;  // empty = recipe SGD
  std::string optimizer_name;        // "" = recipe SGD
  std::int64_t replicates = 0;  // 0 = task preset
  std::int64_t epochs = 0;      // 0 = recipe preset
  int threads = 0;
  bool csv = false;
  bool json = false;
  bool cache_gc = false;         // --cache-gc maintenance mode
  std::string out_dir;           // empty = no file export
  std::string cache_dir;         // empty = NNR_CACHE_DIR, else that value
  std::int64_t cache_budget = 0; // bytes; 0 = NNR_CACHE_BUDGET / unlimited
};

Options parse_args(int argc, char** argv) {
  Options opts;
  opts.cache_dir = [] {
    const char* dir = std::getenv("NNR_CACHE_DIR");
    return std::string(dir != nullptr ? dir : "");
  }();
  opts.cache_budget = core::env_int("NNR_CACHE_BUDGET", 0);
  auto next_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) usage_error("flag needs a value");
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list") {
      print_catalog();
      std::exit(0);
    } else if (arg == "--help" || arg == "-h") {
      std::printf("%s", kUsage);
      std::exit(0);
    } else if (arg == "--task") {
      opts.single_cell_flags_used = true;
      opts.task = next_value(i);
    } else if (arg == "--study") {
      opts.study = next_value(i);
    } else if (arg == "--device") {
      opts.single_cell_flags_used = true;
      opts.device = next_value(i);
    } else if (arg == "--variant") {
      opts.single_cell_flags_used = true;
      const auto v = parse_variant(next_value(i));
      if (!v) usage_error("unknown --variant");
      opts.variants = {*v};
    } else if (arg == "--optimizer") {
      opts.single_cell_flags_used = true;
      const std::string name = next_value(i);
      const auto factory = parse_optimizer(name);
      if (!factory) usage_error("unknown --optimizer");
      opts.optimizer = *factory;
      opts.optimizer_name = name;
    } else if (arg == "--all-variants") {
      opts.single_cell_flags_used = true;
      opts.variants = {core::NoiseVariant::kAlgoPlusImpl,
                       core::NoiseVariant::kAlgo, core::NoiseVariant::kImpl};
    } else if (arg == "--replicates") {
      opts.single_cell_flags_used = true;
      opts.replicates = parse_int_flag("--replicates", next_value(i));
    } else if (arg == "--epochs") {
      opts.single_cell_flags_used = true;
      opts.epochs = parse_int_flag("--epochs", next_value(i));
    } else if (arg == "--threads") {
      const std::int64_t threads = parse_int_flag("--threads", next_value(i));
      // Strict parsing must not be undone by a silent int64 -> int
      // truncation (2^32 would become 0 = "full pool").
      if (threads > kMaxThreadsFlag || threads < -kMaxThreadsFlag) {
        usage_error("--threads is out of range");
      }
      opts.threads = static_cast<int>(threads);
    } else if (arg == "--cache-budget") {
      opts.cache_budget = parse_int_flag("--cache-budget", next_value(i));
      if (opts.cache_budget < 0) {
        usage_error("--cache-budget must be >= 0 (bytes; 0 = unlimited)");
      }
    } else if (arg == "--cache-gc") {
      opts.cache_gc = true;
    } else if (arg == "--csv") {
      opts.csv = true;
    } else if (arg == "--json") {
      opts.json = true;
    } else if (arg == "--out") {
      opts.out_dir = next_value(i);
    } else if (arg == "--cache-dir") {
      opts.cache_dir = next_value(i);
    } else {
      usage_error("unknown flag");
    }
  }
  if (!opts.study.empty() && opts.single_cell_flags_used) {
    usage_error("--study runs a fixed registry grid; it cannot be combined "
                "with --task/--device/--variant/--all-variants/--optimizer/"
                "--replicates/--epochs (scale studies via NNR_* env knobs)");
  }
  if (opts.cache_gc && (!opts.study.empty() || opts.single_cell_flags_used)) {
    usage_error("--cache-gc is a standalone maintenance mode; combine it "
                "only with --cache-dir/--cache-budget");
  }
  return opts;
}

int run_cache_gc(const Options& opts) {
  if (opts.cache_dir.empty()) {
    usage_error("--cache-gc needs a cache dir (--cache-dir or NNR_CACHE_DIR)");
  }
  sched::ReplicateCache cache(opts.cache_dir, opts.cache_budget);
  const sched::GcStats gc = cache.gc();
  std::printf("[cache-gc] dir=%s removed_tmp=%lld removed_locks=%lld "
              "evicted=%lld evicted_bytes=%lld entries=%lld bytes=%lld\n",
              opts.cache_dir.c_str(), static_cast<long long>(gc.removed_tmp),
              static_cast<long long>(gc.removed_locks),
              static_cast<long long>(gc.evicted),
              static_cast<long long>(gc.evicted_bytes),
              static_cast<long long>(gc.entries),
              static_cast<long long>(gc.bytes));
  return 0;
}

void emit_table(const Options& opts, const core::TextTable& table,
                const std::string& experiment, const std::string& slug,
                const std::string& title) {
  if (opts.csv) {
    std::printf("%s", table.render_csv().c_str());
  } else if (opts.json) {
    std::printf("%s", report::render_json(table).c_str());
  } else {
    std::printf("%s\n", table.render(title).c_str());
  }
  if (!opts.out_dir.empty()) {
    report::Exporter exporter(opts.out_dir);
    exporter.write(table, experiment, slug, title);
  }
}

void report_cache(const sched::StudyResult& result, bool cache_enabled) {
  if (cache_enabled) {
    std::fprintf(stderr, "[cache] %s\n",
                 sched::cache_stats_line(result).c_str());
  }
  std::fprintf(stderr, "[study] trained=%lld\n",
               static_cast<long long>(result.trained));
}

/// --threads N (> 0) must win over NNR_THREADS (flag > env > hardware), and
/// a RunOptions cap can only narrow the shared pool — so widen the pool
/// itself first. Safe here: nothing has run on the pool yet.
void apply_thread_flag(int threads) {
  if (threads > 0) runtime::ThreadPool::set_global_threads(threads);
}

int run_study_mode(const Options& opts) {
  const sched::StudyDef* def = sched::find_study(opts.study);
  if (def == nullptr) usage_error("unknown --study");
  const sched::StudyPlan plan = def->make_plan();

  apply_thread_flag(opts.threads);
  sched::ReplicateCache cache(opts.cache_dir, opts.cache_budget);
  sched::RunOptions run_opts;
  run_opts.threads = opts.threads;
  run_opts.progress = true;
  if (cache.enabled()) run_opts.cache = &cache;
  const sched::StudyResult result = sched::run_plan(plan, run_opts);

  core::TextTable table({"Task", "Device", "Variant", "Mean acc %",
                         "STDDEV(Acc) %", "Churn %", "L2 Norm"});
  for (std::size_t c = 0; c < plan.cells().size(); ++c) {
    const sched::Cell& cell = plan.cells()[c];
    const core::VariantSummary summary = core::summarize(result.cells[c]);
    table.add_row({cell.task_name, cell.job.device.name,
                   std::string(core::variant_name(cell.job.variant)),
                   core::fmt_float(summary.accuracy_pct(), 2),
                   core::fmt_float(summary.accuracy_stddev_pct(), 3),
                   core::fmt_float(summary.churn_pct(), 2),
                   core::fmt_float(summary.mean_l2, 4)});
  }
  emit_table(opts, table, "study", plan.name(),
             "study " + plan.name() + " (" + def->description + ")");
  if (!opts.out_dir.empty() && cache.enabled()) {
    // Cache activity as its own artifact — kept out of the study table so
    // cold- and warm-cache runs emit byte-identical study files.
    report::Exporter exporter(opts.out_dir);
    exporter.write(sched::cache_stats_table(result), "cache_stats",
                   plan.name(), "replicate cache activity: " + plan.name());
  }
  report_cache(result, cache.enabled());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts = parse_args(argc, argv);
  if (opts.cache_gc) return run_cache_gc(opts);
  if (!opts.study.empty()) return run_study_mode(opts);

  const core::TaskInfo* info = core::find_task(opts.task);
  if (info == nullptr) usage_error("unknown --task");

  const std::optional<hw::DeviceSpec> device = hw::find_device(opts.device);
  if (!device) usage_error("unknown --device");

  core::Task task = info->make();
  if (opts.epochs > 0) task.recipe.epochs = opts.epochs;
  const std::int64_t replicates =
      opts.replicates > 0 ? opts.replicates : task.default_replicates;

  // The single-cell path is a one-off study: one cell per requested variant,
  // scheduled and cached exactly like the registry studies.
  sched::StudyPlan plan("nnr_run_" + opts.task);
  const core::Task& owned = plan.own_task(std::move(task));
  for (const core::NoiseVariant variant : opts.variants) {
    sched::Cell& cell = plan.add_cell(owned, variant, *device, replicates);
    cell.job.make_optimizer = opts.optimizer;
    cell.optimizer_id = opts.optimizer_name;
  }

  apply_thread_flag(opts.threads);
  sched::ReplicateCache cache(opts.cache_dir, opts.cache_budget);
  sched::RunOptions run_opts;
  run_opts.threads = opts.threads;
  run_opts.progress = true;
  if (cache.enabled()) run_opts.cache = &cache;
  const sched::StudyResult result = sched::run_plan(plan, run_opts);

  core::TextTable table({"Task", "Device", "Variant", "Mean acc %",
                         "STDDEV(Acc) %", "Churn %", "L2 Norm"});
  for (std::size_t c = 0; c < plan.cells().size(); ++c) {
    const core::VariantSummary summary = core::summarize(result.cells[c]);
    table.add_row({owned.name, device->name,
                   std::string(core::variant_name(plan.cells()[c].job.variant)),
                   core::fmt_float(summary.accuracy_pct(), 2),
                   core::fmt_float(summary.accuracy_stddev_pct(), 3),
                   core::fmt_float(summary.churn_pct(), 2),
                   core::fmt_float(summary.mean_l2, 4)});
  }

  const std::string title = "nnr_run stability summary (" +
                            std::to_string(replicates) + " replicates)";
  emit_table(opts, table, "nnr_run", opts.task, title);
  report_cache(result, cache.enabled());
  return 0;
}
