// nnr_run: command-line stability-study runner.
//
// The figure/table benches reproduce the paper's exact cells; this tool lets
// a downstream user compose their own cell — task x device x noise variant x
// replicate count — and get the paper's stability measures (accuracy
// mean/stddev, predictive churn, normalized L2 weight distance) as an
// aligned table or CSV.
//
// Usage:
//   nnr_run --task smallcnn_bn --device V100 --variant impl --replicates 10
//   nnr_run --list
//   nnr_run --task resnet18_c100 --all-variants --csv
//
// Flags:
//   --task NAME        smallcnn | smallcnn_bn | smallcnn_dropout |
//                      resnet18_c10 | resnet18_c100 | resnet50_in |
//                      vgg | mobilenet
//   --device NAME      P100 | V100 | RTX5000 | "RTX5000 TC" | T4 | TPUv2
//   --variant NAME     algo+impl | algo | impl | control
//   --all-variants     run algo+impl, algo, and impl (overrides --variant)
//   --optimizer NAME   sgd | sgd_momentum | adam | rmsprop
//                      (default: the recipe's SGD setting)
//   --replicates N     independent trainings per cell (default: task preset)
//   --epochs N         override the task recipe's epoch count
//   --threads N        host threads for replicate parallelism (0 = all)
//   --csv              emit CSV instead of the aligned table
//   --json             emit JSON instead of the aligned table
//   --out DIR          also write the table as .txt/.csv/.json under DIR
//   --list             print available tasks/devices/variants and exit
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/replicates.h"
#include "core/study.h"
#include "core/table.h"
#include "core/tasks.h"
#include "hw/device.h"
#include "nn/zoo.h"
#include "report/exporter.h"
#include "opt/adam.h"
#include "opt/rmsprop.h"
#include "opt/sgd.h"

namespace {

using namespace nnr;

struct TaskEntry {
  const char* flag_name;
  const char* description;
  std::function<core::Task()> make;
};

const std::vector<TaskEntry>& task_registry() {
  static const std::vector<TaskEntry> registry = {
      {"smallcnn", "SmallCNN (no BN) on the CIFAR-10 stand-in",
       core::small_cnn_cifar10},
      {"smallcnn_bn", "SmallCNN+BN on the CIFAR-10 stand-in",
       core::small_cnn_bn_cifar10},
      {"smallcnn_dropout",
       "SmallCNN with a 0.3-dropout head (exercises the dropout channel)",
       [] {
         core::Task task = core::small_cnn_cifar10();
         task.name = "SmallCNN+dropout CIFAR-10";
         task.make_model = [] { return nn::small_cnn_dropout(10, 0.3F); };
         return task;
       }},
      {"resnet18_c10", "Scaled ResNet-18 on the CIFAR-10 stand-in",
       core::resnet18_cifar10},
      {"resnet18_c100", "Scaled ResNet-18 on the CIFAR-100 stand-in",
       core::resnet18_cifar100},
      {"resnet50_in", "Scaled ResNet-50 on the ImageNet stand-in",
       core::resnet50_imagenet},
      {"vgg", "Scaled VGG (plain deep stack) on the CIFAR-10 stand-in",
       core::vgg_cifar10},
      {"mobilenet",
       "Scaled MobileNet (depthwise-separable) on the CIFAR-10 stand-in",
       core::mobilenet_cifar10},
  };
  return registry;
}

std::optional<core::NoiseVariant> parse_variant(const std::string& name) {
  if (name == "algo+impl") return core::NoiseVariant::kAlgoPlusImpl;
  if (name == "algo") return core::NoiseVariant::kAlgo;
  if (name == "impl") return core::NoiseVariant::kImpl;
  if (name == "control") return core::NoiseVariant::kControl;
  return std::nullopt;
}

std::optional<core::OptimizerFactory> parse_optimizer(
    const std::string& name) {
  if (name == "sgd") {
    return core::OptimizerFactory{[](std::vector<nn::Param*> p) {
      return std::make_unique<opt::Sgd>(std::move(p));
    }};
  }
  if (name == "sgd_momentum") {
    return core::OptimizerFactory{[](std::vector<nn::Param*> p) {
      return std::make_unique<opt::Sgd>(std::move(p), 0.9F);
    }};
  }
  if (name == "adam") {
    return core::OptimizerFactory{[](std::vector<nn::Param*> p) {
      return std::make_unique<opt::Adam>(std::move(p));
    }};
  }
  if (name == "rmsprop") {
    return core::OptimizerFactory{[](std::vector<nn::Param*> p) {
      return std::make_unique<opt::RmsProp>(std::move(p));
    }};
  }
  return std::nullopt;
}

void print_catalog() {
  std::printf("tasks:\n");
  for (const TaskEntry& entry : task_registry()) {
    std::printf("  %-18s %s\n", entry.flag_name, entry.description);
  }
  std::printf("devices:\n");
  for (const hw::DeviceSpec& device : hw::all_devices()) {
    std::printf("  %s\n", device.name.c_str());
  }
  std::printf("variants: algo+impl, algo, impl, control\n");
  std::printf("optimizers: sgd, sgd_momentum, adam, rmsprop "
              "(default: the recipe's SGD)\n");
}

[[noreturn]] void usage_error(const char* message) {
  std::fprintf(stderr, "nnr_run: %s\n(run with --list for the catalog)\n",
               message);
  std::exit(2);
}

struct Options {
  std::string task = "smallcnn_bn";
  std::string device = "V100";
  std::vector<core::NoiseVariant> variants = {
      core::NoiseVariant::kAlgoPlusImpl};
  core::OptimizerFactory optimizer;  // empty = recipe SGD
  std::string optimizer_name = "recipe SGD";
  std::int64_t replicates = 0;  // 0 = task preset
  std::int64_t epochs = 0;      // 0 = recipe preset
  int threads = 0;
  bool csv = false;
  bool json = false;
  std::string out_dir;  // empty = no file export
};

Options parse_args(int argc, char** argv) {
  Options opts;
  auto next_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) usage_error("flag needs a value");
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list") {
      print_catalog();
      std::exit(0);
    } else if (arg == "--task") {
      opts.task = next_value(i);
    } else if (arg == "--device") {
      opts.device = next_value(i);
    } else if (arg == "--variant") {
      const auto v = parse_variant(next_value(i));
      if (!v) usage_error("unknown --variant");
      opts.variants = {*v};
    } else if (arg == "--optimizer") {
      const std::string name = next_value(i);
      const auto factory = parse_optimizer(name);
      if (!factory) usage_error("unknown --optimizer");
      opts.optimizer = *factory;
      opts.optimizer_name = name;
    } else if (arg == "--all-variants") {
      opts.variants = {core::NoiseVariant::kAlgoPlusImpl,
                       core::NoiseVariant::kAlgo, core::NoiseVariant::kImpl};
    } else if (arg == "--replicates") {
      opts.replicates = std::atoll(next_value(i));
    } else if (arg == "--epochs") {
      opts.epochs = std::atoll(next_value(i));
    } else if (arg == "--threads") {
      opts.threads = std::atoi(next_value(i));
    } else if (arg == "--csv") {
      opts.csv = true;
    } else if (arg == "--json") {
      opts.json = true;
    } else if (arg == "--out") {
      opts.out_dir = next_value(i);
    } else {
      usage_error("unknown flag");
    }
  }
  return opts;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts = parse_args(argc, argv);

  const TaskEntry* entry = nullptr;
  for (const TaskEntry& candidate : task_registry()) {
    if (opts.task == candidate.flag_name) {
      entry = &candidate;
      break;
    }
  }
  if (entry == nullptr) usage_error("unknown --task");

  const std::optional<hw::DeviceSpec> device = hw::find_device(opts.device);
  if (!device) usage_error("unknown --device");

  core::Task task = entry->make();
  if (opts.epochs > 0) task.recipe.epochs = opts.epochs;
  const std::int64_t replicates =
      opts.replicates > 0 ? opts.replicates : task.default_replicates;

  core::TextTable table({"Task", "Device", "Variant", "Mean acc %",
                         "STDDEV(Acc) %", "Churn %", "L2 Norm"});
  for (const core::NoiseVariant variant : opts.variants) {
    core::TrainJob job = task.job(variant, *device);
    job.make_optimizer = opts.optimizer;
    const auto results = core::run_replicates(job, replicates, opts.threads);
    const core::VariantSummary summary = core::summarize(results);
    table.add_row({task.name, device->name,
                   std::string(core::variant_name(variant)),
                   core::fmt_float(summary.accuracy_pct(), 2),
                   core::fmt_float(summary.accuracy_stddev_pct(), 3),
                   core::fmt_float(summary.churn_pct(), 2),
                   core::fmt_float(summary.mean_l2, 4)});
  }

  const std::string title = "nnr_run stability summary (" +
                            std::to_string(replicates) + " replicates)";
  if (opts.csv) {
    std::printf("%s", table.render_csv().c_str());
  } else if (opts.json) {
    std::printf("%s", report::render_json(table).c_str());
  } else {
    std::printf("%s\n", table.render(title).c_str());
  }
  if (!opts.out_dir.empty()) {
    report::Exporter exporter(opts.out_dir);
    exporter.write(table, "nnr_run", opts.task, title);
  }
  return 0;
}
