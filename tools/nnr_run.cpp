// nnr_run: command-line stability-study runner.
//
// The figure/table benches reproduce the paper's exact cells; this tool lets
// a downstream user compose their own cell — task x device x noise variant x
// replicate count — or run any named study from the registry (batched:
// `--study fig1,table2` schedules every queued grid as ONE claim pass with
// duplicate cells coalesced), and get the paper's stability measures
// (accuracy mean/stddev, predictive churn, normalized L2 weight distance)
// as an aligned table or CSV. Every run goes through the study scheduler,
// so a cache — a directory (--cache-dir / NNR_CACHE_DIR) or a remote
// nnr_cached daemon (--cache-url / NNR_CACHE_URL) — makes repeated runs
// near-free: replicates are served bit-for-bit identical to fresh training.
//
// Flags are declared once in kFlags below; the parser dispatches from that
// table and --help is generated from it, so usage text and accepted flags
// cannot drift apart. The full reference lives in docs/nnr_run.md.
//
// Usage:
//   nnr_run --task smallcnn_bn --device V100 --variant impl --replicates 10
//   nnr_run --study table2 --cache-dir /tmp/nnr-cache
//   nnr_run --study fig1,fig2,table2 --cache-url tcp://cachehost:9776
//   nnr_run --study fig2 --cache-url tcp://shard0:9776,tcp://shard1:9777
//   nnr_run --submit fig2,table2 --cache-url tcp://cachehost:9776
//   nnr_run --worker --cache-url tcp://cachehost:9776
//   nnr_run --list
//   nnr_run --task resnet18_c100 --all-variants --csv
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/env.h"
#include "core/study.h"
#include "core/table.h"
#include "core/tasks.h"
#include "hw/device.h"
#include "opt/adam.h"
#include "opt/rmsprop.h"
#include "opt/sgd.h"
#include "report/exporter.h"
#include "runtime/parse_int.h"
#include "runtime/thread_pool.h"
#include "sched/cache_backend.h"
#include "sched/fleet_client.h"
#include "sched/registry.h"
#include "sched/remote_cache_backend.h"
#include "sched/sharded_cache_backend.h"
#include "sched/scheduler.h"
#include "sched/study_plan.h"

namespace {

using namespace nnr;

std::optional<core::NoiseVariant> parse_variant(const std::string& name) {
  if (name == "algo+impl") return core::NoiseVariant::kAlgoPlusImpl;
  if (name == "algo") return core::NoiseVariant::kAlgo;
  if (name == "impl") return core::NoiseVariant::kImpl;
  if (name == "control") return core::NoiseVariant::kControl;
  return std::nullopt;
}

std::optional<core::OptimizerFactory> parse_optimizer(
    const std::string& name) {
  if (name == "sgd") {
    return core::OptimizerFactory{[](std::vector<nn::Param*> p) {
      return std::make_unique<opt::Sgd>(std::move(p));
    }};
  }
  if (name == "sgd_momentum") {
    return core::OptimizerFactory{[](std::vector<nn::Param*> p) {
      return std::make_unique<opt::Sgd>(std::move(p), 0.9F);
    }};
  }
  if (name == "adam") {
    return core::OptimizerFactory{[](std::vector<nn::Param*> p) {
      return std::make_unique<opt::Adam>(std::move(p));
    }};
  }
  if (name == "rmsprop") {
    return core::OptimizerFactory{[](std::vector<nn::Param*> p) {
      return std::make_unique<opt::RmsProp>(std::move(p));
    }};
  }
  return std::nullopt;
}

void print_catalog() {
  std::printf("tasks:\n");
  for (const core::TaskInfo& info : core::task_registry()) {
    std::printf("  %-18s %s\n", info.id.c_str(), info.description.c_str());
  }
  std::printf("devices:\n");
  for (const hw::DeviceSpec& device : hw::all_devices()) {
    std::printf("  %s\n", device.name.c_str());
  }
  std::printf("variants: algo+impl, algo, impl, control\n");
  std::printf("optimizers: sgd, sgd_momentum, adam, rmsprop "
              "(default: the recipe's SGD)\n");
  std::printf("studies:\n");
  for (const sched::StudyDef& def : sched::study_registry()) {
    std::printf("  %-32s %s\n", def.id.c_str(), def.description.c_str());
  }
}

[[noreturn]] void usage_error(const char* message) {
  std::fprintf(stderr, "nnr_run: %s\n(run with --list for the catalog, "
               "--help for usage)\n", message);
  std::exit(2);
}

/// Strict integer flag parse: the whole value must be one decimal integer
/// ("--threads 4x" or "--threads abc" is an error, never a silent 0).
std::int64_t parse_int_flag(const char* flag, const char* text) {
  const auto parsed = runtime::parse_int_strict(text);
  if (!parsed.has_value()) {
    std::fprintf(stderr,
                 "nnr_run: %s needs an integer, got '%s' (trailing junk and "
                 "out-of-range values are rejected)\n",
                 flag, text);
    std::exit(2);
  }
  return *parsed;
}

/// Sanity cap for --threads (a pool cap, not a budget — far above any real
/// machine, far below int overflow).
constexpr std::int64_t kMaxThreadsFlag = 1 << 20;

struct Options {
  std::string task = "smallcnn_bn";
  std::string device = "V100";
  std::vector<std::string> studies;     // non-empty selects study mode
  std::string study_file;               // --study-file; appended to studies
  bool study_mode_requested = false;    // --study/--study-file seen at all
  bool single_cell_flags_used = false;  // --study rejects these
  std::vector<core::NoiseVariant> variants = {
      core::NoiseVariant::kAlgoPlusImpl};
  core::OptimizerFactory optimizer;  // empty = recipe SGD
  std::string optimizer_name;        // "" = recipe SGD
  std::int64_t replicates = 0;  // 0 = task preset
  std::int64_t epochs = 0;      // 0 = recipe preset
  int threads = 0;
  bool csv = false;
  bool json = false;
  bool cache_gc = false;         // --cache-gc maintenance mode
  std::vector<std::string> submit_studies;  // --submit (fleet coordinator)
  bool submit_mode = false;      // --submit seen at all
  bool worker_mode = false;      // --worker (fleet worker loop)
  std::string out_dir;           // empty = no file export
  std::string cache_dir;         // empty = NNR_CACHE_DIR, else that value
  std::string cache_url;         // empty = NNR_CACHE_URL, else that value
                                 // (single url or comma-separated shard map)
  bool cache_url_from_flag = false;  // first --cache-url replaces the env
                                     // seed; later ones append shards
  std::int64_t cache_budget = 0; // bytes; 0 = NNR_CACHE_BUDGET / unlimited
};

// ---------------------------------------------------------------------------
// The flag table: one entry per flag, driving BOTH the parser and --help.
// ---------------------------------------------------------------------------

void print_usage();

void append_names(std::vector<std::string>& out, const std::string& list) {
  std::size_t start = 0;
  while (start <= list.size()) {
    const std::size_t comma = list.find(',', start);
    const std::string name =
        list.substr(start, comma == std::string::npos ? std::string::npos
                                                      : comma - start);
    if (!name.empty()) out.push_back(name);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
}

void append_studies(Options& opts, const std::string& list) {
  append_names(opts.studies, list);
}

enum class Section { kSingle, kStudy, kFleet, kMaint, kShared };

struct FlagSpec {
  const char* name;
  const char* value;  // value placeholder, nullptr for boolean flags
  Section section;
  const char* help;   // '\n' starts an aligned continuation line
  void (*apply)(Options&, const char* value);
};

const FlagSpec kFlags[] = {
    {"--task", "NAME", Section::kSingle,
     "a named task; see --list (default: smallcnn_bn)",
     [](Options& o, const char* v) { o.task = v; }},
    {"--device", "NAME", Section::kSingle,
     "P100 | V100 | RTX5000 | \"RTX5000 TC\" | T4 | TPUv2",
     [](Options& o, const char* v) { o.device = v; }},
    {"--variant", "NAME", Section::kSingle,
     "algo+impl | algo | impl | control",
     [](Options& o, const char* v) {
       const auto variant = parse_variant(v);
       if (!variant) usage_error("unknown --variant");
       o.variants = {*variant};
     }},
    {"--all-variants", nullptr, Section::kSingle,
     "run algo+impl, algo, and impl (overrides --variant)",
     [](Options& o, const char*) {
       o.variants = {core::NoiseVariant::kAlgoPlusImpl,
                     core::NoiseVariant::kAlgo, core::NoiseVariant::kImpl};
     }},
    {"--optimizer", "NAME", Section::kSingle,
     "sgd | sgd_momentum | adam | rmsprop\n"
     "(default: the recipe's SGD setting)",
     [](Options& o, const char* v) {
       const auto factory = parse_optimizer(v);
       if (!factory) usage_error("unknown --optimizer");
       o.optimizer = *factory;
       o.optimizer_name = v;
     }},
    {"--replicates", "N", Section::kSingle,
     "independent trainings per cell (default: task preset)",
     [](Options& o, const char* v) {
       o.replicates = parse_int_flag("--replicates", v);
     }},
    {"--epochs", "N", Section::kSingle,
     "override the task recipe's epoch count",
     [](Options& o, const char* v) {
       o.epochs = parse_int_flag("--epochs", v);
     }},
    {"--study", "LIST", Section::kStudy,
     "run named studies (a full figure/table grid each); see\n"
     "--list. Comma-separate to batch: the queued grids are\n"
     "scheduled as ONE pass and cells shared between studies\n"
     "train once (coalesced), not once per study",
     [](Options& o, const char* v) {
       o.study_mode_requested = true;
       append_studies(o, v);
     }},
    {"--study-file", "FILE", Section::kStudy,
     "read study names from FILE (one per line or comma-\n"
     "separated; '#' comments), appended to --study's list",
     [](Options& o, const char* v) {
       o.study_mode_requested = true;
       o.study_file = v;
     }},
    {"--submit", "LIST", Section::kFleet,
     "fleet coordinator: enqueue the named studies' cells on\n"
     "the daemon's durable work queue (requires --cache-url),\n"
     "print fleet-wide progress until workers drain it, then\n"
     "replay the studies locally (warm) for the usual tables",
     [](Options& o, const char* v) {
       o.submit_mode = true;
       append_names(o.submit_studies, v);
     }},
    {"--worker", nullptr, Section::kFleet,
     "fleet worker: FETCH -> train -> store -> REPORT loop\n"
     "against the daemon's queue (requires --cache-url).\n"
     "Stateless; join or kill workers mid-study freely — a\n"
     "dead worker's cell returns to the queue via its lease",
     [](Options& o, const char*) { o.worker_mode = true; }},
    {"--cache-gc", nullptr, Section::kMaint,
     "garbage-collect the cache and exit: sweep orphaned .tmp\n"
     "files (dead writers) and unheld lockfiles, evict to the\n"
     "byte budget (LRU), compact the access journal. Works on\n"
     "a directory (--cache-dir) or a daemon (--cache-url)",
     [](Options& o, const char*) { o.cache_gc = true; }},
    {"--cache-dir", "DIR", Section::kShared,
     "persistent replicate cache; replicates already on disk\n"
     "are loaded (bitwise identical to retraining) instead of\n"
     "trained. Defaults to NNR_CACHE_DIR when set. Concurrent\n"
     "runs sharing one cache dir partition the grid via\n"
     "per-key advisory locks (each cell trains exactly once)",
     [](Options& o, const char* v) { o.cache_dir = v; }},
    {"--cache-url", "URL", Section::kShared,
     "remote replicate cache: tcp://host:port of an nnr_cached\n"
     "daemon, or a comma-separated shard map (tcp://a:1,tcp://b:2)\n"
     "routing each key to one shard by rendezvous hashing. Repeat\n"
     "the flag to append shards. Defaults to NNR_CACHE_URL when\n"
     "set; overrides --cache-dir. Claims become TTL leases\n"
     "(heartbeat-renewed, released on death); an unreachable\n"
     "daemon or shard degrades to local recompute, never an error",
     [](Options& o, const char* v) {
       if (o.cache_url_from_flag && !o.cache_url.empty()) {
         o.cache_url += ',';  // repeated flag = grow the shard map
         o.cache_url += v;
       } else {
         o.cache_url = v;  // first flag occurrence beats the env seed
         o.cache_url_from_flag = true;
       }
     }},
    {"--cache-budget", "N", Section::kShared,
     "cache byte budget; a store that pushes the cache over N\n"
     "bytes evicts least-recently-used entries (never one\n"
     "that is mid-training). Defaults to NNR_CACHE_BUDGET;\n"
     "0 = unlimited. Filesystem caches only: with --cache-url\n"
     "the budget belongs to the daemon (nnr_cached --budget)",
     [](Options& o, const char* v) {
       o.cache_budget = parse_int_flag("--cache-budget", v);
       if (o.cache_budget < 0) {
         usage_error("--cache-budget must be >= 0 (bytes; 0 = unlimited)");
       }
     }},
    {"--threads", "N", Section::kShared,
     "cap host-thread fan-out for this run. Precedence:\n"
     "this flag > NNR_THREADS > hardware concurrency.\n"
     "0 (default) = full shared-pool width; negative = serial",
     [](Options& o, const char* v) {
       const std::int64_t threads = parse_int_flag("--threads", v);
       // Strict parsing must not be undone by a silent int64 -> int
       // truncation (2^32 would become 0 = "full pool").
       if (threads > kMaxThreadsFlag || threads < -kMaxThreadsFlag) {
         usage_error("--threads is out of range");
       }
       o.threads = static_cast<int>(threads);
     }},
    {"--csv", nullptr, Section::kShared,
     "emit CSV instead of the aligned table",
     [](Options& o, const char*) { o.csv = true; }},
    {"--json", nullptr, Section::kShared,
     "emit JSON instead of the aligned table",
     [](Options& o, const char*) { o.json = true; }},
    {"--out", "DIR", Section::kShared,
     "also write the table as .txt/.csv/.json under DIR",
     [](Options& o, const char* v) { o.out_dir = v; }},
    {"--list", nullptr, Section::kShared,
     "print available tasks/devices/variants/studies and exit",
     [](Options&, const char*) {
       print_catalog();
       std::exit(0);
     }},
    {"--help", nullptr, Section::kShared, "this text",
     [](Options&, const char*) {
       print_usage();
       std::exit(0);
     }},
};

constexpr const char* kUsageFooter = R"(
Environment: NNR_CACHE_DIR / NNR_CACHE_URL / NNR_CACHE_BUDGET /
NNR_CACHE_LEASE_MS seed the cache flags above (NNR_CACHE_URL accepts the
same comma-separated shard map as --cache-url); NNR_THREADS sizes the
shared pool; NNR_REPLICATES / NNR_EPOCHS / NNR_TRAIN_N / NNR_QUICK scale
studies; NNR_FLEET_STORE_RETRIES / NNR_FLEET_STORE_RETRY_MS tune worker
PUT retries. Full reference: docs/nnr_run.md.

Integer flags are parsed strictly: trailing junk ("--threads 4x") is an
error, never a silent zero. Cache stats and progress go to stderr
([cache] hits=... / [study] 5/36 cells, ...), never into tables, so
warm-cache reruns emit byte-identical artifacts. A run killed mid-study is
resumable: rerun with the same cache and only the missing replicates
train, with bitwise-identical final tables.
)";

const char* section_title(Section section) {
  switch (section) {
    case Section::kSingle: return "Single-cell mode (default):";
    case Section::kStudy: return "Study mode:";
    case Section::kFleet: return "Fleet mode (one coordinator, N workers):";
    case Section::kMaint: return "Cache maintenance mode:";
    case Section::kShared: return "Shared:";
  }
  return "";
}

/// --help text, generated from kFlags so it cannot drift from the parser.
void print_usage() {
  std::printf("nnr_run: stability-study runner\n");
  for (const Section section : {Section::kSingle, Section::kStudy,
                                Section::kFleet, Section::kMaint,
                                Section::kShared}) {
    std::printf("\n%s\n", section_title(section));
    for (const FlagSpec& spec : kFlags) {
      if (spec.section != section) continue;
      std::string label = spec.name;
      if (spec.value != nullptr) {
        label += ' ';
        label += spec.value;
      }
      const char* help = spec.help;
      bool first = true;
      while (help != nullptr) {
        const char* newline = std::strchr(help, '\n');
        const std::string line =
            newline != nullptr ? std::string(help, newline) : std::string(help);
        if (first) {
          std::printf("  %-17s %s\n", label.c_str(), line.c_str());
          first = false;
        } else {
          std::printf("  %-17s %s\n", "", line.c_str());
        }
        help = newline != nullptr ? newline + 1 : nullptr;
      }
    }
  }
  std::printf("%s", kUsageFooter);
}

const FlagSpec* find_flag(const char* arg) {
  for (const FlagSpec& spec : kFlags) {
    if (std::strcmp(spec.name, arg) == 0) return &spec;
  }
  return nullptr;
}

/// Appends the study names listed in `path` (one per line or comma-
/// separated; blank lines and '#' comments skipped).
void load_study_file(Options& opts, const std::string& path) {
  std::ifstream in(path);
  if (!in) usage_error("--study-file: cannot open the file");
  std::string line;
  while (std::getline(in, line)) {
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    // Trim whitespace around the whole line; names themselves have none.
    std::string trimmed;
    for (const char c : line) {
      if (c != ' ' && c != '\t' && c != '\r') trimmed += c;
    }
    if (!trimmed.empty()) append_studies(opts, trimmed);
  }
}

Options parse_args(int argc, char** argv) {
  Options opts;
  {
    const sched::CacheConfig env = sched::cache_config_from_env();
    opts.cache_dir = env.dir;
    opts.cache_url = env.url;
    opts.cache_budget = env.budget;
  }
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "-h") == 0) arg = "--help";
    const FlagSpec* spec = find_flag(arg);
    if (spec == nullptr) usage_error("unknown flag");
    const char* value = nullptr;
    if (spec->value != nullptr) {
      if (i + 1 >= argc) usage_error("flag needs a value");
      value = argv[++i];
    }
    if (spec->section == Section::kSingle) opts.single_cell_flags_used = true;
    spec->apply(opts, value);
  }
  if (!opts.study_file.empty()) load_study_file(opts, opts.study_file);
  if (opts.study_mode_requested && opts.studies.empty()) {
    usage_error("--study/--study-file named no studies (empty list or a "
                "file of only comments) — refusing to fall back to "
                "single-cell mode");
  }
  if (!opts.studies.empty() && opts.single_cell_flags_used) {
    usage_error("--study runs fixed registry grids; it cannot be combined "
                "with --task/--device/--variant/--all-variants/--optimizer/"
                "--replicates/--epochs (scale studies via NNR_* env knobs)");
  }
  if (opts.cache_gc && (!opts.studies.empty() || opts.single_cell_flags_used)) {
    usage_error("--cache-gc is a standalone maintenance mode; combine it "
                "only with --cache-dir/--cache-url/--cache-budget");
  }
  if (opts.submit_mode && opts.submit_studies.empty()) {
    usage_error("--submit named no studies");
  }
  if (opts.submit_mode && opts.worker_mode) {
    usage_error("--submit and --worker are different roles; run them as "
                "separate processes");
  }
  if ((opts.submit_mode || opts.worker_mode) &&
      (opts.study_mode_requested || opts.single_cell_flags_used ||
       opts.cache_gc)) {
    usage_error("--submit/--worker are standalone fleet modes; they cannot "
                "be combined with --study/--study-file, single-cell flags, "
                "or --cache-gc");
  }
  if ((opts.submit_mode || opts.worker_mode) && opts.cache_url.empty()) {
    usage_error("--submit/--worker need the daemon's queue: pass "
                "--cache-url/NNR_CACHE_URL (tcp://host:port of nnr_cached)");
  }
  return opts;
}

/// The backend the options select (nullptr = no cache). --cache-url wins
/// over --cache-dir, mirroring make_cache_backend's env precedence.
std::unique_ptr<sched::CacheBackend> make_backend(const Options& opts) {
  sched::CacheConfig config;
  config.dir = opts.cache_dir;
  config.url = opts.cache_url;
  config.budget = opts.cache_budget;
  try {
    return sched::make_cache_backend(config);
  } catch (const std::invalid_argument& error) {
    usage_error(error.what());
  }
}

int run_cache_gc(const Options& opts) {
  auto backend = make_backend(opts);
  if (backend == nullptr) {
    usage_error("--cache-gc needs a cache (--cache-dir/NNR_CACHE_DIR or "
                "--cache-url/NNR_CACHE_URL)");
  }
  const sched::GcStats gc = backend->gc();
  std::printf("[cache-gc] target=%s removed_tmp=%lld removed_locks=%lld "
              "evicted=%lld evicted_bytes=%lld entries=%lld bytes=%lld\n",
              backend->describe().c_str(),
              static_cast<long long>(gc.removed_tmp),
              static_cast<long long>(gc.removed_locks),
              static_cast<long long>(gc.evicted),
              static_cast<long long>(gc.evicted_bytes),
              static_cast<long long>(gc.entries),
              static_cast<long long>(gc.bytes));
  return 0;
}

void emit_table(const Options& opts, const core::TextTable& table,
                const std::string& experiment, const std::string& slug,
                const std::string& title) {
  if (opts.csv) {
    std::printf("%s", table.render_csv().c_str());
  } else if (opts.json) {
    std::printf("%s", report::render_json(table).c_str());
  } else {
    std::printf("%s\n", table.render(title).c_str());
  }
  if (!opts.out_dir.empty()) {
    report::Exporter exporter(opts.out_dir);
    exporter.write(table, experiment, slug, title);
  }
}

void report_cache(const sched::StudyResult& result, bool cache_enabled) {
  if (cache_enabled) {
    std::fprintf(stderr, "[cache] %s\n",
                 sched::cache_stats_line(result).c_str());
  }
  std::fprintf(stderr, "[study] trained=%lld\n",
               static_cast<long long>(result.trained));
}

/// --threads N (> 0) must win over NNR_THREADS (flag > env > hardware), and
/// a RunOptions cap can only narrow the shared pool — so widen the pool
/// itself first. Safe here: nothing has run on the pool yet.
void apply_thread_flag(int threads) {
  if (threads > 0) runtime::ThreadPool::set_global_threads(threads);
}

core::TextTable study_table(const sched::StudyPlan& plan,
                            const sched::StudyResult& result) {
  core::TextTable table({"Task", "Device", "Variant", "Mean acc %",
                         "STDDEV(Acc) %", "Churn %", "L2 Norm"});
  for (std::size_t c = 0; c < plan.cells().size(); ++c) {
    const sched::Cell& cell = plan.cells()[c];
    const core::VariantSummary summary = core::summarize(result.cells[c]);
    table.add_row({cell.task_name, cell.job.device.name,
                   std::string(core::variant_name(cell.job.variant)),
                   core::fmt_float(summary.accuracy_pct(), 2),
                   core::fmt_float(summary.accuracy_stddev_pct(), 3),
                   core::fmt_float(summary.churn_pct(), 2),
                   core::fmt_float(summary.mean_l2, 4)});
  }
  return table;
}

int run_study_mode(const Options& opts) {
  std::vector<const sched::StudyDef*> defs;
  defs.reserve(opts.studies.size());
  for (const std::string& name : opts.studies) {
    const sched::StudyDef* def = sched::find_study(name);
    if (def == nullptr) {
      std::fprintf(stderr, "nnr_run: unknown study '%s'\n", name.c_str());
      usage_error("unknown --study");
    }
    defs.push_back(def);
  }

  std::vector<sched::StudyPlan> plans;
  plans.reserve(defs.size());
  std::vector<const sched::StudyPlan*> plan_ptrs;
  for (const sched::StudyDef* def : defs) {
    plans.push_back(def->make_plan());
    plan_ptrs.push_back(&plans.back());
  }

  apply_thread_flag(opts.threads);
  auto backend = make_backend(opts);
  sched::RunOptions run_opts;
  run_opts.threads = opts.threads;
  run_opts.progress = true;
  run_opts.cache = backend.get();
  const sched::BatchResult batch = sched::run_batch(plan_ptrs, run_opts);

  for (std::size_t p = 0; p < plans.size(); ++p) {
    const sched::StudyPlan& plan = plans[p];
    emit_table(opts, study_table(plan, batch.studies[p]), "study",
               plan.name(),
               "study " + plan.name() + " (" + defs[p]->description + ")");
    if (!opts.out_dir.empty() && backend != nullptr) {
      // Cache activity as its own artifact — kept out of the study table so
      // cold- and warm-cache runs emit byte-identical study files.
      report::Exporter exporter(opts.out_dir);
      exporter.write(sched::cache_stats_table(batch.studies[p]),
                     "cache_stats", plan.name(),
                     "replicate cache activity: " + plan.name());
    }
  }

  if (plans.size() > 1) {
    std::fprintf(stderr, "[batch] studies=%zu coalesced=%lld deferred=%lld\n",
                 plans.size(), static_cast<long long>(batch.coalesced),
                 static_cast<long long>(batch.deferred));
  }
  // Batch-wide totals in the one grep-able shape scripts rely on.
  sched::StudyResult totals;
  totals.cache = batch.cache;
  totals.trained = batch.trained;
  report_cache(totals, backend != nullptr);
  return 0;
}

/// Fleet coordinator: submit the named studies to the daemon's work queue,
/// wait for the fleet to drain it, then replay the studies locally against
/// the (now warm) cache so the emitted tables are byte-identical to a
/// plain `--study` run.
int run_fleet_submit_mode(const Options& opts) {
  for (const std::string& name : opts.submit_studies) {
    if (sched::find_study(name) == nullptr) {
      std::fprintf(stderr, "nnr_run: unknown study '%s'\n", name.c_str());
      usage_error("unknown --submit study");
    }
  }
  // The work queue lives on the FIRST shard of the map; a multi-shard
  // --cache-url only changes where cache *entries* live (each worker
  // routes its loads/stores by rendezvous hash). Caveat documented in
  // docs/nnr_run.md: the submit-time "already cached" dedupe only sees the
  // queue shard's directory, so keys owned by other shards enqueue and are
  // then reported kServed by the first worker to fetch them.
  const std::vector<std::string> urls =
      sched::split_cache_urls(opts.cache_url);
  std::unique_ptr<sched::RemoteCacheBackend> backend;
  try {
    if (urls.empty()) {
      throw std::invalid_argument("--submit requires --cache-url");
    }
    backend = sched::make_remote_cache_backend(urls[0]);
  } catch (const std::invalid_argument& error) {
    usage_error(error.what());
  }
  // Unlike caching (where an unreachable daemon degrades to local compute),
  // the coordinator's entire job is the daemon — fail loudly up front. A
  // few retries first, so one lost frame on a flaky link (or a daemon a
  // beat behind its supervisor) doesn't abort the wave before it starts.
  bool reachable = false;
  for (int attempt = 0; attempt < 5 && !reachable; ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(200));
    }
    reachable = backend->ping();
  }
  if (!reachable) {
    std::fprintf(stderr, "nnr_run: --submit: no nnr_cached daemon at %s\n",
                 urls[0].c_str());
    return 1;
  }
  if (urls.size() > 1) {
    // A shard map whose entries share a cache directory would let one
    // daemon answer for another shard's keys — wave results would depend
    // on which client connected first. Refuse to start the wave.
    std::unique_ptr<sched::ShardedCacheBackend> sharded;
    try {
      sharded = sched::make_sharded_cache_backend(urls);
    } catch (const std::invalid_argument& error) {
      usage_error(error.what());
    }
    if (const auto violation = sharded->verify_disjoint()) {
      std::fprintf(stderr, "nnr_run: --submit: %s\n", violation->c_str());
      return 1;
    }
  }
  sched::FleetSubmitOptions fleet_opts;
  const auto summary = sched::fleet_submit_and_wait(
      *backend, opts.submit_studies, fleet_opts);
  if (!summary.has_value()) return 1;
  if (summary->failed > 0) {
    std::fprintf(stderr,
                 "[fleet] %llu cells failed %u attempts and will train "
                 "locally in the replay\n",
                 static_cast<unsigned long long>(summary->failed),
                 sched::FleetQueue::kMaxAttempts);
  }
  backend.reset();  // the replay opens its own connection

  Options warm = opts;
  warm.studies = opts.submit_studies;
  return run_study_mode(warm);
}

int run_fleet_worker_mode(const Options& opts) {
  // Queue RPCs (FETCH/REPORT) go to the first shard — the queue daemon.
  // Entry traffic (the load-before-train and the PUT) goes through the
  // sharded tier when the map has more than one shard, so every result
  // lands on its key's owner daemon.
  const std::vector<std::string> urls =
      sched::split_cache_urls(opts.cache_url);
  std::unique_ptr<sched::RemoteCacheBackend> backend;
  std::unique_ptr<sched::ShardedCacheBackend> cache;
  try {
    if (urls.empty()) {
      throw std::invalid_argument("--worker requires --cache-url");
    }
    backend = sched::make_remote_cache_backend(urls[0]);
    if (urls.size() > 1) cache = sched::make_sharded_cache_backend(urls);
  } catch (const std::invalid_argument& error) {
    usage_error(error.what());
  }
  apply_thread_flag(opts.threads);
  sched::FleetWorkerOptions worker_opts;
  // Chaos scripts crank these up so a worker rides out a shard restart
  // instead of burning one of the queue's bounded attempts per cell.
  if (const std::int64_t n = core::env_int("NNR_FLEET_STORE_RETRIES", -1);
      n >= 0) {
    worker_opts.store_retries = n;
  }
  if (const std::int64_t ms = core::env_int("NNR_FLEET_STORE_RETRY_MS", -1);
      ms >= 0) {
    worker_opts.store_retry_ms = ms;
  }
  const sched::FleetWorkerSummary summary =
      sched::fleet_run_worker(*backend, worker_opts, cache.get());
  std::fprintf(stderr, "[worker] fetched=%lld trained=%lld served=%lld "
               "failed=%lld\n",
               static_cast<long long>(summary.fetched),
               static_cast<long long>(summary.trained),
               static_cast<long long>(summary.served),
               static_cast<long long>(summary.failed));
  return summary.failed > 0 ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts = parse_args(argc, argv);
  if (opts.cache_gc) return run_cache_gc(opts);
  if (opts.submit_mode) return run_fleet_submit_mode(opts);
  if (opts.worker_mode) return run_fleet_worker_mode(opts);
  if (!opts.studies.empty()) return run_study_mode(opts);

  const core::TaskInfo* info = core::find_task(opts.task);
  if (info == nullptr) usage_error("unknown --task");

  const std::optional<hw::DeviceSpec> device = hw::find_device(opts.device);
  if (!device) usage_error("unknown --device");

  core::Task task = info->make();
  if (opts.epochs > 0) task.recipe.epochs = opts.epochs;
  const std::int64_t replicates =
      opts.replicates > 0 ? opts.replicates : task.default_replicates;

  // The single-cell path is a one-off study: one cell per requested variant,
  // scheduled and cached exactly like the registry studies.
  sched::StudyPlan plan("nnr_run_" + opts.task);
  const core::Task& owned = plan.own_task(std::move(task));
  for (const core::NoiseVariant variant : opts.variants) {
    sched::Cell& cell = plan.add_cell(owned, variant, *device, replicates);
    cell.job.make_optimizer = opts.optimizer;
    cell.optimizer_id = opts.optimizer_name;
  }

  apply_thread_flag(opts.threads);
  auto backend = make_backend(opts);
  sched::RunOptions run_opts;
  run_opts.threads = opts.threads;
  run_opts.progress = true;
  run_opts.cache = backend.get();
  const sched::StudyResult result = sched::run_plan(plan, run_opts);

  core::TextTable table({"Task", "Device", "Variant", "Mean acc %",
                         "STDDEV(Acc) %", "Churn %", "L2 Norm"});
  for (std::size_t c = 0; c < plan.cells().size(); ++c) {
    const core::VariantSummary summary = core::summarize(result.cells[c]);
    table.add_row({owned.name, device->name,
                   std::string(core::variant_name(plan.cells()[c].job.variant)),
                   core::fmt_float(summary.accuracy_pct(), 2),
                   core::fmt_float(summary.accuracy_stddev_pct(), 3),
                   core::fmt_float(summary.churn_pct(), 2),
                   core::fmt_float(summary.mean_l2, 4)});
  }

  const std::string title = "nnr_run stability summary (" +
                            std::to_string(replicates) + " replicates)";
  emit_table(opts, table, "nnr_run", opts.task, title);
  report_cache(result, backend != nullptr);
  return 0;
}
