#!/usr/bin/env bash
# Builds the tree in Release and records the tensor perf trajectory to
# BENCH_tensor.json at the repo root.
#
#   tools/run_bench.sh [build-dir]
#
# Env: NNR_QUICK=1 for smoke-test scale, NNR_THREADS to size the host pool.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build-release}"

cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release \
      -DNNR_BUILD_TESTS=OFF
cmake --build "$build_dir" -j "$(nproc)" --target bench_micro_gemm

"$build_dir/bench/bench_micro_gemm" "$repo_root/BENCH_tensor.json"
