#!/usr/bin/env bash
# Docs link check: every relative markdown link target in the repo's *.md
# files must exist. External links (http/https/mailto) and pure anchors
# are skipped; anchors on relative links are stripped before the check.
#
# Usage: check_docs_links.sh [repo-root]    (default: the script's repo)
set -euo pipefail

ROOT="${1:-$(cd "$(dirname "$0")/.." && pwd)}"
cd "$ROOT"

fail=0
checked=0
# Repo-tracked markdown only (never build trees or vendored files).
while IFS= read -r md; do
  dir="$(dirname "$md")"
  # Extract ](target) link targets, tolerating multiple links per line.
  while IFS= read -r target; do
    [ -n "$target" ] || continue
    case "$target" in
      http://*|https://*|mailto:*|\#*|*@*) continue ;;
    esac
    path="${target%%#*}"          # strip anchors
    [ -n "$path" ] || continue
    checked=$((checked + 1))
    if [ ! -e "$dir/$path" ]; then
      echo "BROKEN: $md -> $target"
      fail=1
    fi
  done < <(grep -o ']([^)]*)' "$md" | sed 's/^](//; s/)$//')
done < <(git ls-files '*.md')

if [ "$fail" -ne 0 ]; then
  echo "docs link check FAILED"
  exit 1
fi
echo "docs link check OK ($checked relative links)"
