// Reproduces paper Figure 3 and Table 5: noise disproportionately destabilizes
// underrepresented sub-groups on the CelebA stand-in.
//
// ResNet-18 (scaled, 2-way head) trained on SynthCelebA under each noise
// variant; per-sub-group stddev of accuracy / FPR / FNR over replicates,
// normalized against the overall-dataset stddev (the paper's Y axis).
//
// Paper reference (V100): Old up to 3.31x stddev(acc); Male up to 4.60x
// stddev(FNR) — the rare-positive groups (Table 3) are the unstable ones.
#include <array>

#include "bench_util.h"
#include "core/table.h"
#include "data/synth_celeba.h"
#include "nn/zoo.h"

namespace {

using namespace nnr;

struct CelebaCell {
  core::SubgroupStability all;
  core::SubgroupStability male, female, young, old;
};

std::vector<std::uint8_t> complement(const std::vector<std::uint8_t>& mask) {
  std::vector<std::uint8_t> out(mask.size());
  for (std::size_t i = 0; i < mask.size(); ++i) out[i] = mask[i] ? 0 : 1;
  return out;
}

}  // namespace

int main() {
  bench::banner("Figure 3 / Table 5",
                "Sub-group stddev of accuracy/FPR/FNR on SynthCelebA (V100)");

  const core::Scale scale = core::resolve_scale(10, 10, 2048, 1024);
  data::SynthCelebAConfig cfg;
  cfg.train_n = scale.train_n;
  cfg.test_n = scale.test_n;
  const data::AttributeDataset celeba = data::make_synth_celeba(cfg);

  // Wrap the binary attribute task as 2-class classification.
  core::Task task;
  task.name = "ResNet18 CelebA*";
  task.dataset.name = celeba.name;
  task.dataset.train.images = celeba.train.images;
  task.dataset.train.num_classes = 2;
  for (std::uint8_t t : celeba.train.target) {
    task.dataset.train.labels.push_back(t);
  }
  task.dataset.test.images = celeba.test.images;
  task.dataset.test.num_classes = 2;
  for (std::uint8_t t : celeba.test.target) {
    task.dataset.test.labels.push_back(t);
  }
  task.make_model = [] { return nn::resnet18s(2); };
  task.recipe = core::celeba_recipe(scale.epochs);
  task.recipe.base_lr = 0.02F;

  const std::vector<std::uint8_t>& male = celeba.test.male;
  const std::vector<std::uint8_t> female = complement(male);
  const std::vector<std::uint8_t>& young = celeba.test.young;
  const std::vector<std::uint8_t> old = complement(young);
  const std::vector<std::uint8_t> all;  // empty mask = everyone

  // One cell per variant; the 2-class CelebA wrapper is not a registry task,
  // so the plan owns it locally.
  sched::StudyPlan plan("fig3_subgroup_celeba");
  const core::Task& owned = plan.own_task(std::move(task));
  for (const core::NoiseVariant variant : bench::observed_variants()) {
    plan.add_cell(owned, variant, hw::v100(), scale.replicates);
  }
  const sched::StudyResult result = bench::run_study(plan);

  core::TextTable table({"Variant", "Metric", "All", "Male", "Female",
                         "Young", "Old"});
  for (std::size_t c = 0; c < plan.cells().size(); ++c) {
    const core::NoiseVariant variant = plan.cells()[c].job.variant;
    const auto& results = result.cells[c];

    auto stats_for = [&](const std::vector<std::uint8_t>& mask) {
      return core::subgroup_stability(results, celeba.test.target, mask);
    };
    const core::SubgroupStability s_all = stats_for(all);
    const core::SubgroupStability s_male = stats_for(male);
    const core::SubgroupStability s_female = stats_for(female);
    const core::SubgroupStability s_young = stats_for(young);
    const core::SubgroupStability s_old = stats_for(old);

    auto emit = [&](const char* metric,
                    auto member) {
      const double base = (s_all.*member).stddev();
      auto cell = [&](const core::SubgroupStability& s) {
        const double v = (s.*member).stddev();
        const double rel = base > 0 ? v / base : 0.0;
        return core::fmt_float(v * 100.0, 3) + " (" +
               core::fmt_float(rel, 2) + "x)";
      };
      table.add_row({std::string(core::variant_name(variant)), metric,
                     core::fmt_float(base * 100.0, 3) + " (1x)",
                     cell(s_male), cell(s_female), cell(s_young),
                     cell(s_old)});
    };
    emit("STDDEV(Accuracy)", &core::SubgroupStability::accuracy);
    emit("STDDEV(FPR)", &core::SubgroupStability::fpr);
    emit("STDDEV(FNR)", &core::SubgroupStability::fnr);
  }

  nnr::bench::emit(table, "fig3_subgroup_celeba", "t1",
              "Figure 3 / Table 5: sub-group instability "
                           "(stddev in % points; (Nx) = relative to All)");
  std::printf(
      "Paper (V100): Old 3.31x stddev(acc); Male 4.60x stddev(FNR) under "
      "ALGO+IMPL; underrepresented-positive groups are the unstable ones.\n");
  return 0;
}
