// Ablation: stability across architecture families at a fixed task.
//
// The paper observes that "architecture appears to play a larger role than
// dataset in the amplification or curbing of system noise" (§3.1) but only
// contrasts SmallCNN vs ResNet-18. This bench widens the comparison to five
// families on the same CIFAR-10 stand-in — plain shallow (SmallCNN±BN),
// plain deep (VGG-s), residual (ResNet-18-s / ResNet-50-s), and
// depthwise-separable (MobileNet-s) — under each noise source.
//
// Two architectural axes are in play: normalization (the paper's Fig. 2
// subject) and the width of each reduction. Depthwise convs contract over
// k*k addends instead of C*k*k, so MobileNet-s exposes the least
// accumulation-reorder surface per kernel — the training-side counterpart of
// its ~101% deterministic-overhead profile (Fig. 8a).
#include <vector>

#include "bench_util.h"
#include "core/table.h"

int main() {
  using namespace nnr;
  bench::banner("Ablation: architecture families",
                "stddev(acc) / churn / L2 by architecture on the CIFAR-10 "
                "stand-in (V100)");

  const sched::StudyPlan plan =
      sched::find_study("ablation_architecture")->make_plan();
  const sched::StudyResult result = bench::run_study(plan);

  core::TextTable table(
      {"Architecture", "Variant", "STDDEV(Acc) %", "Churn %", "L2 Norm"});
  for (std::size_t i = 0; i < plan.cells().size(); ++i) {
    const sched::Cell& cell = plan.cells()[i];
    const auto summary = core::summarize(result.cells[i]);
    table.add_row({cell.task_name,
                   std::string(core::variant_name(cell.job.variant)),
                   core::fmt_float(summary.accuracy_stddev_pct(), 3),
                   core::fmt_float(summary.churn_pct(), 2),
                   core::fmt_float(summary.mean_l2, 4)});
  }
  nnr::bench::emit(table, "ablation_architecture", "t1",
                   "Stability by architecture family");

  std::printf(
      "Expected shape: SmallCNN (no BN) is the noisiest family on every "
      "measure; adding BN or residual wiring curbs all three metrics "
      "(paper S3.1/Fig. 2); the gap between families exceeds the gap "
      "between datasets for any one family (paper's architecture-over-"
      "dataset observation).\n");
  return 0;
}
