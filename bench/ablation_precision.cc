// Extension ablation: accumulation precision as a tooling-noise axis.
//
// Measures, for each numeric format, (a) the rounding-error magnitude of a
// gradient-sized reduction, and (b) how much a reordering of the same
// addends moves the result — the seed perturbation that training chaos
// amplifies. Coarser grids mean larger ordering noise: fp16/bf16
// accumulation (Tensor-Core era defaults) widens the very noise channel the
// paper characterizes for fp32.
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/table.h"
#include "rng/generator.h"
#include "tensor/precision.h"

int main() {
  using namespace nnr;
  using tensor::Precision;
  std::printf("== Ablation: accumulation precision ==\n"
              "Reduction error and order sensitivity per numeric format "
              "(65536 gradient-scale addends, 64 reorderings)\n\n");

  rng::Generator gen(0xFEEDF00D);
  constexpr std::size_t kN = 1 << 16;
  std::vector<float> values(kN);
  for (float& v : values) v = 1e-3F * gen.normal();  // gradient-ish scale
  double exact = 0.0;
  for (float v : values) exact += v;

  core::TextTable table({"Format", "ULP@1", "Sum abs error",
                         "Reorder spread (max-min)", "Distinct results /64"});
  for (const Precision precision :
       {Precision::kFloat32, Precision::kFloat16, Precision::kBfloat16}) {
    const char* name = precision == Precision::kFloat32   ? "float32"
                       : precision == Precision::kFloat16 ? "float16"
                                                          : "bfloat16";
    const float base = tensor::reduce_sum_quantized(values, precision);

    rng::Generator shuffler(7);
    std::vector<float> shuffled = values;
    float min_sum = base;
    float max_sum = base;
    std::vector<float> seen = {base};
    for (int trial = 0; trial < 64; ++trial) {
      shuffler.shuffle(std::span<float>(shuffled));
      const float sum = tensor::reduce_sum_quantized(shuffled, precision);
      min_sum = std::min(min_sum, sum);
      max_sum = std::max(max_sum, sum);
      bool known = false;
      for (float s : seen) {
        if (s == sum) known = true;
      }
      if (!known) seen.push_back(sum);
    }
    table.add_row({name,
                   core::fmt_float(tensor::ulp_at_one(precision), 7),
                   core::fmt_float(std::fabs(base - exact), 7),
                   core::fmt_float(max_sum - min_sum, 7),
                   std::to_string(seen.size())});
  }
  nnr::bench::emit(table, "ablation_precision", "t1",
              "Precision ablation");
  std::printf("Expected shape: both error and reorder spread grow by orders "
              "of magnitude from float32 to float16 to bfloat16 — reduced "
              "precision amplifies implementation noise.\n\n");

  // Part B: the numerical mitigation. Deterministic kernels fix the order
  // (paper §4's costly path); Kahan summation instead shrinks the rounding
  // error every order produces. Same 64 reorderings, naive vs compensated.
  {
    std::vector<std::uint32_t> order(values.size());
    for (std::size_t i = 0; i < order.size(); ++i) {
      order[i] = static_cast<std::uint32_t>(i);
    }
    rng::Generator shuffler(11);
    float naive_min = 0.0F;
    float naive_max = 0.0F;
    float kahan_min = 0.0F;
    float kahan_max = 0.0F;
    std::vector<float> naive_seen;
    std::vector<float> kahan_seen;
    for (int trial = 0; trial < 64; ++trial) {
      shuffler.shuffle(std::span<std::uint32_t>(order));
      const float naive = tensor::reduce_sum_permuted(values, order);
      const float kahan = tensor::reduce_sum_kahan_permuted(values, order);
      if (trial == 0) {
        naive_min = naive_max = naive;
        kahan_min = kahan_max = kahan;
      }
      naive_min = std::min(naive_min, naive);
      naive_max = std::max(naive_max, naive);
      kahan_min = std::min(kahan_min, kahan);
      kahan_max = std::max(kahan_max, kahan);
      auto record = [](std::vector<float>& seen, float sum) {
        for (const float s : seen) {
          if (s == sum) return;
        }
        seen.push_back(sum);
      };
      record(naive_seen, naive);
      record(kahan_seen, kahan);
    }
    core::TextTable mitigation({"Summation", "Abs error vs exact",
                                "Reorder spread (max-min)",
                                "Distinct results /64"});
    float naive_identity = 0.0F;
    for (const float v : values) naive_identity += v;
    mitigation.add_row(
        {"naive float32",
         core::fmt_float(std::fabs(naive_identity - exact), 7),
         core::fmt_float(naive_max - naive_min, 7),
         std::to_string(naive_seen.size())});
    mitigation.add_row({"Kahan float32",
                        core::fmt_float(
                            std::fabs(tensor::reduce_sum_kahan(values) -
                                      static_cast<float>(exact)),
                            7),
                        core::fmt_float(kahan_max - kahan_min, 7),
                        std::to_string(kahan_seen.size())});
    nnr::bench::emit(mitigation, "ablation_precision", "t2",
              "Part B: compensated-summation mitigation");
    std::printf(
        "Expected shape: Kahan collapses the reorder spread by orders of "
        "magnitude (often to a single distinct result) without restricting "
        "the schedule — a numerical alternative to deterministic kernels, "
        "at ~4 flops per addend instead of menu restriction.\n");
  }
  return 0;
}
