// Ablation: where does churn live?
//
// The paper's §3.2 finding is that noise concentrates on under-represented
// sub-groups and "features in the long-tail". This bench gives the
// example-level view: train replicate sets under each noise variant and
// measure how unevenly prediction flips distribute over test examples. If
// churn were i.i.d. across examples, the top decile would carry ~10% of
// flips and the Gini coefficient would sit near zero; the long-tail
// hypothesis predicts a heavy concentration instead — the same examples
// flip under every source of noise.
#include "bench_util.h"
#include "core/table.h"
#include "metrics/stability.h"

int main() {
  using namespace nnr;
  bench::banner("Ablation: churn concentration",
                "Per-example flip-rate distribution (ResNet18 CIFAR-10, "
                "V100)");

  const sched::StudyPlan plan =
      sched::find_study("ablation_churn_concentration")->make_plan();
  const sched::StudyResult result = bench::run_study(plan);

  core::TextTable table({"Variant", "Churn %", "Never flip %",
                         "Top-decile share %", "Gini"});
  for (std::size_t i = 0; i < plan.cells().size(); ++i) {
    std::vector<std::vector<std::int32_t>> predictions;
    predictions.reserve(result.cells[i].size());
    for (const core::RunResult& r : result.cells[i]) {
      predictions.push_back(r.test_predictions);
    }
    const auto rates = metrics::per_example_flip_rate(predictions);
    const auto conc = metrics::churn_concentration(rates);
    table.add_row({std::string(core::variant_name(plan.cells()[i].job.variant)),
                   core::fmt_float(conc.mean_flip_rate * 100.0, 2),
                   core::fmt_float(conc.frac_never_flip * 100.0, 1),
                   core::fmt_float(conc.top_decile_share * 100.0, 1),
                   core::fmt_float(conc.gini, 3)});
  }
  nnr::bench::emit(table, "ablation_churn_concentration", "t1",
              "Churn concentration by noise source");
  std::printf(
      "Expected shape: a large fraction of examples never flip while the "
      "top decile carries far more than 10%% of all flips (Gini well above "
      "0) — churn concentrates on a hard long-tail, mirroring the paper's "
      "sub-group finding at example granularity.\n");
  return 0;
}
