// Shared plumbing for the table/figure reproduction benches.
//
// Every bench builds its experiment grid as a sched::StudyPlan (usually via
// the named-study registry) and runs it through bench::run_study, which
// schedules the flattened (cell, replicate) grid on the shared
// runtime::ThreadPool and serves replicates from the persistent cache when
// NNR_CACHE_DIR (filesystem) or NNR_CACHE_URL (nnr_cached daemon) is set.
// Thread sizing follows one precedence everywhere: --threads flag (tools
// resize the pool before running) > NNR_THREADS > hardware concurrency.
#pragma once

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/env.h"
#include "core/study.h"
#include "core/table.h"
#include "core/tasks.h"
#include "report/exporter.h"
#include "sched/cache_backend.h"
#include "sched/registry.h"
#include "sched/scheduler.h"
#include "sched/study_plan.h"

namespace nnr::bench {

/// The three observed variants in the paper's presentation order.
inline const std::vector<core::NoiseVariant>& observed_variants() {
  return sched::observed_variants();
}

/// Process-wide cache backend configured from NNR_CACHE_URL /
/// NNR_CACHE_DIR / NNR_CACHE_BUDGET (nullptr when neither source is set).
inline sched::CacheBackend* cache() {
  static std::unique_ptr<sched::CacheBackend> backend =
      sched::make_cache_backend(sched::cache_config_from_env());
  return backend.get();
}

/// Runs `plan` on the shared host pool. Cache activity and periodic
/// [study] progress lines are reported on stderr, never in the tables, so
/// a warm-cache rerun emits byte-identical artifacts (the cache-validity
/// contract). Interrupted benches are resumable: every completed replicate
/// is already durably keyed in the cache, so a rerun trains only the rest.
inline sched::StudyResult run_study(const sched::StudyPlan& plan) {
  sched::RunOptions opts;
  opts.progress = true;
  opts.cache = cache();
  sched::StudyResult result = sched::run_plan(plan, opts);
  if (cache() != nullptr) {
    std::fprintf(stderr, "[cache %s] %s\n", plan.name().c_str(),
                 sched::cache_stats_line(result).c_str());
  }
  return result;
}

/// Standard bench banner: what is being reproduced and at what scale.
inline void banner(const char* figure, const char* description) {
  std::printf("== %s ==\n%s\n", figure, description);
  std::printf(
      "(scaled reproduction: synthetic data + simulated accelerators; see "
      "DESIGN.md. Scale via NNR_REPLICATES/NNR_EPOCHS/NNR_TRAIN_N/NNR_QUICK; "
      "set NNR_CACHE_DIR to reuse replicates across benches)\n\n");
}

/// Process-wide exporter configured from NNR_OUT_DIR (no-op when unset).
inline report::Exporter& exporter() {
  static report::Exporter e = report::Exporter::from_env();
  return e;
}

/// Prints `table` to stdout and, when NNR_OUT_DIR is set, writes
/// `<experiment>_<slug>.{txt,csv,json}` plus an index.json entry. Every
/// bench table goes through here so a single env var turns a bench run into
/// plot-ready artifacts. Slugs may be raw display names — the exporter
/// sanitizes filenames uniformly.
inline void emit(const core::TextTable& table, const char* experiment,
                 const std::string& slug, const std::string& title = "") {
  std::printf("%s\n", table.render(title).c_str());
  exporter().write(table, experiment, slug, title);
}

}  // namespace nnr::bench
