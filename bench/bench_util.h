// Shared plumbing for the table/figure reproduction benches.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "core/env.h"
#include "core/replicates.h"
#include "core/study.h"
#include "core/table.h"
#include "core/tasks.h"
#include "report/exporter.h"

#include <atomic>
#include <thread>

namespace nnr::bench {

/// Runs `replicates` training runs of `task` on `device` under `variant`
/// and returns the aggregated stability summary.
inline core::VariantSummary run_cell(const core::Task& task,
                                     core::NoiseVariant variant,
                                     const hw::DeviceSpec& device,
                                     std::int64_t replicates, int threads) {
  const core::TrainJob job = task.job(variant, device);
  const auto results = core::run_replicates(job, replicates, threads);
  return core::summarize(results);
}

/// One experiment cell of a sweep: (task, variant, device, replicates).
/// Tasks are referenced, not copied — keep them alive across the run.
struct CellSpec {
  const core::Task* task = nullptr;
  core::NoiseVariant variant = core::NoiseVariant::kAlgoPlusImpl;
  hw::DeviceSpec device;
  std::int64_t replicates = 10;
};

/// Runs every replicate of every cell on one shared host-thread pool — the
/// (cell, replicate) grid is flattened so the pool stays saturated even when
/// a single cell has fewer replicates than cores. Results per cell are in
/// replicate order (replicate index semantics identical to run_replicates).
inline std::vector<std::vector<core::RunResult>> run_cells(
    const std::vector<CellSpec>& cells, int threads = 0) {
  struct WorkItem {
    std::size_t cell;
    std::uint64_t replicate;
  };
  std::vector<WorkItem> items;
  std::vector<std::vector<core::RunResult>> results(cells.size());
  for (std::size_t c = 0; c < cells.size(); ++c) {
    results[c].resize(static_cast<std::size_t>(cells[c].replicates));
    for (std::int64_t r = 0; r < cells[c].replicates; ++r) {
      items.push_back({c, static_cast<std::uint64_t>(r)});
    }
  }
  if (threads == 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
  }
  std::atomic<std::size_t> next{0};
  auto worker = [&]() {
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= items.size()) return;
      const WorkItem& item = items[i];
      const CellSpec& cell = cells[item.cell];
      const core::TrainJob job = cell.task->job(cell.variant, cell.device);
      results[item.cell][item.replicate] =
          core::train_replicate(job, item.replicate);
    }
  };
  std::vector<std::thread> pool;
  const int n_workers = static_cast<int>(
      std::min<std::size_t>(static_cast<std::size_t>(threads), items.size()));
  pool.reserve(static_cast<std::size_t>(n_workers));
  for (int t = 0; t < n_workers; ++t) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
  return results;
}

/// The three observed variants in the paper's presentation order.
inline const std::vector<core::NoiseVariant>& observed_variants() {
  static const std::vector<core::NoiseVariant> variants = {
      core::NoiseVariant::kAlgoPlusImpl, core::NoiseVariant::kAlgo,
      core::NoiseVariant::kImpl};
  return variants;
}

/// Standard bench banner: what is being reproduced and at what scale.
inline void banner(const char* figure, const char* description) {
  std::printf("== %s ==\n%s\n", figure, description);
  std::printf(
      "(scaled reproduction: synthetic data + simulated accelerators; see "
      "DESIGN.md. Scale via NNR_REPLICATES/NNR_EPOCHS/NNR_TRAIN_N/NNR_QUICK)\n\n");
}

/// Process-wide exporter configured from NNR_OUT_DIR (no-op when unset).
inline report::Exporter& exporter() {
  static report::Exporter e = report::Exporter::from_env();
  return e;
}

/// Prints `table` to stdout and, when NNR_OUT_DIR is set, writes
/// `<experiment>_<slug>.{txt,csv,json}` plus an index.json entry. Every
/// bench table goes through here so a single env var turns a bench run into
/// plot-ready artifacts.
inline void emit(const core::TextTable& table, const char* experiment,
                 const std::string& slug, const std::string& title = "") {
  std::printf("%s\n", table.render(title).c_str());
  exporter().write(table, experiment, slug, title);
}

}  // namespace nnr::bench
