// Extension ablation (paper §6 future work): how does data-parallel scale-out
// change training stability?
//
// Trains replicate sets of the BN SmallCNN on simulated V100 workers with
// only IMPL noise active (all algorithmic seeds pinned), sweeping the worker
// count, and once more with the deterministic collective. Two findings to
// look for, mirroring the single-device study:
//   - churn/L2 grow with worker count (a second ordering-entropy source:
//     collective arrival order);
//   - the deterministic tree collective + deterministic kernels restore
//     bitwise reproducibility at any scale.
//
// Each (worker count, collective) configuration is one StudyPlan cell with a
// custom runner; the runner id carries the configuration, so distributed
// replicates are cacheable like any other cell.
#include "bench_util.h"
#include "core/table.h"
#include "distributed/async_param_server.h"
#include "distributed/data_parallel.h"

int main() {
  using namespace nnr;
  bench::banner("Ablation: distributed data-parallel training",
                "IMPL-only churn / L2 vs worker count (SmallCNN+BN, V100)");

  const core::Scale scale = core::resolve_scale(8, 24, 512, 256);
  core::Task task = core::small_cnn_bn_cifar10();
  task.recipe.epochs = scale.epochs;
  const std::string task_id = task.dataset.name + "|" + task.name;

  // --- Part A: synchronous ring / tree collectives. ---
  sched::StudyPlan plan("ablation_distributed");
  struct RowSpec {
    int workers;
    const char* label;
  };
  std::vector<RowSpec> rows;
  auto add_sync = [&](int workers, core::NoiseVariant variant,
                      const char* label) {
    sched::Cell& cell = plan.add_job(
        "workers=" + std::to_string(workers) + " " + label, task_id,
        task.job(variant, hw::v100()), scale.replicates);
    cell.runner_id = "dist_ring_w" + std::to_string(workers);
    cell.runner = [workers](const core::TrainJob& job,
                            core::ReplicateIds ids) {
      return distributed::train_replicate_distributed(
          job, distributed::DistributedConfig{.workers = workers}, ids.algo);
    };
    rows.push_back({workers, label});
  };
  for (const int workers : {1, 2, 4, 8}) {
    add_sync(workers, core::NoiseVariant::kImpl, "shuffled ring");
  }
  // Deterministic end-to-end at scale: IMPL toggles with deterministic mode.
  add_sync(8, core::NoiseVariant::kControl, "fixed tree (control)");
  const sched::StudyResult result = bench::run_study(plan);

  core::TextTable table(
      {"Workers", "Collective", "STDDEV(Acc) %", "Churn %", "L2 Norm"});
  for (std::size_t c = 0; c < plan.cells().size(); ++c) {
    const auto summary = core::summarize(result.cells[c]);
    table.add_row({std::to_string(rows[c].workers), rows[c].label,
                   core::fmt_float(summary.accuracy_stddev_pct(), 3),
                   core::fmt_float(summary.churn_pct(), 2),
                   core::fmt_float(summary.mean_l2, 4)});
  }
  bench::emit(table, "ablation_distributed", "t1",
              "Distributed ablation (IMPL noise only)");
  std::printf(
      "Expected shape: instability grows (or stays flat) with worker count "
      "under the shuffled collective; the control row is exactly zero.\n\n");

  // --- Part B: asynchronous parameter server (stale gradients) ---
  // Arrival-order noise here is algorithmic-scale (it permutes the SGD
  // update sequence), so it should dominate the synchronous rows above.
  sched::StudyPlan async_plan("ablation_distributed_async");
  std::vector<RowSpec> async_rows;
  auto add_async = [&](int workers, bool shuffled, core::NoiseVariant variant,
                       const char* label) {
    sched::Cell& cell = async_plan.add_job(
        "async workers=" + std::to_string(workers) + " " + label, task_id,
        task.job(variant, hw::v100()), scale.replicates);
    cell.runner_id = std::string("dist_async_w") + std::to_string(workers) +
                     (shuffled ? "_shuffled" : "_roundrobin");
    cell.runner = [workers, shuffled](const core::TrainJob& job,
                                      core::ReplicateIds ids) {
      return distributed::train_replicate_async(
          job,
          distributed::AsyncConfig{.workers = workers,
                                   .shuffled_arrivals = shuffled},
          ids.algo);
    };
    async_rows.push_back({workers, label});
  };
  for (const int workers : {2, 4, 8}) {
    add_async(workers, /*shuffled=*/true, core::NoiseVariant::kImpl,
              "shuffled");
  }
  add_async(8, /*shuffled=*/false, core::NoiseVariant::kControl,
            "round-robin (control)");
  const sched::StudyResult async_result = bench::run_study(async_plan);

  core::TextTable async_table(
      {"Workers", "Arrivals", "STDDEV(Acc) %", "Churn %", "L2 Norm"});
  for (std::size_t c = 0; c < async_plan.cells().size(); ++c) {
    const auto summary = core::summarize(async_result.cells[c]);
    async_table.add_row({std::to_string(async_rows[c].workers),
                         async_rows[c].label,
                         core::fmt_float(summary.accuracy_stddev_pct(), 3),
                         core::fmt_float(summary.churn_pct(), 2),
                         core::fmt_float(summary.mean_l2, 4)});
  }
  bench::emit(async_table, "ablation_distributed", "t2",
              "Async parameter server (IMPL noise only)");
  std::printf(
      "Expected shape: async churn/L2 exceed the synchronous rows at every "
      "worker count (stale-gradient reordering is algorithmic-scale noise); "
      "the round-robin control row is exactly zero.\n");
  return 0;
}
