// Extension ablation (paper §6 future work): how does data-parallel scale-out
// change training stability?
//
// Trains replicate sets of the BN SmallCNN on simulated V100 workers with
// only IMPL noise active (all algorithmic seeds pinned), sweeping the worker
// count, and once more with the deterministic collective. Two findings to
// look for, mirroring the single-device study:
//   - churn/L2 grow with worker count (a second ordering-entropy source:
//     collective arrival order);
//   - the deterministic tree collective + deterministic kernels restore
//     bitwise reproducibility at any scale.
#include "bench_util.h"
#include "core/table.h"
#include "distributed/async_param_server.h"
#include "distributed/data_parallel.h"

int main() {
  using namespace nnr;
  bench::banner("Ablation: distributed data-parallel training",
                "IMPL-only churn / L2 vs worker count (SmallCNN+BN, V100)");

  const core::Scale scale = core::resolve_scale(8, 24, 512, 256);
  core::Task task = core::small_cnn_bn_cifar10();
  task.recipe.epochs = scale.epochs;

  core::TextTable table(
      {"Workers", "Collective", "STDDEV(Acc) %", "Churn %", "L2 Norm"});

  auto run_config = [&](int workers, core::NoiseVariant variant,
                        const char* label) {
    const core::TrainJob job = task.job(variant, hw::v100());
    std::vector<core::RunResult> results(
        static_cast<std::size_t>(scale.replicates));
    // Replicates in parallel on the host (each replicate simulates its own
    // worker pool).
    std::vector<std::thread> pool;
    std::atomic<std::int64_t> next{0};
    auto worker_fn = [&]() {
      for (;;) {
        const std::int64_t r = next.fetch_add(1);
        if (r >= scale.replicates) return;
        results[static_cast<std::size_t>(r)] =
            distributed::train_replicate_distributed(
                job, distributed::DistributedConfig{.workers = workers},
                static_cast<std::uint64_t>(r));
      }
    };
    const int host_threads =
        scale.threads > 0 ? scale.threads
                          : static_cast<int>(std::thread::hardware_concurrency());
    for (int t = 0; t < std::min<int>(host_threads,
                                      static_cast<int>(scale.replicates));
         ++t) {
      pool.emplace_back(worker_fn);
    }
    for (std::thread& t : pool) t.join();

    const auto summary = core::summarize(results);
    table.add_row({std::to_string(workers), label,
                   core::fmt_float(summary.accuracy_stddev_pct(), 3),
                   core::fmt_float(summary.churn_pct(), 2),
                   core::fmt_float(summary.mean_l2, 4)});
    std::fprintf(stderr, "  [dist] workers=%d %s done\n", workers, label);
  };

  for (const int workers : {1, 2, 4, 8}) {
    run_config(workers, core::NoiseVariant::kImpl, "shuffled ring");
  }
  // Deterministic end-to-end at scale: IMPL toggles with deterministic mode.
  run_config(8, core::NoiseVariant::kControl, "fixed tree (control)");

  nnr::bench::emit(table, "ablation_distributed", "t1",
              "Distributed ablation (IMPL noise only)");
  std::printf(
      "Expected shape: instability grows (or stays flat) with worker count "
      "under the shuffled collective; the control row is exactly zero.\n\n");

  // --- Part B: asynchronous parameter server (stale gradients) ---
  // Arrival-order noise here is algorithmic-scale (it permutes the SGD
  // update sequence), so it should dominate the synchronous rows above.
  core::TextTable async_table(
      {"Workers", "Arrivals", "STDDEV(Acc) %", "Churn %", "L2 Norm"});
  auto run_async = [&](int workers, bool shuffled,
                       core::NoiseVariant variant, const char* label) {
    const core::TrainJob job = task.job(variant, hw::v100());
    std::vector<core::RunResult> results(
        static_cast<std::size_t>(scale.replicates));
    std::vector<std::thread> pool;
    std::atomic<std::int64_t> next{0};
    auto worker_fn = [&]() {
      for (;;) {
        const std::int64_t r = next.fetch_add(1);
        if (r >= scale.replicates) return;
        results[static_cast<std::size_t>(r)] =
            distributed::train_replicate_async(
                job,
                distributed::AsyncConfig{.workers = workers,
                                         .shuffled_arrivals = shuffled},
                static_cast<std::uint64_t>(r));
      }
    };
    const int host_threads =
        scale.threads > 0
            ? scale.threads
            : static_cast<int>(std::thread::hardware_concurrency());
    for (int t = 0;
         t < std::min<int>(host_threads, static_cast<int>(scale.replicates));
         ++t) {
      pool.emplace_back(worker_fn);
    }
    for (std::thread& t : pool) t.join();

    const auto summary = core::summarize(results);
    async_table.add_row({std::to_string(workers), label,
                         core::fmt_float(summary.accuracy_stddev_pct(), 3),
                         core::fmt_float(summary.churn_pct(), 2),
                         core::fmt_float(summary.mean_l2, 4)});
    std::fprintf(stderr, "  [async] workers=%d %s done\n", workers, label);
  };

  for (const int workers : {2, 4, 8}) {
    run_async(workers, /*shuffled=*/true, core::NoiseVariant::kImpl,
              "shuffled");
  }
  run_async(8, /*shuffled=*/false, core::NoiseVariant::kControl,
            "round-robin (control)");

  nnr::bench::emit(async_table, "ablation_distributed", "t2",
              "Async parameter server (IMPL noise only)");
  std::printf(
      "Expected shape: async churn/L2 exceed the synchronous rows at every "
      "worker count (stale-gradient reordering is algorithmic-scale noise); "
      "the round-robin control row is exactly zero.\n");
  return 0;
}
