// Ablation: does training noise destabilize calibration?
//
// The paper's §3.2 finding is that noise leaves top-line accuracy intact
// while destabilizing sub-aggregate measures. Calibration is the natural
// next sub-aggregate: safety-critical deployments threshold on confidence,
// so replicate-to-replicate confidence instability is user-visible even
// when predictions agree. Per noise variant this bench reports:
//
//   - mean ECE and its stddev over replicates (is the *calibration* of the
//     model a stable property of the training setup?),
//   - the signed confidence gap (over- vs under-confidence),
//   - mean pairwise confidence divergence — stricter than churn: it is
//     nonzero whenever two replicates weight the same prediction
//     differently, even if every argmax agrees.
#include <vector>

#include "bench_util.h"
#include "core/table.h"
#include "metrics/calibration.h"
#include "metrics/stability.h"

namespace {

using namespace nnr;

}  // namespace

int main() {
  bench::banner("Ablation: calibration stability",
                "ECE / confidence-gap spread over replicates per noise "
                "variant (ResNet18 on the CIFAR-10 stand-in, V100)");

  const sched::StudyPlan plan =
      sched::find_study("ablation_calibration")->make_plan();
  const sched::StudyResult study = bench::run_study(plan);

  core::TextTable table({"Variant", "Mean ECE %", "STDDEV(ECE) %",
                         "Conf gap %", "Conf divergence %", "Churn %"});
  for (std::size_t c = 0; c < plan.cells().size(); ++c) {
    const sched::Cell& cell = plan.cells()[c];
    const auto& results = study.cells;
    const auto& labels = cell.job.dataset->test.labels;
    metrics::RunningStat ece;
    metrics::RunningStat gap;
    for (const core::RunResult& r : results[c]) {
      ece.add(metrics::expected_calibration_error(
          r.test_confidences, r.test_predictions, labels));
      gap.add(metrics::confidence_gap(r.test_confidences, r.test_predictions,
                                      labels));
    }
    metrics::RunningStat divergence;
    metrics::RunningStat churn;
    for (std::size_t i = 0; i < results[c].size(); ++i) {
      for (std::size_t j = i + 1; j < results[c].size(); ++j) {
        divergence.add(metrics::confidence_divergence(
            results[c][i].test_confidences, results[c][j].test_confidences));
        churn.add(metrics::churn(results[c][i].test_predictions,
                                 results[c][j].test_predictions));
      }
    }
    table.add_row({std::string(core::variant_name(cell.job.variant)),
                   core::fmt_float(ece.mean() * 100.0, 2),
                   core::fmt_float(ece.stddev() * 100.0, 3),
                   core::fmt_float(gap.mean() * 100.0, 2),
                   core::fmt_float(divergence.mean() * 100.0, 2),
                   core::fmt_float(churn.mean() * 100.0, 2)});
  }
  nnr::bench::emit(table, "ablation_calibration", "t1",
                   "Calibration stability by noise variant");

  std::printf(
      "Expected shape: mean ECE is similar across variants (calibration "
      "level is a property of the setup, like top-line accuracy) while "
      "STDDEV(ECE) and confidence divergence track the noise level — "
      "another sub-aggregate measure that moves when top-line metrics do "
      "not (paper S3.2). Confidence divergence is nonzero even where churn "
      "is small: replicates re-weight predictions before they flip them.\n");
  return 0;
}
