// Ablation: decompose ALGO noise into its four channels.
//
// The paper treats ALGO as a bundle (random init + shuffling + augmentation
// + stochastic layers, Table 1) and cites Summers & Dinneen 2021 for the
// per-factor decomposition. This bench isolates each channel on our stack:
// every cell trains with deterministic kernels and exactly ONE varying
// algorithmic channel, so any divergence between replicates is attributable
// to that channel alone. The ALL row is the paper's ALGO variant; NONE is
// CONTROL (must be exactly zero on all measures).
#include "bench_util.h"
#include "core/table.h"

int main() {
  using namespace nnr;
  bench::banner("Ablation: ALGO channel decomposition",
                "One varying algorithmic channel per cell, deterministic "
                "kernels (V100); SmallCNN+dropout on the CIFAR-10 stand-in");

  const sched::StudyPlan plan =
      sched::find_study("ablation_algo_channels")->make_plan();
  const sched::StudyResult result = bench::run_study(plan);

  core::TextTable table(
      {"Varying channel", "STDDEV(Acc) %", "Churn %", "L2 Norm"});
  for (std::size_t i = 0; i < plan.cells().size(); ++i) {
    const core::VariantSummary summary = core::summarize(result.cells[i]);
    table.add_row({plan.cells()[i].task_name,
                   core::fmt_float(summary.accuracy_stddev_pct(), 3),
                   core::fmt_float(summary.churn_pct(), 2),
                   core::fmt_float(summary.mean_l2, 4)});
  }
  bench::emit(table, "ablation_algo_channels", "t1",
              "ALGO channels in isolation");
  std::printf(
      "Expectations: every individual channel produces nonzero churn of the "
      "same order as the full ALGO bundle (noise is non-additive, paper "
      "S3.1); the NONE row is exactly zero on every measure.\n");
  return 0;
}
