// Ablation: decompose ALGO noise into its four channels.
//
// The paper treats ALGO as a bundle (random init + shuffling + augmentation
// + stochastic layers, Table 1) and cites Summers & Dinneen 2021 for the
// per-factor decomposition. This bench isolates each channel on our stack:
// every cell trains with deterministic kernels and exactly ONE varying
// algorithmic channel, so any divergence between replicates is attributable
// to that channel alone. The ALL row is the paper's ALGO variant; NONE is
// CONTROL (must be exactly zero on all measures).
#include <optional>

#include "bench_util.h"
#include "core/table.h"
#include "nn/zoo.h"

namespace {

using namespace nnr;

struct ChannelCell {
  const char* label;
  core::ChannelToggles toggles;
};

std::vector<ChannelCell> channel_cells() {
  using hw::DeterminismMode;
  core::ChannelToggles base;  // all pinned
  base.mode = DeterminismMode::kDeterministic;

  std::vector<ChannelCell> cells;
  {
    core::ChannelToggles t = base;
    t.init_varies = true;
    cells.push_back({"init only", t});
  }
  {
    core::ChannelToggles t = base;
    t.shuffle_varies = true;
    cells.push_back({"shuffle only", t});
  }
  {
    core::ChannelToggles t = base;
    t.augment_varies = true;
    cells.push_back({"augment only", t});
  }
  {
    core::ChannelToggles t = base;
    t.dropout_varies = true;
    cells.push_back({"dropout only", t});
  }
  {
    core::ChannelToggles t = base;
    t.init_varies = t.shuffle_varies = t.augment_varies = t.dropout_varies =
        true;
    cells.push_back({"ALL (= ALGO)", t});
  }
  cells.push_back({"NONE (= CONTROL)", base});
  return cells;
}

}  // namespace

int main() {
  using namespace nnr;
  bench::banner("Ablation: ALGO channel decomposition",
                "One varying algorithmic channel per cell, deterministic "
                "kernels (V100); SmallCNN+dropout on the CIFAR-10 stand-in");

  const int threads = static_cast<int>(core::env_int("NNR_THREADS", 0));
  const auto replicates = core::env_int("NNR_REPLICATES", 10);

  // The dropout channel needs a consumer: SmallCNN with a 0.3 dropout head.
  core::Task task = core::small_cnn_cifar10();
  task.name = "SmallCNN+dropout CIFAR-10";
  task.make_model = [] { return nn::small_cnn_dropout(10, 0.3F); };

  core::TextTable table(
      {"Varying channel", "STDDEV(Acc) %", "Churn %", "L2 Norm"});
  for (const ChannelCell& cell : channel_cells()) {
    core::TrainJob job = task.job(core::NoiseVariant::kAlgo, hw::v100());
    job.toggles_override = cell.toggles;
    const auto results = core::run_replicates(job, replicates, threads);
    const core::VariantSummary summary = core::summarize(results);
    table.add_row({cell.label,
                   core::fmt_float(summary.accuracy_stddev_pct(), 3),
                   core::fmt_float(summary.churn_pct(), 2),
                   core::fmt_float(summary.mean_l2, 4)});
  }
  nnr::bench::emit(table, "ablation_algo_channels", "t1",
              "ALGO channels in isolation");
  std::printf(
      "Expectations: every individual channel produces nonzero churn of the "
      "same order as the full ALGO bundle (noise is non-additive, paper "
      "S3.1); the NONE row is exactly zero on every measure.\n");
  return 0;
}
