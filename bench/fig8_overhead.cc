// Reproduces paper Figure 8: the GPU-time overhead of deterministic training.
//   (a) ten widely used networks x {P100, V100, T4};
//   (b) the six-layer medium CNN with kernel sizes 1/3/5/7 x {P100, V100, T4}.
//
// Paper reference: (a) VGG-19 highest (185% on V100), MobileNet ~101%;
// (b) 284%-746% (P100), 129%-241% (V100), 117%-196% (T4), monotone in k.
#include <cstdio>

#include "bench_util.h"
#include "core/table.h"
#include "profiler/cost_model.h"

int main() {
  using namespace nnr;
  using hw::GpuArch;
  std::printf("== Figure 8 ==\n"
              "Normalized deterministic execution GPU time (100%% = no "
              "overhead; batch 64, 224x224)\n\n");

  const GpuArch archs[3] = {GpuArch::kPascal, GpuArch::kVolta,
                            GpuArch::kTuring};
  const char* arch_names[3] = {"P100", "V100", "T4"};

  {
    core::TextTable table({"Network", "P100", "V100", "T4"});
    for (const profiler::NetworkDesc& net : profiler::profiled_networks()) {
      std::vector<std::string> row = {net.name};
      for (const GpuArch arch : archs) {
        row.push_back(core::fmt_pct(
            profiler::deterministic_overhead(net, arch).normalized_pct(), 1));
      }
      table.add_row(std::move(row));
    }
    nnr::bench::emit(table, "fig8_overhead", "t1",
              "Figure 8(a): across networks");
    std::printf("Paper: VGG-19 highest (185%% on V100); MobileNet ~101%%; "
                "P100 range 101-211%%, T4 range 101-196%%.\n\n");
  }

  {
    core::TextTable table({"Kernel size", "P100", "V100", "T4"});
    for (const std::int64_t k : {1, 3, 5, 7}) {
      std::vector<std::string> row = {std::to_string(k) + "x" +
                                      std::to_string(k)};
      for (const GpuArch arch : archs) {
        row.push_back(core::fmt_pct(
            profiler::deterministic_overhead(profiler::medium_cnn_desc(k), arch)
                .normalized_pct(),
            1));
      }
      table.add_row(std::move(row));
    }
    nnr::bench::emit(table, "fig8_overhead", "t2",
              "Figure 8(b): medium CNN across kernel sizes");
    std::printf("Paper: 284-746%% (P100), 129-241%% (V100), 117-196%% (T4); "
                "larger kernels always cost more.\n");
  }
  (void)arch_names;
  return 0;
}
