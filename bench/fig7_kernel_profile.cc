// Reproduces paper Figure 7: cumulative GPU time of the top-20 kernel types
// over 100 training steps, TF default mode vs deterministic mode, for VGG-19
// and InceptionV3 (V100, batch 64, 224x224).
//
// Paper reference: deterministic mode concentrates time in a narrower set of
// kernels ("the compiler is forced to use a narrow range of kernels"),
// visible as a more skewed distribution.
#include <cstdio>

#include "bench_util.h"
#include "core/table.h"
#include "hw/execution_context.h"
#include "profiler/cost_model.h"
#include "profiler/report.h"

int main() {
  using namespace nnr;
  using hw::DeterminismMode;
  std::printf("== Figure 7 ==\n"
              "Top-20 kernel-type cumulative GPU time over 100 steps "
              "(V100, batch 64)\n\n");

  const profiler::CostModel model =
      profiler::CostModel::for_arch(hw::GpuArch::kVolta);
  constexpr int kSteps = 100;
  constexpr std::int64_t kBatch = 64;

  for (const profiler::NetworkDesc& net :
       {profiler::vgg19_desc(), profiler::inception_v3_desc()}) {
    for (const DeterminismMode mode :
         {DeterminismMode::kDefault, DeterminismMode::kDeterministic}) {
      std::vector<profiler::KernelLaunch> launches;
      for (int step = 0; step < kSteps; ++step) {
        auto step_launches = model.lower_step(net, mode, kBatch);
        launches.insert(launches.end(), step_launches.begin(),
                        step_launches.end());
      }
      const auto aggregated = profiler::aggregate_by_type(launches);
      const auto top = profiler::top_k(aggregated, 20);

      core::TextTable table({"Rank", "Kernel type", "Cumulative time (s)",
                             "Launches"});
      for (std::size_t i = 0; i < top.size(); ++i) {
        table.add_row({std::to_string(i + 1), top[i].kernel_type,
                       core::fmt_float(top[i].total_ms / 1000.0, 2),
                       std::to_string(top[i].launches)});
      }
      const char* mode_name = mode == DeterminismMode::kDefault
                                  ? "TF Default Mode"
                                  : "TF Deterministic Mode";
      // The exporter sanitizes slugs; the raw display name is fine here.
      nnr::bench::emit(table, "fig7_kernel_profile",
                  net.name + (mode == DeterminismMode::kDefault
                                  ? "_default"
                                  : "_deterministic"),
                  net.name + " - " + mode_name);
      std::printf("distinct kernel types: %zu; top-1 share of GPU time: %s\n\n",
                  aggregated.size(),
                  core::fmt_pct(profiler::top1_share(aggregated) * 100.0, 1)
                      .c_str());
    }
  }
  std::printf("Paper: deterministic mode shows a more skewed allocation — "
              "fewer kernel types carrying more of the time.\n");
  return 0;
}
