// Reproduces paper Figure 2: batch normalization damps system noise.
// SmallCNN with vs without BN on the CIFAR-10 stand-in (V100), same recipe.
//
// Paper reference: stddev(acc) falls from 0.86% (no BN) to 0.30% (BN);
// churn and L2 shrink correspondingly for every noise variant.
#include "bench_util.h"
#include "core/table.h"

int main() {
  using namespace nnr;
  bench::banner("Figure 2",
                "SmallCNN +/- BatchNorm: stddev(acc) / churn / L2 (V100)");

  const int threads = static_cast<int>(core::env_int("NNR_THREADS", 0));
  core::TextTable table({"Model", "Variant", "STDDEV(Acc) %", "Churn %",
                         "L2 Norm"});

  std::vector<core::Task> tasks;
  tasks.push_back(core::small_cnn_cifar10());      // w/o BN
  tasks.push_back(core::small_cnn_bn_cifar10());   // w/ BN
  std::vector<bench::CellSpec> cells;
  for (const core::Task& task : tasks) {
    for (const core::NoiseVariant variant : bench::observed_variants()) {
      cells.push_back({&task, variant, hw::v100(), task.default_replicates});
    }
  }
  const auto all_results = bench::run_cells(cells, threads);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const auto summary = core::summarize(all_results[i]);
    table.add_row({cells[i].task->name,
                   std::string(core::variant_name(cells[i].variant)),
                   core::fmt_float(summary.accuracy_stddev_pct(), 3),
                   core::fmt_float(summary.churn_pct(), 2),
                   core::fmt_float(summary.mean_l2, 4)});
  }
  nnr::bench::emit(table, "fig2_batchnorm", "t1",
              "Figure 2: the role of BatchNorm");
  std::printf("Paper: stddev(acc) 0.86%% without BN vs 0.30%% with BN; all "
              "three instability measures shrink with BN.\n");
  return 0;
}
