// Reproduces paper Figure 2: batch normalization damps system noise.
// SmallCNN with vs without BN on the CIFAR-10 stand-in (V100), same recipe.
//
// Paper reference: stddev(acc) falls from 0.86% (no BN) to 0.30% (BN);
// churn and L2 shrink correspondingly for every noise variant.
#include "bench_util.h"
#include "core/table.h"

int main() {
  using namespace nnr;
  bench::banner("Figure 2",
                "SmallCNN +/- BatchNorm: stddev(acc) / churn / L2 (V100)");

  const sched::StudyPlan plan = sched::find_study("fig2")->make_plan();
  const sched::StudyResult result = bench::run_study(plan);

  core::TextTable table({"Model", "Variant", "STDDEV(Acc) %", "Churn %",
                         "L2 Norm"});
  for (std::size_t i = 0; i < plan.cells().size(); ++i) {
    const sched::Cell& cell = plan.cells()[i];
    const auto summary = core::summarize(result.cells[i]);
    table.add_row({cell.task_name,
                   std::string(core::variant_name(cell.job.variant)),
                   core::fmt_float(summary.accuracy_stddev_pct(), 3),
                   core::fmt_float(summary.churn_pct(), 2),
                   core::fmt_float(summary.mean_l2, 4)});
  }
  bench::emit(table, "fig2_batchnorm", "t1",
              "Figure 2: the role of BatchNorm");
  std::printf("Paper: stddev(acc) 0.86%% without BN vs 0.30%% with BN; all "
              "three instability measures shrink with BN.\n");
  return 0;
}
