// Reproduces paper Figure 1 (and Appendix Figures 9/10 with NNR_APPENDIX=1):
// stddev(accuracy), predictive churn, and normalized L2 weight distance per
// noise source, per task.
//
// Paper reference (V100): ALGO contributes more churn/L2 than IMPL for most
// tasks, but both are significant; SmallCNN (no BN) is the noisiest cell;
// combined ALGO+IMPL is sub-additive.
#include <algorithm>

#include "bench_util.h"
#include "core/table.h"

int main() {
  using namespace nnr;
  bench::banner("Figure 1",
                "stddev(acc) / churn / L2 by noise source (V100; set "
                "NNR_APPENDIX=1 to add the P100 and RTX5000 appendix runs)");

  const sched::StudyPlan plan = sched::find_study("fig1")->make_plan();
  const sched::StudyResult result = bench::run_study(plan);

  // One table per device, in first-seen cell order.
  std::vector<std::string> devices;
  for (const sched::Cell& cell : plan.cells()) {
    if (std::find(devices.begin(), devices.end(), cell.job.device.name) ==
        devices.end()) {
      devices.push_back(cell.job.device.name);
    }
  }
  for (const std::string& device : devices) {
    core::TextTable table({"Task", "Variant", "STDDEV(Acc) %", "Churn %",
                           "L2 Norm"});
    for (std::size_t i = 0; i < plan.cells().size(); ++i) {
      const sched::Cell& cell = plan.cells()[i];
      if (cell.job.device.name != device) continue;
      const auto summary = core::summarize(result.cells[i]);
      table.add_row({cell.task_name,
                     std::string(core::variant_name(cell.job.variant)),
                     core::fmt_float(summary.accuracy_stddev_pct(), 3),
                     core::fmt_float(summary.churn_pct(), 2),
                     core::fmt_float(summary.mean_l2, 4)});
    }
    bench::emit(table, "fig1_noise_sources", device,
                "Figure 1 (" + device + ")");
  }
  std::printf(
      "Paper (V100, full scale): SmallCNN churn ~25-30%% / L2 ~1.4; ResNet18 "
      "churn ~15-20%% / L2 ~0.3; IMPL < ALGO but same order of magnitude.\n");
  return 0;
}
