// Reproduces paper Figure 1 (and Appendix Figures 9/10 with NNR_APPENDIX=1):
// stddev(accuracy), predictive churn, and normalized L2 weight distance per
// noise source, per task.
//
// Paper reference (V100): ALGO contributes more churn/L2 than IMPL for most
// tasks, but both are significant; SmallCNN (no BN) is the noisiest cell;
// combined ALGO+IMPL is sub-additive.
#include <cctype>
#include "bench_util.h"
#include "core/table.h"

int main() {
  using namespace nnr;
  bench::banner("Figure 1",
                "stddev(acc) / churn / L2 by noise source (V100; set "
                "NNR_APPENDIX=1 to add the P100 and RTX5000 appendix runs)");

  std::vector<hw::DeviceSpec> devices = {hw::v100()};
  if (core::env_int("NNR_APPENDIX", 0) != 0) {
    devices.push_back(hw::p100());     // Appendix Fig. 9
    devices.push_back(hw::rtx5000());  // Appendix Fig. 10
  }
  const int threads = static_cast<int>(core::env_int("NNR_THREADS", 0));

  std::vector<core::Task> tasks;
  tasks.push_back(core::small_cnn_cifar10());
  tasks.push_back(core::resnet18_cifar10());
  tasks.push_back(core::resnet18_cifar100());
  tasks.push_back(core::resnet50_imagenet());  // V100 only in the paper

  for (const hw::DeviceSpec& device : devices) {
    const bool include_imagenet = device.name == "V100";
    std::vector<bench::CellSpec> cells;
    for (const core::Task& task : tasks) {
      if (!include_imagenet && task.name == "ResNet50 ImageNet") continue;
      for (const core::NoiseVariant variant : bench::observed_variants()) {
        cells.push_back({&task, variant, device, task.default_replicates});
      }
    }
    const auto all_results = bench::run_cells(cells, threads);

    core::TextTable table({"Task", "Variant", "STDDEV(Acc) %", "Churn %",
                           "L2 Norm"});
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const auto summary = core::summarize(all_results[i]);
      table.add_row({cells[i].task->name,
                     std::string(core::variant_name(cells[i].variant)),
                     core::fmt_float(summary.accuracy_stddev_pct(), 3),
                     core::fmt_float(summary.churn_pct(), 2),
                     core::fmt_float(summary.mean_l2, 4)});
    }
    std::string slug = device.name;
    for (char& c : slug) c = c == ' ' ? '_' : static_cast<char>(std::tolower(c));
    nnr::bench::emit(table, "fig1_noise_sources", slug,
                "Figure 1 (" + device.name + ")");
  }
  std::printf(
      "Paper (V100, full scale): SmallCNN churn ~25-30%% / L2 ~1.4; ResNet18 "
      "churn ~15-20%% / L2 ~0.3; IMPL < ALGO but same order of magnitude.\n");
  return 0;
}
