// Ablation: two-way factorial variance decomposition with significance.
//
// The paper isolates ALGO and IMPL noise as two one-dimensional slices
// through the seed space (§2.2) and reads off which source "contributes
// higher levels of instability" from point estimates (§3.1). This bench runs
// the full factorial grid instead — (algo seed i) x (scheduler-entropy seed
// j) — and decomposes Var(accuracy) into an ALGO main effect, an IMPL main
// effect, and their interaction (stats/anova.h). The interaction share is a
// direct quantification of the paper's non-additivity observation: under
// additive noise it would be ~0.
//
// It also backfills the error bars the paper's Table 2 / Fig. 1 numbers lack:
// bootstrap CIs on stddev(acc) and churn per variant, a Brown-Forsythe test
// on the equality of accuracy variances across variants, and a Welch test on
// ALGO-vs-IMPL churn.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/table.h"
#include "metrics/stability.h"
#include "rng/generator.h"
#include "stats/anova.h"
#include "stats/bootstrap.h"
#include "stats/hypothesis.h"
#include "stats/special.h"

namespace {

using namespace nnr;

std::vector<double> accuracies(const std::vector<core::RunResult>& results) {
  std::vector<double> acc;
  acc.reserve(results.size());
  for (const core::RunResult& r : results) acc.push_back(r.test_accuracy);
  return acc;
}

/// Pairwise churn matrix (upper triangle) for bootstrap_pairwise_ci.
std::vector<std::vector<double>> churn_matrix(
    const std::vector<core::RunResult>& results) {
  const std::size_t n = results.size();
  std::vector<std::vector<double>> m(n, std::vector<double>(n, 0.0));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      m[i][j] = metrics::churn(results[i].test_predictions,
                               results[j].test_predictions);
    }
  }
  return m;
}

/// %.3g formatting for F statistics, which can be enormous when the residual
/// mean square is near zero.
std::string fmt_g(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3g", v);
  return buf;
}

std::vector<double> pairwise_churn_values(
    const std::vector<core::RunResult>& results) {
  std::vector<double> v;
  for (std::size_t i = 0; i < results.size(); ++i) {
    for (std::size_t j = i + 1; j < results.size(); ++j) {
      v.push_back(metrics::churn(results[i].test_predictions,
                                 results[j].test_predictions));
    }
  }
  return v;
}

}  // namespace

int main() {
  bench::banner(
      "Ablation: factorial variance decomposition",
      "ALGO x IMPL seed grid, two-way ANOVA + bootstrap CIs + tests "
      "(ResNet18 on the CIFAR-10 stand-in, V100)");

  // ResNet-18 rather than SmallCNN: the residual net carries strong IMPL
  // noise at its default recipe (Fig. 1), so both ANOVA factors have signal
  // to decompose. SmallCNN's IMPL noise is negligible at short epochs and
  // would degenerate the grid into a pure-ALGO design.
  core::Task task = core::resnet18_cifar10();
  const core::Scale scale = core::resolve_scale(
      task.default_replicates, task.recipe.epochs,
      /*train_n=*/512, /*test_n=*/256);
  const std::int64_t grid =
      std::max<std::int64_t>(2, core::env_int("NNR_GRID", 5));
  task.recipe.epochs = scale.epochs;

  // --- Part 1: the factorial grid — one cell whose replicate schedule is
  // the full (algo seed x impl seed) cross product via explicit ids. ---
  std::vector<std::vector<double>> acc_grid(
      static_cast<std::size_t>(grid),
      std::vector<double>(static_cast<std::size_t>(grid), 0.0));
  {
    sched::StudyPlan factorial("ablation_variance_decomposition_factorial");
    sched::Cell& cell = factorial.add_job(
        "factorial " + std::to_string(grid) + "x" + std::to_string(grid),
        task.dataset.name + "|" + task.name,
        task.job(core::NoiseVariant::kAlgoPlusImpl, hw::v100()), grid * grid);
    for (std::int64_t a = 0; a < grid; ++a) {
      for (std::int64_t i = 0; i < grid; ++i) {
        cell.explicit_ids.push_back({static_cast<std::uint64_t>(a),
                                     static_cast<std::uint64_t>(i)});
      }
    }
    const sched::StudyResult factorial_result = bench::run_study(factorial);
    for (std::int64_t a = 0; a < grid; ++a) {
      for (std::int64_t i = 0; i < grid; ++i) {
        acc_grid[static_cast<std::size_t>(a)][static_cast<std::size_t>(i)] =
            factorial_result.cells[0][static_cast<std::size_t>(a * grid + i)]
                .test_accuracy;
      }
    }
  }

  const stats::TwoWayAnova anova = stats::two_way_anova(acc_grid);
  core::TextTable grid_table({"Component", "SS", "df", "Share %", "F", "p"});
  const auto add_component = [&grid_table](const char* name, double ss,
                                           double df, double share, double f,
                                           double p) {
    grid_table.add_row({name, core::fmt_float(ss * 1e4, 3), core::fmt_float(df, 0),
                        core::fmt_pct(share * 100.0, 1), fmt_g(f), fmt_g(p)});
  };
  add_component("ALGO (rows)", anova.ss_rows, anova.df_rows,
                anova.rows_share(), anova.f_rows(),
                stats::f_upper_tail_p(anova.f_rows(), anova.df_rows,
                                      anova.df_residual));
  add_component("IMPL (cols)", anova.ss_cols, anova.df_cols,
                anova.cols_share(), anova.f_cols(),
                stats::f_upper_tail_p(anova.f_cols(), anova.df_cols,
                                      anova.df_residual));
  grid_table.add_row({"Interaction (residual)",
                      core::fmt_float(anova.ss_residual * 1e4, 3),
                      core::fmt_float(anova.df_residual, 0),
                      core::fmt_pct(anova.residual_share() * 100.0, 1), "-",
                      "-"});
  nnr::bench::emit(grid_table, "ablation_variance_decomposition", "t1",
              "Two-way ANOVA of test accuracy over a " +
                          std::to_string(grid) + "x" + std::to_string(grid) +
                          " (algo x impl) seed grid  [SS scaled by 1e4]");

  // --- Part 2: per-variant error bars (the registry's per-variant grid,
  // which applies the same scale/epoch resolution as this bench). ---
  const sched::StudyPlan plan =
      sched::find_study("ablation_variance_decomposition")->make_plan();
  const auto& cells = plan.cells();
  const auto results = bench::run_study(plan).cells;

  rng::Generator boot_gen(0xB007);
  core::TextTable ci_table({"Variant", "STDDEV(Acc) % [95% CI]",
                            "Churn % [95% CI]"});
  for (std::size_t c = 0; c < cells.size(); ++c) {
    const std::vector<double> acc = accuracies(results[c]);
    const stats::BootstrapCI sd_ci =
        stats::bootstrap_stddev_ci(acc, 2000, 0.95, boot_gen);
    const stats::BootstrapCI churn_ci =
        stats::bootstrap_pairwise_ci(churn_matrix(results[c]), 2000, 0.95,
                                     boot_gen);
    ci_table.add_row(
        {std::string(core::variant_name(cells[c].job.variant)),
         core::fmt_pct(sd_ci.point * 100.0, 2) + " [" +
             core::fmt_pct(sd_ci.lo * 100.0, 2) + ", " +
             core::fmt_pct(sd_ci.hi * 100.0, 2) + "]",
         core::fmt_pct(churn_ci.point * 100.0, 1) + " [" +
             core::fmt_pct(churn_ci.lo * 100.0, 1) + ", " +
             core::fmt_pct(churn_ci.hi * 100.0, 1) + "]"});
  }
  nnr::bench::emit(ci_table, "ablation_variance_decomposition", "t2",
              "Bootstrap error bars per noise variant");

  // --- Part 3: significance of the variant comparisons. ---
  const std::vector<double> algo_churn = pairwise_churn_values(results[1]);
  const std::vector<double> impl_churn = pairwise_churn_values(results[2]);
  const stats::TestResult welch =
      stats::welch_t_test(algo_churn, impl_churn);
  const std::vector<std::vector<double>> acc_groups = {
      accuracies(results[0]), accuracies(results[1]), accuracies(results[2])};
  const stats::TestResult bf = stats::brown_forsythe_test(acc_groups);

  core::TextTable sig({"Comparison", "Statistic", "p"});
  sig.add_row({"ALGO vs IMPL churn (Welch t)", fmt_g(welch.statistic),
               fmt_g(welch.p_value)});
  sig.add_row({"Var(acc) equal across variants (Brown-Forsythe F)",
               fmt_g(bf.statistic), fmt_g(bf.p_value)});
  nnr::bench::emit(sig, "ablation_variance_decomposition", "t3",
              "Hypothesis tests");

  std::printf(
      "Expected shape: both main effects carry a significant share of "
      "variance with a non-trivial interaction share (non-additive noise, "
      "paper S3.1); churn under ALGO modestly exceeds IMPL (Welch p "
      "discriminates when the gap is real at this scale).\n");
  return 0;
}
