// Micro benchmarks for the tensor fast path: GEMM (blocked engine vs the
// seed reference loop), transpose, im2col, and a Conv2D forward/backward
// step at paper-relevant shapes. Emits BENCH_tensor.json (path = argv[1],
// default ./BENCH_tensor.json) so the repo's perf trajectory is recorded and
// regressions are visible in CI.
//
// NNR_QUICK shrinks shapes and repetitions to smoke-test scale.
// NNR_THREADS sizes the host pool; the thread-scaling rows resize it
// explicitly per measurement.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "core/env.h"
#include "hw/device.h"
#include "hw/execution_context.h"
#include "nn/conv2d.h"
#include "rng/generator.h"
#include "runtime/thread_pool.h"
#include "tensor/gemm.h"
#include "tensor/im2col.h"
#include "tensor/workspace.h"

namespace {

using nnr::tensor::AccumOrder;
using nnr::tensor::KernelPolicy;
using nnr::tensor::Shape;
using nnr::tensor::Tensor;

struct Row {
  std::string name;
  std::string shape;
  int threads = 1;
  double ns_per_step = 0.0;
  double gflops = 0.0;          // 0 for pure data-movement kernels
  double speedup_vs_ref = 0.0;  // 0 when there is no reference pairing
};

template <typename Fn>
double ns_per_step(Fn&& fn, int reps) {
  fn();  // warmup (and first-touch of any scratch)
  const auto t0 = std::chrono::steady_clock::now();
  for (int r = 0; r < reps; ++r) fn();
  const auto t1 = std::chrono::steady_clock::now();
  const auto ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count();
  return static_cast<double>(ns) / reps;
}

Tensor random_tensor(Shape shape, std::uint64_t seed) {
  nnr::rng::Generator gen(seed);
  Tensor t(shape);
  for (float& v : t.data()) v = gen.uniform(-1.0F, 1.0F);
  return t;
}

std::string dims(std::initializer_list<std::int64_t> ds) {
  std::string s;
  for (std::int64_t d : ds) {
    if (!s.empty()) s += "x";
    s += std::to_string(d);
  }
  return s;
}

void emit_json(const std::string& path, const std::vector<Row>& rows,
               bool quick) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"tensor\",\n");
  std::fprintf(f, "  \"generated_by\": \"bench_micro_gemm\",\n");
  std::fprintf(f, "  \"quick\": %s,\n", quick ? "true" : "false");
  std::fprintf(f, "  \"results\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"shape\": \"%s\", \"threads\": %d, "
                 "\"ns_per_step\": %.1f, \"gflops\": %.3f, "
                 "\"speedup_vs_reference\": %.2f}%s\n",
                 r.name.c_str(), r.shape.c_str(), r.threads, r.ns_per_step,
                 r.gflops, r.speedup_vs_ref, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = nnr::core::quick_mode();
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_tensor.json";
  const std::int64_t gemm_dim = quick ? 64 : 256;
  const int reps = quick ? 2 : 10;
  std::vector<Row> rows;

  const KernelPolicy seq{
      .order = AccumOrder::kSequential, .cuda_cores = 0, .entropy = nullptr};
  const KernelPolicy tree{.order = AccumOrder::kPairwiseTree,
                          .cuda_cores = 5120,
                          .entropy = nullptr};

  // --- GEMM: blocked engine vs seed loop, single thread. -------------------
  {
    const std::int64_t d = gemm_dim;
    const Tensor a = random_tensor(Shape{d, d}, 1);
    const Tensor b = random_tensor(Shape{d, d}, 2);
    Tensor c(Shape{d, d});
    const double flops = 2.0 * static_cast<double>(d) * d * d;
    nnr::runtime::ThreadPool::set_global_threads(1);
    struct {
      const char* name;
      const KernelPolicy* policy;
    } variants[] = {{"gemm_seq", &seq}, {"gemm_tree", &tree}};
    for (const auto& v : variants) {
      const double ref_ns = ns_per_step(
          [&] { nnr::tensor::gemm_nt_reference(a, b, c, *v.policy); }, reps);
      const double fast_ns = ns_per_step(
          [&] { nnr::tensor::gemm_nt(a, b, c, *v.policy); }, reps);
      rows.push_back({std::string(v.name) + "_reference", dims({d, d, d}), 1,
                      ref_ns, flops / ref_ns, 0.0});
      rows.push_back({std::string(v.name) + "_blocked", dims({d, d, d}), 1,
                      fast_ns, flops / fast_ns, ref_ns / fast_ns});
      std::printf("%-24s %s  %10.0f ns  %6.2f GFLOP/s  (%.2fx vs reference)\n",
                  v.name, dims({d, d, d}).c_str(), fast_ns, flops / fast_ns,
                  ref_ns / fast_ns);
    }

    // --- Thread scaling of the blocked engine. -----------------------------
    for (int threads : {1, 2, 4}) {
      nnr::runtime::ThreadPool::set_global_threads(threads);
      const double ns = ns_per_step(
          [&] { nnr::tensor::gemm_nt(a, b, c, tree); }, reps);
      rows.push_back({"gemm_tree_blocked", dims({d, d, d}), threads, ns,
                      flops / ns, 0.0});
      std::printf("%-24s %s  %10.0f ns  %6.2f GFLOP/s  (threads=%d)\n",
                  "gemm_tree_blocked", dims({d, d, d}).c_str(), ns, flops / ns,
                  threads);
    }
    nnr::runtime::ThreadPool::set_global_threads(0);
  }

  // --- Transpose at a Conv2D::backward-like shape (patch x pixels). --------
  {
    const std::int64_t r = quick ? 288 : 1152;  // 128 * 3 * 3
    const std::int64_t cdim = quick ? 512 : 2048;
    const Tensor in = random_tensor(Shape{r, cdim}, 3);
    Tensor out(Shape{cdim, r});
    const double ns =
        ns_per_step([&] { nnr::tensor::transpose(in, out); }, reps);
    rows.push_back({"transpose", dims({r, cdim}), 1, ns, 0.0, 0.0});
    std::printf("%-24s %s  %10.0f ns\n", "transpose", dims({r, cdim}).c_str(),
                ns);
  }

  // --- im2col + Conv2D step at the paper's CIFAR block shape. --------------
  {
    const std::int64_t batch = quick ? 8 : 32;
    const nnr::tensor::ConvGeometry g{.batch = batch,
                                      .in_channels = 16,
                                      .in_h = 32,
                                      .in_w = 32,
                                      .kernel = 3,
                                      .stride = 1,
                                      .pad = 1};
    const Tensor input =
        random_tensor(Shape{g.batch, g.in_channels, g.in_h, g.in_w}, 4);
    Tensor cols(Shape{g.out_pixels(), g.patch_size()});
    const double ns =
        ns_per_step([&] { nnr::tensor::im2col(input, g, cols); }, reps);
    rows.push_back({"im2col_k3s1p1",
                    dims({batch, g.in_channels, g.in_h, g.in_w}), 1, ns, 0.0,
                    0.0});
    std::printf("%-24s %s  %10.0f ns\n", "im2col_k3s1p1",
                dims({batch, g.in_channels, g.in_h, g.in_w}).c_str(), ns);

    nnr::hw::ExecutionContext hw_ctx(nnr::hw::v100(),
                                     nnr::hw::DeterminismMode::kDeterministic,
                                     nnr::rng::Generator(5));
    nnr::tensor::Workspace workspace;
    nnr::nn::RunContext ctx{.hw = &hw_ctx,
                            .training = true,
                            .dropout = nullptr,
                            .workspace = &workspace};
    nnr::nn::Conv2D conv(16, 32, 3, 1, 1);
    nnr::rng::Generator init(6);
    conv.init_weights(init);
    const Tensor grad_out = random_tensor(Shape{batch, 32, 32, 32}, 7);
    const double fwd_ns = ns_per_step(
        [&] { (void)conv.forward(input, ctx); }, reps);
    const double bwd_ns = ns_per_step(
        [&] {
          (void)conv.forward(input, ctx);
          (void)conv.backward(grad_out, ctx);
        },
        reps);
    rows.push_back({"conv2d_forward",
                    dims({batch, g.in_channels, g.in_h, g.in_w}), 1, fwd_ns,
                    0.0, 0.0});
    rows.push_back({"conv2d_fwd_bwd",
                    dims({batch, g.in_channels, g.in_h, g.in_w}), 1, bwd_ns,
                    0.0, 0.0});
    std::printf("%-24s %s  %10.0f ns\n", "conv2d_forward",
                dims({batch, g.in_channels, g.in_h, g.in_w}).c_str(), fwd_ns);
    std::printf("%-24s %s  %10.0f ns\n", "conv2d_fwd_bwd",
                dims({batch, g.in_channels, g.in_h, g.in_w}).c_str(), bwd_ns);
  }

  emit_json(out_path, rows, quick);
  return 0;
}
