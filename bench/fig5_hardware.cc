// Reproduces paper Figure 5: model divergence across accelerators
// (P100, V100, RTX5000, RTX5000 Tensor Cores, TPUv2) — ResNet-18 on the
// CIFAR-100 stand-in.
//
// Paper reference: V100 shows the largest IMPL churn/L2 among GPUs (most
// CUDA cores => most ordering entropy); Tensor Cores remain as noisy as CUDA
// cores (fallback reductions); TPU shows lower churn/L2 under ALGO+IMPL
// (inherently deterministic) but stddev(acc) stays similar.
#include "bench_util.h"
#include "core/table.h"

int main() {
  using namespace nnr;
  bench::banner("Figure 5",
                "stddev(acc) / churn / L2 across accelerators "
                "(ResNet18, CIFAR-100*)");

  // On the TPU the IMPL variant is fully deterministic; it still runs so
  // the zero-noise row is visible, as in the paper's plot.
  const sched::StudyPlan plan = sched::find_study("fig5")->make_plan();
  const sched::StudyResult result = bench::run_study(plan);

  core::TextTable table({"Accelerator", "Variant", "STDDEV(Acc) %", "Churn %",
                         "L2 Norm"});
  for (std::size_t i = 0; i < plan.cells().size(); ++i) {
    const sched::Cell& cell = plan.cells()[i];
    const auto summary = core::summarize(result.cells[i]);
    table.add_row({cell.job.device.name,
                   std::string(core::variant_name(cell.job.variant)),
                   core::fmt_float(summary.accuracy_stddev_pct(), 3),
                   core::fmt_float(summary.churn_pct(), 2),
                   core::fmt_float(summary.mean_l2, 4)});
  }

  bench::emit(table, "fig5_hardware", "t1",
              "Figure 5: divergence by accelerator");
  std::printf(
      "Paper: V100 has the largest IMPL churn/L2 among GPUs; RTX5000 TC "
      "remains noisy (CUDA-core fallback); TPU lowers churn/L2 under "
      "ALGO+IMPL without clearly lowering stddev(acc).\n");
  return 0;
}
