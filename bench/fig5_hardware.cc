// Reproduces paper Figure 5: model divergence across accelerators
// (P100, V100, RTX5000, RTX5000 Tensor Cores, TPUv2) — ResNet-18 on the
// CIFAR-100 stand-in.
//
// Paper reference: V100 shows the largest IMPL churn/L2 among GPUs (most
// CUDA cores => most ordering entropy); Tensor Cores remain as noisy as CUDA
// cores (fallback reductions); TPU shows lower churn/L2 under ALGO+IMPL
// (inherently deterministic) but stddev(acc) stays similar.
#include "bench_util.h"
#include "core/table.h"

int main() {
  using namespace nnr;
  bench::banner("Figure 5",
                "stddev(acc) / churn / L2 across accelerators "
                "(ResNet18, CIFAR-100*)");

  const int threads = static_cast<int>(core::env_int("NNR_THREADS", 0));
  const core::Task task = core::resnet18_cifar100();
  core::TextTable table({"Accelerator", "Variant", "STDDEV(Acc) %", "Churn %",
                         "L2 Norm"});

  std::vector<bench::CellSpec> cells;
  for (const hw::DeviceSpec& device : hw::all_devices()) {
    if (device.name == "T4") continue;  // paper Fig. 5 omits T4
    for (const core::NoiseVariant variant : bench::observed_variants()) {
      // On the TPU the IMPL variant is fully deterministic; it still runs so
      // the zero-noise row is visible, as in the paper's plot.
      cells.push_back({&task, variant, device, task.default_replicates});
    }
  }
  const auto all_results = bench::run_cells(cells, threads);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const auto summary = core::summarize(all_results[i]);
    table.add_row({cells[i].device.name,
                   std::string(core::variant_name(cells[i].variant)),
                   core::fmt_float(summary.accuracy_stddev_pct(), 3),
                   core::fmt_float(summary.churn_pct(), 2),
                   core::fmt_float(summary.mean_l2, 4)});
  }

  nnr::bench::emit(table, "fig5_hardware", "t1",
              "Figure 5: divergence by accelerator");
  std::printf(
      "Paper: V100 has the largest IMPL churn/L2 among GPUs; RTX5000 TC "
      "remains noisy (CUDA-core fallback); TPU lowers churn/L2 under "
      "ALGO+IMPL without clearly lowering stddev(acc).\n");
  return 0;
}
