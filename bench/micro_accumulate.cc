// google-benchmark micro-suite: ablation of the reduction-order policies and
// the simulated kernels they drive (DESIGN.md "ablation-worthy choices" #1).
//
// Measures (on the host CPU substrate):
//   - raw cost of sequential / pairwise-tree / sharded-shuffled reductions,
//   - GEMM under the deterministic vs nondeterministic kernel policy,
//   - the scaling of lane count (i.e. simulated CUDA core count).
#include <benchmark/benchmark.h>

#include <vector>

#include "rng/generator.h"
#include "tensor/accumulate.h"
#include "tensor/gemm.h"

namespace {

using namespace nnr;

std::vector<float> make_values(std::size_t n) {
  rng::Generator gen(42);
  std::vector<float> values(n);
  for (float& v : values) v = gen.normal();
  return values;
}

void BM_ReduceSequential(benchmark::State& state) {
  const auto values = make_values(static_cast<std::size_t>(state.range(0)));
  const tensor::ReductionPlan plan(tensor::AccumOrder::kSequential, 1,
                                   state.range(0), nullptr);
  for (auto _ : state) {
    benchmark::DoNotOptimize(plan.reduce(values));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ReduceSequential)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 18);

void BM_ReducePairwiseTree(benchmark::State& state) {
  const auto values = make_values(static_cast<std::size_t>(state.range(0)));
  const tensor::ReductionPlan plan(tensor::AccumOrder::kPairwiseTree, 40,
                                   state.range(0), nullptr);
  for (auto _ : state) {
    benchmark::DoNotOptimize(plan.reduce(values));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ReducePairwiseTree)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 18);

void BM_ReduceShardedShuffled(benchmark::State& state) {
  const auto values = make_values(static_cast<std::size_t>(state.range(0)));
  rng::Generator entropy(7);
  for (auto _ : state) {
    // Plan per launch, as in training: the shuffle is part of the cost.
    const tensor::ReductionPlan plan(tensor::AccumOrder::kShardedShuffled, 40,
                                     state.range(0), &entropy);
    benchmark::DoNotOptimize(plan.reduce(values));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ReduceShardedShuffled)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 18);

void BM_GemmByPolicy(benchmark::State& state) {
  const std::int64_t dim = state.range(0);
  rng::Generator gen(1);
  tensor::Tensor a(tensor::Shape{dim, dim});
  tensor::Tensor b(tensor::Shape{dim, dim});
  tensor::Tensor c(tensor::Shape{dim, dim});
  for (float& v : a.data()) v = gen.normal();
  for (float& v : b.data()) v = gen.normal();
  rng::Generator entropy(2);

  tensor::KernelPolicy policy;
  switch (state.range(1)) {
    case 0:
      policy = {.order = tensor::AccumOrder::kSequential,
                .cuda_cores = 0,
                .entropy = nullptr};
      break;
    case 1:
      policy = {.order = tensor::AccumOrder::kPairwiseTree,
                .cuda_cores = 5120,
                .entropy = nullptr};
      break;
    default:
      policy = {.order = tensor::AccumOrder::kShardedShuffled,
                .cuda_cores = 5120,
                .entropy = &entropy};
      break;
  }
  for (auto _ : state) {
    tensor::gemm_nt(a, b, c, policy);
    benchmark::DoNotOptimize(c.raw());
  }
  state.SetItemsProcessed(state.iterations() * dim * dim * dim);
}
BENCHMARK(BM_GemmByPolicy)
    ->ArgsProduct({{64, 128}, {0, 1, 2}})
    ->ArgNames({"dim", "policy"});

void BM_LaneScaling(benchmark::State& state) {
  // Ordering entropy vs lane count: the V100-vs-P100 axis.
  const auto values = make_values(1 << 16);
  rng::Generator entropy(9);
  const int lanes = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const tensor::ReductionPlan plan(tensor::AccumOrder::kShardedShuffled,
                                     lanes, 1 << 16, &entropy);
    benchmark::DoNotOptimize(plan.reduce(values));
  }
}
BENCHMARK(BM_LaneScaling)->Arg(20)->Arg(24)->Arg(28)->Arg(40);

}  // namespace

BENCHMARK_MAIN();
