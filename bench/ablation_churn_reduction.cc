// Ablation: how much churn can mitigation buy back under each noise regime?
//
// The paper quantifies churn as a cost of nondeterminism but stops short of
// evaluating mitigations; its churn definition comes from Milani Fard et al.
// 2016, whose subject IS mitigation. This bench closes the loop:
//
//   Part A  K-ensembling: churn between two disjoint K-ensembles, K in
//           {1, 2, 3, 5}, per noise variant. Voting integrates out per-run
//           noise; the residual at large K is the shared-bias floor.
//   Part B  Warm start ("launch and iterate"): churn between a parent and a
//           successor initialized from the parent's weights and trained for
//           a few more epochs, vs the cold-start baseline.
//
// Decision-relevant because the alternative to mitigation is deterministic
// tooling at up to 746% overhead (paper §4): if ensembling recovers most of
// the stability at K x training cost, the trade-off changes.
#include <vector>

#include "bench_util.h"
#include "core/churn_reduction.h"
#include "core/table.h"
#include "metrics/stability.h"

namespace {

using namespace nnr;

double mean_pairwise_churn(const std::vector<core::RunResult>& results) {
  metrics::RunningStat churn;
  for (std::size_t i = 0; i < results.size(); ++i) {
    for (std::size_t j = i + 1; j < results.size(); ++j) {
      churn.add(metrics::churn(results[i].test_predictions,
                               results[j].test_predictions));
    }
  }
  return churn.mean();
}

}  // namespace

int main() {
  bench::banner("Ablation: churn reduction",
                "K-ensembling and warm-start mitigation per noise variant "
                "(SmallCNN+BN on the CIFAR-10 stand-in, V100)");

  const core::Scale scale = core::resolve_scale(
      /*replicates=*/10, /*epochs=*/10, /*train_n=*/1024, /*test_n=*/512);

  // --- Part A: ensembling. ---
  const sched::StudyPlan plan =
      sched::find_study("ablation_churn_reduction")->make_plan();
  const sched::StudyResult study = bench::run_study(plan);
  const auto& cells = plan.cells();
  const auto& results = study.cells;

  core::TextTable ens({"Variant", "K=1 (baseline) %", "K=2 %", "K=3 %",
                       "K=5 %"});
  for (std::size_t c = 0; c < cells.size(); ++c) {
    std::vector<std::string> row{
        std::string(core::variant_name(cells[c].job.variant)),
        core::fmt_float(mean_pairwise_churn(results[c]) * 100.0, 2)};
    for (const std::size_t k : {std::size_t{2}, std::size_t{3},
                                std::size_t{5}}) {
      if (results[c].size() >= 2 * k) {
        row.push_back(core::fmt_float(
            core::ensemble_pair_churn(results[c], k, 10) * 100.0, 2));
      } else {
        row.push_back("-");
      }
    }
    ens.add_row(std::move(row));
  }
  nnr::bench::emit(ens, "ablation_churn_reduction", "t1",
                   "Part A: churn between disjoint K-ensembles");

  // --- Part B: warm start. ---
  //
  // The fair apples-to-apples metric is churn between two INDEPENDENT
  // retrains of the successor release: warm-started successors share the
  // parent's basin, cold-started ones do not. Parent->successor churn is
  // reported separately — it mixes noise with genuine fine-tuning drift and
  // is a property of the update, not of the noise regime.
  core::TextTable warm({"Variant", "Cold pair churn %", "Warm pair churn %",
                        "Parent->successor churn %"});
  const std::int64_t iterate_epochs = std::max<std::int64_t>(
      1, scale.epochs / 4);
  // Successor retrains are themselves a plan: one warm-started cell per
  // variant, replicate ids 1..3 (id 0 is the parent). The parent weights are
  // part of the cache key, so a changed parent invalidates its successors.
  sched::StudyPlan warm_plan("ablation_churn_reduction_warm");
  for (std::size_t c = 0; c < cells.size(); ++c) {
    core::TrainJob job = cells[c].job;
    job.recipe.epochs = iterate_epochs;
    job.warm_start_weights = results[c][0].final_weights;
    sched::Cell& cell = warm_plan.add_job("warm / " + cells[c].id,
                                          cells[c].task_id, std::move(job), 3);
    cell.explicit_ids = {{1, 1}, {2, 2}, {3, 3}};
  }
  const sched::StudyResult warm_study = bench::run_study(warm_plan);
  for (std::size_t c = 0; c < cells.size(); ++c) {
    const double cold = mean_pairwise_churn(results[c]);
    const std::vector<core::RunResult>& successors = warm_study.cells[c];
    const double warm_pair = mean_pairwise_churn(successors);
    metrics::RunningStat drift;
    for (const core::RunResult& s : successors) {
      drift.add(metrics::churn(results[c][0].test_predictions,
                               s.test_predictions));
    }
    warm.add_row({std::string(core::variant_name(cells[c].job.variant)),
                  core::fmt_float(cold * 100.0, 2),
                  core::fmt_float(warm_pair * 100.0, 2),
                  core::fmt_float(drift.mean() * 100.0, 2)});
  }
  nnr::bench::emit(warm, "ablation_churn_reduction", "t2",
                   "Part B: warm start (launch-and-iterate, " +
                       std::to_string(iterate_epochs) + " iterate epochs)");

  std::printf(
      "Expected shape: churn falls monotonically in K toward a shared-bias "
      "floor; independent warm-started successors churn less against each "
      "other than independent cold starts do (they share the parent's "
      "basin). Parent->successor churn includes fine-tuning drift and stays "
      "nonzero even under IMPL-only noise.\n");
  return 0;
}
