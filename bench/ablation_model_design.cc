// Ablation: which model-design choices curb noise, and through what
// mechanism?
//
// Part A (normalization): the paper's Fig. 2 shows BN damps all three
// instability measures but cannot say whether the damping comes from
// better-conditioned optimization or despite BN's own batch-statistics
// noise. GroupNorm separates the two: it conditions like BN but computes
// statistics per sample, so batch composition cannot enter through the
// normalizer.
//
// Part B (activation smoothness): Shamir et al. 2020 (cited in the paper's
// related work) predict smooth activations reduce irreproducibility by
// bounding how fast bit-level perturbations grow through the kink of ReLU.
// We train the same SmallCNN+BN with ReLU / SiLU / GELU / Tanh under pure
// IMPL noise.
#include "bench_util.h"
#include "core/table.h"

int main() {
  using namespace nnr;
  bench::banner("Ablation: model-design choices",
                "Normalization kind and activation smoothness vs noise "
                "(V100, CIFAR-10 stand-in)");

  // Part A: normalization.
  {
    const sched::StudyPlan plan =
        sched::find_study("ablation_model_design_norm")->make_plan();
    const sched::StudyResult result = bench::run_study(plan);
    core::TextTable table(
        {"Normalization", "Variant", "STDDEV(Acc) %", "Churn %", "L2 Norm"});
    for (std::size_t i = 0; i < plan.cells().size(); ++i) {
      const sched::Cell& cell = plan.cells()[i];
      const auto summary = core::summarize(result.cells[i]);
      table.add_row({cell.task_name,
                     std::string(core::variant_name(cell.job.variant)),
                     core::fmt_float(summary.accuracy_stddev_pct(), 3),
                     core::fmt_float(summary.churn_pct(), 2),
                     core::fmt_float(summary.mean_l2, 4)});
    }
    bench::emit(table, "ablation_model_design", "t1",
                "Part A: normalization kind");
    std::printf(
        "Expectation: both BN and GN damp instability relative to no "
        "normalization (the Fig. 2 effect is conditioning, not an artifact "
        "of which statistics are used).\n\n");
  }

  // Part B: activation smoothness under pure IMPL noise.
  {
    const sched::StudyPlan plan =
        sched::find_study("ablation_model_design_act")->make_plan();
    const sched::StudyResult result = bench::run_study(plan);
    core::TextTable table(
        {"Activation", "STDDEV(Acc) %", "Churn %", "L2 Norm"});
    for (std::size_t i = 0; i < plan.cells().size(); ++i) {
      const auto summary = core::summarize(result.cells[i]);
      table.add_row({plan.cells()[i].task_name,
                     core::fmt_float(summary.accuracy_stddev_pct(), 3),
                     core::fmt_float(summary.churn_pct(), 2),
                     core::fmt_float(summary.mean_l2, 4)});
    }
    bench::emit(table, "ablation_model_design", "t2",
                "Part B: activation smoothness (IMPL only)");
    std::printf(
        "Expectation: smooth activations (SiLU/GELU/Tanh) show lower churn "
        "than ReLU under identical seeds — the kink amplifies bit-level "
        "kernel noise into prediction flips.\n");
  }
  return 0;
}
