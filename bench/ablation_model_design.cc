// Ablation: which model-design choices curb noise, and through what
// mechanism?
//
// Part A (normalization): the paper's Fig. 2 shows BN damps all three
// instability measures but cannot say whether the damping comes from
// better-conditioned optimization or despite BN's own batch-statistics
// noise. GroupNorm separates the two: it conditions like BN but computes
// statistics per sample, so batch composition cannot enter through the
// normalizer.
//
// Part B (activation smoothness): Shamir et al. 2020 (cited in the paper's
// related work) predict smooth activations reduce irreproducibility by
// bounding how fast bit-level perturbations grow through the kink of ReLU.
// We train the same SmallCNN+BN with ReLU / SiLU / GELU / Tanh under pure
// IMPL noise.
#include "bench_util.h"
#include "core/table.h"
#include "nn/zoo.h"

int main() {
  using namespace nnr;
  bench::banner("Ablation: model-design choices",
                "Normalization kind and activation smoothness vs noise "
                "(V100, CIFAR-10 stand-in)");

  const int threads = static_cast<int>(core::env_int("NNR_THREADS", 0));

  // Part A: normalization.
  {
    struct NormCell {
      const char* label;
      nn::NormKind kind;
    };
    const NormCell norm_cells[] = {
        {"none", nn::NormKind::kNone},
        {"BatchNorm", nn::NormKind::kBatch},
        {"GroupNorm", nn::NormKind::kGroup},
    };
    core::TextTable table(
        {"Normalization", "Variant", "STDDEV(Acc) %", "Churn %", "L2 Norm"});
    std::vector<core::Task> tasks;
    for (const NormCell& cell : norm_cells) {
      core::Task task = core::small_cnn_cifar10();
      task.name = cell.label;
      const nn::NormKind kind = cell.kind;
      task.make_model = [kind] { return nn::small_cnn_norm(10, kind); };
      tasks.push_back(std::move(task));
    }
    std::vector<bench::CellSpec> cells;
    for (const core::Task& task : tasks) {
      for (const core::NoiseVariant variant : bench::observed_variants()) {
        cells.push_back({&task, variant, hw::v100(), task.default_replicates});
      }
    }
    const auto all_results = bench::run_cells(cells, threads);
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const auto summary = core::summarize(all_results[i]);
      table.add_row({cells[i].task->name,
                     std::string(core::variant_name(cells[i].variant)),
                     core::fmt_float(summary.accuracy_stddev_pct(), 3),
                     core::fmt_float(summary.churn_pct(), 2),
                     core::fmt_float(summary.mean_l2, 4)});
    }
    nnr::bench::emit(table, "ablation_model_design", "t1",
              "Part A: normalization kind");
    std::printf(
        "Expectation: both BN and GN damp instability relative to no "
        "normalization (the Fig. 2 effect is conditioning, not an artifact "
        "of which statistics are used).\n\n");
  }

  // Part B: activation smoothness under pure IMPL noise.
  {
    struct ActCell {
      const char* label;
      nn::ActKind kind;
    };
    const ActCell act_cells[] = {
        {"ReLU", nn::ActKind::kReLU},
        {"SiLU", nn::ActKind::kSiLU},
        {"GELU", nn::ActKind::kGELU},
        {"Tanh", nn::ActKind::kTanh},
    };
    core::TextTable table(
        {"Activation", "STDDEV(Acc) %", "Churn %", "L2 Norm"});
    std::vector<core::Task> tasks;
    for (const ActCell& cell : act_cells) {
      core::Task task = core::small_cnn_cifar10();
      task.name = cell.label;
      const nn::ActKind kind = cell.kind;
      task.make_model = [kind] { return nn::small_cnn_activation(10, kind); };
      tasks.push_back(std::move(task));
    }
    std::vector<bench::CellSpec> cells;
    for (const core::Task& task : tasks) {
      cells.push_back(
          {&task, core::NoiseVariant::kImpl, hw::v100(),
           task.default_replicates});
    }
    const auto all_results = bench::run_cells(cells, threads);
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const auto summary = core::summarize(all_results[i]);
      table.add_row({cells[i].task->name,
                     core::fmt_float(summary.accuracy_stddev_pct(), 3),
                     core::fmt_float(summary.churn_pct(), 2),
                     core::fmt_float(summary.mean_l2, 4)});
    }
    nnr::bench::emit(table, "ablation_model_design", "t2",
                "Part B: activation smoothness (IMPL only)");
    std::printf(
        "Expectation: smooth activations (SiLU/GELU/Tanh) show lower churn "
        "than ReLU under identical seeds — the kink amplifies bit-level "
        "kernel noise into prediction flips.\n");
  }
  return 0;
}
