// Reproduces paper Figure 6: input-data ordering introduces nondeterminism
// even on a TPU, and even at full-batch size.
//
// Ten SmallCNNs per batch size are trained on the TPU with *every* noise
// source pinned except the shuffle channel (epoch ordering). At full batch
// the gradient is mathematically order-invariant — the residual divergence is
// pure float32 accumulation-order noise, which the systolic (sequential)
// reduction inherits from the input layout.
//
// Paper reference: churn ~5-20% across batch sizes 500 / 5000 / 50000
// (50000 = the full dataset). At our reduced step counts the full-batch
// divergence may not reach prediction flips, so the table also reports the
// weight-space divergence, which is nonzero whenever the effect exists.
#include "bench_util.h"
#include "core/table.h"
#include "data/synth_images.h"
#include "nn/zoo.h"

int main() {
  using namespace nnr;
  bench::banner("Figure 6",
                "Divergence vs batch size on TPU with only data-order noise "
                "(full batch included)");

  const core::Scale scale = core::resolve_scale(10, 60, 512, 256);
  const data::ClassificationDataset dataset =
      data::synth_cifar10(scale.train_n, scale.test_n);

  // Only the shuffle channel varies; init/augment/dropout pinned; TPU
  // hardware (deterministic given layout).
  core::ChannelToggles order_only;
  order_only.shuffle_varies = true;
  order_only.mode = hw::DeterminismMode::kDefault;

  // One probe cell per batch size; batch size and LR are recipe content, so
  // each cell hashes to its own cache key.
  sched::StudyPlan plan("fig6_batch_order");
  const std::int64_t full = dataset.train.size();
  for (const std::int64_t batch : {full / 16, full / 4, full}) {
    core::TrainJob job;
    job.make_model = [] { return nn::small_cnn(10, true); };
    job.dataset = &dataset;
    job.recipe = core::cifar_recipe(scale.epochs);
    job.recipe.batch_size = batch;
    // Scale LR linearly with batch (capped) so each batch size makes
    // comparable progress per epoch.
    job.recipe.base_lr = std::min(
        0.05F, 0.002F * static_cast<float>(batch) / 32.0F);
    job.recipe.augment = false;  // keep augment channel fully out of play
    job.device = hw::tpu_v2();
    job.toggles_override = order_only;
    plan.add_job("batch=" + std::to_string(batch),
                 dataset.name + "|smallcnn_bn order-probe", std::move(job),
                 scale.replicates);
  }
  const sched::StudyResult result = bench::run_study(plan);

  core::TextTable table({"Batch size", "Churn %", "L2 Norm",
                         "STDDEV(Acc) %", "Mean acc %"});
  for (std::size_t c = 0; c < plan.cells().size(); ++c) {
    const auto summary = core::summarize(result.cells[c]);
    table.add_row({std::to_string(plan.cells()[c].job.recipe.batch_size),
                   core::fmt_float(summary.churn_pct(), 2),
                   core::fmt_float(summary.mean_l2, 6),
                   core::fmt_float(summary.accuracy_stddev_pct(), 3),
                   core::fmt_pct(summary.accuracy_pct(), 2)});
  }

  nnr::bench::emit(table, "fig6_batch_order", "t1",
              "Figure 6: data-order noise on TPU");
  std::printf(
      "Paper: nonzero churn at every batch size including the full-dataset "
      "batch, where all runs are mathematically identical — the divergence "
      "is float accumulation ordering alone. Nonzero L2 at full batch is "
      "the same finding at weight granularity.\n");
  return 0;
}
