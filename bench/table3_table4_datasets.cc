// Reproduces paper Table 3 (CelebA sub-group distribution) and Table 4
// (dataset overview) for the synthetic stand-ins.
#include <cstdio>

#include "bench_util.h"
#include "core/table.h"
#include "data/registry.h"
#include "data/synth_celeba.h"

int main() {
  using namespace nnr;
  std::printf("== Table 3 / Table 4 ==\n\n");

  {
    data::SynthCelebAConfig cfg;
    cfg.train_n = 20000;  // large sample to show the distribution cleanly
    cfg.test_n = 1024;
    const data::AttributeDataset ds = data::make_synth_celeba(cfg);
    const data::SubgroupCounts c = data::count_subgroups(ds.train);
    const double n = static_cast<double>(c.total);

    auto cell = [&](std::int64_t count) {
      return std::to_string(count) + " (" +
             core::fmt_pct(100.0 * static_cast<double>(count) / n, 1) + ")";
    };
    core::TextTable table({"", "Male", "Female", "Young", "Old"});
    table.add_row({"Positive Data Points", cell(c.male_pos), cell(c.female_pos),
                   cell(c.young_pos), cell(c.old_pos)});
    table.add_row({"Negative Data Points", cell(c.male_neg), cell(c.female_neg),
                   cell(c.young_neg), cell(c.old_neg)});
    nnr::bench::emit(table, "table3_table4_datasets", "t1",
              "Table 3: SynthCelebA sub-group distribution "
                             "(fractions of the whole dataset)");
    std::printf("Paper: Male positives 0.8%%, Female 14.1%%, Young 12.4%%, "
                "Old 2.5%% of the dataset.\n\n");
  }

  {
    core::TextTable table({"Dataset", "Paper train/test", "Stand-in train/test",
                           "Classes"});
    for (const data::DatasetInfo& info : data::dataset_registry()) {
      table.add_row({info.name,
                     std::to_string(info.paper_train) + "/" +
                         std::to_string(info.paper_test),
                     std::to_string(info.synth_train) + "/" +
                         std::to_string(info.synth_test),
                     info.classes});
    }
    nnr::bench::emit(table, "table3_table4_datasets", "t2",
              "Table 4: datasets (paper vs stand-in scale)");
  }
  return 0;
}
