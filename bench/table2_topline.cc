// Reproduces paper Table 2: test-set accuracy (± stddev) under each noise
// variant, for each (hardware, task) cell.
//
// Paper reference (full-scale): e.g. V100/SmallCNN-C10 62.03%±0.91 under
// ALGO+IMPL; ResNet18-C10 ~93.3%±0.1-0.2; ResNet50-ImageNet 76.6%±0.05-0.10.
// Our scaled cells land at lower absolute accuracy (synthetic 16x16 data,
// tens of epochs) — the quantity to compare is the *variant-to-variant
// structure*: all three variants within ~1 stddev of each other per cell.
#include "bench_util.h"
#include "core/table.h"

int main() {
  using namespace nnr;
  bench::banner("Table 2",
                "Test accuracy ± stddev per (hardware, task, noise variant)");

  // The registry plan is (device, task, variant)-major with the ImageNet
  // V100 cells appended — consecutive triples of cells form one table row.
  const sched::StudyPlan plan = sched::find_study("table2")->make_plan();
  const sched::StudyResult result = bench::run_study(plan);

  auto accuracy_cell = [](const core::VariantSummary& s) {
    return core::fmt_pct(s.accuracy_pct(), 2) + " +/- " +
           core::fmt_float(s.accuracy_stddev_pct(), 2);
  };

  core::TextTable table({"Hardware", "Task", "ALGO+IMPL", "ALGO", "IMPL"});
  for (std::size_t i = 0; i + 2 < plan.cells().size(); i += 3) {
    const sched::Cell& cell = plan.cells()[i];
    std::vector<std::string> row = {cell.job.device.name, cell.task_name};
    for (std::size_t v = 0; v < 3; ++v) {
      row.push_back(accuracy_cell(core::summarize(result.cells[i + v])));
    }
    table.add_row(std::move(row));
  }

  bench::emit(table, "table2_topline", "t1",
              "Table 2: test accuracy +/- stddev (%)");
  std::printf("Paper (full scale): max stddev 0.91%% (SmallCNN), min 0.05%% "
              "(ResNet50-ImageNet); variants differ by < 1%% within a cell.\n");
  return 0;
}
