// Reproduces paper Table 2: test-set accuracy (± stddev) under each noise
// variant, for each (hardware, task) cell.
//
// Paper reference (full-scale): e.g. V100/SmallCNN-C10 62.03%±0.91 under
// ALGO+IMPL; ResNet18-C10 ~93.3%±0.1-0.2; ResNet50-ImageNet 76.6%±0.05-0.10.
// Our scaled cells land at lower absolute accuracy (synthetic 16x16 data,
// tens of epochs) — the quantity to compare is the *variant-to-variant
// structure*: all three variants within ~1 stddev of each other per cell.
#include "bench_util.h"
#include "core/table.h"

int main() {
  using namespace nnr;
  bench::banner("Table 2",
                "Test accuracy ± stddev per (hardware, task, noise variant)");

  const std::vector<hw::DeviceSpec> devices = {hw::p100(), hw::rtx5000(),
                                               hw::v100()};
  std::vector<core::Task> tasks;
  tasks.push_back(core::small_cnn_cifar10());
  tasks.push_back(core::resnet18_cifar10());
  tasks.push_back(core::resnet18_cifar100());
  const core::Task imagenet = core::resnet50_imagenet();

  // Flatten the full (device, task, variant) grid into one pooled run.
  std::vector<bench::CellSpec> cells;
  for (const hw::DeviceSpec& device : devices) {
    for (const core::Task& task : tasks) {
      for (const core::NoiseVariant variant : bench::observed_variants()) {
        cells.push_back({&task, variant, device, task.default_replicates});
      }
    }
  }
  for (const core::NoiseVariant variant : bench::observed_variants()) {
    cells.push_back({&imagenet, variant, hw::v100(),
                     imagenet.default_replicates});
  }

  const int threads = static_cast<int>(core::env_int("NNR_THREADS", 0));
  const auto all_results = bench::run_cells(cells, threads);

  auto accuracy_cell = [](const core::VariantSummary& s) {
    return core::fmt_pct(s.accuracy_pct(), 2) + " +/- " +
           core::fmt_float(s.accuracy_stddev_pct(), 2);
  };

  core::TextTable table({"Hardware", "Task", "ALGO+IMPL", "ALGO", "IMPL"});
  std::size_t cell_index = 0;
  for (const hw::DeviceSpec& device : devices) {
    for (const core::Task& task : tasks) {
      std::vector<std::string> row = {device.name, task.name};
      for (std::size_t v = 0; v < 3; ++v) {
        row.push_back(accuracy_cell(core::summarize(all_results[cell_index++])));
      }
      table.add_row(std::move(row));
    }
  }
  {
    std::vector<std::string> row = {"V100", imagenet.name};
    for (std::size_t v = 0; v < 3; ++v) {
      row.push_back(accuracy_cell(core::summarize(all_results[cell_index++])));
    }
    table.add_row(std::move(row));
  }

  nnr::bench::emit(table, "table2_topline", "t1",
              "Table 2: test accuracy +/- stddev (%)");
  std::printf("Paper (full scale): max stddev 0.91%% (SmallCNN), min 0.05%% "
              "(ResNet50-ImageNet); variants differ by < 1%% within a cell.\n");
  return 0;
}
