// Reproduces paper Figure 4: per-class accuracy variance vs overall accuracy
// variance (ResNet-18 on the CIFAR-10 and CIFAR-100 stand-ins, V100).
//
// Paper reference: max per-class stddev is up to 4x (CIFAR-10) and 23x
// (CIFAR-100) the overall stddev, for every noise variant — removing one
// noise source does not tame the per-class variance.
#include <algorithm>

#include "bench_util.h"
#include "core/table.h"

int main() {
  using namespace nnr;
  bench::banner("Figure 4",
                "Per-class accuracy stddev vs overall stddev (V100)");

  const sched::StudyPlan plan = sched::find_study("fig4")->make_plan();
  const sched::StudyResult result = bench::run_study(plan);

  core::TextTable table({"Task", "Variant", "Overall stddev %",
                         "Max per-class stddev %", "Median per-class %",
                         "Amplification"});
  for (std::size_t i = 0; i < plan.cells().size(); ++i) {
    const sched::Cell& cell = plan.cells()[i];
    const core::PerClassVariance pcv =
        core::per_class_variance(result.cells[i], cell.job.dataset->test);
    std::vector<double> sorted = pcv.per_class_stddev_pct;
    std::sort(sorted.begin(), sorted.end());
    const double median = sorted[sorted.size() / 2];
    table.add_row({cell.task_name,
                   std::string(core::variant_name(cell.job.variant)),
                   core::fmt_float(pcv.overall_stddev_pct, 3),
                   core::fmt_float(pcv.max_per_class_stddev_pct(), 3),
                   core::fmt_float(median, 3),
                   core::fmt_float(pcv.amplification(), 1) + "x"});
  }
  bench::emit(table, "fig4_per_class", "t1",
              "Figure 4: per-class variance amplification");
  std::printf("Paper: amplification up to 4x on CIFAR-10 and 23x on "
              "CIFAR-100, for all of ALGO+IMPL / ALGO / IMPL.\n");
  return 0;
}
