// Ablation: is the optimizer a noise amplifier or a damper?
//
// The paper trains everything with SGD (Appendix B) and studies model-design
// choices (BN, kernel size) as noise modulators. The optimizer is another
// such choice: Adam's per-weight second-moment normalization rescales
// gradient perturbations adaptively, momentum low-pass-filters them, and
// plain SGD passes them straight through. Same task, same seeds — only the
// update rule changes — under ALGO and IMPL noise separately.
#include "bench_util.h"
#include "core/table.h"

int main() {
  using namespace nnr;
  bench::banner("Ablation: optimizer choice vs noise",
                "SGD / SGD+momentum / Adam / RMSProp under ALGO and IMPL "
                "noise (SmallCNN+BN, V100)");

  const sched::StudyPlan plan =
      sched::find_study("ablation_optimizer")->make_plan();
  const sched::StudyResult result = bench::run_study(plan);

  core::TextTable table({"Optimizer", "Variant", "Mean acc %",
                         "STDDEV(Acc) %", "Churn %", "L2 Norm"});
  for (std::size_t i = 0; i < plan.cells().size(); ++i) {
    const sched::Cell& cell = plan.cells()[i];
    const core::VariantSummary summary = core::summarize(result.cells[i]);
    table.add_row({cell.task_name,
                   std::string(core::variant_name(cell.job.variant)),
                   core::fmt_float(summary.accuracy_pct(), 2),
                   core::fmt_float(summary.accuracy_stddev_pct(), 3),
                   core::fmt_float(summary.churn_pct(), 2),
                   core::fmt_float(summary.mean_l2, 4)});
  }
  bench::emit(table, "ablation_optimizer", "t1",
              "Optimizer choice as a noise modulator");
  std::printf(
      "Expectations: all optimizers keep comparable mean accuracy; the "
      "update rule changes how much replicate-level divergence the same "
      "noise produces (adaptive normalization tends to re-amplify small "
      "gradient differences late in training).\n");
  return 0;
}
