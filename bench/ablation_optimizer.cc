// Ablation: is the optimizer a noise amplifier or a damper?
//
// The paper trains everything with SGD (Appendix B) and studies model-design
// choices (BN, kernel size) as noise modulators. The optimizer is another
// such choice: Adam's per-weight second-moment normalization rescales
// gradient perturbations adaptively, momentum low-pass-filters them, and
// plain SGD passes them straight through. Same task, same seeds — only the
// update rule changes — under ALGO and IMPL noise separately.
#include <memory>

#include "bench_util.h"
#include "core/table.h"
#include "opt/adam.h"
#include "opt/rmsprop.h"
#include "opt/sgd.h"

namespace {

using namespace nnr;

struct OptimizerCell {
  const char* label;
  core::OptimizerFactory make;
  float lr_scale;  // relative to the recipe LR (adaptive rules run hotter)
};

std::vector<OptimizerCell> optimizer_cells() {
  return {
      {"SGD",
       [](std::vector<nn::Param*> p) {
         return std::make_unique<opt::Sgd>(std::move(p));
       },
       1.0F},
      {"SGD+momentum",
       [](std::vector<nn::Param*> p) {
         return std::make_unique<opt::Sgd>(std::move(p), 0.9F);
       },
       1.0F},
      {"Adam",
       [](std::vector<nn::Param*> p) {
         return std::make_unique<opt::Adam>(std::move(p));
       },
       0.5F},
      {"RMSProp",
       [](std::vector<nn::Param*> p) {
         return std::make_unique<opt::RmsProp>(std::move(p));
       },
       0.5F},
  };
}

}  // namespace

int main() {
  using namespace nnr;
  bench::banner("Ablation: optimizer choice vs noise",
                "SGD / SGD+momentum / Adam / RMSProp under ALGO and IMPL "
                "noise (SmallCNN+BN, V100)");

  const int threads = static_cast<int>(core::env_int("NNR_THREADS", 0));
  core::Task base_task = core::small_cnn_bn_cifar10();

  core::TextTable table({"Optimizer", "Variant", "Mean acc %",
                         "STDDEV(Acc) %", "Churn %", "L2 Norm"});
  for (const OptimizerCell& cell : optimizer_cells()) {
    for (const core::NoiseVariant variant :
         {core::NoiseVariant::kAlgo, core::NoiseVariant::kImpl}) {
      core::TrainJob job = base_task.job(variant, hw::v100());
      job.make_optimizer = cell.make;
      job.recipe.base_lr *= cell.lr_scale;
      const auto results =
          core::run_replicates(job, base_task.default_replicates, threads);
      const core::VariantSummary summary = core::summarize(results);
      table.add_row({cell.label,
                     std::string(core::variant_name(variant)),
                     core::fmt_float(summary.accuracy_pct(), 2),
                     core::fmt_float(summary.accuracy_stddev_pct(), 3),
                     core::fmt_float(summary.churn_pct(), 2),
                     core::fmt_float(summary.mean_l2, 4)});
    }
  }
  nnr::bench::emit(table, "ablation_optimizer", "t1",
              "Optimizer choice as a noise modulator");
  std::printf(
      "Expectations: all optimizers keep comparable mean accuracy; the "
      "update rule changes how much replicate-level divergence the same "
      "noise produces (adaptive normalization tends to re-amplify small "
      "gradient differences late in training).\n");
  return 0;
}
