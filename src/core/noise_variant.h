// The paper's four experimental variants (§2.2) expressed as channel toggles.
//
//   ALGO+IMPL  default training: algorithmic seeds vary per replicate AND
//              the device runs nondeterministic kernels.
//   ALGO       deterministic kernels (tooling noise fully controlled);
//              algorithmic seeds vary.
//   IMPL       algorithmic seeds pinned (same init/shuffle/augment/dropout
//              draws every replicate); nondeterministic kernels.
//   CONTROL    deterministic kernels AND pinned seeds: replicates must be
//              bitwise identical (enforced by tests).
#pragma once

#include <string_view>

#include "hw/execution_context.h"

namespace nnr::core {

enum class NoiseVariant {
  kAlgoPlusImpl,
  kAlgo,
  kImpl,
  kControl,
};

struct ChannelToggles {
  bool init_varies = false;
  bool shuffle_varies = false;
  bool augment_varies = false;
  bool dropout_varies = false;
  bool scheduler_varies = false;  // IMPL noise present?
  hw::DeterminismMode mode = hw::DeterminismMode::kDefault;
};

[[nodiscard]] constexpr ChannelToggles toggles_for(NoiseVariant v) noexcept {
  switch (v) {
    case NoiseVariant::kAlgoPlusImpl:
      return {.init_varies = true,
              .shuffle_varies = true,
              .augment_varies = true,
              .dropout_varies = true,
              .scheduler_varies = true,
              .mode = hw::DeterminismMode::kDefault};
    case NoiseVariant::kAlgo:
      return {.init_varies = true,
              .shuffle_varies = true,
              .augment_varies = true,
              .dropout_varies = true,
              .scheduler_varies = false,
              .mode = hw::DeterminismMode::kDeterministic};
    case NoiseVariant::kImpl:
      return {.init_varies = false,
              .shuffle_varies = false,
              .augment_varies = false,
              .dropout_varies = false,
              .scheduler_varies = true,
              .mode = hw::DeterminismMode::kDefault};
    case NoiseVariant::kControl:
      return {.init_varies = false,
              .shuffle_varies = false,
              .augment_varies = false,
              .dropout_varies = false,
              .scheduler_varies = false,
              .mode = hw::DeterminismMode::kDeterministic};
  }
  return {};
}

[[nodiscard]] constexpr std::string_view variant_name(NoiseVariant v) noexcept {
  switch (v) {
    case NoiseVariant::kAlgoPlusImpl:
      return "ALGO+IMPL";
    case NoiseVariant::kAlgo:
      return "ALGO";
    case NoiseVariant::kImpl:
      return "IMPL";
    case NoiseVariant::kControl:
      return "CONTROL";
  }
  return "?";
}

}  // namespace nnr::core
