#include "core/churn_reduction.h"

#include <cassert>

#include "metrics/stability.h"

namespace nnr::core {

RunResult train_warm_replicate(const TrainJob& job, std::uint64_t replicate,
                               std::span<const float> parent_weights) {
  TrainJob warm = job;
  warm.warm_start_weights.emplace(parent_weights.begin(),
                                  parent_weights.end());
  return train_replicate(warm, replicate);
}

std::vector<std::int32_t> ensemble_vote(
    std::span<const std::vector<std::int32_t>> predictions,
    std::int32_t num_classes) {
  assert(!predictions.empty() && num_classes > 0);
  const std::size_t n = predictions.front().size();
  std::vector<std::int32_t> vote(n, 0);
  std::vector<std::int32_t> counts(static_cast<std::size_t>(num_classes), 0);
  for (std::size_t i = 0; i < n; ++i) {
    counts.assign(static_cast<std::size_t>(num_classes), 0);
    for (const auto& model : predictions) {
      assert(model.size() == n);
      assert(model[i] >= 0 && model[i] < num_classes);
      ++counts[static_cast<std::size_t>(model[i])];
    }
    // Plurality; ties break to the smallest class id (strict >), keeping
    // the vote deterministic.
    std::int32_t best = 0;
    for (std::int32_t c = 1; c < num_classes; ++c) {
      if (counts[static_cast<std::size_t>(c)] >
          counts[static_cast<std::size_t>(best)]) {
        best = c;
      }
    }
    vote[i] = best;
  }
  return vote;
}

double ensemble_pair_churn(std::span<const RunResult> results, std::size_t k,
                           std::int32_t num_classes) {
  assert(k >= 1 && results.size() >= 2 * k);
  std::vector<std::vector<std::int32_t>> first;
  std::vector<std::vector<std::int32_t>> second;
  for (std::size_t i = 0; i < k; ++i) {
    first.push_back(results[i].test_predictions);
    second.push_back(results[k + i].test_predictions);
  }
  return metrics::churn(ensemble_vote(first, num_classes),
                        ensemble_vote(second, num_classes));
}

}  // namespace nnr::core
