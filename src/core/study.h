// Aggregation of replicate results into the paper's stability measures.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/trainer.h"
#include "data/dataset.h"
#include "metrics/running_stat.h"

namespace nnr::core {

/// Summary of one (task, device, variant) cell: the quantities plotted in
/// Figs. 1/2/5 and tabulated in Table 2.
struct VariantSummary {
  metrics::RunningStat accuracy;  // over replicates
  double mean_churn = 0.0;        // mean over replicate pairs
  double mean_l2 = 0.0;           // mean normalized L2 over pairs

  [[nodiscard]] double accuracy_pct() const { return accuracy.mean() * 100.0; }
  [[nodiscard]] double accuracy_stddev_pct() const {
    return accuracy.stddev() * 100.0;
  }
  [[nodiscard]] double churn_pct() const { return mean_churn * 100.0; }
};

[[nodiscard]] VariantSummary summarize(std::span<const RunResult> results);

/// Standard deviation (over replicates) of each class's accuracy, plus the
/// stddev of overall accuracy — the Fig. 4 quantities.
struct PerClassVariance {
  std::vector<double> per_class_stddev_pct;  // [num_classes]
  double overall_stddev_pct = 0.0;

  [[nodiscard]] double max_per_class_stddev_pct() const;
  /// Amplification factor: max per-class stddev / overall stddev.
  [[nodiscard]] double amplification() const;
};

[[nodiscard]] PerClassVariance per_class_variance(
    std::span<const RunResult> results, const data::LabeledImages& test);

/// Sub-group disaggregation for the CelebA-style task (Fig. 3 / Table 5):
/// stddev over replicates of accuracy, FPR, FNR on a masked subset.
struct SubgroupStability {
  metrics::RunningStat accuracy;
  metrics::RunningStat fpr;
  metrics::RunningStat fnr;
};

[[nodiscard]] SubgroupStability subgroup_stability(
    std::span<const RunResult> results,
    std::span<const std::uint8_t> binary_labels,
    std::span<const std::uint8_t> mask);

}  // namespace nnr::core
