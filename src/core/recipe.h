// Training recipes — the scaled counterparts of the paper's Appendix B
// hyperparameters. One recipe per dataset family; all hyperparameters are
// kept identical across hardware types, as in the paper.
#pragma once

#include <cstdint>

#include "data/augment.h"

namespace nnr::core {

enum class ScheduleKind {
  kStepDecay,     // CIFAR / CelebA recipe: lr /10 every decay_every epochs
  kWarmupCosine,  // ImageNet recipe: 1-epoch warmup, cosine decay
};

struct TrainRecipe {
  std::int64_t epochs = 6;
  std::int64_t batch_size = 32;
  float base_lr = 0.08F;
  float momentum = 0.9F;
  ScheduleKind schedule = ScheduleKind::kStepDecay;
  std::int64_t decay_every = 3;  // step-decay period (epochs)
  bool augment = true;
  data::AugmentConfig augment_config{};
  float dropout_rate = 0.0F;  // SmallCNN-with-dropout ablations

  /// Learning rate for a (0-based) epoch under this recipe.
  [[nodiscard]] float learning_rate(std::int64_t epoch) const;
};

/// CIFAR-10/100 recipe (paper: 200 epochs, batch 128, lr 4e-4, /10 per 50).
[[nodiscard]] TrainRecipe cifar_recipe(std::int64_t epochs);

/// ImageNet recipe (paper: 90 epochs, batch 256, SGD momentum 0.9, warmup +
/// cosine).
[[nodiscard]] TrainRecipe imagenet_recipe(std::int64_t epochs);

/// CelebA recipe (paper: 20 epochs, batch 128, lr 1e-3, /10 per 5 epochs;
/// no augmentation).
[[nodiscard]] TrainRecipe celeba_recipe(std::int64_t epochs);

}  // namespace nnr::core
