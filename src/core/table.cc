#include "core/table.h"

#include <cassert>
#include <cstdio>

namespace nnr::core {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  assert(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::render(const std::string& title) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::string out;
  if (!title.empty()) out += title + "\n";
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out += row[c];
      out.append(widths[c] - row[c].size() + 2, ' ');
    }
    out += "\n";
  };
  emit_row(headers_);
  std::size_t underline = 0;
  for (std::size_t w : widths) underline += w + 2;
  out.append(underline, '-');
  out += "\n";
  for (const auto& row : rows_) emit_row(row);
  return out;
}

std::string TextTable::render_csv() const {
  std::string out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out += ",";
      out += row[c];
    }
    out += "\n";
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return out;
}

std::string fmt_pct(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", decimals, value);
  return buf;
}

std::string fmt_float(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

}  // namespace nnr::core
