// Task presets: the scaled counterparts of the paper's (network, dataset)
// benchmark cells, with tuned recipes. Benches and examples share these so
// every figure/table reproduces the same cells.
//
// Sizes/epochs honor the environment knobs (NNR_TRAIN_N, NNR_EPOCHS,
// NNR_REPLICATES, NNR_QUICK) via core::resolve_scale.
#pragma once

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "core/env.h"
#include "core/trainer.h"
#include "data/synth_images.h"

namespace nnr::core {

/// A fully materialized benchmark cell: dataset + model factory + recipe.
struct Task {
  std::string name;  // paper row label, e.g. "SmallCNN CIFAR-10"
  data::ClassificationDataset dataset;
  ModelFactory make_model;
  TrainRecipe recipe;
  std::int64_t default_replicates = 10;

  /// A TrainJob for this task on `device` under `variant`.
  [[nodiscard]] TrainJob job(NoiseVariant variant,
                             hw::DeviceSpec device) const {
    TrainJob j;
    j.make_model = make_model;
    j.dataset = &dataset;
    j.recipe = recipe;
    j.variant = variant;
    j.device = std::move(device);
    return j;
  }
};

/// SmallCNN (no BN, Appendix C) on the CIFAR-10 stand-in.
[[nodiscard]] Task small_cnn_cifar10();

/// SmallCNN with BatchNorm (the Fig. 2 counterpart).
[[nodiscard]] Task small_cnn_bn_cifar10();

/// ResNet-18 (scaled) on the CIFAR-10 stand-in.
[[nodiscard]] Task resnet18_cifar10();

/// ResNet-18 (scaled) on the CIFAR-100 stand-in.
[[nodiscard]] Task resnet18_cifar100();

/// ResNet-50 (scaled) on the ImageNet stand-in (5 replicates, as in the
/// paper's higher-cost ImageNet protocol).
[[nodiscard]] Task resnet50_imagenet();

/// VGG (scaled, plain deep stack) on the CIFAR-10 stand-in — an
/// architecture-family cell for the stability-vs-architecture ablation
/// (the paper's Fig. 8a profiling suite, made trainable).
[[nodiscard]] Task vgg_cifar10();

/// MobileNet (scaled, depthwise-separable) on the CIFAR-10 stand-in.
[[nodiscard]] Task mobilenet_cifar10();

/// A registered named task: stable id -> factory + human description. The
/// single source of truth shared by `nnr_run --task/--list` and the study
/// registry (sched/registry.h), so the CLI catalog and the named studies can
/// never drift apart.
struct TaskInfo {
  std::string id;           // CLI/study name, e.g. "smallcnn_bn"
  std::string description;  // one-line catalog entry
  std::function<Task()> make;
};

/// All named tasks in the paper's presentation order.
[[nodiscard]] const std::vector<TaskInfo>& task_registry();

/// Lookup by id; nullptr when unknown.
[[nodiscard]] const TaskInfo* find_task(std::string_view id);

}  // namespace nnr::core
