// Churn-mitigation techniques: warm-start training and ensembling.
//
// The paper measures churn as a harm (§2.1, citing Milani Fard et al. 2016
// "Launch and iterate: Reducing prediction churn") but evaluates no
// mitigation. This module implements the two standard ones so the library
// can quantify how much churn each buys back under every noise regime:
//
//   Warm start   - initialize the successor model from the predecessor's
//                  weights instead of the init channel, then train normally.
//                  The successor stays in the predecessor's basin, so
//                  disagreements are limited to examples the extra training
//                  actually moves (Milani Fard et al.'s "launch" baseline).
//   Ensembling   - average K independently trained models by plurality vote.
//                  Voting integrates out per-run noise; churn between two
//                  independent K-ensembles falls roughly with 1/sqrt(K)
//                  until the shared-bias floor.
//
// Both are measurement-side *consumers* of the trainer: they add no new
// noise channels of their own (warm start explicitly bypasses the init
// channel; voting is deterministic with a fixed tie rule).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/trainer.h"

namespace nnr::core {

/// Trains one replicate initialized from `parent_weights` (layout =
/// Model::flat_weights()) instead of the init channel. All other channels
/// behave per the job's variant. BN running statistics start fresh and
/// re-warm during training — weight transfer, not full state transfer.
[[nodiscard]] RunResult train_warm_replicate(
    const TrainJob& job, std::uint64_t replicate,
    std::span<const float> parent_weights);

/// Plurality vote over per-model prediction vectors (all the same length).
/// Ties break toward the smallest class id, so the vote itself is
/// deterministic and contributes no churn. Precondition: at least one model.
[[nodiscard]] std::vector<std::int32_t> ensemble_vote(
    std::span<const std::vector<std::int32_t>> predictions,
    std::int32_t num_classes);

/// Mean churn between two disjoint K-ensembles drawn from `results`:
/// models [0, k) vote against models [k, 2k). Precondition:
/// results.size() >= 2*k, k >= 1.
[[nodiscard]] double ensemble_pair_churn(
    std::span<const RunResult> results, std::size_t k,
    std::int32_t num_classes);

}  // namespace nnr::core
