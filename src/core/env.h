// Environment-variable scale knobs shared by benches and examples:
//   NNR_REPLICATES  replicates per variant (default: per-bench, usually 10)
//   NNR_EPOCHS      training epochs        (default: per-recipe)
//   NNR_TRAIN_N     training examples      (default: per-dataset)
//   NNR_TEST_N      test examples
//   NNR_THREADS     host threads for replicate fan-out (0 = all cores)
//   NNR_QUICK       when set (non-zero), benches shrink to smoke-test scale
#pragma once

#include <cstdint>
#include <string>

namespace nnr::core {

/// Integer env var with fallback. The whole value must parse (strict rule,
/// runtime/parse_int.h): trailing junk ("8x") or overflow returns the
/// fallback rather than a truncated number.
[[nodiscard]] std::int64_t env_int(const std::string& name,
                                   std::int64_t fallback);

/// True when NNR_QUICK is set to a non-zero value.
[[nodiscard]] bool quick_mode();

/// Experiment scale derived from the environment.
struct Scale {
  std::int64_t replicates;
  std::int64_t epochs;
  std::int64_t train_n;
  std::int64_t test_n;
  int threads;
};

/// Resolves the scale knobs against per-bench defaults, applying NNR_QUICK
/// shrinkage (2 replicates, 2 epochs, quarter-size data) when requested.
[[nodiscard]] Scale resolve_scale(std::int64_t default_replicates,
                                  std::int64_t default_epochs,
                                  std::int64_t default_train_n,
                                  std::int64_t default_test_n);

}  // namespace nnr::core
