#include "core/recipe.h"

#include <algorithm>

#include "opt/lr_schedule.h"

namespace nnr::core {

float TrainRecipe::learning_rate(std::int64_t epoch) const {
  switch (schedule) {
    case ScheduleKind::kStepDecay: {
      const opt::StepDecay sched(base_lr, std::max<std::int64_t>(1, decay_every));
      return sched.at_epoch(epoch);
    }
    case ScheduleKind::kWarmupCosine: {
      const opt::WarmupCosine sched(base_lr, /*warmup_epochs=*/1, epochs);
      return sched.at_epoch(epoch);
    }
  }
  return base_lr;
}

TrainRecipe cifar_recipe(std::int64_t epochs) {
  TrainRecipe recipe;
  recipe.epochs = epochs;
  recipe.batch_size = 32;
  recipe.base_lr = 0.002F;
  recipe.momentum = 0.9F;
  recipe.schedule = ScheduleKind::kStepDecay;
  recipe.decay_every = std::max<std::int64_t>(1, 2 * epochs / 3);
  recipe.augment = true;
  return recipe;
}

TrainRecipe imagenet_recipe(std::int64_t epochs) {
  TrainRecipe recipe;
  recipe.epochs = epochs;
  recipe.batch_size = 32;
  recipe.base_lr = 0.1F;
  recipe.momentum = 0.9F;
  recipe.schedule = ScheduleKind::kWarmupCosine;
  recipe.augment = true;
  return recipe;
}

TrainRecipe celeba_recipe(std::int64_t epochs) {
  TrainRecipe recipe;
  recipe.epochs = epochs;
  recipe.batch_size = 32;
  recipe.base_lr = 0.05F;
  recipe.momentum = 0.9F;
  recipe.schedule = ScheduleKind::kStepDecay;
  recipe.decay_every = std::max<std::int64_t>(1, epochs / 2);
  recipe.augment = false;  // paper: no augmentation on CelebA
  return recipe;
}

}  // namespace nnr::core
