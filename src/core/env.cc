#include "core/env.h"

#include <algorithm>
#include <cstdlib>

#include "runtime/parse_int.h"

namespace nnr::core {

std::int64_t env_int(const std::string& name, std::int64_t fallback) {
  const char* value = std::getenv(name.c_str());
  if (value == nullptr || *value == '\0') return fallback;
  // Full-string parse: "8x" or an out-of-range value is a typo, not an 8 —
  // fall back rather than run an experiment at a silently wrong scale.
  const auto parsed = runtime::parse_int_strict(value);
  return parsed.value_or(fallback);
}

bool quick_mode() { return env_int("NNR_QUICK", 0) != 0; }

Scale resolve_scale(std::int64_t default_replicates,
                    std::int64_t default_epochs, std::int64_t default_train_n,
                    std::int64_t default_test_n) {
  Scale scale;
  if (quick_mode()) {
    default_replicates = std::min<std::int64_t>(default_replicates, 2);
    default_epochs = std::min<std::int64_t>(default_epochs, 2);
    default_train_n = std::max<std::int64_t>(default_train_n / 4, 64);
    default_test_n = std::max<std::int64_t>(default_test_n / 4, 64);
  }
  scale.replicates = env_int("NNR_REPLICATES", default_replicates);
  scale.epochs = env_int("NNR_EPOCHS", default_epochs);
  scale.train_n = env_int("NNR_TRAIN_N", default_train_n);
  scale.test_n = env_int("NNR_TEST_N", default_test_n);
  scale.threads = static_cast<int>(env_int("NNR_THREADS", 0));
  return scale;
}

}  // namespace nnr::core
