#include "core/study.h"

#include <algorithm>
#include <cassert>

#include "metrics/classification.h"
#include "metrics/stability.h"

namespace nnr::core {

VariantSummary summarize(std::span<const RunResult> results) {
  VariantSummary summary;
  std::vector<std::vector<std::int32_t>> predictions;
  std::vector<std::vector<float>> weights;
  predictions.reserve(results.size());
  weights.reserve(results.size());
  for (const RunResult& r : results) {
    summary.accuracy.add(r.test_accuracy);
    predictions.push_back(r.test_predictions);
    weights.push_back(r.final_weights);
  }
  const metrics::PairwiseStability pairwise =
      metrics::pairwise_stability(predictions, weights);
  summary.mean_churn = pairwise.churn.mean();
  summary.mean_l2 = pairwise.l2.mean();
  return summary;
}

double PerClassVariance::max_per_class_stddev_pct() const {
  return per_class_stddev_pct.empty()
             ? 0.0
             : *std::max_element(per_class_stddev_pct.begin(),
                                 per_class_stddev_pct.end());
}

double PerClassVariance::amplification() const {
  return overall_stddev_pct > 0.0
             ? max_per_class_stddev_pct() / overall_stddev_pct
             : 0.0;
}

PerClassVariance per_class_variance(std::span<const RunResult> results,
                                    const data::LabeledImages& test) {
  assert(!results.empty());
  const std::int64_t classes = test.num_classes;
  std::vector<metrics::RunningStat> per_class(
      static_cast<std::size_t>(classes));
  metrics::RunningStat overall;
  for (const RunResult& r : results) {
    overall.add(r.test_accuracy);
    const metrics::PerClassAccuracy pca = metrics::per_class_accuracy(
        r.test_predictions, test.labels, classes);
    for (std::int64_t c = 0; c < classes; ++c) {
      per_class[static_cast<std::size_t>(c)].add(
          pca.accuracy[static_cast<std::size_t>(c)]);
    }
  }
  PerClassVariance out;
  out.overall_stddev_pct = overall.stddev() * 100.0;
  out.per_class_stddev_pct.reserve(per_class.size());
  for (const metrics::RunningStat& s : per_class) {
    out.per_class_stddev_pct.push_back(s.stddev() * 100.0);
  }
  return out;
}

SubgroupStability subgroup_stability(std::span<const RunResult> results,
                                     std::span<const std::uint8_t> labels,
                                     std::span<const std::uint8_t> mask) {
  SubgroupStability stats;
  for (const RunResult& r : results) {
    const metrics::BinaryConfusion confusion =
        metrics::binary_confusion(r.test_predictions, labels, mask);
    stats.accuracy.add(confusion.accuracy());
    stats.fpr.add(confusion.false_positive_rate());
    stats.fnr.add(confusion.false_negative_rate());
  }
  return stats;
}

}  // namespace nnr::core
