#include "core/replicates.h"

#include "runtime/thread_pool.h"

namespace nnr::core {

std::vector<RunResult> run_replicates(const TrainJob& job, std::int64_t n,
                                      int threads) {
  std::vector<RunResult> results(static_cast<std::size_t>(n));
  if (n <= 0) return results;
  // Replicates fan out on the shared host pool (NNR_THREADS-sized) instead
  // of spawning a fresh std::thread batch per call; `threads` caps the
  // concurrency of this fan-out only. Kernel-level loops inside each
  // replicate run inline on the worker that owns the replicate, so the
  // pool is never oversubscribed by nesting.
  const int max_workers = threads < 0 ? 1 : threads;  // < 0: serial, 0: pool
  runtime::ThreadPool::global().parallel_for(
      0, n, 1,
      [&](std::int64_t r0, std::int64_t r1) {
        for (std::int64_t r = r0; r < r1; ++r) {
          results[static_cast<std::size_t>(r)] =
              train_replicate(job, static_cast<std::uint64_t>(r));
        }
      },
      max_workers);
  return results;
}

}  // namespace nnr::core
