#include "core/replicates.h"

#include <atomic>
#include <thread>

namespace nnr::core {

std::vector<RunResult> run_replicates(const TrainJob& job, std::int64_t n,
                                      int threads) {
  std::vector<RunResult> results(static_cast<std::size_t>(n));
  if (threads == 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
  }
  if (threads <= 1 || n <= 1) {
    for (std::int64_t r = 0; r < n; ++r) {
      results[static_cast<std::size_t>(r)] =
          train_replicate(job, static_cast<std::uint64_t>(r));
    }
    return results;
  }

  std::atomic<std::int64_t> next{0};
  auto worker = [&]() {
    for (;;) {
      const std::int64_t r = next.fetch_add(1);
      if (r >= n) return;
      results[static_cast<std::size_t>(r)] =
          train_replicate(job, static_cast<std::uint64_t>(r));
    }
  };
  std::vector<std::thread> pool;
  const int n_workers = static_cast<int>(
      std::min<std::int64_t>(threads, n));
  pool.reserve(static_cast<std::size_t>(n_workers));
  for (int t = 0; t < n_workers; ++t) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
  return results;
}

}  // namespace nnr::core
