// Aligned text tables for bench output (the "same rows the paper reports").
#pragma once

#include <string>
#include <vector>

namespace nnr::core {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Renders with column alignment, a header underline, and a title line.
  [[nodiscard]] std::string render(const std::string& title = "") const;

  /// Renders as CSV (no alignment padding).
  [[nodiscard]] std::string render_csv() const;

  /// Structured access for exporters (report/exporter.h).
  [[nodiscard]] const std::vector<std::string>& headers() const noexcept {
    return headers_;
  }
  [[nodiscard]] const std::vector<std::vector<std::string>>& rows()
      const noexcept {
    return rows_;
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// printf-style float formatting helpers for table cells.
[[nodiscard]] std::string fmt_pct(double value, int decimals = 2);
[[nodiscard]] std::string fmt_float(double value, int decimals = 3);

}  // namespace nnr::core
