#include "core/tasks.h"

#include "nn/zoo.h"

namespace nnr::core {

Task small_cnn_cifar10() {
  const Scale scale = resolve_scale(10, 40, 512, 256);
  Task task;
  task.name = "SmallCNN CIFAR-10";
  task.dataset = data::synth_cifar10(scale.train_n, scale.test_n);
  task.make_model = [] { return nn::small_cnn(10, /*with_batchnorm=*/false); };
  task.recipe = cifar_recipe(scale.epochs);
  task.recipe.base_lr = 0.002F;  // the unnormalized net needs a cool LR
  task.default_replicates = scale.replicates;
  return task;
}

Task small_cnn_bn_cifar10() {
  const Scale scale = resolve_scale(10, 40, 512, 256);
  Task task;
  task.name = "SmallCNN+BN CIFAR-10";
  task.dataset = data::synth_cifar10(scale.train_n, scale.test_n);
  task.make_model = [] { return nn::small_cnn(10, /*with_batchnorm=*/true); };
  task.recipe = cifar_recipe(scale.epochs);
  task.recipe.base_lr = 0.002F;  // same recipe as the no-BN cell (Fig. 2)
  task.default_replicates = scale.replicates;
  return task;
}

Task resnet18_cifar10() {
  const Scale scale = resolve_scale(10, 16, 512, 256);
  Task task;
  task.name = "ResNet18 CIFAR-10";
  task.dataset = data::synth_cifar10(scale.train_n, scale.test_n);
  task.make_model = [] { return nn::resnet18s(10); };
  task.recipe = cifar_recipe(scale.epochs);
  task.recipe.base_lr = 0.02F;
  task.default_replicates = scale.replicates;
  return task;
}

Task resnet18_cifar100() {
  const Scale scale = resolve_scale(10, 16, 600, 300);
  Task task;
  task.name = "ResNet18 CIFAR-100";
  task.dataset = data::synth_cifar100(scale.train_n, scale.test_n);
  task.make_model = [] { return nn::resnet18s(100); };
  task.recipe = cifar_recipe(scale.epochs);
  task.recipe.base_lr = 0.02F;
  task.default_replicates = scale.replicates;
  return task;
}

Task resnet50_imagenet() {
  const Scale scale = resolve_scale(5, 16, 600, 300);
  Task task;
  task.name = "ResNet50 ImageNet";
  task.dataset = data::synth_imagenet(scale.train_n, scale.test_n);
  task.make_model = [] { return nn::resnet50s(20); };
  task.recipe = imagenet_recipe(scale.epochs);
  task.recipe.base_lr = 0.05F;
  task.default_replicates = scale.replicates;
  return task;
}

Task vgg_cifar10() {
  const Scale scale = resolve_scale(10, 16, 512, 256);
  Task task;
  task.name = "VGG-s CIFAR-10";
  task.dataset = data::synth_cifar10(scale.train_n, scale.test_n);
  task.make_model = [] { return nn::vgg_s(10); };
  task.recipe = cifar_recipe(scale.epochs);
  task.recipe.base_lr = 0.02F;
  task.default_replicates = scale.replicates;
  return task;
}

Task mobilenet_cifar10() {
  const Scale scale = resolve_scale(10, 16, 512, 256);
  Task task;
  task.name = "MobileNet-s CIFAR-10";
  task.dataset = data::synth_cifar10(scale.train_n, scale.test_n);
  task.make_model = [] { return nn::mobilenet_s(10); };
  task.recipe = cifar_recipe(scale.epochs);
  task.recipe.base_lr = 0.02F;
  task.default_replicates = scale.replicates;
  return task;
}

const std::vector<TaskInfo>& task_registry() {
  static const std::vector<TaskInfo> registry = {
      {"smallcnn", "SmallCNN (no BN) on the CIFAR-10 stand-in",
       small_cnn_cifar10},
      {"smallcnn_bn", "SmallCNN+BN on the CIFAR-10 stand-in",
       small_cnn_bn_cifar10},
      {"smallcnn_dropout",
       "SmallCNN with a 0.3-dropout head (exercises the dropout channel)",
       [] {
         Task task = small_cnn_cifar10();
         task.name = "SmallCNN+dropout CIFAR-10";
         task.make_model = [] { return nn::small_cnn_dropout(10, 0.3F); };
         return task;
       }},
      {"resnet18_c10", "Scaled ResNet-18 on the CIFAR-10 stand-in",
       resnet18_cifar10},
      {"resnet18_c100", "Scaled ResNet-18 on the CIFAR-100 stand-in",
       resnet18_cifar100},
      {"resnet50_in", "Scaled ResNet-50 on the ImageNet stand-in",
       resnet50_imagenet},
      {"vgg", "Scaled VGG (plain deep stack) on the CIFAR-10 stand-in",
       vgg_cifar10},
      {"mobilenet",
       "Scaled MobileNet (depthwise-separable) on the CIFAR-10 stand-in",
       mobilenet_cifar10},
  };
  return registry;
}

const TaskInfo* find_task(std::string_view id) {
  for (const TaskInfo& info : task_registry()) {
    if (info.id == id) return &info;
  }
  return nullptr;
}

}  // namespace nnr::core
