#include "core/tasks.h"

#include "nn/zoo.h"

namespace nnr::core {

Task small_cnn_cifar10() {
  const Scale scale = resolve_scale(10, 40, 512, 256);
  Task task;
  task.name = "SmallCNN CIFAR-10";
  task.dataset = data::synth_cifar10(scale.train_n, scale.test_n);
  task.make_model = [] { return nn::small_cnn(10, /*with_batchnorm=*/false); };
  task.recipe = cifar_recipe(scale.epochs);
  task.recipe.base_lr = 0.002F;  // the unnormalized net needs a cool LR
  task.default_replicates = scale.replicates;
  return task;
}

Task small_cnn_bn_cifar10() {
  const Scale scale = resolve_scale(10, 40, 512, 256);
  Task task;
  task.name = "SmallCNN+BN CIFAR-10";
  task.dataset = data::synth_cifar10(scale.train_n, scale.test_n);
  task.make_model = [] { return nn::small_cnn(10, /*with_batchnorm=*/true); };
  task.recipe = cifar_recipe(scale.epochs);
  task.recipe.base_lr = 0.002F;  // same recipe as the no-BN cell (Fig. 2)
  task.default_replicates = scale.replicates;
  return task;
}

Task resnet18_cifar10() {
  const Scale scale = resolve_scale(10, 16, 512, 256);
  Task task;
  task.name = "ResNet18 CIFAR-10";
  task.dataset = data::synth_cifar10(scale.train_n, scale.test_n);
  task.make_model = [] { return nn::resnet18s(10); };
  task.recipe = cifar_recipe(scale.epochs);
  task.recipe.base_lr = 0.02F;
  task.default_replicates = scale.replicates;
  return task;
}

Task resnet18_cifar100() {
  const Scale scale = resolve_scale(10, 16, 600, 300);
  Task task;
  task.name = "ResNet18 CIFAR-100";
  task.dataset = data::synth_cifar100(scale.train_n, scale.test_n);
  task.make_model = [] { return nn::resnet18s(100); };
  task.recipe = cifar_recipe(scale.epochs);
  task.recipe.base_lr = 0.02F;
  task.default_replicates = scale.replicates;
  return task;
}

Task resnet50_imagenet() {
  const Scale scale = resolve_scale(5, 16, 600, 300);
  Task task;
  task.name = "ResNet50 ImageNet";
  task.dataset = data::synth_imagenet(scale.train_n, scale.test_n);
  task.make_model = [] { return nn::resnet50s(20); };
  task.recipe = imagenet_recipe(scale.epochs);
  task.recipe.base_lr = 0.05F;
  task.default_replicates = scale.replicates;
  return task;
}

Task vgg_cifar10() {
  const Scale scale = resolve_scale(10, 16, 512, 256);
  Task task;
  task.name = "VGG-s CIFAR-10";
  task.dataset = data::synth_cifar10(scale.train_n, scale.test_n);
  task.make_model = [] { return nn::vgg_s(10); };
  task.recipe = cifar_recipe(scale.epochs);
  task.recipe.base_lr = 0.02F;
  task.default_replicates = scale.replicates;
  return task;
}

Task mobilenet_cifar10() {
  const Scale scale = resolve_scale(10, 16, 512, 256);
  Task task;
  task.name = "MobileNet-s CIFAR-10";
  task.dataset = data::synth_cifar10(scale.train_n, scale.test_n);
  task.make_model = [] { return nn::mobilenet_s(10); };
  task.recipe = cifar_recipe(scale.epochs);
  task.recipe.base_lr = 0.02F;
  task.default_replicates = scale.replicates;
  return task;
}

}  // namespace nnr::core
