#include "core/trainer.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "data/batcher.h"
#include "metrics/classification.h"
#include "nn/loss.h"
#include "opt/sgd.h"
#include "rng/seed_channels.h"
#include "tensor/ops.h"
#include "tensor/workspace.h"

namespace nnr::core {

using data::EpochShuffler;
using data::gather_images;
using data::gather_labels;
using rng::Channel;
using rng::make_channel_generator;
using tensor::Tensor;

EvalResult evaluate_full(nn::Model& model, const data::LabeledImages& split,
                         hw::ExecutionContext& hw_ctx,
                         std::int64_t batch_size) {
  tensor::Workspace workspace;
  nn::RunContext ctx{.hw = &hw_ctx,
                     .training = false,
                     .dropout = nullptr,
                     .workspace = &workspace};
  EvalResult result;
  result.predictions.reserve(static_cast<std::size_t>(split.size()));
  result.confidences.reserve(static_cast<std::size_t>(split.size()));

  std::vector<std::uint32_t> indices;
  for (std::int64_t start = 0; start < split.size(); start += batch_size) {
    const std::int64_t end = std::min(start + batch_size, split.size());
    indices.clear();
    for (std::int64_t i = start; i < end; ++i) {
      indices.push_back(static_cast<std::uint32_t>(i));
    }
    const Tensor batch = gather_images(split.images, indices);
    const Tensor logits = model.forward(batch, ctx);
    const std::int64_t classes = logits.shape()[1];
    for (std::int64_t r = 0; r < logits.shape()[0]; ++r) {
      const std::span<const float> row(logits.raw() + r * classes,
                                       static_cast<std::size_t>(classes));
      const std::size_t top = tensor::argmax(row);
      result.predictions.push_back(static_cast<std::int32_t>(top));
      // Max softmax probability via the numerically stable logsumexp form.
      // Measurement-side code: double accumulation, input order (see
      // metrics/running_stat.h for the convention).
      const double z_max = row[top];
      double sum = 0.0;
      for (const float z : row) sum += std::exp(static_cast<double>(z) - z_max);
      result.confidences.push_back(static_cast<float>(1.0 / sum));
    }
  }
  return result;
}

std::vector<std::int32_t> evaluate(nn::Model& model,
                                   const data::LabeledImages& split,
                                   hw::ExecutionContext& hw_ctx,
                                   std::int64_t batch_size) {
  return evaluate_full(model, split, hw_ctx, batch_size).predictions;
}

RunResult train_replicate(const TrainJob& job, std::uint64_t replicate) {
  return train_replicate(job, ReplicateIds{replicate, replicate});
}

RunResult train_replicate(const TrainJob& job, ReplicateIds ids) {
  assert(job.dataset != nullptr && job.make_model != nullptr);
  const ChannelToggles toggles =
      job.toggles_override ? *job.toggles_override : toggles_for(job.variant);
  const data::LabeledImages& train = job.dataset->train;
  const data::LabeledImages& test = job.dataset->test;

  // Independent noise channels; each is pinned or varying per the variant.
  // The ALGO bundle keys off ids.algo, the scheduler channel off ids.impl;
  // the named variants call this with algo == impl.
  auto init_gen = make_channel_generator(job.base_seed, Channel::kInit,
                                         ids.algo, toggles.init_varies);
  auto shuffle_gen = make_channel_generator(job.base_seed, Channel::kShuffle,
                                            ids.algo, toggles.shuffle_varies);
  auto augment_gen = make_channel_generator(job.base_seed, Channel::kAugment,
                                            ids.algo, toggles.augment_varies);
  auto dropout_gen = make_channel_generator(job.base_seed, Channel::kDropout,
                                            ids.algo, toggles.dropout_varies);
  auto scheduler_gen =
      make_channel_generator(job.base_seed, Channel::kScheduler, ids.impl,
                             toggles.scheduler_varies);

  hw::ExecutionContext hw_ctx(job.device, toggles.mode,
                              std::move(scheduler_gen));

  nn::Model model = job.make_model();
  if (job.warm_start_weights) {
    model.load_flat_weights(*job.warm_start_weights);
  } else {
    model.init_weights(init_gen);
  }
  const std::unique_ptr<opt::Optimizer> optimizer =
      job.make_optimizer
          ? job.make_optimizer(model.params())
          : std::make_unique<opt::Sgd>(model.params(), job.recipe.momentum);

  EpochShuffler shuffler(train.size(), std::move(shuffle_gen));
  // One scratch arena per replicate: conv/dense reuse their im2col and
  // transpose buffers across every step of the run.
  tensor::Workspace workspace;
  nn::RunContext ctx{.hw = &hw_ctx,
                     .training = true,
                     .dropout = &dropout_gen,
                     .workspace = &workspace};

  double last_loss = 0.0;
  for (std::int64_t epoch = 0; epoch < job.recipe.epochs; ++epoch) {
    const float lr = job.recipe.learning_rate(epoch);
    const std::vector<std::uint32_t> order = job.fixed_identity_order
                                                 ? shuffler.identity_order()
                                                 : shuffler.next_epoch_order();
    for (std::int64_t start = 0; start < train.size();
         start += job.recipe.batch_size) {
      const std::int64_t end =
          std::min(start + job.recipe.batch_size, train.size());
      const std::span<const std::uint32_t> batch_idx(
          order.data() + start, static_cast<std::size_t>(end - start));

      Tensor images = gather_images(train.images, batch_idx);
      if (job.recipe.augment) {
        images = data::augment_batch(images, job.recipe.augment_config,
                                     augment_gen);
      }
      const std::vector<std::int32_t> labels =
          gather_labels(train.labels, batch_idx);

      model.zero_grads();
      const Tensor logits = model.forward(images, ctx);
      const nn::LossResult loss =
          nn::softmax_cross_entropy(logits, labels, ctx);
      last_loss = loss.loss;
      (void)model.backward(loss.grad_logits, ctx);
      optimizer->step(lr);
    }
  }

  RunResult result;
  result.final_train_loss = last_loss;
  EvalResult eval = evaluate_full(model, test, hw_ctx, job.recipe.batch_size);
  result.test_predictions = std::move(eval.predictions);
  result.test_confidences = std::move(eval.confidences);
  result.test_accuracy =
      metrics::accuracy(result.test_predictions, test.labels);
  result.final_weights = model.flat_weights();
  return result;
}

}  // namespace nnr::core
