// Replicate fan-out: trains N independent models for a job, optionally in
// parallel across host threads. Thread parallelism is measurement
// infrastructure only — each replicate owns its model, optimizer, and
// entropy streams, so the simulated training itself is unaffected by how
// replicates are scheduled on the host (asserted by tests).
#pragma once

#include <cstdint>
#include <vector>

#include "core/trainer.h"

namespace nnr::core {

/// Runs replicates [0, n) of `job` on the shared host pool. `threads` < 0 or
/// == 1 runs serially; `threads == 0` uses the pool's full width (NNR_THREADS,
/// defaulting to the hardware concurrency); otherwise `threads` caps the
/// fan-out of this call.
[[nodiscard]] std::vector<RunResult> run_replicates(const TrainJob& job,
                                                    std::int64_t n,
                                                    int threads = 0);

}  // namespace nnr::core
