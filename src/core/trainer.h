// Single-replicate trainer: one model trained from scratch on a simulated
// device under a noise variant's channel toggles. This is the unit of work
// every experiment fans out over.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "core/noise_variant.h"
#include "core/recipe.h"
#include "data/dataset.h"
#include "hw/device.h"
#include "nn/model.h"
#include "opt/optimizer.h"

namespace nnr::core {

using ModelFactory = std::function<nn::Model()>;
using OptimizerFactory =
    std::function<std::unique_ptr<opt::Optimizer>(std::vector<nn::Param*>)>;

struct RunResult {
  std::vector<std::int32_t> test_predictions;
  /// Per-example max softmax probability (the confidence of the argmax
  /// prediction) — input to the calibration metrics (metrics/calibration.h).
  std::vector<float> test_confidences;
  std::vector<float> final_weights;
  double test_accuracy = 0.0;
  double final_train_loss = 0.0;
};

struct TrainJob {
  ModelFactory make_model;
  const data::ClassificationDataset* dataset = nullptr;  // non-owning
  TrainRecipe recipe;
  NoiseVariant variant = NoiseVariant::kAlgoPlusImpl;
  hw::DeviceSpec device;
  std::uint64_t base_seed = 0x5EEDull;

  /// Custom channel toggles for probe experiments that are not one of the
  /// four named variants (e.g. Fig. 6 varies *only* the shuffle channel on a
  /// TPU). When set, `variant` is ignored.
  std::optional<ChannelToggles> toggles_override;

  /// Optimizer override for ablations (optimizer choice vs noise
  /// amplification). Unset: SGD with the recipe's momentum — the paper's
  /// setting for every experiment.
  OptimizerFactory make_optimizer;

  /// When true the epoch order is *not* drawn from the shuffle channel and
  /// the identity order is used every epoch (the Fig. 6 probe uses a
  /// dedicated varying order instead).
  bool fixed_identity_order = false;

  /// Warm start: when set, the model is initialized from these weights
  /// (Model::flat_weights layout) instead of the init channel — the
  /// "launch and iterate" churn mitigation (core/churn_reduction.h). The
  /// init channel is not consumed at all in this mode.
  std::optional<std::vector<float>> warm_start_weights;
};

/// Trains replicate `replicate` of `job` and evaluates on the test split.
[[nodiscard]] RunResult train_replicate(const TrainJob& job,
                                        std::uint64_t replicate);

/// Replicate indices for factorial designs: the ALGO channel bundle
/// (init/shuffle/augment/dropout) and the IMPL channel (scheduler entropy)
/// draw from *independent* replicate indices. train_replicate(job, r) is the
/// diagonal {r, r}. A varying channel is seeded by its index; a pinned
/// channel ignores it (same semantics as the named variants).
struct ReplicateIds {
  std::uint64_t algo = 0;
  std::uint64_t impl = 0;
};

/// Trains one cell of a factorial (algo seed x impl seed) grid — the unit of
/// work for the two-way variance-decomposition study (stats/anova.h).
[[nodiscard]] RunResult train_replicate(const TrainJob& job, ReplicateIds ids);

/// Evaluates `model` on a split (argmax predictions), batched.
[[nodiscard]] std::vector<std::int32_t> evaluate(
    nn::Model& model, const data::LabeledImages& split,
    hw::ExecutionContext& hw_ctx, std::int64_t batch_size);

/// Predictions plus per-example argmax softmax confidence.
struct EvalResult {
  std::vector<std::int32_t> predictions;
  std::vector<float> confidences;
};

/// Evaluation that also records confidences (one forward pass; evaluate()
/// is this with the confidences dropped).
[[nodiscard]] EvalResult evaluate_full(nn::Model& model,
                                       const data::LabeledImages& split,
                                       hw::ExecutionContext& hw_ctx,
                                       std::int64_t batch_size);

}  // namespace nnr::core
