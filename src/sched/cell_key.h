// Content-addressed cell identity.
//
// A CellKey is a 128-bit hash over everything that determines a replicate's
// training outcome: the task identity, the full recipe (epochs, batch, LR
// schedule, augmentation, dropout), the noise variant or explicit channel
// toggles, the device spec, the base seed, warm-start weights, the optimizer
// and runner identities, and the (algo, impl) replicate indices. Under the
// determinism contract (a replicate id fully determines the run, bit for
// bit), equal keys imply bitwise-equal results — which is exactly what makes
// the key safe to use as a *cache* address: a result loaded by key is the
// result training would have produced.
//
// Fields are hashed as a tagged, length-delimited byte stream (no
// concatenation ambiguity); floats are hashed by IEEE-754 bit pattern, so a
// cosmetic -0.0/0.0 difference changes the key rather than silently aliasing.
// Bump kCellKeyVersion whenever trainer semantics change in a way that
// invalidates old cached results.
#pragma once

#include <cstdint>
#include <string>

#include "core/trainer.h"
#include "sched/study_plan.h"

namespace nnr::sched {

inline constexpr std::int64_t kCellKeyVersion = 1;

struct CellKey {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  /// 32 lowercase hex chars (hi then lo) — the cache filename stem.
  [[nodiscard]] std::string hex() const;

  friend bool operator==(const CellKey&, const CellKey&) = default;
};

/// Hash for CellKey-keyed tables (the batch scheduler's coalescing map,
/// the daemon's lease table). The key is already a 128-bit content hash,
/// so folding its halves is as good as rehashing.
struct CellKeyHash {
  [[nodiscard]] std::size_t operator()(const CellKey& key) const noexcept {
    return static_cast<std::size_t>(key.hi ^
                                    (key.lo * 0x9E3779B97F4A7C15ull));
  }
};

/// Key for replicate `ids` of `cell`. Only meaningful when
/// cell.cacheable(); the scheduler never computes keys for uncacheable
/// cells.
[[nodiscard]] CellKey cell_key(const Cell& cell, core::ReplicateIds ids);

}  // namespace nnr::sched
