// Shared progress-line plumbing for the scheduler's [study] reporter and
// the fleet coordinator's [fleet] line: a throughput-honest ETA and a
// printer that rate-limits and never emits the same line twice in a row.
//
// The ETA policy exists because cache hits complete in microseconds while
// trained cells take seconds to hours. Extrapolating from overall
// completions (elapsed / done) looks clever until a warm-prefix study hits
// 500 cached cells in two seconds and then forecasts "4s remaining" for
// 500 cells of real training. Costing the remainder at the *trained*-cell
// rate is the honest estimate whenever at least one cell has trained;
// until then the overall rate (all hits so far) is the only signal there
// is.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>

namespace nnr::sched {

/// ETA string ("12.3s", "0s", or "?") for a progress line.
///   done / total        all completed / all scheduled work units
///   trained             completed units that were actually trained
///   elapsed_ms          wall time since the run started
/// Remaining work is costed at elapsed/trained per unit when trained > 0
/// (hits are ~free, so elapsed is effectively training time); otherwise at
/// the overall elapsed/done rate (everything hit so far — a warm rerun);
/// "?" before anything completes; "0s" at completion.
[[nodiscard]] std::string format_eta(std::int64_t elapsed_ms,
                                     std::int64_t done, std::int64_t total,
                                     std::int64_t trained);

/// Stderr progress printer: at most one line per `min_interval_ms` (a
/// `force`d line — typically the final one — bypasses the rate limit), and
/// never two identical consecutive lines, forced or not. Thread-safe.
class ProgressPrinter {
 public:
  explicit ProgressPrinter(std::int64_t min_interval_ms = 1000)
      : min_interval_ms_(min_interval_ms) {}

  /// Emits `line` (a newline is appended) unless rate-limited or identical
  /// to the previously emitted line. Returns true when printed.
  bool emit(const std::string& line, std::int64_t elapsed_ms,
            bool force = false);

 private:
  const std::int64_t min_interval_ms_;
  std::mutex mu_;
  std::int64_t last_emit_ms_ = -(1LL << 40);
  std::string last_line_;
};

}  // namespace nnr::sched
