// Client-side loops of the fleet work queue (the daemon side lives in
// sched/cache_server.h + sched/fleet_queue.h):
//
//   coordinator   `nnr_run --submit fig2,table2 --cache-url ...`
//                 enumerates the cacheable cells of the named studies,
//                 SUBMITs them once, then polls QUEUE_STAT printing a
//                 fleet-wide "[fleet] 412/960 cells" line until the queue
//                 drains. It never trains — workers do; afterwards the
//                 caller replays the studies locally (now warm) to produce
//                 byte-identical tables.
//
//   worker        `nnr_run --worker --cache-url ...`
//                 a stateless FETCH -> train -> PUT -> REPORT loop. Workers
//                 can join or leave mid-study: a fetched lease that dies
//                 with its worker returns the cell to the queue (TTL expiry
//                 or TCP disconnect), and the daemon marks a cell trained
//                 at PUT time, so a worker killed between PUT and REPORT
//                 still counts exactly once.
//
// Both loops degrade like the rest of the remote backend: an unreachable
// or restarted daemon costs retries (the daemon's queue snapshot survives a
// restart), never wrong results.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace nnr::sched {

class CacheBackend;
class RemoteCacheBackend;

struct FleetSubmitOptions {
  /// QUEUE_STAT poll interval while waiting for the fleet to drain
  /// (jittered +-50% per sleep; see jitter_seed).
  std::int64_t poll_ms = 500;
  /// A failed SUBMIT RPC is retried this many times (jittered poll_ms
  /// apart) before the coordinator gives up. SUBMIT is idempotent — the
  /// daemon dedupes resubmitted keys — so a retry can only cost duplicate
  /// counts, never duplicate work; without it one dropped frame at submit
  /// time would abort a whole wave.
  std::int64_t submit_retries = 10;
  /// Seed of the poll-jitter stream; 0 = pid-derived (production default).
  std::uint64_t jitter_seed = 0;
};

struct FleetSubmitSummary {
  std::uint64_t submitted = 0;     // newly enqueued by this submit
  std::uint64_t duplicates = 0;    // already tracked by the queue
  std::uint64_t already_done = 0;  // already in the cache at submit time
  std::int64_t uncacheable = 0;    // replicates skipped (train locally)
  // Fleet-wide queue state once drained.
  std::uint64_t total = 0;
  std::uint64_t trained = 0;
  std::uint64_t served = 0;
  std::uint64_t failed = 0;  // gave up after FleetQueue::kMaxAttempts
};

/// Submits every cacheable (cell, replicate) of the named studies (ids per
/// sched/registry.h; the caller validates names first) and blocks until the
/// fleet drains the queue, printing the [fleet] progress line to stderr.
/// nullopt when the submit RPC fails submit_retries + 1 times (daemon
/// unreachable, or a pre-queue daemon answering kError). Daemon restarts
/// during the wait are tolerated: failed polls just retry after poll_ms.
[[nodiscard]] std::optional<FleetSubmitSummary> fleet_submit_and_wait(
    RemoteCacheBackend& backend, const std::vector<std::string>& studies,
    const FleetSubmitOptions& options = {});

struct FleetWorkerOptions {
  /// Sleep between FETCH attempts while the queue has outstanding work
  /// held by other workers (nothing fetchable right now). Every sleep in
  /// the worker is jittered +-50%, so N workers started together do not
  /// hammer a recovering daemon in phase.
  std::int64_t poll_ms = 500;
  /// Sleep while the daemon is unreachable before retrying.
  std::int64_t degraded_poll_ms = 1000;
  /// Exit once the queue reports no outstanding work (outstanding == 0,
  /// total > 0). False keeps the worker alive for the next submit wave.
  bool exit_when_drained = true;
  /// Test hook: stop after this many granted cells (0 = unlimited).
  std::int64_t max_cells = 0;
  /// A failed store of a finished training run is retried this many times
  /// (jittered store_retry_ms apart) before the cell is reported kFailed.
  /// Training is the expensive part: under a flaky network, re-sending a
  /// PUT is vastly cheaper than burning one of the queue's bounded
  /// attempts and retraining the cell elsewhere.
  std::int64_t store_retries = 3;
  std::int64_t store_retry_ms = 200;
  /// A failed REPORT RPC is retried this many times (jittered
  /// store_retry_ms apart). In a single-daemon deployment a lost REPORT is
  /// benign — the PUT already settled the item on the same daemon — but
  /// with a sharded cache tier the queue daemon never sees a PUT bound for
  /// another shard, so REPORT is the only settlement path and a dropped
  /// frame must cost a retry, not the cell's exactly-once tally (the
  /// lease would expire and another worker would redo the cell as served).
  std::int64_t report_retries = 3;
  /// Seed of the jitter stream; 0 = pid-derived (production default).
  std::uint64_t jitter_seed = 0;
};

struct FleetWorkerSummary {
  std::int64_t fetched = 0;
  std::int64_t trained = 0;
  std::int64_t served = 0;  // cache hit under the lease — no training
  std::int64_t failed = 0;  // reported kFailed (daemon may retry the cell)
};

/// The worker loop. Returns when the queue drains (see
/// FleetWorkerOptions::exit_when_drained) or max_cells is reached.
///
/// `backend` carries the queue RPCs (FETCH/REPORT) — under a sharded cache
/// tier the work queue lives on ONE daemon (the first shard in the map).
/// `cache`, when non-null, carries the entry traffic (load before train,
/// PUT after) so results land on each key's owner shard; null routes entry
/// traffic through `backend` too (the single-daemon deployment, where the
/// queue daemon IS the cache).
FleetWorkerSummary fleet_run_worker(RemoteCacheBackend& backend,
                                    const FleetWorkerOptions& options = {},
                                    CacheBackend* cache = nullptr);

}  // namespace nnr::sched
