// Filesystem cache backend: the persistent, content-addressed replicate
// store behind a shared directory (NNR_CACHE_DIR / --cache-dir).
//
// Stores one serialized core::RunResult per CellKey under the cache dir,
// so a cell that appears in several studies — fig1 and table2 share most
// of their V100 cells — trains once and is then served from disk
// everywhere, bit for bit. The bit-exactness contract makes this safe: a
// key collision-free lookup returns exactly the bytes training would have
// produced (enforced by tests/sched/scheduler_test.cc).
//
// Failure policy: see sched/cache_backend.h — a corrupted, truncated, or
// mismatched entry is counted and treated as a miss (the scheduler
// recomputes); a failed store is dropped silently. Loads/stores are
// thread-safe — the scheduler calls them from pool workers.
//
// Cross-process coordination: every key has an advisory lockfile
// (`<hex>.lock`, flock-based — sched/file_lock.h). Claim states:
//
//   free   no process holds `<hex>.lock`; try_claim succeeds
//   held   the flock is held — by a pool worker here, a peer process, or
//          the nnr_cached daemon fronting this dir (leases hold the flock
//          too, so fs and remote clients interoperate on one dir)
//   dead   the holder exited or was SIGKILLed; the kernel dropped the
//          flock, so the key is immediately free — no stale-claim sweeper
//          is needed for liveness, gc() only tidies the leftover files
//
// A cache-wide lock (`gc.lock`) serializes eviction, GC, journal
// compaction, and the one-time manifest write.
//
// Size budget and eviction invariants (NNR_CACHE_BUDGET / --cache-budget,
// 0 = unlimited): a store that pushes the cache over budget evicts
// least-recently-used entries down to the budget. Recency comes from a
// persisted append-only access journal (`access.journal`,
// serialize/journal.h) updated on every hit and store; an entry whose key
// lock is currently held (in-flight: being trained, stored, or
// double-checked) is never evicted; eviction holds the key's lock while
// unlinking so a concurrent claimant can never watch its entry vanish
// mid-claim. `gc()` additionally sweeps orphaned `.tmp` files (dead writer
// pids) and unheld lockfiles — exposed as `nnr_run --cache-gc`.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>

#include "core/trainer.h"
#include "sched/cache_backend.h"
#include "sched/cell_key.h"
#include "sched/file_lock.h"
#include "serialize/journal.h"

namespace nnr::sched {

class FsCacheBackend final : public CacheBackend {
 public:
  /// Cache rooted at `dir`; an empty dir disables the cache (every load
  /// misses without touching the stats, every store is a no-op).
  /// `budget_bytes` > 0 bounds the cache's total entry size via LRU
  /// eviction; <= 0 means unlimited.
  explicit FsCacheBackend(std::string dir, std::int64_t budget_bytes = 0);

  /// Cache configured from the environment: NNR_CACHE_DIR (unset disables)
  /// and NNR_CACHE_BUDGET (bytes; unset/invalid means unlimited).
  [[nodiscard]] static FsCacheBackend from_env();

  [[nodiscard]] bool enabled() const noexcept { return !dir_.empty(); }
  [[nodiscard]] const std::string& dir() const noexcept { return dir_; }
  [[nodiscard]] std::int64_t budget() const noexcept { return budget_; }

  // CacheBackend interface (doc contracts in sched/cache_backend.h).
  [[nodiscard]] std::optional<core::RunResult> load(
      const CellKey& key, CacheStats* run = nullptr,
      bool count_miss = true) override;
  bool store(const CellKey& key, const core::RunResult& result,
             CacheStats* run = nullptr) override;
  [[nodiscard]] std::optional<CacheClaim> try_claim(
      const CellKey& key) override;
  [[nodiscard]] std::optional<CacheClaim> claim(const CellKey& key) override;
  GcStats gc() override;
  [[nodiscard]] CacheStats stats() const override;
  [[nodiscard]] std::string describe() const override {
    return "dir:" + dir_;
  }

  /// Raw entry payload for `key` — the exact file bytes, unvalidated (the
  /// daemon's GET path; the requesting client re-verifies checksum and
  /// embedded key). Counts a hit/miss and touches the journal, so remote
  /// reads advance LRU recency like local ones.
  [[nodiscard]] std::optional<std::string> load_bytes(const CellKey& key);

  /// Stores pre-validated raw bytes under `key` (the daemon's PUT path).
  /// Same atomic temp-file + rename, journal touch, and budget-eviction
  /// hook as store().
  bool store_bytes(const CellKey& key, std::string_view bytes);

  /// True when an entry file for `key` exists right now — a pure existence
  /// probe (the daemon's SUBMIT dedupe path). Unlike load/load_bytes it
  /// counts no hit/miss and touches no journal: a queue submission must not
  /// perturb the cache's stats or LRU recency.
  [[nodiscard]] bool has_entry(const CellKey& key) const;

  /// Entry count and total entry bytes by directory scan (the daemon's
  /// STAT path; excludes locks, journal, manifest, temp files).
  struct Usage {
    std::int64_t entries = 0;
    std::int64_t bytes = 0;
  };
  [[nodiscard]] Usage usage() const;

  /// Cache file path for `key` (exposed for tests and tooling).
  [[nodiscard]] std::string path_for(const CellKey& key) const;
  /// Advisory lockfile path for `key`.
  [[nodiscard]] std::string lock_path_for(const CellKey& key) const;

 private:
  void touch(const CellKey& key) const;  // journal an access (best-effort)
  void ensure_dir_and_manifest();
  void maybe_evict();
  void evict_to_budget_locked(std::int64_t budget, GcStats* gc_stats);
  void compact_journal_locked() const;
  [[nodiscard]] std::string gc_lock_path() const;

  std::string dir_;
  std::int64_t budget_ = 0;
  serialize::AccessJournal journal_;
  std::atomic<bool> manifest_checked_{false};
  /// Running estimate of total entry bytes for the budget pre-check (-1 =
  /// not yet seeded by a scan). Advanced by this process's stores, reset
  /// to the authoritative total on each eviction pass; peers track their
  /// own stores, so whoever crosses the budget runs the eviction.
  std::atomic<std::int64_t> approx_bytes_{-1};
  mutable std::mutex mu_;
  CacheStats stats_;
};

}  // namespace nnr::sched
