// Remote cache backend: a TCP client of the `nnr_cached` daemon
// (sched/cache_server.h, tools/nnr_cached.cc), selected by
// NNR_CACHE_URL=tcp://host:port or `nnr_run --cache-url`.
//
// Claims are server-side leases with a TTL. Claim states, mirroring the fs
// backend's flock semantics (sched/fs_cache_backend.h):
//
//   free     no lease on the key; TRY_CLAIM answers GRANTED(lease_id)
//   held     a lease exists; TRY_CLAIM answers BUSY (the caller defers,
//            then polls via the blocking claim())
//   renewed  a background heartbeat thread re-arms every held lease at
//            ~TTL/3, so a live client can train one cell for hours
//   dead     the holder stopped heartbeating: lease expires after TTL; or
//            its TCP connection closed (process exit/SIGKILL sends FIN) and
//            the daemon releases immediately — the remote analogue of the
//            kernel dropping a dead process's flock
//
// Degrade-to-recompute: an unreachable, restarted, or misbehaving daemon
// must never wedge or corrupt a study, matching the corrupt-entry
// contract. While degraded: load() misses, store() fails silently,
// try_claim()/claim() grant a local no-op claim so the scheduler trains
// the cell itself instead of deferring forever. The client re-attempts the
// connection (at most once per reconnect_backoff_ms), so a bounced daemon
// turns back into hits. GET payloads are re-validated locally (checksum +
// embedded key); a corrupt payload counts corrupt+miss exactly like a
// corrupt local file.
//
// Thread safety: all operations share one socket serialized by a mutex —
// pool workers, the heartbeat thread, and claim releases interleave
// request-by-request. A CacheClaim must not outlive its backend.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/backoff.h"
#include "net/cache_protocol.h"
#include "net/socket.h"
#include "sched/cache_backend.h"
#include "sched/fleet_queue.h"

namespace nnr::sched {

struct RemoteCacheOptions {
  /// Lease TTL requested with every claim (server clamps to its bounds).
  std::uint32_t lease_ttl_ms = 10'000;
  /// Heartbeat renewal on/off. Off is for tests that exercise the
  /// lease-expiry path; production clients always heartbeat.
  bool heartbeat = true;
  /// Per-operation socket timeout.
  int io_timeout_ms = 5'000;
  /// A response that is merely late — the receive timed out on a frame
  /// boundary with nothing consumed — is re-awaited up to this many extra
  /// windows before the connection is declared dead. Distinct from a close
  /// or mid-frame timeout, which drop the connection immediately: a clean
  /// boundary timeout usually means the single-threaded daemon is busy
  /// (e.g. storing a large entry), not gone.
  int io_timeout_retries = 2;
  int connect_timeout_ms = 2'000;
  /// While degraded, at most one reconnect attempt per backoff window (the
  /// rest of the window every call fails fast and the study trains on).
  /// This is the FIRST window; each consecutive failure doubles it up to
  /// reconnect_backoff_max_ms, and every window is jittered +-50% so a
  /// fleet that lost its daemon together does not reconnect in lockstep.
  int reconnect_backoff_ms = 500;
  int reconnect_backoff_max_ms = 8'000;
  /// Seed of the jitter stream; 0 derives a per-process seed from the pid
  /// (the production default — it is what decorrelates a fleet). Tests pin
  /// a nonzero seed for a reproducible schedule.
  std::uint64_t jitter_seed = 0;
  /// A kThrottled answer is honored by sleeping its retry_after_ms hint
  /// (jittered, clamped to max_retry_after_ms) and resending, up to this
  /// many times per operation; after that the throttled status surfaces to
  /// the caller, which treats it like any other refusal (miss/failure).
  int throttle_retries = 3;
  int max_retry_after_ms = 1'000;
  /// Poll interval of the blocking claim() (the daemon has no server-side
  /// wait queue; polling keeps the one connection free for heartbeats).
  int claim_poll_ms = 50;
};

class RemoteCacheBackend final : public CacheBackend {
 public:
  /// `url` must be tcp://host:port. Throws std::invalid_argument on any
  /// other shape. Does not connect — the first operation does (and failure
  /// there just degrades).
  explicit RemoteCacheBackend(const std::string& url,
                              RemoteCacheOptions options = {});
  ~RemoteCacheBackend() override;

  /// Splits tcp://host:port. False on malformed input.
  static bool parse_url(const std::string& url, std::string* host,
                        std::uint16_t* port);

  // CacheBackend interface (doc contracts in sched/cache_backend.h).
  [[nodiscard]] std::optional<core::RunResult> load(
      const CellKey& key, CacheStats* run = nullptr,
      bool count_miss = true) override;
  bool store(const CellKey& key, const core::RunResult& result,
             CacheStats* run = nullptr) override;
  [[nodiscard]] std::optional<CacheClaim> try_claim(
      const CellKey& key) override;
  [[nodiscard]] std::optional<CacheClaim> claim(const CellKey& key) override;
  GcStats gc() override;
  [[nodiscard]] CacheStats stats() const override;
  [[nodiscard]] std::string describe() const override { return url_; }

  /// True when a round-trip (PING) succeeds right now; attempts a
  /// (re)connect. Used by tools for a startup health check.
  [[nodiscard]] bool ping();

  /// True when a TCP connection is currently established (no I/O — just a
  /// socket check). The sharded composite uses this after a delegated
  /// operation to decide whether a miss was "daemon says miss" (connection
  /// up) or "daemon unreachable" (mark the shard down).
  [[nodiscard]] bool connected() const;

  /// Explicit teardown with a FULL per-connection state reset: closes the
  /// socket and clears the reconnect backoff, its armed window, the
  /// last-attempt stamp, and the heartbeat set (held leases — the daemon
  /// releases them on our FIN, so renewing them over a fresh connection
  /// would only harvest kGone). The next operation connects immediately,
  /// as if the backend were newly constructed. This is what shard-level
  /// health cycling needs: a probe after an outage must actually attempt
  /// the connect, not fail fast inside a stale backoff window. Contrast
  /// drop_connection_for_test(), which simulates a vanished client and
  /// deliberately leaves the lease set intact.
  void disconnect();

  /// Answer to kShardInfo (shard identity, for the sharded client's
  /// dir-disjointness check). nullopt: daemon unreachable, or an older
  /// daemon answering kError ("feature absent" — the caller skips the
  /// check rather than failing the study).
  struct ShardInfo {
    std::uint64_t instance_id = 0;
    std::uint64_t dir_uid = 0;
    std::uint64_t boot_epoch = 0;
  };
  [[nodiscard]] std::optional<ShardInfo> shard_info();

  // ---- Fleet work queue (SUBMIT/FETCH/REPORT/QUEUE_STAT) ----
  // Thin RPC wrappers over the queue opcodes; the coordinator/worker loops
  // that drive them live in sched/fleet_client.h. All return nullopt when
  // the daemon is unreachable OR answers kError (an older daemon without
  // the queue opcodes — "feature absent", per the versioning rules).

  struct FleetSubmitAck {
    std::uint64_t enqueued = 0;
    std::uint64_t duplicates = 0;
    std::uint64_t already_done = 0;
  };
  [[nodiscard]] std::optional<FleetSubmitAck> fleet_submit(
      const std::vector<FleetWorkItem>& items);

  /// One FETCH. granted: `item` plus a heartbeat-renewed CacheClaim (the
  /// lease) and the raw lease_id for the later REPORT. Not granted: the
  /// queue-drain signal (outstanding == 0 with total > 0 means the wave is
  /// complete; outstanding > 0 means every pending key is momentarily
  /// held — sleep and re-fetch).
  struct FleetFetchResult {
    bool granted = false;
    FleetWorkItem item;                // when granted
    std::uint64_t lease_id = 0;        // when granted
    std::optional<CacheClaim> claim;   // when granted; releases on drop
    std::uint64_t outstanding = 0;     // when not granted
    std::uint64_t total = 0;           // when not granted
  };
  [[nodiscard]] std::optional<FleetFetchResult> fleet_fetch();

  struct FleetReportAck {
    std::uint64_t done = 0;
    std::uint64_t total = 0;
  };
  /// REPORT for a fetched item. nullopt also covers kGone (the lease
  /// expired or a PUT already settled the item) — benign either way, the
  /// daemon's queue state is the truth.
  std::optional<FleetReportAck> fleet_report(const CellKey& key,
                                             std::uint64_t lease_id,
                                             net::ReportOutcome outcome);

  [[nodiscard]] std::optional<FleetQueue::Stats> fleet_queue_stat();

  /// Test hook: drops the TCP connection without releasing anything —
  /// simulates a client that vanished (the daemon must release its leases
  /// on the disconnect). The next operation reconnects.
  void drop_connection_for_test();

  /// Test hook: how many TCP connect attempts this backend has made. The
  /// reconnect-backoff regression test asserts a down daemon costs one
  /// attempt per backoff window, not one per operation.
  [[nodiscard]] std::int64_t connect_attempts_for_test() const;

 private:
  friend struct RemoteClaimImpl;

  struct Rpc {
    net::Status status = net::Status::kError;
    std::string body;  // response body after the status byte
  };

  /// One request/response round-trip. nullopt = degraded (no connection,
  /// send/recv failure, kGoAway, or protocol violation — connection
  /// dropped). A kThrottled answer is retried internally (see
  /// RemoteCacheOptions::throttle_retries) before surfacing.
  std::optional<Rpc> rpc(net::Op op, std::string_view body);
  bool ensure_connected_locked();
  void drop_connection_locked();
  /// Records a kGoAway: drop the connection and arm a backoff window of
  /// at least the server's retry hint.
  void note_go_away_locked(std::uint32_t retry_after_ms);

  /// Best-effort RELEASE; deregisters the lease from the heartbeat set.
  void release_lease(const CellKey& key, std::uint64_t lease_id);
  void heartbeat_loop();
  [[nodiscard]] CacheClaim make_noop_claim();

  std::string url_;
  std::string host_;
  std::uint16_t port_ = 0;
  RemoteCacheOptions options_;

  mutable std::mutex io_mu_;  // socket + degraded state
  net::Socket sock_;
  std::chrono::steady_clock::time_point last_connect_attempt_{};
  bool ever_connected_ = false;
  std::int64_t connect_attempts_ = 0;
  /// Exponential reconnect schedule (guarded by io_mu_). current_window_ms_
  /// is the jittered wait armed by the LAST failure; 0 = no wait pending.
  net::Backoff reconnect_backoff_;
  std::int64_t current_window_ms_ = 0;
  net::Jitter throttle_jitter_;

  /// One held lease: its key plus the TTL the server actually granted
  /// (post-clamp) — heartbeats pace against the granted TTL, never the
  /// requested one, so a server with tighter bounds cannot silently let
  /// a live client's lease expire between heartbeats.
  struct HeldLease {
    CellKey key;
    std::uint32_t granted_ttl_ms = 0;
  };

  std::mutex lease_mu_;  // held leases, renewed by the heartbeat thread
  std::unordered_map<std::uint64_t, HeldLease> leases_;

  std::mutex hb_mu_;
  std::condition_variable hb_cv_;
  bool stopping_ = false;
  std::thread hb_thread_;

  mutable std::mutex stats_mu_;
  CacheStats stats_;
};

}  // namespace nnr::sched
