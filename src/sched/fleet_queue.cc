#include "sched/fleet_queue.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <system_error>
#include <utility>

#include "serialize/binary_io.h"
#include "serialize/checkpoint.h"

namespace nnr::sched {

namespace {

namespace fs = std::filesystem;

/// Snapshot format: magic | u32 format | u64 count | count x item | trailer.
/// Items persist as (key, study, cell, replicate, state, outcome, attempts);
/// kLeased is written as kPending — leases are volatile by design.
constexpr std::string_view kSnapshotMagic = "NNRQ";
constexpr std::uint32_t kSnapshotFormat = 1;

}  // namespace

FleetQueue::FleetQueue(std::string snapshot_path)
    : snapshot_path_(std::move(snapshot_path)) {}

void FleetQueue::load() {
  if (snapshot_path_.empty()) return;
  std::string bytes;
  {
    std::ifstream in(snapshot_path_, std::ios::binary);
    if (!in) return;  // no snapshot: fresh queue
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  std::unordered_map<CellKey, Item, CellKeyHash> items;
  std::vector<CellKey> pending;
  try {
    serialize::detail::BufReader r(bytes, kSnapshotMagic, snapshot_path_);
    if (r.get<std::uint32_t>() != kSnapshotFormat) return;
    const auto count = r.get<std::uint64_t>();
    for (std::uint64_t i = 0; i < count; ++i) {
      Item item;
      item.work.key.hi = r.get<std::uint64_t>();
      item.work.key.lo = r.get<std::uint64_t>();
      const auto study_len = r.get<std::uint32_t>();
      item.work.study.resize(study_len);
      if (study_len > 0) r.get_bytes(item.work.study.data(), study_len);
      item.work.cell = r.get<std::uint32_t>();
      item.work.replicate = r.get<std::uint32_t>();
      item.state = static_cast<ItemState>(r.get<std::uint8_t>());
      item.outcome = static_cast<Outcome>(r.get<std::uint8_t>());
      item.attempts = r.get<std::uint32_t>();
      // The previous daemon's leases died with it: a leased item reverts
      // to pending, the restart analogue of lease expiry.
      if (item.state == ItemState::kLeased) item.state = ItemState::kPending;
      if (item.state == ItemState::kPending) pending.push_back(item.work.key);
      items.emplace(item.work.key, std::move(item));
    }
  } catch (const serialize::CheckpointError&) {
    // Corrupt snapshot: discard. The coordinator resubmits; a lost queue
    // costs a round of submission, never a wedged daemon.
    std::fprintf(stderr,
                 "fleet_queue: discarding corrupt snapshot %s\n",
                 snapshot_path_.c_str());
    return;
  }
  items_ = std::move(items);
  pending_fifo_ = std::move(pending);
  fifo_head_ = 0;
}

void FleetQueue::persist() const {
  if (snapshot_path_.empty()) return;
  serialize::detail::BufWriter w(kSnapshotMagic);
  w.put(kSnapshotFormat);
  w.put(static_cast<std::uint64_t>(items_.size()));
  // Persist pending items in their FIFO order first, so a restored queue
  // hands out work in the order it was submitted; done items follow.
  const auto put_item = [&w](const Item& item) {
    w.put(item.work.key.hi);
    w.put(item.work.key.lo);
    w.put(static_cast<std::uint32_t>(item.work.study.size()));
    w.put_bytes(item.work.study.data(), item.work.study.size());
    w.put(item.work.cell);
    w.put(item.work.replicate);
    // A lease does not survive the daemon, so it is not worth a disk
    // write per FETCH: leased persists as pending.
    w.put(static_cast<std::uint8_t>(item.state == ItemState::kDone
                                        ? ItemState::kDone
                                        : ItemState::kPending));
    w.put(static_cast<std::uint8_t>(item.outcome));
    w.put(item.attempts);
  };
  std::unordered_map<CellKey, bool, CellKeyHash> written;
  for (std::size_t i = fifo_head_; i < pending_fifo_.size(); ++i) {
    const auto it = items_.find(pending_fifo_[i]);
    if (it == items_.end() || it->second.state == ItemState::kDone) continue;
    if (!written.emplace(it->first, true).second) continue;
    put_item(it->second);
  }
  for (const auto& [key, item] : items_) {
    if (written.count(key) != 0) continue;
    put_item(item);
  }
  const std::string payload = w.finish();
  const std::string tmp = snapshot_path_ + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return;  // persistence is best-effort
    out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
    out.flush();
    if (!out) {
      std::error_code ec;
      fs::remove(tmp, ec);
      return;
    }
  }
  std::error_code ec;
  fs::rename(tmp, snapshot_path_, ec);
  if (ec) fs::remove(tmp, ec);
}

void FleetQueue::push_pending(const CellKey& key) {
  pending_fifo_.push_back(key);
}

FleetQueue::SubmitStats FleetQueue::submit(
    const std::vector<FleetWorkItem>& items,
    const std::function<bool(const CellKey&)>& has_entry) {
  SubmitStats result;
  // A submit landing on a drained queue starts a fresh wave: clear the
  // previous wave's done items so [fleet] progress restarts at 0/N instead
  // of counting ghosts from last week's study.
  if (outstanding() == 0 && !items_.empty()) {
    items_.clear();
    pending_fifo_.clear();
    fifo_head_ = 0;
  }
  for (const FleetWorkItem& work : items) {
    if (items_.count(work.key) != 0) {
      ++result.duplicates;
      continue;
    }
    Item item;
    item.work = work;
    if (has_entry && has_entry(work.key)) {
      // The result already exists: the item is born done(served), so the
      // fleet's progress line counts it without any worker touching it.
      item.state = ItemState::kDone;
      item.outcome = Outcome::kServed;
      ++result.already_done;
    } else {
      item.state = ItemState::kPending;
      push_pending(work.key);
      ++result.enqueued;
    }
    items_.emplace(work.key, std::move(item));
  }
  if (result.enqueued > 0 || result.already_done > 0) persist();
  return result;
}

std::optional<FleetWorkItem> FleetQueue::fetch_next(
    const std::function<bool(const CellKey&)>& available) {
  // Pop lazily: entries whose item moved on since being pushed are
  // skipped; entries that are merely unavailable right now stay for the
  // next fetch.
  for (std::size_t i = fifo_head_; i < pending_fifo_.size(); ++i) {
    const CellKey key = pending_fifo_[i];
    const auto it = items_.find(key);
    if (it == items_.end() || it->second.state != ItemState::kPending) {
      if (i == fifo_head_) ++fifo_head_;
      continue;
    }
    if (available && !available(key)) continue;  // claim-held: try later
    it->second.state = ItemState::kLeased;
    if (i == fifo_head_) {
      ++fifo_head_;
    } else {
      // Mark consumed mid-FIFO; the stale-entry skip above reclaims it.
      pending_fifo_[i] = pending_fifo_[fifo_head_];
      ++fifo_head_;
    }
    // No persist(): leased round-trips to pending across a restart anyway.
    return it->second.work;
  }
  if (fifo_head_ == pending_fifo_.size() && fifo_head_ > 0) {
    pending_fifo_.clear();
    fifo_head_ = 0;
  }
  return std::nullopt;
}

void FleetQueue::release_to_pending(const CellKey& key) {
  const auto it = items_.find(key);
  if (it == items_.end() || it->second.state != ItemState::kLeased) return;
  it->second.state = ItemState::kPending;
  push_pending(key);
  // No persist(): on disk the item never left pending.
}

bool FleetQueue::report(const CellKey& key, Outcome outcome) {
  const auto it = items_.find(key);
  if (it == items_.end()) return false;
  Item& item = it->second;
  if (item.state == ItemState::kDone) return true;  // PUT already settled it
  if (outcome == Outcome::kFailed) {
    ++item.attempts;
    if (item.attempts < kMaxAttempts) {
      item.state = ItemState::kPending;
      push_pending(key);
    } else {
      item.state = ItemState::kDone;
      item.outcome = Outcome::kFailed;
    }
  } else {
    item.state = ItemState::kDone;
    item.outcome = outcome;
  }
  persist();
  return true;
}

void FleetQueue::on_stored(const CellKey& key) {
  const auto it = items_.find(key);
  if (it == items_.end() || it->second.state == ItemState::kDone) return;
  it->second.state = ItemState::kDone;
  it->second.outcome = Outcome::kTrained;
  persist();
}

FleetQueue::Stats FleetQueue::stats() const {
  Stats s;
  s.total = items_.size();
  for (const auto& [key, item] : items_) {
    switch (item.state) {
      case ItemState::kPending:
        ++s.pending;
        break;
      case ItemState::kLeased:
        ++s.leased;
        break;
      case ItemState::kDone:
        ++s.done;
        switch (item.outcome) {
          case Outcome::kTrained:
            ++s.trained;
            break;
          case Outcome::kServed:
            ++s.served;
            break;
          case Outcome::kFailed:
            ++s.failed;
            break;
        }
        break;
    }
  }
  return s;
}

std::uint64_t FleetQueue::outstanding() const {
  std::uint64_t n = 0;
  for (const auto& [key, item] : items_) {
    if (item.state != ItemState::kDone) ++n;
  }
  return n;
}

bool FleetQueue::is_leased(const CellKey& key) const {
  const auto it = items_.find(key);
  return it != items_.end() && it->second.state == ItemState::kLeased;
}

}  // namespace nnr::sched
