// Named-study registry: every figure/table grid of the paper reproduction,
// declared once as a StudyPlan factory and shared by the bench binaries and
// `nnr_run --study NAME`. A bench main() shrinks to "make_plan -> run ->
// format rows"; the CLI gets every study for free; and because plans are
// built from the same named tasks (core::task_registry) with the same
// environment knobs (NNR_REPLICATES/NNR_EPOCHS/NNR_QUICK/...), a cell shared
// by two studies — fig1 and table2 share most of their V100 cells — hashes
// to the same CellKey and trains exactly once per cache.
#pragma once

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "sched/study_plan.h"

namespace nnr::sched {

struct StudyDef {
  std::string id;           // e.g. "fig1", "table2"
  std::string description;  // one-line catalog entry
  std::function<StudyPlan()> make_plan;
};

/// All named studies in the paper's presentation order (figures, tables,
/// then ablations).
[[nodiscard]] const std::vector<StudyDef>& study_registry();

/// Lookup by id; nullptr when unknown.
[[nodiscard]] const StudyDef* find_study(std::string_view id);

}  // namespace nnr::sched
