#include "sched/cache_backend.h"

#include <cstdlib>
#include <stdexcept>

#include "core/env.h"
#include "sched/fs_cache_backend.h"
#include "sched/remote_cache_backend.h"
#include "sched/sharded_cache_backend.h"

namespace nnr::sched {

namespace {

std::string env_string(const char* name) {
  const char* value = std::getenv(name);
  return value != nullptr ? value : "";
}

RemoteCacheOptions remote_cache_options_from_env() {
  RemoteCacheOptions options;
  const std::int64_t ttl = core::env_int("NNR_CACHE_LEASE_MS", 0);
  if (ttl > 0) options.lease_ttl_ms = static_cast<std::uint32_t>(ttl);
  // Timeout/backoff knobs, primarily for chaos and CI runs where the
  // defaults (tuned for slow real daemons) would stretch every injected
  // fault into a multi-second stall. Documented in docs/nnr_run.md.
  const std::int64_t io_ms = core::env_int("NNR_CACHE_IO_TIMEOUT_MS", 0);
  if (io_ms > 0) options.io_timeout_ms = static_cast<int>(io_ms);
  const std::int64_t connect_ms =
      core::env_int("NNR_CACHE_CONNECT_TIMEOUT_MS", 0);
  if (connect_ms > 0) options.connect_timeout_ms = static_cast<int>(connect_ms);
  const std::int64_t backoff_ms = core::env_int("NNR_CACHE_BACKOFF_MS", 0);
  if (backoff_ms > 0) options.reconnect_backoff_ms = static_cast<int>(backoff_ms);
  const std::int64_t backoff_max_ms =
      core::env_int("NNR_CACHE_BACKOFF_MAX_MS", 0);
  if (backoff_max_ms > 0) {
    options.reconnect_backoff_max_ms = static_cast<int>(backoff_max_ms);
  }
  return options;
}

}  // namespace

CacheConfig cache_config_from_env() {
  CacheConfig config;
  config.dir = env_string("NNR_CACHE_DIR");
  config.url = env_string("NNR_CACHE_URL");
  config.budget = core::env_int("NNR_CACHE_BUDGET", 0);
  return config;
}

std::unique_ptr<RemoteCacheBackend> make_remote_cache_backend(
    const std::string& url) {
  return std::make_unique<RemoteCacheBackend>(url,
                                              remote_cache_options_from_env());
}

std::unique_ptr<ShardedCacheBackend> make_sharded_cache_backend(
    const std::vector<std::string>& urls) {
  ShardedCacheOptions options;
  options.remote = remote_cache_options_from_env();
  // The probe schedule for a down shard reuses the reconnect knobs: both
  // answer "how eagerly may a client pester a daemon that just vanished".
  options.probe_backoff_ms = options.remote.reconnect_backoff_ms;
  options.probe_backoff_max_ms = options.remote.reconnect_backoff_max_ms;
  return std::make_unique<ShardedCacheBackend>(urls, options);
}

std::unique_ptr<CacheBackend> make_cache_backend(const CacheConfig& config) {
  if (!config.url.empty()) {
    const std::vector<std::string> urls = split_cache_urls(config.url);
    if (urls.empty()) {
      throw std::invalid_argument("cache url list '" + config.url +
                                  "' contains no urls");
    }
    if (urls.size() > 1) return make_sharded_cache_backend(urls);
    return make_remote_cache_backend(urls[0]);
  }
  if (!config.dir.empty()) {
    return std::make_unique<FsCacheBackend>(config.dir, config.budget);
  }
  return nullptr;
}

}  // namespace nnr::sched
