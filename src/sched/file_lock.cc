#include "sched/file_lock.h"

#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <utility>

namespace nnr::sched {

std::optional<FileLock> FileLock::acquire_impl(const std::string& path,
                                               bool blocking) {
  for (;;) {
    const int fd =
        ::open(path.c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0644);
    if (fd < 0) return std::nullopt;
    const int op = LOCK_EX | (blocking ? 0 : LOCK_NB);
    if (::flock(fd, op) != 0) {
      ::close(fd);
      return std::nullopt;  // held elsewhere (non-blocking) or I/O failure
    }
    // The file may have been unlinked (or unlinked + re-created) between
    // open and flock — then this lock guards a dead inode no other
    // claimant can see. Verify identity and retry on mismatch.
    struct stat by_fd{};
    struct stat by_path{};
    if (::fstat(fd, &by_fd) == 0 && ::stat(path.c_str(), &by_path) == 0 &&
        by_fd.st_dev == by_path.st_dev && by_fd.st_ino == by_path.st_ino) {
      // Record the holder pid for `ls`-level debugging of a busy cache.
      (void)::ftruncate(fd, 0);
      const std::string pid = std::to_string(::getpid()) + "\n";
      (void)!::write(fd, pid.data(), pid.size());
      return FileLock(fd, path);
    }
    ::close(fd);
  }
}

std::optional<FileLock> FileLock::try_acquire(const std::string& path) {
  return acquire_impl(path, /*blocking=*/false);
}

std::optional<FileLock> FileLock::acquire(const std::string& path) {
  return acquire_impl(path, /*blocking=*/true);
}

void FileLock::unlink_and_release() {
  if (fd_ < 0) return;
  ::unlink(path_.c_str());
  ::close(fd_);
  fd_ = -1;
}

FileLock::~FileLock() {
  if (fd_ >= 0) ::close(fd_);
}

FileLock::FileLock(FileLock&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), path_(std::move(other.path_)) {}

FileLock& FileLock::operator=(FileLock&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    path_ = std::move(other.path_);
  }
  return *this;
}

}  // namespace nnr::sched
