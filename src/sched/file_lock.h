// Cross-process advisory file locks for the replicate cache.
//
// flock(2) rather than O_EXCL claim files: the kernel releases the lock
// when the holder exits or is killed, so there are no stale claims to
// reclaim after a crashed study — a killed `nnr_run --study` leaves its
// lockfiles unheld and a resumed run claims them straight away. Within one
// process, two acquisitions use two open file descriptions and therefore
// DO conflict, so the same primitive also serializes pool workers — and
// lets the nnr_cached daemon (sched/cache_server.h) hold one flock per
// granted lease, making remote claims visible to local FsCacheBackend
// users of the same directory.
//
// Removing a lockfile while others may be claiming it is the classic
// unlink race (a new claimant can flock a fresh inode at the same path
// while the old holder still believes it owns "the" lock). Acquisition
// therefore verifies after flock that the locked inode is still the inode
// at the path, retrying otherwise; `unlink_and_release` removes the file
// while the lock is held. Together these make GC of leftover lockfiles
// safe to run concurrently with live studies.
#pragma once

#include <optional>
#include <string>

namespace nnr::sched {

class FileLock {
 public:
  /// Exclusive non-blocking acquisition; nullopt when another holder
  /// (process or thread) has the lock, or on I/O failure.
  [[nodiscard]] static std::optional<FileLock> try_acquire(
      const std::string& path);

  /// Exclusive blocking acquisition; nullopt only on I/O failure (the
  /// wait itself never fails).
  [[nodiscard]] static std::optional<FileLock> acquire(
      const std::string& path);

  /// Removes the lockfile and releases the lock. Safe against concurrent
  /// claimants: they detect the unlinked inode and re-create the file.
  void unlink_and_release();

  ~FileLock();
  FileLock(FileLock&& other) noexcept;
  FileLock& operator=(FileLock&& other) noexcept;
  FileLock(const FileLock&) = delete;
  FileLock& operator=(const FileLock&) = delete;

  [[nodiscard]] bool held() const noexcept { return fd_ >= 0; }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  FileLock(int fd, std::string path) : fd_(fd), path_(std::move(path)) {}
  static std::optional<FileLock> acquire_impl(const std::string& path,
                                              bool blocking);

  int fd_ = -1;
  std::string path_;
};

}  // namespace nnr::sched
