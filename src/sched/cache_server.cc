#include "sched/cache_server.h"

#include <errno.h>
#include <fcntl.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <random>
#include <system_error>
#include <thread>
#include <vector>

#include "net/cache_protocol.h"
#include "net/fault_injector.h"
#include "net/frame.h"
#include "serialize/run_result.h"

namespace nnr::sched {

namespace {

using net::BodyReader;
using net::BodyWriter;
using net::Op;
using net::Status;

constexpr std::size_t kReadChunk = 64 * 1024;

std::string status_only(Status status) {
  BodyWriter w;
  w.put(static_cast<std::uint8_t>(status));
  return w.take();
}

CellKey read_key(BodyReader& r) {
  CellKey key;
  key.hi = r.get<std::uint64_t>();
  key.lo = r.get<std::uint64_t>();
  return key;
}

std::uint64_t random_identity() {
  std::random_device rd;
  std::uint64_t v = (static_cast<std::uint64_t>(rd()) << 32) ^ rd();
  if (v == 0) v = 1;  // 0 is the "unset" sentinel
  return v;
}

}  // namespace

CacheServer::CacheServer(CacheServerConfig config)
    : config_(std::move(config)),
      backend_(config_.dir, config_.budget),
      queue_(config_.dir.empty()
                 ? std::string()
                 : (std::filesystem::path(config_.dir) / "fleet_queue.nnrq")
                       .string()) {}

CacheServer::~CacheServer() {
  conns_.clear();   // Socket destructors close the fds
  leases_.clear();  // FileLock destructors drop the flocks
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (wake_read_fd_ >= 0) ::close(wake_read_fd_);
  if (wake_write_fd_ >= 0) ::close(wake_write_fd_);
}

bool CacheServer::start() {
  if (config_.dir.empty()) return false;
  // Resolve NNR_FAULT_SPEC now rather than lazily at the first I/O call:
  // the "[fault] injector armed" line must precede "listening on" so chaos
  // scripts can verify the daemon is actually under the storm they think
  // it is.
  (void)net::FaultInjector::active();
  // The daemon owns the directory: make sure it exists up front, because
  // lease grants take the key's flock directly (an unreachable lockfile
  // would read as "busy" and starve every claim).
  std::error_code ec;
  std::filesystem::create_directories(config_.dir, ec);
  if (ec) return false;
  // Restore the fleet queue a previous daemon left behind: pending cells
  // survive a restart, in-flight leases revert to pending.
  queue_.load();
  load_or_create_shard_identity();
  if (!listener_.listen_on(config_.bind_addr, config_.port)) return false;
  port_ = listener_.port();
  int pipe_fds[2];
  if (::pipe2(pipe_fds, O_CLOEXEC | O_NONBLOCK) != 0) return false;
  wake_read_fd_ = pipe_fds[0];
  wake_write_fd_ = pipe_fds[1];
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) return false;
  struct epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listener_.fd();
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listener_.fd(), &ev) != 0) {
    return false;
  }
  ev.data.fd = wake_read_fd_;
  return ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_read_fd_, &ev) == 0;
}

void CacheServer::load_or_create_shard_identity() {
  instance_id_ = random_identity();
  const std::filesystem::path path =
      std::filesystem::path(config_.dir) / "shard_id.nnr";
  std::uint64_t uid = 0;
  std::uint64_t epoch = 0;
  {
    std::ifstream in(path);
    std::string tag;
    if (in >> tag >> uid && tag == "uid" && in >> tag >> epoch &&
        tag == "epoch" && uid != 0) {
      // parsed an existing identity
    } else {
      uid = 0;  // absent or unparseable: mint a fresh identity below
    }
  }
  if (uid == 0) {
    uid = random_identity();
    epoch = 0;
  }
  dir_uid_ = uid;
  boot_epoch_ = epoch + 1;
  std::ofstream out(path, std::ios::trunc);
  out << "uid " << dir_uid_ << "\nepoch " << boot_epoch_ << "\n";
}

void CacheServer::stop() noexcept {
  if (wake_write_fd_ >= 0) {
    const char byte = 'q';
    // Async-signal-safe: one write(2), nothing else.
    (void)!::write(wake_write_fd_, &byte, 1);
  }
}

void CacheServer::run() {
  std::vector<struct epoll_event> events(64);
  while (!stop_requested_) {
    // Wake at the earliest lease expiry so a dead client's key frees
    // within its TTL even on an otherwise idle server.
    int timeout_ms = 250;
    if (!leases_.empty()) {
      const auto now = std::chrono::steady_clock::now();
      auto earliest = std::chrono::steady_clock::time_point::max();
      for (const auto& [hex, lease] : leases_) {
        earliest = std::min(earliest, lease.expiry);
      }
      const auto until = std::chrono::duration_cast<std::chrono::milliseconds>(
                             earliest - now)
                             .count();
      timeout_ms = static_cast<int>(std::clamp<long long>(until, 0, 250));
    }
    const int n = ::epoll_wait(epoll_fd_, events.data(),
                               static_cast<int>(events.size()), timeout_ms);
    expire_leases();
    evict_idle_conns();
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      const std::uint32_t mask = events[i].events;
      if (fd == wake_read_fd_) {
        char drain[16];
        while (::read(wake_read_fd_, drain, sizeof(drain)) > 0) {
        }
        stop_requested_ = true;
        continue;
      }
      if (fd == listener_.fd()) {
        accept_new_conns();
        continue;
      }
      const auto it = conns_.find(fd);
      if (it == conns_.end()) continue;
      Conn& conn = *it->second;
      bool alive = true;
      if ((mask & (EPOLLHUP | EPOLLERR)) != 0) alive = false;
      if (alive && (mask & EPOLLIN) != 0) alive = service_readable(conn);
      if (alive && (mask & EPOLLOUT) != 0) alive = flush_writable(conn);
      if (alive) {
        update_epoll_interest(conn);
      } else {
        close_conn(fd);
      }
    }
  }
  drain_and_shutdown();
}

void CacheServer::accept_new_conns() {
  for (;;) {
    net::Socket sock = listener_.accept_conn();
    if (!sock.valid()) return;
    if (config_.max_conns > 0 && conns_.size() >= config_.max_conns) {
      // Over capacity: one best-effort kGoAway (the socket is still
      // blocking and the frame is ~20 bytes, so this cannot wedge the
      // loop), then the Socket destructor closes the connection.
      rejected_busy_.fetch_add(1, std::memory_order_relaxed);
      BodyWriter w;
      w.put(static_cast<std::uint8_t>(Status::kBusy));
      w.put(config_.busy_retry_ms);
      const std::string frame =
          net::encode_frame(static_cast<std::uint8_t>(Op::kGoAway), w.take());
      (void)::send(sock.fd(), frame.data(), frame.size(), MSG_NOSIGNAL);
      continue;
    }
    (void)sock.set_nonblocking();
    auto conn = std::make_unique<Conn>();
    conn->id = next_conn_id_++;
    conn->sock = std::move(sock);
    const auto now = std::chrono::steady_clock::now();
    conn->last_activity = now;
    conn->last_refill = now;
    conn->tokens =
        config_.burst > 0 ? config_.burst : std::max(8.0, 2 * config_.max_rps);
    const int fd = conn->sock.fd();
    struct epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) continue;
    conns_.emplace(fd, std::move(conn));
  }
}

bool CacheServer::take_token(Conn& conn, std::uint32_t* retry_after_ms) {
  if (config_.max_rps <= 0) return true;
  const double cap =
      config_.burst > 0 ? config_.burst : std::max(8.0, 2 * config_.max_rps);
  const auto now = std::chrono::steady_clock::now();
  const double dt =
      std::chrono::duration<double>(now - conn.last_refill).count();
  conn.last_refill = now;
  conn.tokens = std::min(cap, conn.tokens + dt * config_.max_rps);
  if (conn.tokens >= 1.0) {
    conn.tokens -= 1.0;
    return true;
  }
  const double wait_s = (1.0 - conn.tokens) / config_.max_rps;
  *retry_after_ms = static_cast<std::uint32_t>(
      std::clamp(std::ceil(wait_s * 1000.0), 1.0, 60'000.0));
  return false;
}

void CacheServer::evict_idle_conns() {
  if (config_.idle_timeout_ms <= 0 || conns_.empty()) return;
  const auto deadline = std::chrono::steady_clock::now() -
                        std::chrono::milliseconds(config_.idle_timeout_ms);
  std::vector<int> idle;
  for (const auto& [fd, conn] : conns_) {
    if (conn->last_activity < deadline) idle.push_back(fd);
  }
  for (const int fd : idle) {
    idle_evicted_.fetch_add(1, std::memory_order_relaxed);
    close_conn(fd);
  }
}

bool CacheServer::service_readable(Conn& conn) {
  char chunk[kReadChunk];
  for (;;) {
    // recv_avail rather than raw recv(2): the fault-injection seam lives
    // in Socket, and the chaos suites must be able to disturb the
    // server's reads exactly like the client's.
    const std::ptrdiff_t n = conn.sock.recv_avail(chunk, sizeof(chunk));
    if (n > 0) {
      conn.in.append(chunk, static_cast<std::size_t>(n));
      conn.last_activity = std::chrono::steady_clock::now();
      continue;
    }
    if (n == -1) break;    // would block: buffer drained
    return false;          // peer closed (0) or error/reset (-2)
  }
  // Parse every complete frame in the buffer.
  std::size_t off = 0;
  while (conn.in.size() - off >= sizeof(std::uint32_t)) {
    std::uint32_t len = 0;
    std::memcpy(&len, conn.in.data() + off, sizeof(len));
    if (len < net::kFrameMagic.size() + 2 + sizeof(std::uint64_t) ||
        len > net::kMaxFrameBytes) {
      return false;  // garbage length: drop the connection
    }
    if (conn.in.size() - off - sizeof(len) < len) break;  // incomplete
    try {
      const net::Frame frame = net::decode_frame(
          std::string_view(conn.in.data() + off + sizeof(len), len));
      std::uint32_t retry_after_ms = 0;
      if (take_token(conn, &retry_after_ms)) {
        handle_frame(conn, frame.opcode, frame.body);
      } else {
        // Over rate: answer instead of serve. The request is well-formed,
        // so the connection survives — only the work is refused.
        throttled_.fetch_add(1, std::memory_order_relaxed);
        BodyWriter w;
        w.put(static_cast<std::uint8_t>(Status::kThrottled));
        w.put(retry_after_ms);
        conn.out += net::encode_frame(frame.opcode, w.take());
      }
    } catch (const serialize::CheckpointError&) {
      return false;  // malformed payload: protocol violation
    } catch (const net::ProtocolError&) {
      return false;  // truncated body fields
    }
    off += sizeof(len) + len;
  }
  if (off > 0) conn.in.erase(0, off);
  return flush_writable(conn);
}

bool CacheServer::flush_writable(Conn& conn) {
  while (!conn.out.empty()) {
    const std::ptrdiff_t n =
        conn.sock.send_avail(conn.out.data(), conn.out.size());
    if (n > 0) {
      conn.out.erase(0, static_cast<std::size_t>(n));
      continue;
    }
    if (n == -1) break;  // would block: epoll re-arms EPOLLOUT
    return false;
  }
  return true;
}

void CacheServer::update_epoll_interest(Conn& conn) {
  struct epoll_event ev{};
  ev.events = EPOLLIN | (conn.out.empty() ? 0u : EPOLLOUT);
  ev.data.fd = conn.sock.fd();
  (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.sock.fd(), &ev);
}

void CacheServer::close_conn(int fd) {
  const auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  const std::uint64_t conn_id = it->second->id;
  (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  conns_.erase(it);  // Socket destructor closes the fd
  // The remote analogue of flock's release-on-death: a closed connection
  // (clean exit and SIGKILL both end in FIN) frees every key it claimed.
  release_conn_leases(conn_id);
}

std::unordered_map<std::string, CacheServer::Lease>::iterator
CacheServer::drop_lease(
    std::unordered_map<std::string, Lease>::iterator it) {
  // A queue lease dying unreported sends its item back to pending (a
  // no-op when a PUT or REPORT already marked the item done).
  if (it->second.from_queue) queue_.release_to_pending(it->second.key);
  return leases_.erase(it);  // FileLock destructor drops the flock
}

void CacheServer::release_conn_leases(std::uint64_t conn_id) {
  for (auto it = leases_.begin(); it != leases_.end();) {
    if (it->second.conn_id == conn_id) {
      it = drop_lease(it);
    } else {
      ++it;
    }
  }
}

void CacheServer::drain_and_shutdown() {
  draining_ = true;
  // 0. One final read pass: a request that raced the shutdown (bytes
  //    already in a kernel buffer, or a connection accepted in the same
  //    epoll batch as the stop wakeup) is answered rather than silently
  //    dropped. With draining_ set, a kSubmit read here gets kBusy + retry
  //    hint instead of landing in the queue being closed.
  {
    std::vector<int> dead;
    for (auto& [fd, conn] : conns_) {
      if (!service_readable(*conn)) dead.push_back(fd);
    }
    for (const int fd : dead) close_conn(fd);
  }
  // 1. Flush responses already queued (a worker mid-RPC should get its
  //    answer, not a cut wire) — bounded, because a stalled peer must not
  //    be able to hold SIGTERM hostage.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(
                            std::max<std::int64_t>(config_.drain_timeout_ms, 0));
  for (;;) {
    bool pending = false;
    std::vector<int> dead;
    for (auto& [fd, conn] : conns_) {
      if (conn->out.empty()) continue;
      if (!flush_writable(*conn)) {
        dead.push_back(fd);
      } else if (!conn->out.empty()) {
        pending = true;
      }
    }
    for (const int fd : dead) close_conn(fd);
    if (!pending || std::chrono::steady_clock::now() >= deadline) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  // 2. Release every lease. Queue leases requeue their items (already
  //    recorded as pending on disk — leases are volatile by design), and
  //    the flocks drop so local fs clients unblock immediately.
  while (!leases_.empty()) drop_lease(leases_.begin());
  // 3. Belt-and-braces snapshot: the queue persists on every durable
  //    transition anyway, but shutting down is the one moment it is worth
  //    an unconditional fsync-cheap rewrite.
  queue_.save();
  const std::size_t drained = conns_.size();
  conns_.clear();
  std::fprintf(stderr,
               "[nnr_cached] graceful stop: flushed %zu connection(s), "
               "leases released, queue persisted\n",
               drained);
}

void CacheServer::expire_leases() {
  const auto now = std::chrono::steady_clock::now();
  for (auto it = leases_.begin(); it != leases_.end();) {
    if (it->second.expiry <= now) {
      ++expired_leases_;
      it = drop_lease(it);
    } else {
      ++it;
    }
  }
}

void CacheServer::handle_frame(Conn& conn, std::uint8_t opcode,
                               const std::string& body) {
  BodyReader r(body);
  std::string resp;
  switch (static_cast<Op>(opcode)) {
    case Op::kPing: {
      BodyWriter w;
      w.put(static_cast<std::uint8_t>(Status::kOk));
      w.put(net::kWireVersion);
      resp = w.take();
      break;
    }
    case Op::kGet: {
      const CellKey key = read_key(r);
      auto bytes = backend_.load_bytes(key);
      // An entry too large for one frame (possible only if it was written
      // by a local fs client — remote PUTs are size-checked) is served as
      // a miss: the requester retrains, nobody's connection drops.
      if (bytes.has_value() &&
          bytes->size() > net::kMaxFrameBytes - 64) {
        bytes.reset();
      }
      if (bytes.has_value()) {
        BodyWriter w;
        w.put(static_cast<std::uint8_t>(Status::kFound));
        w.put(static_cast<std::uint64_t>(bytes->size()));
        w.put_bytes(*bytes);
        resp = w.take();
      } else {
        resp = status_only(Status::kMiss);
      }
      break;
    }
    case Op::kPut: {
      const CellKey key = read_key(r);
      const auto n = r.get<std::uint64_t>();
      const std::string_view bytes = r.get_bytes(static_cast<std::size_t>(n));
      // Refuse anything that is not a checksum-valid entry for this exact
      // key — a poisoned store would otherwise be served to peers as
      // truth until one of them decodes it.
      if (!serialize::validate_run_result_bytes(bytes, key.hi, key.lo) ||
          !backend_.store_bytes(key, bytes)) {
        resp = status_only(Status::kError);
      } else {
        // The store IS the proof of work: if the fleet queue tracks this
        // key, its item is done(trained) here and now — a worker killed
        // between PUT and REPORT still counts exactly once.
        queue_.on_stored(key);
        resp = status_only(Status::kOk);
      }
      break;
    }
    case Op::kTryClaim: {
      const CellKey key = read_key(r);
      std::uint32_t ttl_ms = r.get<std::uint32_t>();
      if (ttl_ms == 0) ttl_ms = config_.default_ttl_ms;
      ttl_ms = std::clamp(ttl_ms, config_.min_ttl_ms, config_.max_ttl_ms);
      const std::string hex = key.hex();
      expire_leases();
      if (leases_.count(hex) != 0) {
        resp = status_only(Status::kBusy);
        break;
      }
      // Take the key's flock too, so local fs clients sharing this dir
      // observe the claim and eviction skips the in-flight entry.
      auto lock = FileLock::try_acquire(backend_.lock_path_for(key));
      if (!lock.has_value()) {
        resp = status_only(Status::kBusy);  // a local process holds it
        break;
      }
      Lease lease;
      lease.lease_id = next_lease_id_++;
      lease.conn_id = conn.id;
      lease.ttl_ms = ttl_ms;
      lease.expiry = std::chrono::steady_clock::now() +
                     std::chrono::milliseconds(ttl_ms);
      lease.lock.emplace(std::move(*lock));
      BodyWriter w;
      w.put(static_cast<std::uint8_t>(Status::kGranted));
      w.put(lease.lease_id);
      // The TTL actually armed (post-clamp): the client paces its
      // heartbeats against this, never against what it asked for.
      w.put(ttl_ms);
      resp = w.take();
      leases_.emplace(hex, std::move(lease));
      break;
    }
    case Op::kRelease: {
      const CellKey key = read_key(r);
      const auto lease_id = r.get<std::uint64_t>();
      const auto it = leases_.find(key.hex());
      if (it != leases_.end() && it->second.lease_id == lease_id) {
        drop_lease(it);
        resp = status_only(Status::kOk);
      } else {
        resp = status_only(Status::kGone);  // expired or never ours
      }
      break;
    }
    case Op::kHeartbeat: {
      const CellKey key = read_key(r);
      const auto lease_id = r.get<std::uint64_t>();
      const auto it = leases_.find(key.hex());
      if (it != leases_.end() && it->second.lease_id == lease_id) {
        it->second.expiry = std::chrono::steady_clock::now() +
                            std::chrono::milliseconds(it->second.ttl_ms);
        resp = status_only(Status::kOk);
      } else {
        resp = status_only(Status::kGone);
      }
      break;
    }
    case Op::kStat: {
      expire_leases();
      const FsCacheBackend::Usage usage = backend_.usage();
      const CacheStats stats = backend_.stats();
      BodyWriter w;
      w.put(static_cast<std::uint8_t>(Status::kOk));
      w.put(static_cast<std::uint64_t>(usage.entries));
      w.put(static_cast<std::uint64_t>(usage.bytes));
      w.put(static_cast<std::uint64_t>(stats.hits));
      w.put(static_cast<std::uint64_t>(stats.misses));
      w.put(static_cast<std::uint64_t>(stats.stores));
      w.put(static_cast<std::uint64_t>(leases_.size()));
      w.put(static_cast<std::uint64_t>(expired_leases_));
      resp = w.take();
      break;
    }
    case Op::kGc: {
      expire_leases();
      const GcStats gc = backend_.gc();
      BodyWriter w;
      w.put(static_cast<std::uint8_t>(Status::kOk));
      w.put(gc.removed_tmp);
      w.put(gc.removed_locks);
      w.put(gc.evicted);
      w.put(gc.evicted_bytes);
      w.put(gc.entries);
      w.put(gc.bytes);
      resp = w.take();
      break;
    }
    case Op::kSubmit: {
      if (draining_) {
        // The queue is about to be persisted-and-closed: accepting new
        // items now would strand them in a snapshot nobody re-reads until
        // restart, with the submitter believing they were accepted live.
        // Refuse with a retry hint — the resubmit lands on the restarted
        // daemon.
        BodyWriter w;
        w.put(static_cast<std::uint8_t>(Status::kBusy));
        w.put(config_.busy_retry_ms);
        resp = w.take();
        break;
      }
      const auto count = r.get<std::uint32_t>();
      std::vector<FleetWorkItem> items;
      // No blind reserve(count): the count is client-supplied; truncated
      // bodies throw ProtocolError mid-loop and cost the connection.
      for (std::uint32_t i = 0; i < count; ++i) {
        FleetWorkItem item;
        item.key = read_key(r);
        const auto study_len = r.get<std::uint32_t>();
        item.study = std::string(r.get_bytes(study_len));
        item.cell = r.get<std::uint32_t>();
        item.replicate = r.get<std::uint32_t>();
        items.push_back(std::move(item));
      }
      const FleetQueue::SubmitStats stats = queue_.submit(
          items, [this](const CellKey& key) { return backend_.has_entry(key); });
      BodyWriter w;
      w.put(static_cast<std::uint8_t>(Status::kOk));
      w.put(stats.enqueued);
      w.put(stats.duplicates);
      w.put(stats.already_done);
      resp = w.take();
      break;
    }
    case Op::kFetch: {
      std::uint32_t ttl_ms = r.get<std::uint32_t>();
      if (ttl_ms == 0) ttl_ms = config_.default_ttl_ms;
      ttl_ms = std::clamp(ttl_ms, config_.min_ttl_ms, config_.max_ttl_ms);
      expire_leases();
      // A pending key is available when nothing holds it: no lease in the
      // table and the flock is free (a local fs client could be training
      // it directly against the shared directory).
      std::optional<FileLock> lock;
      const auto item = queue_.fetch_next([&](const CellKey& key) {
        if (leases_.count(key.hex()) != 0) return false;
        lock = FileLock::try_acquire(backend_.lock_path_for(key));
        return lock.has_value();
      });
      if (!item.has_value()) {
        const FleetQueue::Stats qs = queue_.stats();
        BodyWriter w;
        w.put(static_cast<std::uint8_t>(Status::kMiss));
        w.put(static_cast<std::uint64_t>(qs.pending + qs.leased));
        w.put(qs.total);
        resp = w.take();
        break;
      }
      Lease lease;
      lease.lease_id = next_lease_id_++;
      lease.conn_id = conn.id;
      lease.ttl_ms = ttl_ms;
      lease.expiry = std::chrono::steady_clock::now() +
                     std::chrono::milliseconds(ttl_ms);
      lease.lock.emplace(std::move(*lock));
      lease.from_queue = true;
      lease.key = item->key;
      BodyWriter w;
      w.put(static_cast<std::uint8_t>(Status::kGranted));
      w.put(lease.lease_id);
      w.put(ttl_ms);
      w.put(item->key.hi);
      w.put(item->key.lo);
      w.put(static_cast<std::uint32_t>(item->study.size()));
      w.put_bytes(item->study);
      w.put(item->cell);
      w.put(item->replicate);
      resp = w.take();
      leases_.emplace(item->key.hex(), std::move(lease));
      break;
    }
    case Op::kReport: {
      const CellKey key = read_key(r);
      const auto lease_id = r.get<std::uint64_t>();
      const auto outcome_raw = r.get<std::uint8_t>();
      if (outcome_raw >
          static_cast<std::uint8_t>(net::ReportOutcome::kFailed)) {
        resp = status_only(Status::kError);
        break;
      }
      const auto it = leases_.find(key.hex());
      if (it == leases_.end() || it->second.lease_id != lease_id ||
          !it->second.from_queue) {
        // Unknown lease (expired, requeued, or never granted): nothing
        // changes — the queue's own state is the truth.
        resp = status_only(Status::kGone);
        break;
      }
      (void)queue_.report(key,
                          static_cast<FleetQueue::Outcome>(outcome_raw));
      // The item is settled (done or requeued-by-failure): the lease has
      // served its purpose. Erase directly — drop_lease would requeue,
      // but report() already decided the item's fate.
      leases_.erase(it);
      const FleetQueue::Stats qs = queue_.stats();
      BodyWriter w;
      w.put(static_cast<std::uint8_t>(Status::kOk));
      w.put(qs.done);
      w.put(qs.total);
      resp = w.take();
      break;
    }
    case Op::kShardInfo: {
      BodyWriter w;
      w.put(static_cast<std::uint8_t>(Status::kOk));
      w.put(instance_id_);
      w.put(dir_uid_);
      w.put(boot_epoch_);
      resp = w.take();
      break;
    }
    case Op::kQueueStat: {
      expire_leases();
      const FleetQueue::Stats qs = queue_.stats();
      BodyWriter w;
      w.put(static_cast<std::uint8_t>(Status::kOk));
      w.put(qs.total);
      w.put(qs.pending);
      w.put(qs.leased);
      w.put(qs.done);
      w.put(qs.trained);
      w.put(qs.served);
      w.put(qs.failed);
      resp = w.take();
      break;
    }
    default:
      // Unknown opcode within a valid frame: answer kError (forward
      // compatibility hook — an old server talking to a newer client).
      resp = status_only(Status::kError);
      break;
  }
  conn.out += net::encode_frame(opcode, resp);
}

}  // namespace nnr::sched
