// Persistent, content-addressed replicate cache.
//
// Stores one serialized core::RunResult per CellKey under a cache directory
// (NNR_CACHE_DIR), so a cell that appears in several studies — fig1 and
// table2 share most of their V100 cells — trains once and is then served
// from disk everywhere, bit for bit. The bit-exactness contract makes this
// safe: a key collision-free lookup returns exactly the bytes training would
// have produced (enforced by tests/sched/scheduler_test.cc).
//
// Failure policy: the cache is an accelerator, never a correctness
// dependency. A corrupted, truncated, or mismatched entry is counted and
// treated as a miss (the scheduler recomputes); a failed store is dropped
// silently. Loads/stores are thread-safe — the scheduler calls them from
// pool workers.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>

#include "core/trainer.h"
#include "sched/cell_key.h"

namespace nnr::sched {

/// Cache activity counters (bytes are serialized file sizes).
struct CacheStats {
  std::int64_t hits = 0;
  std::int64_t misses = 0;   // absent entries (corrupt ones count both)
  std::int64_t corrupt = 0;  // present but unreadable -> recomputed
  std::int64_t stores = 0;
  std::int64_t bytes_read = 0;
  std::int64_t bytes_written = 0;
};

class ReplicateCache {
 public:
  /// Cache rooted at `dir`; an empty dir disables the cache (every load
  /// misses without touching the stats, every store is a no-op).
  explicit ReplicateCache(std::string dir);

  /// Cache configured from the NNR_CACHE_DIR environment variable.
  [[nodiscard]] static ReplicateCache from_env();

  [[nodiscard]] bool enabled() const noexcept { return !dir_.empty(); }
  [[nodiscard]] const std::string& dir() const noexcept { return dir_; }

  /// The result stored under `key`, or nullopt (miss). Corruption of any
  /// kind is a miss, never an exception.
  [[nodiscard]] std::optional<core::RunResult> load(const CellKey& key);

  /// Persists `result` under `key` (atomic: temp file + rename). Returns
  /// false when disabled or on I/O failure.
  bool store(const CellKey& key, const core::RunResult& result);

  /// Snapshot of the counters since construction.
  [[nodiscard]] CacheStats stats() const;

  /// Cache file path for `key` (exposed for tests and tooling).
  [[nodiscard]] std::string path_for(const CellKey& key) const;

 private:
  std::string dir_;
  mutable std::mutex mu_;
  CacheStats stats_;
};

}  // namespace nnr::sched
