// Persistent, content-addressed replicate cache.
//
// Stores one serialized core::RunResult per CellKey under a cache directory
// (NNR_CACHE_DIR), so a cell that appears in several studies — fig1 and
// table2 share most of their V100 cells — trains once and is then served
// from disk everywhere, bit for bit. The bit-exactness contract makes this
// safe: a key collision-free lookup returns exactly the bytes training would
// have produced (enforced by tests/sched/scheduler_test.cc).
//
// Failure policy: the cache is an accelerator, never a correctness
// dependency. A corrupted, truncated, or mismatched entry is counted and
// treated as a miss (the scheduler recomputes); a failed store is dropped
// silently. Loads/stores are thread-safe — the scheduler calls them from
// pool workers.
//
// Cross-process coordination: every key has an advisory lockfile
// (`<hex>.lock`, flock-based — sched/file_lock.h). The scheduler claims a
// key before training it, so N concurrent processes sharing one cache dir
// partition the grid instead of duplicating work; a killed process's claims
// are released by the kernel, so resumed studies never wait on a stale
// lock. A cache-wide lock (`gc.lock`) serializes eviction, GC, journal
// compaction, and the one-time manifest write.
//
// Size budget: when a byte budget is configured (NNR_CACHE_BUDGET /
// --cache-budget, 0 = unlimited), a store that pushes the cache over budget
// evicts least-recently-used entries down to the budget. Recency comes from
// a persisted append-only access journal (`access.journal`,
// serialize/journal.h) updated on every hit and store; entries whose key
// lock is currently held (in-flight) are never evicted. `gc()` additionally
// sweeps orphaned `.tmp` files (dead writer pids) and unheld lockfiles —
// exposed as `nnr_run --cache-gc`.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>

#include "core/trainer.h"
#include "sched/cell_key.h"
#include "sched/file_lock.h"
#include "serialize/journal.h"

namespace nnr::sched {

/// Cache activity counters (bytes are serialized file sizes).
struct CacheStats {
  std::int64_t hits = 0;
  std::int64_t misses = 0;   // absent entries (corrupt ones count both)
  std::int64_t corrupt = 0;  // present but unreadable -> recomputed
  std::int64_t stores = 0;
  std::int64_t bytes_read = 0;
  std::int64_t bytes_written = 0;
};

/// What one gc() / eviction pass did, plus the cache's state afterwards.
struct GcStats {
  std::int64_t removed_tmp = 0;    // orphaned temp files swept
  std::int64_t removed_locks = 0;  // unheld lockfiles swept
  std::int64_t evicted = 0;        // entries evicted for the budget
  std::int64_t evicted_bytes = 0;
  std::int64_t entries = 0;  // entries remaining after the pass
  std::int64_t bytes = 0;    // bytes remaining after the pass
};

class ReplicateCache {
 public:
  /// Cache rooted at `dir`; an empty dir disables the cache (every load
  /// misses without touching the stats, every store is a no-op).
  /// `budget_bytes` > 0 bounds the cache's total entry size via LRU
  /// eviction; <= 0 means unlimited.
  explicit ReplicateCache(std::string dir, std::int64_t budget_bytes = 0);

  /// Cache configured from the environment: NNR_CACHE_DIR (unset disables)
  /// and NNR_CACHE_BUDGET (bytes; unset/invalid means unlimited).
  [[nodiscard]] static ReplicateCache from_env();

  [[nodiscard]] bool enabled() const noexcept { return !dir_.empty(); }
  [[nodiscard]] const std::string& dir() const noexcept { return dir_; }
  [[nodiscard]] std::int64_t budget() const noexcept { return budget_; }

  /// The result stored under `key`, or nullopt (miss). Corruption of any
  /// kind is a miss, never an exception. When `run` is non-null the same
  /// counter deltas are applied to it — this is how the scheduler keeps
  /// exact per-run stats while several runs share one cache.
  /// `count_miss = false` suppresses miss/corrupt counting (hits still
  /// count): the scheduler's revalidation loads — under a fresh claim, or
  /// after waiting out a peer's claim — would otherwise double-count the
  /// one real miss already recorded for that replicate.
  [[nodiscard]] std::optional<core::RunResult> load(
      const CellKey& key, CacheStats* run = nullptr, bool count_miss = true);

  /// Persists `result` under `key` (atomic: temp file + rename; exact byte
  /// accounting from the serializer, never from a re-stat). Returns false
  /// when disabled or on I/O failure, and then counts nothing. Triggers
  /// budget eviction when configured.
  bool store(const CellKey& key, const core::RunResult& result,
             CacheStats* run = nullptr);

  /// Claims `key`'s training slot (non-blocking). nullopt means another
  /// worker or process holds the claim — it is training this key right
  /// now. Holding the claim while training and storing is what makes
  /// concurrent studies partition a shared grid.
  [[nodiscard]] std::optional<FileLock> try_claim(const CellKey& key);

  /// Blocking claim — returns once the current holder finishes (or died).
  /// nullopt only on I/O failure (treat as "train it yourself").
  [[nodiscard]] std::optional<FileLock> claim(const CellKey& key);

  /// Full housekeeping pass under the cache-wide lock: sweeps orphaned
  /// `.tmp` files (writer pid no longer alive) and unheld lockfiles,
  /// evicts to the budget, and compacts the access journal. Safe to run
  /// concurrently with live studies. No-op (all zeros) when disabled.
  GcStats gc();

  /// Snapshot of the counters since construction.
  [[nodiscard]] CacheStats stats() const;

  /// Cache file path for `key` (exposed for tests and tooling).
  [[nodiscard]] std::string path_for(const CellKey& key) const;
  /// Advisory lockfile path for `key`.
  [[nodiscard]] std::string lock_path_for(const CellKey& key) const;

 private:
  void touch(const CellKey& key) const;  // journal an access (best-effort)
  void ensure_dir_and_manifest();
  void maybe_evict();
  void evict_to_budget_locked(std::int64_t budget, GcStats* gc_stats);
  void compact_journal_locked() const;
  [[nodiscard]] std::string gc_lock_path() const;

  std::string dir_;
  std::int64_t budget_ = 0;
  serialize::AccessJournal journal_;
  std::atomic<bool> manifest_checked_{false};
  /// Running estimate of total entry bytes for the budget pre-check (-1 =
  /// not yet seeded by a scan). Advanced by this process's stores, reset
  /// to the authoritative total on each eviction pass; peers track their
  /// own stores, so whoever crosses the budget runs the eviction.
  std::atomic<std::int64_t> approx_bytes_{-1};
  mutable std::mutex mu_;
  CacheStats stats_;
};

}  // namespace nnr::sched
