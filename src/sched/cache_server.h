// The nnr_cached daemon core: a single-threaded epoll TCP server that owns
// an FsCacheBackend and speaks the length-prefixed binary protocol of
// net/cache_protocol.h. tools/nnr_cached.cc is a thin main() around this
// class; tests run it in-process on an ephemeral port.
//
// Concurrency model: one thread, one epoll loop, nonblocking sockets with
// per-connection read/write buffers. Training runs take seconds to hours
// while cache messages take microseconds, so a single thread serves many
// nnr_run fleets without breaking a sweat — and it makes the lease table
// race-free by construction.
//
// Leases (the remote claim): CLAIM grants (lease_id, TTL); HEARTBEAT
// re-arms the TTL; RELEASE frees the key. A lease dies in three ways:
//   - released explicitly,
//   - its connection closes (client exit or SIGKILL — the kernel sends
//     FIN either way), releasing all of that connection's leases at once,
//   - its TTL passes without a heartbeat (network partition, frozen
//     client) — checked on every loop iteration, so a dead client's key
//     becomes claimable again within one TTL at the latest.
// Each lease also holds the key's flock (sched/file_lock.h) inside the
// daemon process, so the fs backend's eviction in-flight rule applies and
// local FsCacheBackend users sharing the same directory see remote claims
// as held keys.
//
// Trust: entry bytes are opaque to the daemon except for validation — a
// PUT body must be a checksum-valid RunResult stamped with the key it is
// stored under (serialize/run_result.h), so no client can poison an entry
// a peer would later trust. GETs serve raw file bytes; the receiving
// client re-validates.
//
// Fleet work queue (SUBMIT/FETCH/REPORT/QUEUE_STAT): the daemon also owns
// a durable cell queue (sched/fleet_queue.h) that coordinators fill and
// stateless workers drain. A FETCH grants a lease exactly like TRY_CLAIM —
// same table, same TTL, same flock — flagged as a queue lease so that when
// it dies unreported (expiry, disconnect, release) the daemon requeues the
// item. The queue persists itself inside the cache directory, so a daemon
// restart preserves the pending set (in-flight leases revert to pending).
//
// Self-protection (all off by default in-library; nnr_cached arms sane
// defaults): a max-connection cap (excess accepts are answered with one
// kGoAway frame carrying kBusy + a retry hint, then closed), a
// per-connection idle deadline (a slow-loris client that connects and
// sends nothing is evicted instead of holding an fd forever), and a
// per-connection token bucket (an over-rate client's requests are answered
// kThrottled + retry_after_ms instead of being served — the connection
// survives, the work doesn't). Shutdown via stop() is graceful: pending
// response bytes are flushed (bounded by drain_timeout_ms), every lease is
// released (queue leases requeue), and the fleet queue snapshot is
// persisted so a restarted daemon resumes the wave.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>

#include "net/socket.h"
#include "sched/fleet_queue.h"
#include "sched/fs_cache_backend.h"

namespace nnr::sched {

struct CacheServerConfig {
  std::string dir;             // cache directory (required)
  std::int64_t budget = 0;     // byte budget; 0 = unlimited
  std::string bind_addr = "127.0.0.1";
  std::uint16_t port = 0;      // 0 = ephemeral (read back via port())
  /// TTL bounds: a claim's requested TTL is clamped into [min, max];
  /// a request of 0 takes default_ttl_ms.
  std::uint32_t min_ttl_ms = 100;
  std::uint32_t max_ttl_ms = 60'000;
  std::uint32_t default_ttl_ms = 10'000;

  // ---- Overload protection (0 disables each; nnr_cached arms defaults).
  /// Registered connections beyond this are answered with one kGoAway
  /// (kBusy + busy_retry_ms) and closed without ever reaching epoll.
  std::size_t max_conns = 0;
  /// A connection that delivers no bytes for this long is evicted —
  /// the slow-loris defense. Healthy idle clients reconnect transparently.
  std::int64_t idle_timeout_ms = 0;
  /// Per-connection token bucket: sustained requests/second above this
  /// are answered kThrottled + retry_after_ms instead of being served.
  double max_rps = 0.0;
  /// Bucket depth (burst tolerance); 0 derives max(8, 2 * max_rps).
  double burst = 0.0;
  /// Retry hint inside a kGoAway busy answer.
  std::uint32_t busy_retry_ms = 1'000;
  /// Graceful-stop bound on flushing already-queued response bytes.
  std::int64_t drain_timeout_ms = 2'000;
};

class CacheServer {
 public:
  explicit CacheServer(CacheServerConfig config);
  ~CacheServer();
  CacheServer(const CacheServer&) = delete;
  CacheServer& operator=(const CacheServer&) = delete;

  /// Binds and listens (and arms the wakeup pipe). False on failure —
  /// inspect errno / logs. Must be called before run().
  [[nodiscard]] bool start();

  /// The bound port (after start(); meaningful with config.port == 0).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Serves until stop(). Call from exactly one thread.
  void run();

  /// Thread- and signal-safe shutdown request (writes one byte to the
  /// wakeup pipe; async-signal-safe by construction). run() then drains
  /// gracefully: see drain_and_shutdown().
  void stop() noexcept;

  /// Overload-protection tallies (readable from any thread; tests).
  struct OverloadCounters {
    std::int64_t rejected_busy = 0;  // accepts refused at max_conns
    std::int64_t throttled = 0;      // requests answered kThrottled
    std::int64_t idle_evicted = 0;   // connections closed by idle deadline
  };
  [[nodiscard]] OverloadCounters overload_counters() const noexcept {
    return {rejected_busy_.load(std::memory_order_relaxed),
            throttled_.load(std::memory_order_relaxed),
            idle_evicted_.load(std::memory_order_relaxed)};
  }

 private:
  struct Conn {
    net::Socket sock;
    std::uint64_t id = 0;
    std::string in;   // unparsed request bytes
    std::string out;  // unsent response bytes
    /// Last time bytes arrived (idle eviction clock).
    std::chrono::steady_clock::time_point last_activity;
    /// Token bucket (meaningful when config.max_rps > 0).
    double tokens = 0.0;
    std::chrono::steady_clock::time_point last_refill;
  };

  struct Lease {
    std::uint64_t lease_id = 0;
    std::uint64_t conn_id = 0;
    std::uint32_t ttl_ms = 0;
    std::chrono::steady_clock::time_point expiry;
    /// The key's flock, held for the lease's lifetime (engaged once
    /// granted; optional only because FileLock has no empty state).
    std::optional<FileLock> lock;
    /// Granted by FETCH (vs TRY_CLAIM): if this lease dies before its
    /// item is done, the item returns to the queue.
    bool from_queue = false;
    CellKey key{};
  };

  void accept_new_conns();
  /// Reads (or creates) `<dir>/shard_id.nnr`: dir_uid_ persists across
  /// restarts, boot_epoch_ increments per start, instance_id_ is random
  /// per process. Together these answer kShardInfo so a sharded client can
  /// prove its shard map is dir-disjoint.
  void load_or_create_shard_identity();
  /// Reads what's available; parses and handles complete frames. False
  /// when the connection should be closed.
  bool service_readable(Conn& conn);
  /// Flushes conn.out. False when the connection should be closed.
  bool flush_writable(Conn& conn);
  void update_epoll_interest(Conn& conn);
  void close_conn(int fd);
  void handle_frame(Conn& conn, std::uint8_t opcode, const std::string& body);
  void expire_leases();
  void release_conn_leases(std::uint64_t conn_id);
  /// True when the conn's bucket grants one request; otherwise fills
  /// `retry_after_ms` with the earliest time a token will exist.
  bool take_token(Conn& conn, std::uint32_t* retry_after_ms);
  /// Closes connections whose idle deadline passed (run-loop tick).
  void evict_idle_conns();
  /// Graceful stop: bounded flush of queued responses, release every
  /// lease (queue leases requeue), persist the fleet queue snapshot.
  void drain_and_shutdown();

  /// Erases the lease (returning the next iterator); a queue lease whose
  /// item is not yet done sends the item back to pending first.
  std::unordered_map<std::string, Lease>::iterator drop_lease(
      std::unordered_map<std::string, Lease>::iterator it);

  CacheServerConfig config_;
  FsCacheBackend backend_;
  FleetQueue queue_;
  net::Listener listener_;
  std::uint16_t port_ = 0;
  int epoll_fd_ = -1;
  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;
  bool stop_requested_ = false;
  /// True inside drain_and_shutdown(): a kSubmit read during the final
  /// drain pass is answered kBusy + retry hint instead of enqueued into a
  /// queue about to be persisted-and-closed.
  bool draining_ = false;
  // Shard identity (kShardInfo): see load_or_create_shard_identity().
  std::uint64_t instance_id_ = 0;
  std::uint64_t dir_uid_ = 0;
  std::uint64_t boot_epoch_ = 0;
  std::uint64_t next_conn_id_ = 1;
  std::uint64_t next_lease_id_ = 1;
  std::unordered_map<int, std::unique_ptr<Conn>> conns_;       // by fd
  std::unordered_map<std::string, Lease> leases_;              // by key hex
  std::int64_t expired_leases_ = 0;
  std::atomic<std::int64_t> rejected_busy_{0};
  std::atomic<std::int64_t> throttled_{0};
  std::atomic<std::int64_t> idle_evicted_{0};
};

}  // namespace nnr::sched
