// The nnr_cached daemon core: a single-threaded epoll TCP server that owns
// an FsCacheBackend and speaks the length-prefixed binary protocol of
// net/cache_protocol.h. tools/nnr_cached.cc is a thin main() around this
// class; tests run it in-process on an ephemeral port.
//
// Concurrency model: one thread, one epoll loop, nonblocking sockets with
// per-connection read/write buffers. Training runs take seconds to hours
// while cache messages take microseconds, so a single thread serves many
// nnr_run fleets without breaking a sweat — and it makes the lease table
// race-free by construction.
//
// Leases (the remote claim): CLAIM grants (lease_id, TTL); HEARTBEAT
// re-arms the TTL; RELEASE frees the key. A lease dies in three ways:
//   - released explicitly,
//   - its connection closes (client exit or SIGKILL — the kernel sends
//     FIN either way), releasing all of that connection's leases at once,
//   - its TTL passes without a heartbeat (network partition, frozen
//     client) — checked on every loop iteration, so a dead client's key
//     becomes claimable again within one TTL at the latest.
// Each lease also holds the key's flock (sched/file_lock.h) inside the
// daemon process, so the fs backend's eviction in-flight rule applies and
// local FsCacheBackend users sharing the same directory see remote claims
// as held keys.
//
// Trust: entry bytes are opaque to the daemon except for validation — a
// PUT body must be a checksum-valid RunResult stamped with the key it is
// stored under (serialize/run_result.h), so no client can poison an entry
// a peer would later trust. GETs serve raw file bytes; the receiving
// client re-validates.
//
// Fleet work queue (SUBMIT/FETCH/REPORT/QUEUE_STAT): the daemon also owns
// a durable cell queue (sched/fleet_queue.h) that coordinators fill and
// stateless workers drain. A FETCH grants a lease exactly like TRY_CLAIM —
// same table, same TTL, same flock — flagged as a queue lease so that when
// it dies unreported (expiry, disconnect, release) the daemon requeues the
// item. The queue persists itself inside the cache directory, so a daemon
// restart preserves the pending set (in-flight leases revert to pending).
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>

#include "net/socket.h"
#include "sched/fleet_queue.h"
#include "sched/fs_cache_backend.h"

namespace nnr::sched {

struct CacheServerConfig {
  std::string dir;             // cache directory (required)
  std::int64_t budget = 0;     // byte budget; 0 = unlimited
  std::string bind_addr = "127.0.0.1";
  std::uint16_t port = 0;      // 0 = ephemeral (read back via port())
  /// TTL bounds: a claim's requested TTL is clamped into [min, max];
  /// a request of 0 takes default_ttl_ms.
  std::uint32_t min_ttl_ms = 100;
  std::uint32_t max_ttl_ms = 60'000;
  std::uint32_t default_ttl_ms = 10'000;
};

class CacheServer {
 public:
  explicit CacheServer(CacheServerConfig config);
  ~CacheServer();
  CacheServer(const CacheServer&) = delete;
  CacheServer& operator=(const CacheServer&) = delete;

  /// Binds and listens (and arms the wakeup pipe). False on failure —
  /// inspect errno / logs. Must be called before run().
  [[nodiscard]] bool start();

  /// The bound port (after start(); meaningful with config.port == 0).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Serves until stop(). Call from exactly one thread.
  void run();

  /// Thread- and signal-safe shutdown request (writes one byte to the
  /// wakeup pipe; async-signal-safe by construction).
  void stop() noexcept;

 private:
  struct Conn {
    net::Socket sock;
    std::uint64_t id = 0;
    std::string in;   // unparsed request bytes
    std::string out;  // unsent response bytes
  };

  struct Lease {
    std::uint64_t lease_id = 0;
    std::uint64_t conn_id = 0;
    std::uint32_t ttl_ms = 0;
    std::chrono::steady_clock::time_point expiry;
    /// The key's flock, held for the lease's lifetime (engaged once
    /// granted; optional only because FileLock has no empty state).
    std::optional<FileLock> lock;
    /// Granted by FETCH (vs TRY_CLAIM): if this lease dies before its
    /// item is done, the item returns to the queue.
    bool from_queue = false;
    CellKey key{};
  };

  void accept_new_conns();
  /// Reads what's available; parses and handles complete frames. False
  /// when the connection should be closed.
  bool service_readable(Conn& conn);
  /// Flushes conn.out. False when the connection should be closed.
  bool flush_writable(Conn& conn);
  void update_epoll_interest(Conn& conn);
  void close_conn(int fd);
  void handle_frame(Conn& conn, std::uint8_t opcode, const std::string& body);
  void expire_leases();
  void release_conn_leases(std::uint64_t conn_id);

  /// Erases the lease (returning the next iterator); a queue lease whose
  /// item is not yet done sends the item back to pending first.
  std::unordered_map<std::string, Lease>::iterator drop_lease(
      std::unordered_map<std::string, Lease>::iterator it);

  CacheServerConfig config_;
  FsCacheBackend backend_;
  FleetQueue queue_;
  net::Listener listener_;
  std::uint16_t port_ = 0;
  int epoll_fd_ = -1;
  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;
  bool stop_requested_ = false;
  std::uint64_t next_conn_id_ = 1;
  std::uint64_t next_lease_id_ = 1;
  std::unordered_map<int, std::unique_ptr<Conn>> conns_;       // by fd
  std::unordered_map<std::string, Lease> leases_;              // by key hex
  std::int64_t expired_leases_ = 0;
};

}  // namespace nnr::sched
