#include "sched/sharded_cache_backend.h"

#include <chrono>
#include <stdexcept>
#include <utility>

namespace nnr::sched {

namespace {

/// A claim granted for a key whose owner shard is down: holds nothing,
/// blocks nobody — the scheduler trains locally under it, same as the
/// remote backend's degraded claims.
struct ShardedNoopClaimImpl final : CacheClaim::Impl {};

/// 64-bit finalizer (the murmur3/splitmix avalanche): every input bit
/// flips each output bit with ~1/2 probability — what the χ² uniformity
/// bound needs from hrw_score.
std::uint64_t mix64(std::uint64_t x) noexcept {
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDull;
  x ^= x >> 33;
  x *= 0xC4CEB9FE1A85EC53ull;
  x ^= x >> 33;
  return x;
}

}  // namespace

std::uint64_t shard_tag(std::string_view url) noexcept {
  // FNV-1a 64 over the URL string.
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (const char c : url) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ull;
  }
  return h;
}

std::uint64_t hrw_score(const CellKey& key, std::uint64_t tag) noexcept {
  // Chained mixing rather than xor-of-mixes: score(key, tag) must not
  // decompose into f(key) ^ g(tag), which would make every key prefer the
  // same tag ordering.
  return mix64(key.hi ^ mix64(key.lo ^ mix64(tag)));
}

std::size_t pick_shard(const CellKey& key,
                       const std::vector<std::uint64_t>& tags) {
  if (tags.empty()) {
    throw std::invalid_argument("pick_shard: empty shard map");
  }
  std::size_t best = 0;
  std::uint64_t best_score = hrw_score(key, tags[0]);
  for (std::size_t i = 1; i < tags.size(); ++i) {
    const std::uint64_t score = hrw_score(key, tags[i]);
    // Ties break on the tag (a shard identity), not the slot index, so a
    // permuted shard map elects the same winner.
    if (score > best_score ||
        (score == best_score && tags[i] > tags[best])) {
      best = i;
      best_score = score;
    }
  }
  return best;
}

std::vector<std::string> split_cache_urls(const std::string& list) {
  std::vector<std::string> urls;
  std::size_t start = 0;
  while (start <= list.size()) {
    std::size_t end = list.find(',', start);
    if (end == std::string::npos) end = list.size();
    std::string token = list.substr(start, end - start);
    const auto first = token.find_first_not_of(" \t");
    if (first != std::string::npos) {
      const auto last = token.find_last_not_of(" \t");
      urls.push_back(token.substr(first, last - first + 1));
    }
    start = end + 1;
  }
  return urls;
}

struct ShardedCacheBackend::ShardState {
  ShardState(std::string shard_url, std::uint64_t shard_tag_value,
             std::unique_ptr<RemoteCacheBackend> shard_client,
             int backoff_ms, int backoff_max_ms, std::uint64_t seed)
      : url(std::move(shard_url)),
        tag(shard_tag_value),
        client(std::move(shard_client)),
        probe_backoff(backoff_ms, backoff_max_ms, seed) {}

  std::string url;
  std::uint64_t tag;
  std::unique_ptr<RemoteCacheBackend> client;

  std::mutex mu;  // health state below
  bool down = false;
  net::Backoff probe_backoff;
  std::chrono::steady_clock::time_point next_probe{};
};

ShardedCacheBackend::ShardedCacheBackend(const std::vector<std::string>& urls,
                                         ShardedCacheOptions options) {
  if (urls.empty()) {
    throw std::invalid_argument("sharded cache: empty shard map");
  }
  const std::uint64_t seed_base = options.jitter_seed != 0
                                      ? options.jitter_seed
                                      : net::default_jitter_seed();
  shards_.reserve(urls.size());
  tags_.reserve(urls.size());
  for (std::size_t i = 0; i < urls.size(); ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      if (urls[j] == urls[i]) {
        throw std::invalid_argument(
            "sharded cache: duplicate shard url '" + urls[i] + "'");
      }
    }
    RemoteCacheOptions remote = options.remote;
    // Decorrelate the shard clients' jitter streams even under a pinned
    // seed — one seed per shard slot, derived deterministically.
    remote.jitter_seed = seed_base + 0x9E37ull * (i + 1);
    shards_.push_back(std::make_unique<ShardState>(
        urls[i], shard_tag(urls[i]),
        std::make_unique<RemoteCacheBackend>(urls[i], remote),
        options.probe_backoff_ms, options.probe_backoff_max_ms,
        seed_base ^ (0x5348u + i)));
    tags_.push_back(shards_.back()->tag);
    if (!description_.empty()) description_ += ',';
    description_ += urls[i];
  }
  description_ = "sharded(" + description_ + ")";
}

ShardedCacheBackend::~ShardedCacheBackend() = default;

std::size_t ShardedCacheBackend::shard_for(const CellKey& key) const {
  return pick_shard(key, tags_);
}

const std::string& ShardedCacheBackend::shard_url(std::size_t index) const {
  return shards_.at(index)->url;
}

RemoteCacheBackend& ShardedCacheBackend::shard(std::size_t index) {
  return *shards_.at(index)->client;
}

bool ShardedCacheBackend::shard_marked_down(std::size_t index) const {
  ShardState& s = *shards_.at(index);
  std::lock_guard<std::mutex> lock(s.mu);
  return s.down;
}

RemoteCacheBackend* ShardedCacheBackend::route(const CellKey& key,
                                               std::size_t* index) {
  const std::size_t i = pick_shard(key, tags_);
  if (index != nullptr) *index = i;
  ShardState& s = *shards_[i];
  std::lock_guard<std::mutex> lock(s.mu);
  if (!s.down) return s.client.get();
  if (std::chrono::steady_clock::now() < s.next_probe) return nullptr;
  // Probe the shard's revival. The full client reset first is load-bearing:
  // without it the ping would fail fast inside the client's own reconnect
  // backoff window and the probe would learn nothing.
  s.client->disconnect();
  if (s.client->ping()) {
    s.down = false;
    s.probe_backoff.reset();
    return s.client.get();
  }
  s.next_probe = std::chrono::steady_clock::now() +
                 std::chrono::milliseconds(s.probe_backoff.next_ms());
  return nullptr;
}

void ShardedCacheBackend::note_shard_result(std::size_t index) {
  ShardState& s = *shards_[index];
  // connected() takes the client's io mutex; never call it under s.mu's
  // critical path order seen in route() (s.mu -> client internals) in
  // reverse. Here we read it first, lock-free of s.mu.
  if (s.client->connected()) return;
  std::lock_guard<std::mutex> lock(s.mu);
  if (s.down) return;
  s.down = true;
  s.next_probe = std::chrono::steady_clock::now() +
                 std::chrono::milliseconds(s.probe_backoff.next_ms());
}

void ShardedCacheBackend::count_degraded_miss(CacheStats* run) {
  std::lock_guard<std::mutex> lock(stats_mu_);
  ++degraded_.misses;
  if (run != nullptr) ++run->misses;
}

std::optional<core::RunResult> ShardedCacheBackend::load(const CellKey& key,
                                                         CacheStats* run,
                                                         bool count_miss) {
  std::size_t index = 0;
  RemoteCacheBackend* client = route(key, &index);
  if (client == nullptr) {
    if (count_miss) count_degraded_miss(run);
    return std::nullopt;
  }
  auto result = client->load(key, run, count_miss);
  note_shard_result(index);
  return result;
}

bool ShardedCacheBackend::store(const CellKey& key,
                                const core::RunResult& result,
                                CacheStats* run) {
  std::size_t index = 0;
  RemoteCacheBackend* client = route(key, &index);
  if (client == nullptr) return false;  // dropped silently, like any store
  const bool ok = client->store(key, result, run);
  note_shard_result(index);
  return ok;
}

std::optional<CacheClaim> ShardedCacheBackend::try_claim(const CellKey& key) {
  std::size_t index = 0;
  RemoteCacheBackend* client = route(key, &index);
  if (client == nullptr) {
    // Owner shard down: grant a local no-op so the caller trains the cell
    // itself instead of deferring forever. Never divert to another shard —
    // that would let two daemons grant the same key.
    return CacheClaim(std::make_unique<ShardedNoopClaimImpl>());
  }
  auto claim = client->try_claim(key);
  note_shard_result(index);
  return claim;
}

std::optional<CacheClaim> ShardedCacheBackend::claim(const CellKey& key) {
  std::size_t index = 0;
  RemoteCacheBackend* client = route(key, &index);
  if (client == nullptr) {
    return CacheClaim(std::make_unique<ShardedNoopClaimImpl>());
  }
  // The client's blocking claim already degrades to a no-op grant if its
  // daemon dies mid-poll, so this cannot wedge on a shard outage.
  auto claim = client->claim(key);
  note_shard_result(index);
  return claim;
}

GcStats ShardedCacheBackend::gc() {
  GcStats total;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    if (shard_marked_down(i)) continue;
    const GcStats g = shards_[i]->client->gc();
    note_shard_result(i);
    total.removed_tmp += g.removed_tmp;
    total.removed_locks += g.removed_locks;
    total.evicted += g.evicted;
    total.evicted_bytes += g.evicted_bytes;
    total.entries += g.entries;
    total.bytes += g.bytes;
  }
  return total;
}

CacheStats ShardedCacheBackend::stats() const {
  CacheStats total;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    total = degraded_;
  }
  for (const auto& shard : shards_) {
    const CacheStats s = shard->client->stats();
    total.hits += s.hits;
    total.misses += s.misses;
    total.corrupt += s.corrupt;
    total.stores += s.stores;
    total.bytes_read += s.bytes_read;
    total.bytes_written += s.bytes_written;
  }
  return total;
}

std::string ShardedCacheBackend::describe() const { return description_; }

std::optional<std::string> ShardedCacheBackend::verify_disjoint() {
  std::vector<std::optional<RemoteCacheBackend::ShardInfo>> infos;
  infos.reserve(shards_.size());
  for (const auto& shard : shards_) {
    // nullopt (unreachable, or a pre-kShardInfo daemon answering kError)
    // skips the check for that slot: the guard degrades like the cache.
    infos.push_back(shard->client->shard_info());
  }
  for (std::size_t i = 0; i < infos.size(); ++i) {
    if (!infos[i].has_value()) continue;
    for (std::size_t j = 0; j < i; ++j) {
      if (infos[j].has_value() &&
          infos[j]->dir_uid == infos[i]->dir_uid) {
        return "shards " + shards_[j]->url + " and " + shards_[i]->url +
               " report the same cache directory (dir uid " +
               std::to_string(infos[i]->dir_uid) +
               "): the shard map is not dir-disjoint";
      }
    }
  }
  return std::nullopt;
}

}  // namespace nnr::sched
