// The sharded cache tier: a client-side composite over N nnr_cached
// daemons ("shards"), each owning its own directory on its own port,
// selected by a comma-separated shard map —
//
//   NNR_CACHE_URL=tcp://h1:p1,tcp://h2:p2,...   (or repeated --cache-url)
//
// Routing is rendezvous (HRW) hashing: every (key, shard) pair gets a
// score = hrw_score(key, shard_tag(url)) and the key belongs to the shard
// with the highest score. The properties the test suite holds this to:
//
//   pure      the owner is a function of (key, shard tags) only — two
//             clients with the same shard map route identically, and a
//             permuted map changes nothing (ties break on the tag value,
//             never the slot index), so routing is replayable;
//   uniform   CellKey is already a uniform 128-bit content hash and
//             hrw_score mixes it against the tag, so keys spread evenly
//             (χ²-bounded over 10k sampled keys);
//   minimal   removing a shard moves ONLY that shard's keys (every
//             surviving shard keeps its exact score, so it keeps every key
//             it already won) — the reason HRW beats mod-N here.
//
// Failure semantics, per shard state:
//
//   healthy   all five verbs delegate to the owner shard's
//             RemoteCacheBackend;
//   down      only that shard's key range degrades to local recompute
//             (load -> miss, store -> dropped, claims -> local no-op) —
//             the other shards stay hot. A shard is marked down when a
//             delegated operation leaves its client disconnected, and
//             while down its operations short-circuit without touching
//             the socket (the fail-fast that keeps a study's cost bounded);
//   probing   each down shard re-probes on its own jittered net::Backoff
//             schedule (so a fleet that lost a shard together does not
//             hammer its revival in lockstep). A probe fully resets the
//             shard client (RemoteCacheBackend::disconnect()) before
//             pinging, so it really attempts the connect instead of
//             failing fast inside a stale backoff window.
//
// Never re-route: a down shard's keys are trained locally, not diverted to
// a surviving shard — diverting would both blur the claim-exclusivity
// story (two daemons could grant the same key) and move keys that HRW
// promises stay put.
//
// Deployment guard: every daemon answers kShardInfo with a persistent
// per-directory uid; verify_disjoint() cross-checks the map and reports
// two shard slots backed by one directory (a misconfiguration that would
// silently halve the tier). Old daemons without the opcode are skipped —
// the check degrades, like everything else in the cache.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "net/backoff.h"
#include "sched/cache_backend.h"
#include "sched/remote_cache_backend.h"

namespace nnr::sched {

// ---- Rendezvous routing, exposed as free functions so the property
// ---- tests (and shard-aware tools) can replay routing decisions.

/// A shard's stable identity tag: FNV-1a 64 of its URL string.
[[nodiscard]] std::uint64_t shard_tag(std::string_view url) noexcept;

/// The rendezvous score of (key, tag): a strong 64-bit mix, pure in its
/// inputs, uniform across keys for any fixed tag.
[[nodiscard]] std::uint64_t hrw_score(const CellKey& key,
                                      std::uint64_t tag) noexcept;

/// Index into `tags` of the winning shard: argmax of hrw_score, ties
/// broken toward the LARGER tag (an identity, not a slot position), so the
/// winner is invariant under permutation of the shard map. `tags` must be
/// non-empty.
[[nodiscard]] std::size_t pick_shard(const CellKey& key,
                                     const std::vector<std::uint64_t>& tags);

/// Splits a comma-separated shard map into its URLs. Empty tokens (from
/// stray/trailing commas) are dropped; no validation beyond that — the
/// RemoteCacheBackend constructor is the URL authority.
[[nodiscard]] std::vector<std::string> split_cache_urls(
    const std::string& list);

struct ShardedCacheOptions {
  /// Per-shard client options (every shard gets the same ones).
  RemoteCacheOptions remote;
  /// Probe schedule for a down shard: first window, doubling per failed
  /// probe up to the max, jittered ±50% (net::Backoff).
  int probe_backoff_ms = 500;
  int probe_backoff_max_ms = 8'000;
  /// Jitter stream seed; 0 derives a per-process seed (production). Tests
  /// pin a nonzero seed for a reproducible probe schedule.
  std::uint64_t jitter_seed = 0;
};

class ShardedCacheBackend final : public CacheBackend {
 public:
  /// `urls` must be non-empty, each tcp://host:port, and pairwise distinct
  /// (two slots with one URL would be one daemon scored twice). Throws
  /// std::invalid_argument otherwise. Does not connect — first use does.
  explicit ShardedCacheBackend(const std::vector<std::string>& urls,
                               ShardedCacheOptions options = {});
  ~ShardedCacheBackend() override;

  // CacheBackend interface (doc contracts in sched/cache_backend.h).
  [[nodiscard]] std::optional<core::RunResult> load(
      const CellKey& key, CacheStats* run = nullptr,
      bool count_miss = true) override;
  bool store(const CellKey& key, const core::RunResult& result,
             CacheStats* run = nullptr) override;
  [[nodiscard]] std::optional<CacheClaim> try_claim(
      const CellKey& key) override;
  [[nodiscard]] std::optional<CacheClaim> claim(const CellKey& key) override;
  /// Sweeps every currently-reachable shard and sums the results; down
  /// shards are skipped (their housekeeping waits for their revival).
  GcStats gc() override;
  /// Sum over the shard clients' lifetime counters plus the misses this
  /// composite recorded while short-circuiting ops to down shards.
  [[nodiscard]] CacheStats stats() const override;
  [[nodiscard]] std::string describe() const override;

  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shards_.size();
  }
  /// The owner shard index for `key` — routing only, no health/IO.
  [[nodiscard]] std::size_t shard_for(const CellKey& key) const;
  /// The slot's URL (routing-relevant identity; also in describe()).
  [[nodiscard]] const std::string& shard_url(std::size_t index) const;
  /// Direct access to one shard's client, for tests and shard-aware tools.
  [[nodiscard]] RemoteCacheBackend& shard(std::size_t index);
  /// True when the composite currently fails fast for this shard's keys.
  [[nodiscard]] bool shard_marked_down(std::size_t index) const;

  /// Queries every shard's kShardInfo and cross-checks dir-disjointness.
  /// Returns a human-readable error naming the colliding URLs when two
  /// shard slots report the same directory uid; nullopt when the map
  /// checks out. Unreachable shards and pre-kShardInfo daemons are skipped
  /// (degrade, don't block the study).
  [[nodiscard]] std::optional<std::string> verify_disjoint();

 private:
  struct ShardState;

  /// Resolves `key` to its owner shard's client, honoring health: nullptr
  /// means the owner is down (and not due a probe yet, or the probe just
  /// failed) — the caller degrades to local recompute.
  RemoteCacheBackend* route(const CellKey& key, std::size_t* index);
  /// Post-delegation health check: a client left disconnected by its
  /// operation marks its shard down and arms the probe backoff.
  void note_shard_result(std::size_t index);
  void count_degraded_miss(CacheStats* run);

  std::vector<std::unique_ptr<ShardState>> shards_;
  std::vector<std::uint64_t> tags_;
  std::string description_;

  mutable std::mutex stats_mu_;
  CacheStats degraded_;  // misses recorded while short-circuiting
};

/// Sharded backend over `urls` with the same environment-derived per-shard
/// options make_remote_cache_backend applies (NNR_CACHE_LEASE_MS etc.).
/// Throws std::invalid_argument on a malformed or duplicated url.
[[nodiscard]] std::unique_ptr<ShardedCacheBackend> make_sharded_cache_backend(
    const std::vector<std::string>& urls);

}  // namespace nnr::sched
