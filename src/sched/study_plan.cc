#include "sched/study_plan.h"

namespace nnr::sched {

Cell& StudyPlan::add_cell(const core::Task& task, core::NoiseVariant variant,
                          const hw::DeviceSpec& device,
                          std::int64_t replicates) {
  Cell cell;
  cell.id = task.name + " / " + device.name + " / " +
            std::string(core::variant_name(variant));
  cell.task_name = task.name;
  cell.task_id = task.dataset.name + "|" + task.name;
  cell.job = task.job(variant, device);
  cell.replicates = replicates > 0 ? replicates : task.default_replicates;
  cells_.push_back(std::move(cell));
  return cells_.back();
}

Cell& StudyPlan::add_job(std::string id, std::string task_id,
                         core::TrainJob job, std::int64_t replicates) {
  Cell cell;
  cell.id = std::move(id);
  cell.task_name = cell.id;
  cell.task_id = std::move(task_id);
  cell.job = std::move(job);
  cell.replicates = replicates;
  cells_.push_back(std::move(cell));
  return cells_.back();
}

const std::vector<core::NoiseVariant>& observed_variants() {
  static const std::vector<core::NoiseVariant> variants = {
      core::NoiseVariant::kAlgoPlusImpl, core::NoiseVariant::kAlgo,
      core::NoiseVariant::kImpl};
  return variants;
}

}  // namespace nnr::sched
