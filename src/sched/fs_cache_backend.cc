#include "sched/fs_cache_backend.h"

#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <system_error>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/env.h"
#include "runtime/parse_int.h"
#include "serialize/run_result.h"

namespace nnr::sched {

namespace fs = std::filesystem;

namespace {

constexpr const char* kJournalName = "access.journal";
constexpr const char* kGcLockName = "gc.lock";
constexpr const char* kManifestName = "manifest";
// Compact the journal once it outgrows this — at 33 bytes per access this
// is ~8k accesses between compactions.
constexpr std::int64_t kJournalCompactBytes = 256 * 1024;

/// The fs backend's claim token: the flock itself. Destruction closes the
/// fd, which releases the kernel lock — exactly what process death does.
struct FsClaimImpl final : CacheClaim::Impl {
  explicit FsClaimImpl(FileLock l) : lock(std::move(l)) {}
  FileLock lock;
};

std::optional<CacheClaim> wrap_lock(std::optional<FileLock> lock) {
  if (!lock.has_value()) return std::nullopt;
  return CacheClaim(std::make_unique<FsClaimImpl>(std::move(*lock)));
}

/// One on-disk cache entry, with its LRU rank inputs.
struct EntryInfo {
  fs::path path;
  std::string hex;
  std::int64_t size = 0;
  fs::file_time_type mtime;
  // Position of the entry's most recent journal record; -1 when the entry
  // predates the journal (ranked oldest, tie-broken by mtime).
  std::int64_t recency = -1;
};

bool is_entry_name(const std::string& name) {
  if (name.size() != 35 || name.substr(32) != ".rr") return false;
  return std::all_of(name.begin(), name.begin() + 32, [](char c) {
    return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
  });
}

/// Entries currently on disk (ignores temp files, locks, journal, manifest).
std::vector<EntryInfo> list_entries(const std::string& dir) {
  std::vector<EntryInfo> entries;
  std::error_code ec;
  for (fs::directory_iterator it(dir, ec), end; !ec && it != end;
       it.increment(ec)) {
    const fs::path& path = it->path();
    const std::string name = path.filename().string();
    if (!is_entry_name(name)) continue;
    EntryInfo info;
    info.path = path;
    info.hex = name.substr(0, 32);
    std::error_code stat_ec;
    const auto size = fs::file_size(path, stat_ec);
    if (stat_ec) continue;  // vanished mid-scan (evicted by a peer)
    info.size = static_cast<std::int64_t>(size);
    info.mtime = fs::last_write_time(path, stat_ec);
    if (stat_ec) continue;
    entries.push_back(std::move(info));
  }
  return entries;
}

std::int64_t total_size(const std::vector<EntryInfo>& entries) {
  std::int64_t total = 0;
  for (const EntryInfo& e : entries) total += e.size;
  return total;
}

/// Sorts oldest-access-first: entries never journaled rank before journaled
/// ones (by mtime); journaled ones rank by the position of their last
/// journal record.
void sort_lru(std::vector<EntryInfo>& entries) {
  std::sort(entries.begin(), entries.end(),
            [](const EntryInfo& a, const EntryInfo& b) {
              if (a.recency != b.recency) return a.recency < b.recency;
              return a.mtime < b.mtime;
            });
}

/// Stamps each entry's recency with the position of its last journal
/// record (one O(tokens) pass, not a scan per entry) and sorts LRU-first.
void rank_lru(std::vector<EntryInfo>& entries,
              const std::vector<std::string>& tokens) {
  std::unordered_map<std::string, std::int64_t> last_index;
  last_index.reserve(tokens.size());
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    last_index[tokens[i]] = static_cast<std::int64_t>(i);
  }
  for (EntryInfo& e : entries) {
    const auto it = last_index.find(e.hex);
    if (it != last_index.end()) e.recency = it->second;
  }
  sort_lru(entries);
}

/// True when the pid embedded in a temp-file name still names a live
/// process (alive or unkillable-but-present). Unparsable pids count as
/// dead — the file can only be an orphan from a crashed writer.
bool tmp_owner_alive(const std::string& name) {
  const auto pos = name.rfind(".tmp");
  if (pos == std::string::npos) return false;
  std::string pid_text = name.substr(pos + 4);
  const auto dot = pid_text.find('.');
  if (dot != std::string::npos) pid_text = pid_text.substr(0, dot);
  const auto pid = runtime::parse_int_strict(pid_text.c_str());
  if (!pid.has_value() || *pid <= 0 || *pid > 0x7FFFFFFF) return false;
  return ::kill(static_cast<pid_t>(*pid), 0) == 0 || errno == EPERM;
}

/// Unique temp name per (process, thread) writer — benches legitimately
/// share one cache dir across processes — renamed into place so concurrent
/// readers never observe a half-written entry.
std::string temp_name(const std::string& path) {
  return path + ".tmp" + std::to_string(::getpid()) + "." +
         std::to_string(
             std::hash<std::thread::id>{}(std::this_thread::get_id()));
}

}  // namespace

FsCacheBackend::FsCacheBackend(std::string dir, std::int64_t budget_bytes)
    : dir_(std::move(dir)),
      budget_(std::max<std::int64_t>(budget_bytes, 0)),
      journal_((fs::path(dir_) / kJournalName).string()) {}

FsCacheBackend FsCacheBackend::from_env() {
  const char* dir = std::getenv("NNR_CACHE_DIR");
  return FsCacheBackend(dir != nullptr ? dir : "",
                        core::env_int("NNR_CACHE_BUDGET", 0));
}

std::string FsCacheBackend::path_for(const CellKey& key) const {
  return (fs::path(dir_) / (key.hex() + ".rr")).string();
}

std::string FsCacheBackend::lock_path_for(const CellKey& key) const {
  return (fs::path(dir_) / (key.hex() + ".lock")).string();
}

std::string FsCacheBackend::gc_lock_path() const {
  return (fs::path(dir_) / kGcLockName).string();
}

void FsCacheBackend::touch(const CellKey& key) const {
  journal_.append(key.hex());
}

void FsCacheBackend::ensure_dir_and_manifest() {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (manifest_checked_.exchange(true)) return;
  const std::string manifest = (fs::path(dir_) / kManifestName).string();
  if (fs::exists(manifest, ec)) return;
  // First writer wins; guarded by the cache-wide lock so two processes
  // initializing one fresh dir don't interleave partial writes.
  auto lock = FileLock::try_acquire(gc_lock_path());
  if (!lock.has_value()) return;  // a peer is writing it right now
  const std::string tmp = manifest + ".tmp" + std::to_string(::getpid());
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return;
    out << "nnr-replicate-cache v1\n"
        << "cell_key_version=" << kCellKeyVersion << "\n";
    out.flush();
    if (!out) {
      fs::remove(tmp, ec);
      return;
    }
  }
  fs::rename(tmp, manifest, ec);
  if (ec) fs::remove(tmp, ec);
}

std::optional<core::RunResult> FsCacheBackend::load(const CellKey& key,
                                                    CacheStats* run,
                                                    bool count_miss) {
  if (!enabled()) return std::nullopt;
  const std::string path = path_for(key);
  std::error_code ec;
  const auto size = fs::file_size(path, ec);
  if (ec) {
    if (!count_miss) return std::nullopt;
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.misses;
    if (run != nullptr) ++run->misses;
    return std::nullopt;
  }
  try {
    core::RunResult result = serialize::load_run_result(path, key.hi, key.lo);
    touch(key);
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.hits;
    stats_.bytes_read += static_cast<std::int64_t>(size);
    if (run != nullptr) {
      ++run->hits;
      run->bytes_read += static_cast<std::int64_t>(size);
    }
    return result;
  } catch (const serialize::CheckpointError&) {
    if (!count_miss) return std::nullopt;
    // An entry evicted by a peer between our stat and our open is a plain
    // miss; only a file that is still present and unreadable is corrupt.
    std::error_code gone_ec;
    const bool vanished = !fs::exists(path, gone_ec);
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.misses;
    if (run != nullptr) ++run->misses;
    if (!vanished) {
      ++stats_.corrupt;
      if (run != nullptr) ++run->corrupt;
    }
    return std::nullopt;
  }
}

bool FsCacheBackend::has_entry(const CellKey& key) const {
  if (!enabled()) return false;
  std::error_code ec;
  return fs::exists(path_for(key), ec) && !ec;
}

std::optional<std::string> FsCacheBackend::load_bytes(const CellKey& key) {
  if (!enabled()) return std::nullopt;
  std::ifstream in(path_for(key), std::ios::binary);
  if (!in) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.misses;
    return std::nullopt;
  }
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  touch(key);
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.hits;
  stats_.bytes_read += static_cast<std::int64_t>(bytes.size());
  return bytes;
}

bool FsCacheBackend::store(const CellKey& key, const core::RunResult& result,
                           CacheStats* run) {
  if (!enabled()) return false;
  const std::string path = path_for(key);
  const std::string tmp = temp_name(path);
  std::error_code ec;
  ensure_dir_and_manifest();
  std::uint64_t bytes = 0;
  try {
    bytes = serialize::save_run_result(tmp, result, key.hi, key.lo);
  } catch (const serialize::CheckpointError&) {
    fs::remove(tmp, ec);
    return false;
  }
  fs::rename(tmp, path, ec);
  if (ec) {
    fs::remove(tmp, ec);
    return false;
  }
  touch(key);
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.stores;
    stats_.bytes_written += static_cast<std::int64_t>(bytes);
    if (run != nullptr) {
      ++run->stores;
      run->bytes_written += static_cast<std::int64_t>(bytes);
    }
  }
  if (budget_ > 0) {
    if (approx_bytes_.load(std::memory_order_relaxed) >= 0) {
      approx_bytes_.fetch_add(static_cast<std::int64_t>(bytes),
                              std::memory_order_relaxed);
    }
    maybe_evict();
  }
  return true;
}

bool FsCacheBackend::store_bytes(const CellKey& key, std::string_view bytes) {
  if (!enabled()) return false;
  const std::string path = path_for(key);
  const std::string tmp = temp_name(path);
  std::error_code ec;
  ensure_dir_and_manifest();
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out) {
      fs::remove(tmp, ec);
      return false;
    }
  }
  fs::rename(tmp, path, ec);
  if (ec) {
    fs::remove(tmp, ec);
    return false;
  }
  touch(key);
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.stores;
    stats_.bytes_written += static_cast<std::int64_t>(bytes.size());
  }
  if (budget_ > 0) {
    if (approx_bytes_.load(std::memory_order_relaxed) >= 0) {
      approx_bytes_.fetch_add(static_cast<std::int64_t>(bytes.size()),
                              std::memory_order_relaxed);
    }
    maybe_evict();
  }
  return true;
}

std::optional<CacheClaim> FsCacheBackend::try_claim(const CellKey& key) {
  if (!enabled()) return std::nullopt;
  ensure_dir_and_manifest();
  return wrap_lock(FileLock::try_acquire(lock_path_for(key)));
}

std::optional<CacheClaim> FsCacheBackend::claim(const CellKey& key) {
  if (!enabled()) return std::nullopt;
  ensure_dir_and_manifest();
  return wrap_lock(FileLock::acquire(lock_path_for(key)));
}

void FsCacheBackend::maybe_evict() {
  // Cheap pre-check: a running estimate of total entry bytes (seeded by one
  // scan, advanced by our own stores, reset to the authoritative total on
  // each eviction pass). Peers' stores are invisible to it, but they
  // advance their own estimates — whoever crosses the budget evicts.
  std::int64_t approx = approx_bytes_.load(std::memory_order_relaxed);
  if (approx < 0) {
    approx = total_size(list_entries(dir_));
    approx_bytes_.store(approx, std::memory_order_relaxed);
  }
  if (approx <= budget_) return;
  auto lock = FileLock::try_acquire(gc_lock_path());
  if (!lock.has_value()) return;  // a peer is already evicting
  evict_to_budget_locked(budget_, nullptr);
  if (journal_.size_bytes() > kJournalCompactBytes) compact_journal_locked();
}

void FsCacheBackend::evict_to_budget_locked(std::int64_t budget,
                                            GcStats* gc_stats) {
  std::vector<EntryInfo> entries = list_entries(dir_);
  std::int64_t total = total_size(entries);
  if (budget > 0 && total > budget) {
    rank_lru(entries, journal_.read());
    std::vector<EntryInfo> survivors;
    for (EntryInfo& victim : entries) {
      if (total <= budget) {
        survivors.push_back(std::move(victim));
        continue;
      }
      // In-flight keys (claim held by a trainer or a reader double-check)
      // are never evicted; holding the claim while removing closes the
      // race against a concurrent claimant of the same key.
      auto key_lock = FileLock::try_acquire(
          (victim.path.parent_path() / (victim.hex + ".lock")).string());
      if (!key_lock.has_value()) {
        survivors.push_back(std::move(victim));
        continue;
      }
      std::error_code ec;
      fs::remove(victim.path, ec);
      key_lock->unlink_and_release();
      if (!ec) {
        total -= victim.size;
        if (gc_stats != nullptr) {
          ++gc_stats->evicted;
          gc_stats->evicted_bytes += victim.size;
        }
      } else {
        survivors.push_back(std::move(victim));
      }
    }
    entries = std::move(survivors);
    sort_lru(entries);
  }
  approx_bytes_.store(total, std::memory_order_relaxed);
  if (gc_stats != nullptr) {
    gc_stats->entries = static_cast<std::int64_t>(entries.size());
    gc_stats->bytes = total;
  }
}

void FsCacheBackend::compact_journal_locked() const {
  // One record per surviving entry, oldest access first — semantically
  // identical to the full journal for LRU purposes.
  const std::int64_t size_at_read = journal_.size_bytes();
  std::vector<EntryInfo> entries = list_entries(dir_);
  rank_lru(entries, journal_.read());
  std::vector<std::string> compacted;
  compacted.reserve(entries.size());
  for (const EntryInfo& e : entries) compacted.push_back(e.hex);
  // Appends don't take the cache-wide lock, so a peer's hit may land while
  // we compact; skip the rewrite when the journal grew under us rather
  // than discard that record (a narrower window remains and costs at most
  // one entry's LRU rank — never correctness).
  if (journal_.size_bytes() != size_at_read) return;
  journal_.rewrite(compacted);
}

GcStats FsCacheBackend::gc() {
  GcStats result;
  if (!enabled()) return result;
  std::error_code ec;
  if (!fs::exists(dir_, ec)) return result;
  auto lock = FileLock::acquire(gc_lock_path());
  if (!lock.has_value()) return result;

  // Sweep orphaned temp files: a writer that died between open and rename
  // leaves `<entry>.tmp<pid>.<tid>` behind. A live pid means a store (or
  // journal compaction) is in flight right now — leave it alone.
  std::vector<fs::path> tmp_files;
  std::vector<fs::path> lock_files;
  for (fs::directory_iterator it(dir_, ec), end; !ec && it != end;
       it.increment(ec)) {
    const std::string name = it->path().filename().string();
    if (name.find(".tmp") != std::string::npos) {
      tmp_files.push_back(it->path());
    } else if (name.size() > 5 && name.substr(name.size() - 5) == ".lock" &&
               name != kGcLockName) {
      lock_files.push_back(it->path());
    }
  }
  for (const fs::path& tmp : tmp_files) {
    if (tmp_owner_alive(tmp.filename().string())) continue;
    fs::remove(tmp, ec);
    if (!ec) ++result.removed_tmp;
  }
  // Sweep unheld key lockfiles (left behind by finished or killed claims).
  // try_acquire + unlink-under-lock keeps this safe against concurrent
  // claimants — they detect the dead inode and re-create the file.
  for (const fs::path& path : lock_files) {
    auto key_lock = FileLock::try_acquire(path.string());
    if (!key_lock.has_value()) continue;  // held: a trainer owns this key
    key_lock->unlink_and_release();
    ++result.removed_locks;
  }

  evict_to_budget_locked(budget_, &result);
  compact_journal_locked();
  return result;
}

FsCacheBackend::Usage FsCacheBackend::usage() const {
  Usage usage;
  if (!enabled()) return usage;
  const std::vector<EntryInfo> entries = list_entries(dir_);
  usage.entries = static_cast<std::int64_t>(entries.size());
  usage.bytes = total_size(entries);
  return usage;
}

CacheStats FsCacheBackend::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace nnr::sched
