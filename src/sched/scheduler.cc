#include "sched/scheduler.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "runtime/thread_pool.h"
#include "sched/cell_key.h"
#include "sched/progress.h"

namespace nnr::sched {
namespace {

using Clock = std::chrono::steady_clock;

core::RunResult train_one(const Cell& cell, core::ReplicateIds ids) {
  if (cell.runner) return cell.runner(cell.job, ids);
  return core::train_replicate(cell.job, ids);
}

/// Progress/callback bookkeeping shared by the pool workers. Counters are
/// worker-local atomics (per-study caches are only safe to read after the
/// run), so a progress line never races the cache's internal stats updates.
class ProgressReporter {
 public:
  ProgressReporter(const RunOptions& opts, std::int64_t total)
      : opts_(opts), total_(total), start_(Clock::now()) {}

  void complete(std::size_t study, std::size_t cell, std::int64_t replicate,
                bool from_cache, bool was_trained) {
    if (from_cache) hits_.fetch_add(1, std::memory_order_relaxed);
    if (was_trained) trained_.fetch_add(1, std::memory_order_relaxed);
    std::int64_t done = 0;
    if (opts_.on_replicate) {
      // Claim the completion slot and fire the callback under one mutex, so
      // serialized callbacks see `done` strictly increasing 1..total.
      std::lock_guard<std::mutex> lock(callback_mu_);
      done = done_.fetch_add(1, std::memory_order_relaxed) + 1;
      ReplicateEvent event;
      event.study = study;
      event.cell = cell;
      event.replicate = replicate;
      event.from_cache = from_cache;
      event.done = done;
      event.total = total_;
      opts_.on_replicate(event);
    } else {
      done = done_.fetch_add(1, std::memory_order_relaxed) + 1;
    }
    if (opts_.progress) maybe_emit(done);
  }

 private:
  void maybe_emit(std::int64_t done) {
    const auto now = Clock::now();
    const auto elapsed_ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(now - start_)
            .count();
    const std::int64_t trained = trained_.load(std::memory_order_relaxed);
    const std::int64_t hits = hits_.load(std::memory_order_relaxed);
    // ETA from trained-cell throughput (see sched/progress.h): a warm
    // prefix of instant cache hits must not forecast a near-zero ETA for
    // a remainder that still has to train.
    char line[160];
    std::snprintf(line, sizeof(line),
                  "[study] %lld/%lld cells, trained=%lld, hits=%lld, eta=%s",
                  static_cast<long long>(done),
                  static_cast<long long>(total_),
                  static_cast<long long>(trained),
                  static_cast<long long>(hits),
                  format_eta(elapsed_ms, done, total_, trained).c_str());
    // Periodic, not per-replicate: one line a second plus the final one
    // (forced past the rate limit; the printer still suppresses an exact
    // duplicate of the previous line).
    printer_.emit(line, elapsed_ms, /*force=*/done == total_);
  }

  const RunOptions& opts_;
  const std::int64_t total_;
  const Clock::time_point start_;
  std::atomic<std::int64_t> done_{0};
  std::atomic<std::int64_t> hits_{0};
  std::atomic<std::int64_t> trained_{0};
  std::mutex callback_mu_;
  ProgressPrinter printer_;
};

}  // namespace

BatchResult run_batch(const std::vector<const StudyPlan*>& plans,
                      const RunOptions& opts) {
  struct WorkItem {
    std::size_t study;
    std::size_t cell;
    std::int64_t replicate;
    CellKey key{};
    bool keyed = false;  // cacheable cell: key computed, coalescing applies
  };

  BatchResult result;
  result.studies.resize(plans.size());
  std::vector<WorkItem> items;
  for (std::size_t p = 0; p < plans.size(); ++p) {
    const StudyPlan& plan = *plans[p];
    StudyResult& study = result.studies[p];
    study.cells.resize(plan.cells().size());
    for (std::size_t c = 0; c < plan.cells().size(); ++c) {
      const Cell& cell = plan.cells()[c];
      if (!cell.explicit_ids.empty() &&
          cell.explicit_ids.size() !=
              static_cast<std::size_t>(cell.replicates)) {
        throw std::invalid_argument(
            "cell '" + cell.id + "': explicit_ids holds " +
            std::to_string(cell.explicit_ids.size()) + " entries but " +
            std::to_string(cell.replicates) + " replicates are scheduled");
      }
      study.cells[c].resize(static_cast<std::size_t>(cell.replicates));
      for (std::int64_t r = 0; r < cell.replicates; ++r) {
        items.push_back({p, c, r, CellKey{}, false});
      }
    }
  }

  // Coalesce duplicate cacheable keys across the whole batch: the first
  // item with a key is its leader (scheduled normally); later duplicates
  // become followers, filled in-memory from the leader's slot. Safe by the
  // determinism contract — equal keys imply bitwise-equal results — and
  // what makes queuing overlapping studies cost one claim pass.
  std::vector<std::size_t> scheduled;
  scheduled.reserve(items.size());
  std::unordered_map<CellKey, std::size_t, CellKeyHash> leader_by_key;
  std::vector<std::vector<std::size_t>> followers(items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    WorkItem& item = items[i];
    const Cell& cell = plans[item.study]->cells()[item.cell];
    if (cell.cacheable()) {
      item.key = cell_key(cell, cell.ids_for(item.replicate));
      item.keyed = true;
      const auto [it, inserted] = leader_by_key.try_emplace(item.key, i);
      if (!inserted) {
        followers[it->second].push_back(i);
        continue;
      }
    }
    scheduled.push_back(i);
  }

  ProgressReporter progress(opts, static_cast<std::int64_t>(items.size()));
  const int max_workers = opts.threads < 0 ? 1 : opts.threads;
  std::vector<std::atomic<std::int64_t>> trained_per_study(plans.size());
  std::vector<std::atomic<std::int64_t>> coalesced_per_study(plans.size());

  const auto slot_of = [&](const WorkItem& item) -> core::RunResult& {
    return result.studies[item.study]
        .cells[item.cell][static_cast<std::size_t>(item.replicate)];
  };

  // Completes item i and fans its result out to its coalesced followers
  // (the worker that finished the leader owns the followers' slots too, so
  // no other thread ever touches them).
  const auto finish = [&](std::size_t i, bool from_cache, bool was_trained) {
    const WorkItem& item = items[i];
    progress.complete(item.study, item.cell, item.replicate, from_cache,
                      was_trained);
    for (const std::size_t f : followers[i]) {
      const WorkItem& dup = items[f];
      slot_of(dup) = slot_of(item);
      coalesced_per_study[dup.study].fetch_add(1, std::memory_order_relaxed);
      progress.complete(dup.study, dup.cell, dup.replicate,
                        /*from_cache=*/true, /*was_trained=*/false);
    }
  };

  const auto train_into = [&](const Cell& cell, const core::ReplicateIds& ids,
                              core::RunResult& slot, std::size_t study) {
    slot = train_one(cell, ids);
    trained_per_study[study].fetch_add(1, std::memory_order_relaxed);
  };

  std::mutex deferred_mu;
  std::vector<std::size_t> deferred;

  // Phase 1: every scheduled replicate is loaded, trained under its key's
  // claim, or deferred because a concurrent process holds the claim (it is
  // training that key right now — duplicating its work would waste the
  // whole point of a shared cache).
  runtime::ThreadPool::global().parallel_for(
      0, static_cast<std::int64_t>(scheduled.size()), 1,
      [&](std::int64_t i0, std::int64_t i1) {
        for (std::int64_t i = i0; i < i1; ++i) {
          const std::size_t idx = scheduled[static_cast<std::size_t>(i)];
          const WorkItem& item = items[idx];
          const Cell& cell = plans[item.study]->cells()[item.cell];
          const core::ReplicateIds ids = cell.ids_for(item.replicate);
          core::RunResult& slot = slot_of(item);
          CacheStats* run_stats = &result.studies[item.study].cache;
          if (opts.cache == nullptr || !item.keyed) {
            train_into(cell, ids, slot, item.study);
            finish(idx, false, true);
            continue;
          }
          const CellKey key = item.key;
          if (auto cached = opts.cache->load(key, run_stats)) {
            slot = std::move(*cached);
            finish(idx, true, false);
            continue;
          }
          if (auto claim = opts.cache->try_claim(key)) {
            // Double-check under the claim: a peer may have stored this key
            // between our miss and our claim. The replicate's one real miss
            // is already counted, so this load must not count another.
            if (auto cached = opts.cache->load(key, run_stats,
                                               /*count_miss=*/false)) {
              slot = std::move(*cached);
              finish(idx, true, false);
              continue;
            }
            train_into(cell, ids, slot, item.study);
            opts.cache->store(key, slot, run_stats);
            finish(idx, false, true);
          } else {
            std::lock_guard<std::mutex> lock(deferred_mu);
            deferred.push_back(idx);
          }
        }
      },
      max_workers);

  // Phase 2: contended keys. A blocking claim returns once the peer's
  // training finishes (store -> load hit) or its holder died (miss ->
  // train it ourselves). Claims released by the kernel on process death —
  // or by the daemon on disconnect/lease expiry — mean a stale holder can
  // never wedge this loop.
  for (const std::size_t idx : deferred) {
    ++result.studies[items[idx].study].deferred;
  }
  if (!deferred.empty()) {
    runtime::ThreadPool::global().parallel_for(
        0, static_cast<std::int64_t>(deferred.size()), 1,
        [&](std::int64_t d0, std::int64_t d1) {
          for (std::int64_t d = d0; d < d1; ++d) {
            const std::size_t idx = deferred[static_cast<std::size_t>(d)];
            const WorkItem& item = items[idx];
            const Cell& cell = plans[item.study]->cells()[item.cell];
            const core::ReplicateIds ids = cell.ids_for(item.replicate);
            core::RunResult& slot = slot_of(item);
            CacheStats* run_stats = &result.studies[item.study].cache;
            const CellKey key = item.key;
            auto claim = opts.cache->claim(key);
            // The deferral's original miss is already counted (phase 1).
            if (auto cached = opts.cache->load(key, run_stats,
                                               /*count_miss=*/false)) {
              slot = std::move(*cached);
              finish(idx, true, false);
              continue;
            }
            train_into(cell, ids, slot, item.study);
            if (claim.has_value()) {
              opts.cache->store(key, slot, run_stats);
            }
            finish(idx, false, true);
          }
        },
        max_workers);
  }

  for (std::size_t p = 0; p < plans.size(); ++p) {
    StudyResult& study = result.studies[p];
    study.trained = trained_per_study[p].load();
    study.coalesced = coalesced_per_study[p].load();
    result.trained += study.trained;
    result.deferred += study.deferred;
    result.coalesced += study.coalesced;
    result.cache.hits += study.cache.hits;
    result.cache.misses += study.cache.misses;
    result.cache.corrupt += study.cache.corrupt;
    result.cache.stores += study.cache.stores;
    result.cache.bytes_read += study.cache.bytes_read;
    result.cache.bytes_written += study.cache.bytes_written;
  }
  return result;
}

StudyResult run_plan(const StudyPlan& plan, const RunOptions& opts) {
  BatchResult batch = run_batch({&plan}, opts);
  return std::move(batch.studies[0]);
}

core::TextTable cache_stats_table(const StudyResult& result) {
  core::TextTable table({"Counter", "Value"});
  const auto row = [&table](const char* name, std::int64_t v) {
    table.add_row({name, std::to_string(v)});
  };
  row("hits", result.cache.hits);
  row("misses", result.cache.misses);
  row("corrupt", result.cache.corrupt);
  row("stores", result.cache.stores);
  row("bytes_read", result.cache.bytes_read);
  row("bytes_written", result.cache.bytes_written);
  row("trained", result.trained);
  return table;
}

std::string cache_stats_line(const StudyResult& result) {
  const auto n = [](std::int64_t v) { return std::to_string(v); };
  return "hits=" + n(result.cache.hits) + " misses=" + n(result.cache.misses) +
         " stores=" + n(result.cache.stores) +
         " corrupt=" + n(result.cache.corrupt) +
         " read=" + n(result.cache.bytes_read) +
         "B written=" + n(result.cache.bytes_written) +
         "B trained=" + n(result.trained);
}

}  // namespace nnr::sched
