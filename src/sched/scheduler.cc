#include "sched/scheduler.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <stdexcept>

#include "runtime/thread_pool.h"
#include "sched/cell_key.h"

namespace nnr::sched {
namespace {

using Clock = std::chrono::steady_clock;

core::RunResult train_one(const Cell& cell, core::ReplicateIds ids) {
  if (cell.runner) return cell.runner(cell.job, ids);
  return core::train_replicate(cell.job, ids);
}

/// Progress/callback bookkeeping shared by the pool workers. Counters are
/// worker-local atomics (result.cache is only safe to read after the run),
/// so a progress line never races the cache's internal stats updates.
class ProgressReporter {
 public:
  ProgressReporter(const RunOptions& opts, std::int64_t total)
      : opts_(opts), total_(total), start_(Clock::now()) {}

  void complete(std::size_t cell, std::int64_t replicate, bool from_cache,
                bool was_trained) {
    if (from_cache) hits_.fetch_add(1, std::memory_order_relaxed);
    if (was_trained) trained_.fetch_add(1, std::memory_order_relaxed);
    std::int64_t done = 0;
    if (opts_.on_replicate) {
      // Claim the completion slot and fire the callback under one mutex, so
      // serialized callbacks see `done` strictly increasing 1..total.
      std::lock_guard<std::mutex> lock(callback_mu_);
      done = done_.fetch_add(1, std::memory_order_relaxed) + 1;
      ReplicateEvent event;
      event.cell = cell;
      event.replicate = replicate;
      event.from_cache = from_cache;
      event.done = done;
      event.total = total_;
      opts_.on_replicate(event);
    } else {
      done = done_.fetch_add(1, std::memory_order_relaxed) + 1;
    }
    if (opts_.progress) maybe_emit(done);
  }

 private:
  void maybe_emit(std::int64_t done) {
    const auto now = Clock::now();
    const auto elapsed_ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(now - start_)
            .count();
    {
      std::lock_guard<std::mutex> lock(emit_mu_);
      // Periodic, not per-replicate: one line a second plus the final one.
      if (done != total_ && elapsed_ms - last_emit_ms_ < 1000) return;
      last_emit_ms_ = elapsed_ms;
    }
    char eta[32];
    if (done > 0 && done < total_) {
      const double eta_s = static_cast<double>(elapsed_ms) / 1000.0 /
                           static_cast<double>(done) *
                           static_cast<double>(total_ - done);
      std::snprintf(eta, sizeof(eta), "%.1fs", eta_s);
    } else {
      std::snprintf(eta, sizeof(eta), "%s", done == total_ ? "0s" : "?");
    }
    std::fprintf(stderr,
                 "[study] %lld/%lld cells, trained=%lld, hits=%lld, eta=%s\n",
                 static_cast<long long>(done),
                 static_cast<long long>(total_),
                 static_cast<long long>(trained_.load(std::memory_order_relaxed)),
                 static_cast<long long>(hits_.load(std::memory_order_relaxed)),
                 eta);
  }

  const RunOptions& opts_;
  const std::int64_t total_;
  const Clock::time_point start_;
  std::atomic<std::int64_t> done_{0};
  std::atomic<std::int64_t> hits_{0};
  std::atomic<std::int64_t> trained_{0};
  std::mutex callback_mu_;
  std::mutex emit_mu_;
  std::int64_t last_emit_ms_ = -1000000;
};

}  // namespace

StudyResult run_plan(const StudyPlan& plan, const RunOptions& opts) {
  struct WorkItem {
    std::size_t cell;
    std::int64_t replicate;
  };
  std::vector<WorkItem> items;
  StudyResult result;
  result.cells.resize(plan.cells().size());
  for (std::size_t c = 0; c < plan.cells().size(); ++c) {
    const Cell& cell = plan.cells()[c];
    if (!cell.explicit_ids.empty() &&
        cell.explicit_ids.size() !=
            static_cast<std::size_t>(cell.replicates)) {
      throw std::invalid_argument(
          "cell '" + cell.id + "': explicit_ids holds " +
          std::to_string(cell.explicit_ids.size()) + " entries but " +
          std::to_string(cell.replicates) + " replicates are scheduled");
    }
    result.cells[c].resize(static_cast<std::size_t>(cell.replicates));
    for (std::int64_t r = 0; r < cell.replicates; ++r) {
      items.push_back({c, r});
    }
  }

  std::atomic<std::int64_t> trained{0};
  ProgressReporter progress(opts, static_cast<std::int64_t>(items.size()));
  std::mutex deferred_mu;
  std::vector<std::int64_t> deferred;
  const int max_workers = opts.threads < 0 ? 1 : opts.threads;

  const auto train_into = [&](const Cell& cell, const core::ReplicateIds& ids,
                              core::RunResult& slot) {
    slot = train_one(cell, ids);
    trained.fetch_add(1, std::memory_order_relaxed);
  };

  // Phase 1: every replicate is loaded, trained under its key's claim, or
  // deferred because a concurrent process holds the claim (it is training
  // that key right now — duplicating its work would waste the whole point
  // of a shared cache).
  runtime::ThreadPool::global().parallel_for(
      0, static_cast<std::int64_t>(items.size()), 1,
      [&](std::int64_t i0, std::int64_t i1) {
        for (std::int64_t i = i0; i < i1; ++i) {
          const WorkItem& item = items[static_cast<std::size_t>(i)];
          const Cell& cell = plan.cells()[item.cell];
          const core::ReplicateIds ids = cell.ids_for(item.replicate);
          core::RunResult& slot =
              result.cells[item.cell][static_cast<std::size_t>(item.replicate)];
          if (opts.cache == nullptr || !cell.cacheable()) {
            train_into(cell, ids, slot);
            progress.complete(item.cell, item.replicate, false, true);
            continue;
          }
          const CellKey key = cell_key(cell, ids);
          if (auto cached = opts.cache->load(key, &result.cache)) {
            slot = std::move(*cached);
            progress.complete(item.cell, item.replicate, true, false);
            continue;
          }
          if (auto claim = opts.cache->try_claim(key)) {
            // Double-check under the claim: a peer may have stored this key
            // between our miss and our claim. The replicate's one real miss
            // is already counted, so this load must not count another.
            if (auto cached = opts.cache->load(key, &result.cache,
                                               /*count_miss=*/false)) {
              slot = std::move(*cached);
              progress.complete(item.cell, item.replicate, true, false);
              continue;
            }
            train_into(cell, ids, slot);
            opts.cache->store(key, slot, &result.cache);
            progress.complete(item.cell, item.replicate, false, true);
          } else {
            std::lock_guard<std::mutex> lock(deferred_mu);
            deferred.push_back(i);
          }
        }
      },
      max_workers);

  // Phase 2: contended keys. A blocking claim returns once the peer's
  // training finishes (store -> load hit) or its process died (miss ->
  // train it ourselves). Claims released by the kernel on process death
  // mean a stale holder can never wedge this loop.
  result.deferred = static_cast<std::int64_t>(deferred.size());
  if (!deferred.empty()) {
    runtime::ThreadPool::global().parallel_for(
        0, static_cast<std::int64_t>(deferred.size()), 1,
        [&](std::int64_t d0, std::int64_t d1) {
          for (std::int64_t d = d0; d < d1; ++d) {
            const WorkItem& item =
                items[static_cast<std::size_t>(deferred[static_cast<std::size_t>(d)])];
            const Cell& cell = plan.cells()[item.cell];
            const core::ReplicateIds ids = cell.ids_for(item.replicate);
            core::RunResult& slot =
                result.cells[item.cell]
                            [static_cast<std::size_t>(item.replicate)];
            const CellKey key = cell_key(cell, ids);
            auto claim = opts.cache->claim(key);
            // The deferral's original miss is already counted (phase 1).
            if (auto cached = opts.cache->load(key, &result.cache,
                                               /*count_miss=*/false)) {
              slot = std::move(*cached);
              progress.complete(item.cell, item.replicate, true, false);
              continue;
            }
            train_into(cell, ids, slot);
            if (claim.has_value()) {
              opts.cache->store(key, slot, &result.cache);
            }
            progress.complete(item.cell, item.replicate, false, true);
          }
        },
        max_workers);
  }

  result.trained = trained.load();
  return result;
}

core::TextTable cache_stats_table(const StudyResult& result) {
  core::TextTable table({"Counter", "Value"});
  const auto row = [&table](const char* name, std::int64_t v) {
    table.add_row({name, std::to_string(v)});
  };
  row("hits", result.cache.hits);
  row("misses", result.cache.misses);
  row("corrupt", result.cache.corrupt);
  row("stores", result.cache.stores);
  row("bytes_read", result.cache.bytes_read);
  row("bytes_written", result.cache.bytes_written);
  row("trained", result.trained);
  return table;
}

std::string cache_stats_line(const StudyResult& result) {
  const auto n = [](std::int64_t v) { return std::to_string(v); };
  return "hits=" + n(result.cache.hits) + " misses=" + n(result.cache.misses) +
         " stores=" + n(result.cache.stores) +
         " corrupt=" + n(result.cache.corrupt) +
         " read=" + n(result.cache.bytes_read) +
         "B written=" + n(result.cache.bytes_written) +
         "B trained=" + n(result.trained);
}

}  // namespace nnr::sched
