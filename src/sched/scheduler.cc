#include "sched/scheduler.h"

#include <atomic>
#include <stdexcept>

#include "runtime/thread_pool.h"
#include "sched/cell_key.h"

namespace nnr::sched {
namespace {

core::RunResult train_one(const Cell& cell, core::ReplicateIds ids) {
  if (cell.runner) return cell.runner(cell.job, ids);
  return core::train_replicate(cell.job, ids);
}

}  // namespace

StudyResult run_plan(const StudyPlan& plan, const RunOptions& opts) {
  struct WorkItem {
    std::size_t cell;
    std::int64_t replicate;
  };
  std::vector<WorkItem> items;
  StudyResult result;
  result.cells.resize(plan.cells().size());
  for (std::size_t c = 0; c < plan.cells().size(); ++c) {
    const Cell& cell = plan.cells()[c];
    if (!cell.explicit_ids.empty() &&
        cell.explicit_ids.size() !=
            static_cast<std::size_t>(cell.replicates)) {
      throw std::invalid_argument(
          "cell '" + cell.id + "': explicit_ids holds " +
          std::to_string(cell.explicit_ids.size()) + " entries but " +
          std::to_string(cell.replicates) + " replicates are scheduled");
    }
    result.cells[c].resize(static_cast<std::size_t>(cell.replicates));
    for (std::int64_t r = 0; r < cell.replicates; ++r) {
      items.push_back({c, r});
    }
  }

  const CacheStats before =
      opts.cache != nullptr ? opts.cache->stats() : CacheStats{};
  std::atomic<std::int64_t> trained{0};
  const int max_workers = opts.threads < 0 ? 1 : opts.threads;
  runtime::ThreadPool::global().parallel_for(
      0, static_cast<std::int64_t>(items.size()), 1,
      [&](std::int64_t i0, std::int64_t i1) {
        for (std::int64_t i = i0; i < i1; ++i) {
          const WorkItem& item = items[static_cast<std::size_t>(i)];
          const Cell& cell = plan.cells()[item.cell];
          const core::ReplicateIds ids = cell.ids_for(item.replicate);
          core::RunResult& slot =
              result.cells[item.cell][static_cast<std::size_t>(item.replicate)];
          if (opts.cache != nullptr && cell.cacheable()) {
            const CellKey key = cell_key(cell, ids);
            if (auto cached = opts.cache->load(key)) {
              slot = std::move(*cached);
              continue;
            }
            slot = train_one(cell, ids);
            trained.fetch_add(1, std::memory_order_relaxed);
            opts.cache->store(key, slot);
          } else {
            slot = train_one(cell, ids);
            trained.fetch_add(1, std::memory_order_relaxed);
          }
        }
      },
      max_workers);

  result.trained = trained.load();
  if (opts.cache != nullptr) {
    const CacheStats after = opts.cache->stats();
    result.cache.hits = after.hits - before.hits;
    result.cache.misses = after.misses - before.misses;
    result.cache.corrupt = after.corrupt - before.corrupt;
    result.cache.stores = after.stores - before.stores;
    result.cache.bytes_read = after.bytes_read - before.bytes_read;
    result.cache.bytes_written = after.bytes_written - before.bytes_written;
  }
  return result;
}

core::TextTable cache_stats_table(const StudyResult& result) {
  core::TextTable table({"Counter", "Value"});
  const auto row = [&table](const char* name, std::int64_t v) {
    table.add_row({name, std::to_string(v)});
  };
  row("hits", result.cache.hits);
  row("misses", result.cache.misses);
  row("corrupt", result.cache.corrupt);
  row("stores", result.cache.stores);
  row("bytes_read", result.cache.bytes_read);
  row("bytes_written", result.cache.bytes_written);
  row("trained", result.trained);
  return table;
}

std::string cache_stats_line(const StudyResult& result) {
  const auto n = [](std::int64_t v) { return std::to_string(v); };
  return "hits=" + n(result.cache.hits) + " misses=" + n(result.cache.misses) +
         " stores=" + n(result.cache.stores) +
         " corrupt=" + n(result.cache.corrupt) +
         " read=" + n(result.cache.bytes_read) +
         "B written=" + n(result.cache.bytes_written) +
         "B trained=" + n(result.trained);
}

}  // namespace nnr::sched
