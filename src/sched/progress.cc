#include "sched/progress.h"

#include <cstdio>

namespace nnr::sched {

std::string format_eta(std::int64_t elapsed_ms, std::int64_t done,
                       std::int64_t total, std::int64_t trained) {
  if (done >= total) return "0s";
  if (done <= 0) return "?";
  const auto remaining = static_cast<double>(total - done);
  // Trained-cell throughput when available: hits complete in microseconds,
  // so elapsed wall time is, to first order, all training time — dividing
  // it by hit-dominated `done` would forecast a near-zero ETA for a
  // remainder that still has to train.
  const double basis = trained > 0 ? static_cast<double>(trained)
                                   : static_cast<double>(done);
  const double eta_s =
      static_cast<double>(elapsed_ms) / 1000.0 / basis * remaining;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1fs", eta_s);
  return buf;
}

bool ProgressPrinter::emit(const std::string& line, std::int64_t elapsed_ms,
                           bool force) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!force && elapsed_ms - last_emit_ms_ < min_interval_ms_) return false;
  if (line == last_line_) return false;  // no identical consecutive lines
  last_emit_ms_ = elapsed_ms;
  last_line_ = line;
  std::fprintf(stderr, "%s\n", line.c_str());
  return true;
}

}  // namespace nnr::sched
