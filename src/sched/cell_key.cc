#include "sched/cell_key.h"

#include <cstdio>
#include <cstring>
#include <string_view>

namespace nnr::sched {
namespace {

/// Two independent FNV-1a lanes over the same tagged field stream. Lane B
/// additionally xorshift-mixes each byte position so the lanes decorrelate;
/// 128 bits total makes accidental collisions across a cache directory
/// negligible.
class KeyBuilder {
 public:
  void bytes(const void* data, std::size_t n) noexcept {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      a_ = (a_ ^ p[i]) * 0x100000001b3ull;
      std::uint64_t x = b_ ^ (p[i] + 0x9E3779B97F4A7C15ull);
      x ^= x >> 30;
      x *= 0xBF58476D1CE4E5B9ull;
      x ^= x >> 27;
      b_ = x;
    }
  }

  void str(std::string_view tag, std::string_view v) noexcept {
    const std::uint64_t tag_len = tag.size();
    const std::uint64_t val_len = v.size();
    bytes(&tag_len, sizeof(tag_len));
    bytes(tag.data(), tag.size());
    bytes(&val_len, sizeof(val_len));
    bytes(v.data(), v.size());
  }

  void u64(std::string_view tag, std::uint64_t v) noexcept {
    str(tag, {reinterpret_cast<const char*>(&v), sizeof(v)});
  }
  void i64(std::string_view tag, std::int64_t v) noexcept {
    u64(tag, static_cast<std::uint64_t>(v));
  }
  void f32(std::string_view tag, float v) noexcept {
    std::uint32_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    u64(tag, bits);
  }
  void flag(std::string_view tag, bool v) noexcept {
    u64(tag, v ? 1u : 0u);
  }

  [[nodiscard]] CellKey finish() const noexcept { return {a_, b_}; }

 private:
  std::uint64_t a_ = 0xcbf29ce484222325ull;
  std::uint64_t b_ = 0x6A09E667F3BCC909ull;
};

void hash_toggles(KeyBuilder& k, const core::ChannelToggles& t) {
  k.flag("init_varies", t.init_varies);
  k.flag("shuffle_varies", t.shuffle_varies);
  k.flag("augment_varies", t.augment_varies);
  k.flag("dropout_varies", t.dropout_varies);
  k.flag("scheduler_varies", t.scheduler_varies);
  k.i64("determinism_mode", static_cast<std::int64_t>(t.mode));
}

}  // namespace

std::string CellKey::hex() const {
  char buf[33];
  std::snprintf(buf, sizeof(buf), "%016llx%016llx",
                static_cast<unsigned long long>(hi),
                static_cast<unsigned long long>(lo));
  return buf;
}

CellKey cell_key(const Cell& cell, core::ReplicateIds ids) {
  KeyBuilder k;
  k.i64("version", kCellKeyVersion);
  k.str("task_id", cell.task_id);
  k.str("optimizer_id", cell.optimizer_id);
  k.str("runner_id", cell.runner_id);

  const core::TrainJob& job = cell.job;
  if (job.dataset != nullptr) {
    k.str("dataset", job.dataset->name);
    k.i64("train_n", job.dataset->train.size());
    k.i64("test_n", job.dataset->test.size());
    k.i64("classes", job.dataset->train.num_classes);
  }

  const core::TrainRecipe& r = job.recipe;
  k.i64("epochs", r.epochs);
  k.i64("batch_size", r.batch_size);
  k.f32("base_lr", r.base_lr);
  k.f32("momentum", r.momentum);
  k.i64("schedule", static_cast<std::int64_t>(r.schedule));
  k.i64("decay_every", r.decay_every);
  k.flag("augment", r.augment);
  k.flag("random_crop", r.augment_config.random_crop);
  k.i64("crop_pad", r.augment_config.crop_pad);
  k.flag("horizontal_flip", r.augment_config.horizontal_flip);
  k.f32("dropout_rate", r.dropout_rate);

  if (job.toggles_override.has_value()) {
    k.flag("toggles_override", true);
    hash_toggles(k, *job.toggles_override);
  } else {
    k.flag("toggles_override", false);
    k.i64("variant", static_cast<std::int64_t>(job.variant));
  }
  k.flag("fixed_identity_order", job.fixed_identity_order);
  k.u64("base_seed", job.base_seed);
  if (job.warm_start_weights.has_value()) {
    k.flag("warm_start", true);
    k.i64("warm_n", static_cast<std::int64_t>(job.warm_start_weights->size()));
    k.bytes(job.warm_start_weights->data(),
            job.warm_start_weights->size() * sizeof(float));
  } else {
    k.flag("warm_start", false);
  }

  k.str("device", job.device.name);
  k.i64("device_kind", static_cast<std::int64_t>(job.device.kind));
  k.i64("device_arch", static_cast<std::int64_t>(job.device.arch));
  k.i64("cuda_cores", job.device.cuda_cores);
  k.i64("tensor_cores", job.device.tensor_cores);

  k.u64("replicate_algo", ids.algo);
  k.u64("replicate_impl", ids.impl);
  return k.finish();
}

}  // namespace nnr::sched
