// The replicate-cache backend seam.
//
// The scheduler (sched/scheduler.h) coordinates a study grid through five
// verbs — load, store, try_claim, claim, gc — and never cares where the
// bytes live. CacheBackend is that contract; today's implementations are
//
//   FsCacheBackend      (sched/fs_cache_backend.h)      a shared directory,
//                       claims are flock(2) locks the kernel releases when
//                       the holder dies;
//   RemoteCacheBackend  (sched/remote_cache_backend.h)  a TCP client of the
//                       nnr_cached daemon, claims are TTL leases kept alive
//                       by heartbeats and released on disconnect — the
//                       remote analogue of flock's release-on-death.
//
// Claim lifecycle (identical across backends; see ARCHITECTURE.md for the
// sequence diagrams):
//
//   free --try_claim--> held --release/drop--> free
//     \                   \--holder dies-----> free   (kernel / lease TTL)
//      \--try_claim while held--> refused (caller defers, then claim())
//
// Failure policy, shared by every backend: the cache is an accelerator,
// never a correctness dependency. A miss, a corrupt entry, an unreachable
// daemon, a failed store — all degrade to "train it locally"; no cache
// state can change a study's results, only its cost. Corrupt entries are
// detected by the consumer (checksum + embedded-key verification in
// serialize/run_result.h), counted in CacheStats::corrupt, and treated as
// misses.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "core/trainer.h"
#include "sched/cell_key.h"

namespace nnr::sched {

/// Cache activity counters (bytes are serialized entry sizes). Backends
/// keep one lifetime instance and additionally apply the same deltas to a
/// caller-supplied per-run instance, so per-run numbers stay exact even
/// when several runs share one backend (or one cache dir / daemon).
struct CacheStats {
  std::int64_t hits = 0;
  std::int64_t misses = 0;   // absent entries (corrupt ones count both)
  std::int64_t corrupt = 0;  // present but unreadable -> recomputed
  std::int64_t stores = 0;
  std::int64_t bytes_read = 0;
  std::int64_t bytes_written = 0;
};

/// What one gc() / eviction pass did, plus the cache's state afterwards.
struct GcStats {
  std::int64_t removed_tmp = 0;    // orphaned temp files swept
  std::int64_t removed_locks = 0;  // unheld lockfiles swept
  std::int64_t evicted = 0;        // entries evicted for the budget
  std::int64_t evicted_bytes = 0;
  std::int64_t entries = 0;  // entries remaining after the pass
  std::int64_t bytes = 0;    // bytes remaining after the pass
};

/// A held claim on one key's training slot, whatever the backend: an flock
/// fd, a remote lease, or a local no-op granted by a degraded remote
/// backend so its caller recomputes instead of deadlocking. Move-only;
/// releasing is destroying (or an explicit release()). A claim must not
/// outlive the backend that granted it.
class CacheClaim {
 public:
  /// Backend-private payload; its destructor performs the release.
  class Impl {
   public:
    virtual ~Impl() = default;
  };

  CacheClaim() = default;
  explicit CacheClaim(std::unique_ptr<Impl> impl) : impl_(std::move(impl)) {}
  CacheClaim(CacheClaim&&) = default;
  CacheClaim& operator=(CacheClaim&&) = default;
  CacheClaim(const CacheClaim&) = delete;
  CacheClaim& operator=(const CacheClaim&) = delete;

  [[nodiscard]] bool held() const noexcept { return impl_ != nullptr; }
  void release() { impl_.reset(); }

 private:
  std::unique_ptr<Impl> impl_;
};

class CacheBackend {
 public:
  virtual ~CacheBackend() = default;

  /// The result stored under `key`, or nullopt (miss). Corruption of any
  /// kind is a miss, never an exception. When `run` is non-null the same
  /// counter deltas are applied to it — this is how the scheduler keeps
  /// exact per-run stats while several runs share one cache.
  /// `count_miss = false` suppresses miss/corrupt counting (hits still
  /// count): the scheduler's revalidation loads — under a fresh claim, or
  /// after waiting out a peer's claim — would otherwise double-count the
  /// one real miss already recorded for that replicate.
  [[nodiscard]] virtual std::optional<core::RunResult> load(
      const CellKey& key, CacheStats* run = nullptr,
      bool count_miss = true) = 0;

  /// Persists `result` under `key`. Returns false on any failure and then
  /// counts nothing — a failed store is dropped silently (the next reader
  /// misses and recomputes).
  virtual bool store(const CellKey& key, const core::RunResult& result,
                     CacheStats* run = nullptr) = 0;

  /// Claims `key`'s training slot (non-blocking). nullopt means another
  /// worker or process holds the claim — it is training this key right
  /// now. Holding the claim while training and storing is what makes
  /// concurrent studies partition a shared grid.
  [[nodiscard]] virtual std::optional<CacheClaim> try_claim(
      const CellKey& key) = 0;

  /// Blocking claim — returns once the current holder finishes or died
  /// (kernel lock release / lease expiry). nullopt only on I/O failure
  /// (treat as "train it yourself").
  [[nodiscard]] virtual std::optional<CacheClaim> claim(const CellKey& key) = 0;

  /// Housekeeping pass: sweep orphans, evict to the configured budget,
  /// compact bookkeeping. Safe to run concurrently with live studies.
  virtual GcStats gc() = 0;

  /// Snapshot of the lifetime counters since construction.
  [[nodiscard]] virtual CacheStats stats() const = 0;

  /// Human-readable identity for logs ("dir:/path" / "tcp://host:port").
  [[nodiscard]] virtual std::string describe() const = 0;
};

/// Where a run's cache lives. `url` non-empty selects the remote backend
/// (and `dir` is ignored); otherwise `dir` non-empty selects the
/// filesystem backend; both empty means no cache. A comma-separated `url`
/// (tcp://h1:p1,tcp://h2:p2,...) selects the sharded tier
/// (sched/sharded_cache_backend.h) routing keys across the listed daemons.
struct CacheConfig {
  std::string dir;           // NNR_CACHE_DIR / --cache-dir
  std::string url;           // NNR_CACHE_URL / --cache-url (tcp://host:port
                             // or a comma-separated shard map)
  std::int64_t budget = 0;   // NNR_CACHE_BUDGET / --cache-budget; 0 = none
};

/// Environment-derived config: NNR_CACHE_DIR, NNR_CACHE_URL,
/// NNR_CACHE_BUDGET (invalid/unset budget means unlimited).
[[nodiscard]] CacheConfig cache_config_from_env();

/// Builds the backend `config` selects, or nullptr when the config
/// disables caching. Throws std::invalid_argument on a malformed url.
[[nodiscard]] std::unique_ptr<CacheBackend> make_cache_backend(
    const CacheConfig& config);

class RemoteCacheBackend;

/// Remote backend with the same environment-derived options
/// (NNR_CACHE_LEASE_MS) make_cache_backend applies — for callers that need
/// the concrete type's fleet-queue RPCs (nnr_run --submit/--worker), not
/// just the CacheBackend interface. Throws std::invalid_argument on a
/// malformed url.
[[nodiscard]] std::unique_ptr<RemoteCacheBackend> make_remote_cache_backend(
    const std::string& url);

}  // namespace nnr::sched
