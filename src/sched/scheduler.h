// The cell scheduler: runs every replicate of every cell of a StudyPlan on
// the shared runtime::ThreadPool. The (cell, replicate) grid is flattened so
// the pool stays saturated even when a single cell has fewer replicates than
// workers; kernel-level parallel_for calls inside each replicate run inline
// on the worker that owns it (the pool is nest-safe), so the pool is never
// oversubscribed. Host scheduling is invisible to the simulation — results
// are bitwise identical for any worker count or cache state.
#pragma once

#include <cstdint>
#include <vector>

#include "core/table.h"
#include "sched/replicate_cache.h"
#include "sched/study_plan.h"

namespace nnr::sched {

struct RunOptions {
  /// Host-thread cap for this run: > 0 caps the fan-out below the shared
  /// pool's width, 0 uses the full pool (NNR_THREADS, else the hardware
  /// thread count), < 0 runs serially. A cap cannot widen the pool; a tool
  /// that wants its --threads flag to override NNR_THREADS (the documented
  /// flag > env > hardware precedence) resizes the pool first, as
  /// tools/nnr_run.cpp does.
  int threads = 0;
  /// When set, cacheable replicates are served from / stored into this
  /// cache. nullptr trains everything.
  ReplicateCache* cache = nullptr;
};

struct StudyResult {
  /// results[c][r] is replicate r of plan.cells()[c], in replicate order —
  /// index semantics identical to core::run_replicates.
  std::vector<std::vector<core::RunResult>> cells;
  /// This run's cache activity (all zeros when no cache was configured).
  CacheStats cache;
  /// Replicates actually trained in-process (= cache misses + uncacheable
  /// cells). A warm-cache rerun of a fully cacheable plan reports 0.
  std::int64_t trained = 0;
};

/// Runs `plan` to completion. Throws std::invalid_argument when a cell's
/// explicit_ids is non-empty but does not match its replicate count. Safe
/// to call with the same cache from sequential studies; not with the same
/// cache from concurrent threads (stats deltas would interleave).
[[nodiscard]] StudyResult run_plan(const StudyPlan& plan,
                                   const RunOptions& opts = {});

/// One-row-per-counter table of a run's cache statistics, for
/// report::Exporter / stdout.
[[nodiscard]] core::TextTable cache_stats_table(const StudyResult& result);

/// One-line rendering of the same counters ("hits=... trained=...") — the
/// single format every tool/bench logs, so scripts can grep one shape.
[[nodiscard]] std::string cache_stats_line(const StudyResult& result);

}  // namespace nnr::sched
