// The cell scheduler: runs every replicate of every cell of one StudyPlan —
// or a whole batch of plans — on the shared runtime::ThreadPool. The
// (cell, replicate) grid is flattened so the pool stays saturated even when
// a single cell has fewer replicates than workers; kernel-level
// parallel_for calls inside each replicate run inline on the worker that
// owns it (the pool is nest-safe), so the pool is never oversubscribed.
// Host scheduling is invisible to the simulation — results are bitwise
// identical for any worker count, cache state, or batch composition.
//
// Concurrent studies: when a cache backend is configured
// (sched/cache_backend.h — filesystem or remote), the scheduler claims each
// missing key before training it, so N processes (or threads) sharing one
// cache partition the grid — a contended key is deferred, then served from
// the peer's store once its claim releases (training it locally only if the
// peer died without storing). Because every completed replicate is durably
// keyed, an interrupted study resumed against the same cache trains exactly
// the remaining replicates and produces bitwise-identical results.
//
// Batched submission: run_batch takes several plans at once and coalesces
// duplicate cacheable CellKeys across the whole batch before scheduling —
// fig1 and table2 share most of their V100 cells, so queuing them together
// costs one claim pass and one training per unique key; the duplicates are
// filled in-memory from the leader's result (bit-identical by the
// determinism contract) and counted as `coalesced`, not trained or hit.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/table.h"
#include "sched/cache_backend.h"
#include "sched/study_plan.h"

namespace nnr::sched {

/// One completed replicate, as seen by RunOptions::on_replicate.
struct ReplicateEvent {
  std::size_t study = 0;       // index into the batch's plan list (0 for
                               // run_plan)
  std::size_t cell = 0;        // index into that plan's cells()
  std::int64_t replicate = 0;  // replicate index within that cell
  bool from_cache = false;     // served (cache hit or coalesced duplicate)
                               // vs trained here
  std::int64_t done = 0;       // replicates completed so far (this one incl.)
  std::int64_t total = 0;      // replicates in the whole batch
};

struct RunOptions {
  /// Host-thread cap for this run: > 0 caps the fan-out below the shared
  /// pool's width, 0 uses the full pool (NNR_THREADS, else the hardware
  /// thread count), < 0 runs serially. A cap cannot widen the pool; a tool
  /// that wants its --threads flag to override NNR_THREADS (the documented
  /// flag > env > hardware precedence) resizes the pool first, as
  /// tools/nnr_run.cpp does.
  int threads = 0;
  /// When set, cacheable replicates are served from / stored into this
  /// backend (sched/cache_backend.h). nullptr trains everything.
  CacheBackend* cache = nullptr;
  /// Called after each replicate completes (loaded, trained, or filled
  /// from a coalesced leader). Invocations are serialized (one at a time),
  /// but arrive from pool worker threads, not the caller's thread.
  std::function<void(const ReplicateEvent&)> on_replicate;
  /// Emit periodic "[study] <done>/<total> cells, trained=..., hits=...,
  /// eta=..." lines on stderr while the grid runs.
  bool progress = false;
};

struct StudyResult {
  /// results[c][r] is replicate r of plan.cells()[c], in replicate order —
  /// index semantics identical to core::run_replicates.
  std::vector<std::vector<core::RunResult>> cells;
  /// This study's exact cache activity (all zeros when no cache was
  /// configured): the backend applies per-run counter deltas, so the
  /// numbers stay exact even when concurrent runs share one cache.
  /// Invariant for a fully cacheable plan:
  ///   hits + trained + coalesced == total replicates.
  CacheStats cache;
  /// Replicates actually trained in-process (= cache misses + uncacheable
  /// cells). A warm-cache rerun of a fully cacheable plan reports 0.
  std::int64_t trained = 0;
  /// Replicates that were contended with a concurrent process (deferred,
  /// then loaded from its store or trained after its claim died).
  std::int64_t deferred = 0;
  /// Replicates whose CellKey duplicated an earlier one in the same batch
  /// and were filled in-memory from that leader's result.
  std::int64_t coalesced = 0;
};

/// A whole batch: per-plan results plus batch-wide totals (each total is
/// the sum of its per-study counterpart).
struct BatchResult {
  std::vector<StudyResult> studies;  // aligned with the `plans` argument
  CacheStats cache;
  std::int64_t trained = 0;
  std::int64_t deferred = 0;
  std::int64_t coalesced = 0;
};

/// Runs `plan` to completion. Throws std::invalid_argument when a cell's
/// explicit_ids is non-empty but does not match its replicate count. Safe
/// to share one cache across sequential or concurrent runs — per-run stats
/// are exact either way.
[[nodiscard]] StudyResult run_plan(const StudyPlan& plan,
                                   const RunOptions& opts = {});

/// Runs several plans as one scheduling pass (one flattened work list, one
/// claim pass, duplicate cacheable keys coalesced batch-wide). Plans must
/// outlive the call; null entries are not allowed. Same exception contract
/// as run_plan.
[[nodiscard]] BatchResult run_batch(const std::vector<const StudyPlan*>& plans,
                                    const RunOptions& opts = {});

/// One-row-per-counter table of a run's cache statistics, for
/// report::Exporter / stdout.
[[nodiscard]] core::TextTable cache_stats_table(const StudyResult& result);

/// One-line rendering of the same counters ("hits=... trained=...") — the
/// single format every tool/bench logs, so scripts can grep one shape.
[[nodiscard]] std::string cache_stats_line(const StudyResult& result);

}  // namespace nnr::sched
