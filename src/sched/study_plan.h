// Declarative experiment grids: the paper's apparatus is a grid of
// (task x device x noise-variant x replicate) cells, and a StudyPlan makes
// that grid a first-class object — named cells over owned tasks — instead of
// ad-hoc loops inside each bench main(). Plans are consumed by the cell
// scheduler (sched/scheduler.h) — singly via run_plan or batched via
// run_batch — which flattens the (cell, replicate) grid onto the shared
// runtime::ThreadPool and serves replicates from the content-addressed
// cache backend (sched/cache_backend.h) when one is configured.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "core/tasks.h"
#include "core/trainer.h"
#include "hw/device.h"

namespace nnr::sched {

/// One cell of a study: a fully specified TrainJob plus its replicate
/// schedule and the string identities that feed the content-addressed cache
/// key (sched/cell_key.h).
struct Cell {
  std::string id;         // unique label within the plan (progress, tables)
  std::string task_name;  // display name for table rows
  /// Content identity of (dataset, model factory). Factories are opaque
  /// std::functions, so this string is the caching contract: two cells with
  /// the same task_id MUST train the same model on the same data. Everything
  /// else that shapes the result (recipe, variant/toggles, device, seeds,
  /// warm start) is hashed structurally from `job`.
  std::string task_id;
  /// "" = the recipe's SGD (the paper's setting, cacheable). A cell that
  /// sets job.make_optimizer must also name it here or it is uncacheable.
  std::string optimizer_id;
  /// "" = core::train_replicate. A cell that sets `runner` must name it here
  /// (including any config baked into the closure, e.g. "dist_ring_w4") or
  /// it is uncacheable.
  std::string runner_id;
  core::TrainJob job;
  std::int64_t replicates = 0;
  /// Optional factorial schedule: replicate r trains with explicit_ids[r]
  /// instead of the diagonal {r, r}. Size must equal `replicates` when set.
  std::vector<core::ReplicateIds> explicit_ids;
  /// Optional custom trainer (e.g. the distributed data-parallel one).
  std::function<core::RunResult(const core::TrainJob&, core::ReplicateIds)>
      runner;

  /// True when the cell's content is fully described by its key inputs:
  /// a non-empty task_id, and named optimizer/runner overrides (if any).
  [[nodiscard]] bool cacheable() const noexcept {
    return !task_id.empty() && (job.make_optimizer == nullptr || !optimizer_id.empty()) &&
           (runner == nullptr || !runner_id.empty());
  }

  /// Replicate ids for index r: explicit_ids[r] when scheduled factorially,
  /// else the diagonal {r, r} (identical to core::train_replicate(job, r)).
  [[nodiscard]] core::ReplicateIds ids_for(std::int64_t r) const {
    if (!explicit_ids.empty()) {
      return explicit_ids[static_cast<std::size_t>(r)];
    }
    const auto u = static_cast<std::uint64_t>(r);
    return core::ReplicateIds{u, u};
  }
};

class StudyPlan {
 public:
  explicit StudyPlan(std::string name) : name_(std::move(name)) {}

  // Move-only: cells point into the owned-task storage, and a copy's cells
  // would silently alias the source plan's tasks. Moving a deque preserves
  // element addresses, so moves are safe.
  StudyPlan(StudyPlan&&) = default;
  StudyPlan& operator=(StudyPlan&&) = default;
  StudyPlan(const StudyPlan&) = delete;
  StudyPlan& operator=(const StudyPlan&) = delete;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  /// Takes ownership of `task` so cells can reference it for the plan's
  /// lifetime (storage is address-stable; cells hold pointers into the
  /// task's dataset).
  core::Task& own_task(core::Task task) {
    tasks_.push_back(std::move(task));
    return tasks_.back();
  }

  /// Adds one (task, variant, device) cell. `replicates` <= 0 uses the task
  /// preset. The task must outlive the plan's runs — pass plan-owned tasks
  /// (own_task) or longer-lived ones.
  Cell& add_cell(const core::Task& task, core::NoiseVariant variant,
                 const hw::DeviceSpec& device, std::int64_t replicates = 0);

  /// Adds a fully custom job (probe experiments: toggle overrides, custom
  /// batch sizes, warm starts). `task_id` is the cache identity of the
  /// job's (dataset, model factory) — see Cell::task_id.
  Cell& add_job(std::string id, std::string task_id, core::TrainJob job,
                std::int64_t replicates);

  [[nodiscard]] const std::vector<Cell>& cells() const noexcept {
    return cells_;
  }
  [[nodiscard]] std::vector<Cell>& cells() noexcept { return cells_; }

  [[nodiscard]] std::int64_t total_replicates() const noexcept {
    std::int64_t n = 0;
    for (const Cell& c : cells_) n += c.replicates;
    return n;
  }

 private:
  std::string name_;
  std::deque<core::Task> tasks_;  // deque: stable addresses across growth
  std::vector<Cell> cells_;
};

/// The three observed variants in the paper's presentation order — shared by
/// the study registry and the bench layer.
[[nodiscard]] const std::vector<core::NoiseVariant>& observed_variants();

}  // namespace nnr::sched
