#include "sched/replicate_cache.h"

#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <system_error>
#include <thread>

#include "serialize/run_result.h"

namespace nnr::sched {

namespace fs = std::filesystem;

ReplicateCache::ReplicateCache(std::string dir) : dir_(std::move(dir)) {}

ReplicateCache ReplicateCache::from_env() {
  const char* dir = std::getenv("NNR_CACHE_DIR");
  return ReplicateCache(dir != nullptr ? dir : "");
}

std::string ReplicateCache::path_for(const CellKey& key) const {
  return (fs::path(dir_) / (key.hex() + ".rr")).string();
}

std::optional<core::RunResult> ReplicateCache::load(const CellKey& key) {
  if (!enabled()) return std::nullopt;
  const std::string path = path_for(key);
  std::error_code ec;
  const auto size = fs::file_size(path, ec);
  if (ec) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.misses;
    return std::nullopt;
  }
  try {
    core::RunResult result = serialize::load_run_result(path, key.hi, key.lo);
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.hits;
    stats_.bytes_read += static_cast<std::int64_t>(size);
    return result;
  } catch (const serialize::CheckpointError&) {
    // Corrupted / truncated / foreign entry: fall back to recompute.
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.misses;
    ++stats_.corrupt;
    return std::nullopt;
  }
}

bool ReplicateCache::store(const CellKey& key, const core::RunResult& result) {
  if (!enabled()) return false;
  const std::string path = path_for(key);
  // Unique temp name per (process, thread) writer — benches legitimately
  // share one cache dir across processes — renamed into place so concurrent
  // readers never observe a half-written entry.
  const std::string tmp =
      path + ".tmp" + std::to_string(::getpid()) + "." +
      std::to_string(std::hash<std::thread::id>{}(std::this_thread::get_id()));
  std::error_code ec;
  fs::create_directories(dir_, ec);
  try {
    serialize::save_run_result(tmp, result, key.hi, key.lo);
  } catch (const serialize::CheckpointError&) {
    fs::remove(tmp, ec);
    return false;
  }
  const auto size = fs::file_size(tmp, ec);
  fs::rename(tmp, path, ec);
  if (ec) {
    fs::remove(tmp, ec);
    return false;
  }
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.stores;
  stats_.bytes_written += static_cast<std::int64_t>(size);
  return true;
}

CacheStats ReplicateCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace nnr::sched
