#include "sched/fleet_client.h"

#include <chrono>
#include <cstdio>
#include <exception>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "core/trainer.h"
#include "net/backoff.h"
#include "sched/cell_key.h"
#include "sched/fleet_queue.h"
#include "sched/progress.h"
#include "sched/registry.h"
#include "sched/remote_cache_backend.h"
#include "sched/study_plan.h"

namespace nnr::sched {

namespace {

void sleep_ms(std::int64_t ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

net::Jitter make_jitter(std::uint64_t seed) {
  return net::Jitter(seed != 0 ? seed : net::default_jitter_seed());
}

}  // namespace

std::optional<FleetSubmitSummary> fleet_submit_and_wait(
    RemoteCacheBackend& backend, const std::vector<std::string>& studies,
    const FleetSubmitOptions& options) {
  FleetSubmitSummary summary;
  std::vector<FleetWorkItem> items;
  // Studies share cells (fig1 and table2 share most V100 cells), so the
  // same key can enumerate twice; submit each once, under the first study
  // that names it. The daemon dedupes too — this just keeps the submitted
  // count honest.
  std::unordered_set<CellKey, CellKeyHash> seen;
  for (const std::string& name : studies) {
    const StudyDef* def = find_study(name);
    if (def == nullptr) {
      std::fprintf(stderr, "[fleet] unknown study '%s'\n", name.c_str());
      return std::nullopt;
    }
    const StudyPlan plan = def->make_plan();
    const auto& cells = plan.cells();
    for (std::size_t ci = 0; ci < cells.size(); ++ci) {
      const Cell& cell = cells[ci];
      if (!cell.cacheable()) {
        summary.uncacheable += cell.replicates;
        continue;
      }
      for (std::int64_t r = 0; r < cell.replicates; ++r) {
        const CellKey key = cell_key(cell, cell.ids_for(r));
        if (!seen.insert(key).second) continue;
        items.push_back(FleetWorkItem{key, name, static_cast<std::uint32_t>(ci),
                                      static_cast<std::uint32_t>(r)});
      }
    }
  }

  net::Jitter jitter = make_jitter(options.jitter_seed);
  auto ack = backend.fleet_submit(items);
  for (std::int64_t attempt = 0; !ack.has_value() && attempt < options.submit_retries;
       ++attempt) {
    // SUBMIT is idempotent (the daemon dedupes), so a lost frame or a
    // daemon mid-restart costs a retry, not the wave.
    sleep_ms(jitter.around(options.poll_ms));
    ack = backend.fleet_submit(items);
  }
  if (!ack.has_value()) {
    std::fprintf(stderr,
                 "[fleet] submit failed: %s unreachable or predates the work "
                 "queue\n",
                 backend.describe().c_str());
    return std::nullopt;
  }
  summary.submitted = ack->enqueued;
  summary.duplicates = ack->duplicates;
  summary.already_done = ack->already_done;
  std::fprintf(stderr,
               "[fleet] submitted %llu cells (%llu duplicate, %llu already "
               "cached, %lld uncacheable skipped)\n",
               static_cast<unsigned long long>(ack->enqueued),
               static_cast<unsigned long long>(ack->duplicates),
               static_cast<unsigned long long>(ack->already_done),
               static_cast<long long>(summary.uncacheable));

  ProgressPrinter printer(/*min_interval_ms=*/1000);
  const auto start = std::chrono::steady_clock::now();
  for (;;) {
    const auto stats = backend.fleet_queue_stat();
    if (stats.has_value()) {
      const auto elapsed_ms =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              std::chrono::steady_clock::now() - start)
              .count();
      const bool drained = stats->pending == 0 && stats->leased == 0;
      char line[192];
      std::snprintf(
          line, sizeof(line),
          "[fleet] %llu/%llu cells, trained=%llu, served=%llu, failed=%llu, "
          "eta=%s",
          static_cast<unsigned long long>(stats->done),
          static_cast<unsigned long long>(stats->total),
          static_cast<unsigned long long>(stats->trained),
          static_cast<unsigned long long>(stats->served),
          static_cast<unsigned long long>(stats->failed),
          format_eta(elapsed_ms, static_cast<std::int64_t>(stats->done),
                     static_cast<std::int64_t>(stats->total),
                     static_cast<std::int64_t>(stats->trained))
              .c_str());
      printer.emit(line, elapsed_ms, /*force=*/drained);
      if (drained) {
        summary.total = stats->total;
        summary.trained = stats->trained;
        summary.served = stats->served;
        summary.failed = stats->failed;
        return summary;
      }
    }
    // A failed poll is a daemon hiccup or restart — the queue snapshot
    // survives restarts, so just keep polling (jittered, so a herd of
    // coordinators spreads its stat load).
    sleep_ms(jitter.around(options.poll_ms));
  }
}

FleetWorkerSummary fleet_run_worker(RemoteCacheBackend& backend,
                                    const FleetWorkerOptions& options,
                                    CacheBackend* cache) {
  FleetWorkerSummary summary;
  // Queue RPCs stay on `backend`; entry traffic goes through the cache
  // tier (sharded or not). Same object in the single-daemon deployment.
  CacheBackend& entries = cache != nullptr ? *cache : backend;
  // Plans rebuilt once per study name; nullopt caches "unknown study" so a
  // skewed coordinator can't make us rebuild-and-fail per cell.
  std::unordered_map<std::string, std::optional<StudyPlan>> plans;
  const auto plan_for = [&](const std::string& name) -> const StudyPlan* {
    auto it = plans.find(name);
    if (it == plans.end()) {
      const StudyDef* def = find_study(name);
      it = plans
               .emplace(name, def != nullptr
                                  ? std::optional<StudyPlan>(def->make_plan())
                                  : std::nullopt)
               .first;
    }
    return it->second.has_value() ? &*it->second : nullptr;
  };

  net::Jitter jitter = make_jitter(options.jitter_seed);
  for (;;) {
    if (options.max_cells > 0 && summary.fetched >= options.max_cells) break;
    auto fetch = backend.fleet_fetch();
    if (!fetch.has_value()) {  // degraded: daemon unreachable right now
      sleep_ms(jitter.around(options.degraded_poll_ms));
      continue;
    }
    if (!fetch->granted) {
      // outstanding == 0 with total > 0: the wave is complete. total == 0:
      // nothing submitted yet — wait for a coordinator.
      if (fetch->outstanding == 0 && fetch->total > 0 &&
          options.exit_when_drained) {
        break;
      }
      sleep_ms(jitter.around(options.poll_ms));
      continue;
    }

    ++summary.fetched;
    const FleetWorkItem& work = fetch->item;
    const auto report = [&](net::ReportOutcome outcome) {
      // Under a sharded tier REPORT is the only settlement path (the PUT
      // went to the key's owner shard, not the queue daemon), so an
      // undelivered REPORT is retried. nullopt with the connection still
      // up is a daemon ANSWER (kGone: the lease expired or a PUT already
      // settled the item) — final, not retryable; a delivery failure
      // always drops the connection.
      for (std::int64_t attempt = 0;; ++attempt) {
        if (backend.fleet_report(work.key, fetch->lease_id, outcome)
                .has_value() ||
            backend.connected() || attempt >= options.report_retries) {
          return;
        }
        sleep_ms(
            jitter.around(std::max<std::int64_t>(options.store_retry_ms, 1)));
      }
    };

    const StudyPlan* plan = plan_for(work.study);
    const Cell* cell = nullptr;
    if (plan != nullptr && work.cell < plan->cells().size()) {
      cell = &plan->cells()[work.cell];
    }
    if (cell == nullptr ||
        static_cast<std::int64_t>(work.replicate) >= cell->replicates) {
      std::fprintf(stderr,
                   "[worker] %s cell=%u r=%u: no such cell here — version "
                   "skew with the coordinator?\n",
                   work.study.c_str(), work.cell, work.replicate);
      report(net::ReportOutcome::kFailed);
      ++summary.failed;
      continue;
    }
    const core::ReplicateIds ids =
        cell->ids_for(static_cast<std::int64_t>(work.replicate));
    if (cell_key(*cell, ids) != work.key) {
      // Same coordinates, different key: the environments disagree about
      // what this cell trains (NNR_QUICK/NNR_EPOCHS skew, usually).
      // Training it would PUT under a key nobody computed — fail it.
      std::fprintf(stderr,
                   "[worker] %s/%s r=%u: cell key mismatch — environment "
                   "skew with the coordinator (NNR_QUICK/NNR_EPOCHS?)\n",
                   work.study.c_str(), cell->id.c_str(), work.replicate);
      report(net::ReportOutcome::kFailed);
      ++summary.failed;
      continue;
    }

    if (entries.load(work.key).has_value()) {
      report(net::ReportOutcome::kServed);
      ++summary.served;
      continue;
    }

    core::RunResult result;
    bool trained_ok = true;
    try {
      result = cell->runner ? cell->runner(cell->job, ids)
                            : core::train_replicate(cell->job, ids);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "[worker] %s/%s r=%u: training failed: %s\n",
                   work.study.c_str(), cell->id.c_str(), work.replicate,
                   e.what());
      trained_ok = false;
    }
    bool stored = trained_ok && entries.store(work.key, result);
    for (std::int64_t attempt = 0;
         trained_ok && !stored && attempt < options.store_retries; ++attempt) {
      // The training is in hand; only the PUT failed (daemon hiccup,
      // dropped frame). Re-sending is far cheaper than reporting kFailed
      // and having another worker retrain the whole cell.
      sleep_ms(jitter.around(std::max<std::int64_t>(options.store_retry_ms, 1)));
      stored = entries.store(work.key, result);
    }
    if (!stored) {
      // A result we can't persist is indistinguishable from no result to
      // the rest of the fleet — let the queue retry it elsewhere.
      report(net::ReportOutcome::kFailed);
      ++summary.failed;
      continue;
    }
    report(net::ReportOutcome::kTrained);
    ++summary.trained;
    std::fprintf(stderr, "[worker] trained %s/%s r=%u\n", work.study.c_str(),
                 cell->id.c_str(), work.replicate);
  }
  return summary;
}

}  // namespace nnr::sched
