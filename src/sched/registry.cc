#include "sched/registry.h"

#include <memory>
#include <stdexcept>
#include <utility>

#include "core/env.h"
#include "nn/zoo.h"
#include "opt/adam.h"
#include "opt/rmsprop.h"
#include "opt/sgd.h"

namespace nnr::sched {
namespace {

core::Task make_named(const char* id) {
  const core::TaskInfo* info = core::find_task(id);
  // The registry ids are compile-time constants in this file; a miss is a
  // programming error, surfaced loudly rather than as a null deref.
  if (info == nullptr) {
    throw std::logic_error(std::string("unknown named task: ") + id);
  }
  return info->make();
}

/// (task x variant) block over the observed variants, one device.
void add_observed(StudyPlan& plan, const core::Task& task,
                  const hw::DeviceSpec& device,
                  std::int64_t replicates = 0) {
  for (const core::NoiseVariant v : observed_variants()) {
    plan.add_cell(task, v, device, replicates);
  }
}

StudyPlan fig1_plan() {
  StudyPlan plan("fig1");
  std::vector<hw::DeviceSpec> devices = {hw::v100()};
  if (core::env_int("NNR_APPENDIX", 0) != 0) {
    devices.push_back(hw::p100());     // Appendix Fig. 9
    devices.push_back(hw::rtx5000());  // Appendix Fig. 10
  }
  std::vector<const core::Task*> tasks;
  for (const char* id :
       {"smallcnn", "resnet18_c10", "resnet18_c100", "resnet50_in"}) {
    tasks.push_back(&plan.own_task(make_named(id)));
  }
  for (const hw::DeviceSpec& device : devices) {
    const bool include_imagenet = device.name == "V100";
    for (const core::Task* task : tasks) {
      if (!include_imagenet && task->name == "ResNet50 ImageNet") continue;
      add_observed(plan, *task, device);
    }
  }
  return plan;
}

StudyPlan fig2_plan() {
  StudyPlan plan("fig2");
  add_observed(plan, plan.own_task(make_named("smallcnn")), hw::v100());
  add_observed(plan, plan.own_task(make_named("smallcnn_bn")),
               hw::v100());
  return plan;
}

StudyPlan fig4_plan() {
  StudyPlan plan("fig4");
  add_observed(plan, plan.own_task(make_named("resnet18_c10")),
               hw::v100());
  add_observed(plan, plan.own_task(make_named("resnet18_c100")),
               hw::v100());
  return plan;
}

StudyPlan fig5_plan() {
  StudyPlan plan("fig5");
  const core::Task& task = plan.own_task(make_named("resnet18_c100"));
  for (const hw::DeviceSpec& device : hw::all_devices()) {
    if (device.name == "T4") continue;  // paper Fig. 5 omits T4
    add_observed(plan, task, device);
  }
  return plan;
}

StudyPlan table2_plan() {
  StudyPlan plan("table2");
  const std::vector<hw::DeviceSpec> devices = {hw::p100(), hw::rtx5000(),
                                               hw::v100()};
  std::vector<const core::Task*> tasks;
  for (const char* id : {"smallcnn", "resnet18_c10", "resnet18_c100"}) {
    tasks.push_back(&plan.own_task(make_named(id)));
  }
  for (const hw::DeviceSpec& device : devices) {
    for (const core::Task* task : tasks) add_observed(plan, *task, device);
  }
  add_observed(plan, plan.own_task(make_named("resnet50_in")),
               hw::v100());
  return plan;
}

StudyPlan architecture_plan() {
  StudyPlan plan("ablation_architecture");
  for (const char* id :
       {"smallcnn", "smallcnn_bn", "vgg", "resnet18_c10", "mobilenet"}) {
    add_observed(plan, plan.own_task(make_named(id)), hw::v100());
  }
  return plan;
}

StudyPlan calibration_plan() {
  StudyPlan plan("ablation_calibration");
  add_observed(plan, plan.own_task(make_named("resnet18_c10")),
               hw::v100());
  return plan;
}

StudyPlan churn_concentration_plan() {
  StudyPlan plan("ablation_churn_concentration");
  add_observed(plan, plan.own_task(make_named("resnet18_c10")),
               hw::v100());
  return plan;
}

StudyPlan churn_reduction_plan() {
  StudyPlan plan("ablation_churn_reduction");
  const core::Scale scale = core::resolve_scale(
      /*replicates=*/10, /*epochs=*/10, /*train_n=*/1024, /*test_n=*/512);
  core::Task task = make_named("smallcnn_bn");
  task.recipe.epochs = scale.epochs;
  add_observed(plan, plan.own_task(std::move(task)), hw::v100(),
               scale.replicates);
  return plan;
}

StudyPlan model_design_norm_plan() {
  StudyPlan plan("ablation_model_design_norm");
  const std::pair<const char*, nn::NormKind> norm_cells[] = {
      {"none", nn::NormKind::kNone},
      {"BatchNorm", nn::NormKind::kBatch},
      {"GroupNorm", nn::NormKind::kGroup},
  };
  for (const auto& [label, kind] : norm_cells) {
    core::Task task = make_named("smallcnn");
    task.name = label;
    const nn::NormKind k = kind;
    task.make_model = [k] { return nn::small_cnn_norm(10, k); };
    add_observed(plan, plan.own_task(std::move(task)), hw::v100());
  }
  return plan;
}

StudyPlan model_design_act_plan() {
  StudyPlan plan("ablation_model_design_act");
  const std::pair<const char*, nn::ActKind> act_cells[] = {
      {"ReLU", nn::ActKind::kReLU},
      {"SiLU", nn::ActKind::kSiLU},
      {"GELU", nn::ActKind::kGELU},
      {"Tanh", nn::ActKind::kTanh},
  };
  for (const auto& [label, kind] : act_cells) {
    core::Task task = make_named("smallcnn");
    task.name = label;
    const nn::ActKind k = kind;
    task.make_model = [k] { return nn::small_cnn_activation(10, k); };
    plan.add_cell(plan.own_task(std::move(task)), core::NoiseVariant::kImpl,
                  hw::v100());
  }
  return plan;
}

StudyPlan optimizer_plan() {
  StudyPlan plan("ablation_optimizer");
  struct OptimizerCell {
    const char* label;
    core::OptimizerFactory make;
    float lr_scale;  // relative to the recipe LR (adaptive rules run hotter)
  };
  const OptimizerCell optimizer_cells[] = {
      {"SGD",
       [](std::vector<nn::Param*> p) {
         return std::make_unique<opt::Sgd>(std::move(p));
       },
       1.0F},
      {"SGD+momentum",
       [](std::vector<nn::Param*> p) {
         return std::make_unique<opt::Sgd>(std::move(p), 0.9F);
       },
       1.0F},
      {"Adam",
       [](std::vector<nn::Param*> p) {
         return std::make_unique<opt::Adam>(std::move(p));
       },
       0.5F},
      {"RMSProp",
       [](std::vector<nn::Param*> p) {
         return std::make_unique<opt::RmsProp>(std::move(p));
       },
       0.5F},
  };
  const core::Task& task = plan.own_task(make_named("smallcnn_bn"));
  for (const OptimizerCell& opt_cell : optimizer_cells) {
    for (const core::NoiseVariant variant :
         {core::NoiseVariant::kAlgo, core::NoiseVariant::kImpl}) {
      Cell& cell = plan.add_cell(task, variant, hw::v100());
      cell.id = std::string(opt_cell.label) + " / " +
                std::string(core::variant_name(variant));
      cell.task_name = opt_cell.label;
      cell.optimizer_id = opt_cell.label;
      cell.job.make_optimizer = opt_cell.make;
      cell.job.recipe.base_lr *= opt_cell.lr_scale;
    }
  }
  return plan;
}

StudyPlan algo_channels_plan() {
  StudyPlan plan("ablation_algo_channels");
  const std::int64_t replicates = core::env_int("NNR_REPLICATES", 10);
  const core::Task& task =
      plan.own_task(make_named("smallcnn_dropout"));

  core::ChannelToggles base;  // all pinned
  base.mode = hw::DeterminismMode::kDeterministic;
  struct ChannelCell {
    const char* label;
    bool core::ChannelToggles::* channel;
  };
  const ChannelCell channel_cells[] = {
      {"init only", &core::ChannelToggles::init_varies},
      {"shuffle only", &core::ChannelToggles::shuffle_varies},
      {"augment only", &core::ChannelToggles::augment_varies},
      {"dropout only", &core::ChannelToggles::dropout_varies},
  };
  const auto add_toggle_cell = [&](const char* label,
                                   core::ChannelToggles toggles) {
    core::TrainJob job = task.job(core::NoiseVariant::kAlgo, hw::v100());
    job.toggles_override = toggles;
    Cell& cell = plan.add_job(label, task.dataset.name + "|" + task.name,
                              std::move(job), replicates);
    cell.task_name = label;
  };
  for (const ChannelCell& c : channel_cells) {
    core::ChannelToggles t = base;
    t.*(c.channel) = true;
    add_toggle_cell(c.label, t);
  }
  {
    core::ChannelToggles t = base;
    t.init_varies = t.shuffle_varies = t.augment_varies = t.dropout_varies =
        true;
    add_toggle_cell("ALL (= ALGO)", t);
  }
  add_toggle_cell("NONE (= CONTROL)", base);
  return plan;
}

StudyPlan variance_decomposition_plan() {
  StudyPlan plan("ablation_variance_decomposition");
  core::Task task = make_named("resnet18_c10");
  const core::Scale scale = core::resolve_scale(
      task.default_replicates, task.recipe.epochs, /*train_n=*/512,
      /*test_n=*/256);
  task.recipe.epochs = scale.epochs;
  add_observed(plan, plan.own_task(std::move(task)), hw::v100(),
               scale.replicates);
  return plan;
}

}  // namespace

const std::vector<StudyDef>& study_registry() {
  static const std::vector<StudyDef> registry = {
      {"fig1",
       "Fig. 1: stddev/churn/L2 by noise source and task (V100; "
       "NNR_APPENDIX=1 adds P100+RTX5000)",
       fig1_plan},
      {"fig2", "Fig. 2: SmallCNN with vs without BatchNorm (V100)",
       fig2_plan},
      {"fig4", "Fig. 4: per-class variance amplification (V100)", fig4_plan},
      {"fig5", "Fig. 5: divergence across accelerators (ResNet18 CIFAR-100*)",
       fig5_plan},
      {"table2",
       "Table 2: accuracy +/- stddev per (hardware, task, variant)",
       table2_plan},
      {"ablation_architecture",
       "Stability across five architecture families (V100)",
       architecture_plan},
      {"ablation_calibration",
       "ECE / confidence-gap spread per noise variant (ResNet18, V100)",
       calibration_plan},
      {"ablation_churn_concentration",
       "Per-example flip-rate concentration (ResNet18 CIFAR-10, V100)",
       churn_concentration_plan},
      {"ablation_churn_reduction",
       "K-ensembling / warm-start mitigation base grid (SmallCNN+BN, V100)",
       churn_reduction_plan},
      {"ablation_model_design_norm",
       "Normalization kind vs noise (SmallCNN, V100)", model_design_norm_plan},
      {"ablation_model_design_act",
       "Activation smoothness under IMPL noise (SmallCNN, V100)",
       model_design_act_plan},
      {"ablation_optimizer",
       "Optimizer choice as a noise modulator (SmallCNN+BN, V100)",
       optimizer_plan},
      {"ablation_algo_channels",
       "ALGO noise decomposed into its four channels (V100)",
       algo_channels_plan},
      {"ablation_variance_decomposition",
       "Per-variant error-bar grid for the factorial ANOVA bench "
       "(ResNet18, V100)",
       variance_decomposition_plan},
  };
  return registry;
}

const StudyDef* find_study(std::string_view id) {
  for (const StudyDef& def : study_registry()) {
    if (def.id == id) return &def;
  }
  return nullptr;
}

}  // namespace nnr::sched
