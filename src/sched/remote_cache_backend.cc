#include "sched/remote_cache_backend.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <utility>
#include <vector>

#include "net/frame.h"
#include "runtime/parse_int.h"
#include "serialize/run_result.h"

namespace nnr::sched {

namespace {

using net::BodyReader;
using net::BodyWriter;
using net::Op;
using net::Status;

/// A claim granted while the daemon is unreachable: holds nothing, blocks
/// nobody. The scheduler trains under it and its store quietly fails —
/// degrade-to-recompute, not deadlock.
struct NoopClaimImpl final : CacheClaim::Impl {};

std::string key_body(const CellKey& key) {
  BodyWriter w;
  w.put(key.hi);
  w.put(key.lo);
  return w.take();
}

}  // namespace

/// A granted remote lease. Destruction releases it (best-effort RPC) and
/// removes it from the heartbeat set; if the release never reaches the
/// daemon, the lease simply expires after its TTL.
struct RemoteClaimImpl final : CacheClaim::Impl {
  RemoteClaimImpl(RemoteCacheBackend* b, CellKey k, std::uint64_t id)
      : backend(b), key(k), lease_id(id) {}
  ~RemoteClaimImpl() override { backend->release_lease(key, lease_id); }

  RemoteCacheBackend* backend;
  CellKey key;
  std::uint64_t lease_id;
};

bool RemoteCacheBackend::parse_url(const std::string& url, std::string* host,
                                   std::uint16_t* port) {
  constexpr std::string_view kScheme = "tcp://";
  if (url.size() <= kScheme.size() ||
      url.compare(0, kScheme.size(), kScheme) != 0) {
    return false;
  }
  const std::string rest = url.substr(kScheme.size());
  const auto colon = rest.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 >= rest.size()) {
    return false;
  }
  const auto parsed = runtime::parse_int_strict(rest.c_str() + colon + 1);
  if (!parsed.has_value() || *parsed <= 0 || *parsed > 65535) return false;
  *host = rest.substr(0, colon);
  *port = static_cast<std::uint16_t>(*parsed);
  return true;
}

RemoteCacheBackend::RemoteCacheBackend(const std::string& url,
                                       RemoteCacheOptions options)
    : url_(url),
      options_(options),
      reconnect_backoff_(options.reconnect_backoff_ms,
                         options.reconnect_backoff_max_ms,
                         options.jitter_seed != 0
                             ? options.jitter_seed
                             : net::default_jitter_seed()),
      throttle_jitter_(options.jitter_seed != 0
                           ? options.jitter_seed + 1
                           : net::default_jitter_seed() ^ 0x5452ull) {
  if (!parse_url(url, &host_, &port_)) {
    throw std::invalid_argument(
        "cache url must be tcp://host:port, got '" + url + "'");
  }
  if (options_.heartbeat) {
    hb_thread_ = std::thread([this] { heartbeat_loop(); });
  }
}

RemoteCacheBackend::~RemoteCacheBackend() {
  {
    std::lock_guard<std::mutex> lock(hb_mu_);
    stopping_ = true;
  }
  hb_cv_.notify_all();
  if (hb_thread_.joinable()) hb_thread_.join();
  // Any leases still registered here belong to claims the caller leaked
  // past the backend's life — the daemon expires them by TTL.
}

bool RemoteCacheBackend::ensure_connected_locked() {
  if (sock_.valid()) return true;
  const auto now = std::chrono::steady_clock::now();
  if (ever_connected_ || last_connect_attempt_.time_since_epoch().count() != 0) {
    // Degraded: fail fast inside the backoff window so a down daemon costs
    // a study one timeout, not one per replicate. The window doubles with
    // every consecutive failure (jittered) so a long outage is probed ever
    // more gently — and by every client at a different moment.
    if (now - last_connect_attempt_ <
        std::chrono::milliseconds(current_window_ms_)) {
      return false;
    }
  }
  ++connect_attempts_;
  sock_ = net::connect_tcp(host_, port_, options_.connect_timeout_ms,
                           options_.io_timeout_ms);
  // Stamp AFTER the attempt completes. A connect to a down daemon can
  // itself take up to connect_timeout_ms; stamping before it would let the
  // backoff window elapse DURING the attempt whenever connect_timeout_ms >
  // reconnect_backoff_ms — every subsequent operation would then pay a full
  // connect attempt, exactly what the backoff exists to prevent.
  last_connect_attempt_ = std::chrono::steady_clock::now();
  if (sock_.valid()) {
    ever_connected_ = true;
    reconnect_backoff_.reset();
    current_window_ms_ = 0;
  } else {
    current_window_ms_ = reconnect_backoff_.next_ms();
  }
  return sock_.valid();
}

std::int64_t RemoteCacheBackend::connect_attempts_for_test() const {
  std::lock_guard<std::mutex> lock(io_mu_);
  return connect_attempts_;
}

void RemoteCacheBackend::drop_connection_locked() { sock_.close(); }

void RemoteCacheBackend::drop_connection_for_test() {
  std::lock_guard<std::mutex> lock(io_mu_);
  drop_connection_locked();
  // Force the next operation to reconnect immediately, not after backoff.
  last_connect_attempt_ = {};
  reconnect_backoff_.reset();
  current_window_ms_ = 0;
}

bool RemoteCacheBackend::connected() const {
  std::lock_guard<std::mutex> lock(io_mu_);
  return sock_.valid();
}

void RemoteCacheBackend::disconnect() {
  {
    std::lock_guard<std::mutex> lock(io_mu_);
    drop_connection_locked();
    last_connect_attempt_ = {};
    ever_connected_ = false;
    reconnect_backoff_.reset();
    current_window_ms_ = 0;
  }
  {
    // The daemon releases our leases when it sees the FIN; heartbeating
    // them over the next connection would only collect kGone answers.
    std::lock_guard<std::mutex> lock(lease_mu_);
    leases_.clear();
  }
  hb_cv_.notify_all();
}

void RemoteCacheBackend::note_go_away_locked(std::uint32_t retry_after_ms) {
  drop_connection_locked();
  // Arm at least the server's hint: reconnecting sooner would only be
  // turned away again and burn one of the server's accept slots.
  last_connect_attempt_ = std::chrono::steady_clock::now();
  current_window_ms_ = std::max<std::int64_t>(reconnect_backoff_.next_ms(),
                                              retry_after_ms);
}

std::optional<RemoteCacheBackend::Rpc> RemoteCacheBackend::rpc(
    Op op, std::string_view body) {
  std::lock_guard<std::mutex> lock(io_mu_);
  for (int throttle_round = 0;; ++throttle_round) {
    if (!ensure_connected_locked()) return std::nullopt;
    try {
      if (!net::send_frame(sock_, static_cast<std::uint8_t>(op), body)) {
        drop_connection_locked();
        return std::nullopt;
      }
      // A clean boundary timeout (nothing consumed) means the daemon is
      // slow, not gone — re-await the response instead of tearing the
      // connection down and re-entering the reconnect backoff with every
      // lease lost.
      net::RecvFrameResult received;
      for (int attempt = 0;; ++attempt) {
        received = net::recv_frame_ex(sock_);
        if (received.status != net::RecvStatus::kTimeout ||
            attempt >= options_.io_timeout_retries) {
          break;
        }
      }
      if (received.status != net::RecvStatus::kFrame) {
        drop_connection_locked();
        return std::nullopt;
      }
      if (received.frame.opcode == static_cast<std::uint8_t>(Op::kGoAway)) {
        // Unsolicited "over capacity": honor the retry hint as a backoff
        // floor and degrade this operation.
        std::uint32_t retry_after_ms = options_.reconnect_backoff_ms > 0
            ? static_cast<std::uint32_t>(options_.reconnect_backoff_ms)
            : 500;
        if (received.frame.body.size() >= 1 + sizeof(std::uint32_t)) {
          std::memcpy(&retry_after_ms, received.frame.body.data() + 1,
                      sizeof(retry_after_ms));
        }
        note_go_away_locked(retry_after_ms);
        return std::nullopt;
      }
      if (received.frame.opcode != static_cast<std::uint8_t>(op) ||
          received.frame.body.empty()) {
        drop_connection_locked();
        return std::nullopt;
      }
      Rpc result;
      result.status = static_cast<Status>(received.frame.body[0]);
      result.body = received.frame.body.substr(1);
      if (result.status == Status::kThrottled &&
          throttle_round < options_.throttle_retries) {
        // Rate-limited: sleep the server's hint (jittered so N throttled
        // clients don't resend in phase, clamped so a bogus hint cannot
        // wedge us) and resend on the same healthy connection.
        std::uint32_t hint_ms = static_cast<std::uint32_t>(
            std::max(options_.claim_poll_ms, 1));
        if (result.body.size() >= sizeof(std::uint32_t)) {
          std::memcpy(&hint_ms, result.body.data(), sizeof(hint_ms));
        }
        const std::int64_t wait_ms = throttle_jitter_.around(
            std::clamp<std::int64_t>(hint_ms, 1,
                                     std::max(options_.max_retry_after_ms, 1)));
        std::this_thread::sleep_for(std::chrono::milliseconds(wait_ms));
        continue;
      }
      return result;
    } catch (const serialize::CheckpointError&) {
      // Malformed frame: protocol violation, not data — drop the
      // connection.
      drop_connection_locked();
      return std::nullopt;
    }
  }
}

std::optional<core::RunResult> RemoteCacheBackend::load(const CellKey& key,
                                                        CacheStats* run,
                                                        bool count_miss) {
  auto reply = rpc(Op::kGet, key_body(key));
  if (reply.has_value() && reply->status == Status::kFound) {
    try {
      BodyReader r(reply->body);
      const auto n = r.get<std::uint64_t>();
      const std::string_view bytes = r.get_bytes(static_cast<std::size_t>(n));
      core::RunResult result =
          serialize::decode_run_result(bytes, key.hi, key.lo, url_);
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.hits;
      stats_.bytes_read += static_cast<std::int64_t>(bytes.size());
      if (run != nullptr) {
        ++run->hits;
        run->bytes_read += static_cast<std::int64_t>(bytes.size());
      }
      return result;
    } catch (const serialize::CheckpointError&) {
      // The daemon served bytes that fail checksum/key validation — same
      // contract as a corrupt local file: count and recompute.
      if (!count_miss) return std::nullopt;
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.misses;
      ++stats_.corrupt;
      if (run != nullptr) {
        ++run->misses;
        ++run->corrupt;
      }
      return std::nullopt;
    } catch (const net::ProtocolError&) {
      // fall through to the miss path below
    }
  }
  // kMiss, degraded, or a malformed FOUND body.
  if (!count_miss) return std::nullopt;
  std::lock_guard<std::mutex> lock(stats_mu_);
  ++stats_.misses;
  if (run != nullptr) ++run->misses;
  return std::nullopt;
}

bool RemoteCacheBackend::store(const CellKey& key,
                               const core::RunResult& result,
                               CacheStats* run) {
  const std::string bytes = serialize::encode_run_result(result, key.hi,
                                                         key.lo);
  // An entry too large for one frame must fail as a dropped store, not by
  // sending a frame the server rejects — that would cost this client its
  // connection and, with it, every lease it is training under. 64 bytes
  // covers the key/length fields and the frame envelope.
  if (bytes.size() > net::kMaxFrameBytes - 64) return false;
  BodyWriter w;
  w.put(key.hi);
  w.put(key.lo);
  w.put(static_cast<std::uint64_t>(bytes.size()));
  w.put_bytes(bytes);
  auto reply = rpc(Op::kPut, w.take());
  if (!reply.has_value() || reply->status != Status::kOk) return false;
  std::lock_guard<std::mutex> lock(stats_mu_);
  ++stats_.stores;
  stats_.bytes_written += static_cast<std::int64_t>(bytes.size());
  if (run != nullptr) {
    ++run->stores;
    run->bytes_written += static_cast<std::int64_t>(bytes.size());
  }
  return true;
}

CacheClaim RemoteCacheBackend::make_noop_claim() {
  return CacheClaim(std::make_unique<NoopClaimImpl>());
}

std::optional<CacheClaim> RemoteCacheBackend::try_claim(const CellKey& key) {
  BodyWriter w;
  w.put(key.hi);
  w.put(key.lo);
  w.put(options_.lease_ttl_ms);
  auto reply = rpc(Op::kTryClaim, w.take());
  if (!reply.has_value()) return make_noop_claim();  // degraded: train local
  if (reply->status != Status::kGranted) return std::nullopt;  // busy
  std::uint64_t lease_id = 0;
  std::uint32_t granted_ttl_ms = 0;
  try {
    BodyReader r(reply->body);
    lease_id = r.get<std::uint64_t>();
    granted_ttl_ms = r.get<std::uint32_t>();
  } catch (const net::ProtocolError&) {
    return make_noop_claim();
  }
  {
    std::lock_guard<std::mutex> lock(lease_mu_);
    leases_.emplace(lease_id, HeldLease{key, granted_ttl_ms});
  }
  // Wake the heartbeat thread: it may be mid-sleep on an interval computed
  // before this lease existed (possibly much longer than this grant's TTL).
  hb_cv_.notify_all();
  return CacheClaim(std::make_unique<RemoteClaimImpl>(this, key, lease_id));
}

std::optional<CacheClaim> RemoteCacheBackend::claim(const CellKey& key) {
  // No server-side wait queue: poll. The holder's lease expires by TTL if
  // it dies, so this loop always terminates.
  for (;;) {
    auto claim = try_claim(key);
    if (claim.has_value()) return claim;
    std::this_thread::sleep_for(
        std::chrono::milliseconds(std::max(options_.claim_poll_ms, 1)));
  }
}

void RemoteCacheBackend::release_lease(const CellKey& key,
                                       std::uint64_t lease_id) {
  {
    std::lock_guard<std::mutex> lock(lease_mu_);
    leases_.erase(lease_id);
  }
  BodyWriter w;
  w.put(key.hi);
  w.put(key.lo);
  w.put(lease_id);
  (void)rpc(Op::kRelease, w.take());  // best-effort; TTL is the backstop
}

void RemoteCacheBackend::heartbeat_loop() {
  std::unique_lock<std::mutex> lock(hb_mu_);
  while (!stopping_) {
    // Pace against the tightest GRANTED TTL among held leases (the server
    // may have clamped our request), renewing at ~TTL/3.
    std::uint32_t tightest_ttl = options_.lease_ttl_ms;
    {
      std::lock_guard<std::mutex> lease_lock(lease_mu_);
      for (const auto& [lease_id, lease] : leases_) {
        if (lease.granted_ttl_ms > 0) {
          tightest_ttl = std::min(tightest_ttl, lease.granted_ttl_ms);
        }
      }
    }
    const auto interval =
        std::chrono::milliseconds(std::max<std::uint32_t>(tightest_ttl / 3,
                                                          50));
    hb_cv_.wait_for(lock, interval);
    if (stopping_) break;
    std::vector<std::pair<std::uint64_t, HeldLease>> held;
    {
      std::lock_guard<std::mutex> lease_lock(lease_mu_);
      held.assign(leases_.begin(), leases_.end());
    }
    lock.unlock();
    for (const auto& [lease_id, lease] : held) {
      BodyWriter w;
      w.put(lease.key.hi);
      w.put(lease.key.lo);
      w.put(lease_id);
      // kGone or a degraded connection both mean the lease is out of our
      // hands; the training continues and the store decides the outcome.
      (void)rpc(Op::kHeartbeat, w.take());
    }
    lock.lock();
  }
}

GcStats RemoteCacheBackend::gc() {
  GcStats stats;
  auto reply = rpc(Op::kGc, {});
  if (!reply.has_value() || reply->status != Status::kOk) return stats;
  try {
    BodyReader r(reply->body);
    stats.removed_tmp = r.get<std::int64_t>();
    stats.removed_locks = r.get<std::int64_t>();
    stats.evicted = r.get<std::int64_t>();
    stats.evicted_bytes = r.get<std::int64_t>();
    stats.entries = r.get<std::int64_t>();
    stats.bytes = r.get<std::int64_t>();
  } catch (const net::ProtocolError&) {
    return GcStats{};
  }
  return stats;
}

CacheStats RemoteCacheBackend::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

bool RemoteCacheBackend::ping() {
  auto reply = rpc(Op::kPing, {});
  return reply.has_value() && reply->status == Status::kOk;
}

std::optional<RemoteCacheBackend::ShardInfo> RemoteCacheBackend::shard_info() {
  auto reply = rpc(Op::kShardInfo, {});
  if (!reply.has_value() || reply->status != Status::kOk) return std::nullopt;
  try {
    BodyReader r(reply->body);
    ShardInfo info;
    info.instance_id = r.get<std::uint64_t>();
    info.dir_uid = r.get<std::uint64_t>();
    info.boot_epoch = r.get<std::uint64_t>();
    return info;
  } catch (const net::ProtocolError&) {
    return std::nullopt;
  }
}

std::optional<RemoteCacheBackend::FleetSubmitAck>
RemoteCacheBackend::fleet_submit(const std::vector<FleetWorkItem>& items) {
  BodyWriter w;
  w.put(static_cast<std::uint32_t>(items.size()));
  for (const FleetWorkItem& item : items) {
    w.put(item.key.hi);
    w.put(item.key.lo);
    w.put(static_cast<std::uint32_t>(item.study.size()));
    w.put_bytes(item.study);
    w.put(item.cell);
    w.put(item.replicate);
  }
  auto reply = rpc(Op::kSubmit, w.take());
  if (!reply.has_value() || reply->status != Status::kOk) return std::nullopt;
  try {
    BodyReader r(reply->body);
    FleetSubmitAck ack;
    ack.enqueued = r.get<std::uint64_t>();
    ack.duplicates = r.get<std::uint64_t>();
    ack.already_done = r.get<std::uint64_t>();
    return ack;
  } catch (const net::ProtocolError&) {
    return std::nullopt;
  }
}

std::optional<RemoteCacheBackend::FleetFetchResult>
RemoteCacheBackend::fleet_fetch() {
  BodyWriter w;
  w.put(options_.lease_ttl_ms);
  auto reply = rpc(Op::kFetch, w.take());
  if (!reply.has_value()) return std::nullopt;
  try {
    if (reply->status == Status::kGranted) {
      BodyReader r(reply->body);
      FleetFetchResult result;
      result.granted = true;
      result.lease_id = r.get<std::uint64_t>();
      const auto granted_ttl_ms = r.get<std::uint32_t>();
      result.item.key.hi = r.get<std::uint64_t>();
      result.item.key.lo = r.get<std::uint64_t>();
      const auto study_len = r.get<std::uint32_t>();
      result.item.study = std::string(r.get_bytes(study_len));
      result.item.cell = r.get<std::uint32_t>();
      result.item.replicate = r.get<std::uint32_t>();
      {
        // Register the lease for heartbeat renewal, exactly like a claim:
        // a fetched cell can train for hours.
        std::lock_guard<std::mutex> lock(lease_mu_);
        leases_.emplace(result.lease_id,
                        HeldLease{result.item.key, granted_ttl_ms});
      }
      hb_cv_.notify_all();
      result.claim = CacheClaim(std::make_unique<RemoteClaimImpl>(
          this, result.item.key, result.lease_id));
      return result;
    }
    if (reply->status == Status::kMiss) {
      BodyReader r(reply->body);
      FleetFetchResult result;
      result.outstanding = r.get<std::uint64_t>();
      result.total = r.get<std::uint64_t>();
      return result;
    }
  } catch (const net::ProtocolError&) {
  }
  return std::nullopt;  // kError: old daemon without queue support
}

std::optional<RemoteCacheBackend::FleetReportAck>
RemoteCacheBackend::fleet_report(const CellKey& key, std::uint64_t lease_id,
                                 net::ReportOutcome outcome) {
  BodyWriter w;
  w.put(key.hi);
  w.put(key.lo);
  w.put(lease_id);
  w.put(static_cast<std::uint8_t>(outcome));
  auto reply = rpc(Op::kReport, w.take());
  if (!reply.has_value() || reply->status != Status::kOk) return std::nullopt;
  try {
    BodyReader r(reply->body);
    FleetReportAck ack;
    ack.done = r.get<std::uint64_t>();
    ack.total = r.get<std::uint64_t>();
    return ack;
  } catch (const net::ProtocolError&) {
    return std::nullopt;
  }
}

std::optional<FleetQueue::Stats> RemoteCacheBackend::fleet_queue_stat() {
  auto reply = rpc(Op::kQueueStat, {});
  if (!reply.has_value() || reply->status != Status::kOk) return std::nullopt;
  try {
    BodyReader r(reply->body);
    FleetQueue::Stats stats;
    stats.total = r.get<std::uint64_t>();
    stats.pending = r.get<std::uint64_t>();
    stats.leased = r.get<std::uint64_t>();
    stats.done = r.get<std::uint64_t>();
    stats.trained = r.get<std::uint64_t>();
    stats.served = r.get<std::uint64_t>();
    stats.failed = r.get<std::uint64_t>();
    return stats;
  } catch (const net::ProtocolError&) {
    return std::nullopt;
  }
}

}  // namespace nnr::sched
