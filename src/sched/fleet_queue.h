// The daemon-side fleet work queue: the state machine behind the
// SUBMIT/FETCH/REPORT opcodes (net/cache_protocol.h), owned and driven by
// sched::CacheServer. Pure bookkeeping — no sockets, no leases — so it is
// unit-testable in isolation and trivially race-free inside the daemon's
// single thread.
//
// One item per unique CellKey. Lifecycle:
//
//   pending --FETCH--> leased --REPORT/PUT--> done(trained|served|failed)
//      ^                  |
//      +---lease died-----+   (expiry, disconnect, or explicit release
//                              before a report: the item requeues; a
//                              kFailed report requeues too, up to
//                              kMaxAttempts, then parks as done(failed))
//
// Exactly-once trained accounting does NOT depend on the worker surviving
// to REPORT: the server calls on_stored() from its PUT handler, so a key
// that reaches the cache marks its item done(trained) even if the worker
// is SIGKILLed between PUT and REPORT. REPORT then finds the item already
// done and merely releases the lease.
//
// Durability: every state change that must survive a daemon restart
// (submit, done, requeue-with-attempts) rewrites a snapshot file inside
// the cache directory (temp + rename, magic + FNV-1a trailer via
// serialize/binary_io.h). Leases are volatile by design — on load every
// leased item reverts to pending, the restart analogue of lease expiry —
// so FETCH transitions never touch disk.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "sched/cell_key.h"

namespace nnr::sched {

/// One unit of fleet work: a (study, cell, replicate) coordinate plus the
/// content-addressed key the result must land under. Workers rebuild the
/// plan from the study name and verify the recomputed key matches — the
/// guard against environment skew between coordinator and worker.
struct FleetWorkItem {
  CellKey key{};
  std::string study;
  std::uint32_t cell = 0;
  std::uint32_t replicate = 0;
};

class FleetQueue {
 public:
  /// A kFailed report beyond this many attempts parks the item as
  /// done(failed) instead of requeueing — a deterministic crash in one
  /// cell must not wedge the whole fleet in a retry loop.
  static constexpr std::uint32_t kMaxAttempts = 3;

  enum class ItemState : std::uint8_t { kPending = 0, kLeased = 1, kDone = 2 };
  enum class Outcome : std::uint8_t { kTrained = 0, kServed = 1, kFailed = 2 };

  /// `snapshot_path` is where the queue persists itself; empty disables
  /// persistence (unit tests of the pure state machine).
  explicit FleetQueue(std::string snapshot_path);

  /// Restores a previous daemon's snapshot if one exists (leased items
  /// revert to pending). An unreadable or corrupt snapshot is discarded —
  /// losing a queue degrades to resubmission, never to a wedged daemon.
  void load();

  struct SubmitStats {
    std::uint64_t enqueued = 0;      // new pending items
    std::uint64_t duplicates = 0;    // key already pending/leased/done
    std::uint64_t already_done = 0;  // entry already in the cache
  };

  /// Enqueues `items`, deduplicating against every key the queue already
  /// tracks. `has_entry(key)` short-circuits keys whose result is already
  /// cached — they go straight to done(served). A submit that lands on a
  /// fully drained queue starts a fresh wave: prior done items are cleared
  /// first so progress counters restart at 0/N.
  SubmitStats submit(const std::vector<FleetWorkItem>& items,
                     const std::function<bool(const CellKey&)>& has_entry);

  /// Next pending item in FIFO order for which `available(key)` holds
  /// (the server skips keys whose flock/lease is momentarily held by an
  /// ordinary claim). The item transitions to leased; pairing it with an
  /// actual lease is the server's job.
  std::optional<FleetWorkItem> fetch_next(
      const std::function<bool(const CellKey&)>& available);

  /// The fetched item's lease died without a report (expiry, disconnect,
  /// release). Requeues it as pending unless it is already done.
  void release_to_pending(const CellKey& key);

  /// Worker report for a leased (or already-done) item. kTrained/kServed
  /// mark it done; kFailed requeues it (attempts + 1) until kMaxAttempts,
  /// then parks it as done(failed). False when the key is unknown.
  bool report(const CellKey& key, Outcome outcome);

  /// A valid entry for `key` was just stored (PUT). If the queue tracks
  /// the key and it is not done yet, it becomes done(trained) — the
  /// store IS the proof of work, whether or not a report follows.
  void on_stored(const CellKey& key);

  struct Stats {
    std::uint64_t total = 0;
    std::uint64_t pending = 0;
    std::uint64_t leased = 0;
    std::uint64_t done = 0;
    std::uint64_t trained = 0;
    std::uint64_t served = 0;
    std::uint64_t failed = 0;
  };
  [[nodiscard]] Stats stats() const;

  /// Rewrites the snapshot unconditionally (graceful daemon shutdown).
  /// Every durable transition already persists, so this is belt-and-braces
  /// against a snapshot lost to a full disk earlier in the run.
  void save() const { persist(); }

  /// pending + leased — the FETCH kMiss "outstanding" field.
  [[nodiscard]] std::uint64_t outstanding() const;
  [[nodiscard]] std::uint64_t total() const { return items_.size(); }

  /// Whether the item for `key` is currently leased (test introspection).
  [[nodiscard]] bool is_leased(const CellKey& key) const;

 private:
  struct Item {
    FleetWorkItem work;
    ItemState state = ItemState::kPending;
    Outcome outcome = Outcome::kTrained;  // meaningful once done
    std::uint32_t attempts = 0;
  };

  void persist() const;
  void push_pending(const CellKey& key);

  std::string snapshot_path_;
  std::unordered_map<CellKey, Item, CellKeyHash> items_;
  /// FIFO of pending keys. May hold stale entries (keys that moved on
  /// since being pushed); fetch_next skips them lazily.
  std::vector<CellKey> pending_fifo_;
  std::size_t fifo_head_ = 0;
};

}  // namespace nnr::sched
