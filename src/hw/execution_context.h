// ExecutionContext: binds a simulated device + determinism mode to the
// kernel policies the tensor substrate consumes.
//
// One context is created per training run (replicate). It owns the
// scheduler-entropy stream for that run; kernel launches draw their combine
// orders from it, so two runs with different entropy streams experience
// different scheduler interleavings — and two runs in deterministic mode (or
// with the entropy channel pinned) are bitwise identical.
#pragma once

#include <utility>

#include "hw/device.h"
#include "rng/generator.h"
#include "tensor/gemm.h"

namespace nnr::hw {

enum class DeterminismMode {
  kDefault,        // vendor-default kernels: fastest, nondeterministic on GPU
  kDeterministic,  // restricted deterministic kernel menu (TF/cuDNN patches)
};

class ExecutionContext {
 public:
  ExecutionContext(DeviceSpec device, DeterminismMode mode,
                   rng::Generator scheduler_entropy)
      : device_(std::move(device)),
        mode_(mode),
        entropy_(std::move(scheduler_entropy)) {}

  [[nodiscard]] const DeviceSpec& device() const noexcept { return device_; }
  [[nodiscard]] DeterminismMode mode() const noexcept { return mode_; }

  /// Policy for GEMM-class kernels (dense/conv forward and backward).
  ///
  /// Tensor-Core devices run GEMM on fixed-tiling MMA units — deterministic —
  /// while CUDA-core devices retire partials in scheduler order.
  [[nodiscard]] tensor::KernelPolicy matmul_policy() noexcept;

  /// Policy for reduction-class kernels (batch-norm statistics, bias
  /// gradients, loss reductions). These have no Tensor-Core implementation:
  /// on a TC device they *fall back* to CUDA cores and stay nondeterministic,
  /// which is why Tensor-Core training is still noisy (paper §3.3).
  [[nodiscard]] tensor::KernelPolicy reduction_policy() noexcept;

  /// True if every kernel launched through this context is deterministic
  /// (bitwise reproducible given identical inputs).
  [[nodiscard]] bool fully_deterministic() const noexcept;

 private:
  [[nodiscard]] tensor::KernelPolicy policy_for(bool tensor_core_eligible) noexcept;

  DeviceSpec device_;
  DeterminismMode mode_;
  rng::Generator entropy_;
};

}  // namespace nnr::hw
