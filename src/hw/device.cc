#include "hw/device.h"

namespace nnr::hw {

DeviceSpec p100() {
  return {.name = "P100",
          .kind = DeviceKind::kGpuCudaCores,
          .arch = GpuArch::kPascal,
          .cuda_cores = 3584,
          .tensor_cores = 0};
}

DeviceSpec v100() {
  return {.name = "V100",
          .kind = DeviceKind::kGpuCudaCores,
          .arch = GpuArch::kVolta,
          .cuda_cores = 5120,
          .tensor_cores = 640};
}

DeviceSpec rtx5000() {
  return {.name = "RTX5000",
          .kind = DeviceKind::kGpuCudaCores,
          .arch = GpuArch::kTuring,
          .cuda_cores = 3072,
          .tensor_cores = 384};
}

DeviceSpec rtx5000_tensor_cores() {
  return {.name = "RTX5000 TC",
          .kind = DeviceKind::kGpuTensorCores,
          .arch = GpuArch::kTuring,
          .cuda_cores = 3072,
          .tensor_cores = 384};
}

DeviceSpec t4() {
  return {.name = "T4",
          .kind = DeviceKind::kGpuCudaCores,
          .arch = GpuArch::kTuring,
          .cuda_cores = 2560,
          .tensor_cores = 320};
}

DeviceSpec tpu_v2() {
  return {.name = "TPUv2",
          .kind = DeviceKind::kTpu,
          .arch = GpuArch::kNone,
          .cuda_cores = 0,
          .tensor_cores = 0};
}

const std::vector<DeviceSpec>& all_devices() {
  static const std::vector<DeviceSpec> devices = {
      p100(), v100(), rtx5000(), rtx5000_tensor_cores(), t4(), tpu_v2()};
  return devices;
}

std::optional<DeviceSpec> find_device(std::string_view name) {
  for (const DeviceSpec& d : all_devices()) {
    if (d.name == name) return d;
  }
  return std::nullopt;
}

}  // namespace nnr::hw
