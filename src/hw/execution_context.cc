#include "hw/execution_context.h"

namespace nnr::hw {

tensor::KernelPolicy ExecutionContext::policy_for(
    bool tensor_core_eligible) noexcept {
  using tensor::AccumOrder;
  tensor::KernelPolicy policy;
  policy.cuda_cores = device_.cuda_cores;

  if (device_.kind == DeviceKind::kTpu) {
    // Systolic array: single-threaded deterministic accumulation in input
    // layout order. Input reordering still changes results (Fig. 6).
    policy.order = AccumOrder::kSequential;
    policy.cuda_cores = 0;
    return policy;
  }

  if (mode_ == DeterminismMode::kDeterministic) {
    // Restricted deterministic kernel menu: fixed-tree reductions.
    policy.order = AccumOrder::kPairwiseTree;
    return policy;
  }

  if (device_.kind == DeviceKind::kGpuTensorCores && tensor_core_eligible) {
    // MMA units use fixed tiling: deterministic. (Noise still enters through
    // the CUDA-core fallback ops; see reduction_policy().)
    policy.order = AccumOrder::kPairwiseTree;
    return policy;
  }

  policy.order = AccumOrder::kShardedShuffled;
  policy.entropy = &entropy_;
  return policy;
}

tensor::KernelPolicy ExecutionContext::matmul_policy() noexcept {
  return policy_for(/*tensor_core_eligible=*/true);
}

tensor::KernelPolicy ExecutionContext::reduction_policy() noexcept {
  return policy_for(/*tensor_core_eligible=*/false);
}

bool ExecutionContext::fully_deterministic() const noexcept {
  return device_.kind == DeviceKind::kTpu ||
         mode_ == DeterminismMode::kDeterministic;
}

}  // namespace nnr::hw
