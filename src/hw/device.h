// Simulated accelerator descriptors.
//
// The paper evaluates NVIDIA P100 (Pascal), V100 (Volta), RTX5000 and T4
// (Turing, with and without Tensor Cores) and a TPUv2-8. What matters for the
// noise study is each device's *reduction semantics*:
//
//   - CUDA-core GPUs retire partial sums in scheduler order -> per-launch
//     random combine order, entropy growing with core count;
//   - Tensor-Core paths use fixed systolic-style tiling for GEMM, but fall
//     back to CUDA cores for unsupported ops (batch-norm statistics, bias
//     gradients, loss reductions), so training remains nondeterministic
//     (paper §3.3 "Accelerator comparison");
//   - TPUs are single-threaded/systolic: reductions are deterministic *given
//     the input layout*, which leaves them sensitive to input ordering
//     (paper Fig. 6).
//
// DeviceSpec carries the parameters that drive these behaviours plus the
// profiler's architecture tag for the deterministic-overhead cost model.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace nnr::hw {

enum class DeviceKind {
  kGpuCudaCores,
  kGpuTensorCores,
  kTpu,
};

enum class GpuArch {
  kNone,    // TPUs
  kPascal,  // P100
  kVolta,   // V100
  kTuring,  // RTX5000, T4
};

struct DeviceSpec {
  std::string name;
  DeviceKind kind = DeviceKind::kGpuCudaCores;
  GpuArch arch = GpuArch::kNone;
  int cuda_cores = 0;    // FP32 ALU count (P100: 3584, V100: 5120, ...)
  int tensor_cores = 0;  // dedicated MMA units (0 if absent/unused)

  /// True when the device's compute model is deterministic by construction
  /// (TPU systolic arrays) rather than via restricted kernel menus.
  [[nodiscard]] bool inherently_deterministic() const noexcept {
    return kind == DeviceKind::kTpu;
  }
};

/// The devices benchmarked in the paper (§2.2, Fig. 5, Fig. 8).
[[nodiscard]] DeviceSpec p100();
[[nodiscard]] DeviceSpec v100();
[[nodiscard]] DeviceSpec rtx5000();
[[nodiscard]] DeviceSpec rtx5000_tensor_cores();
[[nodiscard]] DeviceSpec t4();
[[nodiscard]] DeviceSpec tpu_v2();

/// All registered devices, in the paper's presentation order.
[[nodiscard]] const std::vector<DeviceSpec>& all_devices();

/// Lookup by name ("P100", "V100", "RTX5000", "RTX5000 TC", "T4", "TPUv2").
[[nodiscard]] std::optional<DeviceSpec> find_device(std::string_view name);

}  // namespace nnr::hw
