// Calibration metrics: does training noise destabilize a model's confidence,
// not just its predictions?
//
// The paper shows noise leaves top-line accuracy alone while destabilizing
// sub-aggregate measures (per-class accuracy, sub-group FPR/FNR — §3.2).
// Calibration is another such sub-aggregate: two replicates can agree on
// accuracy yet assign very different confidence to the same examples, which
// matters in exactly the safety-critical settings the paper motivates
// (thresholded decisions in medicine, lending). This module provides the
// standard binned calibration diagnostics; the ablation bench measures their
// replicate-to-replicate spread per noise variant.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace nnr::metrics {

/// One confidence bin of a reliability diagram.
struct ReliabilityBin {
  double confidence_sum = 0.0;  // sum of confidences landing in the bin
  std::int64_t correct = 0;     // correctly predicted examples in the bin
  std::int64_t count = 0;       // examples in the bin

  [[nodiscard]] double mean_confidence() const noexcept {
    return count > 0 ? confidence_sum / static_cast<double>(count) : 0.0;
  }
  [[nodiscard]] double accuracy() const noexcept {
    return count > 0 ? static_cast<double>(correct) /
                           static_cast<double>(count)
                     : 0.0;
  }
};

/// Equal-width reliability histogram over [0, 1]. Confidence exactly 1.0
/// lands in the last bin. Preconditions: equal spans, bins >= 1,
/// confidences in [0, 1].
[[nodiscard]] std::vector<ReliabilityBin> reliability_diagram(
    std::span<const float> confidences,
    std::span<const std::int32_t> predictions,
    std::span<const std::int32_t> labels, int bins);

/// Expected calibration error: the count-weighted mean |accuracy - mean
/// confidence| over the reliability bins (Naeini et al. 2015 form, the
/// standard 15-bin default elsewhere in the literature). Range [0, 1];
/// 0 = perfectly calibrated.
[[nodiscard]] double expected_calibration_error(
    std::span<const float> confidences,
    std::span<const std::int32_t> predictions,
    std::span<const std::int32_t> labels, int bins = 15);

/// Mean confidence minus accuracy: positive = overconfident. A signed
/// companion to ECE (which is unsigned and cannot distinguish over- from
/// under-confidence).
[[nodiscard]] double confidence_gap(std::span<const float> confidences,
                                    std::span<const std::int32_t> predictions,
                                    std::span<const std::int32_t> labels);

/// Per-example confidence divergence between two replicates: mean |c1 - c2|.
/// Zero only when the two models assign identical confidence everywhere —
/// a stricter agreement notion than churn (which only compares argmaxes).
[[nodiscard]] double confidence_divergence(std::span<const float> a,
                                           std::span<const float> b);

}  // namespace nnr::metrics
