// Classification metrics: top-1 accuracy, per-class accuracy, and binary
// confusion-based rates (FPR/FNR) with sub-group disaggregation.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace nnr::metrics {

/// Fraction of matching predictions. Precondition: equal, non-zero sizes.
[[nodiscard]] double accuracy(std::span<const std::int32_t> predictions,
                              std::span<const std::int32_t> labels);

/// Per-class accuracy: element c is the accuracy over examples whose label
/// is c (NaN-free: classes with no examples report 0 and are flagged).
struct PerClassAccuracy {
  std::vector<double> accuracy;       // [num_classes]
  std::vector<std::int64_t> support;  // examples per class
};

[[nodiscard]] PerClassAccuracy per_class_accuracy(
    std::span<const std::int32_t> predictions,
    std::span<const std::int32_t> labels, std::int64_t num_classes);

/// Binary confusion counts over an example subset given by `mask`
/// (mask empty => all examples).
struct BinaryConfusion {
  std::int64_t tp = 0, fp = 0, tn = 0, fn = 0;

  [[nodiscard]] std::int64_t total() const noexcept {
    return tp + fp + tn + fn;
  }
  [[nodiscard]] double accuracy() const noexcept;
  /// FP / (FP + TN); 0 when there are no negatives.
  [[nodiscard]] double false_positive_rate() const noexcept;
  /// FN / (FN + TP); 0 when there are no positives.
  [[nodiscard]] double false_negative_rate() const noexcept;
};

[[nodiscard]] BinaryConfusion binary_confusion(
    std::span<const std::int32_t> predictions,
    std::span<const std::uint8_t> labels,
    std::span<const std::uint8_t> mask = {});

}  // namespace nnr::metrics
