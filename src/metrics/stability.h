// Model-stability measures (paper §2.1): predictive churn, normalized L2
// weight distance, and their aggregation over replicate pairs.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "metrics/running_stat.h"

namespace nnr::metrics {

/// Predictive churn C(f1, f2) = fraction of test examples where the two
/// models' predictions disagree (Milani Fard et al., 2016; paper Eq. 2).
[[nodiscard]] double churn(std::span<const std::int32_t> predictions_a,
                           std::span<const std::int32_t> predictions_b);

/// L2 distance between two weight vectors, each first normalized to unit
/// length (the paper normalizes "for a consistent visualization scale").
[[nodiscard]] double normalized_l2_distance(std::span<const float> weights_a,
                                            std::span<const float> weights_b);

/// Pairwise aggregation over N replicates: mean churn / mean normalized L2
/// over all N*(N-1)/2 unordered pairs.
struct PairwiseStability {
  RunningStat churn;
  RunningStat l2;
};

[[nodiscard]] PairwiseStability pairwise_stability(
    std::span<const std::vector<std::int32_t>> predictions,
    std::span<const std::vector<float>> weights);

/// Per-example instability: for each test example, the fraction of replicate
/// pairs whose predictions disagree on it. Aggregate churn is the mean of
/// this vector; its *distribution* shows where churn concentrates. The paper
/// observes noise "disproportionately impact[s] features in the long-tail"
/// (§3.2) — this is the example-level view of that finding (cf. Chen et al.
/// 2020 on per-example prediction variation).
[[nodiscard]] std::vector<double> per_example_flip_rate(
    std::span<const std::vector<std::int32_t>> predictions);

/// Summary of how concentrated per-example churn is.
struct ChurnConcentration {
  double mean_flip_rate = 0.0;     // == aggregate churn
  double frac_never_flip = 0.0;    // examples with flip rate 0
  double frac_always_flip = 0.0;   // examples that flip in every pair
  /// Fraction of all flips carried by the top decile of examples (1.0 =
  /// perfectly concentrated, 0.1 = perfectly uniform).
  double top_decile_share = 0.0;
  /// Gini coefficient of the flip-rate distribution (0 = uniform churn,
  /// -> 1 = churn concentrated on a vanishing fraction of examples).
  double gini = 0.0;
};

[[nodiscard]] ChurnConcentration churn_concentration(
    std::span<const double> flip_rates);

}  // namespace nnr::metrics
