// Streaming mean / standard deviation (Welford). Metrics are computed in
// double precision: they are measurement-side code, not part of the simulated
// device, so they must not themselves contribute rounding noise.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

namespace nnr::metrics {

class RunningStat {
 public:
  void add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = x < min_ ? x : min_;
    max_ = x > max_ ? x : max_;
  }

  [[nodiscard]] std::int64_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ > 0 ? mean_ : 0.0; }

  /// Sample standard deviation (n-1 denominator), matching the paper's
  /// "standard deviation over 10 independent runs".
  [[nodiscard]] double stddev() const noexcept {
    return n_ > 1 ? std::sqrt(m2_ / static_cast<double>(n_ - 1)) : 0.0;
  }

  /// Population variant (n denominator), for property tests.
  [[nodiscard]] double stddev_population() const noexcept {
    return n_ > 0 ? std::sqrt(m2_ / static_cast<double>(n_)) : 0.0;
  }

  [[nodiscard]] double min() const noexcept { return n_ > 0 ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ > 0 ? max_ : 0.0; }

 private:
  std::int64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace nnr::metrics
