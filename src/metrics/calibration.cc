#include "metrics/calibration.h"

#include <cassert>
#include <cmath>

namespace nnr::metrics {

std::vector<ReliabilityBin> reliability_diagram(
    std::span<const float> confidences,
    std::span<const std::int32_t> predictions,
    std::span<const std::int32_t> labels, int bins) {
  assert(bins >= 1);
  assert(confidences.size() == predictions.size());
  assert(confidences.size() == labels.size());
  std::vector<ReliabilityBin> diagram(static_cast<std::size_t>(bins));
  for (std::size_t i = 0; i < confidences.size(); ++i) {
    const double c = confidences[i];
    assert(c >= 0.0 && c <= 1.0);
    auto b = static_cast<std::size_t>(c * bins);
    if (b >= diagram.size()) b = diagram.size() - 1;  // c == 1.0
    diagram[b].confidence_sum += c;
    diagram[b].correct += predictions[i] == labels[i] ? 1 : 0;
    ++diagram[b].count;
  }
  return diagram;
}

double expected_calibration_error(std::span<const float> confidences,
                                  std::span<const std::int32_t> predictions,
                                  std::span<const std::int32_t> labels,
                                  int bins) {
  if (confidences.empty()) return 0.0;
  const std::vector<ReliabilityBin> diagram =
      reliability_diagram(confidences, predictions, labels, bins);
  const double n = static_cast<double>(confidences.size());
  double ece = 0.0;
  for (const ReliabilityBin& bin : diagram) {
    if (bin.count == 0) continue;
    ece += (static_cast<double>(bin.count) / n) *
           std::fabs(bin.accuracy() - bin.mean_confidence());
  }
  return ece;
}

double confidence_gap(std::span<const float> confidences,
                      std::span<const std::int32_t> predictions,
                      std::span<const std::int32_t> labels) {
  assert(confidences.size() == predictions.size());
  assert(confidences.size() == labels.size());
  if (confidences.empty()) return 0.0;
  double conf = 0.0;
  double correct = 0.0;
  for (std::size_t i = 0; i < confidences.size(); ++i) {
    conf += confidences[i];
    correct += predictions[i] == labels[i] ? 1.0 : 0.0;
  }
  const double n = static_cast<double>(confidences.size());
  return conf / n - correct / n;
}

double confidence_divergence(std::span<const float> a,
                             std::span<const float> b) {
  assert(a.size() == b.size());
  if (a.empty()) return 0.0;
  double total = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    total += std::fabs(static_cast<double>(a[i]) - b[i]);
  }
  return total / static_cast<double>(a.size());
}

}  // namespace nnr::metrics
