#include "metrics/stability.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace nnr::metrics {

double churn(std::span<const std::int32_t> a, std::span<const std::int32_t> b) {
  assert(a.size() == b.size() && !a.empty());
  std::int64_t disagreements = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) ++disagreements;
  }
  return static_cast<double>(disagreements) / static_cast<double>(a.size());
}

double normalized_l2_distance(std::span<const float> a,
                              std::span<const float> b) {
  assert(a.size() == b.size() && !a.empty());
  double norm_a = 0.0;
  double norm_b = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    norm_a += static_cast<double>(a[i]) * a[i];
    norm_b += static_cast<double>(b[i]) * b[i];
  }
  norm_a = std::sqrt(norm_a);
  norm_b = std::sqrt(norm_b);
  if (norm_a == 0.0 || norm_b == 0.0) return 0.0;
  double dist_sq = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] / norm_a - b[i] / norm_b;
    dist_sq += d * d;
  }
  return std::sqrt(dist_sq);
}

PairwiseStability pairwise_stability(
    std::span<const std::vector<std::int32_t>> predictions,
    std::span<const std::vector<float>> weights) {
  assert(predictions.size() == weights.size());
  PairwiseStability stats;
  for (std::size_t i = 0; i < predictions.size(); ++i) {
    for (std::size_t j = i + 1; j < predictions.size(); ++j) {
      stats.churn.add(churn(predictions[i], predictions[j]));
      stats.l2.add(normalized_l2_distance(weights[i], weights[j]));
    }
  }
  return stats;
}

std::vector<double> per_example_flip_rate(
    std::span<const std::vector<std::int32_t>> predictions) {
  assert(predictions.size() >= 2);
  const std::size_t n = predictions[0].size();
  std::vector<double> rates(n, 0.0);
  std::int64_t pairs = 0;
  for (std::size_t i = 0; i < predictions.size(); ++i) {
    assert(predictions[i].size() == n);
    for (std::size_t j = i + 1; j < predictions.size(); ++j) {
      ++pairs;
      for (std::size_t e = 0; e < n; ++e) {
        if (predictions[i][e] != predictions[j][e]) rates[e] += 1.0;
      }
    }
  }
  for (double& r : rates) r /= static_cast<double>(pairs);
  return rates;
}

ChurnConcentration churn_concentration(std::span<const double> flip_rates) {
  assert(!flip_rates.empty());
  ChurnConcentration result;
  const auto n = static_cast<double>(flip_rates.size());

  std::vector<double> sorted(flip_rates.begin(), flip_rates.end());
  std::sort(sorted.begin(), sorted.end());
  const double total = std::accumulate(sorted.begin(), sorted.end(), 0.0);
  result.mean_flip_rate = total / n;
  result.frac_never_flip =
      static_cast<double>(std::count(sorted.begin(), sorted.end(), 0.0)) / n;
  result.frac_always_flip =
      static_cast<double>(std::count(sorted.begin(), sorted.end(), 1.0)) / n;

  if (total > 0.0) {
    const std::size_t decile_start =
        flip_rates.size() - std::max<std::size_t>(1, flip_rates.size() / 10);
    const double top_sum = std::accumulate(
        sorted.begin() + static_cast<std::ptrdiff_t>(decile_start),
        sorted.end(), 0.0);
    result.top_decile_share = top_sum / total;

    // Gini via the sorted-rank identity: G = (2 sum_i i*x_i) / (n sum x) -
    // (n + 1) / n, with 1-based ranks over ascending x.
    double weighted = 0.0;
    for (std::size_t i = 0; i < sorted.size(); ++i) {
      weighted += static_cast<double>(i + 1) * sorted[i];
    }
    result.gini = 2.0 * weighted / (n * total) - (n + 1.0) / n;
  }
  return result;
}

}  // namespace nnr::metrics
