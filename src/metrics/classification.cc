#include "metrics/classification.h"

#include <cassert>

namespace nnr::metrics {

double accuracy(std::span<const std::int32_t> predictions,
                std::span<const std::int32_t> labels) {
  assert(predictions.size() == labels.size() && !predictions.empty());
  std::int64_t correct = 0;
  for (std::size_t i = 0; i < predictions.size(); ++i) {
    if (predictions[i] == labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(predictions.size());
}

PerClassAccuracy per_class_accuracy(std::span<const std::int32_t> predictions,
                                    std::span<const std::int32_t> labels,
                                    std::int64_t num_classes) {
  assert(predictions.size() == labels.size());
  PerClassAccuracy result;
  result.accuracy.assign(static_cast<std::size_t>(num_classes), 0.0);
  result.support.assign(static_cast<std::size_t>(num_classes), 0);
  std::vector<std::int64_t> correct(static_cast<std::size_t>(num_classes), 0);
  for (std::size_t i = 0; i < labels.size(); ++i) {
    const auto cls = static_cast<std::size_t>(labels[i]);
    assert(labels[i] >= 0 && labels[i] < num_classes);
    ++result.support[cls];
    if (predictions[i] == labels[i]) ++correct[cls];
  }
  for (std::size_t c = 0; c < result.accuracy.size(); ++c) {
    result.accuracy[c] =
        result.support[c] > 0
            ? static_cast<double>(correct[c]) /
                  static_cast<double>(result.support[c])
            : 0.0;
  }
  return result;
}

double BinaryConfusion::accuracy() const noexcept {
  const std::int64_t n = total();
  return n > 0 ? static_cast<double>(tp + tn) / static_cast<double>(n) : 0.0;
}

double BinaryConfusion::false_positive_rate() const noexcept {
  const std::int64_t negatives = fp + tn;
  return negatives > 0 ? static_cast<double>(fp) / static_cast<double>(negatives)
                       : 0.0;
}

double BinaryConfusion::false_negative_rate() const noexcept {
  const std::int64_t positives = fn + tp;
  return positives > 0 ? static_cast<double>(fn) / static_cast<double>(positives)
                       : 0.0;
}

BinaryConfusion binary_confusion(std::span<const std::int32_t> predictions,
                                 std::span<const std::uint8_t> labels,
                                 std::span<const std::uint8_t> mask) {
  assert(predictions.size() == labels.size());
  assert(mask.empty() || mask.size() == labels.size());
  BinaryConfusion confusion;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (!mask.empty() && mask[i] == 0) continue;
    const bool predicted_pos = predictions[i] != 0;
    const bool actual_pos = labels[i] != 0;
    if (predicted_pos && actual_pos) ++confusion.tp;
    if (predicted_pos && !actual_pos) ++confusion.fp;
    if (!predicted_pos && actual_pos) ++confusion.fn;
    if (!predicted_pos && !actual_pos) ++confusion.tn;
  }
  return confusion;
}

}  // namespace nnr::metrics
