// Deterministic fault injection for the cache wire (chaos testing).
//
// A FaultInjector turns a parseable spec into a replayable stream of
// per-I/O fault decisions, driven by the same Philox4x32-10 generator the
// experiment harness uses for training noise (rng/philox.h): decision i is
// a pure function of (seed, i), so the exact same spec + seed reproduces
// the exact same fault sequence — a chaos failure is a regression test,
// not an anecdote.
//
// Spec grammar (comma-separated key=value tokens, any order, all optional):
//
//   drop=P          P in [0,1]: a send vanishes after being accepted
//                   (models packet loss — the peer times out)
//   corrupt=P       one bit of the sent bytes flips (the frame checksum
//                   catches it; the receiver drops the connection)
//   reset=P         the connection is hard-reset (SO_LINGER 0 -> RST)
//   delay_ms=D:P    with probability P the call sleeps D ms first
//                   (P defaults to 1 when ":P" is omitted; D <= 10000)
//   seed=N          Philox seed (default 0)
//
// Example: drop=0.05,delay_ms=20:0.10,corrupt=0.02,reset=0.02,seed=7
//
// Send-side calls draw the full decision (drop/corrupt/reset/delay);
// receive-side calls apply only delay and reset — losing or flipping bytes
// is something the network does to the *sender's* data, and modeling it
// once keeps the event stream replayable.
//
// Installation: process-global seam. Socket I/O calls
// FaultInjector::active(), which is a single relaxed atomic load once the
// one-time NNR_FAULT_SPEC env check has run — zero cost when off (the
// common case: no injector, nullptr, no decision drawn). Tests install a
// local injector with ScopedInstall.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace nnr::net {

struct FaultSpec {
  double drop = 0.0;
  double corrupt = 0.0;
  double reset = 0.0;
  double delay_prob = 0.0;
  std::uint32_t delay_ms = 0;
  std::uint64_t seed = 0;

  /// True when any fault can actually fire.
  [[nodiscard]] bool any() const noexcept {
    return drop > 0.0 || corrupt > 0.0 || reset > 0.0 ||
           (delay_prob > 0.0 && delay_ms > 0);
  }

  /// Parses the spec grammar above. nullopt on any malformed token, an
  /// out-of-range probability, or delay_ms > 10000 (a typo'd delay must
  /// not wedge a daemon for minutes per frame).
  static std::optional<FaultSpec> parse(std::string_view text);

  /// The spec back in grammar form, canonically: only effective fields are
  /// emitted (a fault with probability 0, a delay that can never fire, or
  /// seed 0 all disappear), delay is `delay_ms=D` when its probability is
  /// 1, probabilities carry at most six decimal places. The law the tests
  /// hold this to: parse(to_string()) reproduces every effective field, so
  /// a logged spec can be replayed verbatim. An all-defaults spec prints
  /// as "" (which parse() accepts as the no-fault spec).
  [[nodiscard]] std::string to_string() const;
};

/// What one I/O call should suffer. At most one of drop/corrupt/reset is
/// set (priority reset > drop > corrupt — a reset makes the others moot);
/// delay is drawn independently and composes with any of them.
struct FaultDecision {
  bool drop = false;
  bool corrupt = false;
  bool reset = false;
  std::uint32_t delay_ms = 0;
  /// Which bit of the outgoing bytes to flip (mod 8 * size at the site).
  std::uint64_t corrupt_bit = 0;
};

class FaultInjector {
 public:
  explicit FaultInjector(const FaultSpec& spec) noexcept : spec_(spec) {}

  /// Decision for event `index` — pure, replayable, thread-safe.
  [[nodiscard]] FaultDecision decide(std::uint64_t index) const noexcept;

  /// Draws the next decision in this injector's event stream and bumps
  /// the observability counters.
  FaultDecision next() noexcept;

  [[nodiscard]] const FaultSpec& spec() const noexcept { return spec_; }

  // Observability: how many events were drawn / faults actually fired.
  [[nodiscard]] std::uint64_t events() const noexcept { return events_; }
  [[nodiscard]] std::uint64_t drops() const noexcept { return drops_; }
  [[nodiscard]] std::uint64_t corrupts() const noexcept { return corrupts_; }
  [[nodiscard]] std::uint64_t resets() const noexcept { return resets_; }
  [[nodiscard]] std::uint64_t delays() const noexcept { return delays_; }

  /// The injector Socket I/O consults: nullptr when faults are off. The
  /// first call performs the one-time NNR_FAULT_SPEC check; after that it
  /// is one atomic load.
  [[nodiscard]] static FaultInjector* active() noexcept;

  /// Installs `next` as the process-global injector (nullptr disarms);
  /// returns the previous one. Prefer ScopedInstall in tests.
  static FaultInjector* install(FaultInjector* next) noexcept;

  /// RAII install/restore for tests.
  class ScopedInstall {
   public:
    explicit ScopedInstall(FaultInjector* injector) noexcept
        : prev_(install(injector)) {}
    ~ScopedInstall() { (void)install(prev_); }
    ScopedInstall(const ScopedInstall&) = delete;
    ScopedInstall& operator=(const ScopedInstall&) = delete;

   private:
    FaultInjector* prev_;
  };

 private:
  FaultSpec spec_;
  std::atomic<std::uint64_t> counter_{0};
  std::atomic<std::uint64_t> events_{0};
  std::atomic<std::uint64_t> drops_{0};
  std::atomic<std::uint64_t> corrupts_{0};
  std::atomic<std::uint64_t> resets_{0};
  std::atomic<std::uint64_t> delays_{0};
};

}  // namespace nnr::net
