#include "net/backoff.h"

#include <unistd.h>

#include <algorithm>

namespace nnr::net {

std::uint64_t default_jitter_seed() noexcept {
  // SplitMix64 scramble: adjacent pids (a fleet launched by one script)
  // must map to unrelated jitter streams.
  std::uint64_t z =
      static_cast<std::uint64_t>(::getpid()) + 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::int64_t Jitter::around(std::int64_t base_ms) noexcept {
  if (base_ms <= 0) return base_ms;
  const double factor = 0.5 + (rng_() + 0.5) * 0x1p-32;  // [0.5, 1.5)
  const auto jittered =
      static_cast<std::int64_t>(static_cast<double>(base_ms) * factor);
  return std::max<std::int64_t>(jittered, 1);
}

Backoff::Backoff(std::int64_t base_ms, std::int64_t max_ms,
                 std::uint64_t seed) noexcept
    : base_ms_(std::max<std::int64_t>(base_ms, 1)),
      max_ms_(std::max(max_ms, base_ms_)),
      jitter_(seed) {}

std::int64_t Backoff::next_ms() noexcept {
  const int shift = std::min(failures_, 20);  // 2^20 * base is past any cap
  ++failures_;
  const std::int64_t window = std::min(max_ms_, base_ms_ << shift);
  return jitter_.around(window);
}

}  // namespace nnr::net
