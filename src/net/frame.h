// Length-prefixed binary framing for the nnr_cached wire protocol, built on
// the serialize/binary_io primitives so the wire shares the file formats'
// integrity contract (magic + FNV-1a trailer verified before a single byte
// is interpreted).
//
// One frame on the wire:
//
//   u32 payload_len (LE)          -- length of everything that follows
//   payload:
//     magic  "NNRC"  (4 bytes)
//     u8     version (kWireVersion; bump on any incompatible change)
//     u8     opcode  (net/cache_protocol.h)
//     body   opcode-specific bytes
//     u64    FNV-1a over version|opcode|body
//
// Requests and responses share this shape; a response echoes the request's
// opcode and its body starts with a one-byte Status. Versioning rule:
// within one version the body layouts in cache_protocol.h are frozen —
// adding or changing a field means bumping kWireVersion, and a server
// drops connections that present any other version (a client treats the
// drop as degrade-to-recompute, so version skew can never corrupt a study,
// only slow it down).
//
// Malformed input (bad magic, version, checksum, truncation, oversized
// length) surfaces as serialize::CheckpointError from decode_frame; both
// endpoints treat it as a fatal connection error, never as data.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "net/socket.h"

namespace nnr::net {

inline constexpr std::uint8_t kWireVersion = 1;
inline constexpr std::string_view kFrameMagic = "NNRC";
/// Hard ceiling on one frame's payload: comfortably above any serialized
/// RunResult, far below anything that could OOM the daemon on garbage input.
inline constexpr std::uint32_t kMaxFrameBytes = 64u << 20;

struct Frame {
  std::uint8_t version = 0;
  std::uint8_t opcode = 0;
  std::string body;
};

/// Builds a complete frame (length prefix included) for `opcode`/`body`.
[[nodiscard]] std::string encode_frame(std::uint8_t opcode,
                                       std::string_view body);

/// Parses `payload` (everything after the u32 length prefix). Throws
/// serialize::CheckpointError on bad magic, wrong version, checksum
/// mismatch, or truncation.
[[nodiscard]] Frame decode_frame(std::string_view payload);

/// Sends one frame over a blocking socket. False on any socket error —
/// including a send timeout, because a partially written frame has already
/// desynchronized the stream.
bool send_frame(Socket& sock, std::uint8_t opcode, std::string_view body);

/// How a frame receive ended. kTimeout is the one retryable outcome: the
/// receive window expired before the FIRST byte of a frame arrived, so the
/// stream is still aligned and the same receive can simply be reissued (a
/// slow daemon mid-training-store looks exactly like this). A timeout that
/// strikes after bytes were consumed is a desync and reports kError.
enum class RecvStatus : std::uint8_t {
  kFrame = 0,    // a complete, well-formed frame was received
  kTimeout = 1,  // clean timeout on a frame boundary — retry is safe
  kClosed = 2,   // peer closed the connection (orderly EOF)
  kError = 3,    // socket error, oversized/garbage length, or mid-frame
                 // timeout — the connection is unusable
};

struct RecvFrameResult {
  RecvStatus status = RecvStatus::kError;
  Frame frame;  // meaningful only when status == kFrame
};

/// Receives one frame, distinguishing a clean timeout from a dead or
/// desynchronized connection. Throws serialize::CheckpointError on a
/// malformed payload (the caller should drop the connection).
[[nodiscard]] RecvFrameResult recv_frame_ex(Socket& sock);

/// Compatibility wrapper over recv_frame_ex: nullopt on anything but a
/// complete frame (timeout, EOF, error, oversized length all collapse).
/// Prefer recv_frame_ex where retry-after-timeout matters.
[[nodiscard]] std::optional<Frame> recv_frame(Socket& sock);

}  // namespace nnr::net
