// The nnr_cached request/response vocabulary, shared verbatim by the daemon
// (sched/cache_server.h) and the client (sched/remote_cache_backend.h).
// Framing and integrity live in net/frame.h; this header pins down the
// opcodes and body layouts. All integers are little-endian; keys are the
// 128-bit content-addressed CellKey (hi, lo).
//
//   op          request body                  response body (after Status)
//   ----------  ----------------------------  --------------------------------
//   kPing       (empty)                       u8 server wire version
//   kGet        u64 hi | u64 lo               kFound: u64 n | entry bytes[n]
//                                             kMiss:  (empty)
//   kPut        u64 hi | u64 lo               kOk | kError
//               | u64 n | entry bytes[n]
//   kTryClaim   u64 hi | u64 lo | u32 ttl_ms  kGranted: u64 lease_id
//                                                       | u32 granted_ttl_ms
//                                             kBusy:    (empty)
//               (granted_ttl_ms is the server-clamped TTL actually armed;
//               clients must pace heartbeats against IT, not the request)
//   kRelease    u64 hi | u64 lo | u64 lease   kOk | kGone
//   kHeartbeat  u64 hi | u64 lo | u64 lease   kOk | kGone
//   kStat       (empty)                       kOk: u64 entries | u64 bytes
//                                             | u64 hits | u64 misses
//                                             | u64 stores | u64 active_leases
//                                             | u64 expired_leases
//   kGc         (empty)                       kOk: i64 removed_tmp
//                                             | i64 removed_locks | i64 evicted
//                                             | i64 evicted_bytes | i64 entries
//                                             | i64 bytes
//   kSubmit     u32 count, then count x:      kOk: u64 enqueued | u64 dups
//               u64 hi | u64 lo                    | u64 already_done
//               | u32 study_len               kBusy: u32 retry_after_ms
//               | study bytes[study_len]      (the daemon is draining for
//               | u32 cell | u32 replicate    shutdown: nothing was
//                                             enqueued — resubmit after the
//                                             hint, to the restarted daemon)
//   kFetch      u32 ttl_ms                    kGranted: u64 lease_id
//                                               | u32 granted_ttl_ms
//                                               | u64 hi | u64 lo
//                                               | u32 study_len
//                                               | study bytes[study_len]
//                                               | u32 cell | u32 replicate
//                                             kMiss: u64 outstanding
//                                               | u64 total
//               (outstanding = pending + leased; 0 with total > 0 means
//               the queue has drained — a worker may exit. A kMiss with
//               outstanding > 0 means every pending key is momentarily
//               unavailable: sleep and re-FETCH)
//   kReport     u64 hi | u64 lo | u64 lease   kOk: u64 done | u64 total
//               | u8 outcome                  kGone: (empty)
//               (outcome: 0 = trained, 1 = served from cache, 2 = failed.
//               kGone = lease unknown/expired; nothing changed)
//   kQueueStat  (empty)                       kOk: u64 total | u64 pending
//                                             | u64 leased | u64 done
//                                             | u64 trained | u64 served
//                                             | u64 failed
//   kGoAway     (server -> client only)       u8 status (kBusy)
//                                             | u32 retry_after_ms
//               (unsolicited: sent once on an over-capacity accept, then
//               the server closes the connection. A client that receives
//               it anywhere treats the connection as gone and backs off
//               at least retry_after_ms before reconnecting)
//   kShardInfo  (empty)                       kOk: u64 instance_id
//                                             | u64 dir_uid | u64 boot_epoch
//               (shard identity, for the sharded client's dir-disjointness
//               check: instance_id is random per daemon process, dir_uid is
//               persisted inside the cache directory at first start and
//               survives restarts, boot_epoch increments per daemon start
//               on that directory. Two shard slots reporting one dir_uid
//               means two daemons share a directory — a misconfigured shard
//               map. Old daemons answer kError: feature absent)
//
// Overload responses: a rate-limited request is answered with its own
// opcode and a kThrottled status whose body is `u32 retry_after_ms` — the
// connection stays healthy, the client sleeps the hint (jittered) and
// resends. kThrottled never carries data, so honoring it late or not at
// all costs throughput, never correctness.
//
// kSubmit/kFetch/kReport/kQueueStat are the fleet work queue (the daemon-
// side cell queue; lifecycle diagram in ARCHITECTURE.md). They were added
// within wire version 1 under the new-opcode rule: an older server answers
// them with kError and a client treats that as "feature absent".
//
// "entry bytes" are exactly the on-disk RunResult file format
// (serialize/run_result.h) — magic, body, checksum trailer — so the daemon
// stores PUT bodies verbatim and serves GETs straight from disk, and every
// client re-validates what it receives. A response always echoes the
// request's opcode; unknown opcodes and malformed bodies cost the sender
// its connection (claims held by that connection are released).
#pragma once

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <string_view>
#include <type_traits>

namespace nnr::net {

enum class Op : std::uint8_t {
  kPing = 1,
  kGet = 2,
  kPut = 3,
  kTryClaim = 4,
  kRelease = 5,
  kHeartbeat = 6,
  kStat = 7,
  kGc = 8,
  // Fleet work queue (added within version 1; old servers answer kError).
  kSubmit = 9,
  kFetch = 10,
  kReport = 11,
  kQueueStat = 12,
  /// Server -> client only: "I am over capacity, go away" (new-opcode
  /// rule: an old client fails to match it to a request and degrades).
  kGoAway = 13,
  /// Shard identity for the sharded cache tier's dir-disjointness check
  /// (added within version 1; old servers answer kError).
  kShardInfo = 14,
};

/// REPORT's one-byte outcome field.
enum class ReportOutcome : std::uint8_t {
  kTrained = 0,  // worker trained the cell and stored the entry
  kServed = 1,   // the entry was already in the cache (served, not trained)
  kFailed = 2,   // training failed; the daemon requeues (bounded attempts)
};

/// First byte of every response body.
enum class Status : std::uint8_t {
  kOk = 0,
  kFound = 1,
  kMiss = 2,
  kGranted = 3,
  kBusy = 4,    // claim held by another lease (or, in kGoAway, a server
                // at its connection cap)
  kGone = 5,    // lease unknown or already expired
  kError = 6,   // request understood but refused (e.g. invalid PUT payload)
  kThrottled = 7,  // rate-limited; body carries u32 retry_after_ms. Added
                   // within version 1: old clients treat it like any other
                   // unexpected status (miss/failure) and stay correct.
};

/// Thrown by BodyReader on a short or overlong body. Both endpoints treat
/// it as a protocol violation: drop the connection (server) or degrade to
/// recompute (client). Distinct from serialize::CheckpointError so a
/// corrupt cache *entry* (data problem, per-key) is never conflated with a
/// corrupt *message* (connection problem).
class ProtocolError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Appends fixed-width little-endian fields to a body string. Bodies ride
/// inside a frame whose checksum covers them, so no extra trailer here.
class BodyWriter {
 public:
  template <typename T>
  void put(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    buf_.append(reinterpret_cast<const char*>(&v), sizeof(T));
  }

  void put_bytes(std::string_view bytes) { buf_.append(bytes); }

  [[nodiscard]] std::string take() { return std::move(buf_); }

 private:
  std::string buf_;
};

/// Reads the fields back; throws ProtocolError on underrun.
class BodyReader {
 public:
  explicit BodyReader(std::string_view body) : body_(body) {}

  template <typename T>
  T get() {
    static_assert(std::is_trivially_copyable_v<T>);
    need(sizeof(T));
    T v;
    std::memcpy(&v, body_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  [[nodiscard]] std::string_view get_bytes(std::size_t n) {
    need(n);
    const std::string_view view = body_.substr(pos_, n);
    pos_ += n;
    return view;
  }

  [[nodiscard]] std::size_t remaining() const noexcept {
    return body_.size() - pos_;
  }

 private:
  void need(std::size_t n) const {
    if (pos_ + n > body_.size()) {
      throw ProtocolError("truncated message body");
    }
  }

  std::string_view body_;
  std::size_t pos_ = 0;
};

}  // namespace nnr::net
