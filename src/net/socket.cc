#include "net/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <utility>

#include "net/fault_injector.h"

namespace nnr::net {

namespace {

/// Applies the delay/reset part of a fault decision (shared by every I/O
/// entry point). Returns true when the connection was reset and the call
/// must bail out.
bool apply_delay(const FaultDecision& d) noexcept {
  if (d.delay_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(d.delay_ms));
  }
  return d.reset;
}

/// Flips decision-selected bit in a private copy of the outgoing bytes.
/// Returns the copy's data, or `p` unchanged if the copy cannot be made
/// (allocation failure under noexcept — skip the fault, not the send).
const char* corrupt_copy(std::string& storage, const char* p,
                         std::size_t bytes, std::uint64_t bit) noexcept {
  try {
    storage.assign(p, bytes);
  } catch (...) {
    return p;
  }
  const std::uint64_t index = bit % (static_cast<std::uint64_t>(bytes) * 8);
  storage[index / 8] ^= static_cast<char>(1u << (index % 8));
  return storage.data();
}

}  // namespace

Socket::~Socket() { close(); }

Socket::Socket(Socket&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

void Socket::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::reset_hard() noexcept {
  if (fd_ < 0) return;
  struct linger lg{};
  lg.l_onoff = 1;
  lg.l_linger = 0;
  (void)::setsockopt(fd_, SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
  close();
}

IoStatus Socket::send_all(const void* data, std::size_t bytes,
                          std::size_t* sent) noexcept {
  if (sent != nullptr) *sent = 0;
  if (fd_ < 0) return IoStatus::kError;
  const char* p = static_cast<const char*>(data);
  std::string mutated;
  if (FaultInjector* inj = FaultInjector::active();
      inj != nullptr && bytes > 0) {
    const FaultDecision d = inj->next();
    if (apply_delay(d)) {
      reset_hard();
      return IoStatus::kClosed;
    }
    if (d.drop) {
      // The network "lost" these bytes after the kernel accepted them:
      // locally indistinguishable from success, the peer just waits.
      if (sent != nullptr) *sent = bytes;
      return IoStatus::kOk;
    }
    if (d.corrupt) p = corrupt_copy(mutated, p, bytes, d.corrupt_bit);
  }
  while (bytes > 0) {
    const ssize_t n = ::send(fd_, p, bytes, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return IoStatus::kTimeout;
      if (errno == EPIPE || errno == ECONNRESET) return IoStatus::kClosed;
      return IoStatus::kError;
    }
    p += n;
    bytes -= static_cast<std::size_t>(n);
    if (sent != nullptr) *sent += static_cast<std::size_t>(n);
  }
  return IoStatus::kOk;
}

IoStatus Socket::recv_exact(void* data, std::size_t bytes,
                            std::size_t* received) noexcept {
  if (received != nullptr) *received = 0;
  if (fd_ < 0) return IoStatus::kError;
  // Receive-side faults are delay and reset only: loss and corruption are
  // things the network does to the sender's bytes (see fault_injector.h).
  if (FaultInjector* inj = FaultInjector::active();
      inj != nullptr && bytes > 0) {
    if (apply_delay(inj->next())) {
      reset_hard();
      return IoStatus::kClosed;
    }
  }
  char* p = static_cast<char*>(data);
  while (bytes > 0) {
    const ssize_t n = ::recv(fd_, p, bytes, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return IoStatus::kTimeout;
      if (errno == ECONNRESET) return IoStatus::kClosed;
      return IoStatus::kError;
    }
    if (n == 0) return IoStatus::kClosed;  // peer's orderly EOF
    p += n;
    bytes -= static_cast<std::size_t>(n);
    if (received != nullptr) *received += static_cast<std::size_t>(n);
  }
  return IoStatus::kOk;
}

std::ptrdiff_t Socket::recv_avail(void* buf, std::size_t cap) noexcept {
  if (fd_ < 0 || cap == 0) return -2;
  if (FaultInjector* inj = FaultInjector::active()) {
    if (apply_delay(inj->next())) {
      reset_hard();
      return -2;
    }
  }
  for (;;) {
    const ssize_t n = ::recv(fd_, buf, cap, 0);
    if (n >= 0) return n;  // > 0 data; 0 orderly EOF
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return -1;
    return -2;
  }
}

std::ptrdiff_t Socket::send_avail(const void* data,
                                  std::size_t bytes) noexcept {
  if (fd_ < 0 || bytes == 0) return -2;
  const char* p = static_cast<const char*>(data);
  std::string mutated;
  if (FaultInjector* inj = FaultInjector::active()) {
    const FaultDecision d = inj->next();
    if (apply_delay(d)) {
      reset_hard();
      return -2;
    }
    if (d.drop) return static_cast<std::ptrdiff_t>(bytes);  // vanished
    if (d.corrupt) p = corrupt_copy(mutated, p, bytes, d.corrupt_bit);
  }
  for (;;) {
    const ssize_t n = ::send(fd_, p, bytes, MSG_NOSIGNAL);
    if (n >= 0) return n;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return -1;
    return -2;
  }
}

void Socket::set_io_timeout_ms(int timeout_ms) noexcept {
  if (fd_ < 0 || timeout_ms <= 0) return;
  struct timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  (void)::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  (void)::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

bool Socket::set_nonblocking() noexcept {
  if (fd_ < 0) return false;
  const int flags = ::fcntl(fd_, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK) == 0;
}

Socket connect_tcp(const std::string& host, std::uint16_t port,
                   int connect_timeout_ms, int io_timeout_ms) {
  struct addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  struct addrinfo* results = nullptr;
  const std::string service = std::to_string(port);
  if (::getaddrinfo(host.c_str(), service.c_str(), &hints, &results) != 0) {
    return Socket();
  }
  Socket sock;
  for (struct addrinfo* ai = results; ai != nullptr; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype | SOCK_CLOEXEC,
                            ai->ai_protocol);
    if (fd < 0) continue;
    Socket candidate(fd);
    // Non-blocking connect + poll gives a bounded connect; a down daemon
    // must fail fast so the client can degrade to recompute.
    (void)candidate.set_nonblocking();
    int rc = ::connect(fd, ai->ai_addr, ai->ai_addrlen);
    if (rc != 0 && errno == EINPROGRESS) {
      struct pollfd pfd{fd, POLLOUT, 0};
      rc = ::poll(&pfd, 1, connect_timeout_ms > 0 ? connect_timeout_ms : -1);
      if (rc == 1) {
        int err = 0;
        socklen_t len = sizeof(err);
        rc = (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) == 0 &&
              err == 0)
                 ? 0
                 : -1;
      } else {
        rc = -1;  // timeout or poll failure
      }
    }
    if (rc != 0) continue;
    // Back to blocking for the synchronous request/response client.
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags >= 0) (void)::fcntl(fd, F_SETFL, flags & ~O_NONBLOCK);
    const int one = 1;
    (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    candidate.set_io_timeout_ms(io_timeout_ms);
    ::freeaddrinfo(results);
    return candidate;
  }
  ::freeaddrinfo(results);
  return Socket();
}

bool Listener::listen_on(const std::string& bind_addr, std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return false;
  Socket sock(fd);
  const int one = 1;
  (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, bind_addr.c_str(), &addr.sin_addr) != 1) {
    return false;
  }
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return false;
  }
  if (::listen(fd, SOMAXCONN) != 0) return false;
  // Ephemeral port (0): report the kernel's choice.
  struct sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&bound), &len) !=
      0) {
    return false;
  }
  if (!sock.set_nonblocking()) return false;
  port_ = ntohs(bound.sin_port);
  sock_ = std::move(sock);
  return true;
}

Socket Listener::accept_conn() noexcept {
  if (!sock_.valid()) return Socket();
  const int fd = ::accept4(sock_.fd(), nullptr, nullptr, SOCK_CLOEXEC);
  return fd >= 0 ? Socket(fd) : Socket();
}

}  // namespace nnr::net
