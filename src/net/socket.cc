#include "net/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace nnr::net {

Socket::~Socket() { close(); }

Socket::Socket(Socket&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

void Socket::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

IoStatus Socket::send_all(const void* data, std::size_t bytes) noexcept {
  if (fd_ < 0) return IoStatus::kError;
  const char* p = static_cast<const char*>(data);
  while (bytes > 0) {
    const ssize_t n = ::send(fd_, p, bytes, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return IoStatus::kTimeout;
      if (errno == EPIPE || errno == ECONNRESET) return IoStatus::kClosed;
      return IoStatus::kError;
    }
    p += n;
    bytes -= static_cast<std::size_t>(n);
  }
  return IoStatus::kOk;
}

IoStatus Socket::recv_exact(void* data, std::size_t bytes,
                            std::size_t* received) noexcept {
  if (received != nullptr) *received = 0;
  if (fd_ < 0) return IoStatus::kError;
  char* p = static_cast<char*>(data);
  while (bytes > 0) {
    const ssize_t n = ::recv(fd_, p, bytes, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return IoStatus::kTimeout;
      if (errno == ECONNRESET) return IoStatus::kClosed;
      return IoStatus::kError;
    }
    if (n == 0) return IoStatus::kClosed;  // peer's orderly EOF
    p += n;
    bytes -= static_cast<std::size_t>(n);
    if (received != nullptr) *received += static_cast<std::size_t>(n);
  }
  return IoStatus::kOk;
}

void Socket::set_io_timeout_ms(int timeout_ms) noexcept {
  if (fd_ < 0 || timeout_ms <= 0) return;
  struct timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  (void)::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  (void)::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

bool Socket::set_nonblocking() noexcept {
  if (fd_ < 0) return false;
  const int flags = ::fcntl(fd_, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK) == 0;
}

Socket connect_tcp(const std::string& host, std::uint16_t port,
                   int connect_timeout_ms, int io_timeout_ms) {
  struct addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  struct addrinfo* results = nullptr;
  const std::string service = std::to_string(port);
  if (::getaddrinfo(host.c_str(), service.c_str(), &hints, &results) != 0) {
    return Socket();
  }
  Socket sock;
  for (struct addrinfo* ai = results; ai != nullptr; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype | SOCK_CLOEXEC,
                            ai->ai_protocol);
    if (fd < 0) continue;
    Socket candidate(fd);
    // Non-blocking connect + poll gives a bounded connect; a down daemon
    // must fail fast so the client can degrade to recompute.
    (void)candidate.set_nonblocking();
    int rc = ::connect(fd, ai->ai_addr, ai->ai_addrlen);
    if (rc != 0 && errno == EINPROGRESS) {
      struct pollfd pfd{fd, POLLOUT, 0};
      rc = ::poll(&pfd, 1, connect_timeout_ms > 0 ? connect_timeout_ms : -1);
      if (rc == 1) {
        int err = 0;
        socklen_t len = sizeof(err);
        rc = (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) == 0 &&
              err == 0)
                 ? 0
                 : -1;
      } else {
        rc = -1;  // timeout or poll failure
      }
    }
    if (rc != 0) continue;
    // Back to blocking for the synchronous request/response client.
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags >= 0) (void)::fcntl(fd, F_SETFL, flags & ~O_NONBLOCK);
    const int one = 1;
    (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    candidate.set_io_timeout_ms(io_timeout_ms);
    ::freeaddrinfo(results);
    return candidate;
  }
  ::freeaddrinfo(results);
  return Socket();
}

bool Listener::listen_on(const std::string& bind_addr, std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return false;
  Socket sock(fd);
  const int one = 1;
  (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, bind_addr.c_str(), &addr.sin_addr) != 1) {
    return false;
  }
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return false;
  }
  if (::listen(fd, SOMAXCONN) != 0) return false;
  // Ephemeral port (0): report the kernel's choice.
  struct sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&bound), &len) !=
      0) {
    return false;
  }
  if (!sock.set_nonblocking()) return false;
  port_ = ntohs(bound.sin_port);
  sock_ = std::move(sock);
  return true;
}

Socket Listener::accept_conn() noexcept {
  if (!sock_.valid()) return Socket();
  const int fd = ::accept4(sock_.fd(), nullptr, nullptr, SOCK_CLOEXEC);
  return fd >= 0 ? Socket(fd) : Socket();
}

}  // namespace nnr::net
