#include "net/fault_injector.h"

#include <cstdio>
#include <cstdlib>

#include "rng/philox.h"

namespace nnr::net {

namespace {

std::atomic<FaultInjector*> g_active{nullptr};

/// Maps a 32-bit word to [0, 1): the (w + 0.5) * 2^-32 convention keeps 0
/// and 1 unreachable, so probability-0 faults can never fire and
/// probability-1 faults always do.
double u01(std::uint32_t w) noexcept { return (w + 0.5) * 0x1p-32; }

/// Parses "K" or "K.FRAC" into a probability; nullopt outside [0, 1] or on
/// any non-numeric character. Hand-rolled so a locale can't change what a
/// spec means.
std::optional<double> parse_prob(std::string_view text) {
  if (text.empty()) return std::nullopt;
  double value = 0.0;
  std::size_t i = 0;
  bool digits = false;
  for (; i < text.size() && text[i] >= '0' && text[i] <= '9'; ++i) {
    value = value * 10.0 + (text[i] - '0');
    digits = true;
  }
  if (i < text.size() && text[i] == '.') {
    ++i;
    double scale = 0.1;
    for (; i < text.size() && text[i] >= '0' && text[i] <= '9'; ++i) {
      value += (text[i] - '0') * scale;
      scale *= 0.1;
      digits = true;
    }
  }
  if (!digits || i != text.size() || value < 0.0 || value > 1.0) {
    return std::nullopt;
  }
  return value;
}

std::optional<std::uint64_t> parse_u64(std::string_view text) {
  if (text.empty()) return std::nullopt;
  std::uint64_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return std::nullopt;
    if (value > (~std::uint64_t{0} - (c - '0')) / 10) return std::nullopt;
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return value;
}

/// One-time NNR_FAULT_SPEC check. A process-lifetime injector (never
/// freed) backs the env path so active() can hand out a raw pointer.
void load_env_injector() noexcept {
  const char* text = std::getenv("NNR_FAULT_SPEC");
  if (text == nullptr || *text == '\0') return;
  const auto spec = FaultSpec::parse(text);
  if (!spec.has_value()) {
    std::fprintf(stderr,
                 "[fault] ignoring malformed NNR_FAULT_SPEC '%s' "
                 "(grammar: drop=P,delay_ms=D:P,corrupt=P,reset=P,seed=N)\n",
                 text);
    return;
  }
  if (!spec->any()) return;
  static FaultInjector env_injector(*spec);
  g_active.store(&env_injector, std::memory_order_release);
  std::fprintf(stderr, "[fault] injector armed: %s\n", text);
}

void ensure_env_checked() noexcept {
  static const bool checked = [] {
    load_env_injector();
    return true;
  }();
  (void)checked;
}

}  // namespace

std::optional<FaultSpec> FaultSpec::parse(std::string_view text) {
  // Every token is optional, so the empty spec is valid — and harmless:
  // any() is false, nothing ever fires.
  if (text.empty()) return FaultSpec{};
  FaultSpec spec;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t comma = std::min(text.find(',', pos), text.size());
    const std::string_view token = text.substr(pos, comma - pos);
    pos = comma + 1;
    const std::size_t eq = token.find('=');
    if (eq == std::string_view::npos || eq == 0) return std::nullopt;
    const std::string_view key = token.substr(0, eq);
    const std::string_view value = token.substr(eq + 1);
    if (key == "drop" || key == "corrupt" || key == "reset") {
      const auto p = parse_prob(value);
      if (!p.has_value()) return std::nullopt;
      (key == "drop" ? spec.drop
                     : key == "corrupt" ? spec.corrupt : spec.reset) = *p;
    } else if (key == "delay_ms") {
      // "D" or "D:P" — a bare delay fires on every call.
      const std::size_t colon = value.find(':');
      const auto ms = parse_u64(value.substr(0, colon));
      if (!ms.has_value() || *ms > 10'000) return std::nullopt;
      spec.delay_ms = static_cast<std::uint32_t>(*ms);
      if (colon == std::string_view::npos) {
        spec.delay_prob = 1.0;
      } else {
        const auto p = parse_prob(value.substr(colon + 1));
        if (!p.has_value()) return std::nullopt;
        spec.delay_prob = *p;
      }
    } else if (key == "seed") {
      const auto seed = parse_u64(value);
      if (!seed.has_value()) return std::nullopt;
      spec.seed = *seed;
    } else {
      return std::nullopt;
    }
    if (comma == text.size()) break;
  }
  return spec;
}

std::string FaultSpec::to_string() const {
  // Probabilities print with six decimals, trailing zeros trimmed —
  // matching parse_prob's digit-by-digit accumulation so a value that came
  // out of parse() survives the round trip bit-exactly (same digits in,
  // same accumulation back). snprintf with an explicit precision is
  // locale-independent for the digits themselves; the grammar never
  // contains a decimal comma because %.*f's separator is locale-dependent
  // only via LC_NUMERIC, which this repo never sets.
  const auto prob = [](double p) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6f", p);
    std::string s(buf);
    while (!s.empty() && s.back() == '0') s.pop_back();
    if (!s.empty() && s.back() == '.') s.pop_back();
    return s;
  };
  std::string out;
  const auto add = [&out](const std::string& token) {
    if (!out.empty()) out += ',';
    out += token;
  };
  if (drop > 0.0) add("drop=" + prob(drop));
  if (corrupt > 0.0) add("corrupt=" + prob(corrupt));
  if (reset > 0.0) add("reset=" + prob(reset));
  if (delay_prob > 0.0 && delay_ms > 0) {
    std::string token = "delay_ms=" + std::to_string(delay_ms);
    if (delay_prob < 1.0) token += ":" + prob(delay_prob);
    add(token);
  }
  if (seed != 0) add("seed=" + std::to_string(seed));
  return out;
}

FaultDecision FaultInjector::decide(std::uint64_t index) const noexcept {
  const rng::Key2x32 key = {static_cast<std::uint32_t>(spec_.seed),
                            static_cast<std::uint32_t>(spec_.seed >> 32)};
  // Domain tag in ctr[2] keeps this stream disjoint from any training
  // stream a test might run under the same seed.
  const rng::Counter4x32 draws = rng::philox4x32_10(
      {static_cast<std::uint32_t>(index),
       static_cast<std::uint32_t>(index >> 32), 0x464C5401u, 0},
      key);
  FaultDecision d;
  if (u01(draws[0]) < spec_.reset) {
    d.reset = true;
  } else if (u01(draws[1]) < spec_.drop) {
    d.drop = true;
  } else if (u01(draws[2]) < spec_.corrupt) {
    d.corrupt = true;
    const rng::Counter4x32 bit = rng::philox4x32_10(
        {static_cast<std::uint32_t>(index),
         static_cast<std::uint32_t>(index >> 32), 0x464C5402u, 0},
        key);
    d.corrupt_bit = bit[0] | (static_cast<std::uint64_t>(bit[1]) << 32);
  }
  if (u01(draws[3]) < spec_.delay_prob) d.delay_ms = spec_.delay_ms;
  return d;
}

FaultDecision FaultInjector::next() noexcept {
  const std::uint64_t index =
      counter_.fetch_add(1, std::memory_order_relaxed);
  const FaultDecision d = decide(index);
  events_.fetch_add(1, std::memory_order_relaxed);
  if (d.reset) resets_.fetch_add(1, std::memory_order_relaxed);
  if (d.drop) drops_.fetch_add(1, std::memory_order_relaxed);
  if (d.corrupt) corrupts_.fetch_add(1, std::memory_order_relaxed);
  if (d.delay_ms > 0) delays_.fetch_add(1, std::memory_order_relaxed);
  return d;
}

FaultInjector* FaultInjector::active() noexcept {
  ensure_env_checked();
  return g_active.load(std::memory_order_acquire);
}

FaultInjector* FaultInjector::install(FaultInjector* next) noexcept {
  // Resolve the env injector first so a ScopedInstall's "previous" state
  // is what active() would actually have returned.
  ensure_env_checked();
  return g_active.exchange(next, std::memory_order_acq_rel);
}

}  // namespace nnr::net
