#include "net/frame.h"

#include <cstring>

#include "serialize/binary_io.h"

namespace nnr::net {

std::string encode_frame(std::uint8_t opcode, std::string_view body) {
  serialize::detail::BufWriter w(kFrameMagic);
  w.put(kWireVersion);
  w.put(opcode);
  w.put_bytes(body.data(), body.size());
  const std::string payload = w.finish();
  const auto len = static_cast<std::uint32_t>(payload.size());
  std::string frame;
  frame.reserve(sizeof(len) + payload.size());
  frame.append(reinterpret_cast<const char*>(&len), sizeof(len));
  frame.append(payload);
  return frame;
}

Frame decode_frame(std::string_view payload) {
  serialize::detail::BufReader r(payload, kFrameMagic, "<wire frame>");
  Frame frame;
  frame.version = r.get<std::uint8_t>();
  if (frame.version != kWireVersion) {
    throw serialize::CheckpointError(
        "wire version mismatch: got " + std::to_string(frame.version) +
        ", speak " + std::to_string(kWireVersion));
  }
  frame.opcode = r.get<std::uint8_t>();
  frame.body.resize(r.remaining());
  if (!frame.body.empty()) r.get_bytes(frame.body.data(), frame.body.size());
  return frame;
}

bool send_frame(Socket& sock, std::uint8_t opcode, std::string_view body) {
  const std::string frame = encode_frame(opcode, body);
  return sock.send_all(frame.data(), frame.size()) == IoStatus::kOk;
}

RecvFrameResult recv_frame_ex(Socket& sock) {
  RecvFrameResult result;
  std::uint32_t len = 0;
  std::size_t got = 0;
  switch (sock.recv_exact(&len, sizeof(len), &got)) {
    case IoStatus::kOk:
      break;
    case IoStatus::kTimeout:
      // Only a timeout that consumed nothing is on a frame boundary; one
      // that split the length prefix leaves the stream unreadable.
      result.status = got == 0 ? RecvStatus::kTimeout : RecvStatus::kError;
      return result;
    case IoStatus::kClosed:
      result.status = got == 0 ? RecvStatus::kClosed : RecvStatus::kError;
      return result;
    case IoStatus::kError:
      result.status = RecvStatus::kError;
      return result;
  }
  // Minimum payload: magic + version + opcode + trailer.
  if (len < kFrameMagic.size() + 2 + sizeof(std::uint64_t) ||
      len > kMaxFrameBytes) {
    result.status = RecvStatus::kError;
    return result;
  }
  std::string payload(len, '\0');
  if (sock.recv_exact(payload.data(), payload.size()) != IoStatus::kOk) {
    // Mid-frame timeout, EOF, or error: the length prefix was consumed, so
    // no retry can realign the stream.
    result.status = RecvStatus::kError;
    return result;
  }
  result.frame = decode_frame(payload);
  result.status = RecvStatus::kFrame;
  return result;
}

std::optional<Frame> recv_frame(Socket& sock) {
  RecvFrameResult result = recv_frame_ex(sock);
  if (result.status != RecvStatus::kFrame) return std::nullopt;
  return std::move(result.frame);
}

}  // namespace nnr::net
