// Thin RAII layer over POSIX TCP sockets — everything the cache wire needs
// and nothing more: a movable fd owner with exact-count blocking I/O, a
// timeout-bounded client connect, and a listener that supports ephemeral
// ports (bind to port 0, read the kernel's pick back) so tests and scripts
// never race over a fixed port.
//
// Error policy mirrors the cache's "accelerator, never a correctness
// dependency" stance: no exceptions. Failed operations return false / an
// invalid Socket, and the caller (RemoteCacheBackend) degrades to
// recompute; the daemon closes the offending connection.
//
// Every I/O entry point consults net::FaultInjector::active() (one atomic
// load when chaos is off): sends can be dropped, delayed, bit-flipped, or
// met with a hard reset, receives delayed or reset. This is the one seam
// through which the chaos suites disturb the wire — client and server
// alike — with a replayable Philox-seeded schedule.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace nnr::net {

/// Outcome of an exact-count I/O call. kTimeout (SO_RCVTIMEO/SO_SNDTIMEO
/// expired — EAGAIN on a blocking socket) is the one retryable case: the
/// peer may just be slow. kClosed (orderly FIN) and kError (everything
/// else) mean the connection is done. Callers that need to know whether a
/// timeout struck a byte boundary (retryable) or mid-message (stream
/// desynchronized) pass a `received` out-param.
enum class IoStatus : std::uint8_t {
  kOk = 0,
  kTimeout = 1,
  kClosed = 2,
  kError = 3,
};

/// Owning fd wrapper. Default-constructed (or failed) sockets are invalid;
/// all I/O on an invalid socket fails cleanly.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket();
  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  [[nodiscard]] int fd() const noexcept { return fd_; }
  void close() noexcept;

  /// Writes exactly `bytes` bytes (retrying partial writes / EINTR).
  /// Anything but kOk leaves the connection unusable — a partial send has
  /// already desynchronized the stream, so even kTimeout is terminal here
  /// and MUST NOT be retried on the same connection. `sent` (optional)
  /// reports how many bytes were accepted before the failure: kTimeout
  /// with 0 < *sent < bytes is the mid-frame short write the caller's
  /// only correct response to is dropping the connection.
  IoStatus send_all(const void* data, std::size_t bytes,
                    std::size_t* sent = nullptr) noexcept;

  /// Reads exactly `bytes` bytes. kTimeout with *received == 0 means the
  /// wait expired on a message boundary — nothing consumed, safe to retry
  /// the same read; kTimeout with *received > 0 struck mid-message (the
  /// stream is desynchronized — treat as fatal). kClosed is the peer's
  /// orderly EOF.
  IoStatus recv_exact(void* data, std::size_t bytes,
                      std::size_t* received = nullptr) noexcept;

  /// One recv(2) into `buf` for nonblocking sockets under an event loop.
  /// Returns the byte count (> 0), 0 on the peer's orderly EOF, -1 when
  /// the call would block (EAGAIN — not an error), or -2 on a socket
  /// error / injected reset (the connection is done).
  std::ptrdiff_t recv_avail(void* buf, std::size_t cap) noexcept;

  /// One send(2) of up to `bytes` bytes for nonblocking sockets. Returns
  /// the count accepted (> 0), -1 when the call would block, or -2 on a
  /// socket error / injected reset.
  std::ptrdiff_t send_avail(const void* data, std::size_t bytes) noexcept;

  /// Applies SO_RCVTIMEO / SO_SNDTIMEO so a hung peer cannot wedge a
  /// blocking call forever. <= 0 leaves the socket fully blocking.
  void set_io_timeout_ms(int timeout_ms) noexcept;

  /// Marks O_NONBLOCK (server-side connections under epoll).
  bool set_nonblocking() noexcept;

 private:
  /// SO_LINGER(0) + close: the peer sees RST, not FIN — the injected
  /// "connection reset" fault.
  void reset_hard() noexcept;

  int fd_ = -1;
};

/// Connects to `host`:`port` (numeric IPv4 or a resolvable name), bounded
/// by `connect_timeout_ms`. Returns an invalid Socket on failure; on
/// success the socket is blocking with `io_timeout_ms` applied.
[[nodiscard]] Socket connect_tcp(const std::string& host, std::uint16_t port,
                                 int connect_timeout_ms, int io_timeout_ms);

/// Listening TCP socket. `port` 0 asks the kernel for an ephemeral port;
/// port() reports the actual one after listen_on succeeds.
class Listener {
 public:
  Listener() = default;

  /// Binds (SO_REUSEADDR) and listens. False on failure.
  bool listen_on(const std::string& bind_addr, std::uint16_t port);

  [[nodiscard]] bool valid() const noexcept { return sock_.valid(); }
  [[nodiscard]] int fd() const noexcept { return sock_.fd(); }
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Accepts one pending connection (invalid Socket when none / error).
  [[nodiscard]] Socket accept_conn() noexcept;

 private:
  Socket sock_;
  std::uint16_t port_ = 0;
};

}  // namespace nnr::net
