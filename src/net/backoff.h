// Capped exponential backoff with deterministic jitter, for clients of a
// recovering daemon.
//
// The failure mode this exists for: N fleet workers lose the daemon at the
// same instant (it restarted), all sleep the same fixed window, and all
// reconnect in the same millisecond — a synchronized stampede every
// window, forever. Two fixes compose here:
//
//   - exponential growth caps how often a long outage is probed
//     (base, 2*base, 4*base, ... up to max), and
//   - multiplicative jitter in [0.5, 1.5) decorrelates the herd. The
//     jitter stream is Philox-driven (rng/philox.h) so a test can pin the
//     seed and assert the exact schedule; production callers default to a
//     pid-derived seed, which is what actually spreads a fleet out.
#pragma once

#include <cstdint>

#include "rng/philox.h"

namespace nnr::net {

/// Pid-derived (SplitMix-scrambled) seed: processes started by the same
/// launcher land far apart in jitter space.
[[nodiscard]] std::uint64_t default_jitter_seed() noexcept;

/// A deterministic stream of multiplicative jitter factors in [0.5, 1.5).
class Jitter {
 public:
  explicit Jitter(std::uint64_t seed) noexcept : rng_(seed, /*stream=*/0x4A54) {}

  /// `base_ms` scaled by the next factor; >= 1 for positive inputs,
  /// passed through unchanged for <= 0.
  [[nodiscard]] std::int64_t around(std::int64_t base_ms) noexcept;

 private:
  rng::Philox rng_;
};

/// next_ms() returns the jittered current window and doubles it (up to
/// `max_ms`); reset() snaps back to `base_ms` after a success.
class Backoff {
 public:
  Backoff(std::int64_t base_ms, std::int64_t max_ms,
          std::uint64_t seed) noexcept;

  /// The next wait: jitter.around(min(base << failures, max)). The cap
  /// bounds the window; jitter widens it +-50%, so the worst wait is
  /// 1.5 * max_ms.
  [[nodiscard]] std::int64_t next_ms() noexcept;

  void reset() noexcept { failures_ = 0; }
  [[nodiscard]] int failures() const noexcept { return failures_; }

 private:
  std::int64_t base_ms_;
  std::int64_t max_ms_;
  int failures_ = 0;
  Jitter jitter_;
};

}  // namespace nnr::net
