#include "stats/anova.h"

#include <cassert>
#include <limits>

namespace nnr::stats {
namespace {

double share(double ss, double total) noexcept {
  return total > 0.0 ? ss / total : 0.0;
}

double f_stat(double ss_effect, double df_effect, double ss_resid,
              double df_resid) noexcept {
  if (df_effect <= 0.0 || df_resid <= 0.0) return 0.0;
  const double ms_effect = ss_effect / df_effect;
  const double ms_resid = ss_resid / df_resid;
  if (ms_resid == 0.0) {
    return ms_effect == 0.0 ? 0.0 : std::numeric_limits<double>::infinity();
  }
  return ms_effect / ms_resid;
}

}  // namespace

double TwoWayAnova::rows_share() const noexcept {
  return share(ss_rows, ss_total);
}
double TwoWayAnova::cols_share() const noexcept {
  return share(ss_cols, ss_total);
}
double TwoWayAnova::residual_share() const noexcept {
  return share(ss_residual, ss_total);
}
double TwoWayAnova::f_rows() const noexcept {
  return f_stat(ss_rows, df_rows, ss_residual, df_residual);
}
double TwoWayAnova::f_cols() const noexcept {
  return f_stat(ss_cols, df_cols, ss_residual, df_residual);
}

TwoWayAnova two_way_anova(const std::vector<std::vector<double>>& y) {
  const std::size_t rows = y.size();
  assert(rows >= 2);
  const std::size_t cols = y[0].size();
  assert(cols >= 2);

  double grand = 0.0;
  for (const auto& row : y) {
    assert(row.size() == cols);
    for (const double v : row) grand += v;
  }
  const double n = static_cast<double>(rows * cols);
  grand /= n;

  std::vector<double> row_mean(rows, 0.0);
  std::vector<double> col_mean(cols, 0.0);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) {
      row_mean[i] += y[i][j];
      col_mean[j] += y[i][j];
    }
  }
  for (double& m : row_mean) m /= static_cast<double>(cols);
  for (double& m : col_mean) m /= static_cast<double>(rows);

  TwoWayAnova a;
  a.grand_mean = grand;
  for (const double m : row_mean) {
    a.ss_rows += static_cast<double>(cols) * (m - grand) * (m - grand);
  }
  for (const double m : col_mean) {
    a.ss_cols += static_cast<double>(rows) * (m - grand) * (m - grand);
  }
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) {
      const double resid = y[i][j] - row_mean[i] - col_mean[j] + grand;
      a.ss_residual += resid * resid;
      a.ss_total += (y[i][j] - grand) * (y[i][j] - grand);
    }
  }
  a.df_rows = static_cast<double>(rows) - 1.0;
  a.df_cols = static_cast<double>(cols) - 1.0;
  a.df_residual = a.df_rows * a.df_cols;
  return a;
}

}  // namespace nnr::stats
