// Special functions backing the hypothesis tests: log-gamma, regularized
// incomplete beta, and the Student-t / F / normal distribution tails built on
// them. Everything is double precision, measurement-side code (see
// metrics/running_stat.h for the convention: analysis code must not itself
// contribute rounding noise to the simulated device under study).
//
// The implementations are the classical numerically stable forms: Lanczos
// for log-gamma and a modified Lentz continued fraction for the incomplete
// beta — accurate to ~1e-12 over the parameter ranges the tests use
// (degrees of freedom from 1 to a few thousand).
#pragma once

namespace nnr::stats {

/// ln Γ(x) for x > 0 (Lanczos approximation, g = 7, 9 terms).
[[nodiscard]] double log_gamma(double x);

/// Regularized incomplete beta function I_x(a, b) for a, b > 0 and
/// x in [0, 1]. I_0 = 0, I_1 = 1, and I_x(a, b) = 1 - I_{1-x}(b, a).
[[nodiscard]] double incomplete_beta(double a, double b, double x);

/// Standard normal CDF Φ(z).
[[nodiscard]] double normal_cdf(double z);

/// Two-sided tail probability of a Student-t variate: P(|T_df| >= |t|).
[[nodiscard]] double student_t_two_sided_p(double t, double df);

/// Upper tail of an F(df1, df2) variate: P(F >= f).
[[nodiscard]] double f_upper_tail_p(double f, double df1, double df2);

/// Exact two-sided binomial test p-value for `successes` out of `trials`
/// under success probability 0.5 (the sign test). Sums all outcomes with
/// probability <= the observed outcome's probability.
[[nodiscard]] double binomial_two_sided_p(int successes, int trials);

}  // namespace nnr::stats
