// Two-way factorial variance decomposition of training outcomes.
//
// The paper isolates ALGO and IMPL noise by pinning one bundle of channels
// and letting the other vary (§2.2) — two one-dimensional slices through a
// two-dimensional seed space. This module supports the full factorial view:
// train a grid of replicates indexed by (algo seed i, scheduler-entropy seed
// j) and decompose the variance of any outcome y[i][j] into
//
//     algo main effect + impl main effect + interaction (residual),
//
// the classical two-way ANOVA with one observation per cell. The interaction
// term quantifies the paper's observation that combined noise is
// *non-additive* ("the lack of an additive relationship between different
// sources of noise", §3.1): under additivity the residual share is ~0.
#pragma once

#include <vector>

namespace nnr::stats {

struct TwoWayAnova {
  // Sums of squares.
  double ss_rows = 0.0;      // factor A main effect (algo seeds)
  double ss_cols = 0.0;      // factor B main effect (impl seeds)
  double ss_residual = 0.0;  // interaction + measurement noise
  double ss_total = 0.0;

  // Degrees of freedom.
  double df_rows = 0.0;
  double df_cols = 0.0;
  double df_residual = 0.0;

  double grand_mean = 0.0;

  /// Fraction of total variance attributed to each component (eta-squared).
  /// All zero when ss_total == 0 (a fully deterministic grid).
  [[nodiscard]] double rows_share() const noexcept;
  [[nodiscard]] double cols_share() const noexcept;
  [[nodiscard]] double residual_share() const noexcept;

  /// F statistic of a main effect against the residual mean square, for use
  /// with stats::f_upper_tail_p. Returns infinity when the residual mean
  /// square is zero but the effect is not.
  [[nodiscard]] double f_rows() const noexcept;
  [[nodiscard]] double f_cols() const noexcept;
};

/// Decomposes `y` (rows = levels of factor A, cols = levels of factor B, one
/// observation per cell). Requires at least 2 rows and 2 columns and a
/// rectangular matrix.
[[nodiscard]] TwoWayAnova two_way_anova(
    const std::vector<std::vector<double>>& y);

}  // namespace nnr::stats
