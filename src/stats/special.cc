#include "stats/special.h"

#include <cassert>
#include <cmath>
#include <cstdint>

namespace nnr::stats {
namespace {

// Lanczos coefficients (g = 7, n = 9); relative error < 1e-13 for x > 0.
constexpr double kLanczos[9] = {
    0.99999999999980993,      676.5203681218851,     -1259.1392167224028,
    771.32342877765313,       -176.61502916214059,   12.507343278686905,
    -0.13857109526572012,     9.9843695780195716e-6, 1.5056327351493116e-7};

// Continued-fraction kernel for the incomplete beta (Numerical Recipes
// "betacf" form, modified Lentz iteration).
double beta_continued_fraction(double a, double b, double x) {
  constexpr int kMaxIter = 300;
  constexpr double kEps = 1e-15;
  constexpr double kTiny = 1e-300;

  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kTiny) d = kTiny;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIter; ++m) {
    const double m2 = 2.0 * m;
    // Even step.
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    h *= d * c;
    // Odd step.
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) break;
  }
  return h;
}

double binomial_log_pmf(int k, int n) {
  // log C(n, k) + n * log(1/2)
  return log_gamma(n + 1.0) - log_gamma(k + 1.0) - log_gamma(n - k + 1.0) -
         n * std::log(2.0);
}

}  // namespace

double log_gamma(double x) {
  assert(x > 0.0);
  if (x < 0.5) {
    // Reflection keeps the Lanczos argument in its accurate range.
    constexpr double kPi = 3.14159265358979323846;
    return std::log(kPi / std::sin(kPi * x)) - log_gamma(1.0 - x);
  }
  const double z = x - 1.0;
  double sum = kLanczos[0];
  for (int i = 1; i < 9; ++i) sum += kLanczos[i] / (z + i);
  const double t = z + 7.5;
  constexpr double kLogSqrt2Pi = 0.91893853320467274178;
  return kLogSqrt2Pi + (z + 0.5) * std::log(t) - t + std::log(sum);
}

double incomplete_beta(double a, double b, double x) {
  assert(a > 0.0 && b > 0.0);
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  const double log_front = log_gamma(a + b) - log_gamma(a) - log_gamma(b) +
                           a * std::log(x) + b * std::log1p(-x);
  // The continued fraction converges fast for x < (a+1)/(a+b+2); use the
  // symmetry I_x(a,b) = 1 - I_{1-x}(b,a) otherwise.
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return std::exp(log_front) * beta_continued_fraction(a, b, x) / a;
  }
  return 1.0 - std::exp(log_front) * beta_continued_fraction(b, a, 1.0 - x) / b;
}

double normal_cdf(double z) {
  return 0.5 * std::erfc(-z / std::sqrt(2.0));
}

double student_t_two_sided_p(double t, double df) {
  assert(df > 0.0);
  if (!std::isfinite(t)) return 0.0;
  const double x = df / (df + t * t);
  // P(|T| >= |t|) = I_{df/(df+t^2)}(df/2, 1/2).
  return incomplete_beta(0.5 * df, 0.5, x);
}

double f_upper_tail_p(double f, double df1, double df2) {
  assert(df1 > 0.0 && df2 > 0.0);
  if (f <= 0.0) return 1.0;
  if (!std::isfinite(f)) return 0.0;
  // P(F >= f) = I_{df2/(df2 + df1 f)}(df2/2, df1/2).
  return incomplete_beta(0.5 * df2, 0.5 * df1, df2 / (df2 + df1 * f));
}

double binomial_two_sided_p(int successes, int trials) {
  assert(successes >= 0 && trials >= 0 && successes <= trials);
  if (trials == 0) return 1.0;
  const double observed = binomial_log_pmf(successes, trials);
  // Two-sided "small p-values" definition: sum the probabilities of every
  // outcome no more likely than the observed one. 1e-7 slack absorbs
  // log-space rounding so the observed outcome always counts itself.
  double p = 0.0;
  for (int k = 0; k <= trials; ++k) {
    const double lp = binomial_log_pmf(k, trials);
    if (lp <= observed + 1e-7) p += std::exp(lp);
  }
  return p < 1.0 ? p : 1.0;
}

}  // namespace nnr::stats
