// Hypothesis tests for comparing noise regimes.
//
// The paper's claims are comparative — "ALGO contributes higher levels of
// instability relative to IMPL factors", "this is not always a pronounced
// gap" (§3.1) — but are made from point estimates over 10 replicates. These
// tests put p-values behind such statements:
//
//   - Welch's t-test: difference in mean accuracy / churn between regimes
//     without assuming equal variances (regimes differ in variance by
//     construction — that is the study's subject).
//   - Brown-Forsythe (median-centered Levene): equality of *variances*
//     across regimes — the correct test for STDDEV(Accuracy) gaps, robust
//     to the non-normality of accuracy over replicates.
//   - Permutation test: exact, assumption-free mean-difference test for the
//     tiny samples (n = 5..10) the protocol produces.
//   - Sign test: paired regime comparisons across many (task, device) cells.
#pragma once

#include <span>
#include <vector>

#include "rng/generator.h"

namespace nnr::stats {

struct TestResult {
  double statistic = 0.0;  // t, F, or observed mean difference
  double df = 0.0;         // degrees of freedom (0 when not applicable)
  double p_value = 1.0;    // two-sided unless documented otherwise
};

/// Welch's unequal-variance t-test for the difference of means of two
/// independent samples. Welch-Satterthwaite degrees of freedom. Both samples
/// need >= 2 observations. Zero variance in both samples with equal means
/// yields p = 1; with unequal means yields p = 0.
[[nodiscard]] TestResult welch_t_test(std::span<const double> a,
                                      std::span<const double> b);

/// Brown-Forsythe test for equality of variances across k >= 2 groups:
/// one-way ANOVA F-test on |x - median(group)|. Each group needs >= 2
/// observations.
[[nodiscard]] TestResult brown_forsythe_test(
    std::span<const std::vector<double>> groups);

/// Two-sided permutation test on the difference of means. `permutations`
/// random relabelings are drawn from `gen`; the p-value includes the
/// observed labeling (add-one correction) so it is never exactly zero.
[[nodiscard]] TestResult permutation_mean_test(std::span<const double> a,
                                               std::span<const double> b,
                                               int permutations,
                                               rng::Generator& gen);

/// Exact two-sided sign test: of `trials` paired comparisons, `successes`
/// favored the first member. Ties must be excluded by the caller.
[[nodiscard]] TestResult sign_test(int successes, int trials);

}  // namespace nnr::stats
