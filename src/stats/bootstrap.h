// Percentile-bootstrap confidence intervals for the paper's replicate-level
// estimates.
//
// The study reports stddev(accuracy), mean churn, and mean L2 over 10 (or 5)
// replicates — small samples whose sampling error the paper never quantifies.
// This module adds that missing error bar: resample replicates with
// replacement, recompute the statistic, and report percentile bounds. The
// resampling stream is an explicit rng::Generator so results are reproducible
// end to end like every other stochastic component in the library.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "rng/generator.h"

namespace nnr::stats {

struct BootstrapCI {
  double point = 0.0;  // statistic on the original sample
  double lo = 0.0;     // lower percentile bound
  double hi = 0.0;     // upper percentile bound
  double confidence = 0.95;

  [[nodiscard]] double width() const noexcept { return hi - lo; }
  [[nodiscard]] bool contains(double v) const noexcept {
    return v >= lo && v <= hi;
  }
};

/// Statistic evaluated on a resampled vector of observations.
using Statistic = std::function<double(std::span<const double>)>;

/// Generic percentile bootstrap: `resamples` resamples of `sample` (with
/// replacement, same size), statistic recomputed on each, CI from the
/// empirical (1-confidence)/2 and 1-(1-confidence)/2 quantiles.
/// Precondition: sample is non-empty and resamples > 0.
[[nodiscard]] BootstrapCI bootstrap_ci(std::span<const double> sample,
                                       const Statistic& statistic,
                                       int resamples, double confidence,
                                       rng::Generator& gen);

/// CI for the sample mean.
[[nodiscard]] BootstrapCI bootstrap_mean_ci(std::span<const double> sample,
                                            int resamples, double confidence,
                                            rng::Generator& gen);

/// CI for the sample standard deviation (n-1 denominator) — the error bar on
/// the paper's headline STDDEV(Accuracy) numbers.
[[nodiscard]] BootstrapCI bootstrap_stddev_ci(std::span<const double> sample,
                                              int resamples, double confidence,
                                              rng::Generator& gen);

/// CI for a pairwise statistic such as mean churn: resamples *replicates*
/// (not pairs — pairs sharing a replicate are dependent) and recomputes the
/// mean over all distinct unordered pairs of the resample, skipping
/// self-pairs created by duplicate draws.
///
/// `pair_stat[i][j]` must hold the statistic for replicate pair (i, j);
/// only i < j entries are read. Precondition: at least 2 replicates.
[[nodiscard]] BootstrapCI bootstrap_pairwise_ci(
    const std::vector<std::vector<double>>& pair_stat, int resamples,
    double confidence, rng::Generator& gen);

/// Jackknife (leave-one-out) standard error of the sample mean — a cheap
/// deterministic cross-check on the bootstrap widths.
[[nodiscard]] double jackknife_mean_stderr(std::span<const double> sample);

}  // namespace nnr::stats
