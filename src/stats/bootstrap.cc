#include "stats/bootstrap.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "metrics/running_stat.h"

namespace nnr::stats {
namespace {

double quantile_of_sorted(std::span<const double> sorted, double q) {
  assert(!sorted.empty());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

BootstrapCI ci_from_replicates(double point, std::vector<double>& stats,
                               double confidence) {
  std::sort(stats.begin(), stats.end());
  const double alpha = (1.0 - confidence) / 2.0;
  BootstrapCI ci;
  ci.point = point;
  ci.lo = quantile_of_sorted(stats, alpha);
  ci.hi = quantile_of_sorted(stats, 1.0 - alpha);
  ci.confidence = confidence;
  return ci;
}

double sample_mean(std::span<const double> xs) {
  metrics::RunningStat s;
  for (const double x : xs) s.add(x);
  return s.mean();
}

double sample_stddev(std::span<const double> xs) {
  metrics::RunningStat s;
  for (const double x : xs) s.add(x);
  return s.stddev();
}

}  // namespace

BootstrapCI bootstrap_ci(std::span<const double> sample,
                         const Statistic& statistic, int resamples,
                         double confidence, rng::Generator& gen) {
  assert(!sample.empty() && resamples > 0);
  assert(confidence > 0.0 && confidence < 1.0);
  std::vector<double> resample(sample.size());
  std::vector<double> stats;
  stats.reserve(static_cast<std::size_t>(resamples));
  for (int r = 0; r < resamples; ++r) {
    for (double& x : resample) {
      x = sample[static_cast<std::size_t>(gen.uniform_int(sample.size()))];
    }
    stats.push_back(statistic(resample));
  }
  return ci_from_replicates(statistic(sample), stats, confidence);
}

BootstrapCI bootstrap_mean_ci(std::span<const double> sample, int resamples,
                              double confidence, rng::Generator& gen) {
  return bootstrap_ci(sample, sample_mean, resamples, confidence, gen);
}

BootstrapCI bootstrap_stddev_ci(std::span<const double> sample, int resamples,
                                double confidence, rng::Generator& gen) {
  return bootstrap_ci(sample, sample_stddev, resamples, confidence, gen);
}

BootstrapCI bootstrap_pairwise_ci(
    const std::vector<std::vector<double>>& pair_stat, int resamples,
    double confidence, rng::Generator& gen) {
  const std::size_t n = pair_stat.size();
  assert(n >= 2 && resamples > 0);

  const auto pair_value = [&pair_stat](std::size_t i, std::size_t j) {
    return i < j ? pair_stat[i][j] : pair_stat[j][i];
  };

  // Point estimate: mean over all distinct unordered pairs.
  metrics::RunningStat point;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) point.add(pair_value(i, j));
  }

  std::vector<std::size_t> draw(n);
  std::vector<double> stats;
  stats.reserve(static_cast<std::size_t>(resamples));
  for (int r = 0; r < resamples; ++r) {
    for (std::size_t& d : draw) {
      d = static_cast<std::size_t>(gen.uniform_int(n));
    }
    metrics::RunningStat s;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        // A replicate drawn twice pairs with itself; churn/L2 of a replicate
        // against itself is identically zero and would bias the mean down,
        // so self-pairs are skipped rather than scored.
        if (draw[i] != draw[j]) s.add(pair_value(draw[i], draw[j]));
      }
    }
    // Degenerate resample (all draws identical): statistic is undefined;
    // fall back to the point estimate so the quantiles stay well-formed.
    stats.push_back(s.count() > 0 ? s.mean() : point.mean());
  }
  return ci_from_replicates(point.mean(), stats, confidence);
}

double jackknife_mean_stderr(std::span<const double> sample) {
  const std::size_t n = sample.size();
  assert(n >= 2);
  const double total = [&] {
    double t = 0.0;
    for (const double x : sample) t += x;
    return t;
  }();
  // Leave-one-out means; for the mean statistic the jackknife SE reduces to
  // the classical s/sqrt(n), computed here in the generic form so the
  // function documents the estimator it implements.
  metrics::RunningStat loo;
  for (const double x : sample) {
    loo.add((total - x) / static_cast<double>(n - 1));
  }
  const double factor =
      static_cast<double>(n - 1) / static_cast<double>(n);
  return std::sqrt(factor * loo.stddev_population() *
                   loo.stddev_population() * static_cast<double>(n));
}

}  // namespace nnr::stats
