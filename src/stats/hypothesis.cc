#include "stats/hypothesis.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "metrics/running_stat.h"
#include "stats/special.h"

namespace nnr::stats {
namespace {

double median_of(std::vector<double> xs) {
  assert(!xs.empty());
  const std::size_t mid = xs.size() / 2;
  std::nth_element(xs.begin(), xs.begin() + static_cast<std::ptrdiff_t>(mid),
                   xs.end());
  double m = xs[mid];
  if (xs.size() % 2 == 0) {
    const auto below =
        std::max_element(xs.begin(), xs.begin() + static_cast<std::ptrdiff_t>(mid));
    m = 0.5 * (m + *below);
  }
  return m;
}

double mean_of(std::span<const double> xs) {
  metrics::RunningStat s;
  for (const double x : xs) s.add(x);
  return s.mean();
}

}  // namespace

TestResult welch_t_test(std::span<const double> a, std::span<const double> b) {
  assert(a.size() >= 2 && b.size() >= 2);
  metrics::RunningStat sa;
  metrics::RunningStat sb;
  for (const double x : a) sa.add(x);
  for (const double x : b) sb.add(x);
  const double na = static_cast<double>(a.size());
  const double nb = static_cast<double>(b.size());
  const double va = sa.stddev() * sa.stddev() / na;
  const double vb = sb.stddev() * sb.stddev() / nb;
  const double diff = sa.mean() - sb.mean();

  TestResult r;
  if (va + vb == 0.0) {
    // Both samples are constant: the test degenerates. Equal means are a
    // perfect null fit; unequal means are incompatible with any variance.
    r.statistic = diff == 0.0 ? 0.0 : std::copysign(
        std::numeric_limits<double>::infinity(), diff);
    r.df = na + nb - 2.0;
    r.p_value = diff == 0.0 ? 1.0 : 0.0;
    return r;
  }
  r.statistic = diff / std::sqrt(va + vb);
  r.df = (va + vb) * (va + vb) /
         (va * va / (na - 1.0) + vb * vb / (nb - 1.0));
  r.p_value = student_t_two_sided_p(r.statistic, r.df);
  return r;
}

TestResult brown_forsythe_test(std::span<const std::vector<double>> groups) {
  assert(groups.size() >= 2);
  // Transform to absolute deviations from the group median, then one-way
  // ANOVA on the transformed data.
  std::vector<std::vector<double>> z(groups.size());
  for (std::size_t g = 0; g < groups.size(); ++g) {
    assert(groups[g].size() >= 2);
    const double med = median_of(groups[g]);
    z[g].reserve(groups[g].size());
    for (const double x : groups[g]) z[g].push_back(std::fabs(x - med));
  }

  metrics::RunningStat grand;
  for (const auto& zg : z) {
    for (const double v : zg) grand.add(v);
  }
  const double k = static_cast<double>(groups.size());
  const double n = static_cast<double>(grand.count());

  double ss_between = 0.0;
  double ss_within = 0.0;
  for (const auto& zg : z) {
    const double zbar = mean_of(zg);
    ss_between += static_cast<double>(zg.size()) * (zbar - grand.mean()) *
                  (zbar - grand.mean());
    for (const double v : zg) ss_within += (v - zbar) * (v - zbar);
  }

  TestResult r;
  r.df = k - 1.0;  // numerator df; denominator df is n - k
  const double df2 = n - k;
  if (ss_within == 0.0) {
    r.statistic = ss_between == 0.0
                      ? 0.0
                      : std::numeric_limits<double>::infinity();
    r.p_value = ss_between == 0.0 ? 1.0 : 0.0;
    return r;
  }
  r.statistic = (ss_between / (k - 1.0)) / (ss_within / df2);
  r.p_value = f_upper_tail_p(r.statistic, k - 1.0, df2);
  return r;
}

TestResult permutation_mean_test(std::span<const double> a,
                                 std::span<const double> b, int permutations,
                                 rng::Generator& gen) {
  assert(!a.empty() && !b.empty() && permutations > 0);
  const double observed = std::fabs(mean_of(a) - mean_of(b));

  std::vector<double> pooled;
  pooled.reserve(a.size() + b.size());
  pooled.insert(pooled.end(), a.begin(), a.end());
  pooled.insert(pooled.end(), b.begin(), b.end());

  int at_least_as_extreme = 0;
  for (int p = 0; p < permutations; ++p) {
    gen.shuffle(std::span<double>(pooled));
    const double ma = mean_of({pooled.data(), a.size()});
    const double mb = mean_of({pooled.data() + a.size(), b.size()});
    if (std::fabs(ma - mb) >= observed - 1e-12) ++at_least_as_extreme;
  }
  TestResult r;
  r.statistic = observed;
  r.df = 0.0;
  // Add-one (Phipson-Smyth) correction: the observed labeling is itself one
  // of the permutations, so the p-value is bounded below by 1/(B+1).
  r.p_value = (at_least_as_extreme + 1.0) / (permutations + 1.0);
  return r;
}

TestResult sign_test(int successes, int trials) {
  TestResult r;
  r.statistic = static_cast<double>(successes);
  r.df = static_cast<double>(trials);
  r.p_value = binomial_two_sided_p(successes, trials);
  return r;
}

}  // namespace nnr::stats
