// Timeline aggregation: the simulated nvprof "GPU time per kernel type"
// report (paper Fig. 7).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "profiler/kernels.h"

namespace nnr::profiler {

struct KernelTypeTime {
  std::string kernel_type;
  double total_ms = 0.0;
  std::int64_t launches = 0;
};

/// Groups launches by kernel type and returns cumulative times sorted
/// descending (Top-1 first, as in Fig. 7).
[[nodiscard]] std::vector<KernelTypeTime> aggregate_by_type(
    const std::vector<KernelLaunch>& launches);

/// Top-k prefix (k may exceed the number of distinct types).
[[nodiscard]] std::vector<KernelTypeTime> top_k(
    const std::vector<KernelTypeTime>& aggregated, std::size_t k);

/// Skewness indicator used in the Fig. 7 discussion: fraction of total time
/// spent in the top-1 kernel type.
[[nodiscard]] double top1_share(const std::vector<KernelTypeTime>& aggregated);

}  // namespace nnr::profiler
