// Kernel taxonomy for the simulated cuDNN-style kernel library.
//
// The overhead study (paper §4) hinges on one mechanism: for each conv pass
// the vendor library offers a *menu* of algorithms, the autotuner picks the
// fastest, and deterministic mode removes the nondeterministic entries
// (atomic-accumulation weight-gradient kernels, some FFT/Winograd tilings),
// forcing slower choices. We reproduce that mechanism with a calibrated cost
// model; absolute times are arbitrary units, ratios are what the figures
// report.
#pragma once

#include <cstdint>
#include <string>

namespace nnr::profiler {

/// One conv layer expands to three passes per training step.
enum class ConvPass { kForward, kWgrad, kBgrad };

/// Algorithm families on the menus (names mirror cuDNN's).
enum class ConvAlgo {
  kImplicitGemm,         // deterministic, baseline throughput
  kImplicitPrecompGemm,  // deterministic, faster for big K
  kWinograd,             // fast for 3x3; nondeterministic for wgrad tilings
  kFft,                  // fast for large kernels; nondeterministic wgrad
  kAtomicReduction,      // wgrad via atomics: fastest, never deterministic
  kDirectDeterministic,  // fallback always-deterministic kernel
};

[[nodiscard]] std::string algo_name(ConvAlgo algo);
[[nodiscard]] std::string pass_name(ConvPass pass);

/// A recorded kernel launch (one entry of the simulated nvprof timeline).
struct KernelLaunch {
  std::string kernel_type;  // e.g. "winograd_fwd_3x3"
  double time_ms = 0.0;
};

}  // namespace nnr::profiler
