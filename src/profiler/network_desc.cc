#include "profiler/network_desc.h"

#include <cassert>

namespace nnr::profiler {

double LayerDesc::macs() const noexcept {
  const double spatial = static_cast<double>(out_h) * static_cast<double>(out_w);
  switch (kind) {
    case LayerKind::kConv:
      return spatial * static_cast<double>(kernel) * static_cast<double>(kernel) *
             static_cast<double>(in_channels) * static_cast<double>(out_channels);
    case LayerKind::kDepthwiseConv:
      return spatial * static_cast<double>(kernel) * static_cast<double>(kernel) *
             static_cast<double>(out_channels);
    case LayerKind::kDense:
      return static_cast<double>(in_channels) * static_cast<double>(out_channels);
    case LayerKind::kBatchNorm:
    case LayerKind::kPool:
    case LayerKind::kActivation:
      return 0.0;  // memory-bound; costed by bytes
  }
  return 0.0;
}

double LayerDesc::activation_bytes() const noexcept {
  const double spatial = static_cast<double>(out_h) * static_cast<double>(out_w);
  return 4.0 * spatial * static_cast<double>(out_channels);
}

double NetworkDesc::total_macs() const noexcept {
  double total = 0.0;
  for (const LayerDesc& l : layers) total += l.macs();
  return total;
}

namespace {

/// Appends conv + BN + activation (the standard fused trio).
void conv_bn(std::vector<LayerDesc>& layers, std::int64_t k, std::int64_t cin,
             std::int64_t cout, std::int64_t spatial, std::int64_t stride = 1,
             bool depthwise = false) {
  layers.push_back({.kind = depthwise ? LayerKind::kDepthwiseConv
                                      : LayerKind::kConv,
                    .kernel = k,
                    .in_channels = cin,
                    .out_channels = cout,
                    .out_h = spatial,
                    .out_w = spatial,
                    .stride = stride});
  layers.push_back({.kind = LayerKind::kBatchNorm,
                    .out_channels = cout,
                    .out_h = spatial,
                    .out_w = spatial});
  layers.push_back({.kind = LayerKind::kActivation,
                    .out_channels = cout,
                    .out_h = spatial,
                    .out_w = spatial});
}

/// Pointwise 1x1 conv + BN + activation, lowered to GEMM by the framework
/// (depthwise-separable blocks).
void pointwise_bn(std::vector<LayerDesc>& layers, std::int64_t cin,
                  std::int64_t cout, std::int64_t spatial) {
  conv_bn(layers, 1, cin, cout, spatial);
  layers[layers.size() - 3].gemm_lowered = true;
}

void pool(std::vector<LayerDesc>& layers, std::int64_t channels,
          std::int64_t out_spatial) {
  layers.push_back({.kind = LayerKind::kPool,
                    .kernel = 2,
                    .out_channels = channels,
                    .out_h = out_spatial,
                    .out_w = out_spatial});
}

void dense(std::vector<LayerDesc>& layers, std::int64_t in, std::int64_t out) {
  layers.push_back({.kind = LayerKind::kDense,
                    .in_channels = in,
                    .out_channels = out,
                    .out_h = 1,
                    .out_w = 1});
}

NetworkDesc vgg_desc(const char* name, const std::vector<int>& block_sizes) {
  NetworkDesc net;
  net.name = name;
  const std::int64_t widths[5] = {64, 128, 256, 512, 512};
  std::int64_t spatial = 224;
  std::int64_t cin = 3;
  for (std::size_t b = 0; b < block_sizes.size(); ++b) {
    for (int i = 0; i < block_sizes[b]; ++i) {
      conv_bn(net.layers, 3, cin, widths[b], spatial);
      cin = widths[b];
    }
    spatial /= 2;
    pool(net.layers, cin, spatial);
  }
  dense(net.layers, 512 * 7 * 7, 4096);
  dense(net.layers, 4096, 4096);
  dense(net.layers, 4096, 1000);
  return net;
}

NetworkDesc resnet_desc(const char* name, const std::vector<int>& blocks) {
  NetworkDesc net;
  net.name = name;
  conv_bn(net.layers, 7, 3, 64, 112, 2);
  pool(net.layers, 64, 56);
  const std::int64_t mids[4] = {64, 128, 256, 512};
  const std::int64_t spatials[4] = {56, 28, 14, 7};
  std::int64_t cin = 64;
  for (int stage = 0; stage < 4; ++stage) {
    const std::int64_t mid = mids[stage];
    const std::int64_t out = mid * 4;
    const std::int64_t sp = spatials[stage];
    for (int b = 0; b < blocks[static_cast<std::size_t>(stage)]; ++b) {
      conv_bn(net.layers, 1, cin, mid, sp);
      conv_bn(net.layers, 3, mid, mid, sp);
      conv_bn(net.layers, 1, mid, out, sp);
      if (b == 0) conv_bn(net.layers, 1, cin, out, sp);  // projection
      cin = out;
    }
  }
  dense(net.layers, 2048, 1000);
  return net;
}

NetworkDesc densenet_desc(const char* name, const std::vector<int>& blocks) {
  NetworkDesc net;
  net.name = name;
  constexpr std::int64_t kGrowth = 32;
  conv_bn(net.layers, 7, 3, 64, 112, 2);
  pool(net.layers, 64, 56);
  std::int64_t channels = 64;
  std::int64_t spatial = 56;
  for (std::size_t stage = 0; stage < blocks.size(); ++stage) {
    for (int l = 0; l < blocks[stage]; ++l) {
      conv_bn(net.layers, 1, channels, 4 * kGrowth, spatial);
      conv_bn(net.layers, 3, 4 * kGrowth, kGrowth, spatial);
      channels += kGrowth;
    }
    if (stage + 1 < blocks.size()) {
      channels /= 2;
      conv_bn(net.layers, 1, channels * 2, channels, spatial);
      spatial /= 2;
      pool(net.layers, channels, spatial);
    }
  }
  dense(net.layers, channels, 1000);
  return net;
}

}  // namespace

NetworkDesc vgg16_desc() { return vgg_desc("VGG16", {2, 2, 3, 3, 3}); }
NetworkDesc vgg19_desc() { return vgg_desc("VGG19", {2, 2, 4, 4, 4}); }
NetworkDesc resnet50_desc() { return resnet_desc("ResNet50", {3, 4, 6, 3}); }
NetworkDesc resnet152_desc() {
  return resnet_desc("ResNet152", {3, 8, 36, 3});
}
NetworkDesc densenet121_desc() {
  return densenet_desc("DenseNet121", {6, 12, 24, 16});
}
NetworkDesc densenet201_desc() {
  return densenet_desc("DenseNet201", {6, 12, 48, 32});
}

NetworkDesc inception_v3_desc() {
  // Workload-level approximation: factorized 7x1/1x7 convs are folded into
  // equivalent-MAC square convs. Channel widths follow the published
  // architecture closely enough for kernel-time accounting.
  NetworkDesc net;
  net.name = "Inceptionv3";
  conv_bn(net.layers, 3, 3, 32, 149, 2);
  conv_bn(net.layers, 3, 32, 32, 147);
  conv_bn(net.layers, 3, 32, 64, 147);
  pool(net.layers, 64, 73);
  conv_bn(net.layers, 1, 64, 80, 73);
  conv_bn(net.layers, 3, 80, 192, 71);
  pool(net.layers, 192, 35);
  // 3x Inception-A @35 (mix of 1x1, 5x5, 3x3 towers).
  std::int64_t cin = 192;
  for (int i = 0; i < 3; ++i) {
    conv_bn(net.layers, 1, cin, 64, 35);
    conv_bn(net.layers, 1, cin, 48, 35);
    conv_bn(net.layers, 5, 48, 64, 35);
    conv_bn(net.layers, 1, cin, 64, 35);
    conv_bn(net.layers, 3, 64, 96, 35);
    conv_bn(net.layers, 3, 96, 96, 35);
    conv_bn(net.layers, 1, cin, 32, 35);
    cin = 288;
  }
  // Reduction-A to 17x17.
  conv_bn(net.layers, 3, 288, 384, 17, 2);
  conv_bn(net.layers, 1, 288, 64, 35);
  conv_bn(net.layers, 3, 64, 96, 35);
  conv_bn(net.layers, 3, 96, 96, 17, 2);
  // 4x Inception-B @17. The factorized 1x7/7x1 towers are represented as
  // 3x3-equivalents: two 1-D 7-tap passes cost ~14 MACs/pixel/channel-pair,
  // close to two 3x3 passes, and use the 3x3 algo menus (1-D kernels have no
  // large-tile FFT path).
  cin = 768;
  for (int i = 0; i < 4; ++i) {
    conv_bn(net.layers, 1, cin, 192, 17);
    conv_bn(net.layers, 1, cin, 128, 17);
    conv_bn(net.layers, 3, 128, 160, 17);
    conv_bn(net.layers, 3, 160, 192, 17);
    conv_bn(net.layers, 1, cin, 128, 17);
    conv_bn(net.layers, 3, 128, 160, 17);
    conv_bn(net.layers, 3, 160, 192, 17);
    conv_bn(net.layers, 1, cin, 192, 17);
  }
  // Reduction-B to 8x8, then 2x Inception-C @8.
  conv_bn(net.layers, 1, 768, 192, 17);
  conv_bn(net.layers, 3, 192, 320, 8, 2);
  conv_bn(net.layers, 3, 192, 192, 8, 2);
  cin = 1280;
  for (int i = 0; i < 2; ++i) {
    conv_bn(net.layers, 1, cin, 320, 8);
    conv_bn(net.layers, 1, cin, 384, 8);
    conv_bn(net.layers, 3, 384, 768, 8);
    conv_bn(net.layers, 1, cin, 448, 8);
    conv_bn(net.layers, 3, 448, 384, 8);
    conv_bn(net.layers, 3, 384, 768, 8);
    cin = 2048;
  }
  dense(net.layers, 2048, 1000);
  return net;
}

NetworkDesc xception_desc() {
  NetworkDesc net;
  net.name = "Xception";
  conv_bn(net.layers, 3, 3, 32, 111, 2);
  conv_bn(net.layers, 3, 32, 64, 109);
  // Entry flow separable blocks.
  const std::int64_t entry[3] = {128, 256, 728};
  std::int64_t cin = 64;
  std::int64_t spatial = 109;
  for (std::int64_t width : entry) {
    spatial /= 2;
    conv_bn(net.layers, 3, cin, cin, spatial * 2, 1, /*depthwise=*/true);
    pointwise_bn(net.layers, cin, width, spatial * 2);
    conv_bn(net.layers, 3, width, width, spatial * 2, 1, /*depthwise=*/true);
    pointwise_bn(net.layers, width, width, spatial * 2);
    pool(net.layers, width, spatial);
    conv_bn(net.layers, 1, cin, width, spatial);  // residual projection
    cin = width;
  }
  // Middle flow: 8 blocks of 3 separable convs at 728 channels, 19x19.
  for (int b = 0; b < 8; ++b) {
    for (int i = 0; i < 3; ++i) {
      conv_bn(net.layers, 3, 728, 728, 19, 1, /*depthwise=*/true);
      pointwise_bn(net.layers, 728, 728, 19);
    }
  }
  // Exit flow.
  conv_bn(net.layers, 3, 728, 728, 19, 1, /*depthwise=*/true);
  pointwise_bn(net.layers, 728, 1024, 19);
  pool(net.layers, 1024, 10);
  conv_bn(net.layers, 3, 1024, 1024, 10, 1, /*depthwise=*/true);
  pointwise_bn(net.layers, 1024, 1536, 10);
  conv_bn(net.layers, 3, 1536, 1536, 10, 1, /*depthwise=*/true);
  pointwise_bn(net.layers, 1536, 2048, 10);
  dense(net.layers, 2048, 1000);
  return net;
}

NetworkDesc mobilenet_desc() {
  NetworkDesc net;
  net.name = "MobileNet";
  conv_bn(net.layers, 3, 3, 32, 112, 2);
  struct Block {
    std::int64_t cout;
    std::int64_t spatial;
    std::int64_t stride;
  };
  // MobileNet v1 depthwise-separable stack.
  const Block blocks[] = {
      {64, 112, 1},  {128, 56, 2}, {128, 56, 1},  {256, 28, 2},
      {256, 28, 1},  {512, 14, 2}, {512, 14, 1},  {512, 14, 1},
      {512, 14, 1},  {512, 14, 1}, {512, 14, 1},  {1024, 7, 2},
      {1024, 7, 1},
  };
  std::int64_t cin = 32;
  for (const Block& b : blocks) {
    conv_bn(net.layers, 3, cin, cin, b.spatial, b.stride, /*depthwise=*/true);
    pointwise_bn(net.layers, cin, b.cout, b.spatial);
    cin = b.cout;
  }
  dense(net.layers, 1024, 1000);
  return net;
}

NetworkDesc efficientnet_b0_desc() {
  NetworkDesc net;
  net.name = "EfficientNetB0";
  conv_bn(net.layers, 3, 3, 32, 112, 2);
  struct MbConv {
    std::int64_t expand;   // expansion factor
    std::int64_t kernel;
    std::int64_t cout;
    std::int64_t spatial;
    int repeat;
  };
  const MbConv blocks[] = {
      {1, 3, 16, 112, 1}, {6, 3, 24, 56, 2},  {6, 5, 40, 28, 2},
      {6, 3, 80, 14, 3},  {6, 5, 112, 14, 3}, {6, 5, 192, 7, 4},
      {6, 3, 320, 7, 1},
  };
  std::int64_t cin = 32;
  for (const MbConv& b : blocks) {
    for (int r = 0; r < b.repeat; ++r) {
      const std::int64_t mid = cin * b.expand;
      if (b.expand != 1) pointwise_bn(net.layers, cin, mid, b.spatial);
      conv_bn(net.layers, b.kernel, mid, mid, b.spatial, 1,
              /*depthwise=*/true);
      pointwise_bn(net.layers, mid, b.cout, b.spatial);
      cin = b.cout;
    }
  }
  pointwise_bn(net.layers, 320, 1280, 7);
  dense(net.layers, 1280, 1000);
  return net;
}

NetworkDesc medium_cnn_desc(std::int64_t kernel) {
  assert(kernel == 1 || kernel == 3 || kernel == 5 || kernel == 7);
  NetworkDesc net;
  net.name = "MediumCNN-" + std::to_string(kernel) + "x" +
             std::to_string(kernel);
  const std::int64_t widths[7] = {3, 16, 32, 64, 128, 256, 512};
  std::int64_t spatial = 224;
  for (int stage = 0; stage < 6; ++stage) {
    spatial /= 2;
    conv_bn(net.layers, kernel, widths[stage], widths[stage + 1], spatial * 2);
    pool(net.layers, widths[stage + 1], spatial);
  }
  dense(net.layers, 512, 32);
  dense(net.layers, 32, 1000);
  return net;
}

std::vector<NetworkDesc> profiled_networks() {
  return {vgg16_desc(),        vgg19_desc(),        resnet50_desc(),
          resnet152_desc(),    densenet121_desc(),  densenet201_desc(),
          inception_v3_desc(), xception_desc(),     mobilenet_desc(),
          efficientnet_b0_desc()};
}

}  // namespace nnr::profiler
