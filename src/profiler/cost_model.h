// Calibrated kernel-time cost model (the nvprof / cuDNN-autotuner stand-in).
//
// Mechanism reproduced from the paper (§4): for every convolution pass the
// library holds a menu of algorithms with different throughputs; several of
// the fastest entries (atomic weight-gradient accumulation, FFT/Winograd
// tilings) are nondeterministic. The autotuner picks the fastest admissible
// entry; deterministic mode shrinks the menu, so training time rises by a
// factor that depends on architecture generation and kernel size.
//
// Calibration targets (paper Fig. 8): the medium-CNN overhead spans roughly
// 284%-746% on P100, 129%-241% on V100, and 117%-196% on T4 as the kernel
// grows 1x1 -> 7x7; per-network overheads on V100 span ~101% (MobileNet) to
// ~185% (VGG19). EXPERIMENTS.md records model-vs-paper numbers.
#pragma once

#include <cstdint>
#include <vector>

#include "hw/device.h"
#include "hw/execution_context.h"
#include "profiler/kernels.h"
#include "profiler/network_desc.h"

namespace nnr::profiler {

/// One admissible algorithm for a conv pass.
struct AlgoOption {
  ConvAlgo algo = ConvAlgo::kImplicitGemm;
  bool deterministic = true;
  double efficiency = 1.0;  // throughput multiplier vs implicit GEMM
};

class CostModel {
 public:
  [[nodiscard]] static CostModel for_arch(hw::GpuArch arch);

  /// The algorithm menu for a pass of a dense conv with the given kernel
  /// size on this architecture. Depthwise convs and dense layers have a
  /// single deterministic option and are handled internally.
  [[nodiscard]] std::vector<AlgoOption> menu(ConvPass pass,
                                             std::int64_t kernel) const;

  /// Fastest admissible option (deterministic-only when `mode` says so).
  [[nodiscard]] AlgoOption autotune(ConvPass pass, std::int64_t kernel,
                                    hw::DeterminismMode mode) const;

  /// Expands one training step (forward + backward) of `net` into kernel
  /// launches with simulated times, batch `batch`.
  [[nodiscard]] std::vector<KernelLaunch> lower_step(
      const NetworkDesc& net, hw::DeterminismMode mode,
      std::int64_t batch) const;

  /// Total simulated GPU time of one training step (ms).
  [[nodiscard]] double step_time_ms(const NetworkDesc& net,
                                    hw::DeterminismMode mode,
                                    std::int64_t batch) const;

  [[nodiscard]] hw::GpuArch arch() const noexcept { return arch_; }

 private:
  hw::GpuArch arch_ = hw::GpuArch::kVolta;
  double macs_per_ms_ = 0.0;   // compute throughput at efficiency 1.0
  double bytes_per_ms_ = 0.0;  // memory throughput for memory-bound kernels

  // Deterministic-kernel quality of this generation: the efficiency of the
  // always-deterministic direct kernel at k=1 and its decay per unit kernel
  // width (older architectures ship far weaker deterministic kernels).
  double det_base_fwd_ = 1.0;
  double det_base_wgrad_ = 1.0;
  double det_k_slope_ = 0.0;
  // Whether this generation's fast tiled algos (Winograd/FFT) have
  // deterministic forward/bgrad variants (Pascal's do not).
  bool tiled_algos_deterministic_ = true;
};

/// Overhead of deterministic mode for a network on an architecture.
struct OverheadResult {
  double default_ms = 0.0;
  double deterministic_ms = 0.0;

  /// "Normalized deterministic execution GPU time" as plotted in Fig. 8:
  /// 100% means no overhead.
  [[nodiscard]] double normalized_pct() const {
    return default_ms > 0.0 ? 100.0 * deterministic_ms / default_ms : 0.0;
  }
};

[[nodiscard]] OverheadResult deterministic_overhead(const NetworkDesc& net,
                                                    hw::GpuArch arch,
                                                    std::int64_t batch = 64);

}  // namespace nnr::profiler
