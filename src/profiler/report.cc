#include "profiler/report.h"

#include <algorithm>
#include <unordered_map>

namespace nnr::profiler {

std::vector<KernelTypeTime> aggregate_by_type(
    const std::vector<KernelLaunch>& launches) {
  std::unordered_map<std::string, KernelTypeTime> grouped;
  for (const KernelLaunch& launch : launches) {
    KernelTypeTime& entry = grouped[launch.kernel_type];
    entry.kernel_type = launch.kernel_type;
    entry.total_ms += launch.time_ms;
    ++entry.launches;
  }
  std::vector<KernelTypeTime> sorted;
  sorted.reserve(grouped.size());
  for (auto& [_, entry] : grouped) sorted.push_back(std::move(entry));
  std::sort(sorted.begin(), sorted.end(),
            [](const KernelTypeTime& a, const KernelTypeTime& b) {
              return a.total_ms > b.total_ms;
            });
  return sorted;
}

std::vector<KernelTypeTime> top_k(const std::vector<KernelTypeTime>& aggregated,
                                  std::size_t k) {
  std::vector<KernelTypeTime> prefix(
      aggregated.begin(),
      aggregated.begin() +
          static_cast<std::ptrdiff_t>(std::min(k, aggregated.size())));
  return prefix;
}

double top1_share(const std::vector<KernelTypeTime>& aggregated) {
  if (aggregated.empty()) return 0.0;
  double total = 0.0;
  for (const KernelTypeTime& entry : aggregated) total += entry.total_ms;
  return total > 0.0 ? aggregated.front().total_ms / total : 0.0;
}

}  // namespace nnr::profiler
