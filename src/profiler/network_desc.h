// Layer-level descriptors of the ten profiled networks (paper Fig. 7/8).
//
// These descriptors exist for the *cost model only* — they describe kernel
// workloads (shapes, kernel sizes, depthwise-ness), not trainable modules.
// All follow the paper's profiling setup: ImageNet input 224x224, batch 64.
// Topologies are faithful at the level that matters for kernel-time
// accounting: per-layer spatial dims, channel widths, kernel sizes, stride,
// and whether the conv is depthwise (depthwise convs have no fast
// nondeterministic algo and profile at ~1x overhead).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace nnr::profiler {

enum class LayerKind {
  kConv,           // dense convolution
  kDepthwiseConv,  // per-channel convolution (MobileNet/Xception/EfficientNet)
  kDense,          // fully connected (GEMM)
  kBatchNorm,
  kPool,
  kActivation,
};

struct LayerDesc {
  LayerKind kind = LayerKind::kConv;
  std::int64_t kernel = 0;     // conv kernel size (square)
  std::int64_t in_channels = 0;
  std::int64_t out_channels = 0;
  std::int64_t out_h = 0;      // output spatial dims
  std::int64_t out_w = 0;
  std::int64_t stride = 1;

  /// True for pointwise (1x1) convs inside depthwise-separable blocks:
  /// frameworks lower these to plain batched GEMM, which has a fast
  /// deterministic path — the reason MobileNet-family models profile at
  /// ~101% overhead (Fig. 8a) while conv-path 1x1 layers do not.
  bool gemm_lowered = false;

  /// Multiply-accumulates per example for this layer.
  [[nodiscard]] double macs() const noexcept;
  /// Activation bytes touched per example (for memory-bound kernels).
  [[nodiscard]] double activation_bytes() const noexcept;
};

struct NetworkDesc {
  std::string name;
  std::vector<LayerDesc> layers;

  [[nodiscard]] double total_macs() const noexcept;
};

/// The Fig. 8(a) network suite, in the paper's legend order.
[[nodiscard]] std::vector<NetworkDesc> profiled_networks();

[[nodiscard]] NetworkDesc vgg16_desc();
[[nodiscard]] NetworkDesc vgg19_desc();
[[nodiscard]] NetworkDesc resnet50_desc();
[[nodiscard]] NetworkDesc resnet152_desc();
[[nodiscard]] NetworkDesc densenet121_desc();
[[nodiscard]] NetworkDesc densenet201_desc();
[[nodiscard]] NetworkDesc inception_v3_desc();
[[nodiscard]] NetworkDesc xception_desc();
[[nodiscard]] NetworkDesc mobilenet_desc();
[[nodiscard]] NetworkDesc efficientnet_b0_desc();

/// The six-layer medium CNN with parametric kernel size (paper Appendix C,
/// Fig. 8(b)); 224x224 input.
[[nodiscard]] NetworkDesc medium_cnn_desc(std::int64_t kernel);

}  // namespace nnr::profiler
