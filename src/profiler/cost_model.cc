#include "profiler/cost_model.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace nnr::profiler {

namespace {

/// Deterministic-kernel shape sensitivity: the always-deterministic direct
/// kernels degrade on "skewed" workloads (huge spatial extent, few channels)
/// where the atomic/tiled kernels shine. This is the mechanism behind the
/// medium CNN's large overhead even at 1x1 kernels (Fig. 8b) while
/// channel-heavy layers in the ten production networks stay closer to the
/// Fig. 8a range.
double shape_badness(const LayerDesc& layer) {
  const double spatial = static_cast<double>(layer.out_h * layer.out_w);
  const double channel_work = std::max<double>(
      1.0, static_cast<double>(layer.in_channels * layer.out_channels));
  // Superlinear channel exponent: production networks (wide channels even in
  // early blocks) escape the penalty quickly, while channel-thin probes like
  // the medium CNN stay deep inside it.
  return spatial / std::pow(channel_work, 1.5);
}

struct ArchTuning {
  double macs_per_ms;
  double bytes_per_ms;
  double det_wgrad_base;   // direct deterministic wgrad efficiency at k=1
  double det_k_slope;      // efficiency decay with kernel area
  double badness_coeff;    // shape-sensitivity of deterministic kernels
  double det_bn_penalty;   // deterministic batch-norm/bias kernels slowdown
  bool tiled_deterministic;  // Winograd/FFT fwd+bgrad deterministic variants
};

ArchTuning tuning_for(hw::GpuArch arch) {
  switch (arch) {
    case hw::GpuArch::kPascal:
      // P100: no deterministic tiled algos, weak direct kernels, very
      // shape-sensitive. Calibration targets: medium CNN 284%-746%,
      // network suite up to ~211% (paper Fig. 8).
      return {.macs_per_ms = 4.7e9,
              .bytes_per_ms = 3.0e9,
              .det_wgrad_base = 0.70,
              .det_k_slope = 0.13,
              .badness_coeff = 2.0,
              .det_bn_penalty = 2.2,
              .tiled_deterministic = false};
    case hw::GpuArch::kVolta:
      // V100 targets: medium CNN 129%-241%, VGG-19 ~185%, MobileNet ~101%.
      return {.macs_per_ms = 7.8e9,
              .bytes_per_ms = 4.5e9,
              .det_wgrad_base = 0.55,
              .det_k_slope = 0.050,
              .badness_coeff = 0.35,
              .det_bn_penalty = 1.15,
              .tiled_deterministic = true};
    case hw::GpuArch::kTuring:
      // T4 targets: medium CNN 117%-196%.
      return {.macs_per_ms = 4.0e9,
              .bytes_per_ms = 2.4e9,
              .det_wgrad_base = 0.65,
              .det_k_slope = 0.042,
              .badness_coeff = 0.25,
              .det_bn_penalty = 1.12,
              .tiled_deterministic = true};
    case hw::GpuArch::kNone:
      break;
  }
  assert(false && "cost model requires a GPU architecture");
  return {};
}

}  // namespace

std::string algo_name(ConvAlgo algo) {
  switch (algo) {
    case ConvAlgo::kImplicitGemm:
      return "implicit_gemm";
    case ConvAlgo::kImplicitPrecompGemm:
      return "implicit_precomp_gemm";
    case ConvAlgo::kWinograd:
      return "winograd";
    case ConvAlgo::kFft:
      return "fft";
    case ConvAlgo::kAtomicReduction:
      return "atomic_reduction";
    case ConvAlgo::kDirectDeterministic:
      return "direct_deterministic";
  }
  return "?";
}

std::string pass_name(ConvPass pass) {
  switch (pass) {
    case ConvPass::kForward:
      return "fwd";
    case ConvPass::kWgrad:
      return "wgrad";
    case ConvPass::kBgrad:
      return "bgrad";
  }
  return "?";
}

CostModel CostModel::for_arch(hw::GpuArch arch) {
  const ArchTuning tuning = tuning_for(arch);
  CostModel model;
  model.arch_ = arch;
  model.macs_per_ms_ = tuning.macs_per_ms;
  model.bytes_per_ms_ = tuning.bytes_per_ms;
  model.det_base_fwd_ = 1.0;  // implicit GEMM forward is deterministic
  model.det_base_wgrad_ = tuning.det_wgrad_base;
  model.det_k_slope_ = tuning.det_k_slope;
  model.tiled_algos_deterministic_ = tuning.tiled_deterministic;
  return model;
}

std::vector<AlgoOption> CostModel::menu(ConvPass pass,
                                        std::int64_t kernel) const {
  std::vector<AlgoOption> options;
  const double k = static_cast<double>(kernel);
  const bool tiled_det = tiled_algos_deterministic_;

  switch (pass) {
    case ConvPass::kForward: {
      // Forward implicit-GEMM kernels are deterministic in cuDNN; the fast
      // tiled variants are deterministic only on newer generations.
      options.push_back({ConvAlgo::kImplicitGemm, true, 1.0});
      options.push_back({ConvAlgo::kImplicitPrecompGemm, tiled_det, 1.25});
      if (kernel == 3) {
        options.push_back({ConvAlgo::kWinograd, tiled_det, 2.1});
      }
      if (kernel >= 5) {
        options.push_back(
            {ConvAlgo::kFft, tiled_det, 1.5 + 0.15 * (k - 5.0)});
      }
      break;
    }
    case ConvPass::kBgrad: {
      options.push_back(
          {ConvAlgo::kAtomicReduction, false, 1.15 + 0.03 * (k - 1.0)});
      options.push_back({ConvAlgo::kDirectDeterministic, true,
                         1.0 / (1.0 + 0.4 * det_k_slope_ * (k - 1.0))});
      if (kernel == 3) {
        options.push_back({ConvAlgo::kWinograd, tiled_det, 1.9});
      }
      if (kernel >= 5) {
        options.push_back(
            {ConvAlgo::kFft, tiled_det, 1.45 + 0.15 * (k - 5.0)});
      }
      break;
    }
    case ConvPass::kWgrad: {
      // Atomic accumulation: fastest, never deterministic. The tiled wgrad
      // variants are nondeterministic on every generation (cuDNN docs).
      options.push_back(
          {ConvAlgo::kAtomicReduction, false, 1.3 + 0.05 * (k - 1.0)});
      if (kernel == 3) {
        options.push_back({ConvAlgo::kWinograd, false, 1.9});
      }
      if (kernel >= 5) {
        options.push_back({ConvAlgo::kFft, false, 1.9 + 0.25 * (k - 5.0)});
      }
      options.push_back(
          {ConvAlgo::kDirectDeterministic, true,
           det_base_wgrad_ / (1.0 + det_k_slope_ * (k * k - 1.0) / 7.0)});
      break;
    }
  }
  return options;
}

AlgoOption CostModel::autotune(ConvPass pass, std::int64_t kernel,
                               hw::DeterminismMode mode) const {
  const std::vector<AlgoOption> options = menu(pass, kernel);
  AlgoOption best{};
  best.efficiency = 0.0;
  for (const AlgoOption& option : options) {
    if (mode == hw::DeterminismMode::kDeterministic && !option.deterministic) {
      continue;
    }
    if (option.efficiency > best.efficiency) best = option;
  }
  assert(best.efficiency > 0.0 && "menu must contain a deterministic option");
  return best;
}

std::vector<KernelLaunch> CostModel::lower_step(const NetworkDesc& net,
                                                hw::DeterminismMode mode,
                                                std::int64_t batch) const {
  const ArchTuning tuning = tuning_for(arch_);
  std::vector<KernelLaunch> launches;
  const double b = static_cast<double>(batch);
  const bool deterministic = mode == hw::DeterminismMode::kDeterministic;

  for (const LayerDesc& layer : net.layers) {
    switch (layer.kind) {
      case LayerKind::kConv: {
        if (layer.gemm_lowered) {
          // Pointwise conv lowered to batched GEMM: deterministic fast path
          // in both modes (fwd + dgrad + wgrad as three GEMMs).
          const double t = b * layer.macs() / (macs_per_ms_ * 1.2);
          for (const char* pass : {"fwd", "bgrad", "wgrad"}) {
            launches.push_back({std::string("gemm_pointwise_") + pass, t});
          }
          break;
        }
        // Deterministic direct kernels lose additional ground on skewed
        // shapes (spatially huge, channel-thin layers).
        const double det_shape_penalty =
            1.0 + tuning.badness_coeff * std::log1p(shape_badness(layer) / 0.5);
        for (const ConvPass pass :
             {ConvPass::kForward, ConvPass::kBgrad, ConvPass::kWgrad}) {
          const AlgoOption algo = autotune(pass, layer.kernel, mode);
          double efficiency = algo.efficiency;
          if (deterministic &&
              algo.algo == ConvAlgo::kDirectDeterministic) {
            efficiency /= det_shape_penalty;
          }
          const double t = b * layer.macs() / (macs_per_ms_ * efficiency);
          // GEMM-style kernels are kernel-size-agnostic (one parametrized
          // kernel); Winograd/FFT ship one specialized tiling per size —
          // this naming split is what skews the deterministic-mode kernel
          // distribution toward fewer types (paper Fig. 7).
          std::string name = algo_name(algo.algo) + "_" + pass_name(pass);
          if (algo.algo == ConvAlgo::kWinograd || algo.algo == ConvAlgo::kFft) {
            name += "_" + std::to_string(layer.kernel) + "x" +
                    std::to_string(layer.kernel);
          }
          launches.push_back({std::move(name), t});
        }
        break;
      }
      case LayerKind::kDepthwiseConv: {
        // Direct depthwise kernels; no nondeterministic fast path exists, so
        // both modes run the same kernels (memory-bound).
        const double t =
            b * (layer.macs() / macs_per_ms_ +
                 2.0 * layer.activation_bytes() / bytes_per_ms_);
        for (const char* pass : {"fwd", "bgrad", "wgrad"}) {
          launches.push_back({std::string("depthwise_") + pass, t});
        }
        break;
      }
      case LayerKind::kDense: {
        const double t = b * layer.macs() / (macs_per_ms_ * 1.2);
        for (const char* pass : {"fwd", "bgrad", "wgrad"}) {
          launches.push_back({std::string("gemm_dense_") + pass, t});
        }
        break;
      }
      case LayerKind::kBatchNorm: {
        // Fused BN: two memory-bound passes. Deterministic mode swaps the
        // atomic BN-gradient kernel for a slower tree-reduction variant.
        const double det_factor = deterministic ? tuning.det_bn_penalty : 1.0;
        const double t =
            b * 2.0 * layer.activation_bytes() / bytes_per_ms_ * det_factor;
        const char* suffix = deterministic ? "_det" : "";
        launches.push_back({std::string("batchnorm_fwd") + suffix, t});
        launches.push_back({std::string("batchnorm_bwd") + suffix, t});
        break;
      }
      case LayerKind::kPool: {
        const double t = b * 2.0 * layer.activation_bytes() / bytes_per_ms_;
        launches.push_back({"pool_fwd", t * 0.5});
        launches.push_back({"pool_bwd", t * 0.5});
        break;
      }
      case LayerKind::kActivation: {
        const double t = b * 2.0 * layer.activation_bytes() / bytes_per_ms_;
        launches.push_back({"relu_fwd", t * 0.5});
        launches.push_back({"relu_bwd", t * 0.5});
        break;
      }
    }
  }
  return launches;
}

double CostModel::step_time_ms(const NetworkDesc& net,
                               hw::DeterminismMode mode,
                               std::int64_t batch) const {
  double total = 0.0;
  for (const KernelLaunch& launch : lower_step(net, mode, batch)) {
    total += launch.time_ms;
  }
  return total;
}

OverheadResult deterministic_overhead(const NetworkDesc& net,
                                      hw::GpuArch arch, std::int64_t batch) {
  const CostModel model = CostModel::for_arch(arch);
  OverheadResult result;
  result.default_ms =
      model.step_time_ms(net, hw::DeterminismMode::kDefault, batch);
  result.deterministic_ms =
      model.step_time_ms(net, hw::DeterminismMode::kDeterministic, batch);
  return result;
}

}  // namespace nnr::profiler
