// Persistence of a single replicate's training outcome (core::RunResult) —
// the payload of the study-level replicate cache (sched/cache_backend.h).
//
// Cache-validity contract: the round-trip is *bitwise* lossless (raw IEEE-754
// float payloads, never text), so a replicate loaded from disk is
// indistinguishable from the replicate that was trained — the determinism
// contract of PR 2 extends to cached results, and tests enforce
// load-vs-recompute bitwise equality. Each file embeds the 128-bit content
// key of the cell that produced it, so a cache entry can never be replayed
// against a different cell, even after a file rename.
//
// The same byte stream exists in two places: as a file under the cache dir
// (FsCacheBackend) and as the GET/PUT payload of the nnr_cached wire
// protocol (RemoteCacheBackend). encode_run_result produces bytes identical
// to what save_run_result writes, so the daemon can store a PUT body
// verbatim and serve a GET straight from the file — no re-encoding, no
// trust: every consumer re-verifies magic, checksum, and embedded key.
//
// Format (little-endian):
//   magic "NNRRSLT1"
//   u64 key_hi | u64 key_lo
//   u64 n_predictions | i32 predictions[n]
//   u64 n_confidences | f32 confidences[n]
//   u64 n_weights     | f32 weights[n]
//   f64 test_accuracy | f64 final_train_loss
//   trailer: u64 FNV-1a over everything after the magic
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "core/trainer.h"
#include "serialize/checkpoint.h"

namespace nnr::serialize {

/// Writes `result` to `path`, stamped with the cell content key. Returns
/// the number of bytes written (the file's exact size), so cache accounting
/// never depends on re-statting the file. Throws CheckpointError on I/O
/// failure.
std::uint64_t save_run_result(const std::string& path,
                              const core::RunResult& result,
                              std::uint64_t key_hi, std::uint64_t key_lo);

/// Reads a RunResult back. Throws CheckpointError on I/O failure, magic or
/// checksum mismatch, truncation, or when the embedded key differs from
/// (key_hi, key_lo) — the caller asked for a different cell's result.
[[nodiscard]] core::RunResult load_run_result(const std::string& path,
                                              std::uint64_t key_hi,
                                              std::uint64_t key_lo);

/// In-memory twin of save_run_result: the returned bytes are exactly what
/// save_run_result would have written to a file (same magic, body, and
/// checksum trailer). This is the PUT payload of the remote cache protocol.
[[nodiscard]] std::string encode_run_result(const core::RunResult& result,
                                            std::uint64_t key_hi,
                                            std::uint64_t key_lo);

/// In-memory twin of load_run_result, for GET payloads received over the
/// wire. Same validation, same exceptions; `label` names the source in
/// error messages.
[[nodiscard]] core::RunResult decode_run_result(std::string_view bytes,
                                                std::uint64_t key_hi,
                                                std::uint64_t key_lo,
                                                const std::string& label);

/// True when `bytes` is a complete, checksum-valid RunResult stamped with
/// (key_hi, key_lo). The daemon runs this on every PUT body before letting
/// it touch the cache dir, so a buggy or malicious client cannot poison an
/// entry another client would later trust.
[[nodiscard]] bool validate_run_result_bytes(std::string_view bytes,
                                             std::uint64_t key_hi,
                                             std::uint64_t key_lo);

}  // namespace nnr::serialize
