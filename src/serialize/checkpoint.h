// Model checkpointing: a small, versioned binary format for parameters and
// persistent buffers (BN running statistics).
//
// Replicability contract: a checkpoint round-trip is *bitwise* lossless —
// float32 payloads are written as raw IEEE-754 bytes, never through text —
// so save -> load -> continue training is indistinguishable from an
// uninterrupted run under deterministic execution (enforced by
// tests/serialize/checkpoint_test.cc). This is the property that makes
// checkpoint/resume safe to use inside replicability studies: a lossy
// checkpoint (e.g. text round-trip) would itself be a source of
// implementation noise.
//
// Format (little-endian, the only byte order the simulated stack targets):
//   magic "NNRCKPT1" | u32 entry count
//   per entry: u32 kind (0 = param, 1 = buffer) | u32 name length | name
//              | u32 rank | i64 dims[rank] | f32 payload[numel]
//   trailer: u64 FNV-1a over everything after the magic
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "nn/model.h"
#include "opt/optimizer.h"

namespace nnr::serialize {

/// Thrown on I/O failure, format violation, checksum mismatch, or a
/// model/checkpoint structure mismatch on load.
class CheckpointError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Writes all parameters and buffers of `model` to `path`.
void save_model(const std::string& path, nn::Model& model);

/// Restores parameters and buffers into `model`, which must have the same
/// structure (entry count, names, shapes, in order) as the saved model.
/// Gradients and all layer caches are left untouched.
void load_model(const std::string& path, nn::Model& model);

/// Number of (param + buffer) entries a checkpoint of `model` would hold.
[[nodiscard]] std::size_t checkpoint_entry_count(nn::Model& model);

/// Writes model state AND optimizer state (momentum velocities / Adam
/// moments / step counter). Resuming from a training-state checkpoint is
/// bitwise indistinguishable from never stopping, with no optimizer-restart
/// caveat (magic "NNRTRNS1"; model-only files use "NNRCKPT1").
void save_training_state(const std::string& path, nn::Model& model,
                         opt::Optimizer& optimizer);

/// Restores model and optimizer state saved by save_training_state. The
/// optimizer must have the same structure (slot names and sizes) as the
/// saved one — in practice: same optimizer type over the same model.
void load_training_state(const std::string& path, nn::Model& model,
                         opt::Optimizer& optimizer);

}  // namespace nnr::serialize
