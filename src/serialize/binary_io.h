// Shared plumbing for the NNR binary formats — both the on-disk ones
// (checkpoint.cc, run_result.cc) and the nnr_cached wire protocol
// (net/frame.h): an incremental FNV-1a digest, Writer/Reader over files, and
// BufWriter/BufReader over in-memory byte strings. Every producer emits
//   magic | body | u64 FNV-1a trailer over the body
// and every consumer verifies magic + checksum before handing out a single
// byte. A payload encoded with BufWriter is byte-identical to the file
// Writer would have produced, which is what lets the remote cache daemon
// ship cache entries over TCP and store them verbatim on disk.
//
// Every format built on this layer shares the replicability contract:
// float32 payloads are raw IEEE-754 bytes (never text), so a round-trip is
// bitwise lossless, and any truncation or corruption surfaces as a
// CheckpointError instead of silently wrong data.
#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "serialize/checkpoint.h"

namespace nnr::serialize::detail {

/// Incremental FNV-1a (64-bit) over the serialized body.
class Fnv1a {
 public:
  void update(const void* data, std::size_t bytes) noexcept {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < bytes; ++i) {
      hash_ ^= p[i];
      hash_ *= 0x100000001b3ull;
    }
  }
  [[nodiscard]] std::uint64_t digest() const noexcept { return hash_; }

 private:
  std::uint64_t hash_ = 0xcbf29ce484222325ull;
};

class Writer {
 public:
  Writer(const std::string& path, const std::array<char, 8>& magic)
      : out_(path, std::ios::binary | std::ios::trunc) {
    if (!out_) throw CheckpointError("cannot open for writing: " + path);
    out_.write(magic.data(), magic.size());
    bytes_written_ = magic.size();
  }

  template <typename T>
  void put(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    out_.write(reinterpret_cast<const char*>(&v), sizeof(T));
    hash_.update(&v, sizeof(T));
    bytes_written_ += sizeof(T);
  }

  void put_bytes(const void* data, std::size_t bytes) {
    out_.write(static_cast<const char*>(data),
               static_cast<std::streamsize>(bytes));
    hash_.update(data, bytes);
    bytes_written_ += bytes;
  }

  /// Appends the checksum trailer and returns the file's total size in
  /// bytes — the exact accounting figure, so callers (the replicate cache)
  /// never have to re-stat the file and risk counting a garbage size.
  std::uint64_t finish(const std::string& path) {
    const std::uint64_t digest = hash_.digest();
    out_.write(reinterpret_cast<const char*>(&digest), sizeof(digest));
    bytes_written_ += sizeof(digest);
    out_.flush();
    if (!out_) throw CheckpointError("write failed: " + path);
    return bytes_written_;
  }

 private:
  std::ofstream out_;
  Fnv1a hash_;
  std::uint64_t bytes_written_ = 0;
};

/// Writer twin that appends to an in-memory string instead of a file, with
/// an arbitrary-length magic (file formats use 8 bytes, the wire frame 4).
/// finish() returns the complete payload: magic | body | FNV-1a trailer —
/// byte-identical to what Writer would have put on disk for the same magic
/// and the same sequence of puts.
class BufWriter {
 public:
  explicit BufWriter(std::string_view magic) { buf_.assign(magic); }

  template <typename T>
  void put(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    put_bytes(&v, sizeof(T));
  }

  void put_bytes(const void* data, std::size_t bytes) {
    buf_.append(static_cast<const char*>(data), bytes);
    hash_.update(data, bytes);
  }

  [[nodiscard]] std::string finish() {
    const std::uint64_t digest = hash_.digest();
    buf_.append(reinterpret_cast<const char*>(&digest), sizeof(digest));
    return std::move(buf_);
  }

 private:
  std::string buf_;
  Fnv1a hash_;
};

class Reader {
 public:
  Reader(const std::string& path, const std::array<char, 8>& magic)
      : path_(path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw CheckpointError("cannot open for reading: " + path);
    bytes_.assign(std::istreambuf_iterator<char>(in),
                  std::istreambuf_iterator<char>());
    init(std::string_view(bytes_.data(), bytes_.size()),
         std::string_view(magic.data(), magic.size()));
  }

  template <typename T>
  T get() {
    static_assert(std::is_trivially_copyable_v<T>);
    need(sizeof(T));
    T v;
    std::memcpy(&v, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  void get_bytes(void* dst, std::size_t bytes) {
    need(bytes);
    std::memcpy(dst, data_ + pos_, bytes);
    pos_ += bytes;
  }

  [[nodiscard]] bool exhausted() const noexcept { return pos_ == body_end_; }

  /// Unread body bytes (trailer excluded).
  [[nodiscard]] std::size_t remaining() const noexcept {
    return body_end_ - pos_;
  }

 protected:
  /// BufReader path: verify `bytes` (not owned) against `magic`.
  Reader(std::string_view bytes, std::string_view magic, std::string label)
      : path_(std::move(label)) {
    init(bytes, magic);
  }

 private:
  void init(std::string_view bytes, std::string_view magic) {
    data_ = bytes.data();
    if (bytes.size() < magic.size() + sizeof(std::uint64_t)) {
      throw CheckpointError("truncated checkpoint: " + path_);
    }
    if (std::memcmp(bytes.data(), magic.data(), magic.size()) != 0) {
      throw CheckpointError(
          "bad magic (wrong or non-NNR checkpoint kind): " + path_);
    }
    body_end_ = bytes.size() - sizeof(std::uint64_t);
    std::uint64_t stored = 0;
    std::memcpy(&stored, bytes.data() + body_end_, sizeof(stored));
    Fnv1a hash;
    hash.update(bytes.data() + magic.size(), body_end_ - magic.size());
    if (hash.digest() != stored) {
      throw CheckpointError("checksum mismatch (corrupt checkpoint): " +
                            path_);
    }
    pos_ = magic.size();
  }

  void need(std::size_t bytes) const {
    if (pos_ + bytes > body_end_) {
      throw CheckpointError("truncated checkpoint body: " + path_);
    }
  }

  std::string path_;
  std::vector<char> bytes_;   // owned storage (file path only)
  const char* data_ = nullptr;
  std::size_t body_end_ = 0;
  std::size_t pos_ = 0;
};

/// Reader twin over an in-memory payload (magic | body | trailer). The
/// payload must outlive the reader — it is viewed, not copied. `label`
/// replaces the file path in error messages (e.g. "<wire>").
class BufReader : public Reader {
 public:
  BufReader(std::string_view payload, std::string_view magic,
            std::string label = "<buffer>")
      : Reader(payload, magic, std::move(label)) {}
};

}  // namespace nnr::serialize::detail
