// Append-only access journal — the persistence record behind the replicate
// cache's LRU eviction (sched/fs_cache_backend.h).
//
// On-disk format: plain text, one short token per LF-terminated line (for
// the cache: the 32-hex-char entry key). File order IS access order —
// oldest first, duplicates kept, the LAST occurrence of a token being its
// most recent access. Tokens are appended with O_APPEND so concurrent
// writers — pool workers in one process, several nnr_run processes sharing
// a cache dir, or the nnr_cached daemon fronting it — never interleave
// within a record. Readers tolerate a torn trailing line (a
// writer killed mid-append): malformed lines are skipped, never fatal,
// matching the cache's "accelerator, not correctness dependency" policy.
// Compaction (rewrite) is temp-file + rename, so a reader always sees
// either the old journal or the new one; callers serialize compaction
// against other *writers* with the cache-wide lock.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace nnr::serialize {

class AccessJournal {
 public:
  explicit AccessJournal(std::string path);

  [[nodiscard]] const std::string& path() const noexcept { return path_; }

  /// Appends `token` as one line. Best-effort: I/O failure is swallowed
  /// (a lost journal record only weakens LRU ordering, never correctness).
  /// `token` must be non-empty and contain no '\n'.
  void append(const std::string& token) const noexcept;

  /// All well-formed tokens in file order (oldest first, duplicates kept —
  /// the LAST occurrence of a token is its most recent access). A missing
  /// journal reads as empty.
  [[nodiscard]] std::vector<std::string> read() const;

  /// Replaces the journal with exactly `tokens`, one per line (compaction).
  /// Atomic via temp file + rename; best-effort like append. Appends do
  /// NOT take any lock, so a record landing between the caller's read()
  /// and this rename is discarded — callers serialize rewrites against
  /// each other (cache-wide lock) and should skip the rewrite when the
  /// journal grew under them to shrink that window; a record lost in the
  /// residual window costs one entry's LRU rank, never correctness.
  void rewrite(const std::vector<std::string>& tokens) const noexcept;

  /// Current journal size in bytes (0 when missing) — the compaction
  /// trigger.
  [[nodiscard]] std::int64_t size_bytes() const noexcept;

 private:
  std::string path_;
};

}  // namespace nnr::serialize
