#include "serialize/journal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cctype>
#include <filesystem>
#include <fstream>
#include <system_error>

namespace nnr::serialize {

namespace fs = std::filesystem;

namespace {

/// A token is journal-well-formed when it is non-empty printable ASCII with
/// no whitespace — rejects torn lines and foreign bytes on read.
bool well_formed(const std::string& token) {
  if (token.empty()) return false;
  for (const char c : token) {
    if (!std::isgraph(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

}  // namespace

AccessJournal::AccessJournal(std::string path) : path_(std::move(path)) {}

void AccessJournal::append(const std::string& token) const noexcept {
  // O_APPEND: the kernel serializes the offset, so one write() call is one
  // intact record even with concurrent appenders across processes.
  const int fd = ::open(path_.c_str(), O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC,
                        0644);
  if (fd < 0) return;
  const std::string line = token + "\n";
  // Single write; a short write can only tear the trailing record, which
  // readers skip.
  (void)!::write(fd, line.data(), line.size());
  ::close(fd);
}

std::vector<std::string> AccessJournal::read() const {
  std::vector<std::string> tokens;
  std::ifstream in(path_);
  if (!in) return tokens;
  std::string line;
  while (std::getline(in, line)) {
    if (well_formed(line)) tokens.push_back(line);
  }
  return tokens;
}

void AccessJournal::rewrite(
    const std::vector<std::string>& tokens) const noexcept {
  const std::string tmp = path_ + ".tmp" + std::to_string(::getpid());
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return;
    for (const std::string& token : tokens) out << token << '\n';
    out.flush();
    if (!out) {
      std::error_code ec;
      fs::remove(tmp, ec);
      return;
    }
  }
  std::error_code ec;
  fs::rename(tmp, path_, ec);
  if (ec) fs::remove(tmp, ec);
}

std::int64_t AccessJournal::size_bytes() const noexcept {
  std::error_code ec;
  const auto size = fs::file_size(path_, ec);
  return ec ? 0 : static_cast<std::int64_t>(size);
}

}  // namespace nnr::serialize
