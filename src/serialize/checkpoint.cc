#include "serialize/checkpoint.h"

#include <array>
#include <vector>

#include "serialize/binary_io.h"

namespace nnr::serialize {

namespace {

using detail::Reader;
using detail::Writer;

constexpr std::array<char, 8> kMagic = {'N', 'N', 'R', 'C', 'K', 'P', 'T', '1'};
constexpr std::array<char, 8> kTrainMagic = {'N', 'N', 'R', 'T', 'R',
                                             'N', 'S', '1'};
constexpr std::uint32_t kKindParam = 0;
constexpr std::uint32_t kKindBuffer = 1;
constexpr std::uint32_t kKindOptSlot = 2;

struct Entry {
  std::uint32_t kind;
  std::string name;
  tensor::Tensor* value;
};

std::vector<Entry> collect_entries(nn::Model& model) {
  std::vector<Entry> entries;
  for (nn::Param* p : model.params()) {
    entries.push_back({kKindParam, p->name, &p->value});
  }
  for (const nn::NamedBuffer& b : model.buffers()) {
    entries.push_back({kKindBuffer, b.name, b.value});
  }
  return entries;
}

void write_entry(Writer& w, const Entry& e) {
  w.put(e.kind);
  w.put(static_cast<std::uint32_t>(e.name.size()));
  w.put_bytes(e.name.data(), e.name.size());
  const tensor::Shape& shape = e.value->shape();
  w.put(static_cast<std::uint32_t>(shape.rank()));
  for (int d = 0; d < shape.rank(); ++d) {
    w.put(static_cast<std::int64_t>(shape[d]));
  }
  w.put_bytes(e.value->raw(),
              static_cast<std::size_t>(e.value->numel()) * sizeof(float));
}

void read_entry_into(Reader& r, const Entry& e, std::size_t index) {
  const auto kind = r.get<std::uint32_t>();
  if (kind != e.kind) {
    throw CheckpointError("entry " + std::to_string(index) +
                          ": kind mismatch (param/buffer order differs)");
  }
  const auto name_len = r.get<std::uint32_t>();
  std::string name(name_len, '\0');
  r.get_bytes(name.data(), name_len);
  if (name != e.name) {
    throw CheckpointError("entry " + std::to_string(index) + ": name '" +
                          name + "' does not match model entry '" + e.name +
                          "'");
  }
  const auto rank = r.get<std::uint32_t>();
  if (static_cast<int>(rank) != e.value->shape().rank()) {
    throw CheckpointError("entry " + std::to_string(index) + " ('" + name +
                          "'): rank mismatch");
  }
  for (std::uint32_t d = 0; d < rank; ++d) {
    const auto dim = r.get<std::int64_t>();
    if (dim != e.value->shape()[static_cast<int>(d)]) {
      throw CheckpointError("entry " + std::to_string(index) + " ('" + name +
                            "'): shape mismatch on axis " + std::to_string(d));
    }
  }
  r.get_bytes(e.value->raw(),
              static_cast<std::size_t>(e.value->numel()) * sizeof(float));
}

}  // namespace

void save_model(const std::string& path, nn::Model& model) {
  const std::vector<Entry> entries = collect_entries(model);
  Writer w(path, kMagic);
  w.put(static_cast<std::uint32_t>(entries.size()));
  for (const Entry& e : entries) write_entry(w, e);
  w.finish(path);
}

void load_model(const std::string& path, nn::Model& model) {
  const std::vector<Entry> entries = collect_entries(model);
  Reader r(path, kMagic);
  const auto count = r.get<std::uint32_t>();
  if (count != entries.size()) {
    throw CheckpointError(
        "checkpoint holds " + std::to_string(count) + " entries but model has " +
        std::to_string(entries.size()));
  }
  for (std::size_t i = 0; i < entries.size(); ++i) {
    read_entry_into(r, entries[i], i);
  }
  if (!r.exhausted()) {
    throw CheckpointError("trailing bytes after final entry: " + path);
  }
}

std::size_t checkpoint_entry_count(nn::Model& model) {
  return collect_entries(model).size();
}

namespace {

void write_slot(Writer& w, const std::string& name,
                const std::vector<float>& slot) {
  w.put(kKindOptSlot);
  w.put(static_cast<std::uint32_t>(name.size()));
  w.put_bytes(name.data(), name.size());
  w.put(static_cast<std::uint32_t>(1));  // rank
  w.put(static_cast<std::int64_t>(slot.size()));
  w.put_bytes(slot.data(), slot.size() * sizeof(float));
}

void read_slot_into(Reader& r, const std::string& expected_name,
                    std::vector<float>& slot, std::size_t index) {
  const auto kind = r.get<std::uint32_t>();
  if (kind != kKindOptSlot) {
    throw CheckpointError("entry " + std::to_string(index) +
                          ": expected an optimizer slot");
  }
  const auto name_len = r.get<std::uint32_t>();
  std::string name(name_len, '\0');
  r.get_bytes(name.data(), name_len);
  if (name != expected_name) {
    throw CheckpointError("optimizer slot '" + name +
                          "' does not match expected '" + expected_name +
                          "' (different optimizer type or model)");
  }
  const auto rank = r.get<std::uint32_t>();
  const auto dim = r.get<std::int64_t>();
  if (rank != 1 || dim != static_cast<std::int64_t>(slot.size())) {
    throw CheckpointError("optimizer slot '" + name + "': size mismatch");
  }
  r.get_bytes(slot.data(), slot.size() * sizeof(float));
}

}  // namespace

void save_training_state(const std::string& path, nn::Model& model,
                         opt::Optimizer& optimizer) {
  const std::vector<Entry> entries = collect_entries(model);
  const auto slots = optimizer.mutable_state();
  Writer w(path, kTrainMagic);
  w.put(static_cast<std::uint64_t>(optimizer.steps_taken()));
  w.put(static_cast<std::uint32_t>(entries.size()));
  w.put(static_cast<std::uint32_t>(slots.size()));
  for (const Entry& e : entries) write_entry(w, e);
  for (const auto& [name, slot] : slots) write_slot(w, name, *slot);
  w.finish(path);
}

void load_training_state(const std::string& path, nn::Model& model,
                         opt::Optimizer& optimizer) {
  const std::vector<Entry> entries = collect_entries(model);
  const auto slots = optimizer.mutable_state();
  Reader r(path, kTrainMagic);
  const auto steps = r.get<std::uint64_t>();
  const auto entry_count = r.get<std::uint32_t>();
  const auto slot_count = r.get<std::uint32_t>();
  if (entry_count != entries.size()) {
    throw CheckpointError("training state holds " +
                          std::to_string(entry_count) +
                          " model entries but model has " +
                          std::to_string(entries.size()));
  }
  if (slot_count != slots.size()) {
    throw CheckpointError("training state holds " +
                          std::to_string(slot_count) +
                          " optimizer slots but optimizer has " +
                          std::to_string(slots.size()));
  }
  for (std::size_t i = 0; i < entries.size(); ++i) {
    read_entry_into(r, entries[i], i);
  }
  for (std::size_t i = 0; i < slots.size(); ++i) {
    read_slot_into(r, slots[i].first, *slots[i].second, i);
  }
  if (!r.exhausted()) {
    throw CheckpointError("trailing bytes after final entry: " + path);
  }
  optimizer.set_steps_taken(static_cast<std::int64_t>(steps));
}

}  // namespace nnr::serialize
