#include "serialize/run_result.h"

#include <array>
#include <vector>

#include "serialize/binary_io.h"

namespace nnr::serialize {
namespace {

constexpr std::array<char, 8> kResultMagic = {'N', 'N', 'R', 'R',
                                              'S', 'L', 'T', '1'};

template <typename T>
void put_vector(detail::Writer& w, const std::vector<T>& v) {
  w.put(static_cast<std::uint64_t>(v.size()));
  if (!v.empty()) w.put_bytes(v.data(), v.size() * sizeof(T));
}

template <typename T>
std::vector<T> get_vector(detail::Reader& r) {
  const auto n = r.get<std::uint64_t>();
  std::vector<T> v(static_cast<std::size_t>(n));
  if (!v.empty()) r.get_bytes(v.data(), v.size() * sizeof(T));
  return v;
}

}  // namespace

std::uint64_t save_run_result(const std::string& path,
                              const core::RunResult& result,
                              std::uint64_t key_hi, std::uint64_t key_lo) {
  detail::Writer w(path, kResultMagic);
  w.put(key_hi);
  w.put(key_lo);
  put_vector(w, result.test_predictions);
  put_vector(w, result.test_confidences);
  put_vector(w, result.final_weights);
  w.put(result.test_accuracy);
  w.put(result.final_train_loss);
  return w.finish(path);
}

core::RunResult load_run_result(const std::string& path, std::uint64_t key_hi,
                                std::uint64_t key_lo) {
  detail::Reader r(path, kResultMagic);
  const auto stored_hi = r.get<std::uint64_t>();
  const auto stored_lo = r.get<std::uint64_t>();
  if (stored_hi != key_hi || stored_lo != key_lo) {
    throw CheckpointError("cached result key mismatch (entry belongs to a "
                          "different cell): " +
                          path);
  }
  core::RunResult result;
  result.test_predictions = get_vector<std::int32_t>(r);
  result.test_confidences = get_vector<float>(r);
  result.final_weights = get_vector<float>(r);
  result.test_accuracy = r.get<double>();
  result.final_train_loss = r.get<double>();
  if (!r.exhausted()) {
    throw CheckpointError("trailing bytes after result payload: " + path);
  }
  return result;
}

}  // namespace nnr::serialize
