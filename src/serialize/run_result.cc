#include "serialize/run_result.h"

#include <array>
#include <vector>

#include "serialize/binary_io.h"

namespace nnr::serialize {
namespace {

constexpr std::array<char, 8> kResultMagic = {'N', 'N', 'R', 'R',
                                              'S', 'L', 'T', '1'};

std::string_view result_magic_view() {
  return {kResultMagic.data(), kResultMagic.size()};
}

template <typename W, typename T>
void put_vector(W& w, const std::vector<T>& v) {
  w.put(static_cast<std::uint64_t>(v.size()));
  if (!v.empty()) w.put_bytes(v.data(), v.size() * sizeof(T));
}

template <typename T, typename R>
std::vector<T> get_vector(R& r) {
  const auto n = r.template get<std::uint64_t>();
  std::vector<T> v(static_cast<std::size_t>(n));
  if (!v.empty()) r.get_bytes(v.data(), v.size() * sizeof(T));
  return v;
}

// Body (everything between magic and trailer) is written/read through one
// template each, so the file and wire paths cannot drift apart.
template <typename W>
void write_body(W& w, const core::RunResult& result, std::uint64_t key_hi,
                std::uint64_t key_lo) {
  w.put(key_hi);
  w.put(key_lo);
  put_vector(w, result.test_predictions);
  put_vector(w, result.test_confidences);
  put_vector(w, result.final_weights);
  w.put(result.test_accuracy);
  w.put(result.final_train_loss);
}

template <typename R>
core::RunResult read_body(R& r, std::uint64_t key_hi, std::uint64_t key_lo,
                          const std::string& label) {
  const auto stored_hi = r.template get<std::uint64_t>();
  const auto stored_lo = r.template get<std::uint64_t>();
  if (stored_hi != key_hi || stored_lo != key_lo) {
    throw CheckpointError("cached result key mismatch (entry belongs to a "
                          "different cell): " +
                          label);
  }
  core::RunResult result;
  result.test_predictions = get_vector<std::int32_t>(r);
  result.test_confidences = get_vector<float>(r);
  result.final_weights = get_vector<float>(r);
  result.test_accuracy = r.template get<double>();
  result.final_train_loss = r.template get<double>();
  if (!r.exhausted()) {
    throw CheckpointError("trailing bytes after result payload: " + label);
  }
  return result;
}

}  // namespace

std::uint64_t save_run_result(const std::string& path,
                              const core::RunResult& result,
                              std::uint64_t key_hi, std::uint64_t key_lo) {
  detail::Writer w(path, kResultMagic);
  write_body(w, result, key_hi, key_lo);
  return w.finish(path);
}

core::RunResult load_run_result(const std::string& path, std::uint64_t key_hi,
                                std::uint64_t key_lo) {
  detail::Reader r(path, kResultMagic);
  return read_body(r, key_hi, key_lo, path);
}

std::string encode_run_result(const core::RunResult& result,
                              std::uint64_t key_hi, std::uint64_t key_lo) {
  detail::BufWriter w(result_magic_view());
  write_body(w, result, key_hi, key_lo);
  return w.finish();
}

core::RunResult decode_run_result(std::string_view bytes,
                                  std::uint64_t key_hi, std::uint64_t key_lo,
                                  const std::string& label) {
  detail::BufReader r(bytes, result_magic_view(), label);
  return read_body(r, key_hi, key_lo, label);
}

bool validate_run_result_bytes(std::string_view bytes, std::uint64_t key_hi,
                               std::uint64_t key_lo) {
  try {
    (void)decode_run_result(bytes, key_hi, key_lo, "<validate>");
    return true;
  } catch (const CheckpointError&) {
    return false;
  }
}

}  // namespace nnr::serialize
