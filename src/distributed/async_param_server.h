// Simulated asynchronous parameter-server training (Li et al. 2014, the
// "asynchronous gradients update" axis the paper names as future work in
// §6).
//
// One server owns the weights; W workers repeatedly (1) fetch the current
// weights, (2) compute a gradient on the next batch shard, (3) push the
// gradient back. Pushes from different workers interleave, so a gradient is
// applied to weights that may have advanced by up to W-1 updates since the
// worker fetched — the classic stale-gradient regime.
//
// The nondeterminism here is *qualitatively different* from the kernel-level
// IMPL noise elsewhere in this library: arrival order does not merely
// re-round a sum, it permutes the sequence of SGD updates and changes which
// weights each gradient was computed against. Async noise is therefore
// algorithmic-scale, not rounding-scale — the benches show it dominating
// every other tooling noise source. With fixed (round-robin) arrivals and
// deterministic kernels the simulation is bitwise reproducible, mirroring
// how a synchronous barrier restores determinism at a throughput cost.
#pragma once

#include <cstdint>

#include "core/trainer.h"

namespace nnr::distributed {

struct AsyncConfig {
  int workers = 4;
  /// true: per-round completion order is drawn from the scheduler-entropy
  /// channel (the realistic cluster regime). false: fixed round-robin
  /// arrivals — deterministic given deterministic kernels.
  bool shuffled_arrivals = true;
};

/// Trains one replicate of `job` under the asynchronous parameter-server
/// model and evaluates on the test split. With workers == 1 the schedule
/// degenerates to sequential SGD (fetch -> compute -> apply per batch).
[[nodiscard]] core::RunResult train_replicate_async(
    const core::TrainJob& job, const AsyncConfig& config,
    std::uint64_t replicate);

}  // namespace nnr::distributed
