// Simulated synchronous data-parallel training (the paper's §6 future-work
// axis).
//
// Each step splits the global batch into `workers` shards; every shard runs
// forward/backward on its own (simulated) device context, producing a
// per-worker gradient; gradients are combined by a policy-driven all-reduce;
// one optimizer step applies the summed gradient. This is mathematically the
// single-device step — all divergence comes from float32 ordering:
//
//   - per-worker kernel scheduling (the single-device IMPL mechanism),
//   - cross-worker all-reduce arrival order (the new distributed mechanism),
//   - batch-norm statistics computed per shard (as real sync data-parallel
//     training does without SyncBN).
#pragma once

#include <cstdint>

#include "core/trainer.h"
#include "distributed/allreduce.h"

namespace nnr::distributed {

struct DistributedConfig {
  int workers = 4;
  /// Collective ordering under nondeterministic mode; deterministic mode
  /// always uses kTreeFixed.
  AllReduceAlgo default_allreduce = AllReduceAlgo::kRingShuffled;
};

/// Trains one replicate of `job` with simulated data-parallel workers and
/// evaluates on the test split. With config.workers == 1 this degrades to a
/// semantic twin of core::train_replicate (same math, same noise channels).
[[nodiscard]] core::RunResult train_replicate_distributed(
    const core::TrainJob& job, const DistributedConfig& config,
    std::uint64_t replicate);

}  // namespace nnr::distributed
