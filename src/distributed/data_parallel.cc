#include "distributed/data_parallel.h"

#include <algorithm>
#include <cassert>
#include <vector>

#include "data/batcher.h"
#include "metrics/classification.h"
#include "nn/loss.h"
#include "opt/sgd.h"
#include "rng/seed_channels.h"
#include "tensor/ops.h"

namespace nnr::distributed {

using core::ChannelToggles;
using core::RunResult;
using core::TrainJob;
using data::EpochShuffler;
using data::gather_images;
using data::gather_labels;
using rng::Channel;
using rng::make_channel_generator;
using tensor::Tensor;

RunResult train_replicate_distributed(const TrainJob& job,
                                      const DistributedConfig& config,
                                      std::uint64_t replicate) {
  assert(job.dataset != nullptr && job.make_model != nullptr);
  assert(config.workers >= 1);
  const ChannelToggles toggles = job.toggles_override
                                     ? *job.toggles_override
                                     : toggles_for(job.variant);
  const data::LabeledImages& train = job.dataset->train;
  const data::LabeledImages& test = job.dataset->test;

  auto init_gen = make_channel_generator(job.base_seed, Channel::kInit,
                                         replicate, toggles.init_varies);
  auto shuffle_gen = make_channel_generator(job.base_seed, Channel::kShuffle,
                                            replicate, toggles.shuffle_varies);
  auto augment_gen = make_channel_generator(job.base_seed, Channel::kAugment,
                                            replicate, toggles.augment_varies);
  auto dropout_gen = make_channel_generator(job.base_seed, Channel::kDropout,
                                            replicate, toggles.dropout_varies);
  auto scheduler_gen =
      make_channel_generator(job.base_seed, Channel::kScheduler, replicate,
                             toggles.scheduler_varies);
  // A separate entropy stream for the collective's arrival order (a
  // different consumer of the same logical scheduler channel).
  auto collective_gen = make_channel_generator(
      job.base_seed ^ 0xD157C0DEull, Channel::kScheduler, replicate,
      toggles.scheduler_varies);

  hw::ExecutionContext hw_ctx(job.device, toggles.mode,
                              std::move(scheduler_gen));

  nn::Model model = job.make_model();
  model.init_weights(init_gen);
  opt::Sgd optimizer(model.params(), job.recipe.momentum);
  const std::vector<nn::Param*> params = model.params();

  // The collective algorithm: deterministic modes (and TPU pods) use the
  // fixed tree; default GPU clusters use the configured (shuffled) order.
  const bool deterministic_collective = hw_ctx.fully_deterministic();
  const AllReduceAlgo algo = deterministic_collective
                                 ? AllReduceAlgo::kTreeFixed
                                 : config.default_allreduce;

  EpochShuffler shuffler(train.size(), std::move(shuffle_gen));
  nn::RunContext ctx{.hw = &hw_ctx, .training = true, .dropout = &dropout_gen};

  // Per-worker gradient buffers, parallel to params.
  std::vector<std::vector<std::vector<float>>> worker_grads(
      static_cast<std::size_t>(config.workers));
  for (auto& grads : worker_grads) {
    grads.resize(params.size());
    for (std::size_t p = 0; p < params.size(); ++p) {
      grads[p].resize(static_cast<std::size_t>(params[p]->value.numel()));
    }
  }

  double last_loss = 0.0;
  for (std::int64_t epoch = 0; epoch < job.recipe.epochs; ++epoch) {
    const float lr = job.recipe.learning_rate(epoch);
    const std::vector<std::uint32_t> order = job.fixed_identity_order
                                                 ? shuffler.identity_order()
                                                 : shuffler.next_epoch_order();
    for (std::int64_t start = 0; start < train.size();
         start += job.recipe.batch_size) {
      const std::int64_t end =
          std::min(start + job.recipe.batch_size, train.size());
      const std::int64_t global_batch = end - start;
      const int active_workers = static_cast<int>(std::min<std::int64_t>(
          config.workers, global_batch));

      // Contiguous sharding of the global batch across workers.
      double loss_acc = 0.0;
      for (int w = 0; w < active_workers; ++w) {
        const std::int64_t shard_begin =
            start + w * global_batch / active_workers;
        const std::int64_t shard_end =
            start + (w + 1) * global_batch / active_workers;
        const std::span<const std::uint32_t> shard_idx(
            order.data() + shard_begin,
            static_cast<std::size_t>(shard_end - shard_begin));

        Tensor images = gather_images(train.images, shard_idx);
        if (job.recipe.augment) {
          images = data::augment_batch(images, job.recipe.augment_config,
                                       augment_gen);
        }
        const std::vector<std::int32_t> labels =
            gather_labels(train.labels, shard_idx);

        model.zero_grads();
        const Tensor logits = model.forward(images, ctx);
        const nn::LossResult loss =
            nn::softmax_cross_entropy(logits, labels, ctx);
        loss_acc += loss.loss * static_cast<double>(shard_idx.size());
        (void)model.backward(loss.grad_logits, ctx);

        // Snapshot this worker's gradient, weighted so the all-reduced sum
        // equals the global-batch mean-loss gradient.
        const float weight = static_cast<float>(shard_idx.size()) /
                             static_cast<float>(global_batch);
        for (std::size_t p = 0; p < params.size(); ++p) {
          const auto grad = params[p]->grad.data();
          auto& buffer = worker_grads[static_cast<std::size_t>(w)][p];
          for (std::size_t i = 0; i < buffer.size(); ++i) {
            buffer[i] = grad[i] * weight;
          }
        }
      }
      last_loss = loss_acc / static_cast<double>(global_batch);

      // All-reduce into the parameter gradients, then one optimizer step.
      for (std::size_t p = 0; p < params.size(); ++p) {
        std::vector<std::span<const float>> buffers;
        buffers.reserve(static_cast<std::size_t>(active_workers));
        for (int w = 0; w < active_workers; ++w) {
          buffers.emplace_back(worker_grads[static_cast<std::size_t>(w)][p]);
        }
        allreduce_sum(buffers, params[p]->grad.data(), algo, &collective_gen);
      }
      optimizer.step(lr);
    }
  }

  RunResult result;
  result.final_train_loss = last_loss;
  result.test_predictions =
      core::evaluate(model, test, hw_ctx, job.recipe.batch_size);
  result.test_accuracy =
      metrics::accuracy(result.test_predictions, test.labels);
  result.final_weights = model.flat_weights();
  return result;
}

}  // namespace nnr::distributed
