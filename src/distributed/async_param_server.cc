#include "distributed/async_param_server.h"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <optional>
#include <vector>

#include "data/batcher.h"
#include "metrics/classification.h"
#include "nn/loss.h"
#include "opt/sgd.h"
#include "rng/seed_channels.h"

namespace nnr::distributed {

using core::ChannelToggles;
using core::RunResult;
using core::TrainJob;
using data::EpochShuffler;
using data::gather_images;
using data::gather_labels;
using rng::Channel;
using rng::make_channel_generator;
using tensor::Tensor;

namespace {

std::vector<float> save_flat(const std::vector<nn::Param*>& params) {
  std::vector<float> flat;
  for (const nn::Param* p : params) {
    const auto view = p->value.data();
    flat.insert(flat.end(), view.begin(), view.end());
  }
  return flat;
}

void load_flat(const std::vector<nn::Param*>& params,
               const std::vector<float>& flat) {
  std::size_t offset = 0;
  for (nn::Param* p : params) {
    auto view = p->value.data();
    std::copy_n(flat.begin() + static_cast<std::ptrdiff_t>(offset),
                view.size(), view.begin());
    offset += view.size();
  }
  assert(offset == flat.size());
}

/// Serves mini-batch shards across epochs: each shard carries the indices of
/// its examples and the learning rate of its epoch.
class ShardStream {
 public:
  ShardStream(const TrainJob& job, EpochShuffler shuffler)
      : job_(job), shuffler_(std::move(shuffler)) {}

  struct Shard {
    std::vector<std::uint32_t> indices;
    float learning_rate = 0.0F;
  };

  [[nodiscard]] std::optional<Shard> next() {
    const std::int64_t train_n = job_.dataset->train.size();
    if (cursor_ >= train_n) {
      if (epoch_ + 1 >= job_.recipe.epochs) return std::nullopt;
      ++epoch_;
      cursor_ = 0;
      order_.clear();
    }
    if (order_.empty()) {
      order_ = job_.fixed_identity_order ? shuffler_.identity_order()
                                         : shuffler_.next_epoch_order();
    }
    const std::int64_t end =
        std::min(cursor_ + job_.recipe.batch_size, train_n);
    Shard shard;
    shard.indices.assign(order_.begin() + cursor_, order_.begin() + end);
    shard.learning_rate = job_.recipe.learning_rate(epoch_);
    cursor_ = end;
    return shard;
  }

 private:
  const TrainJob& job_;
  EpochShuffler shuffler_;
  std::vector<std::uint32_t> order_;
  std::int64_t epoch_ = 0;
  std::int64_t cursor_ = 0;
};

}  // namespace

RunResult train_replicate_async(const TrainJob& job, const AsyncConfig& config,
                                std::uint64_t replicate) {
  assert(job.dataset != nullptr && job.make_model != nullptr);
  assert(config.workers >= 1);
  const ChannelToggles toggles = job.toggles_override
                                     ? *job.toggles_override
                                     : toggles_for(job.variant);
  const data::LabeledImages& train = job.dataset->train;
  const data::LabeledImages& test = job.dataset->test;

  auto init_gen = make_channel_generator(job.base_seed, Channel::kInit,
                                         replicate, toggles.init_varies);
  auto shuffle_gen = make_channel_generator(job.base_seed, Channel::kShuffle,
                                            replicate, toggles.shuffle_varies);
  auto augment_gen = make_channel_generator(job.base_seed, Channel::kAugment,
                                            replicate, toggles.augment_varies);
  auto dropout_gen = make_channel_generator(job.base_seed, Channel::kDropout,
                                            replicate, toggles.dropout_varies);
  auto scheduler_gen =
      make_channel_generator(job.base_seed, Channel::kScheduler, replicate,
                             toggles.scheduler_varies);
  // The push/pull arrival order is its own consumer of scheduler entropy.
  auto arrival_gen = make_channel_generator(
      job.base_seed ^ 0xA517C0DEull, Channel::kScheduler, replicate,
      toggles.scheduler_varies);

  hw::ExecutionContext hw_ctx(job.device, toggles.mode,
                              std::move(scheduler_gen));

  nn::Model model = job.make_model();
  model.init_weights(init_gen);
  const std::vector<nn::Param*> params = model.params();
  opt::Sgd optimizer(params, job.recipe.momentum);

  nn::RunContext ctx{.hw = &hw_ctx, .training = true, .dropout = &dropout_gen};
  ShardStream stream(job, EpochShuffler(train.size(), std::move(shuffle_gen)));

  // Server state lives in the model params between completions; each
  // in-flight worker holds the weight snapshot it fetched plus its shard.
  struct InFlight {
    std::vector<float> snapshot;
    ShardStream::Shard shard;
  };
  std::vector<std::optional<InFlight>> in_flight(
      static_cast<std::size_t>(config.workers));

  std::vector<float> server = save_flat(params);
  for (int w = 0; w < config.workers; ++w) {
    if (auto shard = stream.next()) {
      in_flight[static_cast<std::size_t>(w)] =
          InFlight{server, *std::move(shard)};
    }
  }

  // Arrivals are deterministic round-robin unless shuffled arrivals are
  // requested AND the run is in the nondeterministic regime.
  const bool shuffle_arrivals =
      config.shuffled_arrivals && toggles.scheduler_varies;

  double last_loss = 0.0;
  std::vector<std::uint32_t> round_order;
  for (;;) {
    round_order.clear();
    for (std::uint32_t w = 0; w < static_cast<std::uint32_t>(config.workers);
         ++w) {
      if (in_flight[w].has_value()) round_order.push_back(w);
    }
    if (round_order.empty()) break;
    if (shuffle_arrivals) {
      // One permutation per round: the order in which pushes reach the
      // server this round.
      arrival_gen.shuffle(std::span<std::uint32_t>(round_order));
    }

    for (const std::uint32_t w : round_order) {
      InFlight work = *std::move(in_flight[w]);
      in_flight[w].reset();

      // Compute the gradient against the (stale) fetched snapshot.
      load_flat(params, work.snapshot);
      Tensor images = gather_images(train.images, work.shard.indices);
      if (job.recipe.augment) {
        images = data::augment_batch(images, job.recipe.augment_config,
                                     augment_gen);
      }
      const std::vector<std::int32_t> labels =
          gather_labels(train.labels, work.shard.indices);
      model.zero_grads();
      const Tensor logits = model.forward(images, ctx);
      const nn::LossResult loss = nn::softmax_cross_entropy(logits, labels, ctx);
      last_loss = loss.loss;
      (void)model.backward(loss.grad_logits, ctx);

      // Apply to the *current* server weights (the async step), then the
      // worker immediately fetches and takes the next shard.
      load_flat(params, server);
      optimizer.step(work.shard.learning_rate);
      server = save_flat(params);

      if (auto shard = stream.next()) {
        in_flight[w] = InFlight{server, *std::move(shard)};
      }
    }
  }

  load_flat(params, server);
  RunResult result;
  result.final_train_loss = last_loss;
  result.test_predictions =
      core::evaluate(model, test, hw_ctx, job.recipe.batch_size);
  result.test_accuracy =
      metrics::accuracy(result.test_predictions, test.labels);
  result.final_weights = model.flat_weights();
  return result;
}

}  // namespace nnr::distributed
