#include "distributed/allreduce.h"

#include <cassert>
#include <cstdint>

namespace nnr::distributed {

void allreduce_sum(std::span<const std::span<const float>> worker_buffers,
                   std::span<float> out, AllReduceAlgo algo,
                   rng::Generator* entropy) {
  assert(!worker_buffers.empty());
  const std::size_t workers = worker_buffers.size();
  const std::size_t n = out.size();
  for (const auto& buffer : worker_buffers) {
    assert(buffer.size() == n);
    (void)buffer;
  }

  switch (algo) {
    case AllReduceAlgo::kRingOrdered: {
      // Accumulate in worker-rank order.
      for (std::size_t i = 0; i < n; ++i) out[i] = worker_buffers[0][i];
      for (std::size_t w = 1; w < workers; ++w) {
        const auto& buffer = worker_buffers[w];
        for (std::size_t i = 0; i < n; ++i) out[i] += buffer[i];
      }
      return;
    }
    case AllReduceAlgo::kTreeFixed: {
      // Fixed balanced binary tree over workers, elementwise.
      std::vector<std::vector<float>> partials(workers);
      for (std::size_t w = 0; w < workers; ++w) {
        partials[w].assign(worker_buffers[w].begin(), worker_buffers[w].end());
      }
      std::size_t active = workers;
      while (active > 1) {
        const std::size_t half = (active + 1) / 2;
        for (std::size_t w = 0; w + half < active; ++w) {
          float* dst = partials[w].data();
          const float* src = partials[w + half].data();
          for (std::size_t i = 0; i < n; ++i) dst[i] += src[i];
        }
        active = half;
      }
      for (std::size_t i = 0; i < n; ++i) out[i] = partials[0][i];
      return;
    }
    case AllReduceAlgo::kRingShuffled: {
      assert(entropy != nullptr &&
             "shuffled all-reduce requires a scheduler entropy stream");
      // One arrival order per collective launch.
      std::vector<std::uint32_t> order(workers);
      for (std::size_t w = 0; w < workers; ++w) {
        order[w] = static_cast<std::uint32_t>(w);
      }
      entropy->shuffle(std::span<std::uint32_t>(order));
      for (std::size_t i = 0; i < n; ++i) out[i] = 0.0F;
      for (const std::uint32_t w : order) {
        const auto& buffer = worker_buffers[w];
        for (std::size_t i = 0; i < n; ++i) out[i] += buffer[i];
      }
      return;
    }
  }
}

}  // namespace nnr::distributed
