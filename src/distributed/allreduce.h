// Simulated gradient all-reduce for data-parallel training.
//
// The paper's stated limitation (§6) is that it studies a single device;
// distributed training adds a new reduction — the cross-worker gradient sum —
// whose ordering is another tooling noise source. This module reproduces the
// three orderings that occur in practice:
//
//   kTreeFixed     - fixed binary reduction tree (deterministic collectives,
//                    e.g. NCCL with fixed ring order and no atomics),
//   kRingOrdered   - worker-rank order (deterministic given rank layout, but
//                    sensitive to rank placement — the distributed analogue
//                    of input-order sensitivity),
//   kRingShuffled  - per-step arrival order (asynchronous/atomic updates):
//                    the nondeterministic default.
//
// As everywhere in this library, the divergence produced is genuine float32
// rounding under reordering, not injected noise.
#pragma once

#include <span>
#include <vector>

#include "rng/generator.h"

namespace nnr::distributed {

enum class AllReduceAlgo {
  kTreeFixed,
  kRingOrdered,
  kRingShuffled,
};

/// Sums `worker_buffers` elementwise into `out` under the given ordering.
/// All buffers must have out.size() elements. For kRingShuffled, `entropy`
/// supplies this step's arrival order (one permutation per call — a
/// "collective launch") and must be non-null.
void allreduce_sum(std::span<const std::span<const float>> worker_buffers,
                   std::span<float> out, AllReduceAlgo algo,
                   rng::Generator* entropy);

}  // namespace nnr::distributed
