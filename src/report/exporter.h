// Machine-readable export of bench tables.
//
// Every bench prints aligned text for humans; downstream plotting (the
// paper's figures are bar charts over exactly these tables) wants CSV or
// JSON. The Exporter writes each emitted table to an output directory in
// three formats — .txt (the aligned rendering), .csv, and .json — keyed by
// an experiment id and a table slug, plus an index.json describing every
// artifact written in the session. Export is opt-in: when the directory is
// empty (NNR_OUT_DIR unset) every call is a no-op, so benches can emit
// unconditionally.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "core/table.h"

namespace nnr::report {

/// Markdown pipe-table rendering of a TextTable (for EXPERIMENTS.md).
[[nodiscard]] std::string render_markdown(const core::TextTable& table);

/// JSON rendering: {"headers": [...], "rows": [{header: cell, ...}, ...]}.
/// Cells stay strings — benches pre-format numbers, and round-tripping the
/// formatted value is what plotting scripts want.
[[nodiscard]] std::string render_json(const core::TextTable& table);

/// Escapes a string for embedding in a JSON document (quotes, backslashes,
/// control characters).
[[nodiscard]] std::string json_escape(const std::string& s);

class Exporter {
 public:
  /// Exporter writing under `out_dir`; an empty dir disables all writes.
  explicit Exporter(std::string out_dir);

  /// Exporter configured from the NNR_OUT_DIR environment variable.
  [[nodiscard]] static Exporter from_env();

  [[nodiscard]] bool enabled() const noexcept { return !out_dir_.empty(); }

  /// Writes `<experiment>_<slug>.{txt,csv,json}` under the output directory
  /// (created on demand) and records the artifact in index.json. Both name
  /// parts are passed through sanitize_slug, so callers can hand over raw
  /// display names ("RTX5000 TC"). `title` is embedded in the .txt rendering
  /// and the index. Returns false (silently) when disabled; throws
  /// std::runtime_error on I/O failure.
  bool write(const core::TextTable& table, const std::string& experiment,
             const std::string& slug, const std::string& title = "");

  /// Filename-safe slug: ASCII-lowercased, with every character outside
  /// [a-z0-9._-] (spaces included) mapped to '_'. Applied uniformly to all
  /// emitted artifact filenames.
  [[nodiscard]] static std::string sanitize_slug(std::string_view s);

  /// Artifacts written so far (one entry per write call).
  struct Artifact {
    std::string experiment;
    std::string slug;
    std::string title;
  };
  [[nodiscard]] const std::vector<Artifact>& artifacts() const noexcept {
    return artifacts_;
  }

  /// Rewrites index.json from the artifact list. Called by write(); public
  /// so tests can verify the format.
  void flush_index();

 private:
  std::string out_dir_;
  std::vector<Artifact> artifacts_;
};

}  // namespace nnr::report
