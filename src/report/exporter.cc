#include "report/exporter.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <stdexcept>

namespace nnr::report {
namespace {

void write_file(const std::filesystem::path& path, const std::string& body) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw std::runtime_error("report::Exporter: cannot open " + path.string());
  }
  out << body;
  if (!out) {
    throw std::runtime_error("report::Exporter: write failed for " +
                             path.string());
  }
}

}  // namespace

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string render_markdown(const core::TextTable& table) {
  std::string out;
  auto emit = [&out](const std::vector<std::string>& cells) {
    out += "|";
    for (const std::string& c : cells) {
      out += " " + c + " |";
    }
    out += "\n";
  };
  emit(table.headers());
  out += "|";
  for (std::size_t c = 0; c < table.headers().size(); ++c) out += "---|";
  out += "\n";
  for (const auto& row : table.rows()) emit(row);
  return out;
}

std::string render_json(const core::TextTable& table) {
  std::string out = "{\n  \"headers\": [";
  const auto& headers = table.headers();
  for (std::size_t c = 0; c < headers.size(); ++c) {
    if (c > 0) out += ", ";
    out += "\"" + json_escape(headers[c]) + "\"";
  }
  out += "],\n  \"rows\": [\n";
  const auto& rows = table.rows();
  for (std::size_t r = 0; r < rows.size(); ++r) {
    out += "    {";
    for (std::size_t c = 0; c < rows[r].size(); ++c) {
      if (c > 0) out += ", ";
      out += "\"" + json_escape(headers[c]) + "\": \"" +
             json_escape(rows[r][c]) + "\"";
    }
    out += r + 1 < rows.size() ? "},\n" : "}\n";
  }
  out += "  ]\n}\n";
  return out;
}

Exporter::Exporter(std::string out_dir) : out_dir_(std::move(out_dir)) {}

Exporter Exporter::from_env() {
  const char* dir = std::getenv("NNR_OUT_DIR");
  return Exporter(dir != nullptr ? dir : "");
}

std::string Exporter::sanitize_slug(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    const char lower =
        static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    const bool safe = (lower >= 'a' && lower <= 'z') ||
                      (lower >= '0' && lower <= '9') || lower == '.' ||
                      lower == '_' || lower == '-';
    out += safe ? lower : '_';
  }
  return out;
}

bool Exporter::write(const core::TextTable& table,
                     const std::string& experiment, const std::string& slug,
                     const std::string& title) {
  if (!enabled()) return false;
  const std::filesystem::path dir(out_dir_);
  std::filesystem::create_directories(dir);
  const std::string clean_experiment = sanitize_slug(experiment);
  const std::string clean_slug = sanitize_slug(slug);
  const std::string stem = clean_experiment + "_" + clean_slug;
  write_file(dir / (stem + ".txt"), table.render(title));
  write_file(dir / (stem + ".csv"), table.render_csv());
  write_file(dir / (stem + ".json"), render_json(table));
  artifacts_.push_back({clean_experiment, clean_slug, title});
  flush_index();
  return true;
}

void Exporter::flush_index() {
  if (!enabled()) return;
  const std::filesystem::path index_path =
      std::filesystem::path(out_dir_) / "index.json";

  // Merge with entries already on disk (written by other processes — each
  // bench binary is its own Exporter) so a sweep accumulates one manifest.
  // Lines are self-contained objects, so line-level parsing suffices for
  // the format this function itself writes.
  std::vector<std::string> lines;
  {
    std::ifstream in(index_path);
    std::string line;
    while (std::getline(in, line)) {
      if (line.find("\"experiment\"") == std::string::npos) continue;
      bool superseded = false;
      for (const Artifact& a : artifacts_) {
        const std::string key = "\"experiment\": \"" +
                                json_escape(a.experiment) +
                                "\", \"slug\": \"" + json_escape(a.slug) +
                                "\"";
        if (line.find(key) != std::string::npos) {
          superseded = true;
          break;
        }
      }
      if (!superseded) lines.push_back(line);
    }
  }
  for (const Artifact& a : artifacts_) {
    lines.push_back("  {\"experiment\": \"" + json_escape(a.experiment) +
                    "\", \"slug\": \"" + json_escape(a.slug) +
                    "\", \"title\": \"" + json_escape(a.title) + "\"}");
  }

  std::string body = "[\n";
  for (std::size_t i = 0; i < lines.size(); ++i) {
    std::string line = lines[i];
    // Normalize trailing commas: every line but the last gets one.
    while (!line.empty() && (line.back() == ',' || line.back() == ' ')) {
      line.pop_back();
    }
    body += line + (i + 1 < lines.size() ? ",\n" : "\n");
  }
  body += "]\n";
  write_file(index_path, body);
}

}  // namespace nnr::report
