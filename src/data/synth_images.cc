#include "data/synth_images.h"

#include <cassert>
#include <cmath>
#include <numbers>
#include <vector>

#include "rng/generator.h"
#include "tensor/shape.h"

namespace nnr::data {
namespace {

using rng::Generator;
using tensor::Shape;
using tensor::Tensor;

struct Grating {
  float fx, fy, phase, amp[3];
};

/// A class prototype: 3-channel superposition of a few random gratings.
std::vector<Grating> make_prototype(Generator& gen, int n_gratings) {
  std::vector<Grating> gratings(static_cast<std::size_t>(n_gratings));
  for (Grating& g : gratings) {
    g.fx = static_cast<float>(gen.uniform_int(4)) + 1.0F;   // 1..4 cycles
    g.fy = static_cast<float>(gen.uniform_int(4)) + 1.0F;
    g.phase = gen.uniform(0.0F, 2.0F * std::numbers::pi_v<float>);
    for (float& a : g.amp) a = gen.uniform(-1.0F, 1.0F);
  }
  return gratings;
}

float eval_prototype(const std::vector<Grating>& proto, int channel, float x,
                     float y) {
  float v = 0.0F;
  for (const Grating& g : proto) {
    v += g.amp[channel] *
         std::sin(2.0F * std::numbers::pi_v<float> * (g.fx * x + g.fy * y) +
                  g.phase);
  }
  return v;
}

void render_sample(const std::vector<Grating>& proto, Generator& gen,
                   float sigma, std::int64_t hw, float* out) {
  // Per-sample nuisance parameters: translation, contrast, brightness, and
  // a horizontal flip. Including the flip in generation makes each class
  // flip-closed, so random-flip augmentation is label-preserving (as it is
  // for natural images).
  const float dx = gen.uniform(0.0F, 0.25F);
  const float dy = gen.uniform(0.0F, 0.25F);
  const float contrast = gen.uniform(0.8F, 1.2F);
  const float brightness = gen.uniform(-0.1F, 0.1F);
  const bool mirrored = gen.bernoulli(0.5F);
  for (int c = 0; c < 3; ++c) {
    for (std::int64_t iy = 0; iy < hw; ++iy) {
      for (std::int64_t ix = 0; ix < hw; ++ix) {
        const std::int64_t sx = mirrored ? (hw - 1 - ix) : ix;
        const float x = static_cast<float>(sx) / static_cast<float>(hw) + dx;
        const float y = static_cast<float>(iy) / static_cast<float>(hw) + dy;
        const float signal = contrast * eval_prototype(proto, c, x, y);
        out[(c * hw + iy) * hw + ix] =
            signal + brightness + sigma * gen.normal();
      }
    }
  }
}

LabeledImages make_split(const SynthImageConfig& cfg,
                         const std::vector<std::vector<Grating>>& prototypes,
                         const std::vector<float>& sigmas,
                         std::int64_t per_class, std::uint64_t split_stream) {
  const std::int64_t n = cfg.num_classes * per_class;
  LabeledImages split;
  split.num_classes = cfg.num_classes;
  split.images =
      Tensor(Shape{n, 3, cfg.image_size, cfg.image_size});
  split.labels.resize(static_cast<std::size_t>(n));

  const std::int64_t chw = 3 * cfg.image_size * cfg.image_size;
  float* base = split.images.raw();
  std::int64_t idx = 0;
  for (std::int64_t cls = 0; cls < cfg.num_classes; ++cls) {
    Generator gen(cfg.dataset_seed + 17 * static_cast<std::uint64_t>(cls) + 3,
                  split_stream);
    for (std::int64_t s = 0; s < per_class; ++s, ++idx) {
      render_sample(prototypes[static_cast<std::size_t>(cls)], gen,
                    sigmas[static_cast<std::size_t>(cls)], cfg.image_size,
                    base + idx * chw);
      split.labels[static_cast<std::size_t>(idx)] =
          static_cast<std::int32_t>(cls);
    }
  }
  return split;
}

/// Standardizes both splits with the train split's global mean/std — the
/// usual image-pipeline normalization, and essential for training the no-BN
/// SmallCNN (paper Appendix C) whose activations are otherwise unscaled.
void standardize(LabeledImages& train, LabeledImages& test) {
  double mean = 0.0;
  for (float v : train.images.data()) mean += v;
  mean /= static_cast<double>(train.images.numel());
  double var = 0.0;
  for (float v : train.images.data()) {
    const double d = v - mean;
    var += d * d;
  }
  var /= static_cast<double>(train.images.numel());
  const float inv_std =
      1.0F / std::max(1e-6F, std::sqrt(static_cast<float>(var)));
  const float fmean = static_cast<float>(mean);
  for (float& v : train.images.data()) v = (v - fmean) * inv_std;
  for (float& v : test.images.data()) v = (v - fmean) * inv_std;
}

}  // namespace

ClassificationDataset make_synth_classification(const SynthImageConfig& cfg,
                                                std::string name) {
  assert(cfg.num_classes > 0 && cfg.train_per_class > 0 &&
         cfg.test_per_class > 0);
  // Class prototypes and difficulties are split-independent.
  std::vector<std::vector<Grating>> prototypes;
  std::vector<float> sigmas;
  prototypes.reserve(static_cast<std::size_t>(cfg.num_classes));
  sigmas.reserve(static_cast<std::size_t>(cfg.num_classes));
  for (std::int64_t cls = 0; cls < cfg.num_classes; ++cls) {
    Generator gen(cfg.dataset_seed ^ (0x9E37u + static_cast<std::uint64_t>(cls)),
                  /*stream=*/0xC0DE);
    prototypes.push_back(make_prototype(gen, /*n_gratings=*/4));
    sigmas.push_back(cfg.sigma_min +
                     (cfg.sigma_max - cfg.sigma_min) * gen.uniform());
  }

  ClassificationDataset ds;
  ds.name = std::move(name);
  ds.train = make_split(cfg, prototypes, sigmas, cfg.train_per_class,
                        /*split_stream=*/1);
  ds.test = make_split(cfg, prototypes, sigmas, cfg.test_per_class,
                       /*split_stream=*/2);
  standardize(ds.train, ds.test);
  return ds;
}

ClassificationDataset synth_cifar10(std::int64_t train_n, std::int64_t test_n) {
  SynthImageConfig cfg;
  cfg.num_classes = 10;
  cfg.train_per_class = std::max<std::int64_t>(1, train_n / cfg.num_classes);
  cfg.test_per_class = std::max<std::int64_t>(1, test_n / cfg.num_classes);
  cfg.dataset_seed = 0xC1FA5010ull;
  return make_synth_classification(cfg, "CIFAR-10*");
}

ClassificationDataset synth_cifar100(std::int64_t train_n,
                                     std::int64_t test_n) {
  SynthImageConfig cfg;
  cfg.num_classes = 100;
  cfg.train_per_class = std::max<std::int64_t>(1, train_n / cfg.num_classes);
  cfg.test_per_class = std::max<std::int64_t>(1, test_n / cfg.num_classes);
  cfg.dataset_seed = 0xC1FA5100ull;
  return make_synth_classification(cfg, "CIFAR-100*");
}

ClassificationDataset synth_imagenet(std::int64_t train_n,
                                     std::int64_t test_n) {
  SynthImageConfig cfg;
  cfg.num_classes = 20;
  cfg.train_per_class = std::max<std::int64_t>(1, train_n / cfg.num_classes);
  cfg.test_per_class = std::max<std::int64_t>(1, test_n / cfg.num_classes);
  cfg.dataset_seed = 0x13A6E7ull;
  return make_synth_classification(cfg, "ImageNet*");
}

}  // namespace nnr::data
