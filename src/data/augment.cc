#include "data/augment.h"

#include <cassert>

namespace nnr::data {

using rng::Generator;
using tensor::Tensor;

Tensor augment_batch(const Tensor& batch, const AugmentConfig& cfg,
                     Generator& gen) {
  assert(batch.shape().rank() == 4);
  const std::int64_t n = batch.shape()[0];
  const std::int64_t c = batch.shape()[1];
  const std::int64_t h = batch.shape()[2];
  const std::int64_t w = batch.shape()[3];

  Tensor out(batch.shape());
  const float* src = batch.raw();
  float* dst = out.raw();

  for (std::int64_t i = 0; i < n; ++i) {
    // Per-example transform parameters (consumed in a fixed order so the
    // augment stream is replayable).
    std::int64_t dy = 0;
    std::int64_t dx = 0;
    if (cfg.random_crop && cfg.crop_pad > 0) {
      dy = static_cast<std::int64_t>(gen.uniform_int(
               static_cast<std::uint64_t>(2 * cfg.crop_pad + 1))) -
           cfg.crop_pad;
      dx = static_cast<std::int64_t>(gen.uniform_int(
               static_cast<std::uint64_t>(2 * cfg.crop_pad + 1))) -
           cfg.crop_pad;
    }
    const bool flip = cfg.horizontal_flip && gen.bernoulli(0.5F);

    for (std::int64_t ci = 0; ci < c; ++ci) {
      const float* plane = src + (i * c + ci) * h * w;
      float* out_plane = dst + (i * c + ci) * h * w;
      for (std::int64_t y = 0; y < h; ++y) {
        for (std::int64_t x = 0; x < w; ++x) {
          const std::int64_t sy = y + dy;
          std::int64_t sx = x + dx;
          if (flip) sx = w - 1 - sx;
          const bool inside = sy >= 0 && sy < h && sx >= 0 && sx < w;
          out_plane[y * w + x] = inside ? plane[sy * w + sx] : 0.0F;
        }
      }
    }
  }
  return out;
}

}  // namespace nnr::data
