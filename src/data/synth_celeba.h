// SynthCelebA: the CelebA stand-in for the fairness study (Fig. 3, Tables 3
// and 5).
//
// What the paper's analysis needs from CelebA is not faces per se but a
// binary prediction task whose positive examples are *heavily imbalanced
// across protected sub-groups* (Table 3: positives are 0.8% of the dataset
// for Male but 14.1% for Female; 2.5% for Old vs 12.4% for Young). The
// generator reproduces those joint rates exactly (in expectation) and renders
// each example as a structured pattern:
//
//   image = base + male_dir * gender + young_dir * age + target_dir * label
//           + pixel noise
//
// with the target direction's amplitude small relative to noise, so the
// decision boundary is genuinely uncertain — which is where training noise
// shows up as disaggregated variance.
#pragma once

#include <cstdint>

#include "data/dataset.h"

namespace nnr::data {

struct SynthCelebAConfig {
  std::int64_t train_n = 2048;
  std::int64_t test_n = 1024;
  std::int64_t image_size = 16;
  std::uint64_t dataset_seed = 0xCE1EBAull;

  // Attribute marginals from paper Table 3.
  float p_male = 0.419F;
  float p_young = 0.779F;
  float p_pos_given_male = 0.0203F;
  float p_pos_given_female = 0.2421F;
  float p_pos_given_young = 0.1596F;
  float p_pos_given_old = 0.1122F;
  float p_pos = 0.1491F;

  float target_amplitude = 0.55F;  // signal strength of the label direction
  float noise_sigma = 0.9F;
};

/// Deterministic in `config`; both splits share attribute statistics.
[[nodiscard]] AttributeDataset make_synth_celeba(const SynthCelebAConfig& config);

/// Expected positive rate for a (male, young) cell under the config's
/// independence-scaled model: p(pos|m) * p(pos|y) / p(pos). Exposed for the
/// Table 3 bench and distribution tests.
[[nodiscard]] float expected_positive_rate(const SynthCelebAConfig& config,
                                           bool male, bool young);

}  // namespace nnr::data
