#include "data/registry.h"

namespace nnr::data {

std::vector<DatasetInfo> dataset_registry() {
  return {
      {.name = "Cifar-10*",
       .paper_train = 50000,
       .paper_test = 10000,
       .synth_train = 512,
       .synth_test = 256,
       .classes = "10"},
      {.name = "Cifar-100*",
       .paper_train = 50000,
       .paper_test = 10000,
       .synth_train = 600,
       .synth_test = 300,
       .classes = "100"},
      {.name = "ImageNet*",
       .paper_train = 1281167,
       .paper_test = 50000,
       .synth_train = 640,
       .synth_test = 320,
       .classes = "20 (stand-in for 1000)"},
      {.name = "CelebA*",
       .paper_train = 162770,
       .paper_test = 19962,
       .synth_train = 2048,
       .synth_test = 1024,
       .classes = "binary target + 2 protected attrs (stand-in for 40)"},
  };
}

SubgroupCounts count_subgroups(const AttributeImages& split) {
  SubgroupCounts counts;
  counts.total = split.size();
  for (std::int64_t i = 0; i < split.size(); ++i) {
    const auto idx = static_cast<std::size_t>(i);
    const bool pos = split.target[idx] != 0;
    if (split.male[idx] != 0) {
      (pos ? counts.male_pos : counts.male_neg)++;
    } else {
      (pos ? counts.female_pos : counts.female_neg)++;
    }
    if (split.young[idx] != 0) {
      (pos ? counts.young_pos : counts.young_neg)++;
    } else {
      (pos ? counts.old_pos : counts.old_neg)++;
    }
  }
  return counts;
}

}  // namespace nnr::data
