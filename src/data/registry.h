// Dataset overview metadata (paper Table 4) and sub-group distribution
// statistics (paper Table 3).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.h"

namespace nnr::data {

/// Table 4 row: one benchmarked dataset.
struct DatasetInfo {
  std::string name;         // paper name (our stand-in marked with *)
  std::int64_t paper_train = 0;
  std::int64_t paper_test = 0;
  std::int64_t synth_train = 0;  // stand-in default sizes
  std::int64_t synth_test = 0;
  std::string classes;      // e.g. "10" or "40 (Multi-label)"
};

/// The four datasets of paper Table 4 with both paper and stand-in sizes.
[[nodiscard]] std::vector<DatasetInfo> dataset_registry();

/// Table 3 cell counts for an attribute split of a generated dataset.
struct SubgroupCounts {
  std::int64_t male_pos = 0, male_neg = 0;
  std::int64_t female_pos = 0, female_neg = 0;
  std::int64_t young_pos = 0, young_neg = 0;
  std::int64_t old_pos = 0, old_neg = 0;
  std::int64_t total = 0;
};

[[nodiscard]] SubgroupCounts count_subgroups(const AttributeImages& split);

}  // namespace nnr::data
