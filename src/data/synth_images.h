// Procedural class-conditional image generator — the CIFAR-10/100 and
// ImageNet stand-ins (DESIGN.md, substitution table).
//
// Each class is a randomized superposition of sinusoidal gratings (a smooth
// "texture prototype"); samples are translated, contrast-jittered, noisy
// renderings of their class prototype. Two properties matter for fidelity to
// the paper's findings and are controlled here:
//
//   1. heterogeneous class difficulty — per-class noise level sigma_c is
//      drawn from a wide range, so some classes sit near the decision
//      boundary. Those classes carry most of the run-to-run variance,
//      reproducing the per-class amplification of Fig. 4;
//   2. fixed data, stochastic training — generation depends only on the
//      dataset seed, never on the replicate.
#pragma once

#include <cstdint>

#include "data/dataset.h"

namespace nnr::data {

struct SynthImageConfig {
  std::int64_t num_classes = 10;
  std::int64_t train_per_class = 48;
  std::int64_t test_per_class = 24;
  std::int64_t image_size = 16;
  std::uint64_t dataset_seed = 0xC1FA5EEDull;
  float sigma_min = 1.00F;  // easiest-class pixel noise
  float sigma_max = 2.00F;  // hardest-class pixel noise
};

/// Generates a full train/test split. Deterministic in `config`.
[[nodiscard]] ClassificationDataset make_synth_classification(
    const SynthImageConfig& config, std::string name);

/// The three classification stand-ins used across the benches. Sizes honor
/// NNR_TRAIN_N-style scaling at the call sites (core/experiment config).
[[nodiscard]] ClassificationDataset synth_cifar10(std::int64_t train_n,
                                                  std::int64_t test_n);
[[nodiscard]] ClassificationDataset synth_cifar100(std::int64_t train_n,
                                                   std::int64_t test_n);
[[nodiscard]] ClassificationDataset synth_imagenet(std::int64_t train_n,
                                                   std::int64_t test_n);

}  // namespace nnr::data
