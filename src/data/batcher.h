// Epoch shuffling and mini-batch assembly.
//
// Shuffling is *both* an algorithmic and an implementation noise source
// (paper §2, "Input Data Shuffling and Ordering"): it changes which examples
// share a batch (ALGO) and the float32 accumulation order of cross-example
// reductions (IMPL) — the latter is why even full-batch training diverges
// under reordering (Fig. 6). The batcher therefore exposes the raw epoch
// order so experiments can control the two effects independently.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "rng/generator.h"
#include "tensor/tensor.h"

namespace nnr::data {

/// Yields per-epoch index orders. With a pinned shuffle generator the order
/// sequence is identical across runs.
class EpochShuffler {
 public:
  EpochShuffler(std::int64_t dataset_size, rng::Generator shuffle_gen)
      : size_(dataset_size), gen_(std::move(shuffle_gen)) {}

  /// A fresh shuffled order for the next epoch.
  [[nodiscard]] std::vector<std::uint32_t> next_epoch_order();

  /// The identity order (for no-shuffle ablations).
  [[nodiscard]] std::vector<std::uint32_t> identity_order() const;

 private:
  std::int64_t size_;
  rng::Generator gen_;
};

/// Gathers `indices` rows of (images, labels) into a contiguous batch.
[[nodiscard]] tensor::Tensor gather_images(const tensor::Tensor& images,
                                           std::span<const std::uint32_t> indices);

[[nodiscard]] std::vector<std::int32_t> gather_labels(
    std::span<const std::int32_t> labels,
    std::span<const std::uint32_t> indices);

}  // namespace nnr::data
