// Dataset containers.
//
// Datasets are generated once per experiment from a *fixed* dataset seed and
// shared (read-only) by every replicate: the paper varies training
// stochasticity, never the data itself.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace nnr::data {

/// Single-label image classification split.
struct LabeledImages {
  tensor::Tensor images;             // [N, 3, H, W]
  std::vector<std::int32_t> labels;  // N class ids in [0, num_classes)
  std::int64_t num_classes = 0;

  [[nodiscard]] std::int64_t size() const noexcept {
    return images.empty() ? 0 : images.shape()[0];
  }
};

struct ClassificationDataset {
  std::string name;
  LabeledImages train;
  LabeledImages test;
};

/// Binary-attribute dataset with protected sub-group annotations
/// (the CelebA stand-in). `target` is the label being predicted;
/// `male`/`young` are the protected attributes used for disaggregation.
struct AttributeImages {
  tensor::Tensor images;          // [N, 3, H, W]
  std::vector<std::uint8_t> target;  // 0/1 per example
  std::vector<std::uint8_t> male;    // 1 = Male, 0 = Female
  std::vector<std::uint8_t> young;   // 1 = Young, 0 = Old

  [[nodiscard]] std::int64_t size() const noexcept {
    return images.empty() ? 0 : images.shape()[0];
  }
};

struct AttributeDataset {
  std::string name;
  AttributeImages train;
  AttributeImages test;
};

}  // namespace nnr::data
