#include "data/synth_celeba.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numbers>
#include <vector>

#include "rng/generator.h"
#include "tensor/shape.h"

namespace nnr::data {
namespace {

using rng::Generator;
using tensor::Shape;
using tensor::Tensor;

/// A smooth random direction in pixel space (unit RMS), shared by all
/// examples of the dataset: the "feature" carrying an attribute.
std::vector<float> make_direction(Generator& gen, std::int64_t chw,
                                  std::int64_t hw_size) {
  std::vector<float> dir(static_cast<std::size_t>(chw));
  // Low-frequency gratings -> spatially coherent feature.
  const int n_gratings = 3;
  struct G {
    float fx, fy, phase, amp;
  };
  for (int c = 0; c < 3; ++c) {
    std::vector<G> gs(n_gratings);
    for (G& g : gs) {
      g.fx = static_cast<float>(gen.uniform_int(3)) + 1.0F;
      g.fy = static_cast<float>(gen.uniform_int(3)) + 1.0F;
      g.phase = gen.uniform(0.0F, 2.0F * std::numbers::pi_v<float>);
      g.amp = gen.uniform(-1.0F, 1.0F);
    }
    for (std::int64_t iy = 0; iy < hw_size; ++iy) {
      for (std::int64_t ix = 0; ix < hw_size; ++ix) {
        float v = 0.0F;
        for (const G& g : gs) {
          const float x = static_cast<float>(ix) / static_cast<float>(hw_size);
          const float y = static_cast<float>(iy) / static_cast<float>(hw_size);
          v += g.amp * std::sin(2.0F * std::numbers::pi_v<float> *
                                    (g.fx * x + g.fy * y) +
                                g.phase);
        }
        dir[static_cast<std::size_t>((c * hw_size + iy) * hw_size + ix)] = v;
      }
    }
  }
  // Normalize to unit RMS.
  double ss = 0.0;
  for (float v : dir) ss += static_cast<double>(v) * v;
  const float inv_rms =
      1.0F / std::max(1e-6F, std::sqrt(static_cast<float>(
                                 ss / static_cast<double>(dir.size()))));
  for (float& v : dir) v *= inv_rms;
  return dir;
}

AttributeImages make_split(const SynthCelebAConfig& cfg, std::int64_t n,
                           const std::vector<float>& male_dir,
                           const std::vector<float>& young_dir,
                           const std::vector<float>& target_dir,
                           std::uint64_t split_stream) {
  const std::int64_t hw = cfg.image_size;
  const std::int64_t chw = 3 * hw * hw;
  AttributeImages split;
  split.images = Tensor(Shape{n, 3, hw, hw});
  split.target.resize(static_cast<std::size_t>(n));
  split.male.resize(static_cast<std::size_t>(n));
  split.young.resize(static_cast<std::size_t>(n));

  Generator gen(cfg.dataset_seed, split_stream);
  float* base = split.images.raw();
  for (std::int64_t i = 0; i < n; ++i) {
    const bool male = gen.bernoulli(cfg.p_male);
    const bool young = gen.bernoulli(cfg.p_young);
    const bool positive =
        gen.bernoulli(expected_positive_rate(cfg, male, young));
    split.male[static_cast<std::size_t>(i)] = male ? 1 : 0;
    split.young[static_cast<std::size_t>(i)] = young ? 1 : 0;
    split.target[static_cast<std::size_t>(i)] = positive ? 1 : 0;

    const float g_sign = male ? 1.0F : -1.0F;
    const float a_sign = young ? 1.0F : -1.0F;
    const float t_sign = positive ? 1.0F : -1.0F;
    float* img = base + i * chw;
    for (std::int64_t p = 0; p < chw; ++p) {
      img[p] = g_sign * male_dir[static_cast<std::size_t>(p)] +
               a_sign * young_dir[static_cast<std::size_t>(p)] +
               t_sign * cfg.target_amplitude *
                   target_dir[static_cast<std::size_t>(p)] +
               cfg.noise_sigma * gen.normal();
    }
  }
  return split;
}

}  // namespace

float expected_positive_rate(const SynthCelebAConfig& cfg, bool male,
                             bool young) {
  const float pm = male ? cfg.p_pos_given_male : cfg.p_pos_given_female;
  const float py = young ? cfg.p_pos_given_young : cfg.p_pos_given_old;
  return std::clamp(pm * py / cfg.p_pos, 0.0F, 1.0F);
}

AttributeDataset make_synth_celeba(const SynthCelebAConfig& cfg) {
  assert(cfg.train_n > 0 && cfg.test_n > 0);
  const std::int64_t chw = 3 * cfg.image_size * cfg.image_size;

  Generator dir_gen(cfg.dataset_seed ^ 0xD1Aull, /*stream=*/7);
  const auto male_dir = make_direction(dir_gen, chw, cfg.image_size);
  const auto young_dir = make_direction(dir_gen, chw, cfg.image_size);
  const auto target_dir = make_direction(dir_gen, chw, cfg.image_size);

  AttributeDataset ds;
  ds.name = "CelebA*";
  ds.train = make_split(cfg, cfg.train_n, male_dir, young_dir, target_dir,
                        /*split_stream=*/1);
  ds.test = make_split(cfg, cfg.test_n, male_dir, young_dir, target_dir,
                       /*split_stream=*/2);
  return ds;
}

}  // namespace nnr::data
