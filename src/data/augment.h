// Stochastic data augmentation (paper Appendix B: random crop and horizontal
// flip on every experiment except CelebA). Draws from the kAugment noise
// channel; pinning that channel removes augmentation noise.
#pragma once

#include <cstdint>

#include "rng/generator.h"
#include "tensor/tensor.h"

namespace nnr::data {

struct AugmentConfig {
  bool random_crop = true;
  std::int64_t crop_pad = 2;  // zero-pad margin before cropping back
  bool horizontal_flip = true;
};

/// Returns an augmented copy of `batch` ([N, C, H, W]); per-example
/// transforms are drawn in index order from `gen`, so a pinned generator
/// yields identical augmentation across runs.
[[nodiscard]] tensor::Tensor augment_batch(const tensor::Tensor& batch,
                                           const AugmentConfig& config,
                                           rng::Generator& gen);

}  // namespace nnr::data
