#include "data/batcher.h"

#include <cassert>

#include "tensor/shape.h"

namespace nnr::data {

using tensor::Shape;
using tensor::Tensor;

std::vector<std::uint32_t> EpochShuffler::next_epoch_order() {
  return gen_.permutation(static_cast<std::size_t>(size_));
}

std::vector<std::uint32_t> EpochShuffler::identity_order() const {
  std::vector<std::uint32_t> order(static_cast<std::size_t>(size_));
  for (std::size_t i = 0; i < order.size(); ++i) {
    order[i] = static_cast<std::uint32_t>(i);
  }
  return order;
}

Tensor gather_images(const Tensor& images,
                     std::span<const std::uint32_t> indices) {
  assert(images.shape().rank() == 4);
  const std::int64_t c = images.shape()[1];
  const std::int64_t h = images.shape()[2];
  const std::int64_t w = images.shape()[3];
  const std::int64_t chw = c * h * w;

  Tensor batch(Shape{static_cast<std::int64_t>(indices.size()), c, h, w});
  const float* src = images.raw();
  float* dst = batch.raw();
  for (std::size_t i = 0; i < indices.size(); ++i) {
    const float* row = src + static_cast<std::int64_t>(indices[i]) * chw;
    float* out = dst + static_cast<std::int64_t>(i) * chw;
    for (std::int64_t p = 0; p < chw; ++p) out[p] = row[p];
  }
  return batch;
}

std::vector<std::int32_t> gather_labels(std::span<const std::int32_t> labels,
                                        std::span<const std::uint32_t> indices) {
  std::vector<std::int32_t> out(indices.size());
  for (std::size_t i = 0; i < indices.size(); ++i) {
    out[i] = labels[indices[i]];
  }
  return out;
}

}  // namespace nnr::data
