#include "nn/zoo.h"

#include <cassert>

#include "nn/activations.h"
#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/depthwise_conv.h"
#include "nn/dropout.h"
#include "nn/flatten.h"
#include "nn/groupnorm.h"
#include "nn/pooling.h"
#include "nn/residual.h"

namespace nnr::nn {

Model small_cnn(std::int64_t num_classes, bool with_batchnorm) {
  Model m;
  const std::int64_t widths[4] = {3, 16, 32, 32};
  for (int stage = 0; stage < 3; ++stage) {
    m.emplace<Conv2D>(widths[stage], widths[stage + 1], 3);
    if (with_batchnorm) m.emplace<BatchNorm2D>(widths[stage + 1]);
    m.emplace<ReLU>();
    m.emplace<MaxPool2x2>();
  }
  // 16x16 -> 2x2 after three pools; 2*2*32 = 128 features.
  m.emplace<Flatten>();
  m.emplace<Dense>(128, 32);
  m.emplace<ReLU>();
  m.emplace<Dense>(32, num_classes);
  return m;
}

Model resnet18s(std::int64_t num_classes) {
  Model m;
  m.emplace<Conv2D>(3, 8, 3);
  m.emplace<BatchNorm2D>(8);
  m.emplace<ReLU>();
  // Stage 1: 8 channels @ 16x16.
  m.emplace<BasicBlock>(8, 8, 1);
  m.emplace<BasicBlock>(8, 8, 1);
  // Stage 2: 16 channels @ 8x8.
  m.emplace<BasicBlock>(8, 16, 2);
  m.emplace<BasicBlock>(16, 16, 1);
  // Stage 3: 32 channels @ 4x4.
  m.emplace<BasicBlock>(16, 32, 2);
  m.emplace<BasicBlock>(32, 32, 1);
  m.emplace<GlobalAvgPool>();
  m.emplace<Dense>(32, num_classes);
  return m;
}

Model resnet50s(std::int64_t num_classes) {
  constexpr std::int64_t kExpansion = 2;
  Model m;
  m.emplace<Conv2D>(3, 8, 3);
  m.emplace<BatchNorm2D>(8);
  m.emplace<ReLU>();
  // Stage 1: bottleneck 8 -> 16 @ 16x16.
  m.emplace<BottleneckBlock>(8, 8, kExpansion, 1);
  m.emplace<BottleneckBlock>(16, 8, kExpansion, 1);
  // Stage 2: bottleneck -> 32 @ 8x8.
  m.emplace<BottleneckBlock>(16, 16, kExpansion, 2);
  m.emplace<BottleneckBlock>(32, 16, kExpansion, 1);
  // Stage 3: bottleneck -> 64 @ 4x4.
  m.emplace<BottleneckBlock>(32, 32, kExpansion, 2);
  m.emplace<BottleneckBlock>(64, 32, kExpansion, 1);
  m.emplace<GlobalAvgPool>();
  m.emplace<Dense>(64, num_classes);
  return m;
}

Model medium_cnn(std::int64_t num_classes, std::int64_t kernel) {
  assert(kernel == 1 || kernel == 3 || kernel == 5 || kernel == 7);
  Model m;
  const std::int64_t widths[5] = {3, 8, 16, 32, 64};
  // Four conv-BN-ReLU-pool stages: 16x16 -> 1x1.
  for (int stage = 0; stage < 4; ++stage) {
    m.emplace<Conv2D>(widths[stage], widths[stage + 1], kernel);
    m.emplace<BatchNorm2D>(widths[stage + 1]);
    m.emplace<ReLU>();
    m.emplace<MaxPool2x2>();
  }
  m.emplace<GlobalAvgPool>();
  m.emplace<Dense>(64, num_classes);
  return m;
}

Model vgg_s(std::int64_t num_classes) {
  Model m;
  const std::int64_t widths[4] = {3, 16, 32, 64};
  // VGG pattern: two 3x3 conv-BN-ReLU per stage, then pool. 16x16 -> 2x2.
  for (int stage = 0; stage < 3; ++stage) {
    m.emplace<Conv2D>(widths[stage], widths[stage + 1], 3);
    m.emplace<BatchNorm2D>(widths[stage + 1]);
    m.emplace<ReLU>();
    m.emplace<Conv2D>(widths[stage + 1], widths[stage + 1], 3);
    m.emplace<BatchNorm2D>(widths[stage + 1]);
    m.emplace<ReLU>();
    m.emplace<MaxPool2x2>();
  }
  m.emplace<GlobalAvgPool>();
  m.emplace<Dense>(64, num_classes);
  return m;
}

namespace {

/// Depthwise-separable unit: DW 3x3 -> BN -> ReLU -> PW 1x1 -> BN -> ReLU.
void emplace_separable(Model& m, std::int64_t in, std::int64_t out) {
  m.emplace<DepthwiseConv2D>(in, 3);
  m.emplace<BatchNorm2D>(in);
  m.emplace<ReLU>();
  m.emplace<Conv2D>(in, out, 1);
  m.emplace<BatchNorm2D>(out);
  m.emplace<ReLU>();
}

}  // namespace

Model mobilenet_s(std::int64_t num_classes) {
  Model m;
  // Stem.
  m.emplace<Conv2D>(3, 16, 3);
  m.emplace<BatchNorm2D>(16);
  m.emplace<ReLU>();
  // Three separable stages with 2x pooling between: 16x16 -> 2x2.
  emplace_separable(m, 16, 32);
  m.emplace<MaxPool2x2>();
  emplace_separable(m, 32, 64);
  m.emplace<MaxPool2x2>();
  emplace_separable(m, 64, 64);
  m.emplace<MaxPool2x2>();
  m.emplace<GlobalAvgPool>();
  m.emplace<Dense>(64, num_classes);
  return m;
}

Model small_cnn_dropout(std::int64_t num_classes, float rate) {
  Model m;
  const std::int64_t widths[4] = {3, 16, 32, 32};
  for (int stage = 0; stage < 3; ++stage) {
    m.emplace<Conv2D>(widths[stage], widths[stage + 1], 3);
    m.emplace<ReLU>();
    m.emplace<MaxPool2x2>();
  }
  m.emplace<Flatten>();
  m.emplace<Dense>(128, 32);
  m.emplace<ReLU>();
  m.emplace<Dropout>(rate);
  m.emplace<Dense>(32, num_classes);
  return m;
}

Model small_cnn_norm(std::int64_t num_classes, NormKind norm) {
  Model m;
  const std::int64_t widths[4] = {3, 16, 32, 32};
  for (int stage = 0; stage < 3; ++stage) {
    const std::int64_t out = widths[stage + 1];
    m.emplace<Conv2D>(widths[stage], out, 3);
    switch (norm) {
      case NormKind::kNone:
        break;
      case NormKind::kBatch:
        m.emplace<BatchNorm2D>(out);
        break;
      case NormKind::kGroup:
        m.emplace<GroupNorm>(out, /*groups=*/4);
        break;
    }
    m.emplace<ReLU>();
    m.emplace<MaxPool2x2>();
  }
  m.emplace<Flatten>();
  m.emplace<Dense>(128, 32);
  m.emplace<ReLU>();
  m.emplace<Dense>(32, num_classes);
  return m;
}

namespace {

void emplace_activation(Model& m, ActKind act) {
  switch (act) {
    case ActKind::kReLU:
      m.emplace<ReLU>();
      return;
    case ActKind::kSiLU:
      m.emplace<SiLU>();
      return;
    case ActKind::kGELU:
      m.emplace<GELU>();
      return;
    case ActKind::kTanh:
      m.emplace<Tanh>();
      return;
  }
}

}  // namespace

Model small_cnn_activation(std::int64_t num_classes, ActKind act) {
  Model m;
  const std::int64_t widths[4] = {3, 16, 32, 32};
  for (int stage = 0; stage < 3; ++stage) {
    m.emplace<Conv2D>(widths[stage], widths[stage + 1], 3);
    m.emplace<BatchNorm2D>(widths[stage + 1]);
    emplace_activation(m, act);
    m.emplace<MaxPool2x2>();
  }
  m.emplace<Flatten>();
  m.emplace<Dense>(128, 32);
  emplace_activation(m, act);
  m.emplace<Dense>(32, num_classes);
  return m;
}

}  // namespace nnr::nn
