// Model zoo: the scaled-down counterparts of the paper's benchmark networks.
//
// The paper trains SmallCNN (3 conv layers, no BN — Appendix C), ResNet-18
// and ResNet-50 at full scale on GPUs. This reproduction runs on CPU inside
// a simulated-accelerator substrate, so every architecture keeps its paper
// topology (depth pattern, BN placement, residual wiring, pooling scheme) at
// reduced width and input resolution (16x16). DESIGN.md documents the
// substitution; EXPERIMENTS.md records the resulting metric scales.
#pragma once

#include <cstdint>

#include "nn/model.h"

namespace nnr::nn {

/// Three-conv SmallCNN (paper Appendix C, left column), optionally with
/// BatchNorm after each conv (the Fig. 2 ablation).
/// Input: [N, 3, 16, 16]. Head: Dense-32, Dense-num_classes.
[[nodiscard]] Model small_cnn(std::int64_t num_classes, bool with_batchnorm);

/// Scaled ResNet-18: stem + 3 stages of two BasicBlocks (8/16/32 channels),
/// GAP head. Input: [N, 3, 16, 16].
[[nodiscard]] Model resnet18s(std::int64_t num_classes);

/// Scaled ResNet-50: stem + 3 stages of BottleneckBlocks (expansion 2),
/// GAP head. Input: [N, 3, 16, 16].
[[nodiscard]] Model resnet50s(std::int64_t num_classes);

/// Six-conv MediumCNN with parametric square kernel size (paper Appendix C,
/// right column) — the Fig. 8(b) kernel-size study subject. Scaled to
/// 16x16 inputs with 4 stages. kernel must be 1, 3, 5, or 7.
[[nodiscard]] Model medium_cnn(std::int64_t num_classes, std::int64_t kernel);

/// Scaled VGG: plain (non-residual) deep stack of conv-BN-ReLU pairs, three
/// 2x-pool stages (16/32/64 channels), GAP head. The paper profiles VGG-16/19
/// as its worst-case deterministic-overhead subjects (Fig. 8a); this is the
/// trainable counterpart for stability experiments — the deepest
/// plain-topology model in the zoo.
[[nodiscard]] Model vgg_s(std::int64_t num_classes);

/// Scaled MobileNet: depthwise-separable blocks (DepthwiseConv2D + pointwise
/// 1x1 Conv2D, each with BN+ReLU), three pool stages. The paper's
/// lowest-overhead profiling subject (Fig. 8a, ~101%); depthwise reductions
/// contract over only k*k taps, so this is also the zoo's *least*
/// IMPL-noise-exposed convnet per reduction.
[[nodiscard]] Model mobilenet_s(std::int64_t num_classes);

// --- Ablation variants (not paper cells; used by the ablation benches) ---

/// Normalization choice for the model-design ablation: the paper's Fig. 2
/// contrasts only BN vs none; GroupNorm separates "normalization stabilizes
/// optimization" from "batch statistics transmit order noise".
enum class NormKind { kNone, kBatch, kGroup };

/// Activation choice for the smoothness ablation (Shamir et al. 2020,
/// cited in the paper's related work).
enum class ActKind { kReLU, kSiLU, kGELU, kTanh };

/// SmallCNN with a Dropout layer before the classifier head — gives the
/// kDropout noise channel a consumer for the channel-decomposition ablation.
[[nodiscard]] Model small_cnn_dropout(std::int64_t num_classes, float rate);

/// SmallCNN with a selectable per-stage normalization layer.
[[nodiscard]] Model small_cnn_norm(std::int64_t num_classes, NormKind norm);

/// SmallCNN+BN with a selectable activation.
[[nodiscard]] Model small_cnn_activation(std::int64_t num_classes,
                                         ActKind act);

}  // namespace nnr::nn
