#include "nn/conv2d.h"

#include <cassert>

#include "nn/init.h"
#include "runtime/thread_pool.h"
#include "tensor/ops.h"
#include "tensor/gemm.h"

namespace nnr::nn {

using tensor::ConvGeometry;
using tensor::Shape;
using tensor::Tensor;

namespace {

// Workspace slot map for Conv2D (keyed by the layer pointer).
enum ConvSlot : int {
  kCols = 0,    // [P, K] patch matrix; written by forward, read by backward
  kOutPc,       // [P, C] forward GEMM output
  kDyPc,        // [P, C] grad repack
  kDyCp,        // [C, P] grad repack (transposed)
  kColsKp,      // [K, P] patch transpose for the weight-gradient GEMM
  kDwStage,     // [C, K] weight-gradient staging
  kWKc,         // [K, C] weight transpose for the data-gradient GEMM
  kDCols,       // [P, K] patch-gradient matrix
};

}  // namespace

Conv2D::Conv2D(std::int64_t in_channels, std::int64_t out_channels,
               std::int64_t kernel, std::int64_t stride, std::int64_t pad)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      stride_(stride),
      pad_(pad < 0 ? kernel / 2 : pad),
      weight_("conv.weight",
              Shape{out_channels, in_channels * kernel * kernel}),
      bias_("conv.bias", Shape{out_channels}) {}

void Conv2D::init_weights(rng::Generator& init_gen) {
  he_normal(init_gen, weight_.value, in_channels_ * kernel_ * kernel_);
  bias_.value.fill(0.0F);
}

std::string Conv2D::name() const {
  return "Conv2D(" + std::to_string(in_channels_) + "->" +
         std::to_string(out_channels_) + ", k=" + std::to_string(kernel_) +
         ", s=" + std::to_string(stride_) + ")";
}

Tensor Conv2D::forward(const Tensor& input, RunContext& ctx) {
  assert(input.shape().rank() == 4 && input.shape()[1] == in_channels_);
  tensor::Workspace& ws = ctx.scratch_arena(fallback_ws_);
  active_ws_ = &ws;
  geom_ = ConvGeometry{.batch = input.shape()[0],
                       .in_channels = in_channels_,
                       .in_h = input.shape()[2],
                       .in_w = input.shape()[3],
                       .kernel = kernel_,
                       .stride = stride_,
                       .pad = pad_};
  const std::int64_t pixels = geom_.out_pixels();
  const std::int64_t patch = geom_.patch_size();
  const std::int64_t oh = geom_.out_h();
  const std::int64_t ow = geom_.out_w();

  Tensor& cols = ws.scratch(this, kCols, Shape{pixels, patch});
  tensor::im2col(input, geom_, cols);

  // out_pc[p, c] = <patch p, filter c>
  Tensor& out_pc = ws.scratch(this, kOutPc, Shape{pixels, out_channels_});
  tensor::gemm_nt(cols, weight_.value, out_pc, ctx.hw->matmul_policy());

  // Repack [P, C] -> NCHW and add bias (elementwise; no reduction).
  Tensor output(Shape{geom_.batch, out_channels_, oh, ow});
  const float* src = out_pc.raw();
  const float* b = bias_.value.raw();
  float* dst = output.raw();
  const std::int64_t ohw = oh * ow;
  const std::int64_t out_c = out_channels_;
  runtime::ThreadPool::global().parallel_for(
      0, geom_.batch, 1, [&](std::int64_t n0, std::int64_t n1) {
        for (std::int64_t n = n0; n < n1; ++n) {
          for (std::int64_t p = 0; p < ohw; ++p) {
            const float* row = src + (n * ohw + p) * out_c;
            for (std::int64_t c = 0; c < out_c; ++c) {
              dst[(n * out_c + c) * ohw + p] = row[c] + b[c];
            }
          }
        }
      });
  return output;
}

Tensor Conv2D::backward(const Tensor& grad_output, RunContext& ctx) {
  assert(active_ws_ != nullptr && "backward() before forward()");
  assert(active_ws_ == &ctx.scratch_arena(fallback_ws_) &&
         "forward/backward must run under the same workspace");
  tensor::Workspace& ws = *active_ws_;
  const std::int64_t oh = geom_.out_h();
  const std::int64_t ow = geom_.out_w();
  const std::int64_t ohw = oh * ow;
  const std::int64_t pixels = geom_.out_pixels();
  const std::int64_t patch = geom_.patch_size();
  assert(grad_output.shape() == (Shape{geom_.batch, out_channels_, oh, ow}));

  Tensor& cols = ws.scratch(this, kCols, Shape{pixels, patch});

  // NCHW -> [P, C] (and its transpose [C, P]) for the two GEMMs below.
  Tensor& dy_pc = ws.scratch(this, kDyPc, Shape{pixels, out_channels_});
  Tensor& dy_cp = ws.scratch(this, kDyCp, Shape{out_channels_, pixels});
  {
    const float* src = grad_output.raw();
    float* pc = dy_pc.raw();
    float* cp = dy_cp.raw();
    const std::int64_t out_c = out_channels_;
    runtime::ThreadPool::global().parallel_for(
        0, geom_.batch, 1, [&](std::int64_t n0, std::int64_t n1) {
          for (std::int64_t n = n0; n < n1; ++n) {
            for (std::int64_t c = 0; c < out_c; ++c) {
              const float* plane = src + (n * out_c + c) * ohw;
              for (std::int64_t p = 0; p < ohw; ++p) {
                pc[(n * ohw + p) * out_c + c] = plane[p];
                cp[c * pixels + n * ohw + p] = plane[p];
              }
            }
          }
        });
  }

  // dW[c, k] = sum_p dy[p, c] * cols[p, k] — contraction over batch*pixels.
  {
    Tensor& cols_kp = ws.scratch(this, kColsKp, Shape{patch, pixels});
    tensor::transpose(cols, cols_kp);
    Tensor& dw = ws.scratch(this, kDwStage, Shape{out_channels_, patch});
    tensor::gemm_nt(dy_cp, cols_kp, dw, ctx.hw->matmul_policy());
    tensor::axpy(1.0F, dw.data(), weight_.grad.data());
  }

  // db[c] = sum_p dy[p, c] — a pure reduction (CUDA-core fallback on TC).
  {
    std::vector<float> db(static_cast<std::size_t>(out_channels_));
    tensor::reduce_rows(dy_cp, db, ctx.hw->reduction_policy());
    tensor::axpy(1.0F, db, bias_.grad.data());
  }

  // dcols[p, k] = sum_c dy[p, c] * W[c, k]
  Tensor& w_kc = ws.scratch(this, kWKc, Shape{patch, out_channels_});
  tensor::transpose(weight_.value, w_kc);
  Tensor& dcols = ws.scratch(this, kDCols, Shape{pixels, patch});
  tensor::gemm_nt(dy_pc, w_kc, dcols, ctx.hw->matmul_policy());

  Tensor grad_input(
      Shape{geom_.batch, in_channels_, geom_.in_h, geom_.in_w});
  tensor::col2im(dcols, geom_, grad_input);
  return grad_input;
}

}  // namespace nnr::nn
