// Model: a sequential container of layers with parameter plumbing.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "nn/layer.h"

namespace nnr::nn {

class Model {
 public:
  Model() = default;
  Model(Model&&) = default;
  Model& operator=(Model&&) = default;

  /// Appends a layer; returns a typed pointer for post-construction wiring.
  template <typename L, typename... Args>
  L* emplace(Args&&... args) {
    auto layer = std::make_unique<L>(std::forward<Args>(args)...);
    L* raw = layer.get();
    layers_.push_back(std::move(layer));
    return raw;
  }

  void add(LayerPtr layer) { layers_.push_back(std::move(layer)); }

  [[nodiscard]] tensor::Tensor forward(const tensor::Tensor& input,
                                       RunContext& ctx);
  [[nodiscard]] tensor::Tensor backward(const tensor::Tensor& grad_output,
                                        RunContext& ctx);

  /// All trainable parameters in layer order.
  [[nodiscard]] std::vector<Param*> params();

  /// All persistent non-trainable buffers (BN running stats) in layer order.
  [[nodiscard]] std::vector<NamedBuffer> buffers();

  void zero_grads();

  /// Initializes every layer from the init channel, in layer order.
  void init_weights(rng::Generator& init_gen);

  /// Concatenation of all parameter values (for the L2 weight-distance
  /// metric and bitwise-reproducibility tests).
  [[nodiscard]] std::vector<float> flat_weights();

  /// Inverse of flat_weights: overwrites every parameter from a flat span
  /// laid out in layer order (warm-start training; see
  /// core/churn_reduction.h). Persistent buffers (BN running stats) are NOT
  /// restored — use serialize::load_model for exact state transfer.
  /// Precondition: flat.size() == num_params().
  void load_flat_weights(std::span<const float> flat);

  [[nodiscard]] std::int64_t num_params();

  [[nodiscard]] std::size_t num_layers() const noexcept {
    return layers_.size();
  }
  [[nodiscard]] Layer& layer(std::size_t i) { return *layers_[i]; }

 private:
  std::vector<LayerPtr> layers_;
};

}  // namespace nnr::nn
