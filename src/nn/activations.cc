#include "nn/activations.h"

#include <cassert>
#include <cmath>
#include <numbers>

namespace nnr::nn {

using tensor::Tensor;

namespace {

inline float sigmoid(float x) noexcept { return 1.0F / (1.0F + std::exp(-x)); }

}  // namespace

Tensor ReLU::forward(const Tensor& input, RunContext& /*ctx*/) {
  mask_ = Tensor(input.shape());
  Tensor output(input.shape());
  const float* src = input.raw();
  float* msk = mask_.raw();
  float* dst = output.raw();
  const std::int64_t n = input.numel();
  for (std::int64_t i = 0; i < n; ++i) {
    const bool positive = src[i] > 0.0F;
    msk[i] = positive ? 1.0F : 0.0F;
    dst[i] = positive ? src[i] : 0.0F;
  }
  return output;
}

Tensor ReLU::backward(const Tensor& grad_output, RunContext& /*ctx*/) {
  assert(grad_output.shape() == mask_.shape());
  Tensor grad_input(grad_output.shape());
  const float* dy = grad_output.raw();
  const float* msk = mask_.raw();
  float* dx = grad_input.raw();
  const std::int64_t n = grad_output.numel();
  for (std::int64_t i = 0; i < n; ++i) dx[i] = dy[i] * msk[i];
  return grad_input;
}

Tensor LeakyReLU::forward(const Tensor& input, RunContext& /*ctx*/) {
  slope_ = Tensor(input.shape());
  Tensor output(input.shape());
  const float* src = input.raw();
  float* slope = slope_.raw();
  float* dst = output.raw();
  const std::int64_t n = input.numel();
  for (std::int64_t i = 0; i < n; ++i) {
    const bool positive = src[i] > 0.0F;
    slope[i] = positive ? 1.0F : alpha_;
    dst[i] = positive ? src[i] : alpha_ * src[i];
  }
  return output;
}

Tensor LeakyReLU::backward(const Tensor& grad_output, RunContext& /*ctx*/) {
  assert(grad_output.shape() == slope_.shape());
  Tensor grad_input(grad_output.shape());
  const float* dy = grad_output.raw();
  const float* slope = slope_.raw();
  float* dx = grad_input.raw();
  const std::int64_t n = grad_output.numel();
  for (std::int64_t i = 0; i < n; ++i) dx[i] = dy[i] * slope[i];
  return grad_input;
}

Tensor SiLU::forward(const Tensor& input, RunContext& /*ctx*/) {
  input_ = input;
  Tensor output(input.shape());
  const float* src = input.raw();
  float* dst = output.raw();
  const std::int64_t n = input.numel();
  for (std::int64_t i = 0; i < n; ++i) dst[i] = src[i] * sigmoid(src[i]);
  return output;
}

Tensor SiLU::backward(const Tensor& grad_output, RunContext& /*ctx*/) {
  assert(grad_output.shape() == input_.shape());
  Tensor grad_input(grad_output.shape());
  const float* dy = grad_output.raw();
  const float* x = input_.raw();
  float* dx = grad_input.raw();
  const std::int64_t n = grad_output.numel();
  for (std::int64_t i = 0; i < n; ++i) {
    const float s = sigmoid(x[i]);
    // d/dx [x s(x)] = s(x) (1 + x (1 - s(x)))
    dx[i] = dy[i] * s * (1.0F + x[i] * (1.0F - s));
  }
  return grad_input;
}

Tensor GELU::forward(const Tensor& input, RunContext& /*ctx*/) {
  input_ = input;
  Tensor output(input.shape());
  const float* src = input.raw();
  float* dst = output.raw();
  const std::int64_t n = input.numel();
  const float inv_sqrt2 = 1.0F / std::numbers::sqrt2_v<float>;
  for (std::int64_t i = 0; i < n; ++i) {
    const float cdf = 0.5F * (1.0F + std::erf(src[i] * inv_sqrt2));
    dst[i] = src[i] * cdf;
  }
  return output;
}

Tensor GELU::backward(const Tensor& grad_output, RunContext& /*ctx*/) {
  assert(grad_output.shape() == input_.shape());
  Tensor grad_input(grad_output.shape());
  const float* dy = grad_output.raw();
  const float* x = input_.raw();
  float* dx = grad_input.raw();
  const std::int64_t n = grad_output.numel();
  const float inv_sqrt2 = 1.0F / std::numbers::sqrt2_v<float>;
  const float inv_sqrt2pi = 1.0F / std::sqrt(2.0F * std::numbers::pi_v<float>);
  for (std::int64_t i = 0; i < n; ++i) {
    const float cdf = 0.5F * (1.0F + std::erf(x[i] * inv_sqrt2));
    const float pdf = inv_sqrt2pi * std::exp(-0.5F * x[i] * x[i]);
    // d/dx [x Phi(x)] = Phi(x) + x phi(x)
    dx[i] = dy[i] * (cdf + x[i] * pdf);
  }
  return grad_input;
}

Tensor Tanh::forward(const Tensor& input, RunContext& /*ctx*/) {
  output_ = Tensor(input.shape());
  const float* src = input.raw();
  float* dst = output_.raw();
  const std::int64_t n = input.numel();
  for (std::int64_t i = 0; i < n; ++i) dst[i] = std::tanh(src[i]);
  // Return a copy; output_ stays cached for backward.
  return Tensor(output_.shape(), std::vector<float>(output_.data().begin(),
                                                    output_.data().end()));
}

Tensor Tanh::backward(const Tensor& grad_output, RunContext& /*ctx*/) {
  assert(grad_output.shape() == output_.shape());
  Tensor grad_input(grad_output.shape());
  const float* dy = grad_output.raw();
  const float* y = output_.raw();
  float* dx = grad_input.raw();
  const std::int64_t n = grad_output.numel();
  for (std::int64_t i = 0; i < n; ++i) dx[i] = dy[i] * (1.0F - y[i] * y[i]);
  return grad_input;
}

}  // namespace nnr::nn
