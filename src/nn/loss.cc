#include "nn/loss.h"

#include <cassert>
#include <cmath>

#include "tensor/gemm.h"

namespace nnr::nn {

using tensor::Shape;
using tensor::Tensor;

Tensor softmax(const Tensor& logits, RunContext& ctx) {
  assert(logits.shape().rank() == 2);
  const std::int64_t n = logits.shape()[0];
  const std::int64_t c = logits.shape()[1];

  Tensor probs(logits.shape());
  const float* src = logits.raw();
  float* dst = probs.raw();
  // exp(x - rowmax), then normalize; the normalizer sum is one reduction
  // launch shared across rows.
  for (std::int64_t i = 0; i < n; ++i) {
    float row_max = src[i * c];
    for (std::int64_t j = 1; j < c; ++j) {
      row_max = std::max(row_max, src[i * c + j]);
    }
    for (std::int64_t j = 0; j < c; ++j) {
      dst[i * c + j] = std::exp(src[i * c + j] - row_max);
    }
  }
  std::vector<float> normalizers(static_cast<std::size_t>(n));
  tensor::reduce_rows(probs, normalizers, ctx.hw->reduction_policy());
  for (std::int64_t i = 0; i < n; ++i) {
    const float inv = 1.0F / normalizers[static_cast<std::size_t>(i)];
    for (std::int64_t j = 0; j < c; ++j) dst[i * c + j] *= inv;
  }
  return probs;
}

LossResult softmax_cross_entropy(const Tensor& logits,
                                 std::span<const std::int32_t> labels,
                                 RunContext& ctx) {
  const std::int64_t n = logits.shape()[0];
  const std::int64_t c = logits.shape()[1];
  assert(static_cast<std::int64_t>(labels.size()) == n);

  Tensor probs = softmax(logits, ctx);

  // Mean negative log-likelihood; the batch-mean is itself a reduction.
  std::vector<float> nll(static_cast<std::size_t>(n));
  const float* p = probs.raw();
  for (std::int64_t i = 0; i < n; ++i) {
    const float prob =
        std::max(p[i * c + labels[static_cast<std::size_t>(i)]], 1e-12F);
    nll[static_cast<std::size_t>(i)] = -std::log(prob);
  }
  const float loss =
      tensor::reduce_sum(nll, ctx.hw->reduction_policy()) /
      static_cast<float>(n);

  LossResult result;
  result.loss = loss;
  result.grad_logits = probs;
  float* g = result.grad_logits.raw();
  const float inv_n = 1.0F / static_cast<float>(n);
  for (std::int64_t i = 0; i < n; ++i) {
    g[i * c + labels[static_cast<std::size_t>(i)]] -= 1.0F;
    for (std::int64_t j = 0; j < c; ++j) g[i * c + j] *= inv_n;
  }
  return result;
}

LossResult softmax_cross_entropy_smoothed(
    const Tensor& logits, std::span<const std::int32_t> labels,
    float smoothing, RunContext& ctx) {
  assert(smoothing >= 0.0F && smoothing < 1.0F);
  if (smoothing == 0.0F) return softmax_cross_entropy(logits, labels, ctx);

  const std::int64_t n = logits.shape()[0];
  const std::int64_t c = logits.shape()[1];
  assert(static_cast<std::int64_t>(labels.size()) == n);

  Tensor probs = softmax(logits, ctx);

  // Loss_i = -sum_j q_j log p_j with q = (1-s) onehot + s/c. Split into the
  // label term and the uniform term; the per-row log-sum is a reduction.
  const float uniform = smoothing / static_cast<float>(c);
  const float on_label = 1.0F - smoothing;
  std::vector<float> per_row(static_cast<std::size_t>(n));
  const float* p = probs.raw();
  Tensor log_p(logits.shape());
  float* lp = log_p.raw();
  for (std::int64_t i = 0; i < n * c; ++i) {
    lp[i] = std::log(std::max(p[i], 1e-12F));
  }
  std::vector<float> row_logsum(static_cast<std::size_t>(n));
  tensor::reduce_rows(log_p, row_logsum, ctx.hw->reduction_policy());
  for (std::int64_t i = 0; i < n; ++i) {
    const float label_lp =
        lp[i * c + labels[static_cast<std::size_t>(i)]];
    per_row[static_cast<std::size_t>(i)] =
        -on_label * label_lp - uniform * row_logsum[static_cast<std::size_t>(i)];
  }
  const float loss = tensor::reduce_sum(per_row, ctx.hw->reduction_policy()) /
                     static_cast<float>(n);

  LossResult result;
  result.loss = loss;
  // grad = (p - q) / n, same functional form as the unsmoothed case.
  result.grad_logits = probs;
  float* g = result.grad_logits.raw();
  const float inv_n = 1.0F / static_cast<float>(n);
  for (std::int64_t i = 0; i < n; ++i) {
    g[i * c + labels[static_cast<std::size_t>(i)]] -= on_label;
    for (std::int64_t j = 0; j < c; ++j) {
      g[i * c + j] = (g[i * c + j] - uniform) * inv_n;
    }
  }
  return result;
}

LossResult sigmoid_bce(const Tensor& logits, const Tensor& targets,
                       RunContext& ctx) {
  assert(logits.shape() == targets.shape());
  const std::int64_t n = logits.shape()[0];
  const std::int64_t a = logits.shape()[1];
  const std::int64_t total = n * a;

  LossResult result;
  result.grad_logits = Tensor(logits.shape());
  std::vector<float> per_element(static_cast<std::size_t>(total));
  const float* z = logits.raw();
  const float* y = targets.raw();
  float* g = result.grad_logits.raw();
  const float inv_total = 1.0F / static_cast<float>(total);
  for (std::int64_t i = 0; i < total; ++i) {
    // Numerically stable BCE-with-logits:
    //   loss = max(z,0) - z*y + log(1 + exp(-|z|))
    const float zi = z[i];
    const float yi = y[i];
    per_element[static_cast<std::size_t>(i)] =
        std::max(zi, 0.0F) - zi * yi + std::log1p(std::exp(-std::fabs(zi)));
    const float sig = 1.0F / (1.0F + std::exp(-zi));
    g[i] = (sig - yi) * inv_total;
  }
  result.loss =
      tensor::reduce_sum(per_element, ctx.hw->reduction_policy()) * inv_total;
  return result;
}

}  // namespace nnr::nn
