// Flatten: NCHW -> [N, C*H*W] (pure reshape; contiguous layout preserved).
#pragma once

#include "nn/layer.h"

namespace nnr::nn {

class Flatten final : public Layer {
 public:
  Flatten() = default;

  [[nodiscard]] tensor::Tensor forward(const tensor::Tensor& input,
                                       RunContext& ctx) override;
  [[nodiscard]] tensor::Tensor backward(const tensor::Tensor& grad_output,
                                        RunContext& ctx) override;
  [[nodiscard]] std::string name() const override { return "Flatten"; }

 private:
  tensor::Shape input_shape_;
};

}  // namespace nnr::nn
