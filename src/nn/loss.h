// Loss functions. The scalar loss reductions run under the device reduction
// policy (loss kernels are CUDA-core reductions on all GPU devices).
#pragma once

#include <cstdint>
#include <span>

#include "nn/layer.h"

namespace nnr::nn {

struct LossResult {
  float loss = 0.0F;                // mean loss over the batch
  tensor::Tensor grad_logits;       // d(mean loss)/d(logits)
};

/// Row-wise softmax with max-subtraction. The per-row normalizer is a small
/// reduction and runs under the reduction policy.
[[nodiscard]] tensor::Tensor softmax(const tensor::Tensor& logits,
                                     RunContext& ctx);

/// Mean softmax cross-entropy for single-label classification.
/// logits: [N, classes]; labels: N class indices.
[[nodiscard]] LossResult softmax_cross_entropy(
    const tensor::Tensor& logits, std::span<const std::int32_t> labels,
    RunContext& ctx);

/// Mean softmax cross-entropy against label-smoothed targets
/// q = (1 - smoothing) * onehot + smoothing / classes (Szegedy et al. 2015,
/// the Inception-v3 recipe the paper profiles). smoothing == 0 reduces to
/// softmax_cross_entropy exactly.
[[nodiscard]] LossResult softmax_cross_entropy_smoothed(
    const tensor::Tensor& logits, std::span<const std::int32_t> labels,
    float smoothing, RunContext& ctx);

/// Mean per-attribute sigmoid binary cross-entropy for multi-label tasks
/// (the CelebA-style 40-attribute head). logits/targets: [N, attrs],
/// targets in {0, 1}.
[[nodiscard]] LossResult sigmoid_bce(const tensor::Tensor& logits,
                                     const tensor::Tensor& targets,
                                     RunContext& ctx);

}  // namespace nnr::nn
