// Weight initialization schemes (paper Table 1, "Random Initialization").
//
// Initialization draws from the kInit noise channel; pinning that channel's
// seed is exactly how the IMPL and CONTROL variants remove init noise.
#pragma once

#include <cstdint>

#include "rng/generator.h"
#include "tensor/tensor.h"

namespace nnr::nn {

/// Glorot/Xavier uniform: U(-a, a) with a = sqrt(6 / (fan_in + fan_out)).
void glorot_uniform(rng::Generator& gen, tensor::Tensor& weights,
                    std::int64_t fan_in, std::int64_t fan_out);

/// He/Kaiming normal: N(0, sqrt(2 / fan_in)) — standard for ReLU networks.
void he_normal(rng::Generator& gen, tensor::Tensor& weights,
               std::int64_t fan_in);

}  // namespace nnr::nn
