#include "nn/batchnorm.h"

#include <cassert>
#include <cmath>

#include "tensor/gemm.h"
#include "tensor/ops.h"

namespace nnr::nn {

using tensor::Shape;
using tensor::Tensor;

namespace {

/// Gathers NCHW activations into a [C, N*H*W] matrix so that per-channel
/// reductions are contiguous single launches.
void gather_channels(const Tensor& x, Tensor& out) {
  const std::int64_t n = x.shape()[0];
  const std::int64_t c = x.shape()[1];
  const std::int64_t hw = x.shape()[2] * x.shape()[3];
  const float* src = x.raw();
  float* dst = out.raw();
  for (std::int64_t ni = 0; ni < n; ++ni) {
    for (std::int64_t ci = 0; ci < c; ++ci) {
      const float* plane = src + (ni * c + ci) * hw;
      float* row = dst + ci * (n * hw) + ni * hw;
      for (std::int64_t p = 0; p < hw; ++p) row[p] = plane[p];
    }
  }
}

}  // namespace

BatchNorm2D::BatchNorm2D(std::int64_t channels, float momentum, float epsilon)
    : channels_(channels),
      momentum_(momentum),
      epsilon_(epsilon),
      gamma_("bn.gamma", Shape{channels}),
      beta_("bn.beta", Shape{channels}),
      running_mean_(Shape{channels}),
      running_var_(Shape{channels}) {
  gamma_.value.fill(1.0F);
  beta_.value.fill(0.0F);
  running_mean_.fill(0.0F);
  running_var_.fill(1.0F);
}

std::string BatchNorm2D::name() const {
  return "BatchNorm2D(" + std::to_string(channels_) + ")";
}

Tensor BatchNorm2D::forward(const Tensor& input, RunContext& ctx) {
  assert(input.shape().rank() == 4 && input.shape()[1] == channels_);
  const std::int64_t n = input.shape()[0];
  const std::int64_t hw = input.shape()[2] * input.shape()[3];
  const std::int64_t m = n * hw;  // elements per channel

  std::vector<float> mean(static_cast<std::size_t>(channels_));
  std::vector<float> var(static_cast<std::size_t>(channels_));

  if (ctx.training) {
    // Batch statistics through the device reduction policy (two launches).
    Tensor gathered(Shape{channels_, m});
    gather_channels(input, gathered);
    tensor::reduce_rows(gathered, mean, ctx.hw->reduction_policy());
    for (std::int64_t c = 0; c < channels_; ++c) {
      mean[static_cast<std::size_t>(c)] /= static_cast<float>(m);
    }
    // Center in place, then reduce squares.
    Tensor centered_sq(Shape{channels_, m});
    {
      const float* g = gathered.raw();
      float* sq = centered_sq.raw();
      for (std::int64_t c = 0; c < channels_; ++c) {
        const float mu = mean[static_cast<std::size_t>(c)];
        for (std::int64_t i = 0; i < m; ++i) {
          const float d = g[c * m + i] - mu;
          sq[c * m + i] = d * d;
        }
      }
    }
    tensor::reduce_rows(centered_sq, var, ctx.hw->reduction_policy());
    for (std::int64_t c = 0; c < channels_; ++c) {
      var[static_cast<std::size_t>(c)] /= static_cast<float>(m);
    }
    // Update running statistics.
    for (std::int64_t c = 0; c < channels_; ++c) {
      const auto ci = static_cast<std::size_t>(c);
      running_mean_.at(c) =
          momentum_ * running_mean_.at(c) + (1.0F - momentum_) * mean[ci];
      running_var_.at(c) =
          momentum_ * running_var_.at(c) + (1.0F - momentum_) * var[ci];
    }
  } else {
    for (std::int64_t c = 0; c < channels_; ++c) {
      mean[static_cast<std::size_t>(c)] = running_mean_.at(c);
      var[static_cast<std::size_t>(c)] = running_var_.at(c);
    }
  }

  inv_std_.assign(static_cast<std::size_t>(channels_), 0.0F);
  for (std::int64_t c = 0; c < channels_; ++c) {
    inv_std_[static_cast<std::size_t>(c)] =
        1.0F / std::sqrt(var[static_cast<std::size_t>(c)] + epsilon_);
  }

  Tensor output(input.shape());
  xhat_ = Tensor(input.shape());
  const float* src = input.raw();
  float* xh = xhat_.raw();
  float* out = output.raw();
  for (std::int64_t ni = 0; ni < n; ++ni) {
    for (std::int64_t c = 0; c < channels_; ++c) {
      const auto ci = static_cast<std::size_t>(c);
      const float mu = mean[ci];
      const float is = inv_std_[ci];
      const float g = gamma_.value.at(c);
      const float b = beta_.value.at(c);
      const std::int64_t base = (ni * channels_ + c) * hw;
      for (std::int64_t p = 0; p < hw; ++p) {
        const float norm = (src[base + p] - mu) * is;
        xh[base + p] = norm;
        out[base + p] = g * norm + b;
      }
    }
  }
  if (!ctx.training) xhat_ = Tensor();  // nothing to backprop at eval
  return output;
}

Tensor BatchNorm2D::backward(const Tensor& grad_output, RunContext& ctx) {
  assert(!xhat_.empty() && "backward() requires a training-mode forward()");
  const std::int64_t n = grad_output.shape()[0];
  const std::int64_t hw = grad_output.shape()[2] * grad_output.shape()[3];
  const std::int64_t m = n * hw;

  // Per-channel sums of dy and dy*xhat (two reduction launches).
  Tensor dy_gathered(Shape{channels_, m});
  gather_channels(grad_output, dy_gathered);
  Tensor dyxh(Shape{channels_, m});
  {
    Tensor xh_gathered(Shape{channels_, m});
    gather_channels(xhat_, xh_gathered);
    const float* a = dy_gathered.raw();
    const float* b = xh_gathered.raw();
    float* o = dyxh.raw();
    for (std::int64_t i = 0; i < channels_ * m; ++i) o[i] = a[i] * b[i];
  }
  std::vector<float> sum_dy(static_cast<std::size_t>(channels_));
  std::vector<float> sum_dyxh(static_cast<std::size_t>(channels_));
  tensor::reduce_rows(dy_gathered, sum_dy, ctx.hw->reduction_policy());
  tensor::reduce_rows(dyxh, sum_dyxh, ctx.hw->reduction_policy());

  tensor::axpy(1.0F, sum_dyxh, gamma_.grad.data());
  tensor::axpy(1.0F, sum_dy, beta_.grad.data());

  // dx = gamma * inv_std / m * (m*dy - sum(dy) - xhat * sum(dy*xhat))
  Tensor grad_input(grad_output.shape());
  const float* dy = grad_output.raw();
  const float* xh = xhat_.raw();
  float* dx = grad_input.raw();
  const float inv_m = 1.0F / static_cast<float>(m);
  for (std::int64_t ni = 0; ni < n; ++ni) {
    for (std::int64_t c = 0; c < channels_; ++c) {
      const auto ci = static_cast<std::size_t>(c);
      const float scale = gamma_.value.at(c) * inv_std_[ci] * inv_m;
      const float sdy = sum_dy[ci];
      const float sdyxh = sum_dyxh[ci];
      const std::int64_t base = (ni * channels_ + c) * hw;
      for (std::int64_t p = 0; p < hw; ++p) {
        dx[base + p] = scale * (static_cast<float>(m) * dy[base + p] - sdy -
                                xh[base + p] * sdyxh);
      }
    }
  }
  return grad_input;
}

}  // namespace nnr::nn
