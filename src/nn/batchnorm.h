// BatchNorm2D (Ioffe & Szegedy 2015).
//
// The paper (Fig. 2) identifies batch normalization as the model-design
// choice that most strongly damps system noise; the SmallCNN (no BN) is its
// noisiest benchmark. Reproducing that requires the BN statistics to run
// through the device's reduction policy: the per-channel mean/variance sums
// are large cross-batch float32 reductions and a primary entry point for
// implementation noise (they have no Tensor-Core implementation, so they stay
// nondeterministic even on TC devices).
#pragma once

#include <cstdint>

#include "nn/layer.h"

namespace nnr::nn {

class BatchNorm2D final : public Layer {
 public:
  explicit BatchNorm2D(std::int64_t channels, float momentum = 0.9F,
                       float epsilon = 1e-5F);

  [[nodiscard]] tensor::Tensor forward(const tensor::Tensor& input,
                                       RunContext& ctx) override;
  [[nodiscard]] tensor::Tensor backward(const tensor::Tensor& grad_output,
                                        RunContext& ctx) override;
  [[nodiscard]] std::vector<Param*> params() override {
    return {&gamma_, &beta_};
  }
  [[nodiscard]] std::vector<NamedBuffer> buffers() override {
    return {{"bn.running_mean", &running_mean_},
            {"bn.running_var", &running_var_}};
  }
  [[nodiscard]] std::string name() const override;

  /// Running statistics (used at eval time); exposed for tests.
  [[nodiscard]] std::span<const float> running_mean() const noexcept {
    return running_mean_.data();
  }
  [[nodiscard]] std::span<const float> running_var() const noexcept {
    return running_var_.data();
  }

 private:
  std::int64_t channels_;
  float momentum_;
  float epsilon_;

  Param gamma_;  // [C], init 1
  Param beta_;   // [C], init 0
  tensor::Tensor running_mean_;  // [C]
  tensor::Tensor running_var_;   // [C]

  // Backward caches (training mode only).
  tensor::Tensor xhat_;     // normalized input, same shape as input
  std::vector<float> inv_std_;  // [C]
};

}  // namespace nnr::nn
