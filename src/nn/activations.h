// Elementwise activation layers.
//
// All activations are elementwise — they introduce no reduction and
// therefore no implementation noise of their own. They differ in how they
// *propagate* upstream bit-level perturbations: ReLU's kink can flip a unit
// on/off under an epsilon change (gradient jumps 0 <-> 1), while smooth
// activations (SiLU, GELU, Tanh) bound the local Lipschitz constant of the
// gradient. Shamir et al. 2020 ("Smooth activations and reproducibility in
// deep networks", cited by the paper §5) argue exactly this mechanism; the
// activation-smoothness ablation bench measures it on our stack.
#pragma once

#include "nn/layer.h"

namespace nnr::nn {

/// Rectified linear unit. Its kink amplifies upstream perturbations (part of
/// why bit-level noise grows into prediction churn).
class ReLU final : public Layer {
 public:
  ReLU() = default;

  [[nodiscard]] tensor::Tensor forward(const tensor::Tensor& input,
                                       RunContext& ctx) override;
  [[nodiscard]] tensor::Tensor backward(const tensor::Tensor& grad_output,
                                        RunContext& ctx) override;
  [[nodiscard]] std::string name() const override { return "ReLU"; }

 private:
  tensor::Tensor mask_;  // 1 where input > 0
};

/// Leaky ReLU: x for x > 0, alpha * x otherwise.
class LeakyReLU final : public Layer {
 public:
  explicit LeakyReLU(float alpha = 0.01F) : alpha_(alpha) {}

  [[nodiscard]] tensor::Tensor forward(const tensor::Tensor& input,
                                       RunContext& ctx) override;
  [[nodiscard]] tensor::Tensor backward(const tensor::Tensor& grad_output,
                                        RunContext& ctx) override;
  [[nodiscard]] std::string name() const override { return "LeakyReLU"; }

  [[nodiscard]] float alpha() const noexcept { return alpha_; }

 private:
  float alpha_;
  tensor::Tensor slope_;  // per-element derivative: 1 or alpha
};

/// SiLU / swish: x * sigmoid(x) (EfficientNet's activation).
class SiLU final : public Layer {
 public:
  SiLU() = default;

  [[nodiscard]] tensor::Tensor forward(const tensor::Tensor& input,
                                       RunContext& ctx) override;
  [[nodiscard]] tensor::Tensor backward(const tensor::Tensor& grad_output,
                                        RunContext& ctx) override;
  [[nodiscard]] std::string name() const override { return "SiLU"; }

 private:
  tensor::Tensor input_;  // backward re-derives sigmoid from the input
};

/// GELU, exact form: x * Phi(x) with the Gaussian CDF via erf.
class GELU final : public Layer {
 public:
  GELU() = default;

  [[nodiscard]] tensor::Tensor forward(const tensor::Tensor& input,
                                       RunContext& ctx) override;
  [[nodiscard]] tensor::Tensor backward(const tensor::Tensor& grad_output,
                                        RunContext& ctx) override;
  [[nodiscard]] std::string name() const override { return "GELU"; }

 private:
  tensor::Tensor input_;
};

/// Hyperbolic tangent.
class Tanh final : public Layer {
 public:
  Tanh() = default;

  [[nodiscard]] tensor::Tensor forward(const tensor::Tensor& input,
                                       RunContext& ctx) override;
  [[nodiscard]] tensor::Tensor backward(const tensor::Tensor& grad_output,
                                        RunContext& ctx) override;
  [[nodiscard]] std::string name() const override { return "Tanh"; }

 private:
  tensor::Tensor output_;  // dy/dx = 1 - y^2
};

}  // namespace nnr::nn
