// Conv2D: convolution lowered to im2col + policy-driven GEMM.
//
// Weight layout is [out_channels, in_channels * k * k] with the contraction
// axis contiguous, matching the gemm_nt convention. The weight-gradient GEMM
// contracts over the batch*pixels axis — this is the reduction whose float32
// ordering makes training sensitive to both scheduler interleaving (IMPL
// noise) and input ordering (paper Fig. 6).
#pragma once

#include <cstdint>

#include "nn/layer.h"
#include "tensor/im2col.h"

namespace nnr::nn {

class Conv2D final : public Layer {
 public:
  /// Square kernels; `pad` defaults to "same" padding for stride 1
  /// (pad = k/2) when negative.
  Conv2D(std::int64_t in_channels, std::int64_t out_channels,
         std::int64_t kernel, std::int64_t stride = 1, std::int64_t pad = -1);

  /// He-normal weight init from the init channel; zero bias.
  void init_weights(rng::Generator& init_gen) override;

  [[nodiscard]] tensor::Tensor forward(const tensor::Tensor& input,
                                       RunContext& ctx) override;
  [[nodiscard]] tensor::Tensor backward(const tensor::Tensor& grad_output,
                                        RunContext& ctx) override;
  [[nodiscard]] std::vector<Param*> params() override {
    return {&weight_, &bias_};
  }
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] std::int64_t kernel() const noexcept { return kernel_; }

 private:
  std::int64_t in_channels_;
  std::int64_t out_channels_;
  std::int64_t kernel_;
  std::int64_t stride_;
  std::int64_t pad_;

  Param weight_;  // [out_c, in_c*k*k]
  Param bias_;    // [out_c]

  // Per-batch caches for backward. The patch matrix and every repack /
  // transpose temporary live in the run's Workspace (slot-addressed by
  // `this`), so step N+1 reuses step N's buffers instead of reallocating;
  // fallback_ws_ serves callers that run without a context arena. backward()
  // reads the patch matrix from the arena forward() wrote it to (active_ws_),
  // so a context-arena swap between the two calls cannot silently hand
  // backward a zeroed buffer.
  tensor::ConvGeometry geom_{};
  tensor::Workspace fallback_ws_;
  tensor::Workspace* active_ws_ = nullptr;
};

}  // namespace nnr::nn
