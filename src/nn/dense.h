// Dense (fully connected) layer: y = x W^T + b via policy-driven GEMM.
#pragma once

#include <cstdint>

#include "nn/layer.h"

namespace nnr::nn {

class Dense final : public Layer {
 public:
  Dense(std::int64_t in_features, std::int64_t out_features);

  /// Glorot-uniform weight init from the init channel; zero bias.
  void init_weights(rng::Generator& init_gen) override;

  [[nodiscard]] tensor::Tensor forward(const tensor::Tensor& input,
                                       RunContext& ctx) override;
  [[nodiscard]] tensor::Tensor backward(const tensor::Tensor& grad_output,
                                        RunContext& ctx) override;
  [[nodiscard]] std::vector<Param*> params() override {
    return {&weight_, &bias_};
  }
  [[nodiscard]] std::string name() const override;

 private:
  std::int64_t in_features_;
  std::int64_t out_features_;
  Param weight_;  // [out, in]
  Param bias_;    // [out]
  tensor::Tensor input_cache_;  // [N, in]
  // Transpose / gradient-staging scratch when the context has no arena.
  tensor::Workspace fallback_ws_;
};

}  // namespace nnr::nn
