#include "nn/depthwise_conv.h"

#include <cassert>

#include "nn/init.h"
#include "tensor/gemm.h"
#include "tensor/ops.h"

namespace nnr::nn {

using tensor::ConvGeometry;
using tensor::Shape;
using tensor::Tensor;

namespace {

/// Copies channel `c` of an NCHW tensor into a [N, 1, H, W] single-channel
/// tensor (channel planes are contiguous per sample).
void slice_channel(const Tensor& x, std::int64_t c, Tensor& out) {
  const std::int64_t n = x.shape()[0];
  const std::int64_t channels = x.shape()[1];
  const std::int64_t hw = x.shape()[2] * x.shape()[3];
  const float* src = x.raw();
  float* dst = out.raw();
  for (std::int64_t ni = 0; ni < n; ++ni) {
    const float* plane = src + (ni * channels + c) * hw;
    float* row = dst + ni * hw;
    for (std::int64_t p = 0; p < hw; ++p) row[p] = plane[p];
  }
}

}  // namespace

DepthwiseConv2D::DepthwiseConv2D(std::int64_t channels, std::int64_t kernel,
                                 std::int64_t stride, std::int64_t pad)
    : channels_(channels),
      kernel_(kernel),
      stride_(stride),
      pad_(pad < 0 ? kernel / 2 : pad),
      weight_("dwconv.weight", Shape{channels, kernel * kernel}),
      bias_("dwconv.bias", Shape{channels}) {}

void DepthwiseConv2D::init_weights(rng::Generator& init_gen) {
  he_normal(init_gen, weight_.value, kernel_ * kernel_);
  bias_.value.fill(0.0F);
}

std::string DepthwiseConv2D::name() const {
  return "DepthwiseConv2D(" + std::to_string(channels_) +
         ", k=" + std::to_string(kernel_) + ", s=" + std::to_string(stride_) +
         ")";
}

Tensor DepthwiseConv2D::forward(const Tensor& input, RunContext& ctx) {
  assert(input.shape().rank() == 4 && input.shape()[1] == channels_);
  const std::int64_t n = input.shape()[0];
  geom_ = ConvGeometry{.batch = n,
                       .in_channels = 1,
                       .in_h = input.shape()[2],
                       .in_w = input.shape()[3],
                       .kernel = kernel_,
                       .stride = stride_,
                       .pad = pad_};
  const std::int64_t pixels = geom_.out_pixels();
  const std::int64_t taps = kernel_ * kernel_;
  const std::int64_t oh = geom_.out_h();
  const std::int64_t ow = geom_.out_w();
  const std::int64_t ohw = oh * ow;

  Tensor output(Shape{n, channels_, oh, ow});
  Tensor channel(Shape{n, 1, geom_.in_h, geom_.in_w});
  Tensor out_p(Shape{pixels, 1});
  Tensor w_row(Shape{1, taps});
  cols_.assign(static_cast<std::size_t>(channels_),
               Tensor(Shape{pixels, taps}));

  const float* w = weight_.value.raw();
  const float* b = bias_.value.raw();
  float* dst = output.raw();
  for (std::int64_t c = 0; c < channels_; ++c) {
    slice_channel(input, c, channel);
    Tensor& cols = cols_[static_cast<std::size_t>(c)];
    tensor::im2col(channel, geom_, cols);
    for (std::int64_t t = 0; t < taps; ++t) w_row.at(t) = w[c * taps + t];
    // out_p[p] = <patch p, filter c>: one GEMM launch per channel, exactly
    // how depthwise kernels schedule channel-parallel blocks.
    tensor::gemm_nt(cols, w_row, out_p, ctx.hw->matmul_policy());
    for (std::int64_t ni = 0; ni < n; ++ni) {
      float* plane = dst + (ni * channels_ + c) * ohw;
      const float* src_p = out_p.raw() + ni * ohw;
      for (std::int64_t p = 0; p < ohw; ++p) plane[p] = src_p[p] + b[c];
    }
  }
  return output;
}

Tensor DepthwiseConv2D::backward(const Tensor& grad_output, RunContext& ctx) {
  const std::int64_t n = geom_.batch;
  const std::int64_t oh = geom_.out_h();
  const std::int64_t ow = geom_.out_w();
  const std::int64_t ohw = oh * ow;
  const std::int64_t pixels = geom_.out_pixels();
  const std::int64_t taps = kernel_ * kernel_;
  assert(grad_output.shape() == (Shape{n, channels_, oh, ow}));
  assert(static_cast<std::int64_t>(cols_.size()) == channels_);

  Tensor grad_input(Shape{n, channels_, geom_.in_h, geom_.in_w});
  Tensor dy_1p(Shape{1, pixels});
  Tensor dy_p1(Shape{pixels, 1});
  Tensor cols_tp(Shape{taps, pixels});
  Tensor dw_row(Shape{1, taps});
  Tensor w_t1(Shape{taps, 1});
  Tensor dcols(Shape{pixels, taps});
  Tensor dchannel(Shape{n, 1, geom_.in_h, geom_.in_w});

  const float* dy = grad_output.raw();
  const float* w = weight_.value.raw();
  float* dw = weight_.grad.raw();
  float* db = bias_.grad.raw();
  float* dx = grad_input.raw();
  const std::int64_t in_hw = geom_.in_h * geom_.in_w;

  for (std::int64_t c = 0; c < channels_; ++c) {
    const Tensor& cols = cols_[static_cast<std::size_t>(c)];
    for (std::int64_t ni = 0; ni < n; ++ni) {
      const float* plane = dy + (ni * channels_ + c) * ohw;
      for (std::int64_t p = 0; p < ohw; ++p) {
        dy_1p.at(0, ni * ohw + p) = plane[p];
        dy_p1.at(ni * ohw + p, 0) = plane[p];
      }
    }

    // dW[c, t] = sum_p dy[p] * cols[p, t] — the batch*pixels contraction.
    tensor::transpose(cols, cols_tp);
    tensor::gemm_nt(dy_1p, cols_tp, dw_row, ctx.hw->matmul_policy());
    for (std::int64_t t = 0; t < taps; ++t) dw[c * taps + t] += dw_row.at(t);

    // db[c] = sum_p dy[p] — a pure reduction.
    db[c] += tensor::reduce_sum(dy_1p.data(), ctx.hw->reduction_policy());

    // dcols[p, t] = dy[p] * W[c, t] (K = 1 contraction).
    for (std::int64_t t = 0; t < taps; ++t) w_t1.at(t, 0) = w[c * taps + t];
    tensor::gemm_nt(dy_p1, w_t1, dcols, ctx.hw->matmul_policy());

    tensor::col2im(dcols, geom_, dchannel);
    for (std::int64_t ni = 0; ni < n; ++ni) {
      float* plane = dx + (ni * channels_ + c) * in_hw;
      const float* src_p = dchannel.raw() + ni * in_hw;
      for (std::int64_t p = 0; p < in_hw; ++p) plane[p] = src_p[p];
    }
  }
  return grad_input;
}

}  // namespace nnr::nn
