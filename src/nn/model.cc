#include "nn/model.h"

#include <algorithm>
#include <cassert>

namespace nnr::nn {

using tensor::Tensor;

Tensor Model::forward(const Tensor& input, RunContext& ctx) {
  Tensor activation = input;
  for (auto& layer : layers_) {
    activation = layer->forward(activation, ctx);
  }
  return activation;
}

Tensor Model::backward(const Tensor& grad_output, RunContext& ctx) {
  Tensor grad = grad_output;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    grad = (*it)->backward(grad, ctx);
  }
  return grad;
}

std::vector<Param*> Model::params() {
  std::vector<Param*> all;
  for (auto& layer : layers_) {
    for (Param* p : layer->params()) all.push_back(p);
  }
  return all;
}

std::vector<NamedBuffer> Model::buffers() {
  std::vector<NamedBuffer> all;
  for (auto& layer : layers_) {
    for (NamedBuffer b : layer->buffers()) all.push_back(b);
  }
  return all;
}

void Model::zero_grads() {
  for (Param* p : params()) p->grad.fill(0.0F);
}

void Model::init_weights(rng::Generator& init_gen) {
  for (auto& layer : layers_) layer->init_weights(init_gen);
}

std::vector<float> Model::flat_weights() {
  std::vector<float> flat;
  for (Param* p : params()) {
    const auto view = p->value.data();
    flat.insert(flat.end(), view.begin(), view.end());
  }
  return flat;
}

void Model::load_flat_weights(std::span<const float> flat) {
  std::size_t offset = 0;
  for (Param* p : params()) {
    const auto dst = p->value.data();
    assert(offset + dst.size() <= flat.size());
    std::copy_n(flat.begin() + static_cast<std::ptrdiff_t>(offset),
                dst.size(), dst.begin());
    offset += dst.size();
  }
  assert(offset == flat.size());
}

std::int64_t Model::num_params() {
  std::int64_t n = 0;
  for (Param* p : params()) n += p->value.numel();
  return n;
}

}  // namespace nnr::nn
