#include "nn/dropout.h"

#include <cassert>

namespace nnr::nn {

using tensor::Tensor;

Dropout::Dropout(float rate) : rate_(rate) {
  assert(rate >= 0.0F && rate < 1.0F);
}

std::string Dropout::name() const {
  return "Dropout(" + std::to_string(rate_) + ")";
}

Tensor Dropout::forward(const Tensor& input, RunContext& ctx) {
  if (!ctx.training || rate_ == 0.0F) {
    mask_ = Tensor();
    return input;
  }
  assert(ctx.dropout != nullptr &&
         "training-mode Dropout requires the dropout noise channel");
  const float keep_scale = 1.0F / (1.0F - rate_);
  mask_ = Tensor(input.shape());
  Tensor output(input.shape());
  const float* src = input.raw();
  float* msk = mask_.raw();
  float* dst = output.raw();
  const std::int64_t n = input.numel();
  for (std::int64_t i = 0; i < n; ++i) {
    const float m = ctx.dropout->bernoulli(rate_) ? 0.0F : keep_scale;
    msk[i] = m;
    dst[i] = src[i] * m;
  }
  return output;
}

Tensor Dropout::backward(const Tensor& grad_output, RunContext& /*ctx*/) {
  if (mask_.empty()) return grad_output;  // eval-mode or rate 0: identity
  assert(grad_output.shape() == mask_.shape());
  Tensor grad_input(grad_output.shape());
  const float* dy = grad_output.raw();
  const float* msk = mask_.raw();
  float* dx = grad_input.raw();
  const std::int64_t n = grad_output.numel();
  for (std::int64_t i = 0; i < n; ++i) dx[i] = dy[i] * msk[i];
  return grad_input;
}

}  // namespace nnr::nn
