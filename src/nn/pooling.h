// Spatial pooling layers.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/layer.h"

namespace nnr::nn {

/// 2x2 max pooling with stride 2 (the paper's CNNs downsample exclusively
/// through pooling; Appendix C). Odd trailing rows/columns are dropped.
class MaxPool2x2 final : public Layer {
 public:
  MaxPool2x2() = default;

  [[nodiscard]] tensor::Tensor forward(const tensor::Tensor& input,
                                       RunContext& ctx) override;
  [[nodiscard]] tensor::Tensor backward(const tensor::Tensor& grad_output,
                                        RunContext& ctx) override;
  [[nodiscard]] std::string name() const override { return "MaxPool2x2"; }

 private:
  tensor::Shape input_shape_;
  std::vector<std::int64_t> argmax_;  // flat input index per output element
};

/// 2x2 average pooling with stride 2. The 4-tap window sum is evaluated in a
/// fixed tap order — windows this small have one rounding-relevant order on
/// real hardware too (a single thread reduces a window), so average pooling
/// contributes no implementation noise. Odd trailing rows/columns are
/// dropped, matching MaxPool2x2.
class AvgPool2x2 final : public Layer {
 public:
  AvgPool2x2() = default;

  [[nodiscard]] tensor::Tensor forward(const tensor::Tensor& input,
                                       RunContext& ctx) override;
  [[nodiscard]] tensor::Tensor backward(const tensor::Tensor& grad_output,
                                        RunContext& ctx) override;
  [[nodiscard]] std::string name() const override { return "AvgPool2x2"; }

 private:
  tensor::Shape input_shape_;
};

/// Global average pooling NCHW -> [N, C]. The spatial mean is a reduction and
/// runs under the device reduction policy.
class GlobalAvgPool final : public Layer {
 public:
  GlobalAvgPool() = default;

  [[nodiscard]] tensor::Tensor forward(const tensor::Tensor& input,
                                       RunContext& ctx) override;
  [[nodiscard]] tensor::Tensor backward(const tensor::Tensor& grad_output,
                                        RunContext& ctx) override;
  [[nodiscard]] std::string name() const override { return "GlobalAvgPool"; }

 private:
  tensor::Shape input_shape_;
};

}  // namespace nnr::nn
