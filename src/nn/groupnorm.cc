#include "nn/groupnorm.h"

#include <cassert>
#include <cmath>
#include <span>

#include "tensor/gemm.h"

namespace nnr::nn {

using tensor::Shape;
using tensor::Tensor;

GroupNorm::GroupNorm(std::int64_t channels, std::int64_t groups, float epsilon)
    : channels_(channels),
      groups_(groups),
      epsilon_(epsilon),
      gamma_("gn.gamma", Shape{channels}),
      beta_("gn.beta", Shape{channels}) {
  assert(groups_ > 0 && channels_ % groups_ == 0);
  gamma_.value.fill(1.0F);
  beta_.value.fill(0.0F);
}

std::string GroupNorm::name() const {
  return "GroupNorm(" + std::to_string(channels_) + ", g=" +
         std::to_string(groups_) + ")";
}

Tensor GroupNorm::forward(const Tensor& input, RunContext& ctx) {
  assert(input.shape().rank() == 4 && input.shape()[1] == channels_);
  const std::int64_t n = input.shape()[0];
  const std::int64_t hw = input.shape()[2] * input.shape()[3];
  const std::int64_t cg = channels_ / groups_;  // channels per group
  const std::int64_t m = cg * hw;               // elements per group slab

  xhat_ = Tensor(input.shape());
  inv_std_.assign(static_cast<std::size_t>(n * groups_), 0.0F);

  Tensor output(input.shape());
  const float* x = input.raw();
  const float* gamma = gamma_.value.raw();
  const float* beta = beta_.value.raw();
  float* xh = xhat_.raw();
  float* y = output.raw();

  std::vector<float> sq(static_cast<std::size_t>(m));
  for (std::int64_t ni = 0; ni < n; ++ni) {
    for (std::int64_t g = 0; g < groups_; ++g) {
      // Group slab is contiguous in NCHW: channels [g*cg, (g+1)*cg) of
      // sample ni.
      const std::int64_t base = (ni * channels_ + g * cg) * hw;
      const std::span<const float> slab(x + base, static_cast<std::size_t>(m));

      const float mean =
          tensor::reduce_sum(slab, ctx.hw->reduction_policy()) /
          static_cast<float>(m);
      for (std::int64_t i = 0; i < m; ++i) {
        const float d = slab[static_cast<std::size_t>(i)] - mean;
        sq[static_cast<std::size_t>(i)] = d * d;
      }
      const float var = tensor::reduce_sum(sq, ctx.hw->reduction_policy()) /
                        static_cast<float>(m);
      const float inv_std = 1.0F / std::sqrt(var + epsilon_);
      inv_std_[static_cast<std::size_t>(ni * groups_ + g)] = inv_std;

      for (std::int64_t ci = 0; ci < cg; ++ci) {
        const std::int64_t c = g * cg + ci;
        const std::int64_t off = base + ci * hw;
        for (std::int64_t p = 0; p < hw; ++p) {
          const float normed = (x[off + p] - mean) * inv_std;
          xh[off + p] = normed;
          y[off + p] = gamma[c] * normed + beta[c];
        }
      }
    }
  }
  return output;
}

Tensor GroupNorm::backward(const Tensor& grad_output, RunContext& ctx) {
  assert(grad_output.shape() == xhat_.shape());
  const std::int64_t n = grad_output.shape()[0];
  const std::int64_t hw = grad_output.shape()[2] * grad_output.shape()[3];
  const std::int64_t cg = channels_ / groups_;
  const std::int64_t m = cg * hw;

  Tensor grad_input(grad_output.shape());
  const float* dy = grad_output.raw();
  const float* xh = xhat_.raw();
  const float* gamma = gamma_.value.raw();
  float* dgamma = gamma_.grad.raw();
  float* dbeta = beta_.grad.raw();
  float* dx = grad_input.raw();

  // dgamma[c] = sum_{n,hw} dy * xhat; dbeta[c] = sum_{n,hw} dy. Each
  // (sample, channel) plane reduces under the policy; the small cross-sample
  // combine is sequential (one add per sample, as a grid-level atomic would
  // retire in channel order).
  std::vector<float> plane_buf(static_cast<std::size_t>(hw));
  for (std::int64_t ni = 0; ni < n; ++ni) {
    for (std::int64_t c = 0; c < channels_; ++c) {
      const std::int64_t off = (ni * channels_ + c) * hw;
      for (std::int64_t p = 0; p < hw; ++p) {
        plane_buf[static_cast<std::size_t>(p)] = dy[off + p] * xh[off + p];
      }
      dgamma[c] += tensor::reduce_sum(plane_buf, ctx.hw->reduction_policy());
      dbeta[c] += tensor::reduce_sum(
          std::span<const float>(dy + off, static_cast<std::size_t>(hw)),
          ctx.hw->reduction_policy());
    }
  }

  // dx = inv_std * (dxhat - mean(dxhat) - xhat * mean(dxhat ⊙ xhat)),
  // with means over the group slab and dxhat = dy * gamma[c].
  std::vector<float> dxhat(static_cast<std::size_t>(m));
  std::vector<float> dxhat_xhat(static_cast<std::size_t>(m));
  for (std::int64_t ni = 0; ni < n; ++ni) {
    for (std::int64_t g = 0; g < groups_; ++g) {
      const std::int64_t base = (ni * channels_ + g * cg) * hw;
      for (std::int64_t ci = 0; ci < cg; ++ci) {
        const float gm = gamma[g * cg + ci];
        const std::int64_t off = base + ci * hw;
        for (std::int64_t p = 0; p < hw; ++p) {
          const std::size_t i = static_cast<std::size_t>(ci * hw + p);
          dxhat[i] = dy[off + p] * gm;
          dxhat_xhat[i] = dxhat[i] * xh[off + p];
        }
      }
      const float mean_dxhat =
          tensor::reduce_sum(dxhat, ctx.hw->reduction_policy()) /
          static_cast<float>(m);
      const float mean_dxhat_xhat =
          tensor::reduce_sum(dxhat_xhat, ctx.hw->reduction_policy()) /
          static_cast<float>(m);
      const float inv_std =
          inv_std_[static_cast<std::size_t>(ni * groups_ + g)];
      for (std::int64_t ci = 0; ci < cg; ++ci) {
        const std::int64_t off = base + ci * hw;
        for (std::int64_t p = 0; p < hw; ++p) {
          const std::size_t i = static_cast<std::size_t>(ci * hw + p);
          dx[off + p] = inv_std * (dxhat[i] - mean_dxhat -
                                   xh[off + p] * mean_dxhat_xhat);
        }
      }
    }
  }
  return grad_input;
}

}  // namespace nnr::nn
