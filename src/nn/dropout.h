// Dropout (Srivastava et al., 2014) — the paper's canonical "stochastic
// layer" (Table 1). Draws its mask from the kDropout noise channel; pinning
// that channel's seed freezes the layer across replicates.
#pragma once

#include "nn/layer.h"

namespace nnr::nn {

class Dropout final : public Layer {
 public:
  /// `rate` is the drop probability in [0, 1). Inverted-dropout scaling:
  /// surviving activations are multiplied by 1/(1-rate) so eval is identity.
  explicit Dropout(float rate);

  [[nodiscard]] tensor::Tensor forward(const tensor::Tensor& input,
                                       RunContext& ctx) override;
  [[nodiscard]] tensor::Tensor backward(const tensor::Tensor& grad_output,
                                        RunContext& ctx) override;
  [[nodiscard]] std::string name() const override;

 private:
  float rate_;
  tensor::Tensor mask_;  // keep-scale per element (0 or 1/(1-rate))
};

}  // namespace nnr::nn
