// GroupNorm (Wu & He 2018): per-sample, per-group normalization.
//
// The ablation-relevant contrast with BatchNorm2D: GroupNorm's statistics
// are computed within a single sample, so they do not couple replicas
// through batch composition — data-order noise cannot enter through the
// normalizer. Its reductions (group mean/variance) still run under the
// device reduction policy, so scheduler noise applies as usual. The
// normalization ablation bench compares BN / GN / no-norm variants of the
// SmallCNN to separate "normalization stabilizes optimization" from
// "batch statistics inject order sensitivity" (paper Fig. 2 shows the
// combined effect only).
#pragma once

#include <cstdint>
#include <vector>

#include "nn/layer.h"

namespace nnr::nn {

class GroupNorm final : public Layer {
 public:
  /// `channels` must be divisible by `groups`. groups == channels gives
  /// InstanceNorm; groups == 1 gives LayerNorm over C*H*W.
  GroupNorm(std::int64_t channels, std::int64_t groups, float epsilon = 1e-5F);

  [[nodiscard]] tensor::Tensor forward(const tensor::Tensor& input,
                                       RunContext& ctx) override;
  [[nodiscard]] tensor::Tensor backward(const tensor::Tensor& grad_output,
                                        RunContext& ctx) override;
  [[nodiscard]] std::vector<Param*> params() override {
    return {&gamma_, &beta_};
  }
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] std::int64_t groups() const noexcept { return groups_; }

 private:
  std::int64_t channels_;
  std::int64_t groups_;
  float epsilon_;

  Param gamma_;  // [C], init 1
  Param beta_;   // [C], init 0

  // Backward caches.
  tensor::Tensor xhat_;          // normalized input
  std::vector<float> inv_std_;   // [N * groups]
};

}  // namespace nnr::nn
