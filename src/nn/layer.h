// Layer interface for the training stack.
//
// Layers are stateful (they own parameters and per-batch caches) and are
// driven by a RunContext that carries the simulated device, the training
// flag, and the dropout noise channel. All reductions a layer performs must
// go through the context's kernel policies — this is the invariant that makes
// the IMPL noise model faithful (and is checked by the determinism-contract
// tests).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "hw/execution_context.h"
#include "rng/generator.h"
#include "tensor/tensor.h"
#include "tensor/workspace.h"

namespace nnr::nn {

/// A trainable parameter: value and accumulated gradient, same shape.
struct Param {
  std::string name;
  tensor::Tensor value;
  tensor::Tensor grad;

  Param(std::string param_name, tensor::Shape shape)
      : name(std::move(param_name)), value(shape), grad(shape) {}
};

/// A named, non-trainable tensor that persists across batches and must be
/// serialized with the model (checkpointing).
struct NamedBuffer {
  std::string name;
  tensor::Tensor* value = nullptr;
};

/// Per-step execution environment threaded through forward/backward.
struct RunContext {
  hw::ExecutionContext* hw = nullptr;  // never null during execution
  bool training = false;
  rng::Generator* dropout = nullptr;  // required by stochastic layers when training
  tensor::Workspace* workspace = nullptr;  // scratch arena; optional

  /// The run's scratch arena, or `fallback` when the caller did not supply
  /// one (layers keep a private arena so scratch reuse never depends on
  /// context plumbing).
  [[nodiscard]] tensor::Workspace& scratch_arena(
      tensor::Workspace& fallback) noexcept {
    return workspace != nullptr ? *workspace : fallback;
  }
};

class Layer {
 public:
  virtual ~Layer() = default;

  Layer(const Layer&) = delete;
  Layer& operator=(const Layer&) = delete;

  /// Computes the layer output; caches whatever backward() needs.
  [[nodiscard]] virtual tensor::Tensor forward(const tensor::Tensor& input,
                                               RunContext& ctx) = 0;

  /// Consumes d(loss)/d(output), accumulates parameter gradients, and
  /// returns d(loss)/d(input). Must be called after forward() on the same
  /// batch.
  [[nodiscard]] virtual tensor::Tensor backward(const tensor::Tensor& grad_output,
                                                RunContext& ctx) = 0;

  /// Trainable parameters (possibly empty). Pointers remain valid for the
  /// lifetime of the layer.
  [[nodiscard]] virtual std::vector<Param*> params() { return {}; }

  /// Non-trainable persistent state a checkpoint must capture (e.g. the
  /// batch-norm running statistics). Pointers remain valid for the lifetime
  /// of the layer. Composite layers recurse in the same fixed child order as
  /// params().
  [[nodiscard]] virtual std::vector<NamedBuffer> buffers() { return {}; }

  /// Draws initial parameter values from the init noise channel. Layers
  /// without random initialization (BN, activations, pooling) keep their
  /// constant defaults. Composite layers must recurse in a fixed child order
  /// so the init stream is consumed identically across runs.
  virtual void init_weights(rng::Generator& /*init_gen*/) {}

  [[nodiscard]] virtual std::string name() const = 0;

 protected:
  Layer() = default;
};

using LayerPtr = std::unique_ptr<Layer>;

}  // namespace nnr::nn
