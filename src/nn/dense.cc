#include "nn/dense.h"

#include <cassert>

#include "nn/init.h"
#include "tensor/ops.h"
#include "tensor/gemm.h"

namespace nnr::nn {

using tensor::Shape;
using tensor::Tensor;

Dense::Dense(std::int64_t in_features, std::int64_t out_features)
    : in_features_(in_features),
      out_features_(out_features),
      weight_("dense.weight", Shape{out_features, in_features}),
      bias_("dense.bias", Shape{out_features}) {}

void Dense::init_weights(rng::Generator& init_gen) {
  glorot_uniform(init_gen, weight_.value, in_features_, out_features_);
  bias_.value.fill(0.0F);
}

std::string Dense::name() const {
  return "Dense(" + std::to_string(in_features_) + "->" +
         std::to_string(out_features_) + ")";
}

Tensor Dense::forward(const Tensor& input, RunContext& ctx) {
  assert(input.shape().rank() == 2 && input.shape()[1] == in_features_);
  input_cache_ = input;
  const std::int64_t n = input.shape()[0];

  Tensor output(Shape{n, out_features_});
  tensor::gemm_nt(input, weight_.value, output, ctx.hw->matmul_policy());
  float* out = output.raw();
  const float* b = bias_.value.raw();
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j < out_features_; ++j) {
      out[i * out_features_ + j] += b[j];
    }
  }
  return output;
}

Tensor Dense::backward(const Tensor& grad_output, RunContext& ctx) {
  tensor::Workspace& ws = ctx.scratch_arena(fallback_ws_);
  const std::int64_t n = input_cache_.shape()[0];
  assert(grad_output.shape() == (Shape{n, out_features_}));

  // dW[o, i] = sum_n dy[n, o] * x[n, i] — contraction over the batch axis.
  Tensor& dy_t = ws.scratch(this, 0, Shape{out_features_, n});
  tensor::transpose(grad_output, dy_t);
  {
    Tensor& x_t = ws.scratch(this, 1, Shape{in_features_, n});
    tensor::transpose(input_cache_, x_t);
    Tensor& dw = ws.scratch(this, 2, Shape{out_features_, in_features_});
    tensor::gemm_nt(dy_t, x_t, dw, ctx.hw->matmul_policy());
    tensor::axpy(1.0F, dw.data(), weight_.grad.data());
  }

  // db[o] = sum_n dy[n, o]
  {
    std::vector<float> db(static_cast<std::size_t>(out_features_));
    tensor::reduce_rows(dy_t, db, ctx.hw->reduction_policy());
    tensor::axpy(1.0F, db, bias_.grad.data());
  }

  // dx[n, i] = sum_o dy[n, o] * W[o, i]
  Tensor& w_t = ws.scratch(this, 3, Shape{in_features_, out_features_});
  tensor::transpose(weight_.value, w_t);
  Tensor grad_input(Shape{n, in_features_});
  tensor::gemm_nt(grad_output, w_t, grad_input, ctx.hw->matmul_policy());
  return grad_input;
}

}  // namespace nnr::nn
