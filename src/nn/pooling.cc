#include "nn/pooling.h"

#include <cassert>

#include "tensor/gemm.h"

namespace nnr::nn {

using tensor::Shape;
using tensor::Tensor;

Tensor MaxPool2x2::forward(const Tensor& input, RunContext& /*ctx*/) {
  assert(input.shape().rank() == 4);
  input_shape_ = input.shape();
  const std::int64_t n = input.shape()[0];
  const std::int64_t c = input.shape()[1];
  const std::int64_t h = input.shape()[2];
  const std::int64_t w = input.shape()[3];
  const std::int64_t oh = h / 2;
  const std::int64_t ow = w / 2;

  Tensor output(Shape{n, c, oh, ow});
  argmax_.assign(static_cast<std::size_t>(output.numel()), 0);
  const float* src = input.raw();
  float* dst = output.raw();
  std::int64_t out_idx = 0;
  for (std::int64_t ni = 0; ni < n; ++ni) {
    for (std::int64_t ci = 0; ci < c; ++ci) {
      const std::int64_t plane = (ni * c + ci) * h * w;
      for (std::int64_t oy = 0; oy < oh; ++oy) {
        for (std::int64_t ox = 0; ox < ow; ++ox, ++out_idx) {
          const std::int64_t base = plane + (2 * oy) * w + 2 * ox;
          std::int64_t best = base;
          float best_val = src[base];
          const std::int64_t candidates[3] = {base + 1, base + w, base + w + 1};
          for (std::int64_t cand : candidates) {
            if (src[cand] > best_val) {
              best_val = src[cand];
              best = cand;
            }
          }
          dst[out_idx] = best_val;
          argmax_[static_cast<std::size_t>(out_idx)] = best;
        }
      }
    }
  }
  return output;
}

Tensor MaxPool2x2::backward(const Tensor& grad_output, RunContext& /*ctx*/) {
  Tensor grad_input(input_shape_);
  grad_input.fill(0.0F);
  const float* dy = grad_output.raw();
  float* dx = grad_input.raw();
  for (std::size_t i = 0; i < argmax_.size(); ++i) {
    dx[argmax_[i]] += dy[i];
  }
  return grad_input;
}

Tensor AvgPool2x2::forward(const Tensor& input, RunContext& /*ctx*/) {
  assert(input.shape().rank() == 4);
  input_shape_ = input.shape();
  const std::int64_t n = input.shape()[0];
  const std::int64_t c = input.shape()[1];
  const std::int64_t h = input.shape()[2];
  const std::int64_t w = input.shape()[3];
  const std::int64_t oh = h / 2;
  const std::int64_t ow = w / 2;

  Tensor output(Shape{n, c, oh, ow});
  const float* src = input.raw();
  float* dst = output.raw();
  std::int64_t out_idx = 0;
  for (std::int64_t ni = 0; ni < n; ++ni) {
    for (std::int64_t ci = 0; ci < c; ++ci) {
      const std::int64_t plane = (ni * c + ci) * h * w;
      for (std::int64_t oy = 0; oy < oh; ++oy) {
        for (std::int64_t ox = 0; ox < ow; ++ox, ++out_idx) {
          const std::int64_t base = plane + (2 * oy) * w + 2 * ox;
          // Fixed tap order: row-major within the window.
          dst[out_idx] =
              (src[base] + src[base + 1] + src[base + w] + src[base + w + 1]) *
              0.25F;
        }
      }
    }
  }
  return output;
}

Tensor AvgPool2x2::backward(const Tensor& grad_output, RunContext& /*ctx*/) {
  const std::int64_t n = input_shape_[0];
  const std::int64_t c = input_shape_[1];
  const std::int64_t h = input_shape_[2];
  const std::int64_t w = input_shape_[3];
  const std::int64_t oh = h / 2;
  const std::int64_t ow = w / 2;
  assert(grad_output.shape() == (Shape{n, c, oh, ow}));

  Tensor grad_input(input_shape_);
  grad_input.fill(0.0F);
  const float* dy = grad_output.raw();
  float* dx = grad_input.raw();
  std::int64_t out_idx = 0;
  for (std::int64_t ni = 0; ni < n; ++ni) {
    for (std::int64_t ci = 0; ci < c; ++ci) {
      const std::int64_t plane = (ni * c + ci) * h * w;
      for (std::int64_t oy = 0; oy < oh; ++oy) {
        for (std::int64_t ox = 0; ox < ow; ++ox, ++out_idx) {
          const std::int64_t base = plane + (2 * oy) * w + 2 * ox;
          const float g = dy[out_idx] * 0.25F;
          dx[base] += g;
          dx[base + 1] += g;
          dx[base + w] += g;
          dx[base + w + 1] += g;
        }
      }
    }
  }
  return grad_input;
}

Tensor GlobalAvgPool::forward(const Tensor& input, RunContext& ctx) {
  assert(input.shape().rank() == 4);
  input_shape_ = input.shape();
  const std::int64_t n = input.shape()[0];
  const std::int64_t c = input.shape()[1];
  const std::int64_t hw = input.shape()[2] * input.shape()[3];

  // NCHW planes are contiguous: view as [N*C, HW] and reduce rows.
  Tensor view(Shape{n * c, hw}, std::vector<float>(input.data().begin(),
                                                   input.data().end()));
  std::vector<float> sums(static_cast<std::size_t>(n * c));
  tensor::reduce_rows(view, sums, ctx.hw->reduction_policy());

  Tensor output(Shape{n, c});
  const float inv = 1.0F / static_cast<float>(hw);
  for (std::int64_t i = 0; i < n * c; ++i) {
    output.at(i) = sums[static_cast<std::size_t>(i)] * inv;
  }
  return output;
}

Tensor GlobalAvgPool::backward(const Tensor& grad_output, RunContext& /*ctx*/) {
  const std::int64_t n = input_shape_[0];
  const std::int64_t c = input_shape_[1];
  const std::int64_t hw = input_shape_[2] * input_shape_[3];
  assert(grad_output.shape() == (Shape{n, c}));

  Tensor grad_input(input_shape_);
  const float* dy = grad_output.raw();
  float* dx = grad_input.raw();
  const float inv = 1.0F / static_cast<float>(hw);
  for (std::int64_t i = 0; i < n * c; ++i) {
    const float g = dy[i] * inv;
    for (std::int64_t p = 0; p < hw; ++p) dx[i * hw + p] = g;
  }
  return grad_input;
}

}  // namespace nnr::nn
