#include "nn/init.h"

#include <cassert>
#include <cmath>

namespace nnr::nn {

void glorot_uniform(rng::Generator& gen, tensor::Tensor& weights,
                    std::int64_t fan_in, std::int64_t fan_out) {
  assert(fan_in > 0 && fan_out > 0);
  const float limit =
      std::sqrt(6.0F / static_cast<float>(fan_in + fan_out));
  for (float& w : weights.data()) w = gen.uniform(-limit, limit);
}

void he_normal(rng::Generator& gen, tensor::Tensor& weights,
               std::int64_t fan_in) {
  assert(fan_in > 0);
  const float stddev = std::sqrt(2.0F / static_cast<float>(fan_in));
  for (float& w : weights.data()) w = gen.normal(0.0F, stddev);
}

}  // namespace nnr::nn
