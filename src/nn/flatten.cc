#include "nn/flatten.h"

#include <cassert>

namespace nnr::nn {

using tensor::Shape;
using tensor::Tensor;

Tensor Flatten::forward(const Tensor& input, RunContext& /*ctx*/) {
  assert(input.shape().rank() == 4);
  input_shape_ = input.shape();
  Tensor output = input;
  output.reshape(Shape{input_shape_[0],
                       input_shape_[1] * input_shape_[2] * input_shape_[3]});
  return output;
}

Tensor Flatten::backward(const Tensor& grad_output, RunContext& /*ctx*/) {
  Tensor grad_input = grad_output;
  grad_input.reshape(input_shape_);
  return grad_input;
}

}  // namespace nnr::nn
