#include "nn/residual.h"

#include <cassert>

#include "tensor/ops.h"

namespace nnr::nn {

using tensor::Tensor;

BasicBlock::BasicBlock(std::int64_t in_channels, std::int64_t out_channels,
                       std::int64_t stride)
    : conv1_(in_channels, out_channels, 3, stride),
      bn1_(out_channels),
      conv2_(out_channels, out_channels, 3, 1),
      bn2_(out_channels) {
  if (stride != 1 || in_channels != out_channels) {
    proj_ = std::make_unique<Conv2D>(in_channels, out_channels, 1, stride, 0);
    proj_bn_ = std::make_unique<BatchNorm2D>(out_channels);
  }
}

std::string BasicBlock::name() const { return "BasicBlock"; }

void BasicBlock::init_weights(rng::Generator& init_gen) {
  conv1_.init_weights(init_gen);
  conv2_.init_weights(init_gen);
  if (proj_) proj_->init_weights(init_gen);
}

std::vector<Param*> BasicBlock::params() {
  std::vector<Param*> all;
  auto append = [&all](Layer& layer) {
    for (Param* p : layer.params()) all.push_back(p);
  };
  append(conv1_);
  append(bn1_);
  append(conv2_);
  append(bn2_);
  if (proj_) {
    append(*proj_);
    append(*proj_bn_);
  }
  return all;
}

std::vector<NamedBuffer> BasicBlock::buffers() {
  std::vector<NamedBuffer> all;
  auto append = [&all](Layer& layer) {
    for (NamedBuffer b : layer.buffers()) all.push_back(b);
  };
  append(bn1_);
  append(bn2_);
  if (proj_bn_) append(*proj_bn_);
  return all;
}

Tensor BasicBlock::forward(const Tensor& input, RunContext& ctx) {
  Tensor main = conv1_.forward(input, ctx);
  main = bn1_.forward(main, ctx);
  main = relu1_.forward(main, ctx);
  main = conv2_.forward(main, ctx);
  main = bn2_.forward(main, ctx);

  Tensor skip = input;
  if (proj_) {
    skip = proj_->forward(input, ctx);
    skip = proj_bn_->forward(skip, ctx);
  }
  assert(main.shape() == skip.shape());
  tensor::axpy(1.0F, skip.data(), main.data());
  return relu_out_.forward(main, ctx);
}

Tensor BasicBlock::backward(const Tensor& grad_output, RunContext& ctx) {
  Tensor grad_sum = relu_out_.backward(grad_output, ctx);

  // Skip path.
  Tensor grad_skip = grad_sum;
  if (proj_) {
    grad_skip = proj_bn_->backward(grad_skip, ctx);
    grad_skip = proj_->backward(grad_skip, ctx);
  }

  // Main path.
  Tensor grad = bn2_.backward(grad_sum, ctx);
  grad = conv2_.backward(grad, ctx);
  grad = relu1_.backward(grad, ctx);
  grad = bn1_.backward(grad, ctx);
  grad = conv1_.backward(grad, ctx);

  tensor::axpy(1.0F, grad_skip.data(), grad.data());
  return grad;
}

BottleneckBlock::BottleneckBlock(std::int64_t in_channels,
                                 std::int64_t mid_channels,
                                 std::int64_t expansion, std::int64_t stride)
    : conv1_(in_channels, mid_channels, 1, 1, 0),
      bn1_(mid_channels),
      conv2_(mid_channels, mid_channels, 3, stride),
      bn2_(mid_channels),
      conv3_(mid_channels, mid_channels * expansion, 1, 1, 0),
      bn3_(mid_channels * expansion) {
  const std::int64_t out_channels = mid_channels * expansion;
  if (stride != 1 || in_channels != out_channels) {
    proj_ = std::make_unique<Conv2D>(in_channels, out_channels, 1, stride, 0);
    proj_bn_ = std::make_unique<BatchNorm2D>(out_channels);
  }
}

std::string BottleneckBlock::name() const { return "BottleneckBlock"; }

void BottleneckBlock::init_weights(rng::Generator& init_gen) {
  conv1_.init_weights(init_gen);
  conv2_.init_weights(init_gen);
  conv3_.init_weights(init_gen);
  if (proj_) proj_->init_weights(init_gen);
}

std::vector<Param*> BottleneckBlock::params() {
  std::vector<Param*> all;
  auto append = [&all](Layer& layer) {
    for (Param* p : layer.params()) all.push_back(p);
  };
  append(conv1_);
  append(bn1_);
  append(conv2_);
  append(bn2_);
  append(conv3_);
  append(bn3_);
  if (proj_) {
    append(*proj_);
    append(*proj_bn_);
  }
  return all;
}

std::vector<NamedBuffer> BottleneckBlock::buffers() {
  std::vector<NamedBuffer> all;
  auto append = [&all](Layer& layer) {
    for (NamedBuffer b : layer.buffers()) all.push_back(b);
  };
  append(bn1_);
  append(bn2_);
  append(bn3_);
  if (proj_bn_) append(*proj_bn_);
  return all;
}

Tensor BottleneckBlock::forward(const Tensor& input, RunContext& ctx) {
  Tensor main = conv1_.forward(input, ctx);
  main = bn1_.forward(main, ctx);
  main = relu1_.forward(main, ctx);
  main = conv2_.forward(main, ctx);
  main = bn2_.forward(main, ctx);
  main = relu2_.forward(main, ctx);
  main = conv3_.forward(main, ctx);
  main = bn3_.forward(main, ctx);

  Tensor skip = input;
  if (proj_) {
    skip = proj_->forward(input, ctx);
    skip = proj_bn_->forward(skip, ctx);
  }
  assert(main.shape() == skip.shape());
  tensor::axpy(1.0F, skip.data(), main.data());
  return relu_out_.forward(main, ctx);
}

Tensor BottleneckBlock::backward(const Tensor& grad_output, RunContext& ctx) {
  Tensor grad_sum = relu_out_.backward(grad_output, ctx);

  Tensor grad_skip = grad_sum;
  if (proj_) {
    grad_skip = proj_bn_->backward(grad_skip, ctx);
    grad_skip = proj_->backward(grad_skip, ctx);
  }

  Tensor grad = bn3_.backward(grad_sum, ctx);
  grad = conv3_.backward(grad, ctx);
  grad = relu2_.backward(grad, ctx);
  grad = bn2_.backward(grad, ctx);
  grad = conv2_.backward(grad, ctx);
  grad = relu1_.backward(grad, ctx);
  grad = bn1_.backward(grad, ctx);
  grad = conv1_.backward(grad, ctx);

  tensor::axpy(1.0F, grad_skip.data(), grad.data());
  return grad;
}

}  // namespace nnr::nn
