// Residual blocks (He et al., 2016) for the scaled ResNet-18/50 models.
#pragma once

#include <cstdint>
#include <memory>

#include "nn/activations.h"
#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/layer.h"

namespace nnr::nn {

/// Basic residual block: conv3x3-BN-ReLU-conv3x3-BN + identity/projection
/// skip, followed by ReLU. A 1x1 projection (with BN) is inserted when the
/// channel count or stride changes.
class BasicBlock final : public Layer {
 public:
  BasicBlock(std::int64_t in_channels, std::int64_t out_channels,
             std::int64_t stride);

  [[nodiscard]] tensor::Tensor forward(const tensor::Tensor& input,
                                       RunContext& ctx) override;
  [[nodiscard]] tensor::Tensor backward(const tensor::Tensor& grad_output,
                                        RunContext& ctx) override;
  [[nodiscard]] std::vector<Param*> params() override;
  [[nodiscard]] std::vector<NamedBuffer> buffers() override;
  void init_weights(rng::Generator& init_gen) override;
  [[nodiscard]] std::string name() const override;

 private:
  Conv2D conv1_;
  BatchNorm2D bn1_;
  ReLU relu1_;
  Conv2D conv2_;
  BatchNorm2D bn2_;
  std::unique_ptr<Conv2D> proj_;      // nullptr when the skip is identity
  std::unique_ptr<BatchNorm2D> proj_bn_;
  ReLU relu_out_;
};

/// Bottleneck residual block (1x1 reduce, 3x3, 1x1 expand) used by the
/// scaled ResNet-50.
class BottleneckBlock final : public Layer {
 public:
  /// `expansion` multiplies `mid_channels` to give the block output width.
  BottleneckBlock(std::int64_t in_channels, std::int64_t mid_channels,
                  std::int64_t expansion, std::int64_t stride);

  [[nodiscard]] tensor::Tensor forward(const tensor::Tensor& input,
                                       RunContext& ctx) override;
  [[nodiscard]] tensor::Tensor backward(const tensor::Tensor& grad_output,
                                        RunContext& ctx) override;
  [[nodiscard]] std::vector<Param*> params() override;
  [[nodiscard]] std::vector<NamedBuffer> buffers() override;
  void init_weights(rng::Generator& init_gen) override;
  [[nodiscard]] std::string name() const override;

 private:
  Conv2D conv1_;
  BatchNorm2D bn1_;
  ReLU relu1_;
  Conv2D conv2_;
  BatchNorm2D bn2_;
  ReLU relu2_;
  Conv2D conv3_;
  BatchNorm2D bn3_;
  std::unique_ptr<Conv2D> proj_;
  std::unique_ptr<BatchNorm2D> proj_bn_;
  ReLU relu_out_;
};

}  // namespace nnr::nn
