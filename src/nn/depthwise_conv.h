// DepthwiseConv2D: one k×k filter per channel (MobileNet's separable-conv
// building block; Howard et al. 2017, profiled by the paper in Fig. 8a).
//
// Each channel is lowered independently to im2col + policy-driven GEMM, so
// the accumulation-ordering noise model applies per channel exactly as it
// does to full convolutions. Depthwise kernels contract over only k*k taps
// per output pixel — far fewer addends than a dense conv's C*k*k — which is
// one of the reasons MobileNet shows the smallest deterministic-mode
// overhead in the paper (101% relative GPU time): there is little reduction
// parallelism to restrict.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/layer.h"
#include "tensor/im2col.h"

namespace nnr::nn {

class DepthwiseConv2D final : public Layer {
 public:
  /// Square kernels; `pad` defaults to "same" padding for stride 1
  /// (pad = k/2) when negative.
  explicit DepthwiseConv2D(std::int64_t channels, std::int64_t kernel = 3,
                           std::int64_t stride = 1, std::int64_t pad = -1);

  /// He-normal weight init (fan-in = k*k) from the init channel; zero bias.
  void init_weights(rng::Generator& init_gen) override;

  [[nodiscard]] tensor::Tensor forward(const tensor::Tensor& input,
                                       RunContext& ctx) override;
  [[nodiscard]] tensor::Tensor backward(const tensor::Tensor& grad_output,
                                        RunContext& ctx) override;
  [[nodiscard]] std::vector<Param*> params() override {
    return {&weight_, &bias_};
  }
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] std::int64_t kernel() const noexcept { return kernel_; }

 private:
  std::int64_t channels_;
  std::int64_t kernel_;
  std::int64_t stride_;
  std::int64_t pad_;

  Param weight_;  // [C, k*k]
  Param bias_;    // [C]

  // Per-batch caches for backward: one patch matrix per channel.
  tensor::ConvGeometry geom_{};  // single-channel geometry
  std::vector<tensor::Tensor> cols_;  // [C] of [P, k*k]
};

}  // namespace nnr::nn
