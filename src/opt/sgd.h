// SGD with momentum — the paper's optimizer for every experiment
// (Appendix B: momentum 0.9 for ImageNet, plain step-decay SGD elsewhere).
//
// The parameter update x += -lr * v is elementwise: the optimizer itself
// introduces no reduction and therefore no implementation noise. All noise
// reaches the weights through the gradients.
#pragma once

#include <vector>

#include "opt/optimizer.h"

namespace nnr::opt {

class Sgd final : public Optimizer {
 public:
  explicit Sgd(std::vector<nn::Param*> params, float momentum = 0.0F,
               float weight_decay = 0.0F);

  /// Applies one update with the given learning rate, then leaves gradients
  /// untouched (callers zero them per step via Model::zero_grads()).
  void step(float learning_rate) override;

  [[nodiscard]] float momentum() const noexcept { return momentum_; }
  [[nodiscard]] float weight_decay() const noexcept { return weight_decay_; }

  [[nodiscard]] std::vector<std::pair<std::string, std::vector<float>*>>
  mutable_state() override;

 private:
  float momentum_;
  float weight_decay_;
  std::vector<std::vector<float>> velocity_;  // parallel to params_
};

}  // namespace nnr::opt
