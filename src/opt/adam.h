// Adam / AdamW (Kingma & Ba 2015; Loshchilov & Hutter 2019).
//
// Not used by the paper's recipes (Appendix B is SGD throughout) but
// provided so downstream users can measure how adaptive optimizers interact
// with tooling noise: Adam's per-weight second-moment normalization rescales
// gradient perturbations, which changes how IMPL noise propagates into the
// weight trajectory (see bench/ablation_algo_channels for the harness hook).
#pragma once

#include <vector>

#include "opt/optimizer.h"

namespace nnr::opt {

struct AdamConfig {
  float beta1 = 0.9F;
  float beta2 = 0.999F;
  float epsilon = 1e-8F;
  /// L2 penalty folded into the gradient (classic Adam). Mutually exclusive
  /// with decoupled_weight_decay.
  float weight_decay = 0.0F;
  /// AdamW: decay applied directly to weights, not through the moments.
  float decoupled_weight_decay = 0.0F;
};

class Adam final : public Optimizer {
 public:
  Adam(std::vector<nn::Param*> params, AdamConfig config = {});

  void step(float learning_rate) override;

  [[nodiscard]] const AdamConfig& config() const noexcept { return config_; }

  [[nodiscard]] std::vector<std::pair<std::string, std::vector<float>*>>
  mutable_state() override;

 private:
  AdamConfig config_;
  std::vector<std::vector<float>> m_;  // first moment, parallel to params_
  std::vector<std::vector<float>> v_;  // second moment
};

}  // namespace nnr::opt
