// Optimizer interface shared by SGD / Adam / RMSProp.
//
// Optimizers in this library are deliberately *elementwise*: the update rule
// for weight j reads only grad[j] and per-weight state. They perform no
// cross-element reduction, so the optimizer itself injects no implementation
// noise — every bit of IMPL divergence reaches the weights through the
// gradients computed by the kernel policies. (Gradient clipping, which does
// reduce, lives in clip.h and documents its ordering contract there.)
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "nn/layer.h"

namespace nnr::opt {

class Optimizer {
 public:
  virtual ~Optimizer() = default;

  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;

  /// Applies one update with the given learning rate. Gradients are left
  /// untouched; callers zero them per step via Model::zero_grads().
  virtual void step(float learning_rate) = 0;

  /// Number of updates applied so far (drives Adam bias correction).
  [[nodiscard]] std::int64_t steps_taken() const noexcept { return steps_; }

  /// Restores the step counter (checkpoint load). State slots are restored
  /// separately through mutable_state().
  void set_steps_taken(std::int64_t steps) noexcept { steps_ = steps; }

  /// Named persistent state slots (momentum velocities, Adam moments),
  /// ordered deterministically. Serializers write/read these verbatim so a
  /// resumed optimizer continues bitwise-identically. Pointers remain valid
  /// for the optimizer's lifetime; slot sizes must not be changed.
  [[nodiscard]] virtual std::vector<
      std::pair<std::string, std::vector<float>*>>
  mutable_state() {
    return {};
  }

  [[nodiscard]] const std::vector<nn::Param*>& params() const noexcept {
    return params_;
  }

 protected:
  explicit Optimizer(std::vector<nn::Param*> params)
      : params_(std::move(params)) {}

  std::vector<nn::Param*> params_;
  std::int64_t steps_ = 0;
};

}  // namespace nnr::opt
