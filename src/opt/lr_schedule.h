// Learning-rate schedules used by the paper's training recipes (Appendix B):
//   - step decay (/10 every k epochs) for the CIFAR and CelebA recipes,
//   - warmup + cosine decay for the ImageNet recipe.
#pragma once

#include <cmath>
#include <cstdint>
#include <memory>
#include <numbers>

namespace nnr::opt {

class LrSchedule {
 public:
  virtual ~LrSchedule() = default;
  /// Learning rate for the given (0-based) epoch.
  [[nodiscard]] virtual float at_epoch(std::int64_t epoch) const = 0;
};

/// base_lr * decay_factor^(epoch / decay_every).
class StepDecay final : public LrSchedule {
 public:
  StepDecay(float base_lr, std::int64_t decay_every, float decay_factor = 0.1F)
      : base_lr_(base_lr),
        decay_every_(decay_every),
        decay_factor_(decay_factor) {}

  [[nodiscard]] float at_epoch(std::int64_t epoch) const override {
    float lr = base_lr_;
    for (std::int64_t e = decay_every_; e <= epoch; e += decay_every_) {
      lr *= decay_factor_;
    }
    return lr;
  }

 private:
  float base_lr_;
  std::int64_t decay_every_;
  float decay_factor_;
};

/// Linear warmup over `warmup_epochs`, then cosine decay to zero at
/// `total_epochs` (the paper's ImageNet recipe).
class WarmupCosine final : public LrSchedule {
 public:
  WarmupCosine(float base_lr, std::int64_t warmup_epochs,
               std::int64_t total_epochs)
      : base_lr_(base_lr),
        warmup_epochs_(warmup_epochs),
        total_epochs_(total_epochs) {}

  [[nodiscard]] float at_epoch(std::int64_t epoch) const override {
    if (epoch < warmup_epochs_) {
      // Mid-epoch average of a linear ramp: epoch 0 of a 1-epoch warmup
      // trains at base_lr/2, reaching base_lr when warmup completes.
      return base_lr_ * (static_cast<float>(epoch) + 0.5F) /
             static_cast<float>(warmup_epochs_);
    }
    const float progress =
        static_cast<float>(epoch - warmup_epochs_) /
        static_cast<float>(std::max<std::int64_t>(1, total_epochs_ - warmup_epochs_));
    return base_lr_ * 0.5F *
           (1.0F + std::cos(std::numbers::pi_v<float> * progress));
  }

 private:
  float base_lr_;
  std::int64_t warmup_epochs_;
  std::int64_t total_epochs_;
};

}  // namespace nnr::opt
