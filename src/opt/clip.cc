#include "opt/clip.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace nnr::opt {

double global_grad_norm(const std::vector<nn::Param*>& params) {
  // double accumulation: the norm is a control quantity, not part of the
  // float32 training signal whose rounding the study measures.
  double sum_sq = 0.0;
  for (const nn::Param* p : params) {
    for (const float g : p->grad.data()) {
      sum_sq += static_cast<double>(g) * static_cast<double>(g);
    }
  }
  return std::sqrt(sum_sq);
}

double clip_grad_norm(const std::vector<nn::Param*>& params, float max_norm) {
  assert(max_norm > 0.0F);
  const double norm = global_grad_norm(params);
  if (norm > static_cast<double>(max_norm)) {
    const auto scale = static_cast<float>(static_cast<double>(max_norm) / norm);
    for (nn::Param* p : params) {
      for (float& g : p->grad.data()) g *= scale;
    }
  }
  return norm;
}

void clip_grad_value(const std::vector<nn::Param*>& params, float limit) {
  assert(limit > 0.0F);
  for (nn::Param* p : params) {
    for (float& g : p->grad.data()) g = std::clamp(g, -limit, limit);
  }
}

}  // namespace nnr::opt
