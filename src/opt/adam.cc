#include "opt/adam.h"

#include <cassert>
#include <cmath>

namespace nnr::opt {

Adam::Adam(std::vector<nn::Param*> params, AdamConfig config)
    : Optimizer(std::move(params)), config_(config) {
  assert(config_.beta1 >= 0.0F && config_.beta1 < 1.0F);
  assert(config_.beta2 >= 0.0F && config_.beta2 < 1.0F);
  assert(!(config_.weight_decay > 0.0F &&
           config_.decoupled_weight_decay > 0.0F));
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const nn::Param* p : params_) {
    m_.emplace_back(static_cast<std::size_t>(p->value.numel()), 0.0F);
    v_.emplace_back(static_cast<std::size_t>(p->value.numel()), 0.0F);
  }
}

std::vector<std::pair<std::string, std::vector<float>*>>
Adam::mutable_state() {
  std::vector<std::pair<std::string, std::vector<float>*>> state;
  state.reserve(2 * m_.size());
  for (std::size_t i = 0; i < m_.size(); ++i) {
    state.emplace_back("adam.m." + std::to_string(i), &m_[i]);
    state.emplace_back("adam.v." + std::to_string(i), &v_[i]);
  }
  return state;
}

void Adam::step(float learning_rate) {
  ++steps_;
  const auto t = static_cast<float>(steps_);
  // Bias corrections are scalar and identical for every weight; computing
  // them once keeps the inner loop elementwise.
  const float correction1 = 1.0F - std::pow(config_.beta1, t);
  const float correction2 = 1.0F - std::pow(config_.beta2, t);
  for (std::size_t i = 0; i < params_.size(); ++i) {
    nn::Param& p = *params_[i];
    std::vector<float>& m = m_[i];
    std::vector<float>& v = v_[i];
    const auto grad = p.grad.data();
    auto value = p.value.data();
    for (std::size_t j = 0; j < m.size(); ++j) {
      const float g = grad[j] + config_.weight_decay * value[j];
      m[j] = config_.beta1 * m[j] + (1.0F - config_.beta1) * g;
      v[j] = config_.beta2 * v[j] + (1.0F - config_.beta2) * g * g;
      const float m_hat = m[j] / correction1;
      const float v_hat = v[j] / correction2;
      value[j] -= learning_rate *
                  (m_hat / (std::sqrt(v_hat) + config_.epsilon) +
                   config_.decoupled_weight_decay * value[j]);
    }
  }
}

}  // namespace nnr::opt
