#include "opt/sgd.h"

namespace nnr::opt {

Sgd::Sgd(std::vector<nn::Param*> params, float momentum, float weight_decay)
    : Optimizer(std::move(params)),
      momentum_(momentum),
      weight_decay_(weight_decay) {
  velocity_.reserve(params_.size());
  for (const nn::Param* p : params_) {
    velocity_.emplace_back(static_cast<std::size_t>(p->value.numel()), 0.0F);
  }
}

std::vector<std::pair<std::string, std::vector<float>*>>
Sgd::mutable_state() {
  std::vector<std::pair<std::string, std::vector<float>*>> state;
  state.reserve(velocity_.size());
  for (std::size_t i = 0; i < velocity_.size(); ++i) {
    state.emplace_back("sgd.velocity." + std::to_string(i), &velocity_[i]);
  }
  return state;
}

void Sgd::step(float learning_rate) {
  ++steps_;
  for (std::size_t i = 0; i < params_.size(); ++i) {
    nn::Param& p = *params_[i];
    std::vector<float>& v = velocity_[i];
    const auto grad = p.grad.data();
    auto value = p.value.data();
    if (momentum_ == 0.0F && weight_decay_ == 0.0F) {
      for (std::size_t j = 0; j < v.size(); ++j) {
        value[j] -= learning_rate * grad[j];
      }
    } else {
      for (std::size_t j = 0; j < v.size(); ++j) {
        const float g = grad[j] + weight_decay_ * value[j];
        v[j] = momentum_ * v[j] + g;
        value[j] -= learning_rate * v[j];
      }
    }
  }
}

}  // namespace nnr::opt
