// RMSProp (Tieleman & Hinton 2012), TensorFlow-flavoured: optional momentum
// on top of the RMS-normalized gradient, matching tf.keras.optimizers.RMSprop
// since the paper's experiments run on TF 2.4.1.
#pragma once

#include <vector>

#include "opt/optimizer.h"

namespace nnr::opt {

struct RmsPropConfig {
  float rho = 0.9F;       // moving-average decay of squared gradients
  float momentum = 0.0F;  // momentum on the normalized update
  float epsilon = 1e-7F;  // TF default
  float weight_decay = 0.0F;
};

class RmsProp final : public Optimizer {
 public:
  RmsProp(std::vector<nn::Param*> params, RmsPropConfig config = {});

  void step(float learning_rate) override;

  [[nodiscard]] const RmsPropConfig& config() const noexcept {
    return config_;
  }

  [[nodiscard]] std::vector<std::pair<std::string, std::vector<float>*>>
  mutable_state() override;

 private:
  RmsPropConfig config_;
  std::vector<std::vector<float>> mean_square_;  // parallel to params_
  std::vector<std::vector<float>> velocity_;     // used when momentum > 0
};

}  // namespace nnr::opt
