#include "opt/rmsprop.h"

#include <cassert>
#include <cmath>

namespace nnr::opt {

RmsProp::RmsProp(std::vector<nn::Param*> params, RmsPropConfig config)
    : Optimizer(std::move(params)), config_(config) {
  assert(config_.rho >= 0.0F && config_.rho < 1.0F);
  mean_square_.reserve(params_.size());
  velocity_.reserve(params_.size());
  for (const nn::Param* p : params_) {
    mean_square_.emplace_back(static_cast<std::size_t>(p->value.numel()),
                              0.0F);
    velocity_.emplace_back(static_cast<std::size_t>(p->value.numel()), 0.0F);
  }
}

std::vector<std::pair<std::string, std::vector<float>*>>
RmsProp::mutable_state() {
  std::vector<std::pair<std::string, std::vector<float>*>> state;
  state.reserve(2 * mean_square_.size());
  for (std::size_t i = 0; i < mean_square_.size(); ++i) {
    state.emplace_back("rmsprop.ms." + std::to_string(i), &mean_square_[i]);
    state.emplace_back("rmsprop.vel." + std::to_string(i), &velocity_[i]);
  }
  return state;
}

void RmsProp::step(float learning_rate) {
  ++steps_;
  for (std::size_t i = 0; i < params_.size(); ++i) {
    nn::Param& p = *params_[i];
    std::vector<float>& ms = mean_square_[i];
    std::vector<float>& vel = velocity_[i];
    const auto grad = p.grad.data();
    auto value = p.value.data();
    for (std::size_t j = 0; j < ms.size(); ++j) {
      const float g = grad[j] + config_.weight_decay * value[j];
      ms[j] = config_.rho * ms[j] + (1.0F - config_.rho) * g * g;
      const float update =
          learning_rate * g / (std::sqrt(ms[j]) + config_.epsilon);
      if (config_.momentum > 0.0F) {
        vel[j] = config_.momentum * vel[j] + update;
        value[j] -= vel[j];
      } else {
        value[j] -= update;
      }
    }
  }
}

}  // namespace nnr::opt
