// Gradient clipping utilities.
//
// Global-norm clipping performs the one cross-element reduction in the
// optimizer path. We compute it in a *fixed* parameter-then-index order with
// sequential accumulation, so clipping is bitwise deterministic on every
// device and adds no implementation noise of its own — matching TF, where
// clip_by_global_norm runs as a host-side fused reduction outside the
// autotuned kernel set. (The gradients being clipped still carry whatever
// IMPL noise the backward kernels produced.)
#pragma once

#include <vector>

#include "nn/layer.h"

namespace nnr::opt {

/// L2 norm over the concatenation of all parameter gradients, accumulated
/// sequentially in parameter order.
[[nodiscard]] double global_grad_norm(const std::vector<nn::Param*>& params);

/// Scales all gradients by max_norm / global_norm when the global norm
/// exceeds max_norm. Returns the pre-clip global norm.
double clip_grad_norm(const std::vector<nn::Param*>& params, float max_norm);

/// Clamps every gradient element into [-limit, +limit].
void clip_grad_value(const std::vector<nn::Param*>& params, float limit);

}  // namespace nnr::opt
