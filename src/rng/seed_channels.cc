#include "rng/seed_channels.h"

namespace nnr::rng {
namespace {

std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

std::uint64_t derive_seed(std::uint64_t base_seed, Channel channel,
                          std::uint64_t replicate) noexcept {
  std::uint64_t h = splitmix64(base_seed);
  h = splitmix64(h ^ static_cast<std::uint64_t>(channel));
  h = splitmix64(h ^ (replicate + 0x5555555555555555ull));
  return h;
}

Generator make_channel_generator(std::uint64_t base_seed, Channel channel,
                                 std::uint64_t replicate, bool varying) {
  const std::uint64_t effective_replicate = varying ? replicate : 0;
  return Generator(derive_seed(base_seed, channel, effective_replicate),
                   static_cast<std::uint64_t>(channel));
}

}  // namespace nnr::rng
