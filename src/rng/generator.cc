#include "rng/generator.h"

#include <cassert>
#include <cmath>
#include <numbers>

namespace nnr::rng {

float Generator::uniform() noexcept {
  // Top 24 bits -> float32-exact uniform grid in [0, 1).
  const std::uint32_t bits = engine_() >> 8;
  return static_cast<float>(bits) * 0x1.0p-24F;
}

float Generator::uniform(float lo, float hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Generator::uniform_int(std::uint64_t n) noexcept {
  assert(n > 0);
  // Rejection sampling over 64-bit draws: bias is unmeasurable and the
  // expected number of retries is < 2 for any n.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % n);
  std::uint64_t draw = 0;
  do {
    draw = engine_.next_u64();
  } while (draw >= limit);
  return draw % n;
}

float Generator::normal() noexcept {
  if (have_spare_normal_) {
    have_spare_normal_ = false;
    return spare_normal_;
  }
  // Box-Muller; guard against log(0).
  float u1 = uniform();
  if (u1 < 1e-12F) u1 = 1e-12F;
  const float u2 = uniform();
  const float radius = std::sqrt(-2.0F * std::log(u1));
  const float angle = 2.0F * std::numbers::pi_v<float> * u2;
  spare_normal_ = radius * std::sin(angle);
  have_spare_normal_ = true;
  return radius * std::cos(angle);
}

float Generator::normal(float mean, float stddev) noexcept {
  return mean + stddev * normal();
}

bool Generator::bernoulli(float p) noexcept { return uniform() < p; }

void Generator::permutation(std::span<std::uint32_t> out) noexcept {
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = static_cast<std::uint32_t>(i);
  }
  shuffle(out);
}

std::vector<std::uint32_t> Generator::permutation(std::size_t n) {
  std::vector<std::uint32_t> out(n);
  permutation(std::span<std::uint32_t>(out));
  return out;
}

}  // namespace nnr::rng
