#include "rng/philox.h"

namespace nnr::rng {
namespace {

constexpr std::uint32_t kPhiloxM0 = 0xD2511F53u;
constexpr std::uint32_t kPhiloxM1 = 0xCD9E8D57u;
constexpr std::uint32_t kWeyl0 = 0x9E3779B9u;  // golden ratio
constexpr std::uint32_t kWeyl1 = 0xBB67AE85u;  // sqrt(3) - 1

inline std::uint32_t mulhi(std::uint32_t a, std::uint32_t b) noexcept {
  return static_cast<std::uint32_t>(
      (static_cast<std::uint64_t>(a) * static_cast<std::uint64_t>(b)) >> 32);
}

inline Counter4x32 round_once(Counter4x32 c, Key2x32 k) noexcept {
  const std::uint32_t hi0 = mulhi(kPhiloxM0, c[0]);
  const std::uint32_t lo0 = kPhiloxM0 * c[0];
  const std::uint32_t hi1 = mulhi(kPhiloxM1, c[2]);
  const std::uint32_t lo1 = kPhiloxM1 * c[2];
  return {hi1 ^ c[1] ^ k[0], lo1, hi0 ^ c[3] ^ k[1], lo0};
}

}  // namespace

Counter4x32 philox4x32_10(Counter4x32 ctr, Key2x32 key) noexcept {
  for (int round = 0; round < 10; ++round) {
    ctr = round_once(ctr, key);
    key[0] += kWeyl0;
    key[1] += kWeyl1;
  }
  return ctr;
}

Philox::Philox(std::uint64_t seed, std::uint64_t stream) noexcept
    : key_{static_cast<std::uint32_t>(seed),
           static_cast<std::uint32_t>(seed >> 32)},
      stream_(stream) {}

void Philox::refill() noexcept {
  const Counter4x32 ctr{static_cast<std::uint32_t>(block_index_),
                        static_cast<std::uint32_t>(block_index_ >> 32),
                        static_cast<std::uint32_t>(stream_),
                        static_cast<std::uint32_t>(stream_ >> 32)};
  buffer_ = philox4x32_10(ctr, key_);
  ++block_index_;
  buffered_ = 4;
}

Philox::result_type Philox::operator()() noexcept {
  if (buffered_ == 0) refill();
  return buffer_[4 - buffered_--];
}

std::uint64_t Philox::next_u64() noexcept {
  const std::uint64_t lo = (*this)();
  const std::uint64_t hi = (*this)();
  return lo | (hi << 32);
}

void Philox::skip_blocks(std::uint64_t n_blocks) noexcept {
  block_index_ += n_blocks;
  buffered_ = 0;
}

}  // namespace nnr::rng
