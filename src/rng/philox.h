// Philox4x32-10 counter-based pseudo-random number generator.
//
// Counter-based generators are the standard substrate for reproducible
// randomness in ML systems (used by JAX, TensorFlow, and cuDNN's dropout):
// the i-th random block is a pure function of (key, counter=i), so streams
// can be split, skipped, and replayed without shared mutable state. This
// property is what lets the experiment harness give every noise channel
// (init / shuffle / augment / dropout / scheduler) an independent,
// individually re-seedable stream.
//
// Reference: Salmon et al., "Parallel Random Numbers: As Easy as 1, 2, 3",
// SC'11. This is a faithful implementation of the 10-round Philox-4x32
// bijection; it passes the smoke statistical tests in tests/rng/.
#pragma once

#include <array>
#include <cstdint>

namespace nnr::rng {

/// 128-bit counter / output block for Philox4x32.
using Counter4x32 = std::array<std::uint32_t, 4>;
/// 64-bit key (two 32-bit words).
using Key2x32 = std::array<std::uint32_t, 2>;

/// Applies the 10-round Philox-4x32 bijection to `ctr` under `key`.
/// Pure function: identical inputs always produce identical outputs.
[[nodiscard]] Counter4x32 philox4x32_10(Counter4x32 ctr, Key2x32 key) noexcept;

/// A stateful convenience wrapper that enumerates the Philox stream for a
/// fixed key: block i is philox4x32_10({i_lo, i_hi, stream_lo, stream_hi}, key).
/// Satisfies the C++ UniformRandomBitGenerator concept (32-bit output).
class Philox {
 public:
  using result_type = std::uint32_t;

  /// Constructs the stream identified by (seed, stream). Different stream
  /// ids with the same seed yield statistically independent sequences.
  explicit Philox(std::uint64_t seed, std::uint64_t stream = 0) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return 0xFFFFFFFFu; }

  /// Next 32 random bits.
  result_type operator()() noexcept;

  /// Next 64 random bits.
  [[nodiscard]] std::uint64_t next_u64() noexcept;

  /// Skips ahead `n_blocks` 128-bit blocks in O(1). Discards any buffered
  /// words from the current block.
  void skip_blocks(std::uint64_t n_blocks) noexcept;

  /// The (seed-derived) key of this stream; exposed for test inspection.
  [[nodiscard]] Key2x32 key() const noexcept { return key_; }

 private:
  void refill() noexcept;

  Key2x32 key_;
  std::uint64_t stream_;
  std::uint64_t block_index_ = 0;
  Counter4x32 buffer_{};
  int buffered_ = 0;  // number of unconsumed words remaining in buffer_
};

}  // namespace nnr::rng
