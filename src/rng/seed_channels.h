// Seed-channel management for the variance-isolation study.
//
// The paper's experimental design (§2.2) toggles algorithmic noise (ALGO) and
// implementation noise (IMPL) independently. We realize this with five named
// randomness channels, each backed by an independent Philox stream:
//
//   kInit      - weight initialization                  (ALGO)
//   kShuffle   - epoch shuffling / batch composition    (ALGO)
//   kAugment   - stochastic data augmentation           (ALGO)
//   kDropout   - stochastic layers                      (ALGO)
//   kScheduler - simulated accelerator scheduling order (IMPL)
//
// A NoiseVariant decides, per channel, whether the channel's seed varies with
// the replicate index (noise "on") or is pinned to a fixed value (noise
// "off"/controlled). Deriving streams from (base_seed, channel, replicate)
// with a splitmix-style mixer guarantees channels never alias.
#pragma once

#include <cstdint>

#include "rng/generator.h"

namespace nnr::rng {

enum class Channel : std::uint64_t {
  kInit = 1,
  kShuffle = 2,
  kAugment = 3,
  kDropout = 4,
  kScheduler = 5,
};

/// Mixes (seed, channel, replicate) into a 64-bit stream id with full
/// avalanche (splitmix64 finalizer). Pure function.
[[nodiscard]] std::uint64_t derive_seed(std::uint64_t base_seed,
                                        Channel channel,
                                        std::uint64_t replicate) noexcept;

/// Factory for per-channel generators.
///
/// `varying` selects whether this channel's stream differs across replicates
/// (noise present) or is identical for every replicate (noise controlled).
[[nodiscard]] Generator make_channel_generator(std::uint64_t base_seed,
                                               Channel channel,
                                               std::uint64_t replicate,
                                               bool varying);

}  // namespace nnr::rng
