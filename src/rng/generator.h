// Generator: distribution sampling on top of the Philox stream.
//
// All stochastic operations in the library (weight init, shuffling, data
// augmentation, dropout, scheduler entropy) draw from a Generator so that
// every source of randomness is attributable to exactly one seedable stream.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "rng/philox.h"

namespace nnr::rng {

class Generator {
 public:
  explicit Generator(std::uint64_t seed, std::uint64_t stream = 0) noexcept
      : engine_(seed, stream) {}

  /// Uniform in [0, 1). 24-bit mantissa resolution (exact float32 grid).
  [[nodiscard]] float uniform() noexcept;

  /// Uniform in [lo, hi).
  [[nodiscard]] float uniform(float lo, float hi) noexcept;

  /// Uniform integer in [0, n). Uses rejection sampling — unbiased.
  /// Precondition: n > 0.
  [[nodiscard]] std::uint64_t uniform_int(std::uint64_t n) noexcept;

  /// Standard normal via Box-Muller (deterministic two-draws-per-call form).
  [[nodiscard]] float normal() noexcept;

  /// Normal with the given mean and standard deviation.
  [[nodiscard]] float normal(float mean, float stddev) noexcept;

  /// Bernoulli trial with success probability p.
  [[nodiscard]] bool bernoulli(float p) noexcept;

  /// Fills `out` with a uniformly random permutation of [0, out.size())
  /// using Fisher-Yates.
  void permutation(std::span<std::uint32_t> out) noexcept;

  /// Convenience: returns a random permutation of [0, n).
  [[nodiscard]] std::vector<std::uint32_t> permutation(std::size_t n);

  /// In-place Fisher-Yates shuffle of arbitrary elements.
  template <typename T>
  void shuffle(std::span<T> items) noexcept {
    for (std::size_t i = items.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(uniform_int(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Raw 32 random bits (exposes the underlying stream for tests).
  [[nodiscard]] std::uint32_t next_u32() noexcept { return engine_(); }

 private:
  Philox engine_;
  bool have_spare_normal_ = false;
  float spare_normal_ = 0.0F;
};

}  // namespace nnr::rng
