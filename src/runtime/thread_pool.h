// Persistent host thread pool for data-parallel kernel loops.
//
// The simulated-device kernels (GEMM, im2col, transpose) and the replicate
// fan-out all share one process-wide pool instead of spawning std::threads
// per call. Parallelism is only ever applied across *independent output
// elements* — each output element's floating-point reduction is computed
// start-to-finish by a single thread in a fixed order — so results are
// bitwise identical for every worker count. That invariant is what lets the
// fast path coexist with the paper's noise model: host threading is a pure
// scheduling concern and contributes zero IMPL noise (enforced by the
// thread-count-invariance tests).
//
// Sizing: NNR_THREADS env var; 0 or unset means one worker per hardware
// thread.
#pragma once

#include <cstdint>
#include <functional>

namespace nnr::runtime {

class ThreadPool {
 public:
  /// `threads` is the total concurrency (callers participate in their own
  /// parallel_for). 0 resolves NNR_THREADS, then hardware_concurrency.
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Maximum concurrency of a parallel_for (helper workers + the caller).
  [[nodiscard]] int size() const noexcept;

  /// Runs body(chunk_begin, chunk_end) over a partition of [begin, end) into
  /// chunks of at most `grain` iterations. Chunks are claimed dynamically;
  /// the calling thread participates and the call returns only after every
  /// chunk has finished. Nested calls from inside a pool worker run inline
  /// (serially) — callers never deadlock. `max_workers` (when > 0) caps the
  /// concurrency of this call below the pool size.
  void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                    const std::function<void(std::int64_t, std::int64_t)>& body,
                    int max_workers = 0);

  /// The process-wide pool, created on first use from NNR_THREADS.
  [[nodiscard]] static ThreadPool& global();

  /// Rebuilds the global pool with `threads` total concurrency (0 = env /
  /// hardware default). Test and bench knob; not safe concurrently with
  /// parallel work in flight.
  static void set_global_threads(int threads);

 private:
  struct Impl;
  Impl* impl_;
};

/// NNR_THREADS resolved against hardware_concurrency (always >= 1).
[[nodiscard]] int default_thread_count() noexcept;

}  // namespace nnr::runtime
