// Strict full-string integer parsing, shared by every layer that turns
// user-controlled text (env vars, CLI flags) into an integer knob.
//
// The lax strtol/atoi idioms this replaces had two real failure modes:
// trailing junk silently truncated ("8x" -> 8, "abc" -> 0) and overflow
// silently saturated — both turn a typo into a quietly wrong experiment
// scale. Here a value parses only when the ENTIRE string (after optional
// leading/trailing ASCII whitespace) is one decimal integer that fits in
// int64; anything else is nullopt and the caller decides (fallback for env
// vars, hard error for flags).
//
// Lives in runtime (the dependency-free root library) so both
// runtime::default_thread_count and core::env_int share one parser.
#pragma once

#include <cctype>
#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <optional>

namespace nnr::runtime {

[[nodiscard]] inline std::optional<std::int64_t> parse_int_strict(
    const char* text) noexcept {
  if (text == nullptr) return std::nullopt;
  errno = 0;
  char* end = nullptr;
  const long long parsed = std::strtoll(text, &end, 10);
  if (end == text || errno == ERANGE) return std::nullopt;
  while (std::isspace(static_cast<unsigned char>(*end))) ++end;
  if (*end != '\0') return std::nullopt;
  return static_cast<std::int64_t>(parsed);
}

}  // namespace nnr::runtime
