#include "runtime/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "runtime/parse_int.h"

namespace nnr::runtime {

namespace {

// Set while a thread is executing chunks of some parallel_for; nested
// parallel_for calls from such a thread run inline to keep the pool acyclic.
thread_local bool t_in_parallel_region = false;

}  // namespace

int default_thread_count() noexcept {
  // Same strict rule as core::env_int: a malformed NNR_THREADS ("abc",
  // "8x", overflow) falls back to hardware width instead of truncating.
  const auto v = parse_int_strict(std::getenv("NNR_THREADS"));
  if (v.has_value() && *v > 0) {
    return static_cast<int>(std::min<std::int64_t>(*v, 1 << 16));
  }
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<int>(hc);
}

struct ThreadPool::Impl {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<std::function<void()>> tasks;
  std::vector<std::thread> workers;
  bool stop = false;

  explicit Impl(int helper_count) {
    workers.reserve(static_cast<std::size_t>(helper_count));
    for (int t = 0; t < helper_count; ++t) {
      workers.emplace_back([this] { worker_loop(); });
    }
  }

  ~Impl() {
    {
      std::lock_guard<std::mutex> lock(mu);
      stop = true;
    }
    cv.notify_all();
    for (std::thread& t : workers) t.join();
  }

  void worker_loop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [this] { return stop || !tasks.empty(); });
        if (stop && tasks.empty()) return;
        task = std::move(tasks.front());
        tasks.pop_front();
      }
      task();
    }
  }
};

ThreadPool::ThreadPool(int threads) {
  if (threads <= 0) threads = default_thread_count();
  // `threads` counts the caller, so spawn one fewer helper.
  impl_ = new Impl(std::max(0, threads - 1));
}

ThreadPool::~ThreadPool() { delete impl_; }

int ThreadPool::size() const noexcept {
  return static_cast<int>(impl_->workers.size()) + 1;
}

void ThreadPool::parallel_for(
    std::int64_t begin, std::int64_t end, std::int64_t grain,
    const std::function<void(std::int64_t, std::int64_t)>& body,
    int max_workers) {
  const std::int64_t total = end - begin;
  if (total <= 0) return;
  grain = std::max<std::int64_t>(1, grain);
  const std::int64_t n_chunks = (total + grain - 1) / grain;
  int width = size();
  if (max_workers > 0) width = std::min(width, max_workers);
  width = static_cast<int>(std::min<std::int64_t>(width, n_chunks));
  if (t_in_parallel_region || width <= 1) {
    body(begin, end);
    return;
  }

  // Shared chunk queue: caller + helpers claim chunks with fetch_add. The
  // caller blocks until every helper it enqueued has drained, so capturing
  // locals by reference below is safe.
  struct State {
    std::atomic<std::int64_t> next{0};
    std::atomic<int> helpers_left{0};
    std::mutex done_mu;
    std::condition_variable done_cv;
  };
  auto state = std::make_shared<State>();
  const int helpers = width - 1;
  state->helpers_left.store(helpers, std::memory_order_relaxed);

  auto run_chunks = [state, begin, end, grain, n_chunks, &body] {
    for (;;) {
      const std::int64_t c =
          state->next.fetch_add(1, std::memory_order_relaxed);
      if (c >= n_chunks) break;
      const std::int64_t b = begin + c * grain;
      body(b, std::min(end, b + grain));
    }
  };

  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    for (int h = 0; h < helpers; ++h) {
      impl_->tasks.emplace_back([state, run_chunks] {
        t_in_parallel_region = true;
        run_chunks();
        t_in_parallel_region = false;
        if (state->helpers_left.fetch_sub(1, std::memory_order_acq_rel) == 1) {
          std::lock_guard<std::mutex> done_lock(state->done_mu);
          state->done_cv.notify_all();
        }
      });
    }
  }
  impl_->cv.notify_all();

  t_in_parallel_region = true;
  run_chunks();
  t_in_parallel_region = false;

  std::unique_lock<std::mutex> done_lock(state->done_mu);
  state->done_cv.wait(done_lock, [&state] {
    return state->helpers_left.load(std::memory_order_acquire) == 0;
  });
}

namespace {

std::mutex g_global_mu;
std::unique_ptr<ThreadPool> g_global_pool;

}  // namespace

ThreadPool& ThreadPool::global() {
  std::lock_guard<std::mutex> lock(g_global_mu);
  if (!g_global_pool) g_global_pool = std::make_unique<ThreadPool>();
  return *g_global_pool;
}

void ThreadPool::set_global_threads(int threads) {
  std::lock_guard<std::mutex> lock(g_global_mu);
  g_global_pool = std::make_unique<ThreadPool>(threads);
}

}  // namespace nnr::runtime
