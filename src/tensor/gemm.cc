#include "tensor/gemm.h"

#include <algorithm>
#include <cassert>
#include <vector>

#include "runtime/thread_pool.h"

namespace nnr::tensor {

namespace {

// ---------------------------------------------------------------------------
// Blocked fast path.
//
// The engine mirrors the reference reduction semantics exactly:
//   - k is partitioned into the plan's lane chunks via lane_range (shared
//     with accumulate.cc),
//   - within a chunk each output element is accumulated in unrolled_dot's
//     order: four sub-accumulators over k-offsets {0,1,2,3} mod 4 combined
//     as (acc0 + acc1) + (acc2 + acc3), then a sequential tail,
//   - lane partials are combined by ReductionPlan::combine_partials.
// What changes is only the *schedule*: a kMr x kNr register tile shares every
// A load across kNr columns and every packed-B load across kMr rows, and
// host threads split the output rows. Neither affects any per-element
// floating-point order, so the result is bitwise equal to the reference
// loop for the deterministic accumulation orders.
// ---------------------------------------------------------------------------

constexpr std::int64_t kMr = 4;  // output rows per register tile
constexpr std::int64_t kNr = 8;  // output cols per register tile
constexpr std::int64_t kTileElems = kMr * kNr;

// Packs the kNr B rows of block `jb` into panel layout dst[kk * kNr + jj] so
// the micro-kernel's inner loop loads one contiguous vector per k step.
// Pure data movement — no floating-point arithmetic.
void pack_b_block(const float* pb, std::int64_t k, std::int64_t jb,
                  float* dst) noexcept {
  const float* b0 = pb + jb * kNr * k;
  for (std::int64_t kk = 0; kk < k; ++kk) {
    for (std::int64_t jj = 0; jj < kNr; ++jj) {
      dst[kk * kNr + jj] = b0[jj * k + kk];
    }
  }
}

// Partial dot products of a kMr x kNr tile over the k-range [begin, end),
// reproducing unrolled_dot's accumulation order independently per element.
// `a` is the tile's first A row (rows `lda` apart); `bp` the packed panel.
//
// On GNU-compatible compilers the kNr-wide column axis is expressed with
// vector extensions: one mul + one add per lane, no horizontal operations,
// so every output element still sees exactly the scalar sequence
//   acc_u += a[i+u] * b[i+u]  (u = i mod 4), (acc0+acc1)+(acc2+acc3), tail.
// Lane arithmetic is IEEE float32 identical to the scalar ops — the
// vectorization changes which elements are computed together, never the
// order of additions within an element. (Contraction into FMAs is disabled
// project-wide via -ffp-contract=off, so mul+add stays two roundings in
// both the reference and the blocked engine.)
#if defined(__GNUC__) || defined(__clang__)
#define NNR_GEMM_V8 1
using v8f = float __attribute__((vector_size(8 * sizeof(float))));

inline v8f load8(const float* p) noexcept {
  v8f v;
  __builtin_memcpy(&v, p, sizeof(v));  // unaligned, strict-aliasing safe
  return v;
}

inline void store8(float* p, v8f v) noexcept {
  __builtin_memcpy(p, &v, sizeof(v));
}

void micro_tile(const float* a, std::int64_t lda, const float* bp,
                std::int64_t begin, std::int64_t end,
                float out[kTileElems]) noexcept {
  v8f acc[4][kMr];
  for (auto& bank : acc) {
    for (v8f& v : bank) v = v8f{};
  }
  std::int64_t i = begin;
  for (; i + 4 <= end; i += 4) {
    for (int u = 0; u < 4; ++u) {
      const v8f brow = load8(bp + (i + u) * kNr);
      for (std::int64_t r = 0; r < kMr; ++r) {
        acc[u][r] += a[r * lda + i + u] * brow;
      }
    }
  }
  v8f res[kMr];
  for (std::int64_t r = 0; r < kMr; ++r) {
    res[r] = (acc[0][r] + acc[1][r]) + (acc[2][r] + acc[3][r]);
  }
  for (; i < end; ++i) {
    const v8f brow = load8(bp + i * kNr);
    for (std::int64_t r = 0; r < kMr; ++r) {
      res[r] += a[r * lda + i] * brow;
    }
  }
  for (std::int64_t r = 0; r < kMr; ++r) store8(out + r * kNr, res[r]);
}
#else
void micro_tile(const float* a, std::int64_t lda, const float* bp,
                std::int64_t begin, std::int64_t end,
                float out[kTileElems]) noexcept {
  float acc[4][kTileElems] = {};
  std::int64_t i = begin;
  for (; i + 4 <= end; i += 4) {
    for (int u = 0; u < 4; ++u) {
      const float* brow = bp + (i + u) * kNr;
      for (std::int64_t r = 0; r < kMr; ++r) {
        const float av = a[r * lda + i + u];
        float* accr = acc[u] + r * kNr;
        for (std::int64_t jj = 0; jj < kNr; ++jj) {
          accr[jj] += av * brow[jj];
        }
      }
    }
  }
  for (std::int64_t e = 0; e < kTileElems; ++e) {
    out[e] = (acc[0][e] + acc[1][e]) + (acc[2][e] + acc[3][e]);
  }
  for (; i < end; ++i) {
    const float* brow = bp + i * kNr;
    for (std::int64_t r = 0; r < kMr; ++r) {
      const float av = a[r * lda + i];
      float* outr = out + r * kNr;
      for (std::int64_t jj = 0; jj < kNr; ++jj) {
        outr[jj] += av * brow[jj];
      }
    }
  }
}
#endif  // NNR_GEMM_V8

// The seed kernel body, shared by gemm_nt_reference and the fallback paths.
void gemm_nt_loop(const float* pa, const float* pb, float* pc, std::int64_t m,
                  std::int64_t n, std::int64_t k,
                  const ReductionPlan& plan) noexcept {
  for (std::int64_t i = 0; i < m; ++i) {
    const float* row_a = pa + i * k;
    for (std::int64_t j = 0; j < n; ++j) {
      pc[i * n + j] = plan.reduce_dot_strided(row_a, pb + j * k, k, 1);
    }
  }
}

void gemm_nt_blocked(const float* pa, const float* pb, float* pc,
                     std::int64_t m, std::int64_t n, std::int64_t k,
                     const ReductionPlan& plan) {
  runtime::ThreadPool& pool = runtime::ThreadPool::global();
  const std::int64_t jblocks = n / kNr;
  const int lanes = plan.lanes();

  // Pack all full B panels once; every row block reads them. The buffer is
  // grow-only thread-local storage (keyed by the *calling* thread — workers
  // write through the captured pointer), so steady-state training does no
  // per-launch allocation here. GEMMs never nest, and concurrent calls from
  // different threads get different buffers.
  static thread_local std::vector<float> tl_packed;
  const std::size_t pack_size = static_cast<std::size_t>(jblocks * k * kNr);
  if (tl_packed.size() < pack_size) tl_packed.resize(pack_size);
  float* packed_data = tl_packed.data();
  pool.parallel_for(0, jblocks, 1, [&](std::int64_t b0, std::int64_t b1) {
    for (std::int64_t jb = b0; jb < b1; ++jb) {
      pack_b_block(pb, k, jb, packed_data + jb * k * kNr);
    }
  });

  const std::int64_t row_blocks = (m + kMr - 1) / kMr;
  pool.parallel_for(0, row_blocks, 1, [&](std::int64_t rb0, std::int64_t rb1) {
    // Per-worker lane staging: lane partials for one tile, plus a gather
    // buffer handed to combine_partials per element.
    std::vector<float> lane_buf;
    std::vector<float> lane_tmp;
    if (lanes > 1) {
      lane_buf.resize(static_cast<std::size_t>(lanes) * kTileElems);
      lane_tmp.resize(static_cast<std::size_t>(lanes));
    }
    for (std::int64_t rb = rb0; rb < rb1; ++rb) {
      const std::int64_t i0 = rb * kMr;
      const std::int64_t mr = std::min<std::int64_t>(kMr, m - i0);
      if (mr == kMr) {
        float tile[kTileElems];
        for (std::int64_t jb = 0; jb < jblocks; ++jb) {
          const float* bp = packed_data + jb * k * kNr;
          if (lanes == 1) {
            micro_tile(pa + i0 * k, k, bp, 0, k, tile);
          } else {
            for (int l = 0; l < lanes; ++l) {
              const auto [cb, ce] = lane_range(l, lanes, k);
              micro_tile(pa + i0 * k, k, bp, cb, ce,
                         lane_buf.data() + static_cast<std::int64_t>(l) *
                                               kTileElems);
            }
            if (plan.order() == AccumOrder::kPairwiseTree) {
              // The fixed balanced tree from ReductionPlan::combine, applied
              // to all tile elements at once: partials[l] += partials[l+half]
              // per element, level by level. Elements never mix, so this is
              // the scalar tree bit-for-bit — just batched.
              int nl = lanes;
              while (nl > 1) {
                const int half = (nl + 1) / 2;
                for (int l = 0; l + half < nl; ++l) {
                  float* dst = lane_buf.data() +
                               static_cast<std::int64_t>(l) * kTileElems;
                  const float* addend =
                      lane_buf.data() +
                      static_cast<std::int64_t>(l + half) * kTileElems;
                  for (std::int64_t e = 0; e < kTileElems; ++e) {
                    dst[e] += addend[e];
                  }
                }
                nl = half;
              }
              for (std::int64_t e = 0; e < kTileElems; ++e) {
                tile[e] = lane_buf[static_cast<std::size_t>(e)];
              }
            } else {
              // Generic (future accumulation orders): gather each element's
              // lane partials and delegate to the reference combine.
              for (std::int64_t e = 0; e < kTileElems; ++e) {
                for (int l = 0; l < lanes; ++l) {
                  lane_tmp[static_cast<std::size_t>(l)] =
                      lane_buf[static_cast<std::size_t>(l) * kTileElems +
                               static_cast<std::size_t>(e)];
                }
                tile[e] = plan.combine_partials(lane_tmp);
              }
            }
          }
          for (std::int64_t r = 0; r < kMr; ++r) {
            float* crow = pc + (i0 + r) * n + jb * kNr;
            for (std::int64_t jj = 0; jj < kNr; ++jj) {
              crow[jj] = tile[r * kNr + jj];
            }
          }
        }
      }
      // Column remainder (and whole short row blocks): the reference kernel
      // per element — trivially bit-exact.
      const std::int64_t j0 = (mr == kMr) ? jblocks * kNr : 0;
      for (std::int64_t i = i0; i < i0 + mr; ++i) {
        const float* row_a = pa + i * k;
        for (std::int64_t j = j0; j < n; ++j) {
          pc[i * n + j] = plan.reduce_dot_strided(row_a, pb + j * k, k, 1);
        }
      }
    }
  });
}

void check_gemm_shapes(const Tensor& a, const Tensor& b, const Tensor& c) {
  assert(a.shape().rank() == 2 && b.shape().rank() == 2 &&
         c.shape().rank() == 2);
  assert(b.shape()[1] == a.shape()[1]);
  assert(c.shape()[0] == a.shape()[0] && c.shape()[1] == b.shape()[0]);
  (void)a;
  (void)b;
  (void)c;
}

}  // namespace

void gemm_nt(const Tensor& a, const Tensor& b, Tensor& c,
             const KernelPolicy& policy) {
  check_gemm_shapes(a, b, c);
  const std::int64_t m = a.shape()[0];
  const std::int64_t k = a.shape()[1];
  const std::int64_t n = b.shape()[0];

  // One plan per kernel launch: the scheduler interleaving is drawn once and
  // applied to every output element, then the next launch redraws it.
  const ReductionPlan plan = policy.make_plan(k);

  // The shuffled order keeps the seed loop so IMPL-noise semantics stay
  // byte-identical; tiny problems skip the pack/tile overhead (the blocked
  // engine is bit-exact either way, so this cutoff is a pure perf choice).
  const bool tiny = m * n < 64 || n < kNr || k < 4;
  if (plan.order() == AccumOrder::kShardedShuffled || tiny) {
    gemm_nt_loop(a.raw(), b.raw(), c.raw(), m, n, k, plan);
    return;
  }
  gemm_nt_blocked(a.raw(), b.raw(), c.raw(), m, n, k, plan);
}

void gemm_nt_reference(const Tensor& a, const Tensor& b, Tensor& c,
                       const KernelPolicy& policy) {
  check_gemm_shapes(a, b, c);
  const ReductionPlan plan = policy.make_plan(a.shape()[1]);
  gemm_nt_loop(a.raw(), b.raw(), c.raw(), a.shape()[0], b.shape()[0],
               a.shape()[1], plan);
}

void transpose(const Tensor& in, Tensor& out) {
  assert(in.shape().rank() == 2 && out.shape().rank() == 2);
  const std::int64_t rows = in.shape()[0];
  const std::int64_t cols = in.shape()[1];
  assert(out.shape()[0] == cols && out.shape()[1] == rows);
  const float* pin = in.raw();
  float* pout = out.raw();

  // Square tiles keep both the row-major reads and the column-strided writes
  // inside one cache footprint; the large patch x pixels transposes in
  // Conv2D::backward otherwise touch a fresh line per element.
  constexpr std::int64_t kTile = 32;
  const std::int64_t row_tiles = (rows + kTile - 1) / kTile;
  runtime::ThreadPool::global().parallel_for(
      0, row_tiles, 1, [&](std::int64_t t0, std::int64_t t1) {
        for (std::int64_t t = t0; t < t1; ++t) {
          const std::int64_t i0 = t * kTile;
          const std::int64_t i_end = std::min(rows, i0 + kTile);
          for (std::int64_t j0 = 0; j0 < cols; j0 += kTile) {
            const std::int64_t j_end = std::min(cols, j0 + kTile);
            for (std::int64_t i = i0; i < i_end; ++i) {
              for (std::int64_t j = j0; j < j_end; ++j) {
                pout[j * rows + i] = pin[i * cols + j];
              }
            }
          }
        }
      });
}

float reduce_sum(std::span<const float> values, const KernelPolicy& policy) {
  const ReductionPlan plan =
      policy.make_plan(static_cast<std::int64_t>(values.size()));
  return plan.reduce(values);
}

void reduce_rows(const Tensor& in, std::span<float> out,
                 const KernelPolicy& policy) {
  assert(in.shape().rank() == 2);
  const std::int64_t rows = in.shape()[0];
  const std::int64_t cols = in.shape()[1];
  assert(static_cast<std::int64_t>(out.size()) == rows);
  const ReductionPlan plan = policy.make_plan(cols);
  const float* pin = in.raw();
  for (std::int64_t r = 0; r < rows; ++r) {
    out[static_cast<std::size_t>(r)] = plan.reduce(
        std::span<const float>(pin + r * cols, static_cast<std::size_t>(cols)));
  }
}

}  // namespace nnr::tensor
