#include "tensor/gemm.h"

#include <cassert>

namespace nnr::tensor {

void gemm_nt(const Tensor& a, const Tensor& b, Tensor& c,
             const KernelPolicy& policy) {
  assert(a.shape().rank() == 2 && b.shape().rank() == 2 &&
         c.shape().rank() == 2);
  const std::int64_t m = a.shape()[0];
  const std::int64_t k = a.shape()[1];
  const std::int64_t n = b.shape()[0];
  assert(b.shape()[1] == k);
  assert(c.shape()[0] == m && c.shape()[1] == n);

  // One plan per kernel launch: the scheduler interleaving is drawn once and
  // applied to every output element, then the next launch redraws it.
  const ReductionPlan plan = policy.make_plan(k);
  const float* pa = a.raw();
  const float* pb = b.raw();
  float* pc = c.raw();
  for (std::int64_t i = 0; i < m; ++i) {
    const float* row_a = pa + i * k;
    for (std::int64_t j = 0; j < n; ++j) {
      pc[i * n + j] = plan.reduce_dot_strided(row_a, pb + j * k, k, 1);
    }
  }
}

void transpose(const Tensor& in, Tensor& out) {
  assert(in.shape().rank() == 2 && out.shape().rank() == 2);
  const std::int64_t rows = in.shape()[0];
  const std::int64_t cols = in.shape()[1];
  assert(out.shape()[0] == cols && out.shape()[1] == rows);
  const float* pin = in.raw();
  float* pout = out.raw();
  for (std::int64_t i = 0; i < rows; ++i) {
    for (std::int64_t j = 0; j < cols; ++j) {
      pout[j * rows + i] = pin[i * cols + j];
    }
  }
}

float reduce_sum(std::span<const float> values, const KernelPolicy& policy) {
  const ReductionPlan plan =
      policy.make_plan(static_cast<std::int64_t>(values.size()));
  return plan.reduce(values);
}

void reduce_rows(const Tensor& in, std::span<float> out,
                 const KernelPolicy& policy) {
  assert(in.shape().rank() == 2);
  const std::int64_t rows = in.shape()[0];
  const std::int64_t cols = in.shape()[1];
  assert(static_cast<std::int64_t>(out.size()) == rows);
  const ReductionPlan plan = policy.make_plan(cols);
  const float* pin = in.raw();
  for (std::int64_t r = 0; r < rows; ++r) {
    out[static_cast<std::size_t>(r)] = plan.reduce(
        std::span<const float>(pin + r * cols, static_cast<std::size_t>(cols)));
  }
}

}  // namespace nnr::tensor
