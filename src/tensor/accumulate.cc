#include "tensor/accumulate.h"

#include <algorithm>
#include <cassert>

namespace nnr::tensor {

int lanes_for_cores(int cuda_cores, std::int64_t k) noexcept {
  // One lane per ~128 cores, but never fewer than 32 elements per lane: a
  // real scheduler does not split a small reduction across many blocks (it
  // fits in one warp/block whose order is fixed). The consequence matches
  // observed GPU behaviour: small forward reductions are stable per-launch,
  // while the large weight-gradient / batch-norm reductions carry the
  // scheduler-ordering entropy.
  const int by_cores = std::max(1, cuda_cores / 128);
  const auto by_size = static_cast<int>(std::max<std::int64_t>(1, k / 32));
  return std::min(by_cores, by_size);
}

ReductionPlan::ReductionPlan(AccumOrder order, int lanes, std::int64_t k,
                             rng::Generator* entropy)
    : order_(order), lanes_(std::max(1, lanes)), k_(k) {
  if (k_ > 0 && lanes_ > k_) lanes_ = static_cast<int>(k_);
  if (order_ == AccumOrder::kSequential) lanes_ = 1;
  combine_order_.resize(static_cast<std::size_t>(lanes_));
  for (int i = 0; i < lanes_; ++i) {
    combine_order_[static_cast<std::size_t>(i)] = static_cast<std::uint32_t>(i);
  }
  if (order_ == AccumOrder::kShardedShuffled) {
    assert(entropy != nullptr &&
           "sharded-shuffled reduction requires a scheduler entropy stream");
    entropy->shuffle(std::span<std::uint32_t>(combine_order_));
  }
}

float ReductionPlan::combine(std::span<float> partials) const noexcept {
  switch (order_) {
    case AccumOrder::kSequential: {
      float acc = 0.0F;
      for (float p : partials) acc += p;
      return acc;
    }
    case AccumOrder::kPairwiseTree: {
      // Fixed balanced binary tree: deterministic regardless of entropy.
      std::size_t n = partials.size();
      while (n > 1) {
        const std::size_t half = (n + 1) / 2;
        for (std::size_t i = 0; i + half < n; ++i) {
          partials[i] += partials[i + half];
        }
        n = half;
      }
      return partials.empty() ? 0.0F : partials[0];
    }
    case AccumOrder::kShardedShuffled: {
      // Combine in the shuffled retirement order of this launch.
      float acc = 0.0F;
      for (std::uint32_t lane : combine_order_) {
        acc += partials[lane];
      }
      return acc;
    }
  }
  return 0.0F;  // unreachable
}

namespace {

// Four-way unrolled partial sums. A lane models a thread's private register
// accumulation; splitting it into four fixed interleaved sub-accumulators is
// still a *fixed* order given the input layout (bitwise deterministic), it
// just exposes instruction-level parallelism to the compiler. The final
// sub-accumulator combine order is fixed too.
inline float unrolled_sum(const float* v, std::int64_t begin,
                          std::int64_t end) noexcept {
  float acc0 = 0.0F, acc1 = 0.0F, acc2 = 0.0F, acc3 = 0.0F;
  std::int64_t i = begin;
  for (; i + 4 <= end; i += 4) {
    acc0 += v[i];
    acc1 += v[i + 1];
    acc2 += v[i + 2];
    acc3 += v[i + 3];
  }
  float acc = (acc0 + acc1) + (acc2 + acc3);
  for (; i < end; ++i) acc += v[i];
  return acc;
}

inline float unrolled_dot(const float* a, const float* b, std::int64_t begin,
                          std::int64_t end) noexcept {
  float acc0 = 0.0F, acc1 = 0.0F, acc2 = 0.0F, acc3 = 0.0F;
  std::int64_t i = begin;
  for (; i + 4 <= end; i += 4) {
    acc0 += a[i] * b[i];
    acc1 += a[i + 1] * b[i + 1];
    acc2 += a[i + 2] * b[i + 2];
    acc3 += a[i + 3] * b[i + 3];
  }
  float acc = (acc0 + acc1) + (acc2 + acc3);
  for (; i < end; ++i) acc += a[i] * b[i];
  return acc;
}

}  // namespace

float ReductionPlan::reduce(std::span<const float> values) const noexcept {
  assert(static_cast<std::int64_t>(values.size()) == k_);
  if (k_ == 0) return 0.0F;
  if (lanes_ == 1) {
    return unrolled_sum(values.data(), 0, k_);
  }
  float partials_buf[512];
  std::vector<float> partials_heap;
  std::span<float> partials;
  if (lanes_ <= 512) {
    partials = std::span<float>(partials_buf, static_cast<std::size_t>(lanes_));
  } else {
    partials_heap.resize(static_cast<std::size_t>(lanes_));
    partials = partials_heap;
  }
  for (int l = 0; l < lanes_; ++l) {
    const auto [begin, end] = lane_range(l, lanes_, k_);
    partials[static_cast<std::size_t>(l)] = unrolled_sum(values.data(), begin, end);
  }
  return combine(partials);
}

float ReductionPlan::reduce_dot(std::span<const float> a,
                                std::span<const float> b) const noexcept {
  assert(a.size() == b.size());
  return reduce_dot_strided(a.data(), b.data(),
                            static_cast<std::int64_t>(a.size()), 1);
}

float ReductionPlan::reduce_dot_strided(const float* a, const float* b,
                                        std::int64_t k,
                                        std::int64_t b_stride) const noexcept {
  assert(k == k_);
  if (k == 0) return 0.0F;
  if (lanes_ == 1) {
    if (b_stride == 1) return unrolled_dot(a, b, 0, k);
    float acc = 0.0F;
    for (std::int64_t i = 0; i < k; ++i) acc += a[i] * b[i * b_stride];
    return acc;
  }
  float partials_buf[512];
  std::vector<float> partials_heap;
  std::span<float> partials;
  if (lanes_ <= 512) {
    partials = std::span<float>(partials_buf, static_cast<std::size_t>(lanes_));
  } else {
    partials_heap.resize(static_cast<std::size_t>(lanes_));
    partials = partials_heap;
  }
  for (int l = 0; l < lanes_; ++l) {
    const auto [begin, end] = lane_range(l, lanes_, k);
    if (b_stride == 1) {
      partials[static_cast<std::size_t>(l)] = unrolled_dot(a, b, begin, end);
    } else {
      float acc = 0.0F;
      for (std::int64_t i = begin; i < end; ++i) acc += a[i] * b[i * b_stride];
      partials[static_cast<std::size_t>(l)] = acc;
    }
  }
  return combine(partials);
}

}  // namespace nnr::tensor
