#include "tensor/workspace.h"

namespace nnr::tensor {

Tensor& Workspace::scratch(const void* owner, int slot, const Shape& shape) {
  Tensor& t = slots_[{owner, slot}];
  if (t.numel() == shape.numel() && t.shape().rank() > 0) {
    if (!(t.shape() == shape)) t.reshape(shape);
  } else {
    t = Tensor(shape);
  }
  return t;
}

}  // namespace nnr::tensor
