#include "tensor/precision.h"

#include <bit>
#include <cmath>
#include <limits>

namespace nnr::tensor {
namespace {

/// Round-to-nearest-even truncation of the low `drop_bits` mantissa bits.
float round_mantissa(float value, int drop_bits) noexcept {
  if (!std::isfinite(value)) return value;
  const auto bits = std::bit_cast<std::uint32_t>(value);
  const std::uint32_t mask = (1u << drop_bits) - 1u;
  const std::uint32_t remainder = bits & mask;
  const std::uint32_t halfway = 1u << (drop_bits - 1);
  std::uint32_t truncated = bits & ~mask;
  const bool round_up =
      remainder > halfway ||
      (remainder == halfway && ((bits >> drop_bits) & 1u) != 0);
  if (round_up) truncated += 1u << drop_bits;  // may carry into the exponent
  return std::bit_cast<float>(truncated);
}

/// IEEE binary16 via float32 round-trip (round-to-nearest-even).
float to_float16(float value) noexcept {
  if (std::isnan(value)) return value;
  constexpr float kMaxHalf = 65504.0F;
  // Mantissa: 23 -> 10 bits.
  float rounded = round_mantissa(value, 13);
  // Exponent range: clamp overflow; flush subnormals-of-half toward the
  // binary16 subnormal grid (approximated by zero below the min normal —
  // adequate for gradient-scale ablations).
  if (rounded > kMaxHalf) return std::numeric_limits<float>::infinity();
  if (rounded < -kMaxHalf) return -std::numeric_limits<float>::infinity();
  constexpr float kMinNormalHalf = 6.103515625e-05F;  // 2^-14
  if (std::fabs(rounded) < kMinNormalHalf) {
    // Quantize to the binary16 subnormal step 2^-24.
    constexpr float kStep = 5.9604644775390625e-08F;  // 2^-24
    rounded = std::nearbyint(rounded / kStep) * kStep;
  }
  return rounded;
}

}  // namespace

float quantize(float value, Precision precision) noexcept {
  switch (precision) {
    case Precision::kFloat32:
      return value;
    case Precision::kBfloat16:
      return round_mantissa(value, 16);  // 23 -> 7 mantissa bits
    case Precision::kFloat16:
      return to_float16(value);
  }
  return value;
}

float reduce_sum_quantized(std::span<const float> values,
                           Precision precision) noexcept {
  float acc = 0.0F;
  for (float v : values) {
    acc = quantize(acc + quantize(v, precision), precision);
  }
  return acc;
}

float reduce_sum_kahan(std::span<const float> values) noexcept {
  float sum = 0.0F;
  float compensation = 0.0F;
  for (const float v : values) {
    const float y = v - compensation;
    const float t = sum + y;
    // (t - sum) recovers the part of y that made it into the accumulator;
    // the remainder is carried into the next addition.
    compensation = (t - sum) - y;
    sum = t;
  }
  return sum;
}

float reduce_sum_permuted(std::span<const float> values,
                          std::span<const std::uint32_t> order) noexcept {
  float acc = 0.0F;
  for (const std::uint32_t i : order) acc += values[i];
  return acc;
}

float reduce_sum_kahan_permuted(std::span<const float> values,
                                std::span<const std::uint32_t> order) noexcept {
  float sum = 0.0F;
  float compensation = 0.0F;
  for (const std::uint32_t i : order) {
    const float y = values[i] - compensation;
    const float t = sum + y;
    compensation = (t - sum) - y;
    sum = t;
  }
  return sum;
}

float ulp_at_one(Precision precision) noexcept {
  switch (precision) {
    case Precision::kFloat32:
      return 1.1920928955078125e-07F;  // 2^-23
    case Precision::kBfloat16:
      return 7.8125e-03F;  // 2^-7
    case Precision::kFloat16:
      return 9.765625e-04F;  // 2^-10
  }
  return 0.0F;
}

}  // namespace nnr::tensor
