// Elementwise tensor utilities (no reductions — those live in gemm.h so the
// accumulation-ordering policy cannot be bypassed accidentally).
#pragma once

#include <span>

#include "tensor/tensor.h"

namespace nnr::tensor {

/// y += alpha * x (elementwise, same length).
void axpy(float alpha, std::span<const float> x, std::span<float> y) noexcept;

/// x *= alpha.
void scale(std::span<float> x, float alpha) noexcept;

/// dst = src (copies values; shapes must match in length).
void copy_into(std::span<const float> src, std::span<float> dst) noexcept;

/// Squared L2 norm accumulated in double (metrics-side computation, not on
/// the simulated-device training path — see metrics/ for rationale).
[[nodiscard]] double squared_norm(std::span<const float> x) noexcept;

/// Index of the maximum element (first occurrence). Precondition: non-empty.
[[nodiscard]] std::int64_t argmax(std::span<const float> x) noexcept;

}  // namespace nnr::tensor
