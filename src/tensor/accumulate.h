// Reduction-order policies: the physical origin of implementation noise.
//
// On a real GPU, a reduction (matmul inner product, batch-norm statistics,
// gradient accumulation) is split across thousands of threads whose partial
// results are combined in whatever order the hardware scheduler retires them.
// Because float32 addition is not associative, each ordering yields a
// slightly different rounded result — the paper's "random floating-point
// accumulation ordering" (§2, Parallel Execution).
//
// We model a reduction as:
//   1. split the K addends into `lanes` contiguous chunks (thread blocks),
//   2. sum each chunk sequentially (a thread's private register),
//   3. combine the per-lane partials in a policy-defined order.
//
// Orders:
//   kSequential      - single lane, input order. Deterministic given input
//                      layout; this is the TPU/systolic model (and is why
//                      TPUs stay input-order-sensitive, paper Fig. 6).
//   kPairwiseTree    - fixed balanced binary tree over lanes. Deterministic;
//                      this is the "deterministic kernel" (cuDNN patch) model.
//   kShardedShuffled - per-launch random permutation of lane-combine order,
//                      drawn from the scheduler-entropy stream. This is the
//                      default GPU model; entropy grows with lane count,
//                      i.e. with CUDA core count.
//
// All arithmetic is float32 end to end — the divergence produced here is
// genuine rounding divergence, not injected noise.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "rng/generator.h"

namespace nnr::tensor {

enum class AccumOrder {
  kSequential,
  kPairwiseTree,
  kShardedShuffled,
};

/// A reduction "kernel launch" plan: lane count plus the combine order for
/// this launch. Plans are created once per kernel invocation (one GEMM, one
/// batch-norm reduction, ...) mirroring how a scheduler interleaving is fixed
/// per launch but varies across launches.
class ReductionPlan {
 public:
  /// Builds a plan for reducing `k` addends.
  ///
  /// `entropy` supplies the scheduler interleaving and must be non-null for
  /// kShardedShuffled; it is ignored for deterministic orders.
  ReductionPlan(AccumOrder order, int lanes, std::int64_t k,
                rng::Generator* entropy);

  /// Reduces `values` (size == k) to a float32 scalar under this plan.
  [[nodiscard]] float reduce(std::span<const float> values) const noexcept;

  /// Reduces the elementwise product a[i]*b[i] (dot product) under this plan.
  [[nodiscard]] float reduce_dot(std::span<const float> a,
                                 std::span<const float> b) const noexcept;

  /// Strided-dot variant for GEMM inner loops: dot of a[i] with b[i*stride].
  [[nodiscard]] float reduce_dot_strided(const float* a, const float* b,
                                         std::int64_t k,
                                         std::int64_t b_stride) const noexcept;

  [[nodiscard]] AccumOrder order() const noexcept { return order_; }
  [[nodiscard]] int lanes() const noexcept { return lanes_; }
  [[nodiscard]] std::span<const std::uint32_t> combine_order() const noexcept {
    return combine_order_;
  }

  /// Combines per-lane partial sums (size == lanes()) exactly as the full
  /// reductions do — exposed so the blocked GEMM fast path can reproduce the
  /// reference combine bit-for-bit from externally computed lane partials.
  /// `partials` is clobbered for kPairwiseTree (in-place tree).
  [[nodiscard]] float combine_partials(std::span<float> partials) const noexcept {
    return combine(partials);
  }

 private:
  [[nodiscard]] float combine(std::span<float> partials) const noexcept;

  AccumOrder order_;
  int lanes_;
  std::int64_t k_;
  std::vector<std::uint32_t> combine_order_;  // permutation of lanes
};

/// Effective lane count for a device with `cuda_cores` cores reducing `k`
/// addends: roughly one lane per 128 cores, clamped to [1, k].
[[nodiscard]] int lanes_for_cores(int cuda_cores, std::int64_t k) noexcept;

/// Lane `lane` of `lanes` owns the contiguous addend chunk [begin, end) of a
/// k-element reduction. Shared by the reference reductions and the blocked
/// GEMM fast path so both partition k identically (a bit-exactness
/// precondition, not just a convention).
struct LaneRange {
  std::int64_t begin;
  std::int64_t end;
};

[[nodiscard]] inline LaneRange lane_range(int lane, int lanes,
                                          std::int64_t k) noexcept {
  const std::int64_t chunk = (k + lanes - 1) / lanes;
  const std::int64_t begin = std::min<std::int64_t>(lane * chunk, k);
  const std::int64_t end = std::min<std::int64_t>(begin + chunk, k);
  return {begin, end};
}

}  // namespace nnr::tensor
