// Emulated reduced-precision accumulation.
//
// Tooling choices include the numeric format: Tensor-Core-era accelerators
// accumulate fp16/bf16 products, which coarsens the rounding grid and with
// it the magnitude of ordering noise. This module emulates half-precision
// formats on top of float32 so the study can sweep precision as a tooling
// axis (an extension ablation; see bench/ablation_precision).
//
// Emulation is round-to-nearest-even through the target format's grid:
// exact for every representable value, deterministic, and independent of
// host FPU modes.
#pragma once

#include <cstdint>
#include <span>

namespace nnr::tensor {

enum class Precision {
  kFloat32,   // native accumulation
  kBfloat16,  // 8-bit exponent, 7-bit mantissa (truncate-to-nearest-even)
  kFloat16,   // IEEE binary16 (round-to-nearest-even, clamps to +/-inf)
};

/// Rounds one float32 value to the target format's grid (returned as
/// float32). kFloat32 is the identity.
[[nodiscard]] float quantize(float value, Precision precision) noexcept;

/// Sums `values` with the accumulator held in the target precision after
/// every addition — the "low-precision accumulate" kernel. Sequential
/// (layout) order; the point of the ablation is the grid, not the order.
[[nodiscard]] float reduce_sum_quantized(std::span<const float> values,
                                         Precision precision) noexcept;

/// Unit in the last place of the format at magnitude ~1.0 — the rounding
/// grid spacing the ordering noise rides on.
[[nodiscard]] float ulp_at_one(Precision precision) noexcept;

// --- Compensated summation (mitigation ablation) ---
//
// Deterministic kernels remove ordering noise by *fixing the order* at a
// throughput cost (paper §4). Kahan summation attacks the same noise from
// the other side: it shrinks the rounding error each ordering produces, so
// different orders land on (nearly always) the same float32 value without
// restricting the schedule. bench/ablation_precision Part B quantifies the
// residual order sensitivity.

/// Kahan-compensated sequential sum (float32 accumulator + float32
/// compensation term).
[[nodiscard]] float reduce_sum_kahan(std::span<const float> values) noexcept;

/// Plain float32 sum visiting `values[order[i]]` — the order-sensitivity
/// probe baseline. `order` must be a permutation of [0, values.size()).
[[nodiscard]] float reduce_sum_permuted(
    std::span<const float> values,
    std::span<const std::uint32_t> order) noexcept;

/// Kahan-compensated sum in a caller-provided visiting order.
[[nodiscard]] float reduce_sum_kahan_permuted(
    std::span<const float> values,
    std::span<const std::uint32_t> order) noexcept;

}  // namespace nnr::tensor
