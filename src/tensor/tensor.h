// Tensor: an owning, contiguous float32 n-d array.
//
// float32 is deliberate and load-bearing: the entire study measures rounding
// divergence of single-precision accumulation under reordering, so the tensor
// substrate must not silently widen to double anywhere on the training path.
#pragma once

#include <cassert>
#include <cstdint>
#include <span>
#include <vector>

#include "tensor/shape.h"

namespace nnr::tensor {

class Tensor {
 public:
  Tensor() = default;

  explicit Tensor(Shape shape)
      : shape_(shape), data_(static_cast<std::size_t>(shape.numel()), 0.0F) {}

  Tensor(Shape shape, std::vector<float> data)
      : shape_(shape), data_(std::move(data)) {
    assert(static_cast<std::int64_t>(data_.size()) == shape_.numel());
  }

  [[nodiscard]] static Tensor zeros(Shape shape) { return Tensor(shape); }

  [[nodiscard]] static Tensor full(Shape shape, float value) {
    Tensor t(shape);
    for (float& x : t.data_) x = value;
    return t;
  }

  [[nodiscard]] const Shape& shape() const noexcept { return shape_; }
  [[nodiscard]] std::int64_t numel() const noexcept { return shape_.numel(); }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  [[nodiscard]] std::span<float> data() noexcept { return data_; }
  [[nodiscard]] std::span<const float> data() const noexcept { return data_; }

  [[nodiscard]] float* raw() noexcept { return data_.data(); }
  [[nodiscard]] const float* raw() const noexcept { return data_.data(); }

  // Flat and rank-specific element access (row-major / NCHW).
  [[nodiscard]] float& at(std::int64_t i) noexcept {
    assert(i >= 0 && i < numel());
    return data_[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] float at(std::int64_t i) const noexcept {
    assert(i >= 0 && i < numel());
    return data_[static_cast<std::size_t>(i)];
  }

  [[nodiscard]] float& at(std::int64_t i, std::int64_t j) noexcept {
    assert(shape_.rank() == 2);
    return data_[static_cast<std::size_t>(i * shape_[1] + j)];
  }
  [[nodiscard]] float at(std::int64_t i, std::int64_t j) const noexcept {
    assert(shape_.rank() == 2);
    return data_[static_cast<std::size_t>(i * shape_[1] + j)];
  }

  [[nodiscard]] float& at(std::int64_t n, std::int64_t c, std::int64_t h,
                          std::int64_t w) noexcept {
    assert(shape_.rank() == 4);
    return data_[static_cast<std::size_t>(
        ((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w)];
  }
  [[nodiscard]] float at(std::int64_t n, std::int64_t c, std::int64_t h,
                         std::int64_t w) const noexcept {
    assert(shape_.rank() == 4);
    return data_[static_cast<std::size_t>(
        ((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w)];
  }

  /// Reinterprets the buffer under a new shape with the same element count.
  void reshape(Shape new_shape) {
    assert(new_shape.numel() == shape_.numel());
    shape_ = new_shape;
  }

  void fill(float value) noexcept {
    for (float& x : data_) x = value;
  }

 private:
  Shape shape_;
  std::vector<float> data_;
};

}  // namespace nnr::tensor
