// Policy-driven GEMM and reduction kernels.
//
// Every reduction on the training path (matmul inner products, weight-
// gradient accumulation, batch-norm statistics, bias gradients) flows through
// a ReductionPlan so that the simulated device's accumulation-ordering policy
// applies uniformly — exactly the places where cuDNN kernels reduce across
// threads on real hardware.
//
// Layout convention: the canonical kernel is gemm_nt,
//     C[M, N] = A[M, K] · B[N, K]^T
// i.e. both operands are row-major with the contraction axis K contiguous.
// Callers arrange operands (via transpose()) so every inner dot product walks
// unit-stride memory; this keeps the scalar kernels auto-vectorizable.
#pragma once

#include <cstdint>

#include "rng/generator.h"
#include "tensor/accumulate.h"
#include "tensor/tensor.h"

namespace nnr::tensor {

/// Per-launch execution policy for a reduction kernel. Aggregates the
/// accumulation order, the device's lane parallelism, and (for
/// nondeterministic orders) the scheduler entropy stream.
struct KernelPolicy {
  AccumOrder order = AccumOrder::kSequential;
  int cuda_cores = 0;                     // 0 => single lane
  rng::Generator* entropy = nullptr;      // required for kShardedShuffled

  [[nodiscard]] ReductionPlan make_plan(std::int64_t k) const {
    return ReductionPlan(order, lanes_for_cores(cuda_cores, k), k, entropy);
  }
};

/// C[M, N] = A[M, K] · B[N, K]^T. C must be preallocated with shape {M, N}.
///
/// Dispatch: when the policy yields a fixed per-element reduction order
/// (kSequential / kPairwiseTree), a register-blocked, B-panel-packed,
/// host-threaded engine runs — bitwise identical to gemm_nt_reference by
/// construction (same lane partition, same unrolled accumulator order, same
/// lane combine; threading only distributes whole output elements). The
/// kShardedShuffled order runs the reference loop unchanged so IMPL-noise
/// semantics (one shuffle draw per launch applied to every element) are
/// untouched.
void gemm_nt(const Tensor& a, const Tensor& b, Tensor& c,
             const KernelPolicy& policy);

/// The seed triple loop: one reduce_dot_strided per output element. Kept as
/// the semantic definition of gemm_nt — the determinism suite asserts the
/// blocked engine matches it bit-for-bit, and the micro benches report the
/// speedup against it.
void gemm_nt_reference(const Tensor& a, const Tensor& b, Tensor& c,
                       const KernelPolicy& policy);

/// out[j, i] = in[i, j]. out must be preallocated with shape {cols, rows}.
/// Cache-blocked (square tiles) and host-threaded; pure data movement.
void transpose(const Tensor& in, Tensor& out);

/// Sum of all elements of `values` under the policy (one launch).
[[nodiscard]] float reduce_sum(std::span<const float> values,
                               const KernelPolicy& policy);

/// Row-wise sums of a [rows, cols] tensor: out[r] = sum_c in[r, c].
/// One plan (launch) shared by all rows, mirroring a single reduction kernel.
void reduce_rows(const Tensor& in, std::span<float> out,
                 const KernelPolicy& policy);

}  // namespace nnr::tensor
