#include "tensor/im2col.h"

#include <cassert>

namespace nnr::tensor {

void im2col(const Tensor& input, const ConvGeometry& geom, Tensor& cols) {
  assert(input.shape().rank() == 4);
  assert(input.shape()[0] == geom.batch && input.shape()[1] == geom.in_channels);
  assert(input.shape()[2] == geom.in_h && input.shape()[3] == geom.in_w);
  const std::int64_t oh = geom.out_h();
  const std::int64_t ow = geom.out_w();
  const std::int64_t patch = geom.patch_size();
  assert(cols.shape()[0] == geom.out_pixels() && cols.shape()[1] == patch);

  const float* pin = input.raw();
  float* pcols = cols.raw();
  const std::int64_t chw = geom.in_channels * geom.in_h * geom.in_w;
  const std::int64_t hw = geom.in_h * geom.in_w;

  std::int64_t row = 0;
  for (std::int64_t n = 0; n < geom.batch; ++n) {
    for (std::int64_t oy = 0; oy < oh; ++oy) {
      for (std::int64_t ox = 0; ox < ow; ++ox, ++row) {
        float* dst = pcols + row * patch;
        for (std::int64_t c = 0; c < geom.in_channels; ++c) {
          const float* src_c = pin + n * chw + c * hw;
          for (std::int64_t ky = 0; ky < geom.kernel; ++ky) {
            const std::int64_t iy = oy * geom.stride + ky - geom.pad;
            for (std::int64_t kx = 0; kx < geom.kernel; ++kx, ++dst) {
              const std::int64_t ix = ox * geom.stride + kx - geom.pad;
              const bool inside =
                  iy >= 0 && iy < geom.in_h && ix >= 0 && ix < geom.in_w;
              *dst = inside ? src_c[iy * geom.in_w + ix] : 0.0F;
            }
          }
        }
      }
    }
  }
}

void col2im(const Tensor& cols, const ConvGeometry& geom, Tensor& grad_input) {
  assert(grad_input.shape().rank() == 4);
  const std::int64_t oh = geom.out_h();
  const std::int64_t ow = geom.out_w();
  const std::int64_t patch = geom.patch_size();
  assert(cols.shape()[0] == geom.out_pixels() && cols.shape()[1] == patch);

  grad_input.fill(0.0F);
  const float* pcols = cols.raw();
  float* pout = grad_input.raw();
  const std::int64_t chw = geom.in_channels * geom.in_h * geom.in_w;
  const std::int64_t hw = geom.in_h * geom.in_w;

  std::int64_t row = 0;
  for (std::int64_t n = 0; n < geom.batch; ++n) {
    for (std::int64_t oy = 0; oy < oh; ++oy) {
      for (std::int64_t ox = 0; ox < ow; ++ox, ++row) {
        const float* src = pcols + row * patch;
        for (std::int64_t c = 0; c < geom.in_channels; ++c) {
          float* dst_c = pout + n * chw + c * hw;
          for (std::int64_t ky = 0; ky < geom.kernel; ++ky) {
            const std::int64_t iy = oy * geom.stride + ky - geom.pad;
            for (std::int64_t kx = 0; kx < geom.kernel; ++kx, ++src) {
              const std::int64_t ix = ox * geom.stride + kx - geom.pad;
              if (iy >= 0 && iy < geom.in_h && ix >= 0 && ix < geom.in_w) {
                dst_c[iy * geom.in_w + ix] += *src;
              }
            }
          }
        }
      }
    }
  }
}

}  // namespace nnr::tensor
