#include "tensor/im2col.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "runtime/thread_pool.h"

namespace nnr::tensor {

namespace {

// Writes one patch row (output pixel) of the cols matrix. The interior fast
// path: when the whole receptive field is in-bounds (always true for
// pad == 0), every kx run of `kernel` taps is a contiguous memcpy from the
// input row — no per-tap bounds check. Border pixels keep the checked loop.
inline void im2col_row(const float* pin, const ConvGeometry& geom,
                       std::int64_t n, std::int64_t oy, std::int64_t ox,
                       float* dst) noexcept {
  const std::int64_t hw = geom.in_h * geom.in_w;
  const std::int64_t chw = geom.in_channels * hw;
  const std::int64_t iy0 = oy * geom.stride - geom.pad;
  const std::int64_t ix0 = ox * geom.stride - geom.pad;
  const bool interior = iy0 >= 0 && iy0 + geom.kernel <= geom.in_h &&
                        ix0 >= 0 && ix0 + geom.kernel <= geom.in_w;
  if (interior) {
    const std::size_t run_bytes =
        static_cast<std::size_t>(geom.kernel) * sizeof(float);
    for (std::int64_t c = 0; c < geom.in_channels; ++c) {
      const float* src_c = pin + n * chw + c * hw;
      for (std::int64_t ky = 0; ky < geom.kernel; ++ky, dst += geom.kernel) {
        std::memcpy(dst, src_c + (iy0 + ky) * geom.in_w + ix0, run_bytes);
      }
    }
    return;
  }
  for (std::int64_t c = 0; c < geom.in_channels; ++c) {
    const float* src_c = pin + n * chw + c * hw;
    for (std::int64_t ky = 0; ky < geom.kernel; ++ky) {
      const std::int64_t iy = iy0 + ky;
      for (std::int64_t kx = 0; kx < geom.kernel; ++kx, ++dst) {
        const std::int64_t ix = ix0 + kx;
        const bool inside =
            iy >= 0 && iy < geom.in_h && ix >= 0 && ix < geom.in_w;
        *dst = inside ? src_c[iy * geom.in_w + ix] : 0.0F;
      }
    }
  }
}

}  // namespace

void im2col(const Tensor& input, const ConvGeometry& geom, Tensor& cols) {
  assert(input.shape().rank() == 4);
  assert(input.shape()[0] == geom.batch && input.shape()[1] == geom.in_channels);
  assert(input.shape()[2] == geom.in_h && input.shape()[3] == geom.in_w);
  const std::int64_t oh = geom.out_h();
  const std::int64_t ow = geom.out_w();
  const std::int64_t patch = geom.patch_size();
  assert(cols.shape()[0] == geom.out_pixels() && cols.shape()[1] == patch);

  const float* pin = input.raw();
  float* pcols = cols.raw();
  const std::int64_t ohw = oh * ow;

  // Rows (output pixels) are independent writes — parallelize freely. No
  // floating-point arithmetic happens here, so threading cannot perturb the
  // noise model.
  runtime::ThreadPool::global().parallel_for(
      0, geom.out_pixels(), std::max<std::int64_t>(1, ohw / 4),
      [&](std::int64_t r0, std::int64_t r1) {
        for (std::int64_t row = r0; row < r1; ++row) {
          const std::int64_t n = row / ohw;
          const std::int64_t p = row % ohw;
          im2col_row(pin, geom, n, p / ow, p % ow, pcols + row * patch);
        }
      });
}

void col2im(const Tensor& cols, const ConvGeometry& geom, Tensor& grad_input) {
  assert(grad_input.shape().rank() == 4);
  const std::int64_t oh = geom.out_h();
  const std::int64_t ow = geom.out_w();
  const std::int64_t patch = geom.patch_size();
  assert(cols.shape()[0] == geom.out_pixels() && cols.shape()[1] == patch);

  grad_input.fill(0.0F);
  const float* pcols = cols.raw();
  float* pout = grad_input.raw();
  const std::int64_t chw = geom.in_channels * geom.in_h * geom.in_w;
  const std::int64_t hw = geom.in_h * geom.in_w;
  const std::int64_t kk = geom.kernel * geom.kernel;

  // Channel-major scatter: each channel writes a disjoint set of input
  // planes, so channels parallelize safely. Every destination element still
  // receives its addends in the seed's (n, oy, ox, ky, kx) order — the
  // scatter-add ordering per element is part of the bit-exactness contract.
  runtime::ThreadPool::global().parallel_for(
      0, geom.in_channels, 1, [&](std::int64_t c0, std::int64_t c1) {
        for (std::int64_t c = c0; c < c1; ++c) {
          for (std::int64_t n = 0; n < geom.batch; ++n) {
            float* dst_c = pout + n * chw + c * hw;
            std::int64_t row = n * oh * ow;
            for (std::int64_t oy = 0; oy < oh; ++oy) {
              for (std::int64_t ox = 0; ox < ow; ++ox, ++row) {
                const float* src = pcols + row * patch + c * kk;
                for (std::int64_t ky = 0; ky < geom.kernel; ++ky) {
                  const std::int64_t iy = oy * geom.stride + ky - geom.pad;
                  for (std::int64_t kx = 0; kx < geom.kernel; ++kx, ++src) {
                    const std::int64_t ix = ox * geom.stride + kx - geom.pad;
                    if (iy >= 0 && iy < geom.in_h && ix >= 0 &&
                        ix < geom.in_w) {
                      dst_c[iy * geom.in_w + ix] += *src;
                    }
                  }
                }
              }
            }
          }
        }
      });
}

}  // namespace nnr::tensor
