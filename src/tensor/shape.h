// Shape: a small, value-semantic dimension vector for dense tensors.
#pragma once

#include <array>
#include <cassert>
#include <cstdint>
#include <initializer_list>
#include <string>

namespace nnr::tensor {

/// Dense tensor shape, up to 4 dimensions (covers N/NC/NCHW layouts used by
/// the training stack). Value type; cheap to copy.
class Shape {
 public:
  static constexpr int kMaxRank = 4;

  Shape() = default;

  Shape(std::initializer_list<std::int64_t> dims) {
    assert(dims.size() <= kMaxRank);
    for (std::int64_t d : dims) {
      assert(d >= 0);
      dims_[rank_++] = d;
    }
  }

  [[nodiscard]] int rank() const noexcept { return rank_; }

  [[nodiscard]] std::int64_t operator[](int axis) const noexcept {
    assert(axis >= 0 && axis < rank_);
    return dims_[axis];
  }

  [[nodiscard]] std::int64_t numel() const noexcept {
    std::int64_t n = 1;
    for (int i = 0; i < rank_; ++i) n *= dims_[i];
    return n;
  }

  [[nodiscard]] bool operator==(const Shape& other) const noexcept {
    if (rank_ != other.rank_) return false;
    for (int i = 0; i < rank_; ++i) {
      if (dims_[i] != other.dims_[i]) return false;
    }
    return true;
  }

  [[nodiscard]] std::string to_string() const {
    std::string s = "[";
    for (int i = 0; i < rank_; ++i) {
      if (i > 0) s += ", ";
      s += std::to_string(dims_[i]);
    }
    return s + "]";
  }

 private:
  std::array<std::int64_t, kMaxRank> dims_{};
  int rank_ = 0;
};

}  // namespace nnr::tensor
