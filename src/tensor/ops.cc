#include "tensor/ops.h"

#include <cassert>

namespace nnr::tensor {

void axpy(float alpha, std::span<const float> x, std::span<float> y) noexcept {
  assert(x.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void scale(std::span<float> x, float alpha) noexcept {
  for (float& v : x) v *= alpha;
}

void copy_into(std::span<const float> src, std::span<float> dst) noexcept {
  assert(src.size() == dst.size());
  for (std::size_t i = 0; i < src.size(); ++i) dst[i] = src[i];
}

double squared_norm(std::span<const float> x) noexcept {
  double acc = 0.0;
  for (float v : x) acc += static_cast<double>(v) * static_cast<double>(v);
  return acc;
}

std::int64_t argmax(std::span<const float> x) noexcept {
  assert(!x.empty());
  std::size_t best = 0;
  for (std::size_t i = 1; i < x.size(); ++i) {
    if (x[i] > x[best]) best = i;
  }
  return static_cast<std::int64_t>(best);
}

}  // namespace nnr::tensor
