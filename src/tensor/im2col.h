// im2col / col2im lowering for convolution-as-GEMM.
//
// Forward convolution is lowered to gemm_nt over patch matrices — the same
// "implicit GEMM" strategy cuDNN uses — so the accumulation-ordering policy
// applies to convolutions exactly as it does to dense layers.
//
// Layout: input NCHW; the patch matrix is [N*OH*OW, C*KH*KW] with the
// contraction axis contiguous per output pixel.
#pragma once

#include <cstdint>

#include "tensor/tensor.h"

namespace nnr::tensor {

struct ConvGeometry {
  std::int64_t batch = 0;
  std::int64_t in_channels = 0;
  std::int64_t in_h = 0;
  std::int64_t in_w = 0;
  std::int64_t kernel = 0;  // square kernels (paper uses 1/3/5/7)
  std::int64_t stride = 1;
  std::int64_t pad = 0;

  [[nodiscard]] std::int64_t out_h() const noexcept {
    return (in_h + 2 * pad - kernel) / stride + 1;
  }
  [[nodiscard]] std::int64_t out_w() const noexcept {
    return (in_w + 2 * pad - kernel) / stride + 1;
  }
  [[nodiscard]] std::int64_t patch_size() const noexcept {
    return in_channels * kernel * kernel;
  }
  [[nodiscard]] std::int64_t out_pixels() const noexcept {
    return batch * out_h() * out_w();
  }
};

/// Expands `input` (shape {N, C, H, W}) into `cols`
/// (shape {N*OH*OW, C*K*K}). Out-of-bounds taps read as zero.
void im2col(const Tensor& input, const ConvGeometry& geom, Tensor& cols);

/// Scatter-adds `cols` (shape {N*OH*OW, C*K*K}) back into `grad_input`
/// (shape {N, C, H, W}); the inverse of im2col for gradient routing.
/// grad_input is zeroed first.
void col2im(const Tensor& cols, const ConvGeometry& geom, Tensor& grad_input);

}  // namespace nnr::tensor
