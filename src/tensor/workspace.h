// Workspace: a per-run scratch-tensor arena.
//
// The hot training path (Conv2D, Dense, im2col lowering) needs the same
// intermediate buffers every step — patch matrices, NCHW<->[P,C] repacks,
// transpose temporaries, gradient staging. Allocating them per step puts the
// allocator on the critical path and blows the cache with cold pages; the
// Workspace instead hands out slot-addressed tensors that persist across
// steps and are reallocated only when the requested element count changes
// (e.g. switching from the training to the evaluation batch size).
//
// Slots are keyed by (owner pointer, slot index), so layers address their
// scratch by `this` without coordinating globally. Contents are preserved
// between calls with an equal element count — Conv2D relies on this to hand
// its forward-pass patch matrix to backward() — but are otherwise
// unspecified: every user must fully overwrite a slot before reading it.
//
// A Workspace is single-threaded state: one per RunContext (one per
// replicate), never shared across concurrent runs.
#pragma once

#include <map>
#include <utility>

#include "tensor/tensor.h"

namespace nnr::tensor {

class Workspace {
 public:
  /// The scratch tensor for (owner, slot), shaped to `shape`. Storage is
  /// reused (and contents preserved) when the element count is unchanged;
  /// otherwise the slot is reallocated with zeroed contents.
  [[nodiscard]] Tensor& scratch(const void* owner, int slot,
                                const Shape& shape);

  /// Number of live slots (observability / tests).
  [[nodiscard]] std::size_t slot_count() const noexcept {
    return slots_.size();
  }

 private:
  std::map<std::pair<const void*, int>, Tensor> slots_;
};

}  // namespace nnr::tensor
