// Integration tests of the variance-isolation design: the qualitative
// findings the paper reports must emerge from the stack. These run at a
// reduced scale (smaller data / fewer epochs than the benches), so IMPL
// divergence is asserted on weights (L2), where it is already measurable;
// churn-level IMPL effects at full amplification are exercised by the
// bench binaries.
#include <gtest/gtest.h>

#include "core/replicates.h"
#include "core/study.h"
#include "data/synth_images.h"
#include "nn/zoo.h"

namespace nnr::core {
namespace {

class NoiseIsolation : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new data::ClassificationDataset(data::synth_cifar10(240, 120));
  }
  static void TearDownTestSuite() {
    delete dataset_;
    dataset_ = nullptr;
  }

  static TrainJob job(NoiseVariant variant) {
    TrainJob j;
    j.make_model = [] { return nn::small_cnn(10, true); };
    j.dataset = dataset_;
    j.recipe = cifar_recipe(10);
    j.variant = variant;
    j.device = hw::v100();
    j.base_seed = 0xBEEFull;
    return j;
  }

  static VariantSummary run(NoiseVariant variant, std::int64_t n) {
    const auto results = run_replicates(job(variant), n, 0);
    return summarize(results);
  }

  static data::ClassificationDataset* dataset_;
};

data::ClassificationDataset* NoiseIsolation::dataset_ = nullptr;

TEST_F(NoiseIsolation, ControlHasZeroChurnAndL2) {
  const VariantSummary control = run(NoiseVariant::kControl, 3);
  EXPECT_EQ(control.mean_churn, 0.0);
  EXPECT_NEAR(control.mean_l2, 0.0, 1e-12);
  EXPECT_NEAR(control.accuracy.stddev(), 0.0, 1e-12);
}

TEST_F(NoiseIsolation, BothIsolatedSourcesProduceInstability) {
  // Paper finding 2: "each is a significant source of uncertainty". At test
  // scale ALGO noise shows up in predictions; IMPL noise is measurable in
  // weight space and grows with training length (see bench/fig1).
  const VariantSummary algo = run(NoiseVariant::kAlgo, 4);
  const VariantSummary impl = run(NoiseVariant::kImpl, 4);
  EXPECT_GT(algo.mean_churn, 0.0);
  EXPECT_GT(algo.mean_l2, 0.0);
  EXPECT_GT(impl.mean_l2, 0.0)
      << "scheduler entropy did not perturb the trained weights";
}

TEST_F(NoiseIsolation, CombinedNoiseIsSubAdditive) {
  // Paper §3.1: ALGO+IMPL is "on par or only slightly higher" than the
  // individual sources — far below their sum.
  const VariantSummary algo = run(NoiseVariant::kAlgo, 4);
  const VariantSummary impl = run(NoiseVariant::kImpl, 4);
  const VariantSummary both = run(NoiseVariant::kAlgoPlusImpl, 4);
  EXPECT_GT(both.mean_churn, 0.0);
  EXPECT_LT(both.mean_churn,
            algo.mean_churn + impl.mean_churn + 0.05);
  EXPECT_LT(both.mean_l2, algo.mean_l2 + impl.mean_l2);
}

TEST_F(NoiseIsolation, ImplPerturbationGrowsWithTraining) {
  // Chaotic amplification: longer training amplifies the rounding
  // perturbation (the mechanism that turns 1-ulp differences into the
  // paper's 10-30% churn at 200 epochs).
  TrainJob short_job = job(NoiseVariant::kImpl);
  short_job.recipe = cifar_recipe(2);
  TrainJob long_job = job(NoiseVariant::kImpl);
  long_job.recipe = cifar_recipe(12);
  const VariantSummary short_run = summarize(run_replicates(short_job, 3, 0));
  const VariantSummary long_run = summarize(run_replicates(long_job, 3, 0));
  EXPECT_GT(long_run.mean_l2, short_run.mean_l2);
}

TEST_F(NoiseIsolation, TopLineAccuracySimilarAcrossVariants) {
  // Paper §3.1: top-line metrics barely move across noise regimes.
  const VariantSummary algo = run(NoiseVariant::kAlgo, 4);
  const VariantSummary impl = run(NoiseVariant::kImpl, 4);
  EXPECT_NEAR(algo.accuracy.mean(), impl.accuracy.mean(), 0.15);
}

}  // namespace
}  // namespace nnr::core
