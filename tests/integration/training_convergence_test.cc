// Convergence sanity: every model in the zoo must actually learn the
// synthetic tasks (otherwise the stability study would be measuring noise of
// untrained networks). Thresholds are deliberately loose — these are smoke
// tests at reduced scale; the benches run the full-scale cells.
#include <gtest/gtest.h>

#include "core/replicates.h"
#include "core/tasks.h"
#include "core/trainer.h"
#include "data/synth_images.h"
#include "nn/zoo.h"

namespace nnr::core {
namespace {

double accuracy_of(ModelFactory factory, const data::ClassificationDataset& ds,
                   TrainRecipe recipe) {
  TrainJob job;
  job.make_model = std::move(factory);
  job.dataset = &ds;
  job.recipe = recipe;
  job.variant = NoiseVariant::kControl;
  job.device = hw::v100();
  return train_replicate(job, 0).test_accuracy;
}

TEST(TrainingConvergence, SmallCnnWithBnLearns) {
  const auto ds = data::synth_cifar10(300, 150);
  TrainRecipe recipe = cifar_recipe(12);
  const double acc =
      accuracy_of([] { return nn::small_cnn(10, true); }, ds, recipe);
  EXPECT_GT(acc, 0.30) << "chance = 0.10";
}

TEST(TrainingConvergence, SmallCnnWithoutBnLearnsSlowly) {
  // The unnormalized net is the paper's hardest training cell; at reduced
  // epochs it must at least clear chance decisively.
  const auto ds = data::synth_cifar10(300, 150);
  TrainRecipe recipe = cifar_recipe(30);
  const double acc =
      accuracy_of([] { return nn::small_cnn(10, false); }, ds, recipe);
  EXPECT_GT(acc, 0.20);
}

TEST(TrainingConvergence, ResNet18sLearns) {
  const auto ds = data::synth_cifar10(300, 150);
  TrainRecipe recipe = cifar_recipe(10);
  recipe.base_lr = 0.02F;
  const double acc = accuracy_of([] { return nn::resnet18s(10); }, ds, recipe);
  EXPECT_GT(acc, 0.30);
}

TEST(TrainingConvergence, VggSLearns) {
  const auto ds = data::synth_cifar10(300, 150);
  TrainRecipe recipe = cifar_recipe(10);
  recipe.base_lr = 0.02F;
  const double acc = accuracy_of([] { return nn::vgg_s(10); }, ds, recipe);
  EXPECT_GT(acc, 0.30);
}

TEST(TrainingConvergence, MobileNetSLearns) {
  const auto ds = data::synth_cifar10(300, 150);
  TrainRecipe recipe = cifar_recipe(10);
  recipe.base_lr = 0.02F;
  const double acc =
      accuracy_of([] { return nn::mobilenet_s(10); }, ds, recipe);
  EXPECT_GT(acc, 0.30);
}

TEST(TrainingConvergence, ResNet50sLearns) {
  const auto ds = data::synth_imagenet(300, 150);
  TrainRecipe recipe = imagenet_recipe(10);
  recipe.base_lr = 0.05F;
  const double acc = accuracy_of([] { return nn::resnet50s(20); }, ds, recipe);
  EXPECT_GT(acc, 0.15) << "chance = 0.05";
}

TEST(TrainingConvergence, LossDecreasesOverTraining) {
  const auto ds = data::synth_cifar10(200, 100);
  TrainJob job;
  job.make_model = [] { return nn::small_cnn(10, true); };
  job.dataset = &ds;
  job.variant = NoiseVariant::kControl;
  job.device = hw::v100();
  job.recipe = cifar_recipe(1);
  const double loss_1_epoch = train_replicate(job, 0).final_train_loss;
  job.recipe = cifar_recipe(8);
  const double loss_8_epochs = train_replicate(job, 0).final_train_loss;
  EXPECT_LT(loss_8_epochs, loss_1_epoch);
}

TEST(TrainingConvergence, TaskPresetsConstructAndTrain) {
  // Every preset must produce a runnable job (quick 1-epoch smoke).
  for (Task task : {small_cnn_cifar10(), small_cnn_bn_cifar10(),
                    resnet18_cifar10()}) {
    TrainJob job = task.job(NoiseVariant::kControl, hw::v100());
    job.recipe.epochs = 1;
    const RunResult result = train_replicate(job, 0);
    EXPECT_EQ(static_cast<std::int64_t>(result.test_predictions.size()),
              task.dataset.test.size())
        << task.name;
  }
}

}  // namespace
}  // namespace nnr::core
