// End-to-end smoke test of the quickstart flow (examples/quickstart.cpp):
// a small synthetic task, 2 replicates, summarized via the Study machinery.
// Asserts the churn numbers are finite and — under CONTROL, i.e.
// DeterminismMode::kDeterministic with pinned seeds — exactly reproducible.
#include <gtest/gtest.h>

#include <cmath>

#include "core/recipe.h"
#include "core/replicates.h"
#include "core/study.h"
#include "core/trainer.h"
#include "data/synth_images.h"
#include "hw/device.h"
#include "nn/zoo.h"

namespace nnr::core {
namespace {

class QuickstartSmoke : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new data::ClassificationDataset(data::synth_cifar10(96, 48));
  }
  static void TearDownTestSuite() {
    delete dataset_;
    dataset_ = nullptr;
  }

  static TrainJob job(NoiseVariant variant) {
    TrainJob j;
    j.make_model = [] { return nn::small_cnn(10, true); };
    j.dataset = dataset_;
    j.recipe = cifar_recipe(/*epochs=*/2);
    j.variant = variant;
    j.device = hw::v100();
    return j;
  }

  static data::ClassificationDataset* dataset_;
};

data::ClassificationDataset* QuickstartSmoke::dataset_ = nullptr;

TEST_F(QuickstartSmoke, ImplNoiseProducesFiniteSummary) {
  const auto results = run_replicates(job(NoiseVariant::kImpl), 2, 1);
  ASSERT_EQ(results.size(), 2U);
  const VariantSummary summary = summarize(results);
  EXPECT_TRUE(std::isfinite(summary.accuracy.mean()));
  EXPECT_TRUE(std::isfinite(summary.accuracy.stddev()));
  EXPECT_TRUE(std::isfinite(summary.mean_churn));
  EXPECT_TRUE(std::isfinite(summary.mean_l2));
  EXPECT_GE(summary.mean_churn, 0.0);
  EXPECT_LE(summary.mean_churn, 1.0);
}

TEST_F(QuickstartSmoke, ControlIsBitwiseReproducible) {
  const auto first = run_replicates(job(NoiseVariant::kControl), 2, 1);
  ASSERT_EQ(first.size(), 2U);

  // Under CONTROL the two replicates must be bitwise identical...
  EXPECT_EQ(first[0].final_weights, first[1].final_weights);
  EXPECT_EQ(first[0].test_predictions, first[1].test_predictions);

  const VariantSummary summary = summarize(first);
  EXPECT_TRUE(std::isfinite(summary.accuracy.mean()));
  EXPECT_EQ(summary.mean_churn, 0.0);
  EXPECT_EQ(summary.mean_l2, 0.0);

  // ...and the whole study must reproduce run-to-run (host-thread schedule
  // must not leak into results: rerun with a different thread count).
  const auto second = run_replicates(job(NoiseVariant::kControl), 2, 2);
  ASSERT_EQ(second.size(), 2U);
  EXPECT_EQ(first[0].final_weights, second[0].final_weights);
  EXPECT_EQ(first[0].test_predictions, second[0].test_predictions);
  const VariantSummary resummary = summarize(second);
  EXPECT_EQ(summary.accuracy.mean(), resummary.accuracy.mean());
  EXPECT_EQ(summary.mean_churn, resummary.mean_churn);
}

}  // namespace
}  // namespace nnr::core
