// Socket + Listener + frame transport over a real loopback connection:
// ephemeral ports, exact-count I/O, send_frame/recv_frame round trips,
// clean failure on EOF and on unreachable peers, and the IoStatus /
// RecvStatus taxonomy: a timeout (slow peer, retryable at a boundary) must
// never be conflated with a close or a desynchronized stream.
#include "net/socket.h"

#include <chrono>
#include <cstring>
#include <thread>

#include <gtest/gtest.h>

#include "net/frame.h"

namespace nnr::net {
namespace {

/// A connected loopback (client, server_side) pair.
struct SocketPair {
  Socket client;
  Socket server;
};

SocketPair make_pair_on_loopback(int io_timeout_ms) {
  Listener listener;
  EXPECT_TRUE(listener.listen_on("127.0.0.1", 0));
  SocketPair pair;
  pair.client = connect_tcp("127.0.0.1", listener.port(), 1000, io_timeout_ms);
  EXPECT_TRUE(pair.client.valid());
  for (int i = 0; i < 100 && !pair.server.valid(); ++i) {
    pair.server = listener.accept_conn();
    if (!pair.server.valid()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  EXPECT_TRUE(pair.server.valid());
  return pair;
}

TEST(SocketTest, EphemeralListenerReportsItsPort) {
  Listener listener;
  ASSERT_TRUE(listener.listen_on("127.0.0.1", 0));
  EXPECT_GT(listener.port(), 0);
}

TEST(SocketTest, ConnectToClosedPortFailsFast) {
  // Bind then immediately drop a listener to obtain a port that is closed.
  std::uint16_t dead_port = 0;
  {
    Listener listener;
    ASSERT_TRUE(listener.listen_on("127.0.0.1", 0));
    dead_port = listener.port();
  }
  Socket sock = connect_tcp("127.0.0.1", dead_port, /*connect_timeout_ms=*/500,
                            /*io_timeout_ms=*/500);
  EXPECT_FALSE(sock.valid());
}

TEST(SocketTest, FramesRoundTripOverLoopback) {
  Listener listener;
  ASSERT_TRUE(listener.listen_on("127.0.0.1", 0));

  // Echo server: one connection, echo every frame with opcode + 1.
  std::thread server([&listener] {
    Socket conn;
    for (int i = 0; i < 100 && !conn.valid(); ++i) {
      conn = listener.accept_conn();
      if (!conn.valid()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
    }
    ASSERT_TRUE(conn.valid());
    for (;;) {
      auto frame = recv_frame(conn);
      if (!frame.has_value()) return;  // client closed
      ASSERT_TRUE(send_frame(conn, frame->opcode + 1, frame->body));
    }
  });

  Socket client = connect_tcp("127.0.0.1", listener.port(), 1000, 1000);
  ASSERT_TRUE(client.valid());
  for (int i = 0; i < 3; ++i) {
    const std::string body = "message " + std::to_string(i) +
                             std::string(1000 * i, '\xAB');
    ASSERT_TRUE(send_frame(client, static_cast<std::uint8_t>(10 + i), body));
    auto echoed = recv_frame(client);
    ASSERT_TRUE(echoed.has_value());
    EXPECT_EQ(echoed->opcode, 11 + i);
    EXPECT_EQ(echoed->body, body);
  }
  client.close();
  server.join();
}

TEST(SocketTest, RecvFrameReturnsNulloptOnEof) {
  Listener listener;
  ASSERT_TRUE(listener.listen_on("127.0.0.1", 0));
  Socket client = connect_tcp("127.0.0.1", listener.port(), 1000, 1000);
  ASSERT_TRUE(client.valid());
  Socket server_side;
  for (int i = 0; i < 100 && !server_side.valid(); ++i) {
    server_side = listener.accept_conn();
    if (!server_side.valid()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  ASSERT_TRUE(server_side.valid());
  client.close();
  EXPECT_FALSE(recv_frame(server_side).has_value());
}

TEST(SocketTest, RecvExactTimeoutOnSilentPeerIsCleanBoundary) {
  SocketPair pair = make_pair_on_loopback(/*io_timeout_ms=*/100);
  char buf[8];
  std::size_t got = 99;
  EXPECT_EQ(pair.client.recv_exact(buf, sizeof(buf), &got),
            IoStatus::kTimeout)
      << "a silent-but-open peer is a timeout, not a close";
  EXPECT_EQ(got, 0u) << "boundary timeout: nothing consumed, safe to retry";
}

TEST(SocketTest, RecvExactPeerCloseIsClosedNotTimeout) {
  SocketPair pair = make_pair_on_loopback(/*io_timeout_ms=*/1000);
  pair.server.close();
  char buf[8];
  std::size_t got = 99;
  EXPECT_EQ(pair.client.recv_exact(buf, sizeof(buf), &got), IoStatus::kClosed);
  EXPECT_EQ(got, 0u);
}

TEST(SocketTest, RecvExactMidMessageTimeoutReportsPartialBytes) {
  SocketPair pair = make_pair_on_loopback(/*io_timeout_ms=*/200);
  ASSERT_EQ(pair.server.send_all("abc", 3), IoStatus::kOk);
  char buf[8];
  std::size_t got = 0;
  EXPECT_EQ(pair.client.recv_exact(buf, sizeof(buf), &got),
            IoStatus::kTimeout);
  EXPECT_EQ(got, 3u) << "a mid-message timeout must expose the partial read "
                        "so the caller can treat the stream as desynced";
  EXPECT_EQ(std::memcmp(buf, "abc", 3), 0);
}

TEST(SocketTest, RecvExactEofMidMessageIsClosed) {
  SocketPair pair = make_pair_on_loopback(/*io_timeout_ms=*/1000);
  ASSERT_EQ(pair.server.send_all("abc", 3), IoStatus::kOk);
  pair.server.close();
  char buf[8];
  std::size_t got = 0;
  EXPECT_EQ(pair.client.recv_exact(buf, sizeof(buf), &got), IoStatus::kClosed);
  EXPECT_EQ(got, 3u);
}

TEST(SocketTest, SendAllToClosedPeerIsClosedNotGenericError) {
  SocketPair pair = make_pair_on_loopback(/*io_timeout_ms=*/1000);
  pair.server.close();
  // The first send after the FIN may still land in the kernel buffer (and
  // draws the peer's RST); keep sending until the failure surfaces.
  std::string chunk(64 * 1024, 'x');
  IoStatus status = IoStatus::kOk;
  for (int i = 0; i < 100 && status == IoStatus::kOk; ++i) {
    status = pair.client.send_all(chunk.data(), chunk.size());
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(status, IoStatus::kClosed)
      << "EPIPE/ECONNRESET must map to kClosed, not a generic failure";
}

TEST(SocketTest, RecvFrameExDistinguishesTimeoutFromCloseAndDesync) {
  {  // Silent peer: clean boundary timeout — the caller may re-await.
    SocketPair pair = make_pair_on_loopback(/*io_timeout_ms=*/100);
    EXPECT_EQ(recv_frame_ex(pair.client).status, RecvStatus::kTimeout);
  }
  {  // Orderly close at a boundary.
    SocketPair pair = make_pair_on_loopback(/*io_timeout_ms=*/1000);
    pair.server.close();
    EXPECT_EQ(recv_frame_ex(pair.client).status, RecvStatus::kClosed);
  }
  {  // A timeout striking mid-frame has desynchronized the stream: kError,
     // never the retryable kTimeout.
    SocketPair pair = make_pair_on_loopback(/*io_timeout_ms=*/100);
    ASSERT_EQ(pair.server.send_all("\x02", 1), IoStatus::kOk);
    EXPECT_EQ(recv_frame_ex(pair.client).status, RecvStatus::kError);
  }
}

}  // namespace
}  // namespace nnr::net
