// Socket + Listener + frame transport over a real loopback connection:
// ephemeral ports, exact-count I/O, send_frame/recv_frame round trips,
// clean failure on EOF and on unreachable peers, and the IoStatus /
// RecvStatus taxonomy: a timeout (slow peer, retryable at a boundary) must
// never be conflated with a close or a desynchronized stream.
#include "net/socket.h"

#include <sys/socket.h>

#include <chrono>
#include <cstring>
#include <thread>

#include <gtest/gtest.h>

#include "net/frame.h"

namespace nnr::net {
namespace {

/// A connected loopback (client, server_side) pair.
struct SocketPair {
  Socket client;
  Socket server;
};

SocketPair make_pair_on_loopback(int io_timeout_ms) {
  Listener listener;
  EXPECT_TRUE(listener.listen_on("127.0.0.1", 0));
  SocketPair pair;
  pair.client = connect_tcp("127.0.0.1", listener.port(), 1000, io_timeout_ms);
  EXPECT_TRUE(pair.client.valid());
  for (int i = 0; i < 100 && !pair.server.valid(); ++i) {
    pair.server = listener.accept_conn();
    if (!pair.server.valid()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  EXPECT_TRUE(pair.server.valid());
  return pair;
}

TEST(SocketTest, EphemeralListenerReportsItsPort) {
  Listener listener;
  ASSERT_TRUE(listener.listen_on("127.0.0.1", 0));
  EXPECT_GT(listener.port(), 0);
}

TEST(SocketTest, ConnectToClosedPortFailsFast) {
  // Bind then immediately drop a listener to obtain a port that is closed.
  std::uint16_t dead_port = 0;
  {
    Listener listener;
    ASSERT_TRUE(listener.listen_on("127.0.0.1", 0));
    dead_port = listener.port();
  }
  Socket sock = connect_tcp("127.0.0.1", dead_port, /*connect_timeout_ms=*/500,
                            /*io_timeout_ms=*/500);
  EXPECT_FALSE(sock.valid());
}

TEST(SocketTest, FramesRoundTripOverLoopback) {
  Listener listener;
  ASSERT_TRUE(listener.listen_on("127.0.0.1", 0));

  // Echo server: one connection, echo every frame with opcode + 1.
  std::thread server([&listener] {
    Socket conn;
    for (int i = 0; i < 100 && !conn.valid(); ++i) {
      conn = listener.accept_conn();
      if (!conn.valid()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
    }
    ASSERT_TRUE(conn.valid());
    for (;;) {
      auto frame = recv_frame(conn);
      if (!frame.has_value()) return;  // client closed
      ASSERT_TRUE(send_frame(conn, frame->opcode + 1, frame->body));
    }
  });

  Socket client = connect_tcp("127.0.0.1", listener.port(), 1000, 1000);
  ASSERT_TRUE(client.valid());
  for (int i = 0; i < 3; ++i) {
    const std::string body = "message " + std::to_string(i) +
                             std::string(1000 * i, '\xAB');
    ASSERT_TRUE(send_frame(client, static_cast<std::uint8_t>(10 + i), body));
    auto echoed = recv_frame(client);
    ASSERT_TRUE(echoed.has_value());
    EXPECT_EQ(echoed->opcode, 11 + i);
    EXPECT_EQ(echoed->body, body);
  }
  client.close();
  server.join();
}

TEST(SocketTest, RecvFrameReturnsNulloptOnEof) {
  Listener listener;
  ASSERT_TRUE(listener.listen_on("127.0.0.1", 0));
  Socket client = connect_tcp("127.0.0.1", listener.port(), 1000, 1000);
  ASSERT_TRUE(client.valid());
  Socket server_side;
  for (int i = 0; i < 100 && !server_side.valid(); ++i) {
    server_side = listener.accept_conn();
    if (!server_side.valid()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  ASSERT_TRUE(server_side.valid());
  client.close();
  EXPECT_FALSE(recv_frame(server_side).has_value());
}

TEST(SocketTest, RecvExactTimeoutOnSilentPeerIsCleanBoundary) {
  SocketPair pair = make_pair_on_loopback(/*io_timeout_ms=*/100);
  char buf[8];
  std::size_t got = 99;
  EXPECT_EQ(pair.client.recv_exact(buf, sizeof(buf), &got),
            IoStatus::kTimeout)
      << "a silent-but-open peer is a timeout, not a close";
  EXPECT_EQ(got, 0u) << "boundary timeout: nothing consumed, safe to retry";
}

TEST(SocketTest, RecvExactPeerCloseIsClosedNotTimeout) {
  SocketPair pair = make_pair_on_loopback(/*io_timeout_ms=*/1000);
  pair.server.close();
  char buf[8];
  std::size_t got = 99;
  EXPECT_EQ(pair.client.recv_exact(buf, sizeof(buf), &got), IoStatus::kClosed);
  EXPECT_EQ(got, 0u);
}

TEST(SocketTest, RecvExactMidMessageTimeoutReportsPartialBytes) {
  SocketPair pair = make_pair_on_loopback(/*io_timeout_ms=*/200);
  ASSERT_EQ(pair.server.send_all("abc", 3), IoStatus::kOk);
  char buf[8];
  std::size_t got = 0;
  EXPECT_EQ(pair.client.recv_exact(buf, sizeof(buf), &got),
            IoStatus::kTimeout);
  EXPECT_EQ(got, 3u) << "a mid-message timeout must expose the partial read "
                        "so the caller can treat the stream as desynced";
  EXPECT_EQ(std::memcmp(buf, "abc", 3), 0);
}

TEST(SocketTest, RecvExactEofMidMessageIsClosed) {
  SocketPair pair = make_pair_on_loopback(/*io_timeout_ms=*/1000);
  ASSERT_EQ(pair.server.send_all("abc", 3), IoStatus::kOk);
  pair.server.close();
  char buf[8];
  std::size_t got = 0;
  EXPECT_EQ(pair.client.recv_exact(buf, sizeof(buf), &got), IoStatus::kClosed);
  EXPECT_EQ(got, 3u);
}

TEST(SocketTest, SendAllToClosedPeerIsClosedNotGenericError) {
  SocketPair pair = make_pair_on_loopback(/*io_timeout_ms=*/1000);
  pair.server.close();
  // The first send after the FIN may still land in the kernel buffer (and
  // draws the peer's RST); keep sending until the failure surfaces.
  std::string chunk(64 * 1024, 'x');
  IoStatus status = IoStatus::kOk;
  for (int i = 0; i < 100 && status == IoStatus::kOk; ++i) {
    status = pair.client.send_all(chunk.data(), chunk.size());
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(status, IoStatus::kClosed)
      << "EPIPE/ECONNRESET must map to kClosed, not a generic failure";
}

TEST(SocketTest, SendAllMidFrameShortWriteReportsPartialBytes) {
  // Force the short write: shrink the client's send buffer, never read on
  // the peer, and push far more than the kernel can queue. SO_SNDTIMEO
  // then expires mid-send — the caller must learn exactly how many bytes
  // the kernel accepted, because a partially written frame has
  // desynchronized the stream and must NOT be retried on this connection.
  SocketPair pair = make_pair_on_loopback(/*io_timeout_ms=*/200);
  const int tiny = 4096;
  ASSERT_EQ(::setsockopt(pair.client.fd(), SOL_SOCKET, SO_SNDBUF, &tiny,
                         sizeof(tiny)),
            0);
  const std::string blob(8 * 1024 * 1024, '\x42');
  std::size_t sent = 0;
  const IoStatus status = pair.client.send_all(blob.data(), blob.size(), &sent);
  EXPECT_EQ(status, IoStatus::kTimeout)
      << "a full send buffer on a blocking socket is SO_SNDTIMEO -> kTimeout";
  EXPECT_GT(sent, 0u) << "some bytes were accepted before the stall";
  EXPECT_LT(sent, blob.size()) << "but not all — this is the desync case";
}

TEST(SocketTest, SendFrameFailsOnShortWriteAndDesyncsTheStream) {
  // The frame layer's contract: any send_all failure (even kTimeout) is
  // terminal for the connection. send_frame must report false, and the
  // bytes already on the wire must not parse as a clean frame.
  SocketPair pair = make_pair_on_loopback(/*io_timeout_ms=*/200);
  const int tiny = 4096;
  ASSERT_EQ(::setsockopt(pair.client.fd(), SOL_SOCKET, SO_SNDBUF, &tiny,
                         sizeof(tiny)),
            0);
  const std::string body(8 * 1024 * 1024, '\x5A');
  EXPECT_FALSE(send_frame(pair.client, /*opcode=*/7, body));
  // The receiver sees a truncated frame: the length prefix arrived but the
  // payload can never complete — kError (desync), never a clean frame and
  // never the retryable boundary timeout. (accept_conn sockets have no
  // timeout by default; bound the wait so the desync surfaces.)
  pair.server.set_io_timeout_ms(300);
  EXPECT_EQ(recv_frame_ex(pair.server).status, RecvStatus::kError);
}

TEST(SocketTest, RecvFrameExDistinguishesTimeoutFromCloseAndDesync) {
  {  // Silent peer: clean boundary timeout — the caller may re-await.
    SocketPair pair = make_pair_on_loopback(/*io_timeout_ms=*/100);
    EXPECT_EQ(recv_frame_ex(pair.client).status, RecvStatus::kTimeout);
  }
  {  // Orderly close at a boundary.
    SocketPair pair = make_pair_on_loopback(/*io_timeout_ms=*/1000);
    pair.server.close();
    EXPECT_EQ(recv_frame_ex(pair.client).status, RecvStatus::kClosed);
  }
  {  // A timeout striking mid-frame has desynchronized the stream: kError,
     // never the retryable kTimeout.
    SocketPair pair = make_pair_on_loopback(/*io_timeout_ms=*/100);
    ASSERT_EQ(pair.server.send_all("\x02", 1), IoStatus::kOk);
    EXPECT_EQ(recv_frame_ex(pair.client).status, RecvStatus::kError);
  }
}

}  // namespace
}  // namespace nnr::net
