// Socket + Listener + frame transport over a real loopback connection:
// ephemeral ports, exact-count I/O, send_frame/recv_frame round trips, and
// clean failure on EOF and on unreachable peers.
#include "net/socket.h"

#include <thread>

#include <gtest/gtest.h>

#include "net/frame.h"

namespace nnr::net {
namespace {

TEST(SocketTest, EphemeralListenerReportsItsPort) {
  Listener listener;
  ASSERT_TRUE(listener.listen_on("127.0.0.1", 0));
  EXPECT_GT(listener.port(), 0);
}

TEST(SocketTest, ConnectToClosedPortFailsFast) {
  // Bind then immediately drop a listener to obtain a port that is closed.
  std::uint16_t dead_port = 0;
  {
    Listener listener;
    ASSERT_TRUE(listener.listen_on("127.0.0.1", 0));
    dead_port = listener.port();
  }
  Socket sock = connect_tcp("127.0.0.1", dead_port, /*connect_timeout_ms=*/500,
                            /*io_timeout_ms=*/500);
  EXPECT_FALSE(sock.valid());
}

TEST(SocketTest, FramesRoundTripOverLoopback) {
  Listener listener;
  ASSERT_TRUE(listener.listen_on("127.0.0.1", 0));

  // Echo server: one connection, echo every frame with opcode + 1.
  std::thread server([&listener] {
    Socket conn;
    for (int i = 0; i < 100 && !conn.valid(); ++i) {
      conn = listener.accept_conn();
      if (!conn.valid()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
    }
    ASSERT_TRUE(conn.valid());
    for (;;) {
      auto frame = recv_frame(conn);
      if (!frame.has_value()) return;  // client closed
      ASSERT_TRUE(send_frame(conn, frame->opcode + 1, frame->body));
    }
  });

  Socket client = connect_tcp("127.0.0.1", listener.port(), 1000, 1000);
  ASSERT_TRUE(client.valid());
  for (int i = 0; i < 3; ++i) {
    const std::string body = "message " + std::to_string(i) +
                             std::string(1000 * i, '\xAB');
    ASSERT_TRUE(send_frame(client, static_cast<std::uint8_t>(10 + i), body));
    auto echoed = recv_frame(client);
    ASSERT_TRUE(echoed.has_value());
    EXPECT_EQ(echoed->opcode, 11 + i);
    EXPECT_EQ(echoed->body, body);
  }
  client.close();
  server.join();
}

TEST(SocketTest, RecvFrameReturnsNulloptOnEof) {
  Listener listener;
  ASSERT_TRUE(listener.listen_on("127.0.0.1", 0));
  Socket client = connect_tcp("127.0.0.1", listener.port(), 1000, 1000);
  ASSERT_TRUE(client.valid());
  Socket server_side;
  for (int i = 0; i < 100 && !server_side.valid(); ++i) {
    server_side = listener.accept_conn();
    if (!server_side.valid()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  ASSERT_TRUE(server_side.valid());
  client.close();
  EXPECT_FALSE(recv_frame(server_side).has_value());
}

}  // namespace
}  // namespace nnr::net
