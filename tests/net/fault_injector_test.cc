// FaultInjector: the spec grammar, the determinism contract (same spec +
// seed => the exact same fault schedule, the whole point of Philox-driven
// chaos), rate sanity over many draws, and the Socket seam — injected
// drops/corruption/resets/delays must surface through real loopback I/O
// exactly as the fault model documents.
#include "net/fault_injector.h"

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "net/frame.h"
#include "net/socket.h"

namespace nnr::net {
namespace {

// ---------------------------------------------------------------- parsing

TEST(FaultSpecTest, ParsesTheFullExampleSpec) {
  const auto spec =
      FaultSpec::parse("drop=0.05,delay_ms=20:0.10,corrupt=0.02,reset=0.02,seed=7");
  ASSERT_TRUE(spec.has_value());
  EXPECT_DOUBLE_EQ(spec->drop, 0.05);
  EXPECT_DOUBLE_EQ(spec->corrupt, 0.02);
  EXPECT_DOUBLE_EQ(spec->reset, 0.02);
  EXPECT_DOUBLE_EQ(spec->delay_prob, 0.10);
  EXPECT_EQ(spec->delay_ms, 20u);
  EXPECT_EQ(spec->seed, 7u);
  EXPECT_TRUE(spec->any());
}

TEST(FaultSpecTest, DelayProbabilityDefaultsToOne) {
  const auto spec = FaultSpec::parse("delay_ms=5");
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->delay_ms, 5u);
  EXPECT_DOUBLE_EQ(spec->delay_prob, 1.0);
  EXPECT_TRUE(spec->any());
}

TEST(FaultSpecTest, EmptySpecParsesToNoFaults) {
  const auto spec = FaultSpec::parse("");
  ASSERT_TRUE(spec.has_value());
  EXPECT_FALSE(spec->any());
}

TEST(FaultSpecTest, MalformedSpecsAreRejectedNotGuessed) {
  // A chaos run with a typo'd spec must fail loudly, not silently run
  // fault-free and "pass".
  const char* bad[] = {
      "drop",            // no value
      "drop=",           // empty value
      "drop=1.5",        // probability out of range
      "drop=-0.1",       // negative probability
      "drop=abc",        // not a number
      "delay_ms=20000",  // delay above the 10s wedge guard
      "delay_ms=20:1.5", // delay probability out of range
      "delay_ms=20:",    // dangling colon
      "seed=abc",        // not an integer
      "unknown=1",       // unknown key
      "drop=0.1,,seed=2" // empty token
  };
  for (const char* text : bad) {
    EXPECT_FALSE(FaultSpec::parse(text).has_value()) << "spec: " << text;
  }
}

// ------------------------------------------------------------ round-trip

/// parse(to_string(spec)) must reproduce every effective field — the law
/// that makes a logged spec replayable verbatim.
void expect_round_trips(const FaultSpec& spec) {
  const std::string text = spec.to_string();
  const auto back = FaultSpec::parse(text);
  ASSERT_TRUE(back.has_value()) << "to_string produced an unparseable spec: '"
                                << text << "'";
  EXPECT_DOUBLE_EQ(back->drop, spec.drop) << text;
  EXPECT_DOUBLE_EQ(back->corrupt, spec.corrupt) << text;
  EXPECT_DOUBLE_EQ(back->reset, spec.reset) << text;
  EXPECT_EQ(back->seed, spec.seed) << text;
  // Delay is effective only when it can fire; an ineffective delay may
  // canonicalize away entirely.
  if (spec.delay_prob > 0.0 && spec.delay_ms > 0) {
    EXPECT_EQ(back->delay_ms, spec.delay_ms) << text;
    EXPECT_DOUBLE_EQ(back->delay_prob, spec.delay_prob) << text;
  } else {
    EXPECT_FALSE(back->delay_prob > 0.0 && back->delay_ms > 0) << text;
  }
  // And the canonical form is a fixed point: one more trip is identity.
  EXPECT_EQ(back->to_string(), text);
}

TEST(FaultSpecTest, ToStringRoundTripsParsedSpecs) {
  const char* specs[] = {
      "drop=0.05,delay_ms=20:0.10,corrupt=0.02,reset=0.02,seed=7",
      "drop=0.1",
      "delay_ms=5",           // bare delay: probability 1
      "delay_ms=20:0.333333", // six decimals survive the trip
      "reset=1",              // certain fault
      "seed=18446744073709551615",  // max u64 seed
      "",                     // no-fault spec
  };
  for (const char* text : specs) {
    const auto spec = FaultSpec::parse(text);
    ASSERT_TRUE(spec.has_value()) << text;
    expect_round_trips(*spec);
  }
}

TEST(FaultSpecTest, ToStringEmitsOnlyEffectiveFields) {
  EXPECT_EQ(FaultSpec{}.to_string(), "") << "all-defaults prints empty";

  FaultSpec ineffective;
  ineffective.delay_ms = 50;  // delay_prob stays 0: can never fire
  ineffective.seed = 0;       // the default seed disappears too
  EXPECT_EQ(ineffective.to_string(), "");

  FaultSpec certain_delay;
  certain_delay.delay_prob = 1.0;
  certain_delay.delay_ms = 20;
  EXPECT_EQ(certain_delay.to_string(), "delay_ms=20")
      << "probability 1 is the bare-delay form, not delay_ms=20:1";

  FaultSpec mixed;
  mixed.drop = 0.5;
  mixed.reset = 0.0;  // zero-probability faults are omitted
  mixed.seed = 9;
  EXPECT_EQ(mixed.to_string(), "drop=0.5,seed=9");
  expect_round_trips(mixed);
}

TEST(FaultSpecTest, ToStringOfHandBuiltSpecsRoundTrips) {
  FaultSpec spec;
  spec.drop = 0.125;
  spec.corrupt = 0.0625;
  spec.reset = 0.25;
  spec.delay_prob = 0.5;
  spec.delay_ms = 7;
  spec.seed = 0xFEED;
  expect_round_trips(spec);
  EXPECT_EQ(spec.to_string(),
            "drop=0.125,corrupt=0.0625,reset=0.25,delay_ms=7:0.5,seed=65261");
}

// ----------------------------------------------------------- determinism

FaultSpec chaos_spec(std::uint64_t seed) {
  FaultSpec spec;
  spec.drop = 0.10;
  spec.corrupt = 0.05;
  spec.reset = 0.05;
  spec.delay_prob = 0.10;
  spec.delay_ms = 1;
  spec.seed = seed;
  return spec;
}

TEST(FaultInjectorTest, SameSpecAndSeedReplayTheExactSchedule) {
  FaultInjector a(chaos_spec(7));
  FaultInjector b(chaos_spec(7));
  for (std::uint64_t i = 0; i < 4096; ++i) {
    const FaultDecision da = a.decide(i);
    const FaultDecision db = b.decide(i);
    EXPECT_EQ(da.drop, db.drop) << "event " << i;
    EXPECT_EQ(da.corrupt, db.corrupt) << "event " << i;
    EXPECT_EQ(da.reset, db.reset) << "event " << i;
    EXPECT_EQ(da.delay_ms, db.delay_ms) << "event " << i;
    EXPECT_EQ(da.corrupt_bit, db.corrupt_bit) << "event " << i;
  }
}

TEST(FaultInjectorTest, DifferentSeedsProduceDifferentSchedules) {
  FaultInjector a(chaos_spec(7));
  FaultInjector b(chaos_spec(8));
  int differing = 0;
  for (std::uint64_t i = 0; i < 4096; ++i) {
    const FaultDecision da = a.decide(i);
    const FaultDecision db = b.decide(i);
    if (da.drop != db.drop || da.corrupt != db.corrupt ||
        da.reset != db.reset || da.delay_ms != db.delay_ms) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 100) << "seed must actually steer the schedule";
}

TEST(FaultInjectorTest, NextWalksTheSameStreamAsDecide) {
  FaultInjector walker(chaos_spec(42));
  FaultInjector oracle(chaos_spec(42));
  for (std::uint64_t i = 0; i < 256; ++i) {
    const FaultDecision got = walker.next();
    const FaultDecision want = oracle.decide(i);
    EXPECT_EQ(got.drop, want.drop) << "event " << i;
    EXPECT_EQ(got.corrupt, want.corrupt) << "event " << i;
    EXPECT_EQ(got.reset, want.reset) << "event " << i;
  }
  EXPECT_EQ(walker.events(), 256u);
}

TEST(FaultInjectorTest, AtMostOneTerminalFaultPerDecision) {
  FaultSpec spec;  // extreme rates to force collisions
  spec.drop = 0.5;
  spec.corrupt = 0.5;
  spec.reset = 0.5;
  spec.seed = 3;
  FaultInjector injector(spec);
  for (std::uint64_t i = 0; i < 2048; ++i) {
    const FaultDecision d = injector.decide(i);
    EXPECT_LE(int{d.drop} + int{d.corrupt} + int{d.reset}, 1) << "event " << i;
  }
}

TEST(FaultInjectorTest, ObservedRatesTrackTheSpec) {
  FaultSpec spec;
  spec.drop = 0.20;
  spec.reset = 0.10;
  spec.seed = 11;
  FaultInjector injector(spec);
  const int n = 20'000;
  int drops = 0;
  int resets = 0;
  for (int i = 0; i < n; ++i) {
    const FaultDecision d = injector.decide(static_cast<std::uint64_t>(i));
    drops += d.drop ? 1 : 0;
    resets += d.reset ? 1 : 0;
  }
  // Loose 3-sigma-ish bands: this is a sanity check on the u01 mapping and
  // threshold logic, not a statistics paper.
  EXPECT_NEAR(static_cast<double>(drops) / n, 0.20, 0.02);
  EXPECT_NEAR(static_cast<double>(resets) / n, 0.10, 0.02);
}

TEST(FaultInjectorTest, ZeroSpecNeverFires) {
  FaultInjector injector(FaultSpec{});
  for (std::uint64_t i = 0; i < 1024; ++i) {
    const FaultDecision d = injector.decide(i);
    EXPECT_FALSE(d.drop || d.corrupt || d.reset);
    EXPECT_EQ(d.delay_ms, 0u);
  }
}

// ------------------------------------------------------------ install/seam

TEST(FaultInjectorTest, ActiveIsNullWhenNothingInstalled) {
  if (std::getenv("NNR_FAULT_SPEC") != nullptr) {
    GTEST_SKIP() << "NNR_FAULT_SPEC set in this environment";
  }
  EXPECT_EQ(FaultInjector::active(), nullptr);
}

TEST(FaultInjectorTest, ScopedInstallArmsAndRestores) {
  FaultInjector* before = FaultInjector::active();
  FaultInjector injector(chaos_spec(1));
  {
    FaultInjector::ScopedInstall guard(&injector);
    EXPECT_EQ(FaultInjector::active(), &injector);
  }
  EXPECT_EQ(FaultInjector::active(), before);
}

// ------------------------------------------------- faults on the real wire

/// A connected loopback (client, server_side) pair. Mirrors socket_test.cc.
struct SocketPair {
  Socket client;
  Socket server;
};

SocketPair make_pair_on_loopback(int io_timeout_ms) {
  Listener listener;
  EXPECT_TRUE(listener.listen_on("127.0.0.1", 0));
  SocketPair pair;
  pair.client = connect_tcp("127.0.0.1", listener.port(), 1000, io_timeout_ms);
  EXPECT_TRUE(pair.client.valid());
  for (int i = 0; i < 100 && !pair.server.valid(); ++i) {
    pair.server = listener.accept_conn();
    if (!pair.server.valid()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  EXPECT_TRUE(pair.server.valid());
  // accept_conn() sockets have no timeout; these tests recv on the server
  // side and must never hang on a dropped/short frame.
  pair.server.set_io_timeout_ms(io_timeout_ms);
  return pair;
}

TEST(FaultInjectorSocketTest, DroppedSendVanishesAndThePeerTimesOut) {
  SocketPair pair = make_pair_on_loopback(/*io_timeout_ms=*/150);
  FaultSpec spec;
  spec.drop = 1.0;
  FaultInjector injector(spec);
  FaultInjector::ScopedInstall guard(&injector);
  // The send "succeeds" — packet loss is invisible to the sender.
  EXPECT_EQ(pair.client.send_all("ping", 4), IoStatus::kOk);
  EXPECT_GE(injector.drops(), 1u);
  // ...but nothing arrives.
  FaultInjector::ScopedInstall off(nullptr);  // keep the recv side clean
  char buf[4];
  std::size_t got = 99;
  EXPECT_EQ(pair.server.recv_exact(buf, sizeof(buf), &got), IoStatus::kTimeout);
  EXPECT_EQ(got, 0u);
}

TEST(FaultInjectorSocketTest, CorruptedFrameFailsTheChecksumNeverParses) {
  SocketPair pair = make_pair_on_loopback(/*io_timeout_ms=*/500);
  FaultSpec spec;
  spec.corrupt = 1.0;
  spec.seed = 5;
  FaultInjector injector(spec);
  const std::string body(256, '\x5A');
  {
    FaultInjector::ScopedInstall guard(&injector);
    // send_frame reports success — the sender cannot see the flipped bit.
    ASSERT_TRUE(send_frame(pair.client, /*opcode=*/7, body));
  }
  EXPECT_GE(injector.corrupts(), 1u);
  // The receiver must never surface a clean frame from a corrupted stream:
  // a checksum/magic/version failure throws CheckpointError, and a bit in
  // the length prefix desyncs the read (kError/kTimeout) — anything but a
  // valid frame.
  bool clean_frame = false;
  try {
    clean_frame = recv_frame_ex(pair.server).status == RecvStatus::kFrame;
  } catch (const std::exception&) {
    // The expected path: integrity check caught the flip.
  }
  EXPECT_FALSE(clean_frame) << "a bit-flipped frame must not parse";
}

TEST(FaultInjectorSocketTest, ResetSurfacesAsConnectionErrorOnThePeer) {
  SocketPair pair = make_pair_on_loopback(/*io_timeout_ms=*/500);
  FaultSpec spec;
  spec.reset = 1.0;
  FaultInjector injector(spec);
  {
    FaultInjector::ScopedInstall guard(&injector);
    const IoStatus status = pair.client.send_all("boom", 4);
    EXPECT_NE(status, IoStatus::kOk) << "an injected reset kills the call";
  }
  EXPECT_GE(injector.resets(), 1u);
  EXPECT_FALSE(pair.client.valid()) << "reset closes the local socket";
  // The peer sees the connection die (RST -> kClosed or kError, never a
  // clean frame or an indefinite hang).
  char buf[4];
  const IoStatus peer = pair.server.recv_exact(buf, sizeof(buf));
  EXPECT_NE(peer, IoStatus::kOk);
}

TEST(FaultInjectorSocketTest, DelayStallsTheCallButDeliversTheBytes) {
  SocketPair pair = make_pair_on_loopback(/*io_timeout_ms=*/2000);
  FaultSpec spec;
  spec.delay_prob = 1.0;
  spec.delay_ms = 60;
  FaultInjector injector(spec);
  const auto start = std::chrono::steady_clock::now();
  {
    FaultInjector::ScopedInstall guard(&injector);
    ASSERT_EQ(pair.client.send_all("slow", 4), IoStatus::kOk);
  }
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - start)
                           .count();
  EXPECT_GE(elapsed, 50) << "the injected delay must actually stall";
  EXPECT_GE(injector.delays(), 1u);
  char buf[4];
  ASSERT_EQ(pair.server.recv_exact(buf, sizeof(buf)), IoStatus::kOk);
  EXPECT_EQ(std::memcmp(buf, "slow", 4), 0) << "delay is not loss";
}

}  // namespace
}  // namespace nnr::net
