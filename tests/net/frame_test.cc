// Wire framing: encode/decode round trips, and every way a frame can be
// malformed — bad magic, wrong version, corrupt checksum, truncation —
// must surface as an exception, never as data (the endpoints drop the
// connection; the client degrades to recompute).
#include "net/frame.h"

#include <cstring>
#include <string>

#include <gtest/gtest.h>

#include "net/cache_protocol.h"
#include "serialize/checkpoint.h"

namespace nnr::net {
namespace {

/// Payload view of a full frame (everything after the u32 length prefix).
std::string_view payload_of(const std::string& frame) {
  return std::string_view(frame).substr(sizeof(std::uint32_t));
}

TEST(FrameTest, RoundTripsOpcodeAndBody) {
  const std::string body = "some opaque body \x01\x02\x00 bytes";
  const std::string frame = encode_frame(7, body);
  // Length prefix covers exactly the payload.
  std::uint32_t len = 0;
  std::memcpy(&len, frame.data(), sizeof(len));
  ASSERT_EQ(frame.size(), sizeof(len) + len);

  const Frame decoded = decode_frame(payload_of(frame));
  EXPECT_EQ(decoded.version, kWireVersion);
  EXPECT_EQ(decoded.opcode, 7);
  EXPECT_EQ(decoded.body, body);
}

TEST(FrameTest, EmptyBodyIsValid) {
  const std::string frame = encode_frame(3, "");
  const Frame decoded = decode_frame(payload_of(frame));
  EXPECT_EQ(decoded.opcode, 3);
  EXPECT_TRUE(decoded.body.empty());
}

TEST(FrameTest, CorruptChecksumIsRejected) {
  std::string frame = encode_frame(2, "payload");
  frame.back() ^= 0x5A;  // flip a trailer byte
  EXPECT_THROW((void)decode_frame(payload_of(frame)),
               serialize::CheckpointError);
}

TEST(FrameTest, CorruptBodyIsRejected) {
  std::string frame = encode_frame(2, "payload");
  frame[sizeof(std::uint32_t) + kFrameMagic.size() + 3] ^= 0x5A;
  EXPECT_THROW((void)decode_frame(payload_of(frame)),
               serialize::CheckpointError);
}

TEST(FrameTest, BadMagicIsRejected) {
  std::string frame = encode_frame(2, "payload");
  frame[sizeof(std::uint32_t)] = 'X';
  EXPECT_THROW((void)decode_frame(payload_of(frame)),
               serialize::CheckpointError);
}

TEST(FrameTest, WrongVersionIsRejected) {
  std::string frame = encode_frame(2, "payload");
  // The version byte sits right after the magic; fixing up the checksum
  // too would require re-hashing — but the version check must fire even
  // when the rest is consistent, so rebuild a frame by hand.
  std::string payload(payload_of(frame));
  payload[kFrameMagic.size()] = kWireVersion + 1;
  EXPECT_THROW((void)decode_frame(payload), serialize::CheckpointError);
}

TEST(FrameTest, TruncatedPayloadIsRejected) {
  const std::string frame = encode_frame(2, "payload");
  const std::string_view payload = payload_of(frame);
  EXPECT_THROW((void)decode_frame(payload.substr(0, payload.size() - 3)),
               serialize::CheckpointError);
  EXPECT_THROW((void)decode_frame(payload.substr(0, 4)),
               serialize::CheckpointError);
}

TEST(BodyIoTest, RoundTripsFixedWidthFields) {
  BodyWriter w;
  w.put(std::uint64_t{0x1122334455667788ull});
  w.put(std::uint32_t{42});
  w.put(static_cast<std::uint8_t>(Status::kGranted));
  w.put_bytes("tail");
  const std::string body = w.take();

  BodyReader r(body);
  EXPECT_EQ(r.get<std::uint64_t>(), 0x1122334455667788ull);
  EXPECT_EQ(r.get<std::uint32_t>(), 42u);
  EXPECT_EQ(static_cast<Status>(r.get<std::uint8_t>()), Status::kGranted);
  EXPECT_EQ(r.get_bytes(4), "tail");
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(BodyIoTest, UnderrunThrowsProtocolError) {
  BodyWriter w;
  w.put(std::uint32_t{1});
  const std::string body = w.take();
  BodyReader r(body);
  EXPECT_THROW((void)r.get<std::uint64_t>(), ProtocolError);
}

}  // namespace
}  // namespace nnr::net
