// Backoff + Jitter: the deterministic schedule contract (pin a seed, get
// the exact same waits), the [0.5, 1.5) jitter envelope, exponential
// growth to the cap, and reset-on-success — the pieces that keep a fleet
// of workers from stampeding a recovering daemon in phase.
#include "net/backoff.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

namespace nnr::net {
namespace {

TEST(JitterTest, StaysInTheHalfToOneAndAHalfEnvelope) {
  Jitter jitter(7);
  for (int i = 0; i < 10'000; ++i) {
    const std::int64_t ms = jitter.around(1000);
    EXPECT_GE(ms, 500);
    EXPECT_LT(ms, 1500);
  }
}

TEST(JitterTest, EnvelopeHoldsAcrossBases) {
  // The ±50% contract is not a property of one magic base: sweep from a
  // 1ms poll to a day-long wait. No draw may escape [base/2, base*1.5)
  // (with the never-zero floor at tiny bases).
  Jitter jitter(11);
  const std::int64_t bases[] = {1, 3, 10, 500, 1000, 60'000, 86'400'000};
  for (const std::int64_t base : bases) {
    for (int i = 0; i < 2000; ++i) {
      const std::int64_t ms = jitter.around(base);
      EXPECT_GE(ms, std::max<std::int64_t>(base / 2, 1))
          << "base " << base << " draw " << i;
      EXPECT_LE(ms, base + base / 2) << "base " << base << " draw " << i;
    }
  }
}

TEST(JitterTest, DrawsCoverTheWholeEnvelopeNotJustItsCenter) {
  // A jitter that clusters (say, ±5% implemented as ±50%) still passes the
  // envelope test but fails to decorrelate a fleet. Over 10k draws the
  // observed range must reach into both envelope tails.
  Jitter jitter(13);
  std::int64_t lo = 1'500;
  std::int64_t hi = 500;
  for (int i = 0; i < 10'000; ++i) {
    const std::int64_t ms = jitter.around(1000);
    lo = std::min(lo, ms);
    hi = std::max(hi, ms);
  }
  EXPECT_LT(lo, 600) << "no draw landed in the low tail";
  EXPECT_GT(hi, 1400) << "no draw landed in the high tail";
}

TEST(JitterTest, SameSeedSameStream) {
  Jitter a(42);
  Jitter b(42);
  for (int i = 0; i < 256; ++i) {
    EXPECT_EQ(a.around(1000), b.around(1000)) << "draw " << i;
  }
}

TEST(JitterTest, DifferentSeedsDecorrelate) {
  Jitter a(1);
  Jitter b(2);
  int equal = 0;
  for (int i = 0; i < 256; ++i) {
    if (a.around(1'000'000) == b.around(1'000'000)) ++equal;
  }
  EXPECT_LT(equal, 8) << "two seeds must not walk the same schedule";
}

TEST(JitterTest, PositiveInputsNeverJitterToZero) {
  // A 1ms poll jittered to 0 would turn a sleep loop into a busy loop.
  Jitter jitter(9);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(jitter.around(1), 1);
}

TEST(JitterTest, NonPositiveInputsPassThrough) {
  Jitter jitter(3);
  EXPECT_EQ(jitter.around(0), 0);
  EXPECT_EQ(jitter.around(-5), -5);
}

TEST(JitterTest, DefaultSeedIsStableWithinAProcess) {
  // Pid-derived, so all we can assert: nonzero and consistent.
  EXPECT_NE(default_jitter_seed(), 0u);
  EXPECT_EQ(default_jitter_seed(), default_jitter_seed());
}

TEST(BackoffTest, WindowsGrowExponentiallyToTheCap) {
  Backoff backoff(/*base_ms=*/100, /*max_ms=*/800, /*seed=*/7);
  // Strip the jitter by checking each wait against its window's envelope:
  // window_i = min(100 << i, 800), wait in [window/2, window*1.5).
  const std::int64_t windows[] = {100, 200, 400, 800, 800, 800};
  for (std::size_t i = 0; i < std::size(windows); ++i) {
    const std::int64_t ms = backoff.next_ms();
    EXPECT_GE(ms, windows[i] / 2) << "attempt " << i;
    EXPECT_LT(ms, windows[i] + windows[i] / 2) << "attempt " << i;
  }
  EXPECT_EQ(backoff.failures(), 6);
}

TEST(BackoffTest, ResetSnapsBackToTheBaseWindow) {
  Backoff backoff(100, 8000, 7);
  for (int i = 0; i < 5; ++i) (void)backoff.next_ms();
  backoff.reset();
  EXPECT_EQ(backoff.failures(), 0);
  const std::int64_t ms = backoff.next_ms();
  EXPECT_GE(ms, 50);
  EXPECT_LT(ms, 150) << "post-reset wait must be a base window again";
}

TEST(BackoffTest, SameSeedReplaysTheExactSchedule) {
  Backoff a(50, 8000, 123);
  Backoff b(50, 8000, 123);
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(a.next_ms(), b.next_ms()) << "attempt " << i;
  }
}

TEST(BackoffTest, DeepFailureCountsDoNotOverflowTheShift) {
  Backoff backoff(100, 1000, 1);
  // Walk past the growth phase (100, 200, 400, 800 windows), then a
  // hundred more failures — deep counts must neither overflow the shift
  // nor escape the cap's jitter envelope [cap/2, cap*1.5).
  for (int i = 0; i < 4; ++i) (void)backoff.next_ms();
  for (int i = 0; i < 100; ++i) {
    const std::int64_t ms = backoff.next_ms();
    EXPECT_GE(ms, 500);
    EXPECT_LT(ms, 1500) << "attempt " << i << " must stay capped";
  }
}

TEST(BackoffTest, BaseAboveMaxKeepsTheBaseWindow) {
  // Callers that configure base > max (the 60s-window regression tests do)
  // get the base, not a silently clamped-down window.
  Backoff backoff(60'000, 8'000, 7);
  const std::int64_t ms = backoff.next_ms();
  EXPECT_GE(ms, 30'000);
}

}  // namespace
}  // namespace nnr::net
