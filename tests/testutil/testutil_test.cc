// Unit coverage for the test helpers themselves: the gradient-checking
// machinery every layer test leans on must itself be validated against
// functions with known analytic derivatives.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

#include "tensor/shape.h"
#include "tensor/tensor.h"
#include "test_util.h"

namespace nnr::testutil {
namespace {

TEST(NumericalGradient, MatchesAnalyticQuadratic) {
  // f(x) = sum_i x_i^2  =>  df/dx_i = 2 x_i.
  std::vector<float> x = {0.5F, -1.25F, 2.0F, 0.0F, -0.75F};
  const auto f = [&x] {
    double s = 0.0;
    for (float v : x) s += static_cast<double>(v) * static_cast<double>(v);
    return s;
  };
  const auto grad = numerical_gradient(std::span<float>(x), f);
  ASSERT_EQ(grad.size(), x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_TRUE(close(grad[i], 2.0 * static_cast<double>(x[i])))
        << "i=" << i << " numeric=" << grad[i] << " analytic=" << 2.0 * x[i];
  }
}

TEST(NumericalGradient, MatchesAnalyticTranscendental) {
  // f(x) = sin(x_0) + exp(x_1)  =>  grad = (cos(x_0), exp(x_1)).
  std::vector<float> x = {0.3F, -0.2F};
  const auto f = [&x] {
    return std::sin(static_cast<double>(x[0])) +
           std::exp(static_cast<double>(x[1]));
  };
  const auto grad = numerical_gradient(std::span<float>(x), f, 1e-4F);
  EXPECT_TRUE(close(grad[0], std::cos(0.3)));
  EXPECT_TRUE(close(grad[1], std::exp(-0.2)));
}

TEST(NumericalGradient, RestoresParametersExactly) {
  std::vector<float> x = {1.0F, 2.0F, 3.0F};
  const std::vector<float> before = x;
  (void)numerical_gradient(std::span<float>(x),
                           [&x] { return static_cast<double>(x[0]); });
  EXPECT_EQ(x, before);  // bitwise: the probe must leave no residue
}

TEST(FillRandom, SameSeedSameBits) {
  tensor::Tensor a(tensor::Shape({4, 8}));
  tensor::Tensor b(tensor::Shape({4, 8}));
  fill_random(a, 1234);
  fill_random(b, 1234);
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    EXPECT_EQ(a.at(i), b.at(i)) << "divergence at flat index " << i;
  }
}

TEST(FillRandom, DifferentSeedsDiffer) {
  tensor::Tensor a(tensor::Shape({64}));
  tensor::Tensor b(tensor::Shape({64}));
  fill_random(a, 1);
  fill_random(b, 2);
  int differing = 0;
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    if (a.at(i) != b.at(i)) ++differing;
  }
  EXPECT_GT(differing, 32);  // overwhelmingly distinct streams
}

TEST(FillRandom, ValuesInRange) {
  tensor::Tensor t(tensor::Shape({256}));
  fill_random(t, 7);
  for (float v : t.data()) {
    EXPECT_GE(v, -1.0F);
    EXPECT_LT(v, 1.0F);
  }
}

TEST(Close, RespectsTolerances) {
  EXPECT_TRUE(close(1.0, 1.0));
  EXPECT_TRUE(close(100.0, 104.0));    // within 5% rtol
  EXPECT_FALSE(close(100.0, 110.0));   // outside 5% rtol
  EXPECT_TRUE(close(0.0, 5e-4));       // inside atol near zero
  EXPECT_FALSE(close(0.0, 1e-2));      // outside atol near zero
}

}  // namespace
}  // namespace nnr::testutil
