#include "metrics/running_stat.h"

#include <gtest/gtest.h>

#include <cmath>

namespace nnr::metrics {
namespace {

TEST(RunningStat, EmptyIsZero) {
  const RunningStat s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(RunningStat, SingleValue) {
  RunningStat s;
  s.add(5.0);
  EXPECT_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.stddev(), 0.0);  // sample stddev undefined; we report 0
  EXPECT_EQ(s.min(), 5.0);
  EXPECT_EQ(s.max(), 5.0);
}

TEST(RunningStat, KnownSample) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev_population(), 2.0, 1e-12);
  EXPECT_NEAR(s.stddev(), 2.0 * std::sqrt(8.0 / 7.0), 1e-12);
}

TEST(RunningStat, MinMaxTrack) {
  RunningStat s;
  s.add(3.0);
  s.add(-1.0);
  s.add(10.0);
  EXPECT_EQ(s.min(), -1.0);
  EXPECT_EQ(s.max(), 10.0);
}

TEST(RunningStat, ConstantSequenceHasZeroStddev) {
  RunningStat s;
  for (int i = 0; i < 100; ++i) s.add(1.5);
  EXPECT_NEAR(s.stddev(), 0.0, 1e-12);
}

TEST(RunningStat, NumericallyStableForLargeOffsets) {
  // Welford must not catastrophically cancel with a large common offset.
  RunningStat s;
  for (double x : {1e9 + 1.0, 1e9 + 2.0, 1e9 + 3.0}) s.add(x);
  EXPECT_NEAR(s.stddev(), 1.0, 1e-6);
}

}  // namespace
}  // namespace nnr::metrics
