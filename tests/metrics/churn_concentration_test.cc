#include <vector>

#include <gtest/gtest.h>

#include "metrics/stability.h"

namespace nnr::metrics {
namespace {

using Predictions = std::vector<std::vector<std::int32_t>>;

TEST(PerExampleFlipRate, AllAgreeingModelsHaveZeroRates) {
  const Predictions preds = {{1, 2, 3}, {1, 2, 3}, {1, 2, 3}};
  const auto rates = per_example_flip_rate(preds);
  for (const double r : rates) EXPECT_DOUBLE_EQ(r, 0.0);
}

TEST(PerExampleFlipRate, SingleExampleDisagreement) {
  // Example 0 agrees everywhere; example 1 differs in one of the three
  // pairs (models 0-1 agree, 0-2 and 1-2 disagree).
  const Predictions preds = {{5, 1}, {5, 1}, {5, 2}};
  const auto rates = per_example_flip_rate(preds);
  EXPECT_DOUBLE_EQ(rates[0], 0.0);
  EXPECT_DOUBLE_EQ(rates[1], 2.0 / 3.0);
}

TEST(PerExampleFlipRate, MeanEqualsAggregateChurn) {
  const Predictions preds = {{0, 1, 2, 3}, {0, 2, 2, 3}, {1, 1, 2, 0}};
  const auto rates = per_example_flip_rate(preds);
  double mean = 0.0;
  for (const double r : rates) mean += r;
  mean /= static_cast<double>(rates.size());

  double pair_churn = 0.0;
  int pairs = 0;
  for (std::size_t i = 0; i < preds.size(); ++i) {
    for (std::size_t j = i + 1; j < preds.size(); ++j) {
      pair_churn += churn(preds[i], preds[j]);
      ++pairs;
    }
  }
  pair_churn /= pairs;
  EXPECT_NEAR(mean, pair_churn, 1e-12);
}

TEST(ChurnConcentration, UniformRatesHaveZeroGini) {
  const std::vector<double> rates(100, 0.5);
  const ChurnConcentration c = churn_concentration(rates);
  EXPECT_NEAR(c.gini, 0.0, 1e-9);
  EXPECT_NEAR(c.top_decile_share, 0.1, 1e-9);
  EXPECT_DOUBLE_EQ(c.mean_flip_rate, 0.5);
  EXPECT_DOUBLE_EQ(c.frac_never_flip, 0.0);
}

TEST(ChurnConcentration, FullyConcentratedChurn) {
  // One example carries all the churn.
  std::vector<double> rates(100, 0.0);
  rates[42] = 1.0;
  const ChurnConcentration c = churn_concentration(rates);
  EXPECT_NEAR(c.top_decile_share, 1.0, 1e-9);
  EXPECT_GT(c.gini, 0.95);
  EXPECT_DOUBLE_EQ(c.frac_never_flip, 0.99);
  EXPECT_DOUBLE_EQ(c.frac_always_flip, 0.01);
}

TEST(ChurnConcentration, AllZeroRatesAreWellDefined) {
  const std::vector<double> rates(10, 0.0);
  const ChurnConcentration c = churn_concentration(rates);
  EXPECT_DOUBLE_EQ(c.mean_flip_rate, 0.0);
  EXPECT_DOUBLE_EQ(c.gini, 0.0);
  EXPECT_DOUBLE_EQ(c.top_decile_share, 0.0);
  EXPECT_DOUBLE_EQ(c.frac_never_flip, 1.0);
}

TEST(ChurnConcentration, GiniOrdersDistributionsBySkew) {
  // A long-tailed distribution must score a higher Gini than a mildly
  // uneven one.
  std::vector<double> mild(100);
  std::vector<double> skewed(100);
  for (std::size_t i = 0; i < 100; ++i) {
    mild[i] = 0.4 + 0.2 * static_cast<double>(i) / 99.0;
    skewed[i] = (i < 90) ? 0.01 : 0.9;
  }
  EXPECT_LT(churn_concentration(mild).gini,
            churn_concentration(skewed).gini);
}

TEST(ChurnConcentration, GiniIsScaleInvariant) {
  std::vector<double> base = {0.1, 0.2, 0.3, 0.4};
  std::vector<double> scaled = {0.2, 0.4, 0.6, 0.8};
  EXPECT_NEAR(churn_concentration(base).gini,
              churn_concentration(scaled).gini, 1e-12);
}

}  // namespace
}  // namespace nnr::metrics
