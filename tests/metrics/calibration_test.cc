// Calibration metrics: bin bookkeeping, closed-form ECE cases, and the
// invariances the ablation bench relies on.
#include "metrics/calibration.h"

#include <vector>

#include <gtest/gtest.h>

#include "rng/generator.h"

namespace nnr::metrics {
namespace {

using Preds = std::vector<std::int32_t>;
using Confs = std::vector<float>;

TEST(ReliabilityDiagram, BinsPartitionExamples) {
  const Confs c = {0.05F, 0.15F, 0.55F, 0.95F, 1.0F};
  const Preds p = {0, 1, 0, 1, 0};
  const Preds y = {0, 0, 0, 1, 0};
  const auto bins = reliability_diagram(c, p, y, 10);
  ASSERT_EQ(bins.size(), 10u);
  std::int64_t total = 0;
  for (const auto& b : bins) total += b.count;
  EXPECT_EQ(total, 5);
  EXPECT_EQ(bins[0].count, 1);  // 0.05
  EXPECT_EQ(bins[1].count, 1);  // 0.15
  EXPECT_EQ(bins[5].count, 1);  // 0.55
  EXPECT_EQ(bins[9].count, 2);  // 0.95 and the c == 1.0 edge case
}

TEST(ReliabilityDiagram, BinAccuracyAndConfidence) {
  const Confs c = {0.72F, 0.78F};
  const Preds p = {0, 1};
  const Preds y = {0, 0};  // first correct, second wrong
  const auto bins = reliability_diagram(c, p, y, 10);
  const ReliabilityBin& b = bins[7];
  EXPECT_EQ(b.count, 2);
  EXPECT_DOUBLE_EQ(b.accuracy(), 0.5);
  EXPECT_NEAR(b.mean_confidence(), 0.75, 1e-7);
}

TEST(Ece, PerfectlyCalibaredBinIsZero) {
  // 4 examples at confidence 0.75, exactly 3 of 4 correct -> |0.75-0.75|=0.
  const Confs c = {0.75F, 0.75F, 0.75F, 0.75F};
  const Preds p = {0, 0, 0, 0};
  const Preds y = {0, 0, 0, 1};
  EXPECT_NEAR(expected_calibration_error(c, p, y, 10), 0.0, 1e-7);
}

TEST(Ece, FullyOverconfidentIsOneMinusAccuracy) {
  // All predictions at confidence ~1.0, all wrong: ECE -> 1.
  const Confs c = {1.0F, 1.0F, 1.0F};
  const Preds p = {0, 0, 0};
  const Preds y = {1, 1, 1};
  EXPECT_NEAR(expected_calibration_error(c, p, y, 15), 1.0, 1e-7);
}

TEST(Ece, HandComputedTwoBinCase) {
  // Bin [0.5,1): two examples conf 0.9, one correct -> |0.5 - 0.9| = 0.4,
  // weight 2/3. Bin [0,0.5): one example conf 0.3, correct -> |1 - 0.3| =
  // 0.7, weight 1/3. ECE = 0.4*2/3 + 0.7/3 = 0.5.
  const Confs c = {0.9F, 0.9F, 0.3F};
  const Preds p = {0, 0, 0};
  const Preds y = {0, 1, 0};
  EXPECT_NEAR(expected_calibration_error(c, p, y, 2), 0.5, 1e-6);
}

TEST(Ece, EmptyInputIsZero) {
  EXPECT_DOUBLE_EQ(expected_calibration_error({}, {}, {}, 15), 0.0);
}

TEST(Ece, BoundedInUnitInterval) {
  rng::Generator gen(3);
  Confs c;
  Preds p;
  Preds y;
  for (int i = 0; i < 500; ++i) {
    c.push_back(gen.uniform());
    p.push_back(static_cast<std::int32_t>(gen.uniform_int(10)));
    y.push_back(static_cast<std::int32_t>(gen.uniform_int(10)));
  }
  const double ece = expected_calibration_error(c, p, y, 15);
  EXPECT_GE(ece, 0.0);
  EXPECT_LE(ece, 1.0);
}

TEST(ConfidenceGap, SignedDirection) {
  // Overconfident: conf 0.9, accuracy 0.5 -> gap +0.4.
  const Confs c = {0.9F, 0.9F};
  const Preds p = {0, 0};
  const Preds y = {0, 1};
  EXPECT_NEAR(confidence_gap(c, p, y), 0.4, 1e-7);
  // Underconfident: conf 0.3, all correct -> gap -0.7.
  const Confs c2 = {0.3F, 0.3F};
  const Preds y2 = {0, 0};
  EXPECT_NEAR(confidence_gap(c2, p, y2), -0.7, 1e-7);
}

TEST(ConfidenceDivergence, ZeroOnIdentical) {
  const Confs a = {0.1F, 0.5F, 0.9F};
  EXPECT_DOUBLE_EQ(confidence_divergence(a, a), 0.0);
}

TEST(ConfidenceDivergence, MeanAbsoluteDifference) {
  const Confs a = {0.2F, 0.8F};
  const Confs b = {0.4F, 0.5F};
  EXPECT_NEAR(confidence_divergence(a, b), (0.2 + 0.3) / 2.0, 1e-6);
}

TEST(ConfidenceDivergence, Symmetric) {
  const Confs a = {0.1F, 0.9F, 0.4F};
  const Confs b = {0.3F, 0.2F, 0.6F};
  EXPECT_DOUBLE_EQ(confidence_divergence(a, b), confidence_divergence(b, a));
}

class EceBinSweep : public ::testing::TestWithParam<int> {};

TEST_P(EceBinSweep, MoreBinsNeverHidesGrossMiscalibration) {
  // A grossly overconfident model must register high ECE at any bin count.
  Confs c(100, 0.99F);
  Preds p(100, 0);
  Preds y(100, 1);
  EXPECT_GT(expected_calibration_error(c, p, y, GetParam()), 0.9);
}

INSTANTIATE_TEST_SUITE_P(Bins, EceBinSweep, ::testing::Values(1, 2, 5, 15, 50));

}  // namespace
}  // namespace nnr::metrics
