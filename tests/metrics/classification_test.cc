#include "metrics/classification.h"

#include <gtest/gtest.h>

namespace nnr::metrics {
namespace {

TEST(Accuracy, PerfectAndZero) {
  const std::vector<std::int32_t> labels = {0, 1, 2};
  EXPECT_EQ(accuracy(labels, labels), 1.0);
  const std::vector<std::int32_t> wrong = {1, 2, 0};
  EXPECT_EQ(accuracy(wrong, labels), 0.0);
}

TEST(Accuracy, Fraction) {
  const std::vector<std::int32_t> preds = {0, 1, 0, 1};
  const std::vector<std::int32_t> labels = {0, 1, 1, 0};
  EXPECT_DOUBLE_EQ(accuracy(preds, labels), 0.5);
}

TEST(PerClassAccuracy, SplitsByLabel) {
  const std::vector<std::int32_t> preds = {0, 0, 1, 1, 1};
  const std::vector<std::int32_t> labels = {0, 1, 1, 1, 0};
  const PerClassAccuracy pca = per_class_accuracy(preds, labels, 2);
  EXPECT_EQ(pca.support[0], 2);
  EXPECT_EQ(pca.support[1], 3);
  EXPECT_DOUBLE_EQ(pca.accuracy[0], 0.5);
  EXPECT_NEAR(pca.accuracy[1], 2.0 / 3.0, 1e-12);
}

TEST(PerClassAccuracy, EmptyClassReportsZero) {
  const std::vector<std::int32_t> preds = {0};
  const std::vector<std::int32_t> labels = {0};
  const PerClassAccuracy pca = per_class_accuracy(preds, labels, 3);
  EXPECT_EQ(pca.support[2], 0);
  EXPECT_EQ(pca.accuracy[2], 0.0);
}

TEST(BinaryConfusion, CountsCells) {
  const std::vector<std::int32_t> preds = {1, 1, 0, 0, 1};
  const std::vector<std::uint8_t> labels = {1, 0, 1, 0, 1};
  const BinaryConfusion c = binary_confusion(preds, labels);
  EXPECT_EQ(c.tp, 2);
  EXPECT_EQ(c.fp, 1);
  EXPECT_EQ(c.fn, 1);
  EXPECT_EQ(c.tn, 1);
  EXPECT_EQ(c.total(), 5);
}

TEST(BinaryConfusion, Rates) {
  BinaryConfusion c;
  c.tp = 8;
  c.fn = 2;
  c.fp = 3;
  c.tn = 7;
  EXPECT_DOUBLE_EQ(c.accuracy(), 0.75);
  EXPECT_DOUBLE_EQ(c.false_positive_rate(), 0.3);
  EXPECT_DOUBLE_EQ(c.false_negative_rate(), 0.2);
}

TEST(BinaryConfusion, RatesGuardEmptyDenominators) {
  BinaryConfusion all_pos;
  all_pos.tp = 5;
  EXPECT_EQ(all_pos.false_positive_rate(), 0.0);  // no negatives
  BinaryConfusion all_neg;
  all_neg.tn = 5;
  EXPECT_EQ(all_neg.false_negative_rate(), 0.0);  // no positives
}

TEST(BinaryConfusion, MaskRestrictsExamples) {
  const std::vector<std::int32_t> preds = {1, 0, 1, 0};
  const std::vector<std::uint8_t> labels = {1, 1, 0, 0};
  const std::vector<std::uint8_t> mask = {1, 1, 0, 0};  // first two only
  const BinaryConfusion c = binary_confusion(preds, labels, mask);
  EXPECT_EQ(c.total(), 2);
  EXPECT_EQ(c.tp, 1);
  EXPECT_EQ(c.fn, 1);
}

TEST(BinaryConfusion, EmptyMaskMeansAll) {
  const std::vector<std::int32_t> preds = {1, 0};
  const std::vector<std::uint8_t> labels = {1, 0};
  EXPECT_EQ(binary_confusion(preds, labels).total(), 2);
}

}  // namespace
}  // namespace nnr::metrics
