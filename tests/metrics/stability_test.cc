#include "metrics/stability.h"

#include <gtest/gtest.h>

#include <cmath>

namespace nnr::metrics {
namespace {

TEST(Churn, IdenticalPredictionsHaveZeroChurn) {
  const std::vector<std::int32_t> preds = {1, 2, 3, 1};
  EXPECT_EQ(churn(preds, preds), 0.0);
}

TEST(Churn, FullDisagreementIsOne) {
  const std::vector<std::int32_t> a = {0, 0, 0};
  const std::vector<std::int32_t> b = {1, 1, 1};
  EXPECT_EQ(churn(a, b), 1.0);
}

TEST(Churn, FractionOfDisagreements) {
  const std::vector<std::int32_t> a = {0, 1, 2, 3};
  const std::vector<std::int32_t> b = {0, 9, 2, 9};
  EXPECT_DOUBLE_EQ(churn(a, b), 0.5);
}

TEST(Churn, Symmetric) {
  const std::vector<std::int32_t> a = {0, 1, 2, 3, 4};
  const std::vector<std::int32_t> b = {0, 1, 9, 9, 4};
  EXPECT_EQ(churn(a, b), churn(b, a));
}

TEST(NormalizedL2, IdenticalWeightsZeroDistance) {
  const std::vector<float> w = {1.0F, 2.0F, 3.0F};
  EXPECT_NEAR(normalized_l2_distance(w, w), 0.0, 1e-7);
}

TEST(NormalizedL2, ScaleInvariance) {
  // Normalization to unit vectors makes the metric scale-invariant.
  const std::vector<float> a = {1.0F, 2.0F, 3.0F};
  const std::vector<float> b = {2.0F, 4.0F, 6.0F};
  EXPECT_NEAR(normalized_l2_distance(a, b), 0.0, 1e-6);
}

TEST(NormalizedL2, OppositeUnitVectorsDistanceTwo) {
  const std::vector<float> a = {1.0F, 0.0F};
  const std::vector<float> b = {-1.0F, 0.0F};
  EXPECT_NEAR(normalized_l2_distance(a, b), 2.0, 1e-6);
}

TEST(NormalizedL2, OrthogonalUnitVectors) {
  const std::vector<float> a = {1.0F, 0.0F};
  const std::vector<float> b = {0.0F, 1.0F};
  EXPECT_NEAR(normalized_l2_distance(a, b), std::sqrt(2.0), 1e-6);
}

TEST(NormalizedL2, ZeroVectorGuard) {
  const std::vector<float> a = {0.0F, 0.0F};
  const std::vector<float> b = {1.0F, 1.0F};
  EXPECT_EQ(normalized_l2_distance(a, b), 0.0);
}

TEST(PairwiseStability, CountsAllPairs) {
  const std::vector<std::vector<std::int32_t>> preds = {
      {0, 0}, {0, 1}, {1, 1}};
  const std::vector<std::vector<float>> weights = {
      {1.0F, 0.0F}, {0.0F, 1.0F}, {1.0F, 1.0F}};
  const PairwiseStability stats = pairwise_stability(preds, weights);
  EXPECT_EQ(stats.churn.count(), 3);  // C(3,2)
  EXPECT_EQ(stats.l2.count(), 3);
}

TEST(PairwiseStability, MeanChurnValue) {
  const std::vector<std::vector<std::int32_t>> preds = {
      {0, 0}, {0, 1}, {1, 1}};
  const std::vector<std::vector<float>> weights = {
      {1.0F}, {1.0F}, {1.0F}};
  const PairwiseStability stats = pairwise_stability(preds, weights);
  // churn(0,1)=0.5, churn(0,2)=1.0, churn(1,2)=0.5.
  EXPECT_NEAR(stats.churn.mean(), 2.0 / 3.0, 1e-12);
}

}  // namespace
}  // namespace nnr::metrics
