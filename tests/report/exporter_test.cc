// Exporter: rendering formats, file emission, disabled-mode no-op.
#include "report/exporter.h"

#include <filesystem>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "core/table.h"

namespace nnr::report {
namespace {

namespace fs = std::filesystem;

core::TextTable sample_table() {
  core::TextTable t({"Variant", "Churn %"});
  t.add_row({"ALGO+IMPL", "25.3"});
  t.add_row({"IMPL", "14.7"});
  return t;
}

std::string slurp(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

class ExporterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("nnr_exporter_test_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
};

TEST(JsonEscape, PassesPlainText) {
  EXPECT_EQ(json_escape("hello world"), "hello world");
}

TEST(JsonEscape, EscapesSpecials) {
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb"), "a\\nb");
  EXPECT_EQ(json_escape("a\tb"), "a\\tb");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
}

TEST(RenderMarkdown, PipeTableShape) {
  const std::string md = render_markdown(sample_table());
  EXPECT_NE(md.find("| Variant | Churn % |"), std::string::npos);
  EXPECT_NE(md.find("|---|---|"), std::string::npos);
  EXPECT_NE(md.find("| ALGO+IMPL | 25.3 |"), std::string::npos);
}

TEST(RenderJson, ContainsHeadersAndRows) {
  const std::string js = render_json(sample_table());
  EXPECT_NE(js.find("\"headers\": [\"Variant\", \"Churn %\"]"),
            std::string::npos);
  EXPECT_NE(js.find("{\"Variant\": \"ALGO+IMPL\", \"Churn %\": \"25.3\"}"),
            std::string::npos);
}

TEST(RenderJson, EmptyTable) {
  const core::TextTable t({"A"});
  const std::string js = render_json(t);
  EXPECT_NE(js.find("\"rows\": [\n  ]"), std::string::npos);
}

TEST(RenderJson, EscapesCellContent) {
  core::TextTable t({"K"});
  t.add_row({"va\"lue"});
  EXPECT_NE(render_json(t).find("va\\\"lue"), std::string::npos);
}

TEST_F(ExporterTest, DisabledExporterWritesNothing) {
  Exporter e("");
  EXPECT_FALSE(e.enabled());
  EXPECT_FALSE(e.write(sample_table(), "fig1", "t1", "Title"));
  EXPECT_TRUE(e.artifacts().empty());
}

TEST_F(ExporterTest, WritesAllThreeFormatsAndIndex) {
  Exporter e(dir_.string());
  ASSERT_TRUE(e.write(sample_table(), "fig1", "t1", "Figure 1"));
  EXPECT_TRUE(fs::exists(dir_ / "fig1_t1.txt"));
  EXPECT_TRUE(fs::exists(dir_ / "fig1_t1.csv"));
  EXPECT_TRUE(fs::exists(dir_ / "fig1_t1.json"));
  EXPECT_TRUE(fs::exists(dir_ / "index.json"));
  EXPECT_NE(slurp(dir_ / "fig1_t1.txt").find("Figure 1"), std::string::npos);
  EXPECT_NE(slurp(dir_ / "fig1_t1.csv").find("ALGO+IMPL,25.3"),
            std::string::npos);
}

TEST_F(ExporterTest, IndexAccumulatesAcrossWrites) {
  Exporter e(dir_.string());
  ASSERT_TRUE(e.write(sample_table(), "fig1", "t1"));
  ASSERT_TRUE(e.write(sample_table(), "fig2", "t1", "Second"));
  EXPECT_EQ(e.artifacts().size(), 2u);
  const std::string index = slurp(dir_ / "index.json");
  EXPECT_NE(index.find("\"experiment\": \"fig1\""), std::string::npos);
  EXPECT_NE(index.find("\"experiment\": \"fig2\""), std::string::npos);
  EXPECT_NE(index.find("\"title\": \"Second\""), std::string::npos);
}

TEST_F(ExporterTest, CreatesNestedDirectory) {
  const fs::path nested = dir_ / "a" / "b";
  Exporter e(nested.string());
  ASSERT_TRUE(e.write(sample_table(), "fig1", "t1"));
  EXPECT_TRUE(fs::exists(nested / "fig1_t1.txt"));
}

TEST_F(ExporterTest, ThrowsOnUnwritableDirectory) {
  // Failure injection: a path that collides with an existing *file* cannot
  // be created as a directory.
  const fs::path blocker = dir_;
  fs::create_directories(blocker.parent_path());
  { std::ofstream out(blocker); out << "x"; }
  Exporter e((blocker / "sub").string());
  EXPECT_THROW(e.write(sample_table(), "fig1", "t1"), std::exception);
}

TEST_F(ExporterTest, OverwritesOnRepeatedWrite) {
  Exporter e(dir_.string());
  ASSERT_TRUE(e.write(sample_table(), "fig1", "t1", "first"));
  ASSERT_TRUE(e.write(sample_table(), "fig1", "t1", "second"));
  EXPECT_NE(slurp(dir_ / "fig1_t1.txt").find("second"), std::string::npos);
}

}  // namespace
}  // namespace nnr::report
