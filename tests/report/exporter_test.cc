// Exporter: rendering formats, file emission, disabled-mode no-op.
#include "report/exporter.h"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "core/table.h"

namespace nnr::report {
namespace {

namespace fs = std::filesystem;

core::TextTable sample_table() {
  core::TextTable t({"Variant", "Churn %"});
  t.add_row({"ALGO+IMPL", "25.3"});
  t.add_row({"IMPL", "14.7"});
  return t;
}

std::string slurp(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

class ExporterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("nnr_exporter_test_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
};

TEST(JsonEscape, PassesPlainText) {
  EXPECT_EQ(json_escape("hello world"), "hello world");
}

TEST(JsonEscape, EscapesSpecials) {
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb"), "a\\nb");
  EXPECT_EQ(json_escape("a\tb"), "a\\tb");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
}

TEST(RenderMarkdown, PipeTableShape) {
  const std::string md = render_markdown(sample_table());
  EXPECT_NE(md.find("| Variant | Churn % |"), std::string::npos);
  EXPECT_NE(md.find("|---|---|"), std::string::npos);
  EXPECT_NE(md.find("| ALGO+IMPL | 25.3 |"), std::string::npos);
}

TEST(RenderJson, ContainsHeadersAndRows) {
  const std::string js = render_json(sample_table());
  EXPECT_NE(js.find("\"headers\": [\"Variant\", \"Churn %\"]"),
            std::string::npos);
  EXPECT_NE(js.find("{\"Variant\": \"ALGO+IMPL\", \"Churn %\": \"25.3\"}"),
            std::string::npos);
}

TEST(RenderJson, EmptyTable) {
  const core::TextTable t({"A"});
  const std::string js = render_json(t);
  EXPECT_NE(js.find("\"rows\": [\n  ]"), std::string::npos);
}

TEST(RenderJson, EscapesCellContent) {
  core::TextTable t({"K"});
  t.add_row({"va\"lue"});
  EXPECT_NE(render_json(t).find("va\\\"lue"), std::string::npos);
}

TEST_F(ExporterTest, DisabledExporterWritesNothing) {
  Exporter e("");
  EXPECT_FALSE(e.enabled());
  EXPECT_FALSE(e.write(sample_table(), "fig1", "t1", "Title"));
  EXPECT_TRUE(e.artifacts().empty());
}

TEST_F(ExporterTest, WritesAllThreeFormatsAndIndex) {
  Exporter e(dir_.string());
  ASSERT_TRUE(e.write(sample_table(), "fig1", "t1", "Figure 1"));
  EXPECT_TRUE(fs::exists(dir_ / "fig1_t1.txt"));
  EXPECT_TRUE(fs::exists(dir_ / "fig1_t1.csv"));
  EXPECT_TRUE(fs::exists(dir_ / "fig1_t1.json"));
  EXPECT_TRUE(fs::exists(dir_ / "index.json"));
  EXPECT_NE(slurp(dir_ / "fig1_t1.txt").find("Figure 1"), std::string::npos);
  EXPECT_NE(slurp(dir_ / "fig1_t1.csv").find("ALGO+IMPL,25.3"),
            std::string::npos);
}

TEST_F(ExporterTest, IndexAccumulatesAcrossWrites) {
  Exporter e(dir_.string());
  ASSERT_TRUE(e.write(sample_table(), "fig1", "t1"));
  ASSERT_TRUE(e.write(sample_table(), "fig2", "t1", "Second"));
  EXPECT_EQ(e.artifacts().size(), 2u);
  const std::string index = slurp(dir_ / "index.json");
  EXPECT_NE(index.find("\"experiment\": \"fig1\""), std::string::npos);
  EXPECT_NE(index.find("\"experiment\": \"fig2\""), std::string::npos);
  EXPECT_NE(index.find("\"title\": \"Second\""), std::string::npos);
}

TEST_F(ExporterTest, CreatesNestedDirectory) {
  const fs::path nested = dir_ / "a" / "b";
  Exporter e(nested.string());
  ASSERT_TRUE(e.write(sample_table(), "fig1", "t1"));
  EXPECT_TRUE(fs::exists(nested / "fig1_t1.txt"));
}

TEST_F(ExporterTest, ThrowsOnUnwritableDirectory) {
  // Failure injection: a path that collides with an existing *file* cannot
  // be created as a directory.
  const fs::path blocker = dir_;
  fs::create_directories(blocker.parent_path());
  { std::ofstream out(blocker); out << "x"; }
  Exporter e((blocker / "sub").string());
  EXPECT_THROW(e.write(sample_table(), "fig1", "t1"), std::exception);
}

TEST_F(ExporterTest, OverwritesOnRepeatedWrite) {
  Exporter e(dir_.string());
  ASSERT_TRUE(e.write(sample_table(), "fig1", "t1", "first"));
  ASSERT_TRUE(e.write(sample_table(), "fig1", "t1", "second"));
  EXPECT_NE(slurp(dir_ / "fig1_t1.txt").find("second"), std::string::npos);
}

TEST(SanitizeSlug, LowercasesAndUnderscoresSpaces) {
  EXPECT_EQ(Exporter::sanitize_slug("RTX5000 TC"), "rtx5000_tc");
  EXPECT_EQ(Exporter::sanitize_slug("VGG-19_default"), "vgg-19_default");
  EXPECT_EQ(Exporter::sanitize_slug("already_clean.1"), "already_clean.1");
}

TEST(SanitizeSlug, MapsUnsafeCharactersToUnderscore) {
  EXPECT_EQ(Exporter::sanitize_slug("a/b\\c:d*e"), "a_b_c_d_e");
  EXPECT_EQ(Exporter::sanitize_slug("Fig. 1 (V100)"), "fig._1__v100_");
  EXPECT_EQ(Exporter::sanitize_slug(""), "");
}

TEST_F(ExporterTest, WriteSanitizesArtifactFilenames) {
  Exporter e(dir_.string());
  ASSERT_TRUE(e.write(sample_table(), "Fig 1", "RTX5000 TC", "Appendix"));
  EXPECT_TRUE(fs::exists(dir_ / "fig_1_rtx5000_tc.txt"));
  EXPECT_TRUE(fs::exists(dir_ / "fig_1_rtx5000_tc.csv"));
  EXPECT_TRUE(fs::exists(dir_ / "fig_1_rtx5000_tc.json"));
  // The index records the sanitized identity, so reruns supersede cleanly.
  const std::string index = slurp(dir_ / "index.json");
  EXPECT_NE(index.find("\"experiment\": \"fig_1\""), std::string::npos);
  EXPECT_NE(index.find("\"slug\": \"rtx5000_tc\""), std::string::npos);
}

TEST_F(ExporterTest, IndexJsonIsAWellFormedArrayOfArtifacts) {
  Exporter e(dir_.string());
  ASSERT_TRUE(e.write(sample_table(), "fig1", "t1", "First"));
  ASSERT_TRUE(e.write(sample_table(), "fig2", "t2", "Second"));
  const std::string index = slurp(dir_ / "index.json");
  EXPECT_EQ(index.front(), '[');
  EXPECT_EQ(index.substr(index.size() - 2), "]\n");
  EXPECT_NE(index.find("{\"experiment\": \"fig1\", \"slug\": \"t1\", "
                       "\"title\": \"First\"}"),
            std::string::npos);
  EXPECT_NE(index.find("{\"experiment\": \"fig2\", \"slug\": \"t2\", "
                       "\"title\": \"Second\"}"),
            std::string::npos);
}

TEST_F(ExporterTest, FromEnvUnsetIsANoOp) {
  ::unsetenv("NNR_OUT_DIR");
  Exporter e = Exporter::from_env();
  EXPECT_FALSE(e.enabled());
  EXPECT_FALSE(e.write(sample_table(), "fig1", "t1"));
  EXPECT_TRUE(e.artifacts().empty());
}

TEST_F(ExporterTest, FromEnvSetWritesUnderTheConfiguredDir) {
  ::setenv("NNR_OUT_DIR", dir_.string().c_str(), 1);
  Exporter e = Exporter::from_env();
  ::unsetenv("NNR_OUT_DIR");
  EXPECT_TRUE(e.enabled());
  ASSERT_TRUE(e.write(sample_table(), "fig1", "t1"));
  EXPECT_TRUE(fs::exists(dir_ / "fig1_t1.txt"));
}

}  // namespace
}  // namespace nnr::report
