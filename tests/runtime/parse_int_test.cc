// parse_int_strict — the single strict integer parser behind core::env_int,
// NNR_THREADS sizing, and nnr_run's integer flags — and its routing through
// runtime::default_thread_count.
#include "runtime/parse_int.h"

#include <cstdlib>
#include <string>

#include <gtest/gtest.h>

#include "runtime/thread_pool.h"

namespace nnr::runtime {
namespace {

TEST(ParseIntStrict, ParsesPlainIntegers) {
  EXPECT_EQ(parse_int_strict("0"), 0);
  EXPECT_EQ(parse_int_strict("42"), 42);
  EXPECT_EQ(parse_int_strict("-7"), -7);
  EXPECT_EQ(parse_int_strict("+13"), 13);
}

TEST(ParseIntStrict, AllowsSurroundingWhitespaceOnly) {
  EXPECT_EQ(parse_int_strict(" 8 "), 8);
  EXPECT_EQ(parse_int_strict("\t9\n"), 9);
}

TEST(ParseIntStrict, RejectsTrailingJunk) {
  EXPECT_FALSE(parse_int_strict("8x").has_value());
  EXPECT_FALSE(parse_int_strict("4 threads").has_value());
  EXPECT_FALSE(parse_int_strict("1.5").has_value());
  EXPECT_FALSE(parse_int_strict("0x10").has_value());
}

TEST(ParseIntStrict, RejectsNonNumbersAndEmpty) {
  EXPECT_FALSE(parse_int_strict("abc").has_value());
  EXPECT_FALSE(parse_int_strict("").has_value());
  EXPECT_FALSE(parse_int_strict("   ").has_value());
  EXPECT_FALSE(parse_int_strict(nullptr).has_value());
}

TEST(ParseIntStrict, RejectsOverflow) {
  EXPECT_FALSE(parse_int_strict("9223372036854775808").has_value());
  EXPECT_FALSE(parse_int_strict("-9223372036854775809").has_value());
  EXPECT_EQ(parse_int_strict("9223372036854775807"),
            INT64_C(9223372036854775807));
}

class ThreadEnv : public ::testing::Test {
 protected:
  void SetUp() override {
    const char* old = std::getenv("NNR_THREADS");
    if (old != nullptr) previous_ = old;
  }
  void TearDown() override {
    if (previous_.empty()) {
      ::unsetenv("NNR_THREADS");
    } else {
      ::setenv("NNR_THREADS", previous_.c_str(), 1);
    }
  }
  std::string previous_;
};

TEST_F(ThreadEnv, ValidNnrThreadsWins) {
  ::setenv("NNR_THREADS", "3", 1);
  EXPECT_EQ(default_thread_count(), 3);
}

TEST_F(ThreadEnv, MalformedNnrThreadsFallsBackToHardware) {
  ::setenv("NNR_THREADS", "3", 1);
  const int three = default_thread_count();
  ASSERT_EQ(three, 3);
  // The old lax parser turned "abc" into 0 ("use every core") and "8x"
  // into 8 — both must now fall back to the hardware default instead.
  ::unsetenv("NNR_THREADS");
  const int hardware = default_thread_count();
  for (const char* junk : {"abc", "8x", "", "-2", "99999999999999999999"}) {
    ::setenv("NNR_THREADS", junk, 1);
    EXPECT_EQ(default_thread_count(), hardware) << "NNR_THREADS=" << junk;
  }
}

}  // namespace
}  // namespace nnr::runtime
