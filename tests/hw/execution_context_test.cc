#include "hw/execution_context.h"

#include <gtest/gtest.h>

#include "rng/generator.h"

namespace nnr::hw {
namespace {

using tensor::AccumOrder;

ExecutionContext make(DeviceSpec device, DeterminismMode mode) {
  return ExecutionContext(std::move(device), mode, rng::Generator(1));
}

TEST(ExecutionContext, GpuDefaultModeIsShuffled) {
  auto ctx = make(v100(), DeterminismMode::kDefault);
  EXPECT_EQ(ctx.matmul_policy().order, AccumOrder::kShardedShuffled);
  EXPECT_EQ(ctx.reduction_policy().order, AccumOrder::kShardedShuffled);
  EXPECT_NE(ctx.matmul_policy().entropy, nullptr);
  EXPECT_FALSE(ctx.fully_deterministic());
}

TEST(ExecutionContext, GpuDeterministicModeIsFixedTree) {
  auto ctx = make(v100(), DeterminismMode::kDeterministic);
  EXPECT_EQ(ctx.matmul_policy().order, AccumOrder::kPairwiseTree);
  EXPECT_EQ(ctx.reduction_policy().order, AccumOrder::kPairwiseTree);
  EXPECT_TRUE(ctx.fully_deterministic());
}

TEST(ExecutionContext, TensorCoreMatmulDeterministicButReductionsAreNot) {
  // Paper §3.3: Tensor Cores use systolic tiling for GEMM but fall back to
  // CUDA cores for unsupported ops, so training stays nondeterministic.
  auto ctx = make(rtx5000_tensor_cores(), DeterminismMode::kDefault);
  EXPECT_EQ(ctx.matmul_policy().order, AccumOrder::kPairwiseTree);
  EXPECT_EQ(ctx.reduction_policy().order, AccumOrder::kShardedShuffled);
  EXPECT_FALSE(ctx.fully_deterministic());
}

TEST(ExecutionContext, TpuAlwaysSequential) {
  for (const auto mode :
       {DeterminismMode::kDefault, DeterminismMode::kDeterministic}) {
    auto ctx = make(tpu_v2(), mode);
    EXPECT_EQ(ctx.matmul_policy().order, AccumOrder::kSequential);
    EXPECT_EQ(ctx.reduction_policy().order, AccumOrder::kSequential);
    EXPECT_TRUE(ctx.fully_deterministic());
  }
}

TEST(ExecutionContext, PolicyCarriesCoreCount) {
  auto ctx = make(p100(), DeterminismMode::kDefault);
  EXPECT_EQ(ctx.matmul_policy().cuda_cores, 3584);
}

TEST(ExecutionContext, DeterministicModeNeedsNoEntropy) {
  auto ctx = make(t4(), DeterminismMode::kDeterministic);
  EXPECT_EQ(ctx.matmul_policy().entropy, nullptr);
}

}  // namespace
}  // namespace nnr::hw
