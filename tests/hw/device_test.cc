#include "hw/device.h"

#include <gtest/gtest.h>

namespace nnr::hw {
namespace {

TEST(Device, PaperCoreCounts) {
  // §2.2: P100 3584, V100 5120, RTX5000 3072, T4 2560 CUDA cores.
  EXPECT_EQ(p100().cuda_cores, 3584);
  EXPECT_EQ(v100().cuda_cores, 5120);
  EXPECT_EQ(rtx5000().cuda_cores, 3072);
  EXPECT_EQ(t4().cuda_cores, 2560);
}

TEST(Device, Architectures) {
  EXPECT_EQ(p100().arch, GpuArch::kPascal);
  EXPECT_EQ(v100().arch, GpuArch::kVolta);
  EXPECT_EQ(rtx5000().arch, GpuArch::kTuring);
  EXPECT_EQ(t4().arch, GpuArch::kTuring);
}

TEST(Device, TensorCoreVariantSharesSilicon) {
  const DeviceSpec tc = rtx5000_tensor_cores();
  EXPECT_EQ(tc.kind, DeviceKind::kGpuTensorCores);
  EXPECT_EQ(tc.cuda_cores, rtx5000().cuda_cores);
}

TEST(Device, TpuIsInherentlyDeterministic) {
  EXPECT_TRUE(tpu_v2().inherently_deterministic());
  EXPECT_FALSE(v100().inherently_deterministic());
  EXPECT_FALSE(rtx5000_tensor_cores().inherently_deterministic());
}

TEST(Device, RegistryHasSixDevices) {
  EXPECT_EQ(all_devices().size(), 6u);
}

TEST(Device, LookupByName) {
  const auto found = find_device("RTX5000 TC");
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->kind, DeviceKind::kGpuTensorCores);
}

TEST(Device, LookupMissReturnsNullopt) {
  EXPECT_FALSE(find_device("A100").has_value());
}

}  // namespace
}  // namespace nnr::hw
