#include "data/batcher.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace nnr::data {
namespace {

using rng::Generator;
using tensor::Shape;
using tensor::Tensor;

TEST(EpochShuffler, OrdersArePermutations) {
  EpochShuffler shuffler(100, Generator(1));
  for (int epoch = 0; epoch < 3; ++epoch) {
    auto order = shuffler.next_epoch_order();
    std::sort(order.begin(), order.end());
    for (std::size_t i = 0; i < order.size(); ++i) {
      EXPECT_EQ(order[i], i);
    }
  }
}

TEST(EpochShuffler, EpochsDiffer) {
  EpochShuffler shuffler(64, Generator(2));
  EXPECT_NE(shuffler.next_epoch_order(), shuffler.next_epoch_order());
}

TEST(EpochShuffler, PinnedSeedReplaysSameSequence) {
  EpochShuffler a(64, Generator(3));
  EpochShuffler b(64, Generator(3));
  for (int epoch = 0; epoch < 4; ++epoch) {
    EXPECT_EQ(a.next_epoch_order(), b.next_epoch_order());
  }
}

TEST(EpochShuffler, IdentityOrder) {
  EpochShuffler shuffler(5, Generator(4));
  const auto order = shuffler.identity_order();
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(order[i], i);
}

TEST(GatherImages, PicksRows) {
  Tensor images(Shape{3, 1, 2, 2});
  for (std::int64_t i = 0; i < images.numel(); ++i) {
    images.at(i) = static_cast<float>(i);
  }
  const std::vector<std::uint32_t> indices = {2, 0};
  const Tensor batch = gather_images(images, indices);
  EXPECT_EQ(batch.shape(), (Shape{2, 1, 2, 2}));
  EXPECT_FLOAT_EQ(batch.at(0), 8.0F);   // first pixel of example 2
  EXPECT_FLOAT_EQ(batch.at(4), 0.0F);   // first pixel of example 0
}

TEST(GatherLabels, PicksEntries) {
  const std::vector<std::int32_t> labels = {10, 20, 30};
  const std::vector<std::uint32_t> indices = {1, 1, 2};
  EXPECT_EQ(gather_labels(labels, indices),
            (std::vector<std::int32_t>{20, 20, 30}));
}

}  // namespace
}  // namespace nnr::data
