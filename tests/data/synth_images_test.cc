#include "data/synth_images.h"

#include <gtest/gtest.h>

#include <cmath>

namespace nnr::data {
namespace {

TEST(SynthImages, ShapesAndLabels) {
  const auto ds = synth_cifar10(100, 50);
  EXPECT_EQ(ds.train.size(), 100);
  EXPECT_EQ(ds.test.size(), 50);
  EXPECT_EQ(ds.train.num_classes, 10);
  EXPECT_EQ(ds.train.images.shape(), (tensor::Shape{100, 3, 16, 16}));
  for (std::int32_t label : ds.train.labels) {
    EXPECT_GE(label, 0);
    EXPECT_LT(label, 10);
  }
}

TEST(SynthImages, BalancedClasses) {
  const auto ds = synth_cifar10(200, 100);
  std::vector<int> counts(10, 0);
  for (std::int32_t label : ds.train.labels) ++counts[static_cast<std::size_t>(label)];
  for (int c : counts) EXPECT_EQ(c, 20);
}

TEST(SynthImages, GenerationIsDeterministic) {
  const auto a = synth_cifar10(60, 30);
  const auto b = synth_cifar10(60, 30);
  ASSERT_EQ(a.train.images.numel(), b.train.images.numel());
  for (std::int64_t i = 0; i < a.train.images.numel(); ++i) {
    ASSERT_EQ(a.train.images.at(i), b.train.images.at(i)) << "pixel " << i;
  }
  EXPECT_EQ(a.train.labels, b.train.labels);
}

TEST(SynthImages, TrainTestSplitsDiffer) {
  const auto ds = synth_cifar10(60, 60);
  bool any_diff = false;
  for (std::int64_t i = 0; i < ds.train.images.numel() && !any_diff; ++i) {
    any_diff = ds.train.images.at(i) != ds.test.images.at(i);
  }
  EXPECT_TRUE(any_diff);
}

TEST(SynthImages, ClassesAreSeparable) {
  // Same-class examples must be closer (on average) than cross-class ones;
  // otherwise the datasets would be untrainable noise.
  const auto ds = synth_cifar10(100, 50);
  const std::int64_t chw = 3 * 16 * 16;
  auto dist = [&](std::int64_t i, std::int64_t j) {
    double acc = 0.0;
    for (std::int64_t p = 0; p < chw; ++p) {
      const double d = ds.train.images.at(i * chw + p) -
                       ds.train.images.at(j * chw + p);
      acc += d * d;
    }
    return acc;
  };
  double same = 0.0;
  double cross = 0.0;
  int n_same = 0;
  int n_cross = 0;
  for (std::int64_t i = 0; i < 40; ++i) {
    for (std::int64_t j = i + 1; j < 40; ++j) {
      if (ds.train.labels[static_cast<std::size_t>(i)] ==
          ds.train.labels[static_cast<std::size_t>(j)]) {
        same += dist(i, j);
        ++n_same;
      } else {
        cross += dist(i, j);
        ++n_cross;
      }
    }
  }
  ASSERT_GT(n_same, 0);
  ASSERT_GT(n_cross, 0);
  EXPECT_LT(same / n_same, cross / n_cross);
}

TEST(SynthImages, HeterogeneousClassDifficulty) {
  // Per-class noise sigmas must differ (the Fig. 4 mechanism): compare
  // within-class variance across classes.
  SynthImageConfig cfg;
  cfg.num_classes = 10;
  cfg.train_per_class = 20;
  cfg.test_per_class = 2;
  const auto ds = make_synth_classification(cfg, "probe");
  const std::int64_t chw = 3 * 16 * 16;
  std::vector<double> class_var(10, 0.0);
  for (std::int64_t cls = 0; cls < 10; ++cls) {
    // Mean image of the class.
    std::vector<double> mean(static_cast<std::size_t>(chw), 0.0);
    for (std::int64_t s = 0; s < 20; ++s) {
      const std::int64_t idx = cls * 20 + s;
      for (std::int64_t p = 0; p < chw; ++p) {
        mean[static_cast<std::size_t>(p)] += ds.train.images.at(idx * chw + p);
      }
    }
    for (double& m : mean) m /= 20.0;
    double var = 0.0;
    for (std::int64_t s = 0; s < 20; ++s) {
      const std::int64_t idx = cls * 20 + s;
      for (std::int64_t p = 0; p < chw; ++p) {
        const double d =
            ds.train.images.at(idx * chw + p) - mean[static_cast<std::size_t>(p)];
        var += d * d;
      }
    }
    class_var[static_cast<std::size_t>(cls)] = var / (20.0 * chw);
  }
  const auto [min_it, max_it] =
      std::minmax_element(class_var.begin(), class_var.end());
  EXPECT_GT(*max_it, *min_it * 1.5) << "class difficulties are too uniform";
}

TEST(SynthImages, Cifar100HasHundredClasses) {
  const auto ds = synth_cifar100(200, 100);
  EXPECT_EQ(ds.train.num_classes, 100);
}

TEST(SynthImages, ImagenetStandInHasTwentyClasses) {
  const auto ds = synth_imagenet(40, 20);
  EXPECT_EQ(ds.train.num_classes, 20);
  EXPECT_EQ(ds.name, "ImageNet*");
}

TEST(SynthImages, DistinctDatasetsUseDistinctSeeds) {
  const auto c10 = synth_cifar10(20, 10);
  const auto inet = synth_imagenet(20, 10);
  bool any_diff = false;
  for (std::int64_t i = 0; i < c10.train.images.numel() && !any_diff; ++i) {
    any_diff = c10.train.images.at(i) != inet.train.images.at(i);
  }
  EXPECT_TRUE(any_diff);
}

}  // namespace
}  // namespace nnr::data
