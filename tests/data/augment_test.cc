#include "data/augment.h"

#include <gtest/gtest.h>

namespace nnr::data {
namespace {

using rng::Generator;
using tensor::Shape;
using tensor::Tensor;

Tensor ramp_batch() {
  Tensor x(Shape{2, 1, 4, 4});
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    x.at(i) = static_cast<float>(i);
  }
  return x;
}

TEST(Augment, PreservesShape) {
  Generator gen(1);
  const Tensor x = ramp_batch();
  const Tensor y = augment_batch(x, AugmentConfig{}, gen);
  EXPECT_EQ(y.shape(), x.shape());
}

TEST(Augment, PinnedGeneratorIsReproducible) {
  const Tensor x = ramp_batch();
  Generator a(2);
  Generator b(2);
  const Tensor ya = augment_batch(x, AugmentConfig{}, a);
  const Tensor yb = augment_batch(x, AugmentConfig{}, b);
  for (std::int64_t i = 0; i < ya.numel(); ++i) {
    EXPECT_EQ(ya.at(i), yb.at(i));
  }
}

TEST(Augment, DifferentSeedsGiveDifferentAugmentations) {
  const Tensor x = ramp_batch();
  Generator a(3);
  Generator b(4);
  const Tensor ya = augment_batch(x, AugmentConfig{}, a);
  const Tensor yb = augment_batch(x, AugmentConfig{}, b);
  bool any_diff = false;
  for (std::int64_t i = 0; i < ya.numel() && !any_diff; ++i) {
    any_diff = ya.at(i) != yb.at(i);
  }
  EXPECT_TRUE(any_diff);
}

TEST(Augment, DisabledConfigIsIdentity) {
  AugmentConfig cfg;
  cfg.random_crop = false;
  cfg.horizontal_flip = false;
  Generator gen(5);
  const Tensor x = ramp_batch();
  const Tensor y = augment_batch(x, cfg, gen);
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    EXPECT_EQ(y.at(i), x.at(i));
  }
}

TEST(Augment, FlipOnlyReversesRows) {
  AugmentConfig cfg;
  cfg.random_crop = false;
  cfg.horizontal_flip = true;
  // Find a seed whose first Bernoulli(0.5) is true for example 0.
  for (std::uint64_t seed = 0; seed < 64; ++seed) {
    Generator probe(seed);
    if (!probe.bernoulli(0.5F)) continue;
    Generator gen(seed);
    Tensor x(Shape{1, 1, 1, 4}, {1, 2, 3, 4});
    const Tensor y = augment_batch(x, cfg, gen);
    EXPECT_FLOAT_EQ(y.at(0), 4.0F);
    EXPECT_FLOAT_EQ(y.at(3), 1.0F);
    return;
  }
  FAIL() << "no seed with a flip found in 64 tries";
}

TEST(Augment, CropShiftsWithinPad) {
  // With crop_pad=2 the content can shift at most 2 pixels; the center
  // pixel of a large constant region must survive.
  AugmentConfig cfg;
  cfg.horizontal_flip = false;
  cfg.crop_pad = 2;
  Generator gen(7);
  Tensor x = Tensor::full(Shape{1, 1, 8, 8}, 3.0F);
  const Tensor y = augment_batch(x, cfg, gen);
  EXPECT_FLOAT_EQ(y.at(0, 0, 4, 4), 3.0F);
}

TEST(Augment, OutOfBoundsReadsZero) {
  AugmentConfig cfg;
  cfg.horizontal_flip = false;
  cfg.crop_pad = 3;
  // Find a seed that shifts by the full +3 in both axes.
  for (std::uint64_t seed = 0; seed < 512; ++seed) {
    Generator probe(seed);
    const auto dy = probe.uniform_int(7);
    const auto dx = probe.uniform_int(7);
    if (dy == 6 && dx == 6) {  // offset +3, +3
      Generator gen(seed);
      Tensor x = Tensor::full(Shape{1, 1, 4, 4}, 5.0F);
      const Tensor y = augment_batch(x, cfg, gen);
      // Bottom-right source pixels fall outside -> zeros appear.
      EXPECT_FLOAT_EQ(y.at(0, 0, 3, 3), 0.0F);
      return;
    }
  }
  GTEST_SKIP() << "no full-shift seed found (statistically unlikely)";
}

}  // namespace
}  // namespace nnr::data
