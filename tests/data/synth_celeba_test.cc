#include "data/synth_celeba.h"

#include <gtest/gtest.h>

#include <cmath>

#include "data/registry.h"

namespace nnr::data {
namespace {

TEST(SynthCelebA, ShapesMatchConfig) {
  SynthCelebAConfig cfg;
  cfg.train_n = 400;
  cfg.test_n = 200;
  const auto ds = make_synth_celeba(cfg);
  EXPECT_EQ(ds.train.size(), 400);
  EXPECT_EQ(ds.test.size(), 200);
  EXPECT_EQ(ds.train.images.shape(), (tensor::Shape{400, 3, 16, 16}));
}

TEST(SynthCelebA, Deterministic) {
  SynthCelebAConfig cfg;
  cfg.train_n = 100;
  cfg.test_n = 50;
  const auto a = make_synth_celeba(cfg);
  const auto b = make_synth_celeba(cfg);
  EXPECT_EQ(a.train.target, b.train.target);
  for (std::int64_t i = 0; i < a.train.images.numel(); ++i) {
    ASSERT_EQ(a.train.images.at(i), b.train.images.at(i));
  }
}

TEST(SynthCelebA, ExpectedPositiveRatesMatchPaperTable3) {
  const SynthCelebAConfig cfg;
  // Male & Young cell: p(pos|male)*p(pos|young)/p(pos) ~ 2.2%.
  EXPECT_NEAR(expected_positive_rate(cfg, true, true), 0.0217F, 0.005F);
  // Female & Young: ~26%.
  EXPECT_NEAR(expected_positive_rate(cfg, false, true), 0.259F, 0.02F);
  // Male & Old: rarest cell.
  EXPECT_LT(expected_positive_rate(cfg, true, false),
            expected_positive_rate(cfg, false, false));
}

TEST(SynthCelebA, SubgroupImbalanceReproduced) {
  SynthCelebAConfig cfg;
  cfg.train_n = 20000;  // large sample to pin the rates
  cfg.test_n = 100;
  const auto ds = make_synth_celeba(cfg);
  const SubgroupCounts counts = count_subgroups(ds.train);

  // Paper Table 3 rates: Male positives ~2% of males; Female ~24%.
  const double male_rate =
      static_cast<double>(counts.male_pos) /
      static_cast<double>(counts.male_pos + counts.male_neg);
  const double female_rate =
      static_cast<double>(counts.female_pos) /
      static_cast<double>(counts.female_pos + counts.female_neg);
  EXPECT_NEAR(male_rate, 0.0203, 0.01);
  EXPECT_NEAR(female_rate, 0.2421, 0.02);

  // Old is underrepresented overall (~22% of examples).
  const double old_share =
      static_cast<double>(counts.old_pos + counts.old_neg) /
      static_cast<double>(counts.total);
  EXPECT_NEAR(old_share, 0.221, 0.02);
}

TEST(SynthCelebA, TargetSignalIsPresent) {
  // Mean image of positives must differ from mean of negatives along some
  // direction — otherwise the task is unlearnable.
  SynthCelebAConfig cfg;
  cfg.train_n = 2000;
  cfg.test_n = 100;
  const auto ds = make_synth_celeba(cfg);
  const std::int64_t chw = 3 * 16 * 16;
  std::vector<double> pos_mean(static_cast<std::size_t>(chw), 0.0);
  std::vector<double> neg_mean(static_cast<std::size_t>(chw), 0.0);
  std::int64_t n_pos = 0;
  std::int64_t n_neg = 0;
  for (std::int64_t i = 0; i < ds.train.size(); ++i) {
    const bool pos = ds.train.target[static_cast<std::size_t>(i)] != 0;
    (pos ? n_pos : n_neg)++;
    for (std::int64_t p = 0; p < chw; ++p) {
      (pos ? pos_mean : neg_mean)[static_cast<std::size_t>(p)] +=
          ds.train.images.at(i * chw + p);
    }
  }
  ASSERT_GT(n_pos, 0);
  ASSERT_GT(n_neg, 0);
  double separation = 0.0;
  for (std::int64_t p = 0; p < chw; ++p) {
    const double d = pos_mean[static_cast<std::size_t>(p)] / n_pos -
                     neg_mean[static_cast<std::size_t>(p)] / n_neg;
    separation += d * d;
  }
  EXPECT_GT(std::sqrt(separation / chw), 0.1);
}

TEST(SynthCelebA, AttributeVectorsSameLengthAsImages) {
  SynthCelebAConfig cfg;
  cfg.train_n = 64;
  cfg.test_n = 32;
  const auto ds = make_synth_celeba(cfg);
  EXPECT_EQ(ds.test.male.size(), 32u);
  EXPECT_EQ(ds.test.young.size(), 32u);
  EXPECT_EQ(ds.test.target.size(), 32u);
}

}  // namespace
}  // namespace nnr::data
